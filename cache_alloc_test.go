package grappolo_test

import (
	"context"
	"testing"

	"grappolo"
	"grappolo/internal/generate"
)

// TestCacheHitZeroAllocs extends the serving-path allocation gate to the
// cache: a warm exact hit — memoized fingerprint and strong-hash loads,
// store lookup, LRU bump, and the copy-out into the caller's recycled
// Result — performs ZERO allocations. This is the contract that makes the
// cache safe to put in front of every request: a hit costs table work, not
// garbage.
func TestCacheHitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := grappolo.NewCache(pool)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := c.Detect(ctx, g) // cold: populate the entry
	if err != nil {
		t.Fatal(err)
	}
	res, err = c.DetectInto(ctx, g, res) // settle the recycled Result's shape
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		res, err = c.DetectInto(ctx, g, res)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("warm Cache.DetectInto hit allocates %v times per request, want 0", allocs)
	}
	if res.NumCommunities <= 1 || res.Modularity <= 0 {
		t.Fatalf("degenerate result nc=%d Q=%v", res.NumCommunities, res.Modularity)
	}
	if led := pool.Stats().Led; led != 1 {
		t.Errorf("Led = %d, want 1 (only the cold run touches an engine)", led)
	}
}

// BenchmarkCacheDetect compares the three serving tiers the cache layers
// over one pool: cold (every request invalidated first — the uncached
// baseline plus admission overhead), hit (exact repeat served by copy-out),
// and delta (a small perturbation routed onto the seeded incremental
// maintainer instead of a cold run). hit/cold is the caching win; delta sits
// between them and is the paper's real-time future-work item as a serving
// fast path.
func BenchmarkCacheDetect(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.ScaleFromEnv(), 0, 0)
	newCache := func(b *testing.B, copts ...grappolo.CacheOption) *grappolo.Cache {
		pool, err := grappolo.NewPool(1, grappolo.Workers(0))
		if err != nil {
			b.Fatal(err)
		}
		c, err := grappolo.NewCache(pool, copts...)
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	ctx := context.Background()
	b.Run("cold", func(b *testing.B) {
		c := newCache(b)
		var res *grappolo.Result
		var err error
		if res, err = c.Detect(ctx, g); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.InvalidateAll()
			if res, err = c.DetectInto(ctx, g, res); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		c := newCache(b)
		var res *grappolo.Result
		var err error
		if res, err = c.Detect(ctx, g); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err = c.DetectInto(ctx, g, res); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		c := newCache(b, grappolo.DeltaEdits(8))
		// A two-edge perturbation of g: within the edit budget, so every
		// iteration (after invalidating the variant's own entry) re-routes
		// the diff onto a maintainer seeded from the base entry.
		n := int32(g.N())
		var edges []grappolo.Edge
		for u := int32(0); u < n; u++ {
			nbrs, ws := g.Neighbors(int(u))
			for k, v := range nbrs {
				if v >= u {
					edges = append(edges, grappolo.Edge{U: u, V: v, W: ws[k]})
				}
			}
		}
		variant := grappolo.FromEdges(g.N(), append(edges,
			grappolo.Edge{U: 0, V: n / 2, W: 0.5},
			grappolo.Edge{U: 1, V: n/2 + 1, W: 0.5}), 0)
		var res *grappolo.Result
		var err error
		if _, err = c.Detect(ctx, g); err != nil {
			b.Fatal(err)
		}
		if res, err = c.Detect(ctx, variant); err != nil {
			b.Fatal(err)
		}
		if !res.Incremental {
			b.Fatal("variant was not delta-routed; benchmark would measure the wrong tier")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Invalidate(variant)
			if res, err = c.DetectInto(ctx, variant, res); err != nil {
				b.Fatal(err)
			}
		}
	})
}
