package grappolo

import (
	"errors"
	"fmt"
)

// ErrNilGraph is returned by every detection entry point (Detector, Pool,
// Batcher, Guard) handed a nil *Graph. Validating at the boundary turns
// what used to be a panic deep inside the engine into a typed, checkable
// request error.
var ErrNilGraph = errors.New("grappolo: nil graph")

// ErrOverloaded is the load-shedding sentinel: a Guard returns an error
// matching it (via errors.Is) when a request is refused instead of served —
// either because the admission queue is at its configured depth bound, or
// because the request waited in the queue longer than its configured
// bound. Shed errors are produced FAST by design: the caller learns within
// its queue-wait budget that it should retry later or fail over, rather
// than piling onto the admission queue.
var ErrOverloaded = errors.New("grappolo: overloaded")

// ErrEngineFault is the panic-quarantine sentinel: errors.Is reports it
// for any error produced by recovering an engine-run panic at a serving
// boundary — the Guard's recovery of a request that panicked, and the
// error a Batcher fans out to followers whose leader's run panicked. The
// faulted engine itself is quarantined by the Pool (never returned to the
// idle list); the serving stack stays usable.
var ErrEngineFault = errors.New("grappolo: engine fault")

// EngineFaultError carries the recovered panic value of a faulted engine
// run. It matches ErrEngineFault under errors.Is.
type EngineFaultError struct {
	// Panic is the value the engine run panicked with.
	Panic any
}

// Error describes the fault.
func (e *EngineFaultError) Error() string {
	return fmt.Sprintf("grappolo: engine fault: recovered panic: %v", e.Panic)
}

// Is matches the ErrEngineFault sentinel.
func (e *EngineFaultError) Is(target error) bool { return target == ErrEngineFault }

// overloadError is the concrete shed error: it matches ErrOverloaded and
// names which admission bound was exceeded.
type overloadError struct{ reason string }

func (e *overloadError) Error() string { return "grappolo: overloaded: " + e.reason }

func (e *overloadError) Is(target error) bool { return target == ErrOverloaded }
