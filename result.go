package grappolo

import "grappolo/internal/core"

// Result is the output of a detection run: the dense community membership
// of every input vertex, the modularity (or CPM score) achieved, and full
// per-phase instrumentation. See the fields of the aliased internal type;
// the alias keeps the public surface and the engine's zero-copy result
// recycling (DetectInto) one and the same type.
//
// Two serving-layer provenance flags ride on it: Degraded marks a result
// served by a Guard's degraded fast profile, and Incremental marks one
// produced by a Cache routing an edge delta onto the incremental
// maintainer instead of a cold engine run. Both are always false on
// results from a Detector, Pool, Batcher or Sharded directly.
type Result = core.Result

// PhaseStats traces one phase of a run: convergence trajectory, per-step
// timings, and coloring statistics.
type PhaseStats = core.PhaseStats

// Breakdown aggregates wall-clock time per algorithm step (vertex
// following, coloring, clustering, rebuild).
type Breakdown = core.Breakdown

// CommunityStats summarizes one detected community: size, internal and cut
// weight, conductance, and local modularity contribution.
type CommunityStats = core.CommunityStats

// Modularity computes standard modularity (Eq. 3 of the paper, with
// resolution gamma; pass 1 for the standard definition) for an arbitrary
// assignment on g — use it to score external partitions (e.g. ground truth)
// with the same parallel kernel the detector uses. workers <= 0 selects all
// CPUs.
func Modularity(g *Graph, membership []int32, gamma float64, workers int) float64 {
	return core.Modularity(g, membership, gamma, workers)
}

// AnalyzeCommunities computes per-community statistics for a membership on
// g, sorted by decreasing size. workers <= 0 selects all CPUs.
func AnalyzeCommunities(g *Graph, membership []int32, workers int) ([]CommunityStats, error) {
	return core.AnalyzeCommunities(g, membership, workers)
}

// CommunitySizes returns the size of each community of a dense membership.
func CommunitySizes(membership []int32) []int {
	return core.CommunitySizes(membership)
}
