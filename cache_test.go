package grappolo_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"grappolo"
	"grappolo/internal/generate"
	igraph "grappolo/internal/graph"
)

// ringEdges returns a weighted ring C_n whose edge weights are seeded, so
// same-n rings have identical CSR shape (same byte estimate) but distinct
// content.
func ringEdges(n int, seed float64) []grappolo.Edge {
	edges := make([]grappolo.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = grappolo.Edge{U: int32(i), V: int32((i + 1) % n), W: 1 + seed + float64(i%7)/8}
	}
	return edges
}

// cliquePairEdges returns two 5-cliques bridged by one edge — 10 vertices,
// an unambiguous two-community graph the delta tests perturb.
func cliquePairEdges() []grappolo.Edge {
	var edges []grappolo.Edge
	for base := int32(0); base <= 5; base += 5 {
		for i := base; i < base+5; i++ {
			for j := i + 1; j < base+5; j++ {
				edges = append(edges, grappolo.Edge{U: i, V: j, W: 1})
			}
		}
	}
	return append(edges, grappolo.Edge{U: 4, V: 5, W: 1})
}

func newCachedPool(t *testing.T, copts ...grappolo.CacheOption) (*grappolo.Cache, *grappolo.Pool) {
	t.Helper()
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := grappolo.NewCache(pool, copts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, pool
}

// TestCacheExactHit pins the tentpole contract: a repeated identical Detect
// is served from the cache with ZERO additional engine runs and a result
// bit-identical to the run that populated the entry.
func TestCacheExactHit(t *testing.T) {
	c, pool := newCachedPool(t)
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	ctx := context.Background()

	cold, err := c.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	ledAfterCold := pool.Stats().Led

	warm, err := c.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if led := pool.Stats().Led; led != ledAfterCold {
		t.Errorf("cache hit ran the engine: Led %d -> %d", ledAfterCold, led)
	}
	if warm == cold {
		t.Fatal("hit returned the cached Result itself, not an independent copy")
	}
	if math.Float64bits(warm.Modularity) != math.Float64bits(cold.Modularity) {
		t.Errorf("hit modularity %v != cold %v (must be bit-identical)", warm.Modularity, cold.Modularity)
	}
	if warm.NumCommunities != cold.NumCommunities || len(warm.Membership) != len(cold.Membership) {
		t.Fatalf("hit shape (%d comms, %d verts) != cold (%d, %d)",
			warm.NumCommunities, len(warm.Membership), cold.NumCommunities, len(cold.Membership))
	}
	for i := range warm.Membership {
		if warm.Membership[i] != cold.Membership[i] {
			t.Fatalf("membership diverges at vertex %d: %d != %d", i, warm.Membership[i], cold.Membership[i])
		}
	}
	if warm.Incremental {
		t.Error("exact hit must not be marked Incremental")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}

	// Mutating the served copy must not poison the cache.
	warm.Membership[0] = -1
	again, err := c.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if again.Membership[0] != cold.Membership[0] {
		t.Error("mutating a served Result leaked into the cached entry")
	}
}

// TestCacheTTLExpiry pins that an entry past its TTL is never served.
func TestCacheTTLExpiry(t *testing.T) {
	c, pool := newCachedPool(t, grappolo.CacheTTL(30*time.Millisecond))
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	ctx := context.Background()

	if _, err := c.Detect(ctx, g); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	if _, err := c.Detect(ctx, g); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 2 || s.Expired == 0 {
		t.Errorf("stats after TTL lapse = %+v, want 0 hits / 2 misses / expirations", s)
	}
	if pool.Stats().Led != 2 {
		t.Errorf("Led = %d, want 2 (expired entry must re-run)", pool.Stats().Led)
	}
}

// TestCacheLRUEviction pins the eviction ORDER: with room for two entries, a
// third insert evicts the least-recently-USED entry — not the oldest
// inserted — so touching A before inserting C sacrifices B.
func TestCacheLRUEviction(t *testing.T) {
	// Phase 1: measure one entry's byte estimate with an unbounded cache.
	probe, _ := newCachedPool(t)
	const n = 400
	gA := grappolo.FromEdges(n, ringEdges(n, 0.125), 1)
	gB := grappolo.FromEdges(n, ringEdges(n, 0.25), 1)
	gC := grappolo.FromEdges(n, ringEdges(n, 0.5), 1)
	ctx := context.Background()
	if _, err := probe.Detect(ctx, gA); err != nil {
		t.Fatal(err)
	}
	per := probe.Stats().Bytes
	if per <= 0 {
		t.Fatalf("entry byte estimate = %d, want positive", per)
	}

	// Phase 2: budget fits two same-shape entries, not three.
	c, pool := newCachedPool(t, grappolo.CacheBytes(2*per+per/2))
	for _, g := range []*grappolo.Graph{gA, gB} {
		if _, err := c.Detect(ctx, g); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Detect(ctx, gA); err != nil { // bump A to MRU
		t.Fatal(err)
	}
	if _, err := c.Detect(ctx, gC); err != nil { // over budget: evicts B, not A
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats after third insert = %+v, want exactly 1 eviction / 2 entries", s)
	}
	led := pool.Stats().Led
	if _, err := c.Detect(ctx, gA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detect(ctx, gC); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Led; got != led {
		t.Errorf("A and C should both be resident, but Led grew %d -> %d", led, got)
	}
	if _, err := c.Detect(ctx, gB); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Led; got != led+1 {
		t.Errorf("B should have been the evicted entry: Led %d -> %d, want +1", led, got)
	}
}

// TestCacheCollisionNeverCrossServed drives a crafted pair of graphs with
// IDENTICAL sampled fingerprints but different content through one cache:
// the exact strong-hash admission check must refuse to serve either graph
// the other's result.
func TestCacheCollisionNeverCrossServed(t *testing.T) {
	c, pool := newCachedPool(t)
	gA, gB := igraph.CollidingRingPair(100)
	if gA.Fingerprint() != gB.Fingerprint() {
		t.Fatal("test precondition: sampled fingerprints must collide")
	}
	if gA.StrongHash() == gB.StrongHash() {
		t.Fatal("test precondition: strong hashes must differ")
	}
	ctx := context.Background()
	if _, err := c.Detect(ctx, gA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detect(ctx, gB); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 2 {
		t.Errorf("stats = %+v: the collision must be a miss, never a hit", s)
	}
	if s.Rejected == 0 {
		t.Error("Rejected = 0, want the strong-hash refusals counted")
	}
	if pool.Stats().Led != 2 {
		t.Errorf("Led = %d, want 2 (each graph runs its own detection)", pool.Stats().Led)
	}
	// The incumbent keeps its slot and keeps serving exactly.
	if _, err := c.Detect(ctx, gA); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Hits; got != 1 {
		t.Errorf("incumbent no longer served after collision: hits = %d, want 1", got)
	}
}

// TestBatcherCollisionDiverts pins the batcher side of the same guarantee:
// a request whose graph collides with the in-flight leader's sampled
// fingerprint is diverted to a private run, never handed the leader's
// result.
func TestBatcherCollisionDiverts(t *testing.T) {
	gA, gB := igraph.CollidingRingPair(100)
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	ctx := context.Background()
	if err := pool.HoldEnginePermit(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var resA, resB *grappolo.Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		var err error
		if resA, err = b.Detect(ctx, gA); err != nil {
			t.Error(err)
		}
	}()
	for pool.QueuedWaiters() != 1 { // leader parked in admission
		runtime.Gosched()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var err error
		if resB, err = b.Detect(ctx, gB); err != nil {
			t.Error(err)
		}
	}()
	for b.DivertedFollowers() != 1 { // gB refused the join, queued privately
		runtime.Gosched()
	}
	pool.ReleaseEnginePermit()
	wg.Wait()
	if b.JoinedFollowers() != 0 {
		t.Errorf("colliding request attached as a follower (joins=%d)", b.JoinedFollowers())
	}
	if pool.Stats().Led != 2 {
		t.Errorf("Led = %d, want 2 separate engine runs", pool.Stats().Led)
	}
	if resA == nil || resB == nil || len(resA.Membership) != 100 || len(resB.Membership) != 100 {
		t.Fatal("both requests must be served complete results")
	}
}

// TestCacheDeltaRouting pins the delta tier: a re-upload within the edge
// budget of a cached graph routes onto the seeded incremental maintainer
// (no cold engine run through the backend), is marked Incremental, stays
// within 2% of the cold-run modularity, and is itself cached — the SAME
// variant again is an exact hit.
func TestCacheDeltaRouting(t *testing.T) {
	c, pool := newCachedPool(t, grappolo.DeltaEdits(8))
	base := grappolo.FromEdges(10, cliquePairEdges(), 1)
	// Two inserted edges plus one brand-new vertex 10 joining the second
	// clique: well inside the budget, not reachable without growth.
	variantEdges := append(cliquePairEdges(),
		grappolo.Edge{U: 0, V: 2, W: 0.5}, // weight increase on an existing pair
		grappolo.Edge{U: 10, V: 5, W: 1},
		grappolo.Edge{U: 10, V: 6, W: 1},
	)
	variant := grappolo.FromEdges(11, variantEdges, 1)
	ctx := context.Background()

	if _, err := c.Detect(ctx, base); err != nil {
		t.Fatal(err)
	}
	ledAfterBase := pool.Stats().Led

	res, err := c.Detect(ctx, variant)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Led != ledAfterBase {
		t.Fatalf("delta-routable request ran the backend engine (Led %d -> %d)", ledAfterBase, pool.Stats().Led)
	}
	if !res.Incremental {
		t.Error("delta-routed result must be marked Incremental")
	}
	if len(res.Membership) != 11 {
		t.Fatalf("membership covers %d vertices, want 11", len(res.Membership))
	}
	if s := c.Stats(); s.DeltaRouted != 1 {
		t.Errorf("DeltaRouted = %d, want 1", s.DeltaRouted)
	}

	// Quality pin: within 2% of a cold run on the variant.
	coldPool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldPool.Detect(ctx, variant)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Modularity <= 0 {
		t.Fatalf("degenerate cold reference Q=%v", cold.Modularity)
	}
	if res.Modularity < cold.Modularity*0.98 {
		t.Errorf("delta-routed Q=%v below 98%% of cold Q=%v", res.Modularity, cold.Modularity)
	}
	// And the reported modularity must actually score the returned
	// membership on the variant graph.
	if scored := grappolo.Modularity(variant, res.Membership, 1, 1); math.Abs(scored-res.Modularity) > 1e-9 {
		t.Errorf("reported Q=%v but membership scores %v on the variant", res.Modularity, scored)
	}

	// The routed result was admitted: the same variant again is an exact hit.
	hits := c.Stats().Hits
	again, err := c.Detect(ctx, variant)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != hits+1 {
		t.Error("re-uploading the routed variant should be an exact hit")
	}
	if math.Float64bits(again.Modularity) != math.Float64bits(res.Modularity) {
		t.Error("cached delta result must be served bit-identically")
	}
}

// TestCacheDeltaNotRoutable pins the conservative side: deletions and
// rewires fall through to the backend even when the shape gates pass.
func TestCacheDeltaNotRoutable(t *testing.T) {
	c, pool := newCachedPool(t, grappolo.DeltaEdits(8))
	base := grappolo.FromEdges(10, cliquePairEdges(), 1)
	// Same vertex count, same edge count, same total weight — one edge
	// moved. Insert-only routing cannot express it.
	rewired := cliquePairEdges()
	rewired[len(rewired)-1] = grappolo.Edge{U: 3, V: 6, W: 1}
	gRewired := grappolo.FromEdges(10, rewired, 1)
	ctx := context.Background()
	if _, err := c.Detect(ctx, base); err != nil {
		t.Fatal(err)
	}
	led := pool.Stats().Led
	if _, err := c.Detect(ctx, gRewired); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Led != led+1 {
		t.Errorf("rewired graph must run cold (Led %d -> %d, want +1)", led, pool.Stats().Led)
	}
	if s := c.Stats(); s.DeltaRouted != 0 {
		t.Errorf("DeltaRouted = %d, want 0", s.DeltaRouted)
	}
}

// TestNewCacheConfig pins constructor validation.
func TestNewCacheConfig(t *testing.T) {
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grappolo.NewCache(nil); err == nil {
		t.Error("nil backend accepted")
	}
	if _, err := grappolo.NewCache(pool, grappolo.CacheTTL(-time.Second)); err == nil {
		t.Error("negative TTL accepted")
	}
	if _, err := grappolo.NewCache(pool, grappolo.CacheBytes(0)); err == nil {
		t.Error("zero byte budget accepted")
	}
	if _, err := grappolo.NewCache(pool, grappolo.DeltaRefreshFraction(1.5)); err == nil {
		t.Error("out-of-range DeltaRefreshFraction accepted")
	}
	cpm, err := grappolo.NewPool(1, grappolo.Workers(1), grappolo.CPM(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grappolo.NewCache(cpm, grappolo.DeltaEdits(4)); err == nil {
		t.Error("CPM backend with DeltaEdits accepted — the overlay maintains modularity")
	}
	if _, err := grappolo.NewCache(cpm); err != nil {
		t.Errorf("CPM backend without delta routing should be cacheable: %v", err)
	}
	// Guard composes over a Cache.
	cached, err := grappolo.NewCache(pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grappolo.NewGuard(cached); err != nil {
		t.Errorf("NewGuard over a Cache: %v", err)
	}
}

// TestCacheRaceStress hammers a Guard(Cache(Pool)) stack from many
// goroutines mixing exact repeats, delta-routable variants and a distinct
// graph, checking every served result is complete and internally
// consistent. Run with -race this is the concurrency gate for the store.
func TestCacheRaceStress(t *testing.T) {
	pool, err := grappolo.NewPool(2, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := grappolo.NewCache(pool, grappolo.DeltaEdits(8), grappolo.CacheTTL(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := grappolo.NewGuard(c)
	if err != nil {
		t.Fatal(err)
	}
	base := grappolo.FromEdges(10, cliquePairEdges(), 1)
	variant := grappolo.FromEdges(10, append(cliquePairEdges(),
		grappolo.Edge{U: 1, V: 3, W: 0.25}, grappolo.Edge{U: 7, V: 9, W: 0.25}), 1)
	other := generate.MustGenerate(generate.RGG, generate.Small, 3, 1)
	graphs := []*grappolo.Graph{base, variant, other, base, variant}

	const workers = 8
	const iters = 40
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var res *grappolo.Result
			for i := 0; i < iters; i++ {
				g := graphs[(w+i)%len(graphs)]
				var err error
				res, err = gd.DetectInto(ctx, g, res)
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				if len(res.Membership) != g.N() {
					t.Errorf("worker %d iter %d: membership %d != n %d", w, i, len(res.Membership), g.N())
					return
				}
				for _, m := range res.Membership {
					if m < 0 || int(m) >= g.N() {
						t.Errorf("worker %d iter %d: label %d out of range", w, i, m)
						return
					}
				}
				if !res.Incremental && res.NumCommunities <= 0 {
					t.Errorf("worker %d iter %d: degenerate non-incremental result", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits == 0 {
		t.Error("stress mix produced no cache hits")
	}
	if s.Hits+s.Misses != workers*iters {
		t.Errorf("hits %d + misses %d != %d requests", s.Hits, s.Misses, workers*iters)
	}
}

// TestStreamInvalidatesCache pins the NewStream-overlay invalidation hook:
// once a stream seeded from g applies a batch, the OnApply callback drops
// g's cache entry, so the next Detect re-runs instead of serving a result
// that no longer describes the live stream.
func TestStreamInvalidatesCache(t *testing.T) {
	c, pool := newCachedPool(t)
	seed := grappolo.FromEdges(10, cliquePairEdges(), 1)
	ctx := context.Background()
	if _, err := c.Detect(ctx, seed); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("entries = %d, want 1", c.Len())
	}
	s, err := grappolo.NewStream(seed, []grappolo.Option{grappolo.Workers(1)})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	s.OnApply(func() {
		fired++
		c.Invalidate(seed)
	})
	if err := s.AddEdge(0, 7, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("OnApply hook never fired")
	}
	if c.Len() != 0 {
		t.Fatalf("entries = %d after overlay drift, want 0", c.Len())
	}
	led := pool.Stats().Led
	if _, err := c.Detect(ctx, seed); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Led != led+1 {
		t.Error("post-invalidation Detect must re-run the engine")
	}
}

// TestStreamAddEdgeRejectsBadWeights is the regression test for the
// streaming-overlay weight bug: NaN slipped past the old `w <= 0` guard and
// non-positive weights were silently coerced to 1, corrupting the live
// modularity bookkeeping. All of them must now fail fast with
// ErrBadEdgeWeight, before touching the overlay.
func TestStreamAddEdgeRejectsBadWeights(t *testing.T) {
	seed := grappolo.FromEdges(10, cliquePairEdges(), 1)
	s, err := grappolo.NewStream(seed, []grappolo.Option{grappolo.Workers(1)})
	if err != nil {
		t.Fatal(err)
	}
	q := s.Modularity()
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -3} {
		err := s.AddEdge(0, 7, w)
		if !errors.Is(err, grappolo.ErrBadEdgeWeight) {
			t.Errorf("AddEdge(w=%v) = %v, want ErrBadEdgeWeight", w, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Modularity(); got != q {
		t.Errorf("rejected edges changed the overlay: Q %v -> %v", q, got)
	}
	if s.BatchApplies() != 0 {
		t.Errorf("BatchApplies = %d, want 0 (nothing valid was buffered)", s.BatchApplies())
	}
}

// TestStreamFlushCtxSurfacesErrors is the regression test for the silent
// full-refresh: a canceled context during the escalated re-detection now
// surfaces through the Stream instead of being swallowed.
func TestStreamFlushCtxSurfacesErrors(t *testing.T) {
	seed := grappolo.FromEdges(10, cliquePairEdges(), 1)
	s, err := grappolo.NewStream(seed, []grappolo.Option{grappolo.Workers(1)},
		grappolo.RefreshFraction(1e-9)) // any touched vertex escalates to a full run
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(0, 7, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.FlushCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("FlushCtx(canceled) = %v, want context.Canceled", err)
	}
	runs := s.FullRuns()
	// The refresh is still owed: a live-context flush completes it.
	if err := s.FlushCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.FullRuns() != runs+1 {
		t.Errorf("FullRuns = %d after recovery flush, want %d", s.FullRuns(), runs+1)
	}
}

// TestCacheInvalidateAll pins the bulk-invalidation accounting.
func TestCacheInvalidateAll(t *testing.T) {
	c, _ := newCachedPool(t)
	ctx := context.Background()
	for seed := int64(0); seed < 3; seed++ {
		g := grappolo.FromEdges(200, ringEdges(200, float64(seed)/4), 1)
		if _, err := c.Detect(ctx, g); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.InvalidateAll(); n != 3 {
		t.Errorf("InvalidateAll = %d, want 3", n)
	}
	if c.Len() != 0 || c.Stats().Bytes != 0 {
		t.Errorf("cache not empty after InvalidateAll: %s", fmt.Sprint(c))
	}
}
