// Command benchtables regenerates every table and figure of the paper's
// evaluation section (§6) on the synthetic input suite and prints them in
// text form. Each experiment maps to a -table or -fig flag; see DESIGN.md §6
// for the experiment index and EXPERIMENTS.md for recorded outputs.
//
// Usage:
//
//	benchtables -all                 # everything, small scale
//	benchtables -table 2 -scale medium -workers 8
//	benchtables -fig 7 -inputs rgg,mg1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"grappolo/internal/core"
	"grappolo/internal/generate"
	"grappolo/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	var (
		table   = fs.Int("table", 0, "regenerate table N (1..5)")
		fig     = fs.Int("fig", 0, "regenerate figure N (3..10; 3 covers the 3-6 trajectories, 4 the 3-6 runtime sweeps)")
		all     = fs.Bool("all", false, "regenerate every table and figure")
		scale   = fs.String("scale", "small", "small | medium | large")
		workers = fs.Int("workers", 4, "parallel worker count for single-run experiments")
		seed    = fs.Uint64("seed", 0, "input generator seed")
		inputsF = fs.String("inputs", "", "comma-separated input subset (default: per-experiment paper set)")
		repeats = fs.Int("repeats", 3, "repeated runs for [min,max] modularity tables")
		sec7    = fs.Bool("sec7", false, "run the §7 related-work comparison (grappolo vs PLM emulation)")
		skew    = fs.Bool("colorskew", false, "run the §6.2 color-set skew study (base vs vertex- vs arc-balanced coloring)")
		layout  = fs.String("layout", "auto", "arc layout the studies run under: auto | split | interleaved (results are bit-identical; only runtimes differ)")
		csvDir  = fs.String("csv", "", "also write machine-readable CSVs for table 2/3 and figs 3-6 into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := parseScale(*scale)
	if err != nil {
		return err
	}
	lay, err := parseLayout(*layout)
	if err != nil {
		return err
	}
	o := harness.Options{Scale: sc, Workers: *workers, Seed: *seed, Layout: lay}.Defaults()

	subset := func(def []generate.Input) []generate.Input {
		if *inputsF == "" {
			return def
		}
		var out []generate.Input
		for _, s := range strings.Split(*inputsF, ",") {
			out = append(out, generate.Input(strings.TrimSpace(s)))
		}
		return out
	}

	ran := false
	want := func(t, f int) bool {
		if *all {
			return true
		}
		return (*table != 0 && *table == t) || (*fig != 0 && *fig == f)
	}

	w := os.Stdout
	if want(1, 0) {
		rows, err := harness.Table1(o)
		if err != nil {
			return err
		}
		harness.WriteTable1(w, rows)
		fmt.Fprintln(w)
		ran = true
	}
	if want(0, 3) {
		sets, err := harness.Trajectories(o, subset([]generate.Input{
			generate.CNR, generate.CoPapers, generate.Channel, generate.EuropeOSM,
			generate.LiveJournal, generate.MG1, generate.RGG, generate.UK2002,
			generate.NLPKKT, generate.MG2, generate.Friendster,
		}), harness.AllSchemes())
		if err != nil {
			return err
		}
		harness.WriteTrajectories(w, sets)
		if err := writeCSV(*csvDir, "trajectories.csv", func(f io.Writer) error {
			return harness.WriteTrajectoriesCSV(f, sets)
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ran = true
	}
	if want(0, 4) {
		fmt.Fprintln(w, "Figs 3-6 (right): runtime vs workers (baseline+vf+color)")
		var curves []harness.ScalingCurve
		for _, in := range subset(generate.Suite()) {
			curve, err := harness.Scaling(o, in, harness.BaselineVFColor, workerSweep(), false)
			if err != nil {
				return err
			}
			harness.WriteScaling(w, curve)
			curves = append(curves, curve)
		}
		if err := writeCSV(*csvDir, "scaling.csv", func(f io.Writer) error {
			return harness.WriteScalingCSV(f, curves)
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ran = true
	}
	if want(0, 7) {
		fmt.Fprintln(w, "Fig 7: relative (vs fewest-workers run) and absolute (vs serial) speedups")
		for _, in := range subset([]generate.Input{generate.RGG, generate.MG1, generate.LiveJournal, generate.CNR}) {
			curve, err := harness.Scaling(o, in, harness.BaselineVFColor, workerSweep(), true)
			if err != nil {
				return err
			}
			harness.WriteScaling(w, curve)
		}
		fmt.Fprintln(w)
		ran = true
	}
	if want(0, 8) {
		for _, in := range subset([]generate.Input{generate.RGG, generate.MG2, generate.EuropeOSM, generate.NLPKKT}) {
			pts, err := harness.BreakdownSweep(o, in, workerSweep())
			if err != nil {
				return err
			}
			harness.WriteBreakdown(w, in, pts)
		}
		fmt.Fprintln(w)
		ran = true
	}
	if want(0, 9) {
		fmt.Fprintln(w, "Fig 9: graph-rebuild speedup vs workers")
		for _, in := range subset([]generate.Input{generate.RGG, generate.MG2, generate.EuropeOSM, generate.NLPKKT}) {
			curve, err := harness.Scaling(o, in, harness.BaselineVFColor, workerSweep(), false)
			if err != nil {
				return err
			}
			sp := curve.RebuildSpeedups()
			fmt.Fprintf(w, "%s rebuild speedups:", in)
			for i, p := range curve.Points {
				fmt.Fprintf(w, " %d:%.2fx", p.Workers, sp[i])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
		ran = true
	}
	if want(0, 10) {
		inputs := subset([]generate.Input{
			generate.CNR, generate.CoPapers, generate.Channel, generate.LiveJournal,
			generate.MG1, generate.RGG, generate.UK2002, generate.NLPKKT, generate.MG2,
		})
		mod, rt, err := harness.Profiles(o, inputs)
		if err != nil {
			return err
		}
		harness.WriteProfiles(w, "modularity", mod)
		harness.WriteProfiles(w, "runtime", rt)
		fmt.Fprintln(w)
		ran = true
	}
	if want(2, 0) {
		rows, err := harness.Table2(o, subset([]generate.Input{
			generate.CNR, generate.CoPapers, generate.Channel, generate.EuropeOSM,
			generate.MG1, generate.UK2002, generate.MG2, generate.NLPKKT,
			generate.RGG, generate.LiveJournal, generate.Friendster,
		}))
		if err != nil {
			return err
		}
		harness.WriteTable2(w, rows, o.Workers)
		if err := writeCSV(*csvDir, "table2.csv", func(f io.Writer) error {
			return harness.WriteTable2CSV(f, rows)
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ran = true
	}
	if want(3, 0) {
		rows, err := harness.Table3(o, subset([]generate.Input{generate.CNR, generate.MG1}))
		if err != nil {
			return err
		}
		harness.WriteTable3(w, rows)
		if err := writeCSV(*csvDir, "table3.csv", func(f io.Writer) error {
			return harness.WriteTable3CSV(f, rows)
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ran = true
	}
	if want(4, 0) {
		ot := o
		ot.Workers = 2 // the paper's Table 4 uses two threads
		rows, err := harness.Table4(ot, subset([]generate.Input{
			generate.Channel, generate.UK2002, generate.EuropeOSM, generate.MG2,
		}), *repeats)
		if err != nil {
			return err
		}
		harness.WriteTable4(w, rows)
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *skew {
		rows, err := harness.ColorSkew(o, subset([]generate.Input{
			generate.CNR, generate.UK2002, generate.LiveJournal, generate.Friendster,
		}))
		if err != nil {
			return err
		}
		harness.WriteColorSkew(w, rows)
		if err := writeCSV(*csvDir, "colorskew.csv", func(f io.Writer) error {
			return harness.WriteColorSkewCSV(f, rows)
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ran = true
	}
	if *all || *sec7 {
		rows, err := harness.RelatedWork(o, subset(nil))
		if err != nil {
			return err
		}
		harness.WriteRelatedWork(w, rows)
		fmt.Fprintln(w)
		ran = true
	}
	if want(5, 0) {
		rows, err := harness.Table5(o, subset([]generate.Input{
			generate.CNR, generate.CoPapers, generate.Channel, generate.EuropeOSM,
			generate.MG1, generate.RGG, generate.UK2002, generate.NLPKKT, generate.MG2,
		}), *repeats)
		if err != nil {
			return err
		}
		harness.WriteTable5(w, rows)
		fmt.Fprintln(w)
		ran = true
	}
	if !ran {
		return fmt.Errorf("nothing selected: use -all, -table N, or -fig N")
	}
	return nil
}

// writeCSV writes one CSV artifact into dir (no-op when dir is empty).
func writeCSV(dir, name string, emit func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// workerSweep returns the worker counts for scaling sweeps: powers of two
// up to the machine, minimum 1..8 (the paper sweeps 1..32 threads on its
// 32-core node; on smaller hosts the sweep still exercises the concurrent
// code paths, with curves flattening at the physical core count).
func workerSweep() []int {
	max := runtime.GOMAXPROCS(0)
	if max < 8 {
		max = 8
	}
	var out []int
	for w := 1; w <= max; w *= 2 {
		out = append(out, w)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

func parseLayout(s string) (core.ArcLayout, error) {
	switch s {
	case "auto":
		return core.ArcLayoutAuto, nil
	case "split":
		return core.ArcLayoutSplit, nil
	case "interleaved":
		return core.ArcLayoutInterleaved, nil
	default:
		return 0, fmt.Errorf("unknown layout %q (auto|split|interleaved)", s)
	}
}

func parseScale(s string) (generate.Scale, error) {
	switch s {
	case "small":
		return generate.Small, nil
	case "medium":
		return generate.Medium, nil
	case "large":
		return generate.Large, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (small|medium|large)", s)
	}
}
