package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEachTable(t *testing.T) {
	for _, tab := range []string{"1", "2", "3", "4", "5"} {
		args := []string{"-table", tab, "-scale", "small", "-repeats", "1"}
		if tab == "2" || tab == "4" || tab == "5" {
			args = append(args, "-inputs", "mg1")
		}
		if err := run(args); err != nil {
			t.Fatalf("table %s: %v", tab, err)
		}
	}
}

func TestEachFigure(t *testing.T) {
	for _, fig := range []string{"3", "4", "7", "8", "9", "10"} {
		args := []string{"-fig", fig, "-scale", "small", "-inputs", "rgg"}
		if fig == "10" {
			args = []string{"-fig", "10", "-scale", "small", "-inputs", "rgg,mg1"}
		}
		if err := run(args); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
	}
}

func TestColorSkewStudy(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-colorskew", "-scale", "small", "-inputs", "uk", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "colorskew.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("colorskew.csv empty")
	}
}

func TestCSVArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-table", "2", "-inputs", "mg1", "-scale", "small", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-table", "3", "-inputs", "mg1", "-scale", "small", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table2.csv", "table3.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", name)
		}
	}
}

func TestNothingSelected(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("want error when nothing selected")
	}
}

func TestBadScale(t *testing.T) {
	if err := run([]string{"-all", "-scale", "cosmic"}); err == nil {
		t.Fatal("want error")
	}
}

func TestBadInputPropagates(t *testing.T) {
	if err := run([]string{"-table", "2", "-inputs", "bogus"}); err == nil {
		t.Fatal("want error for unknown input")
	}
}

func TestWorkerSweepShape(t *testing.T) {
	ws := workerSweep()
	if len(ws) == 0 || ws[0] != 1 {
		t.Fatalf("sweep %v must start at 1", ws)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] {
			t.Fatalf("sweep not increasing: %v", ws)
		}
	}
	if ws[len(ws)-1] < 8 {
		t.Fatalf("sweep %v must reach at least 8", ws)
	}
}
