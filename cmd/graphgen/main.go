// Command graphgen emits synthetic graphs from the paper's input-analog
// suite (or parameterized generators) to a file in edge-list or binary
// format, for feeding back into grappolo or external tools.
//
// Usage:
//
//	graphgen -input rgg -scale medium -o rgg.txt
//	graphgen -input friendster -scale large -format bin -o friendster.bin
//	graphgen -rmat 14 -edgefactor 16 -o social.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"grappolo/internal/generate"
	"grappolo/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		input      = fs.String("input", "", "suite input name (cnr, copapers, channel, europe, livejournal, mg1, rgg, uk, nlpkkt, mg2, friendster)")
		scale      = fs.String("scale", "small", "small | medium | large")
		seed       = fs.Uint64("seed", 0, "generator seed")
		rmat       = fs.Int("rmat", 0, "generate an R-MAT graph of 2^scale vertices instead of a suite input")
		edgeFactor = fs.Int("edgefactor", 16, "R-MAT edges per vertex")
		format     = fs.String("format", "edgelist", "edgelist | bin | metis")
		out        = fs.String("o", "", "output path (required)")
		workers    = fs.Int("workers", 0, "worker count (0 = all CPUs)")
		stats      = fs.Bool("stats", true, "print Table 1-style statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o output path is required")
	}

	var g *graph.Graph
	var err error
	switch {
	case *rmat > 0:
		g = generate.RMAT(*rmat, *edgeFactor, generate.Social, *seed, *workers)
	case *input != "":
		sc, serr := parseScale(*scale)
		if serr != nil {
			return serr
		}
		g, err = generate.Generate(generate.Input(*input), sc, *seed, *workers)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -input or -rmat")
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	switch *format {
	case "edgelist":
		err = graph.WriteEdgeList(f, g)
	case "bin":
		err = graph.WriteBinary(f, g)
	case "metis":
		err = graph.WriteMETIS(f, g)
	default:
		err = fmt.Errorf("unknown format %q (edgelist|bin|metis)", *format)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if *stats {
		fmt.Println(graph.ComputeStats(g))
	}
	fmt.Printf("wrote %s (%s)\n", *out, *format)
	return nil
}

func parseScale(s string) (generate.Scale, error) {
	switch s {
	case "small":
		return generate.Small, nil
	case "medium":
		return generate.Medium, nil
	case "large":
		return generate.Large, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (small|medium|large)", s)
	}
}
