package main

import (
	"os"
	"path/filepath"
	"testing"

	"grappolo/internal/graph"
)

func TestGenerateEdgeList(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.txt")
	if err := run([]string{"-input", "europe", "-scale", "small", "-o", out}); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadFile(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 || g.EdgeCount() == 0 {
		t.Fatal("empty graph written")
	}
}

func TestGenerateBinary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.bin")
	if err := run([]string{"-input", "mg1", "-scale", "small", "-format", "bin", "-o", out}); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadFile(out, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateMETIS(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.graph")
	if err := run([]string{"-input", "mg1", "-scale", "small", "-format", "metis", "-o", out}); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadFile(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRMAT(t *testing.T) {
	out := filepath.Join(t.TempDir(), "rmat.txt")
	if err := run([]string{"-rmat", "8", "-edgefactor", "4", "-o", out, "-stats=false"}); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadFile(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Edge-list round trips drop trailing isolated vertices, so n can fall
	// slightly below 2^scale when some vertices received no edges.
	if g.N() < 200 || g.N() > 256 {
		t.Fatalf("n=%d want ~256", g.N())
	}
}

func TestGenerateErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{},                              // no -o
		{"-o", filepath.Join(dir, "x")}, // no input
		{"-input", "bogus", "-o", filepath.Join(dir, "x")},                 // unknown input
		{"-input", "rgg", "-scale", "xl", "-o", filepath.Join(dir, "x")},   // bad scale
		{"-input", "rgg", "-format", "xml", "-o", filepath.Join(dir, "x")}, // bad format
		{"-input", "rgg", "-o", "/nonexistent/dir/x"},                      // unwritable
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v: want error", args)
		}
	}
	_ = os.Remove(filepath.Join(dir, "x"))
}
