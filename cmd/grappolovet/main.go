// Command grappolovet is the repository's custom vet: it runs the
// internal/analysis suite — the analyzers that mechanize grappolo's
// hand-enforced hot-path and serving invariants — over module packages and
// fails the build when any invariant is violated.
//
// Usage:
//
//	go run ./cmd/grappolovet [-tags taglist] [-list] [-run names] [patterns]
//
// Patterns follow the go tool's shape ("./...", "./internal/par",
// "./examples/..."); the default is "./...". The -tags flag mirrors go
// build's: CI runs the suite once per supported tag set (default,
// faultinject, noasm) so tag-gated files are analyzed too.
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"grappolo/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("grappolovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "comma-separated build tags, as in go build -tags")
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	root := fs.String("C", "", "module root to analyze (default: nearest go.mod at or above the working directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "grappolovet: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	moduleRoot, moduleName, err := findModule(*root)
	if err != nil {
		fmt.Fprintf(stderr, "grappolovet: %v\n", err)
		return 2
	}

	cfg := analysis.Config{Root: moduleRoot, Module: moduleName}
	if *tags != "" {
		for _, t := range strings.Split(*tags, ",") {
			if t = strings.TrimSpace(t); t != "" {
				cfg.Tags = append(cfg.Tags, t)
			}
		}
	}

	findings, err := analysis.Run(cfg, suite, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "grappolovet: %v\n", err)
		return 2
	}
	for _, f := range findings {
		// Print module-relative paths: stable across machines and CI.
		if rel, rerr := filepath.Rel(moduleRoot, f.Position.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			f.Position.Filename = rel
		}
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "grappolovet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModule locates the module root and reads its path from go.mod. With
// an explicit root it just reads that directory's go.mod; otherwise it
// walks up from the working directory.
func findModule(root string) (dir, module string, err error) {
	if root == "" {
		root, err = os.Getwd()
		if err != nil {
			return "", "", err
		}
		for {
			if _, serr := os.Stat(filepath.Join(root, "go.mod")); serr == nil {
				break
			}
			parent := filepath.Dir(root)
			if parent == root {
				return "", "", fmt.Errorf("no go.mod at or above the working directory")
			}
			root = parent
		}
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return root, strings.TrimSpace(rest), nil
		}
	}
	return "", "", fmt.Errorf("no module directive in %s", filepath.Join(root, "go.mod"))
}
