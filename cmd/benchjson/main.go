// Command benchjson runs the repo's performance-critical benchmarks and
// emits a machine-readable JSON report (BENCH_N.json at the repo root by
// convention), so every PR can prove a kernel win or catch a regression with
// numbers instead of prose. It shells out to `go test -bench` — the
// benchmarks themselves live next to the code they measure — and parses the
// standard benchmark output lines into structured results.
//
// Usage:
//
//	benchjson -out BENCH_8.json                  # default suite, medium scale
//	benchjson -benchtime 1x -out /tmp/smoke.json # CI smoke
//	benchjson -dir /tmp/baseline-tree -out /tmp/before.json
//	benchjson -baseline /tmp/before.json -out BENCH_8.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// suite names one `go test -bench` invocation: a package, the benchmark
// regexp to run in it, and its default -benchtime (kernel benchmarks need
// many iterations to beat scheduler noise on small CI boxes; the serving-tier
// benchmarks run whole detections per op and would take minutes at the same
// count).
type suite struct {
	Pkg       string `json:"package"`
	Bench     string `json:"bench"`
	Benchtime string `json:"benchtime"`
}

// defaultSuites cover the sweep/rebuild kernels (the paper's Fig. 8 hot
// path, with the in-process legacy baseline and both arc layouts) and the
// serving tiers that funnel into them.
var defaultSuites = []suite{
	{Pkg: "./internal/core", Bench: "^(BenchmarkDecideSweep|BenchmarkSweepUncolored|BenchmarkSweepColored|BenchmarkSweepAsyncPLM|BenchmarkRebuildParallel)$", Benchtime: "30x"},
	{Pkg: ".", Bench: "^(BenchmarkPoolDetect|BenchmarkBatcherDetect|BenchmarkShardedDetect|BenchmarkCacheDetect)$", Benchtime: "3x"},
}

// result is one parsed benchmark line.
type result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// suiteResult groups the results of one package invocation.
type suiteResult struct {
	Pkg       string   `json:"package"`
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Results   []result `json:"results"`
}

// report is the emitted JSON document.
type report struct {
	Schema    string          `json:"schema"`
	GoVersion string          `json:"go"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	CPUs      int             `json:"cpus"`
	Scale     string          `json:"scale"`
	Note      string          `json:"note,omitempty"`
	Suites    []suiteResult   `json:"suites"`
	Baseline  json.RawMessage `json:"baseline,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out       = fs.String("out", "BENCH_8.json", "output JSON path")
		benchtime = fs.String("benchtime", "", "override every suite's -benchtime (e.g. 1x for a CI smoke)")
		count     = fs.Int("count", 1, "passed to go test -count")
		scale     = fs.String("scale", "medium", "GRAPPOLO_BENCH_SCALE for the benchmark processes (small|medium|large)")
		dir       = fs.String("dir", "", "working tree to benchmark (default: current directory); use a checkout of an older commit to produce baseline numbers")
		baseline  = fs.String("baseline", "", "previously emitted benchjson report to embed verbatim as .baseline (the before numbers)")
		pkg       = fs.String("pkg", "", "override: run only this package ...")
		bench     = fs.String("bench", "", "override: benchmark regexp for -pkg")
		note      = fs.String("note", "", "free-form annotation recorded in the report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	suites := defaultSuites
	if *pkg != "" {
		re := *bench
		if re == "" {
			re = "."
		}
		suites = []suite{{Pkg: *pkg, Bench: re, Benchtime: "3x"}}
	} else if *bench != "" {
		return fmt.Errorf("-bench requires -pkg")
	}
	for i := range suites {
		if *benchtime != "" {
			suites[i].Benchtime = *benchtime
		}
	}

	rep := report{
		Schema:    "grappolo-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Scale:     *scale,
		Note:      *note,
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		if !json.Valid(raw) {
			return fmt.Errorf("baseline %s is not valid JSON", *baseline)
		}
		rep.Baseline = json.RawMessage(raw)
	}

	for _, s := range suites {
		cmd := exec.Command("go", "test", "-run=NONE",
			"-bench="+s.Bench, "-benchtime="+s.Benchtime,
			"-count="+strconv.Itoa(*count), s.Pkg)
		cmd.Dir = *dir
		cmd.Env = append(os.Environ(), "GRAPPOLO_BENCH_SCALE="+*scale)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		fmt.Fprintf(os.Stderr, "benchjson: go test -bench=%s %s\n", s.Bench, s.Pkg)
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("%s: %w", s.Pkg, err)
		}
		os.Stderr.Write(buf.Bytes())
		rs, err := parseBench(buf.String())
		if err != nil {
			return fmt.Errorf("%s: %w", s.Pkg, err)
		}
		rep.Suites = append(rep.Suites, suiteResult{Pkg: s.Pkg, Bench: s.Bench, Benchtime: s.Benchtime, Results: rs})
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*out, append(enc, '\n'), 0o644)
}

// parseBench extracts the benchmark result lines from go test output. A line
// looks like
//
//	BenchmarkDecideSweep/inter-4   5   3021456 ns/op   262144 vertices
//
// name, iteration count, then (value, unit) pairs; ns/op becomes the primary
// field, every other unit lands in Metrics.
func parseBench(out string) ([]result, error) {
	var rs []result
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." prose, not a result line
		}
		r := result{Name: f[0], Iters: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", f[i], line)
			}
			if f[i+1] == "ns/op" {
				r.NsPerOp = v
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[f[i+1]] = v
		}
		rs = append(rs, r)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in output")
	}
	return rs, nil
}
