// Command grappolo runs parallel Louvain community detection on a graph
// loaded from a file or generated from the synthetic input suite, and
// prints the result summary (and optionally the membership). The parallel
// path goes through the public grappolo API (New → Detect); the -serial
// flag runs the sequential Louvain reference the paper compares against.
//
// Usage:
//
//	grappolo -file graph.txt -variant vfcolor -workers 8
//	grappolo -input rgg -scale medium -variant baseline -stats
//	grappolo -file g.txt -serial            # serial Louvain reference
//	grappolo -file g.txt -out membership.txt
//	grappolo -input rgg -serve -clients 16  # serving-shell demo (Pool)
//	grappolo -input rgg -serve -batch       # …with request coalescing
//	grappolo -input rgg -serve -batch -maxqueue 8 -deadline 2s -degrade 4
//	                                        # …guarded: shedding, deadline
//	                                        #   budget, degraded fast profile
//	grappolo -input rgg -serve -shards 4 -exchange 2
//	                                        # …sharded: ghost-label-exchange
//	                                        #   partitioned detection
//	grappolo -input rgg -serve -cache -cachettl 1m
//	                                        # …cached: repeated identical
//	                                        #   graphs served with zero
//	                                        #   engine runs
//	grappolo -input rgg -serve -cache -delta 64
//	                                        # …with near-identical re-uploads
//	                                        #   routed onto the incremental
//	                                        #   maintainer
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"grappolo"
	"grappolo/generate"
	"grappolo/quality"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "grappolo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("grappolo", flag.ContinueOnError)
	var (
		file      = fs.String("file", "", "graph file (edge list, .graph/.metis, or .bin)")
		input     = fs.String("input", "", "synthetic input name (cnr, copapers, channel, europe, livejournal, mg1, rgg, uk, nlpkkt, mg2, friendster)")
		scale     = fs.String("scale", "small", "synthetic scale: small | medium | large")
		seed      = fs.Uint64("seed", 0, "synthetic generator seed")
		variant   = fs.String("variant", "vfcolor", "parallel variant: baseline | vf | vfcolor")
		serial    = fs.Bool("serial", false, "run the serial Louvain reference instead")
		workers   = fs.Int("workers", 0, "worker count (0 = all CPUs)")
		threshold = fs.Float64("threshold", 0, "final modularity-gain threshold (0 = default 1e-6)")
		cutoff    = fs.Int("color-cutoff", 0, "coloring vertex cutoff (0 = default 100000)")
		balance   = fs.String("balance", "off", "color-set rebalancing: off | vertex | arc | auto (§6.2 balanced coloring; auto applies arc mode only when the measured arc-load skew warrants it)")
		objective = fs.String("objective", "modularity", "quality function: modularity | cpm")
		cpmGamma  = fs.Float64("cpm-gamma", 0.5, "CPM resolution parameter (with -objective cpm)")
		stats     = fs.Bool("stats", false, "print input degree statistics (Table 1 row)")
		out       = fs.String("out", "", "write 'vertex community' membership lines to this file")
		hierarchy = fs.Bool("hierarchy", false, "print the community hierarchy (communities per dendrogram level)")
		compare   = fs.Bool("compare", false, "also run the serial reference and print Table 3-style agreement measures")
		top       = fs.Int("top", 0, "print per-community stats for the N largest communities")
		quiet     = fs.Bool("q", false, "suppress per-phase trace")
		serve     = fs.Bool("serve", false, "serving-shell demo: answer -requests concurrent duplicate detections from -clients goroutines through a Pool")
		batch     = fs.Bool("batch", false, "with -serve: put a coalescing Batcher in front of the Pool (duplicate requests share one engine run)")
		clients   = fs.Int("clients", 8, "with -serve: concurrent requester goroutines")
		requests  = fs.Int("requests", 64, "with -serve: total requests across all clients")
		maxqueue  = fs.Int("maxqueue", -1, "with -serve: guard the stack, shedding requests that would queue deeper than this (-1 = unbounded)")
		deadline  = fs.Duration("deadline", 0, "with -serve: guard the stack with this default per-request detection deadline (0 = none)")
		degrade   = fs.Int("degrade", 0, "with -serve: guard the stack, serving requests queued at this depth or beyond with the degraded fast profile (0 = off)")
		shards    = fs.Int("shards", 0, "with -serve: serve through the Sharded tier, partitioning the graph into this many shards with ghost-label exchange (0 = off)")
		exchange  = fs.Int("exchange", 2, "with -serve -shards: ghost-label exchange rounds between shard sweeps")
		cacheOn   = fs.Bool("cache", false, "with -serve: put a result Cache in front of the backend (repeated identical graphs are served with zero engine runs)")
		cachettl  = fs.Duration("cachettl", 0, "with -serve -cache: entry time-to-live (0 = until evicted)")
		cacheByt  = fs.Int64("cachebytes", 0, "with -serve -cache: resident byte budget for cached graphs+results (0 = default 256 MiB)")
		delta     = fs.Int("delta", 0, "with -serve -cache: edge-edit budget for routing near-identical re-uploads onto the incremental maintainer instead of a cold run (0 = off)")
		layoutF   = fs.String("layout", "split", "arc layout of the input graph: split | interleaved (coarse graphs inherit it; results are bit-identical, only runtimes differ)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := loadGraph(*file, *input, *scale, *seed, *workers)
	if err != nil {
		return err
	}
	switch *layoutF {
	case "split": // what every loader and generator builds
	case "interleaved":
		if err := grappolo.SetGraphLayout(g, grappolo.LayoutInterleaved, *workers); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown layout %q (split|interleaved)", *layoutF)
	}
	if *stats {
		fmt.Println(grappolo.ComputeGraphStats(g))
	}
	if *deadline < 0 || *degrade < 0 || *maxqueue < -1 {
		return fmt.Errorf("invalid guard flag (-maxqueue >= -1, -deadline >= 0, -degrade >= 0)")
	}
	if *shards < 0 || *exchange < 0 {
		return fmt.Errorf("invalid sharding flag (-shards >= 0, -exchange >= 0)")
	}
	if *cachettl < 0 || *cacheByt < 0 || *delta < 0 {
		return fmt.Errorf("invalid cache flag (-cachettl >= 0, -cachebytes >= 0, -delta >= 0)")
	}
	if !*cacheOn && (*cachettl > 0 || *cacheByt > 0 || *delta > 0) {
		return fmt.Errorf("-cachettl, -cachebytes and -delta require -cache")
	}
	if *serve {
		if *batch && *shards > 0 {
			return fmt.Errorf("-batch and -shards are mutually exclusive (a Batcher coalesces pool runs, a Sharded partitions them)")
		}
		return serveDemo(g, *workers, *batch, *clients, *requests, *quiet,
			*maxqueue, *deadline, *degrade, *shards, *exchange,
			*cacheOn, *cachettl, *cacheByt, *delta)
	}
	if *batch {
		return fmt.Errorf("-batch requires -serve")
	}
	if *maxqueue >= 0 || *deadline > 0 || *degrade > 0 {
		return fmt.Errorf("-maxqueue, -deadline and -degrade require -serve")
	}
	if *shards > 0 {
		return fmt.Errorf("-shards requires -serve")
	}
	if *cacheOn {
		return fmt.Errorf("-cache requires -serve")
	}

	var membership []int32
	start := time.Now()
	if *serial {
		res, err := grappolo.DetectSerial(g, *threshold)
		if err != nil {
			return err
		}
		membership = res.Membership
		fmt.Printf("serial louvain: n=%d communities=%d Q=%.6f iterations=%d phases=%d time=%s\n",
			g.N(), res.NumCommunities, res.Modularity, res.Iterations,
			res.Phases, time.Since(start).Round(time.Millisecond))
	} else {
		opts, err := variantOptions(*variant, *workers)
		if err != nil {
			return err
		}
		if *objective == "cpm" {
			// CPM is incompatible with VF (Lemma 3 is a modularity result);
			// rebuild the preset without the VF preprocessing options.
			opts = []grappolo.Option{grappolo.Workers(*workers)}
			if *variant == "vfcolor" {
				opts = append(opts, grappolo.Coloring(grappolo.Distance1))
			}
		}
		if *threshold > 0 {
			opts = append(opts, grappolo.Thresholds(0, *threshold))
		}
		if *cutoff > 0 {
			opts = append(opts, grappolo.ColoringCutoff(*cutoff))
		}
		switch *balance {
		case "off":
			opts = append(opts, grappolo.Balance(grappolo.BalanceOff))
		case "vertex":
			opts = append(opts, grappolo.Balance(grappolo.BalanceVertices))
		case "arc":
			opts = append(opts, grappolo.Balance(grappolo.BalanceArcs))
		case "auto":
			opts = append(opts, grappolo.Balance(grappolo.BalanceAuto))
		default:
			return fmt.Errorf("unknown balance mode %q (off|vertex|arc|auto)", *balance)
		}
		if *hierarchy {
			opts = append(opts, grappolo.KeepHierarchy())
		}
		switch *objective {
		case "modularity":
		case "cpm":
			opts = append(opts, grappolo.CPM(*cpmGamma))
		default:
			return fmt.Errorf("unknown objective %q (modularity|cpm)", *objective)
		}
		det, err := grappolo.New(opts...)
		if err != nil {
			return err
		}
		res, err := det.Detect(context.Background(), g)
		if err != nil {
			return err
		}
		membership = res.Membership
		fmt.Printf("grappolo (%s): n=%d communities=%d Q=%.6f iterations=%d phases=%d time=%s\n",
			*variant, g.N(), res.NumCommunities, res.Modularity, res.TotalIterations,
			len(res.Phases), time.Since(start).Round(time.Millisecond))
		if !*quiet {
			for i, ph := range res.Phases {
				endQ := 0.0
				if len(ph.Modularity) > 0 {
					endQ = ph.Modularity[len(ph.Modularity)-1]
				}
				colorCols := ""
				if ph.Colored {
					colorCols = fmt.Sprintf(" colors=%d rsd=%.3f arcrsd=%.3f",
						ph.NumColors, ph.ColorSetRSD, ph.ColorArcRSD)
				}
				fmt.Printf("  phase %d: n=%d iters=%d colored=%v%s Q=%.6f cluster=%s rebuild=%s\n",
					i+1, ph.VertexCount, ph.Iterations, ph.Colored, colorCols, endQ,
					ph.ClusterTime.Round(time.Microsecond), ph.RebuildTime.Round(time.Microsecond))
			}
			b := res.Timing
			fmt.Printf("  breakdown: vf=%s coloring=%s clustering=%s rebuild=%s\n",
				b.VF.Round(time.Microsecond), b.Coloring.Round(time.Microsecond),
				b.Clustering.Round(time.Microsecond), b.Rebuild.Round(time.Microsecond))
		}
		if *hierarchy {
			for l, level := range res.Levels {
				distinct := map[int32]bool{}
				for _, c := range level {
					distinct[c] = true
				}
				fmt.Printf("  level %d: %d communities\n", l+1, len(distinct))
			}
		}
		if *top > 0 {
			cs, err := grappolo.AnalyzeCommunities(g, res.Membership, *workers)
			if err != nil {
				return err
			}
			if *top < len(cs) {
				cs = cs[:*top]
			}
			fmt.Printf("  %8s %8s %12s %12s %12s %10s\n",
				"comm", "size", "intra-w", "cut-w", "conduct", "localQ")
			for _, c := range cs {
				fmt.Printf("  %8d %8d %12.2f %12.2f %12.4f %10.4f\n",
					c.ID, c.Size, c.IntraWeight, c.CutWeight, c.Conductance, c.LocalQ)
			}
		}
	}

	if *compare && !*serial {
		sres, err := grappolo.DetectSerial(g, 0)
		if err != nil {
			return err
		}
		pc, err := quality.ComparePartitions(sres.Membership, membership)
		if err != nil {
			return err
		}
		nmi, err := quality.NMI(sres.Membership, membership)
		if err != nil {
			return err
		}
		fmt.Printf("vs serial (Q=%.6f): %s NMI=%.2f%%\n",
			sres.Modularity, pc.Derive(), 100*nmi)
	}

	if *out != "" {
		if err := writeMembership(*out, membership); err != nil {
			return err
		}
		fmt.Printf("membership written to %s\n", *out)
	}
	return nil
}

// serveDemo exercises the serving shell the way a clustering service would:
// a fixed client fleet hammers the same resident graph — the duplicate-load
// shape request batching exists for — and the counters show the coalescing
// win (requests answered vs engine runs actually performed). Any of the
// guard flags (-maxqueue, -deadline, -degrade) wraps the stack in a Guard:
// shed requests (ErrOverloaded) then count as back-pressure, not failures,
// and requests admitted under queue pressure may be answered by the
// degraded fast profile (marked in the stats line). -shards swaps the
// backend for the Sharded tier: every request is answered by a partitioned
// ghost-label-exchange detection whose shard sweeps draw engines from the
// same pool. -cache fronts the stack with a result cache: under this demo's
// duplicate load, every request after the first is an exact hit served with
// zero engine runs.
func serveDemo(g *grappolo.Graph, workers int, batch bool, clients, requests int, quiet bool,
	maxqueue int, deadline time.Duration, degrade, shards, exchange int,
	cacheOn bool, cachettl time.Duration, cacheBytes int64, delta int) error {
	if clients < 1 || requests < 1 {
		return fmt.Errorf("-serve needs positive -clients and -requests")
	}
	pool, err := grappolo.NewPool(0, grappolo.Workers(workers))
	if err != nil {
		return err
	}
	detect := pool.DetectInto
	mode := "pool"
	var backend grappolo.Detecter = pool
	var batcher *grappolo.Batcher
	if batch {
		batcher = grappolo.NewBatcher(pool)
		backend = batcher
		detect = batcher.DetectInto
		mode = "pool+batcher"
	}
	if shards > 0 {
		sharded, err := grappolo.NewSharded(pool,
			grappolo.WithShards(shards), grappolo.WithExchangeRounds(exchange))
		if err != nil {
			return err
		}
		backend = sharded
		detect = sharded.DetectInto
		mode = fmt.Sprintf("pool+sharded(%d×%d)", shards, exchange)
	}
	var cache *grappolo.Cache
	if cacheOn {
		var copts []grappolo.CacheOption
		if cachettl > 0 {
			copts = append(copts, grappolo.CacheTTL(cachettl))
		}
		if cacheBytes > 0 {
			copts = append(copts, grappolo.CacheBytes(cacheBytes))
		}
		if delta > 0 {
			copts = append(copts, grappolo.DeltaEdits(delta))
		}
		if cache, err = grappolo.NewCache(backend, copts...); err != nil {
			return err
		}
		backend = cache
		detect = cache.DetectInto
		mode += "+cache"
	}
	var guard *grappolo.Guard
	if maxqueue >= 0 || deadline > 0 || degrade > 0 {
		var gopts []grappolo.GuardOption
		if maxqueue >= 0 {
			gopts = append(gopts, grappolo.MaxQueueDepth(maxqueue))
		}
		if deadline > 0 {
			gopts = append(gopts, grappolo.DetectDeadline(deadline))
		}
		if degrade > 0 {
			gopts = append(gopts, grappolo.DegradeAtDepth(degrade))
		}
		if batcher != nil {
			// Admit more requests than engines so duplicates can coalesce
			// as followers (which consume no engine permit).
			gopts = append(gopts, grappolo.MaxInFlight(4*pool.Size()))
		}
		if guard, err = grappolo.NewGuard(backend, gopts...); err != nil {
			return err
		}
		detect = guard.DetectInto
		mode += "+guard"
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	var failures atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	for c := 0; c < clients; c++ {
		n := requests / clients
		if c < requests%clients {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			var res *grappolo.Result
			var err error
			for r := 0; r < n; r++ {
				res, err = detect(ctx, g, res)
				if errors.Is(err, grappolo.ErrOverloaded) {
					// Back-pressure working as configured, not a failure;
					// GuardStats.Shed counts these.
					res = nil
					continue
				}
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if failures.Load() > 0 {
		return fmt.Errorf("%d requests failed (first: %v)", failures.Load(), firstErr.Load())
	}
	st := pool.Stats()
	if batcher != nil {
		st = batcher.Stats()
	}
	var gst grappolo.GuardStats
	if guard != nil {
		gst = guard.Stats()
		st = gst.PoolStats
	}
	fmt.Printf("serve (%s): %d requests, %d clients, %d engines: %s (%.1f req/s)\n",
		mode, requests, clients, pool.Size(),
		elapsed.Round(time.Millisecond), float64(requests)/elapsed.Seconds())
	if !quiet {
		fmt.Printf("  engine runs=%d coalesced=%d queued=%d canceled=%d\n",
			st.Led, st.Batched, st.Waited, st.Canceled)
		if cache != nil {
			cst := cache.Stats()
			fmt.Printf("  cache: hits=%d misses=%d delta=%d evicted=%d expired=%d rejected=%d entries=%d bytes=%d\n",
				cst.Hits, cst.Misses, cst.DeltaRouted, cst.Evictions,
				cst.Expired, cst.Rejected, cst.Entries, cst.Bytes)
		}
		if guard != nil {
			fmt.Printf("  guard: shed=%d degraded=%d recovered=%d\n",
				gst.Shed, gst.Degraded, gst.Recovered)
		}
	}
	return nil
}

func loadGraph(file, input, scale string, seed uint64, workers int) (*grappolo.Graph, error) {
	switch {
	case file != "" && input != "":
		return nil, fmt.Errorf("use either -file or -input, not both")
	case file != "":
		return grappolo.LoadGraph(file, workers)
	case input != "":
		sc, err := parseScale(scale)
		if err != nil {
			return nil, err
		}
		return generate.Generate(generate.Input(input), sc, seed, workers)
	default:
		return nil, fmt.Errorf("need -file or -input (see -h)")
	}
}

func parseScale(s string) (generate.Scale, error) {
	switch s {
	case "small":
		return generate.Small, nil
	case "medium":
		return generate.Medium, nil
	case "large":
		return generate.Large, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (small|medium|large)", s)
	}
}

func variantOptions(v string, workers int) ([]grappolo.Option, error) {
	base := []grappolo.Option{grappolo.Workers(workers)}
	switch v {
	case "baseline":
		return base, nil
	case "vf":
		return append(base, grappolo.VertexFollowing()), nil
	case "vfcolor":
		return append(base, grappolo.VertexFollowing(), grappolo.Coloring(grappolo.Distance1)), nil
	default:
		return nil, fmt.Errorf("unknown variant %q (baseline|vf|vfcolor)", v)
	}
}

func writeMembership(path string, membership []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for v, c := range membership {
		if _, err := fmt.Fprintf(w, "%d %d\n", v, c); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}
