package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grappolo/internal/graph"
)

func writeTempGraph(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	// Two triangles joined by one edge.
	content := "0 1\n1 2\n0 2\n3 4\n4 5\n3 5\n2 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnFile(t *testing.T) {
	path := writeTempGraph(t)
	if err := run([]string{"-file", path, "-variant", "baseline", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSerial(t *testing.T) {
	path := writeTempGraph(t)
	if err := run([]string{"-file", path, "-serial"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSyntheticInputWithStats(t *testing.T) {
	if err := run([]string{"-input", "rgg", "-scale", "small", "-variant", "vfcolor", "-stats", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHierarchyAndTop(t *testing.T) {
	path := writeTempGraph(t)
	if err := run([]string{"-file", path, "-variant", "baseline", "-hierarchy", "-top", "2", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompareMode(t *testing.T) {
	path := writeTempGraph(t)
	if err := run([]string{"-file", path, "-variant", "vfcolor", "-compare", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBalanceModes(t *testing.T) {
	path := writeTempGraph(t)
	for _, mode := range []string{"off", "vertex", "arc", "auto"} {
		if err := run([]string{"-file", path, "-variant", "vfcolor", "-color-cutoff", "1", "-balance", mode, "-q"}); err != nil {
			t.Fatalf("balance %s: %v", mode, err)
		}
	}
	if err := run([]string{"-file", path, "-balance", "nope", "-q"}); err == nil {
		t.Fatal("want error for unknown balance mode")
	}
}

func TestRunCPMObjective(t *testing.T) {
	path := writeTempGraph(t)
	if err := run([]string{"-file", path, "-variant", "vfcolor", "-objective", "cpm", "-cpm-gamma", "0.5", "-q"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-objective", "nope", "-q"}); err == nil {
		t.Fatal("want error for unknown objective")
	}
}

func TestRunWritesMembership(t *testing.T) {
	path := writeTempGraph(t)
	out := filepath.Join(t.TempDir(), "membership.txt")
	if err := run([]string{"-file", path, "-variant", "vf", "-out", out, "-q"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 6 {
		t.Fatalf("membership has %d lines, want 6", len(lines))
	}
	if !strings.HasPrefix(lines[0], "0 ") {
		t.Fatalf("first line %q", lines[0])
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                       // no input
		{"-file", "a", "-input", "b"},            // both sources
		{"-file", "/nonexistent/path.txt"},       // missing file
		{"-input", "bogus"},                      // unknown input
		{"-input", "rgg", "-scale", "galaxy"},    // bad scale
		{"-input", "rgg", "-variant", "nope"},    // bad variant
		{"-input", "rgg", "-out", "/dev/null/x"}, // unwritable out
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v: want error", args)
		}
	}
}

func TestVariantOptions(t *testing.T) {
	for _, v := range []string{"baseline", "vf", "vfcolor"} {
		if _, err := variantOptions(v, 2); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
	}
	if _, err := variantOptions("x", 2); err == nil {
		t.Fatal("want error")
	}
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"small", "medium", "large"} {
		if _, err := parseScale(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := parseScale("huge"); err == nil {
		t.Fatal("want error")
	}
}

func TestLoadGraphFromBinary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.Build(1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadGraph(path, "", "small", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 3 {
		t.Fatalf("n=%d", got.N())
	}
}

func TestRunServeMode(t *testing.T) {
	path := writeTempGraph(t)
	if err := run([]string{"-file", path, "-serve", "-clients", "3", "-requests", "7", "-workers", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunServeModeBatched(t *testing.T) {
	path := writeTempGraph(t)
	if err := run([]string{"-file", path, "-serve", "-batch", "-clients", "4", "-requests", "16", "-workers", "1", "-q"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBatchRequiresServe(t *testing.T) {
	path := writeTempGraph(t)
	if err := run([]string{"-file", path, "-batch"}); err == nil {
		t.Fatal("-batch without -serve must be rejected")
	}
}

func TestRunServeModeGuarded(t *testing.T) {
	path := writeTempGraph(t)
	if err := run([]string{"-file", path, "-serve", "-batch",
		"-maxqueue", "8", "-deadline", "30s", "-degrade", "4",
		"-clients", "4", "-requests", "16", "-workers", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGuardFlagsRequireServe(t *testing.T) {
	path := writeTempGraph(t)
	for _, args := range [][]string{
		{"-file", path, "-maxqueue", "4"},
		{"-file", path, "-deadline", "1s"},
		{"-file", path, "-degrade", "2"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("%v without -serve must be rejected", args[2])
		}
	}
}

func TestRunServeModeGuardInvalid(t *testing.T) {
	path := writeTempGraph(t)
	// -degrade 0 is "off", but the depth bound still validates: a request
	// path exists only through NewGuard, whose errors must surface.
	if err := run([]string{"-file", path, "-serve", "-deadline", "-1s"}); err == nil {
		t.Fatal("negative -deadline must be rejected")
	}
}
