// Social-network example: reproduces the paper's Soc-LiveJournal1 workload
// shape (hub-skewed social graph, moderate community structure) at medium
// scale, then sweeps worker counts with the headline variant to show the
// scaling behaviour of Figs. 3–7, including the runtime breakdown the
// paper uses to explain sub-linear regions (Fig. 8).
//
// Run with: go run ./examples/socialnetwork
package main

import (
	"fmt"
	"runtime"
	"time"

	"grappolo/internal/core"
	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/seq"
)

func main() {
	g := generate.MustGenerate(generate.LiveJournal, generate.Medium, 0, 0)
	st := graph.ComputeStats(g)
	fmt.Printf("social graph: %s\n", st)

	// Serial reference (the paper's Table 2 comparison).
	start := time.Now()
	serial := seq.Run(g, seq.Options{})
	serialTime := time.Since(start)
	fmt.Printf("%-10s Q=%.4f communities=%d time=%s\n",
		"serial", serial.Modularity, serial.NumCommunities, serialTime.Round(time.Millisecond))

	// Thread sweep with baseline+VF+Color.
	maxW := runtime.GOMAXPROCS(0)
	fmt.Printf("\n%8s %10s %12s %9s %9s %12s %12s\n",
		"workers", "Q", "time", "rel", "abs", "clustering", "rebuild")
	var ref time.Duration
	for w := 1; w <= maxW; w *= 2 {
		opts := core.BaselineVFColor(w)
		opts.ColoringVertexCutoff = 512
		start = time.Now()
		res := core.Run(g, opts)
		elapsed := time.Since(start)
		if w == 1 {
			ref = elapsed
		}
		fmt.Printf("%8d %10.4f %12s %8.2fx %8.2fx %12s %12s\n",
			w, res.Modularity, elapsed.Round(time.Millisecond),
			float64(ref)/float64(elapsed), float64(serialTime)/float64(elapsed),
			res.Timing.Clustering.Round(time.Millisecond),
			res.Timing.Rebuild.Round(time.Millisecond))
	}
}
