// Social-network example: reproduces the paper's Soc-LiveJournal1 workload
// shape (hub-skewed social graph, moderate community structure) at medium
// scale, sweeps worker counts with the headline variant to show the scaling
// behaviour of Figs. 3–7 with the runtime breakdown of Fig. 8, then serves
// the same graph from a grappolo.Pool — many concurrent single-worker
// detections — the way a clustering service would, comparing request
// throughput against back-to-back detection. (The serial Louvain reference
// of Table 2 is available via `go run ./cmd/grappolo -serial`.)
//
// Run with: go run ./examples/socialnetwork
package main

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"grappolo"
	"grappolo/generate"
)

func main() {
	g := generate.MustGenerate(generate.LiveJournal, generate.Medium, 0, 0)
	fmt.Printf("social graph: %s\n", grappolo.ComputeGraphStats(g))
	ctx := context.Background()

	// Thread sweep with baseline+VF+Color: one big detection, more workers.
	maxW := runtime.GOMAXPROCS(0)
	fmt.Printf("\n%8s %10s %12s %9s %12s %12s\n",
		"workers", "Q", "time", "rel", "clustering", "rebuild")
	var ref time.Duration
	for w := 1; w <= maxW; w *= 2 {
		det, err := grappolo.New(
			grappolo.Workers(w),
			grappolo.VertexFollowing(),
			grappolo.Coloring(grappolo.Distance1),
			grappolo.ColoringCutoff(512),
		)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		res, err := det.Detect(ctx, g)
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		if w == 1 {
			ref = elapsed
		}
		fmt.Printf("%8d %10.4f %12s %8.2fx %12s %12s\n",
			w, res.Modularity, elapsed.Round(time.Millisecond),
			float64(ref)/float64(elapsed),
			res.Timing.Clustering.Round(time.Millisecond),
			res.Timing.Rebuild.Round(time.Millisecond))
	}

	// Serving mode: the other way to spend the same cores is request-level
	// parallelism — a bounded pool of single-worker engines answering many
	// detection requests concurrently, warm engines recycled back to back.
	const requests = 16
	pool, err := grappolo.NewPool(maxW, grappolo.Workers(1),
		grappolo.VertexFollowing(),
		grappolo.Coloring(grappolo.Distance1),
		grappolo.ColoringCutoff(512))
	if err != nil {
		panic(err)
	}
	warm, err := pool.Detect(ctx, g) // warm one engine, check quality once
	if err != nil {
		panic(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pool.Detect(ctx, g); err != nil {
				panic(err)
			}
		}()
	}
	wg.Wait()
	concT := time.Since(start)
	fmt.Printf("\n%s serving %d requests: Q=%.4f total=%s (%.1f req/s, vs %s/run single-stream)\n",
		pool, requests, warm.Modularity, concT.Round(time.Millisecond),
		float64(requests)/concT.Seconds(), ref.Round(time.Millisecond))
}
