// Streaming example: the paper's future-work item (i) targets "community
// detection in real-time". This example feeds a growing social network into
// a grappolo.Stream: it seeds with 60% of the edges, streams the rest in
// batches, and compares the incrementally maintained modularity (and cost)
// against re-running detection from scratch at each checkpoint with a warm
// Detector.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"grappolo"
	"grappolo/generate"
)

// detectOpts is the full-detection configuration shared by the stream's
// re-anchoring runs and the from-scratch comparison.
func detectOpts() []grappolo.Option {
	return []grappolo.Option{
		grappolo.VertexFollowing(),
		grappolo.Coloring(grappolo.Distance1),
		grappolo.ColoringCutoff(512),
	}
}

func main() {
	full := generate.MustGenerate(generate.LiveJournal, generate.Medium, 0, 0)
	fmt.Printf("target graph: %d vertices, %d edges\n", full.N(), full.EdgeCount())

	// Split the edge set 60/40 deterministically.
	rng := rand.New(rand.NewSource(7))
	var initial, stream []grappolo.Edge
	for u := 0; u < full.N(); u++ {
		nbr, wts := full.Neighbors(u)
		for t, v := range nbr {
			if int32(u) > v {
				continue
			}
			e := grappolo.Edge{U: int32(u), V: v, W: wts[t]}
			if rng.Float64() < 0.6 {
				initial = append(initial, e)
			} else {
				stream = append(stream, e)
			}
		}
	}
	seed := grappolo.FromEdges(full.N(), initial, 0)

	start := time.Now()
	s, err := grappolo.NewStream(seed, detectOpts(),
		grappolo.BatchSize(2048), grappolo.RefreshFraction(0.30))
	if err != nil {
		panic(err)
	}
	fmt.Printf("seeded with %d edges: Q=%.4f (init %s)\n\n",
		len(initial), s.Modularity(), time.Since(start).Round(time.Millisecond))

	// One warm Detector answers every from-scratch comparison; its engine
	// scratch is recycled across checkpoints.
	scratchDet, err := grappolo.New(detectOpts()...)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	fmt.Printf("%10s %12s %12s %12s %10s %8s\n",
		"streamed", "incr Q", "scratch Q", "incr t", "scratch t", "fulls")
	checkpoints := 4
	chunk := (len(stream) + checkpoints - 1) / checkpoints
	streamed := 0
	for c := 0; c < checkpoints; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > len(stream) {
			hi = len(stream)
		}
		t0 := time.Now()
		for _, e := range stream[lo:hi] {
			if err := s.AddEdge(e.U, e.V, e.W); err != nil {
				panic(err)
			}
		}
		s.Flush()
		incrT := time.Since(t0)
		streamed += hi - lo

		// Scratch comparison on the same snapshot.
		t0 = time.Now()
		snap := s.Snapshot()
		scratch, err := scratchDet.Detect(ctx, snap)
		if err != nil {
			panic(err)
		}
		scratchT := time.Since(t0)

		fmt.Printf("%10d %12.4f %12.4f %12s %10s %8d\n",
			streamed, s.Modularity(), scratch.Modularity,
			incrT.Round(time.Millisecond), scratchT.Round(time.Millisecond),
			s.FullRuns())
	}
}
