// Streaming example: the paper's future-work item (i) targets "community
// detection in real-time". This example feeds a growing social network into
// the dynamic maintainer: it seeds with 60% of the edges, streams the rest
// in batches, and compares the incrementally maintained modularity (and
// cost) against re-running detection from scratch at each checkpoint.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"time"

	"grappolo/internal/core"
	"grappolo/internal/dynamic"
	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

func main() {
	full := generate.MustGenerate(generate.LiveJournal, generate.Medium, 0, 0)
	fmt.Printf("target graph: %d vertices, %d edges\n", full.N(), full.EdgeCount())

	// Split the edge set 60/40 deterministically.
	rng := par.NewRNG(7)
	var initial, stream []graph.Edge
	for u := 0; u < full.N(); u++ {
		nbr, wts := full.Neighbors(u)
		for t, v := range nbr {
			if int32(u) > v {
				continue
			}
			e := graph.Edge{U: int32(u), V: v, W: wts[t]}
			if rng.Float64() < 0.6 {
				initial = append(initial, e)
			} else {
				stream = append(stream, e)
			}
		}
	}
	gb := graph.NewBuilder(full.N())
	gb.AddEdges(initial)
	seed := gb.Build(0)

	opts := dynamic.Options{
		BatchSize:       2048,
		RefreshFraction: 0.30,
		Full:            fullOpts(),
	}
	start := time.Now()
	m := dynamic.New(seed, opts)
	fmt.Printf("seeded with %d edges: Q=%.4f (init %s)\n\n",
		len(initial), m.Modularity(), time.Since(start).Round(time.Millisecond))

	fmt.Printf("%10s %12s %12s %12s %10s %8s\n",
		"streamed", "incr Q", "scratch Q", "incr t", "scratch t", "fulls")
	checkpoints := 4
	chunk := (len(stream) + checkpoints - 1) / checkpoints
	streamed := 0
	for c := 0; c < checkpoints; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > len(stream) {
			hi = len(stream)
		}
		t0 := time.Now()
		for _, e := range stream[lo:hi] {
			if err := m.AddEdge(e.U, e.V, e.W); err != nil {
				panic(err)
			}
		}
		m.Flush()
		incrT := time.Since(t0)
		streamed += hi - lo

		// Scratch comparison on the same snapshot.
		t0 = time.Now()
		snap := m.Snapshot()
		scratch := core.Run(snap, fullOpts())
		scratchT := time.Since(t0)

		fmt.Printf("%10d %12.4f %12.4f %12s %10s %8d\n",
			streamed, m.Modularity(), scratch.Modularity,
			incrT.Round(time.Millisecond), scratchT.Round(time.Millisecond),
			m.FullRuns())
	}
}

func fullOpts() core.Options {
	o := core.BaselineVFColor(0)
	o.ColoringVertexCutoff = 512
	return o
}
