// Road-network example: the paper's Europe-osm input is the stress case for
// the vertex-following heuristic (§6.2): road graphs have average degree ≈ 2
// with long chains and many single-degree spokes, so VF shrinks the first
// phase dramatically — but can also prolong convergence by keeping hubs in
// play. This example reproduces that trade-off and shows the §5.3
// chain-compression extension recovering the balance.
//
// Run with: go run ./examples/roadnetwork
package main

import (
	"context"
	"fmt"
	"time"

	"grappolo"
	"grappolo/generate"
)

func main() {
	g := generate.MustGenerate(generate.EuropeOSM, generate.Medium, 0, 0)
	st := grappolo.ComputeGraphStats(g)
	single := 0
	for i := 0; i < g.N(); i++ {
		if g.OutDegree(i) == 1 {
			single++
		}
	}
	fmt.Printf("road network: %s\n", st)
	fmt.Printf("single-degree vertices: %d (%.1f%%)\n\n", single, 100*float64(single)/float64(st.N))

	variants := []struct {
		name string
		opts []grappolo.Option
	}{
		{"baseline (no VF)", nil},
		{"baseline+vf", []grappolo.Option{grappolo.VertexFollowing()}},
		{"baseline+vf+chain", []grappolo.Option{grappolo.VFChains()}},
		{"baseline+vf+color", []grappolo.Option{
			grappolo.VertexFollowing(),
			grappolo.Coloring(grappolo.Distance1),
			grappolo.ColoringCutoff(512),
		}},
	}
	ctx := context.Background()
	fmt.Printf("%-20s %10s %8s %8s %14s %14s\n",
		"variant", "Q", "iters", "phase1-n", "vf-time", "total-time")
	for _, v := range variants {
		start := time.Now()
		res, err := grappolo.Detect(ctx, g, v.opts...)
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		phase1 := 0
		if len(res.Phases) > 0 {
			phase1 = res.Phases[0].VertexCount
		}
		fmt.Printf("%-20s %10.4f %8d %8d %14s %14s\n",
			v.name, res.Modularity, res.TotalIterations, phase1,
			res.Timing.VF.Round(time.Microsecond), elapsed.Round(time.Millisecond))
	}
}
