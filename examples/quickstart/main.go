// Quickstart: build a small graph, run parallel Louvain through the public
// grappolo API, print communities.
//
// The graph is Zachary's karate club (34 vertices, 78 edges), the canonical
// community-detection example: a university karate club that split into two
// factions. Louvain typically finds 4 sub-communities nested within the two
// factions, with modularity ≈ 0.41.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"sort"

	"grappolo"
)

// karateEdges is the edge list of Zachary's karate club (0-based ids).
var karateEdges = [][2]int32{
	{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}, {0, 10},
	{0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21}, {0, 31}, {1, 2},
	{1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19}, {1, 21}, {1, 30}, {2, 3},
	{2, 7}, {2, 8}, {2, 9}, {2, 13}, {2, 27}, {2, 28}, {2, 32}, {3, 7},
	{3, 12}, {3, 13}, {4, 6}, {4, 10}, {5, 6}, {5, 10}, {5, 16}, {6, 16},
	{8, 30}, {8, 32}, {8, 33}, {9, 33}, {13, 33}, {14, 32}, {14, 33},
	{15, 32}, {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33},
	{22, 32}, {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33},
	{24, 25}, {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33},
	{28, 31}, {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32},
	{31, 33}, {32, 33},
}

func main() {
	// 1. Build the graph. Unweighted edges default to weight 1.
	b := grappolo.NewBuilder(34)
	for _, e := range karateEdges {
		b.AddEdge(e[0], e[1], 1)
	}
	g := b.Build(0) // 0 workers = all CPUs

	// 2. Create a Detector with the paper's headline configuration:
	//    minimum-label heuristic + vertex following + multi-phase coloring.
	//    New validates the whole configuration and returns an error for
	//    invalid combinations instead of silently correcting them.
	det, err := grappolo.New(
		grappolo.VertexFollowing(),
		grappolo.Coloring(grappolo.Distance1),
		grappolo.ColoringCutoff(1), // tiny graph; color anyway for the demo
	)
	if err != nil {
		panic(err)
	}

	// 3. Detect. The context threads cancellation into the pipeline; a
	//    server would pass its request context here.
	res, err := det.Detect(context.Background(), g)
	if err != nil {
		panic(err)
	}

	// 4. Report.
	fmt.Printf("karate club: %d vertices, %d edges\n", g.N(), g.EdgeCount())
	fmt.Printf("communities: %d, modularity: %.4f, iterations: %d, phases: %d\n",
		res.NumCommunities, res.Modularity, res.TotalIterations, len(res.Phases))

	groups := make(map[int32][]int)
	for v, c := range res.Membership {
		groups[c] = append(groups[c], v)
	}
	ids := make([]int32, 0, len(groups))
	for c := range groups {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, c := range ids {
		fmt.Printf("  community %d: %v\n", c, groups[c])
	}
}
