// Metagenomics example: the paper's MG1/MG2 inputs are protein-sequence
// homology graphs from ocean metagenomics (built with pGraph [16]) where
// communities correspond to protein families — many dense clusters with
// sparse cross-links and modularity ≈ 0.97. This example reproduces that
// workload with the SBM analog, clusters it with all three parallel
// variants through the public API, and scores each against the planted
// protein families using the Table 3 measures.
//
// Run with: go run ./examples/metagenomics
package main

import (
	"context"
	"fmt"
	"time"

	"grappolo"
	"grappolo/generate"
	"grappolo/quality"
)

func main() {
	// Power-law family sizes mimic real protein family distributions.
	sizes := generate.PowerLawCommunitySizes(150, 20, 400, 2.2, 42)
	g, families := generate.SBM(generate.SBMConfig{
		Communities: sizes,
		IntraDegree: 24,   // dense homology within a family
		CrossFrac:   0.04, // rare cross-family similarity hits
	}, 42, 0)
	fmt.Printf("metagenomics analog: %d proteins, %d similarity edges, %d planted families\n",
		g.N(), g.EdgeCount(), len(sizes))

	variants := []struct {
		name string
		opts []grappolo.Option
	}{
		{"baseline", nil},
		{"baseline+vf", []grappolo.Option{grappolo.VertexFollowing()}},
		{"baseline+vf+color", []grappolo.Option{
			grappolo.VertexFollowing(),
			grappolo.Coloring(grappolo.Distance1),
			grappolo.ColoringCutoff(256), // laptop-scale input; keep coloring active
		}},
	}
	ctx := context.Background()
	for _, v := range variants {
		det, err := grappolo.New(v.opts...)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		res, err := det.Detect(ctx, g)
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		pc, err := quality.ComparePartitions(families, res.Membership)
		if err != nil {
			panic(err)
		}
		m := pc.Derive()
		fmt.Printf("%-18s Q=%.4f families=%d time=%-10s %s\n",
			v.name, res.Modularity, res.NumCommunities, elapsed.Round(time.Millisecond), m)
	}
}
