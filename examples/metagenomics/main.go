// Metagenomics example: the paper's MG1/MG2 inputs are protein-sequence
// homology graphs from ocean metagenomics (built with pGraph [16]) where
// communities correspond to protein families — many dense clusters with
// sparse cross-links and modularity ≈ 0.97. This example reproduces that
// workload with the SBM analog, clusters it with all three parallel
// variants, and scores each against the planted protein families using the
// Table 3 measures.
//
// Run with: go run ./examples/metagenomics
package main

import (
	"fmt"
	"time"

	"grappolo/internal/core"
	"grappolo/internal/generate"
	"grappolo/internal/quality"
)

func main() {
	// Power-law family sizes mimic real protein family distributions.
	sizes := generate.PowerLawCommunitySizes(150, 20, 400, 2.2, 42)
	g, families := generate.SBM(generate.SBMConfig{
		Communities: sizes,
		IntraDegree: 24,   // dense homology within a family
		CrossFrac:   0.04, // rare cross-family similarity hits
	}, 42, 0)
	fmt.Printf("metagenomics analog: %d proteins, %d similarity edges, %d planted families\n",
		g.N(), g.EdgeCount(), len(sizes))

	variants := []struct {
		name string
		opts core.Options
	}{
		{"baseline", core.Baseline(0)},
		{"baseline+vf", core.BaselineVF(0)},
		{"baseline+vf+color", colorOpts()},
	}
	for _, v := range variants {
		start := time.Now()
		res := core.Run(g, v.opts)
		elapsed := time.Since(start)
		pc, err := quality.ComparePartitions(families, res.Membership)
		if err != nil {
			panic(err)
		}
		m := pc.Derive()
		fmt.Printf("%-18s Q=%.4f families=%d time=%-10s %s\n",
			v.name, res.Modularity, res.NumCommunities, elapsed.Round(time.Millisecond), m)
	}
}

func colorOpts() core.Options {
	o := core.BaselineVFColor(0)
	o.ColoringVertexCutoff = 256 // laptop-scale input; keep coloring active
	return o
}
