package grappolo_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"grappolo"
	"grappolo/internal/core"
	"grappolo/internal/generate"
)

// TestPoolConcurrentDetectMatchesFreshRun pins the Pool's serving
// guarantee under the race detector: N goroutines hammering Detect with a
// mix of graph shapes each get results bit-identical to a fresh one-shot
// core.Run with the equivalent options, no matter which pooled engine (in
// whatever reuse order) serves them. Uncolored sweeps are deterministic at
// any worker count, so Workers(4) is safe to compare exactly.
func TestPoolConcurrentDetectMatchesFreshRun(t *testing.T) {
	inputs := []generate.Input{generate.CNR, generate.MG1, generate.EuropeOSM}
	graphs := make([]*grappolo.Graph, len(inputs))
	wants := make([]*grappolo.Result, len(inputs))
	for i, in := range inputs {
		graphs[i] = generate.MustGenerate(in, generate.Small, 0, 4)
		wants[i] = core.Run(graphs[i], core.Options{Workers: 4})
	}

	pool, err := grappolo.NewPool(3, grappolo.Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 6
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var res *grappolo.Result
			var err error
			for r := 0; r < perG; r++ {
				gi := (w + r) % len(graphs)
				// Alternate fresh and recycled results to cover both paths.
				if r%2 == 0 {
					res, err = pool.Detect(ctx, graphs[gi])
				} else {
					res, err = pool.DetectInto(ctx, graphs[gi], res)
				}
				if err != nil {
					errs <- err
					return
				}
				want := wants[gi]
				if res.Modularity != want.Modularity ||
					res.NumCommunities != want.NumCommunities ||
					res.TotalIterations != want.TotalIterations {
					errs <- fmt.Errorf("goroutine %d req %d on %s: Q=%v nc=%d iters=%d, want Q=%v nc=%d iters=%d",
						w, r, inputs[gi], res.Modularity, res.NumCommunities, res.TotalIterations,
						want.Modularity, want.NumCommunities, want.TotalIterations)
					return
				}
				for v := range want.Membership {
					if res.Membership[v] != want.Membership[v] {
						errs <- fmt.Errorf("goroutine %d req %d on %s: membership differs at vertex %d", w, r, inputs[gi], v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoolRespectsContextWhileQueued pins the acquisition path: a done
// context makes Detect return ctx.Err() whether it loses the race for a
// permit or wins it (the engine's own pre-run check catches the latter).
func TestPoolRespectsContextWhileQueued(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := pool.Detect(ctx, g); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("canceled pool Detect: res=%v err=%v, want nil, context.Canceled", res, err)
	}
	// The pool stays healthy after a canceled request.
	if _, err := pool.Detect(context.Background(), g); err != nil {
		t.Fatal(err)
	}
}

// TestPoolDefaultsAndValidation covers sizing defaults and option errors.
func TestPoolDefaultsAndValidation(t *testing.T) {
	pool, err := grappolo.NewPool(0)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Size=%d, want GOMAXPROCS=%d", pool.Size(), runtime.GOMAXPROCS(0))
	}
	if _, err := grappolo.NewPool(2, grappolo.Workers(-2)); err == nil {
		t.Fatal("NewPool accepted invalid options")
	}
}
