package grappolo_test

import (
	"context"
	"errors"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"grappolo"
	"grappolo/internal/analysis"
	"grappolo/internal/core"
	"grappolo/internal/generate"
)

// publicConfigs pairs a public functional-options configuration with the
// internal core.Options it must be equivalent to — the public-API mirror of
// core's engineConfigs (deterministic configurations only: uncolored modes
// at any worker count, colored modes at one worker).
func publicConfigs() map[string]struct {
	opts []grappolo.Option
	core core.Options
} {
	type cfg = struct {
		opts []grappolo.Option
		core core.Options
	}
	colored1 := core.Options{Workers: 1, Coloring: core.ColorMultiPhase, ColoringVertexCutoff: 1}
	withBal := func(o core.Options, b core.ColorBalance) core.Options { o.ColorBalance = b; return o }
	d2 := colored1
	d2.Distance2Coloring = true
	jp := colored1
	jp.JonesPlassmann = true
	return map[string]cfg{
		"baseline-w4": {
			[]grappolo.Option{grappolo.Workers(4)},
			core.Options{Workers: 4}},
		"vf-chain-w4": {
			[]grappolo.Option{grappolo.Workers(4), grappolo.VFChains()},
			core.Options{Workers: 4, VertexFollowing: true, VFChainCompression: true}},
		"hierarchy-w4": {
			[]grappolo.Option{grappolo.Workers(4), grappolo.KeepHierarchy()},
			core.Options{Workers: 4, KeepHierarchy: true}},
		"serialrenumber-w2": {
			[]grappolo.Option{grappolo.Workers(2), grappolo.SerialRenumber()},
			core.Options{Workers: 2, SerialRenumber: true}},
		"cpm-w4": {
			[]grappolo.Option{grappolo.Workers(4), grappolo.CPM(0.5)},
			core.Options{Workers: 4, Objective: core.ObjCPM, CPMGamma: 0.5}},
		"color-w1": {
			[]grappolo.Option{grappolo.Workers(1), grappolo.Coloring(grappolo.Distance1), grappolo.ColoringCutoff(1)},
			colored1},
		"color-arc-w1": {
			[]grappolo.Option{grappolo.Workers(1), grappolo.Coloring(grappolo.Distance1), grappolo.ColoringCutoff(1), grappolo.Balance(grappolo.BalanceArcs)},
			withBal(colored1, core.BalanceArcs)},
		"color-auto-w1": {
			[]grappolo.Option{grappolo.Workers(1), grappolo.Coloring(grappolo.Distance1), grappolo.ColoringCutoff(1), grappolo.Balance(grappolo.BalanceAuto)},
			withBal(colored1, core.BalanceAuto)},
		"color-vertex-d2-w1": {
			[]grappolo.Option{grappolo.Workers(1), grappolo.Coloring(grappolo.Distance2), grappolo.ColoringCutoff(1), grappolo.Balance(grappolo.BalanceVertices)},
			withBal(d2, core.BalanceVertices)},
		"color-jp-w1": {
			[]grappolo.Option{grappolo.Workers(1), grappolo.Coloring(grappolo.JonesPlassmann), grappolo.ColoringCutoff(1)},
			jp},
	}
}

func sameResult(t *testing.T, name string, got, want *grappolo.Result) {
	t.Helper()
	if !slices.Equal(got.Membership, want.Membership) {
		t.Fatalf("%s: memberships differ", name)
	}
	if got.NumCommunities != want.NumCommunities || got.Modularity != want.Modularity {
		t.Fatalf("%s: nc=%d Q=%v, want nc=%d Q=%v",
			name, got.NumCommunities, got.Modularity, want.NumCommunities, want.Modularity)
	}
	if got.TotalIterations != want.TotalIterations || len(got.Phases) != len(want.Phases) {
		t.Fatalf("%s: iters=%d phases=%d, want iters=%d phases=%d",
			name, got.TotalIterations, len(got.Phases), want.TotalIterations, len(want.Phases))
	}
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("%s: %d hierarchy levels, want %d", name, len(got.Levels), len(want.Levels))
	}
	for l := range want.Levels {
		if !slices.Equal(got.Levels[l], want.Levels[l]) {
			t.Fatalf("%s: hierarchy level %d differs", name, l)
		}
	}
}

// TestDetectorMatchesCoreRun is the public-API golden test mirroring
// core's TestEngineReuseMatchesFreshRun: for every deterministic public
// configuration, a reused Detector — including DetectInto result recycling —
// is bit-identical to a fresh one-shot core.Run with the equivalent
// internal options.
func TestDetectorMatchesCoreRun(t *testing.T) {
	ctx := context.Background()
	for _, in := range []generate.Input{generate.CNR, generate.EuropeOSM} {
		g := generate.MustGenerate(in, generate.Small, 0, 4)
		for name, cfg := range publicConfigs() {
			want := core.Run(g, cfg.core)
			det, err := grappolo.New(cfg.opts...)
			if err != nil {
				t.Fatalf("%s: New: %v", name, err)
			}
			var res *grappolo.Result
			for rep := 0; rep < 3; rep++ {
				res, err = det.DetectInto(ctx, g, res)
				if err != nil {
					t.Fatalf("%s: Detect: %v", name, err)
				}
				sameResult(t, string(in)+"/"+name, res, want)
			}
		}
	}
}

// TestNewRejectsInvalidOptions pins the validation contract: every invalid
// value or combination is an error from New, never a silent correction.
func TestNewRejectsInvalidOptions(t *testing.T) {
	cases := map[string][]grappolo.Option{
		"negative-workers":      {grappolo.Workers(-1)},
		"cpm-zero-gamma":        {grappolo.CPM(0)},
		"cpm-negative-gamma":    {grappolo.CPM(-0.5)},
		"cpm-with-vf":           {grappolo.CPM(0.5), grappolo.VertexFollowing()},
		"cpm-with-vfchains":     {grappolo.VFChains(), grappolo.CPM(0.5)},
		"async-with-coloring":   {grappolo.Async(), grappolo.Coloring(grappolo.Distance1)},
		"firstphase-uncolored":  {grappolo.FirstPhaseColoring()},
		"zero-cutoff":           {grappolo.ColoringCutoff(0)},
		"negative-thresholds":   {grappolo.Thresholds(-1, 0)},
		"negative-resolution":   {grappolo.Resolution(-2)},
		"zero-resolution":       {grappolo.Resolution(0)},
		"negative-maxiter":      {grappolo.MaxIterations(-1)},
		"negative-maxphases":    {grappolo.MaxPhases(-3)},
		"unknown-coloring-kind": {grappolo.Coloring(grappolo.ColoringKind(99))},
		"unknown-balance-mode":  {grappolo.Balance(grappolo.BalanceMode(99))},
		"zero-auto-threshold":   {grappolo.AutoBalanceThreshold(0)},
		"nil-option":            {nil},
		// Options that only act with coloring enabled must not no-op.
		"balance-without-coloring": {grappolo.Balance(grappolo.BalanceArcs)},
		"cutoff-without-coloring":  {grappolo.ColoringCutoff(64)},
		"autothreshold-without-auto": {grappolo.Coloring(grappolo.Distance1),
			grappolo.Balance(grappolo.BalanceArcs), grappolo.AutoBalanceThreshold(0.4)},
	}
	for name, opts := range cases {
		if _, err := grappolo.New(opts...); err == nil {
			t.Errorf("%s: New accepted invalid options", name)
		}
	}
	// The valid boundary: no options at all is the paper's baseline.
	if _, err := grappolo.New(); err != nil {
		t.Fatalf("New() with no options: %v", err)
	}
}

// TestDetectHonorsCancellation pins the context contract on a large RGG:
// a canceled Detect returns ctx.Err() promptly — far sooner than the full
// detection takes — and the Detector stays usable afterwards.
func TestDetectHonorsCancellation(t *testing.T) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	det, err := grappolo.New(grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}

	// Reference timing: one full, uncancelled detection.
	start := time.Now()
	want, err := det.Detect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	// Pre-canceled context: no detection work at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := det.Detect(ctx, g); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("pre-canceled Detect: res=%v err=%v, want nil, context.Canceled", res, err)
	}

	// Mid-run cancellation: cancel a twentieth of the way in; the run must
	// abort well before a full detection's worth of work.
	delay := full / 20
	if delay < time.Millisecond {
		delay = time.Millisecond
	}
	ctx, cancel = context.WithCancel(context.Background())
	timer := time.AfterFunc(delay, cancel)
	defer timer.Stop()
	start = time.Now()
	res, err := det.Detect(ctx, g)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("canceled Detect: res=%v err=%v, want nil, context.Canceled", res, err)
	}
	if elapsed > full/2+delay {
		t.Fatalf("canceled Detect took %v (cancel after %v); full run takes %v — cancellation not prompt", elapsed, delay, full)
	}

	// The Detector (and its warmed scratch) survives cancellation.
	res, err = det.Detect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "post-cancel", res, want)
}

// TestExamplesUseOnlyPublicAPI enforces the API-boundary invariant: no file
// under examples/ or cmd/grappolo may import any grappolo/internal/...
// package. The logic lives in the internalimport analyzer (also run by CI
// via cmd/grappolovet); this is a thin wrapper so a boundary break still
// fails plain `go test ./...`.
func TestExamplesUseOnlyPublicAPI(t *testing.T) {
	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg := analysis.Config{Root: root, Module: "grappolo"}
	findings, err := analysis.Run(cfg, []*analysis.Analyzer{analysis.InternalImport},
		[]string{"./examples/...", "./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
