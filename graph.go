package grappolo

import (
	"fmt"

	"grappolo/internal/graph"
)

// Graph is an immutable weighted undirected graph in CSR (compressed sparse
// row) form, the input of every detection run. Vertex ids are dense in
// [0, N()). Build one with NewBuilder/FromEdges, load one with LoadGraph, or
// use the synthetic suite in the grappolo/generate package.
//
// Conventions (paper §2): positive edge weights, self-loops allowed,
// multi-edges merged by summing weights; the weighted degree k_i sums row i
// (a self-loop counts once) and m = ½ Σ_i k_i.
type Graph = graph.Graph

// Builder accumulates edges and materializes an immutable Graph; duplicate
// edges are merged by summing their weights.
type Builder = graph.Builder

// Edge is one weighted undirected edge {U, V} for batch construction.
type Edge = graph.Edge

// GraphStats summarizes a graph's degree distribution exactly as Table 1 of
// the paper reports it.
type GraphStats = graph.Stats

// NewBuilder returns a Builder for a graph with n vertices (AddEdge grows
// the vertex set past n as needed).
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n vertices directly from an edge list using
// workers parallel workers (<= 0 selects all CPUs).
func FromEdges(n int, edges []Edge, workers int) *Graph {
	return graph.FromEdges(n, edges, workers)
}

// FromEdgesLayout is FromEdges building the graph with the given arc layout:
// LayoutAuto and LayoutSplit build the default two-stream CSR, while
// LayoutInterleaved additionally packs the one-stream (id, weight) arc array
// the sweep kernels consume. The layout is purely a memory choice — detection
// results are bit-identical under every value.
func FromEdgesLayout(n int, edges []Edge, workers int, k LayoutKind) (*Graph, error) {
	var l graph.Layout
	switch k {
	case LayoutAuto, LayoutSplit:
		l = graph.LayoutSplit
	case LayoutInterleaved:
		l = graph.LayoutInterleaved
	default:
		return nil, fmt.Errorf("grappolo: unknown LayoutKind %d", k)
	}
	return graph.FromEdgesLayout(n, edges, workers, l), nil
}

// SetGraphLayout converts an existing graph to the given arc layout in place
// (LayoutAuto is a no-op). Converting to LayoutInterleaved materializes the
// packed arc array next to the always-present two-stream CSR; converting to
// LayoutSplit drops it. workers <= 0 selects all CPUs.
func SetGraphLayout(g *Graph, k LayoutKind, workers int) error {
	switch k {
	case LayoutAuto:
	case LayoutSplit:
		g.SetLayout(graph.LayoutSplit, workers)
	case LayoutInterleaved:
		g.SetLayout(graph.LayoutInterleaved, workers)
	default:
		return fmt.Errorf("grappolo: unknown LayoutKind %d", k)
	}
	return nil
}

// LoadGraph reads a graph file — an edge list, a METIS .graph file, or the
// binary CSR format — picking the parser by extension and content. workers
// <= 0 selects all CPUs.
func LoadGraph(path string, workers int) (*Graph, error) {
	return graph.LoadFile(path, workers)
}

// ComputeGraphStats computes Table 1-style degree statistics for g.
func ComputeGraphStats(g *Graph) GraphStats { return graph.ComputeStats(g) }
