package grappolo_test

import (
	"context"
	"math"
	"testing"

	"grappolo"
)

// checkPartition asserts the cross-cutting detection invariants every fuzz
// input must satisfy: dense in-range membership, a community count matching
// the distinct labels, and a finite reported score consistent with an
// independent recomputation.
func checkPartition(t *testing.T, g *grappolo.Graph, res *grappolo.Result) {
	t.Helper()
	if len(res.Membership) != g.N() {
		t.Fatalf("membership length %d, want %d", len(res.Membership), g.N())
	}
	seen := make(map[int32]bool)
	for v, c := range res.Membership {
		if c < 0 || int(c) >= g.N() {
			t.Fatalf("vertex %d assigned out-of-range community %d", v, c)
		}
		seen[c] = true
	}
	if len(seen) != res.NumCommunities {
		t.Fatalf("NumCommunities=%d but %d distinct labels", res.NumCommunities, len(seen))
	}
	if math.IsNaN(res.Modularity) || math.IsInf(res.Modularity, 0) {
		t.Fatalf("non-finite modularity %v", res.Modularity)
	}
	if res.Modularity > 1+1e-12 {
		t.Fatalf("modularity %v > 1", res.Modularity)
	}
}

// FuzzGraphBuilder feeds arbitrary edge lists — self-loops, duplicates in
// both orientations, isolated vertices, zero and negative weights (the
// builder's documented unweighted-input coercion) — through the public
// Builder and a full detection. The graph must always pass its own
// Validate, and detection must produce a valid partition with a finite
// score; the graph must survive detection unmodified.
func FuzzGraphBuilder(f *testing.F) {
	f.Add(uint8(6), []byte{0, 1, 1, 0, 1, 2, 1, 0, 0, 2, 1, 0, 3, 3, 0, 0})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(40), []byte{0, 0, 0, 0, 5, 5, 128, 0, 7, 7, 255, 3, 1, 2, 3, 4, 2, 1, 3, 4})
	f.Add(uint8(13), []byte{12, 3, 200, 9, 3, 12, 200, 9, 12, 3, 0, 1})
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw)%64 + 1
		b := grappolo.NewBuilder(n)
		for i := 0; i+3 < len(data) && i < 4*512; i += 4 {
			u := int32(data[i]) % int32(n)
			v := int32(data[i+1]) % int32(n)
			// int8 reinterpretation covers negative and zero weights, which
			// the builder must coerce to 1 (unweighted-input convention);
			// the fractional part exercises weight merging.
			w := float64(int8(data[i+2])) + float64(data[i+3])/256
			b.AddEdge(u, v, w)
		}
		g := b.Build(2)
		if err := g.Validate(); err != nil {
			t.Fatalf("builder produced an invalid graph: %v", err)
		}
		weightBefore := g.TotalWeight()
		res, err := grappolo.Detect(context.Background(), g, grappolo.Workers(2))
		if err != nil {
			t.Fatalf("detection failed on a valid graph: %v", err)
		}
		checkPartition(t, g, res)
		if g.TotalWeight() != weightBefore {
			t.Fatal("detection mutated the input graph")
		}
	})
}

// FuzzDetectOptions drives arbitrary option combinations through New: every
// combination must either be rejected with a validation error (never a
// panic, never silent coercion into a run) or produce a valid partition on
// a fixed exercising graph. The raw float lanes feed gamma/threshold inputs
// with negatives, zeros, NaN and infinities.
func FuzzDetectOptions(f *testing.F) {
	f.Add(uint16(0), int8(2), 1.0, 0.01, uint8(0))
	f.Add(uint16(0xffff), int8(1), 0.5, 1e-6, uint8(255))
	f.Add(uint16(1<<3|1<<4), int8(4), math.NaN(), -1.0, uint8(7))
	f.Add(uint16(1<<6|1<<7), int8(-1), math.Inf(1), 0.0, uint8(64))
	f.Fuzz(func(t *testing.T, flags uint16, workersRaw int8, gamma, threshold float64, knobs uint8) {
		var opts []grappolo.Option
		opts = append(opts, grappolo.Workers(int(workersRaw)))
		if flags&(1<<0) != 0 {
			opts = append(opts, grappolo.VertexFollowing())
		}
		if flags&(1<<1) != 0 {
			opts = append(opts, grappolo.VFChains())
		}
		if flags&(1<<2) != 0 {
			kinds := []grappolo.ColoringKind{
				grappolo.NoColoring, grappolo.Distance1, grappolo.Distance2,
				grappolo.JonesPlassmann, grappolo.ColoringKind(99),
			}
			opts = append(opts, grappolo.Coloring(kinds[int(knobs)%len(kinds)]))
		}
		if flags&(1<<3) != 0 {
			opts = append(opts, grappolo.FirstPhaseColoring())
		}
		if flags&(1<<4) != 0 {
			opts = append(opts, grappolo.ColoringCutoff(int(knobs)-8))
		}
		if flags&(1<<5) != 0 {
			modes := []grappolo.BalanceMode{
				grappolo.BalanceOff, grappolo.BalanceVertices,
				grappolo.BalanceArcs, grappolo.BalanceAuto, grappolo.BalanceMode(42),
			}
			opts = append(opts, grappolo.Balance(modes[int(knobs/8)%len(modes)]))
		}
		if flags&(1<<6) != 0 {
			opts = append(opts, grappolo.AutoBalanceThreshold(gamma))
		}
		if flags&(1<<7) != 0 {
			opts = append(opts, grappolo.Thresholds(threshold, threshold/2))
		}
		if flags&(1<<8) != 0 {
			opts = append(opts, grappolo.Resolution(gamma))
		}
		if flags&(1<<9) != 0 {
			opts = append(opts, grappolo.CPM(gamma))
		}
		if flags&(1<<10) != 0 {
			opts = append(opts, grappolo.MaxIterations(int(knobs)%5))
		}
		if flags&(1<<11) != 0 {
			opts = append(opts, grappolo.MaxPhases(int(knobs)%4))
		}
		if flags&(1<<12) != 0 {
			opts = append(opts, grappolo.KeepHierarchy())
		}
		if flags&(1<<13) != 0 {
			opts = append(opts, grappolo.SerialRenumber())
		}
		if flags&(1<<14) != 0 {
			opts = append(opts, grappolo.NoMinLabel())
		}
		if flags&(1<<15) != 0 {
			opts = append(opts, grappolo.Async())
		}
		det, err := grappolo.New(opts...)
		if err != nil {
			return // rejected combination: the acceptable failure mode
		}
		// Two triangles bridged, plus a self-loop and an isolated vertex —
		// small enough for any accepted combination to finish instantly.
		b := grappolo.NewBuilder(8)
		for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}, {6, 6}} {
			b.AddEdge(e[0], e[1], 1)
		}
		g := b.Build(1)
		res, err := det.Detect(context.Background(), g)
		if err != nil {
			t.Fatalf("accepted configuration failed to run: %v", err)
		}
		checkPartition(t, g, res)
	})
}
