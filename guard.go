package grappolo

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"grappolo/internal/core"
	"grappolo/internal/par"
)

// Detecter is the serving interface every detection layer implements —
// Detector, Pool, Batcher and Guard — so the layers compose freely and a
// caller can hold whichever tier of the stack it was handed.
type Detecter interface {
	// Detect runs detection on g and returns a fresh Result.
	Detect(ctx context.Context, g *Graph) (*Result, error)
	// DetectInto is Detect recycling a caller-provided Result; a nil res
	// allocates a fresh one.
	DetectInto(ctx context.Context, g *Graph, res *Result) (*Result, error)
}

// Guard wraps a Pool or Batcher with production overload semantics — the
// resilience tier of the serving stack (Detector → Pool → Batcher →
// Guard). Four behaviors, each off until configured:
//
//   - Bounded admission (MaxQueueDepth, MaxQueueWait): a request that
//     would queue behind more than the configured depth, or that has
//     already queued longer than the configured wait, is SHED with an
//     error matching ErrOverloaded — fast, typed back-pressure instead of
//     an unbounded pile-up on the pool's admission queue. Admission is
//     still FIFO-fair: shedding never reorders the requests it admits.
//
//   - Deadline budgets (DetectDeadline): a request whose context carries
//     no deadline gets the configured default, enforced through the
//     engine's chunk-granular cooperative cancellation; a caller-supplied
//     deadline is always respected as-is.
//
//   - Graceful degradation (DegradeAtDepth, DegradeProfile): once queue
//     pressure reaches the configured depth, requests are served by a
//     SECOND size-classed engine set running a cheaper pre-validated
//     profile (tighter thresholds, fewer phases/iterations — the paper's
//     own quality/speed knobs), and the Result is marked Degraded. Under a
//     burst the queue drains at the fast profile's pace instead of
//     collapsing; when pressure subsides, full-quality serving resumes by
//     itself.
//
//   - Panic quarantine: a request whose engine run panics returns an
//     *EngineFaultError (matching ErrEngineFault) instead of unwinding the
//     caller; the pool independently quarantines the faulted engine
//     (PoolStats.Faulted), so one poisoned request can neither crash the
//     server nor corrupt a recycled engine.
//
// A Guard owns its backend's admission: route ALL traffic for the wrapped
// Pool/Batcher through the Guard, or the queue-state signals (shedding and
// degradation thresholds) will under-count. A Guard is safe for concurrent
// use by multiple goroutines.
type Guard struct {
	primary  Detecter
	degraded Detecter // non-nil iff degradation is configured
	pool     *Pool    // the backend's underlying pool (capacity, options)
	admit    *par.FairSem

	maxQueue  int           // >= 0 bounds the admission queue; -1 unbounded
	maxWait   time.Duration // > 0 bounds time spent queued
	deadline  time.Duration // > 0 default detection deadline
	degradeAt int           // > 0: queue depth at which requests degrade

	// Preallocated shed errors: shedding is the hot path of an overloaded
	// server, and it should not allocate its way deeper into the overload.
	errDepth error
	errWait  error

	shed      atomic.Int64
	degradedN atomic.Int64
	recovered atomic.Int64
}

// GuardStats extends the backend's PoolStats with the Guard's own
// counters. The embedded PoolStats aggregates the primary AND the
// degraded engine sets (Led counts engine runs wherever they ran).
type GuardStats struct {
	PoolStats
	// Shed counts requests refused with ErrOverloaded (depth or wait).
	Shed int64
	// Degraded counts requests served by the degraded fast profile.
	Degraded int64
	// Recovered counts engine-run panics recovered at the Guard boundary
	// into ErrEngineFault (the pool-side PoolStats.Faulted counts the
	// engines quarantined by those same events).
	Recovered int64
}

// guardConfig accumulates GuardOption applications.
type guardConfig struct {
	maxInFlight    int
	maxQueue       int
	maxWait        time.Duration
	deadline       time.Duration
	degradeAt      int
	degradeProfile []Option
}

// GuardOption configures a Guard.
type GuardOption func(*guardConfig) error

// MaxQueueDepth bounds the Guard's admission queue: a request that would
// become the (n+1)-th queued waiter is shed immediately with
// ErrOverloaded. n == 0 admits only requests that can start without
// queueing at all. Negative n is an error; the default is unbounded.
func MaxQueueDepth(n int) GuardOption {
	return func(c *guardConfig) error {
		if n < 0 {
			return fmt.Errorf("grappolo: negative MaxQueueDepth %d", n)
		}
		c.maxQueue = n
		return nil
	}
}

// MaxQueueWait bounds the time a request may spend queued for admission:
// past d it is shed with ErrOverloaded (unless its own context fails
// first, which wins). d must be positive.
func MaxQueueWait(d time.Duration) GuardOption {
	return func(c *guardConfig) error {
		if d <= 0 {
			return fmt.Errorf("grappolo: MaxQueueWait must be positive, got %v", d)
		}
		c.maxWait = d
		return nil
	}
}

// DetectDeadline sets the default per-request detection deadline applied
// when the caller's context has none. It covers the engine run, not the
// queue wait (MaxQueueWait bounds that); enforcement is the engine's
// chunk-granular cooperative cancellation, so overruns surface as
// context.DeadlineExceeded within one chunk of sweep work. d must be
// positive. Note the Guard must derive a timer context for requests that
// arrive without a deadline — callers that pre-set their own deadline keep
// the warm request path allocation-free.
func DetectDeadline(d time.Duration) GuardOption {
	return func(c *guardConfig) error {
		if d <= 0 {
			return fmt.Errorf("grappolo: DetectDeadline must be positive, got %v", d)
		}
		c.deadline = d
		return nil
	}
}

// DegradeAtDepth enables graceful degradation: a request that joins the
// admission queue at depth n or beyond is served by the degraded engine
// set (see DegradeProfile) and its Result is marked Degraded. n must be at
// least 1 — depth 0 would degrade unqueued requests, which is just a
// cheaper configuration, not degradation.
func DegradeAtDepth(n int) GuardOption {
	return func(c *guardConfig) error {
		if n < 1 {
			return fmt.Errorf("grappolo: DegradeAtDepth must be at least 1, got %d", n)
		}
		c.degradeAt = n
		return nil
	}
}

// DegradeProfile sets the option overrides layered onto the backend
// pool's configuration for the degraded engine set (requires
// DegradeAtDepth). The combined profile is validated by NewGuard exactly
// like a primary configuration. Without this option, degradation tightens
// the paper's quality/speed knobs to a fast default: at most 2 phases, at
// most 8 iterations per phase, and coarser gain thresholds.
func DegradeProfile(opts ...Option) GuardOption {
	return func(c *guardConfig) error {
		if len(opts) == 0 {
			return fmt.Errorf("grappolo: DegradeProfile needs at least one Option")
		}
		c.degradeProfile = opts
		return nil
	}
}

// MaxInFlight overrides the Guard's concurrent-admission bound (default:
// the backend pool's Size). For a plain Pool backend the default is right —
// one admission per engine. For a BATCHER backend a larger bound (a few
// multiples of the pool size) lets duplicate requests pass through the
// Guard and coalesce as followers, which consume no engine; the pool's own
// FIFO admission still bounds actual engine concurrency. n must be
// positive.
func MaxInFlight(n int) GuardOption {
	return func(c *guardConfig) error {
		if n < 1 {
			return fmt.Errorf("grappolo: MaxInFlight must be positive, got %d", n)
		}
		c.maxInFlight = n
		return nil
	}
}

// NewGuard wraps backend — a *Pool, *Batcher, *Sharded or *Cache — in a
// Guard. With no options the Guard only adds panic quarantine; shedding,
// deadlines and degradation are enabled by their respective options.
// Configuration errors (negative bounds, a degrade profile without
// DegradeAtDepth, an invalid degraded option combination) are returned,
// never coerced.
func NewGuard(backend Detecter, gopts ...GuardOption) (*Guard, error) {
	var pool *Pool
	switch b := backend.(type) {
	case *Pool:
		pool = b
	case *Batcher:
		pool = b.Pool()
	case *Sharded:
		pool = b.Pool()
	case *Cache:
		pool = b.Pool()
	default:
		return nil, fmt.Errorf("grappolo: NewGuard needs a *Pool, *Batcher, *Sharded or *Cache backend, got %T", backend)
	}
	c := guardConfig{maxQueue: -1}
	for _, o := range gopts {
		if o == nil {
			return nil, fmt.Errorf("grappolo: nil GuardOption")
		}
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	if c.degradeProfile != nil && c.degradeAt == 0 {
		return nil, fmt.Errorf("grappolo: DegradeProfile requires DegradeAtDepth")
	}
	inFlight := c.maxInFlight
	if inFlight == 0 {
		inFlight = pool.Size()
	}
	gd := &Guard{
		primary:   backend,
		pool:      pool,
		admit:     par.NewFairSem(inFlight),
		maxQueue:  c.maxQueue,
		maxWait:   c.maxWait,
		deadline:  c.deadline,
		degradeAt: c.degradeAt,
	}
	if c.maxQueue >= 0 {
		gd.errDepth = &overloadError{reason: fmt.Sprintf("admission queue at its depth bound (%d)", c.maxQueue)}
	}
	if c.maxWait > 0 {
		gd.errWait = &overloadError{reason: fmt.Sprintf("request queued longer than %v", c.maxWait)}
	}
	if c.degradeAt > 0 {
		opts, err := degradedOptions(pool.opts, c.degradeProfile)
		if err != nil {
			return nil, fmt.Errorf("grappolo: invalid degraded profile: %w", err)
		}
		dp := newPoolCore(pool.Size(), opts)
		if _, isBatcher := backend.(*Batcher); isBatcher {
			// A batcher backend coalesces duplicates; degraded duplicate
			// bursts — the most duplicate-shaped traffic there is — should
			// coalesce too.
			gd.degraded = NewBatcher(dp)
		} else {
			gd.degraded = dp
		}
	}
	return gd, nil
}

// degradedOptions derives the degraded engine configuration: the primary
// pool's validated options with the profile overrides applied on top, the
// whole combination re-validated. A nil profile applies the default
// tightening of the paper's quality/speed knobs.
func degradedOptions(base core.Options, profile []Option) (core.Options, error) {
	if profile == nil {
		profile = []Option{
			MaxPhases(2),
			MaxIterations(8),
			Thresholds(5e-2, 1e-3),
		}
	}
	c := config{opts: base}
	if err := applyOptions(&c, profile); err != nil {
		return core.Options{}, err
	}
	if err := validateConfig(&c); err != nil {
		return core.Options{}, err
	}
	return c.opts, nil
}

// Detect runs detection on g through the Guard's admission, deadline and
// degradation policy, returning a fresh Result independent of the serving
// stack. Errors: ErrNilGraph, an ErrOverloaded match when shed, an
// ErrEngineFault match when the run panicked, or the (possibly
// Guard-imposed) context's error.
func (gd *Guard) Detect(ctx context.Context, g *Graph) (*Result, error) {
	return gd.DetectInto(ctx, g, nil)
}

// DetectInto is Detect recycling a caller-provided Result. A warm
// non-degraded request whose context already carries a deadline performs
// zero allocations end to end (admission fast path, engine checkout, run,
// write-back); the Guard allocates only to shed, to derive a default
// deadline, or on the degraded path.
func (gd *Guard) DetectInto(ctx context.Context, g *Graph, res *Result) (*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if ctx == nil {
		ctx = context.Background()
	}
	degrade := false
	if !gd.admit.TryAcquire() {
		// No free slot: this request must queue — the pressure signals
		// (shed bounds, degradation threshold) all read from here.
		depth := gd.admit.QueueLen() + 1 // the depth this request would join at
		if gd.maxQueue >= 0 && depth > gd.maxQueue {
			gd.shed.Add(1)
			return nil, gd.errDepth
		}
		degrade = gd.degradeAt > 0 && depth >= gd.degradeAt
		waitCtx := ctx
		var cancelWait context.CancelFunc
		if gd.maxWait > 0 {
			waitCtx, cancelWait = context.WithTimeout(ctx, gd.maxWait)
		}
		err := gd.admit.AcquireLimited(waitCtx, gd.maxQueue)
		if cancelWait != nil {
			cancelWait()
		}
		if err != nil {
			switch {
			case errors.Is(err, par.ErrQueueFull):
				// Lost the depth race to concurrent arrivals — the bound
				// is enforced atomically at the queue, the check above is
				// only the fast path.
				gd.shed.Add(1)
				return nil, gd.errDepth
			case ctx.Err() != nil:
				// The caller's own context failed (cancellation or its own
				// deadline) — that is not shedding, report it as-is.
				return nil, ctx.Err()
			default:
				// Only the Guard-imposed queue-wait timer is left.
				gd.shed.Add(1)
				return nil, gd.errWait
			}
		}
	}
	defer gd.admit.Release()

	runCtx := ctx
	if gd.deadline > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(ctx, gd.deadline)
			defer cancel()
		}
	}
	backend := gd.primary
	if degrade {
		backend = gd.degraded
	}
	out, err := gd.run(backend, runCtx, g, res)
	if err != nil {
		return nil, err
	}
	out.Degraded = degrade
	if degrade {
		gd.degradedN.Add(1)
	}
	return out, nil
}

// run drives one backend call under the panic-quarantine boundary: a
// panicking engine run (or batch lead) is recovered into an
// *EngineFaultError instead of unwinding the caller. The pool below has
// already quarantined the engine and released its permit by the time the
// panic reaches this frame, so recovery here leaks nothing.
func (gd *Guard) run(backend Detecter, ctx context.Context, g *Graph, res *Result) (out *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			gd.recovered.Add(1)
			out = nil
			err = &EngineFaultError{Panic: v}
		}
	}()
	return backend.DetectInto(ctx, g, res)
}

// Stats returns the Guard's cumulative counters: the backend's serving
// stats (primary and degraded engine sets summed) plus shed, degraded and
// recovered counts.
func (gd *Guard) Stats() GuardStats {
	s := GuardStats{
		Shed:      gd.shed.Load(),
		Degraded:  gd.degradedN.Load(),
		Recovered: gd.recovered.Load(),
	}
	s.PoolStats = backendStats(gd.primary)
	if gd.degraded != nil {
		d := backendStats(gd.degraded)
		s.Led += d.Led
		s.Batched += d.Batched
		s.Waited += d.Waited
		s.Canceled += d.Canceled
		s.Faulted += d.Faulted
	}
	return s
}

// backendStats reads the PoolStats of either backend shape. A Cache is
// transparent here — engine-side counters live on whatever it wraps.
func backendStats(b Detecter) PoolStats {
	switch b := b.(type) {
	case *Pool:
		return b.Stats()
	case *Batcher:
		return b.Stats()
	case *Sharded:
		return b.Stats()
	case *Cache:
		return backendStats(b.backend)
	}
	return PoolStats{}
}

// Queued returns the number of requests currently waiting for admission —
// the live pressure signal the shed and degrade bounds act on.
func (gd *Guard) Queued() int { return gd.admit.QueueLen() }

// String describes the guard for logs.
func (gd *Guard) String() string {
	return fmt.Sprintf("grappolo.Guard(inflight=%d, queued=%d, maxqueue=%d, maxwait=%v, deadline=%v, degradeAt=%d)",
		gd.admit.Cap(), gd.admit.QueueLen(), gd.maxQueue, gd.maxWait, gd.deadline, gd.degradeAt)
}
