package grappolo

import (
	"context"
	"fmt"

	"grappolo/internal/core"
	"grappolo/internal/shard"
)

// PartitionMode selects how Sharded assigns vertices to shards.
type PartitionMode = shard.PartitionMode

// Partition modes for WithPartition.
const (
	// PartitionBlock splits vertex ids into contiguous ranges of even
	// vertex count.
	PartitionBlock = shard.ModeBlock
	// PartitionArcs splits vertex ids into contiguous ranges of even arc
	// count, so hub-heavy id ranges cannot overload one shard.
	PartitionArcs = shard.ModeArcs
	// PartitionComponents packs whole connected components onto shards, so
	// no community of a disconnected graph is ever split.
	PartitionComponents = shard.ModeComponents
)

// Sharded serves detections by a sharded parallel Louvain with ghost-label
// exchange — the scale-out tier of the serving stack. The graph is
// partitioned into shards, each shard runs local-move sweeps on its own
// subgraph with frozen GHOST images of its external neighbors (every cut
// edge kept as a halo edge, unlike a drop-cut-edges partition scheme),
// shards exchange boundary labels at synchronized barriers, and a final
// master merge coarsens the full graph by the exchanged labels and
// re-clusters it.
//
// Engines for the per-shard sweeps and the merge run are checked out of the
// wrapped Pool per use, so shard concurrency is bounded by the pool size —
// shards queue FIFO-fair behind other traffic instead of over-subscribing
// memory — and every engine checkout shows up in the pool's Stats.
//
// Sharded implements Detecter, so it composes with the rest of the stack:
// wrap it in a Guard for shedding, deadlines and panic quarantine. Results
// are deterministic for a fixed graph and configuration, but differ from
// the single-engine Detector's results — sharding changes the sweep order
// by design (quality stays comparable; the regression tests pin the
// recovery margin). A Sharded is safe for concurrent use.
type Sharded struct {
	pool *Pool
	opts shard.Options
}

// shardConfig accumulates ShardOptions before validation.
type shardConfig struct {
	shards int
	rounds int
	mode   PartitionMode
}

// ShardOption configures NewSharded.
type ShardOption func(*shardConfig) error

// WithShards sets the number of graph partitions. n must be >= 1; requests
// on graphs smaller than n are clamped. Default: the wrapped pool's Size.
func WithShards(n int) ShardOption {
	return func(c *shardConfig) error {
		if n < 1 {
			return fmt.Errorf("grappolo: WithShards(%d): need at least 1 shard", n)
		}
		c.shards = n
		return nil
	}
}

// WithExchangeRounds sets how many ghost-label exchange rounds follow the
// first local sweep. r must be >= 0; 0 disables the exchange (halo edges
// still contribute, but boundary labels stay frozen singletons). Default 2.
func WithExchangeRounds(r int) ShardOption {
	return func(c *shardConfig) error {
		if r < 0 {
			return fmt.Errorf("grappolo: WithExchangeRounds(%d): rounds cannot be negative", r)
		}
		c.rounds = r
		return nil
	}
}

// WithPartition selects the partitioning strategy. Default PartitionBlock.
func WithPartition(m PartitionMode) ShardOption {
	return func(c *shardConfig) error {
		switch m {
		case PartitionBlock, PartitionArcs, PartitionComponents:
			c.mode = m
			return nil
		}
		return fmt.Errorf("grappolo: WithPartition(%v): unknown mode", m)
	}
}

// NewSharded wraps pool in a sharded serving tier. Configuration errors are
// returned, never coerced; a pool configured for the CPM objective is
// rejected (the seeded shard sweep is modularity-only).
func NewSharded(pool *Pool, sopts ...ShardOption) (*Sharded, error) {
	if pool == nil {
		return nil, fmt.Errorf("grappolo: NewSharded needs a non-nil *Pool")
	}
	if pool.opts.Objective == core.ObjCPM {
		return nil, fmt.Errorf("grappolo: NewSharded supports the modularity objective only")
	}
	c := shardConfig{shards: pool.Size(), rounds: 2, mode: PartitionBlock}
	for _, o := range sopts {
		if o == nil {
			return nil, fmt.Errorf("grappolo: nil ShardOption")
		}
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	return &Sharded{
		pool: pool,
		opts: shard.Options{
			Shards:  c.shards,
			Rounds:  c.rounds,
			Mode:    c.mode,
			Workers: pool.opts.Workers,
		},
	}, nil
}

// Pool returns the wrapped engine pool (the Guard hooks its queue-pressure
// signals here).
func (s *Sharded) Pool() *Pool { return s.pool }

// Stats returns the wrapped pool's cumulative counters. Led counts engine
// checkouts, so one sharded detection contributes one run per shard sweep
// plus one for the master merge.
func (s *Sharded) Stats() PoolStats { return s.pool.Stats() }

// Detect runs a sharded detection on g and returns a fresh Result. See
// Detector.Detect for the cancellation contract.
func (s *Sharded) Detect(ctx context.Context, g *Graph) (*Result, error) {
	return s.DetectInto(ctx, g, nil)
}

// DetectInto is Detect recycling a caller-provided Result (see
// Detector.DetectInto). The Result carries the fold of the sharded
// pipeline: TotalIterations sums every shard sweep iteration plus the
// master merge's; Phases, Timing and Levels are not populated (the shard
// pipeline has no single engine trace).
func (s *Sharded) DetectInto(ctx context.Context, g *Graph, res *Result) (*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sres, err := shard.Run(ctx, g, s.opts, poolEngines{s.pool})
	if err != nil {
		return nil, err
	}
	if res == nil {
		res = &Result{}
	}
	res.Membership = append(res.Membership[:0], sres.Membership...)
	res.NumCommunities = sres.NumCommunities
	res.Modularity = sres.Modularity
	res.TotalIterations = sres.LocalIterations + sres.MergeIterations
	res.Phases = res.Phases[:0]
	res.Timing = core.Breakdown{}
	res.Levels = nil
	res.Degraded = false
	return res, nil
}

// String describes the tier for logs.
func (s *Sharded) String() string {
	return fmt.Sprintf("grappolo.Sharded(shards=%d, rounds=%d, mode=%s, pool=%d)",
		s.opts.Shards, s.opts.Rounds, s.opts.Mode, s.pool.Size())
}

// poolEngines adapts the Pool's permit + size-classed checkout to the shard
// runner's Engines seam: every shard sweep and the master merge queue
// FIFO-fair for a pool permit exactly like a Detect request, and a release
// with ok=false quarantines the engine just like a panicking pool run.
type poolEngines struct{ p *Pool }

func (pe poolEngines) Acquire(ctx context.Context, n int) (*core.Engine, func(ok bool), error) {
	if err := pe.p.sem.Acquire(ctx); err != nil {
		pe.p.canceled.Add(1)
		return nil, nil, err
	}
	e := pe.p.take(n)
	pe.p.led.Add(1)
	released := false
	release := func(ok bool) {
		if released {
			return
		}
		released = true
		if ok {
			// A non-panicking run has grown the engine's scratch to this
			// shape (the shard sweep resets scratch before its first
			// cancellation point), so the size class is current.
			if n > e.maxN {
				e.maxN = n
			}
			pe.p.put(e)
		} else {
			pe.p.faulted.Add(1)
		}
		pe.p.sem.Release()
	}
	return e.eng, release, nil
}
