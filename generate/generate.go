// Package generate is the public face of the synthetic input suite: 11
// deterministic generators reproducing the shapes of the paper's Table 1
// evaluation graphs (degree distribution and community strength are what
// the paper's analysis keys on) at laptop scale, plus the planted-partition
// models used for ground-truth scoring.
//
// All generators are deterministic for a fixed seed and parallel-safe.
package generate

import (
	"grappolo"

	igen "grappolo/internal/generate"
)

// Input identifies one of the 11 synthetic analogs of the paper's Table 1.
type Input = igen.Input

// Scale selects how large the synthetic input suite is.
type Scale = igen.Scale

// SBMConfig parameterizes the planted-partition stochastic block model.
type SBMConfig = igen.SBMConfig

const (
	Small  = igen.Small
	Medium = igen.Medium
	Large  = igen.Large
)

const (
	CNR         = igen.CNR         // web crawl, extreme degree skew
	CoPapers    = igen.CoPapers    // co-authorship, clique-heavy
	Channel     = igen.Channel     // uniform mesh, weak communities
	EuropeOSM   = igen.EuropeOSM   // road network, avg degree ~2
	LiveJournal = igen.LiveJournal // social, R-MAT
	MG1         = igen.MG1         // metagenomics, strong communities
	RGG         = igen.RGG         // random geometric
	UK2002      = igen.UK2002      // web, skewed (coloring stress)
	NLPKKT      = igen.NLPKKT      // optimization mesh, poor structure
	MG2         = igen.MG2         // metagenomics, larger
	Friendster  = igen.Friendster  // largest social
)

// Suite returns all 11 inputs in the paper's Table 1 order.
func Suite() []Input { return igen.Suite() }

// ScaleFromEnv returns the Scale selected by GRAPPOLO_BENCH_SCALE
// (small | medium | large), defaulting to Medium.
func ScaleFromEnv() Scale { return igen.ScaleFromEnv() }

// Generate produces the synthetic analog of one paper input at the given
// scale. workers <= 0 selects all CPUs.
func Generate(in Input, sc Scale, seed uint64, workers int) (*grappolo.Graph, error) {
	return igen.Generate(in, sc, seed, workers)
}

// MustGenerate is Generate panicking on an unknown input name.
func MustGenerate(in Input, sc Scale, seed uint64, workers int) *grappolo.Graph {
	return igen.MustGenerate(in, sc, seed, workers)
}

// SBM generates a planted-partition graph and returns it together with the
// ground-truth community of every vertex.
func SBM(cfg SBMConfig, seed uint64, workers int) (*grappolo.Graph, []int32) {
	return igen.SBM(cfg, seed, workers)
}

// PowerLawCommunitySizes returns count community sizes following a
// truncated power law in [min, max] with the given exponent — the size
// distribution real community structure (protein families, social circles)
// tends to follow.
func PowerLawCommunitySizes(count, min, max int, exponent float64, seed uint64) []int {
	return igen.PowerLawCommunitySizes(count, min, max, exponent, seed)
}
