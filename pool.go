package grappolo

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"grappolo/internal/core"
	"grappolo/internal/faults"
	"grappolo/internal/par"
)

// Pool serves concurrent Detect calls from a bounded set of reusable
// engines — the serving shell for long-lived clustering services: one
// engine per in-flight request, engines recycled back to back so warm
// steady-state requests perform zero scratch allocations, and at most Size
// engines (and Size concurrent detections) ever exist. Additional callers
// queue until an engine frees up, keeping memory and CPU bounded under
// bursts.
//
// Admission is FIFO-fair: engine permits are granted in strict arrival
// order (no barging), so under overload no request starves behind
// later-arriving traffic, and a request canceled while queued passes its
// turn to the next in line without losing a permit.
//
// Engines are handed out by size class: a request is served by the idle
// engine with the smallest high-water vertex count that already fits the
// graph, so small requests do not inflate every engine to the largest graph
// the pool has ever seen, and a same-shaped request hits an engine whose
// scratch needs no growth at all. Results are bit-identical to a fresh
// one-shot detection with the same configuration regardless of which engine
// serves the call or in what order requests land.
//
// A Pool is safe for concurrent use by multiple goroutines. Requests that
// are duplicates of each other still run once per request; to coalesce
// concurrent detections on the SAME graph into one engine run, put a
// Batcher in front of the pool.
type Pool struct {
	opts core.Options
	sem  *par.FairSem // one permit per engine; Cap() == Size()

	led      atomic.Int64 // engine runs started
	canceled atomic.Int64 // requests that returned ctx.Err()
	faulted  atomic.Int64 // engines quarantined after a panicking run

	mu   sync.Mutex
	idle []*pooledEngine
}

// PoolStats are cumulative serving counters, readable at any time from any
// goroutine. Pool.Stats fills the admission-side counters; Batcher.Stats
// additionally fills Batched (a Pool on its own never coalesces).
type PoolStats struct {
	// Led counts engine runs started on behalf of requests. Through a
	// Batcher this is the number of batch leaders — the acceptance metric
	// for coalescing (N duplicate requests, 1 run).
	Led int64
	// Batched counts requests served by joining an in-flight identical
	// run instead of starting their own (always 0 for a bare Pool).
	Batched int64
	// Waited counts requests that found no free engine and had to queue —
	// the overload-pressure signal.
	Waited int64
	// Canceled counts requests that returned early with their context's
	// error, whether canceled while queued, while following a batch, or
	// mid-run.
	Canceled int64
	// Faulted counts engines quarantined because their run panicked: a
	// panicking engine's scratch is suspect, so it is dropped instead of
	// recycled and its slot lazily re-creates a fresh engine. A nonzero
	// Faulted under production traffic means engine bugs (or injected
	// faults) are being absorbed by the serving layer.
	Faulted int64
}

// pooledEngine pairs an engine with the largest graph shape it has served,
// the size class used to match idle engines to requests.
type pooledEngine struct {
	eng  *core.Engine
	maxN int
}

// NewPool validates opts (exactly like New) and returns a Pool of at most
// size engines. size <= 0 selects GOMAXPROCS. Engines are created lazily on
// demand, so an oversized pool costs nothing until the concurrency actually
// materializes.
func NewPool(size int, opts ...Option) (*Pool, error) {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return newPoolCore(size, o), nil
}

// newPoolCore builds a pool directly over pre-validated internal options —
// the constructor behind NewPool and the Guard's degraded engine set.
func newPoolCore(size int, o core.Options) *Pool {
	return &Pool{
		opts: o,
		sem:  par.NewFairSem(size),
		idle: make([]*pooledEngine, 0, size),
	}
}

// Size returns the maximum number of engines (and concurrent detections).
func (p *Pool) Size() int { return p.sem.Cap() }

// Stats returns a snapshot of the pool's cumulative serving counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Led:      p.led.Load(),
		Waited:   p.sem.Waited(),
		Canceled: p.canceled.Load(),
		Faulted:  p.faulted.Load(),
	}
}

// Detect acquires an engine (queuing FIFO behind earlier arrivals until one
// is available or ctx is done), runs detection on g, and returns a fresh
// Result independent of the pool. See Detector.Detect for the cancellation
// contract.
func (p *Pool) Detect(ctx context.Context, g *Graph) (*Result, error) {
	return p.DetectInto(ctx, g, nil)
}

// DetectInto is Detect recycling a caller-provided Result (see
// Detector.DetectInto): a serving loop that passes its previous Result back
// in makes warm same-shape requests allocate nothing at all. A nil res
// allocates a fresh Result.
func (p *Pool) DetectInto(ctx context.Context, g *Graph, res *Result) (*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.sem.Acquire(ctx); err != nil {
		p.canceled.Add(1)
		return nil, err
	}
	// The permit is released on every exit — including a panicking run (an
	// engine bug surfaced to a server that recovers per request) — or Size
	// panics would shrink the pool into a permanent deadlock.
	defer p.sem.Release()
	pe := p.take(g.N())
	completed := false
	// Quarantine on panic: a run that did not complete normally may have
	// left the engine's scratch in an arbitrary state, so the engine is
	// DROPPED, never recycled — the released permit lazily re-creates a
	// fresh engine on the next take. This defer runs before the permit
	// release above (LIFO), so an engine's fate is always decided while
	// its slot is still held. The maxN update below runs before either
	// defer fires, so an engine is never visible in the idle list with a
	// stale size class.
	defer func() {
		if !completed {
			p.faulted.Add(1)
			return
		}
		p.put(pe)
	}()
	p.led.Add(1)
	faults.Maybe(faults.PoolServe)
	res, err := pe.eng.RunIntoCtx(ctx, g, res)
	completed = true
	// Only a completed run has demonstrably grown the engine's scratch to
	// this shape; a canceled run may have bailed before touching it, and
	// counting it would misclassify a cold engine as the warmest fit.
	if n := g.N(); err == nil && n > pe.maxN {
		pe.maxN = n
	}
	if err != nil {
		p.canceled.Add(1)
	}
	return res, err
}

// take pops the best-fitting idle engine for an n-vertex request: the
// smallest engine that already fits (no scratch growth), else the largest
// (least growth), else — while fewer than Size engines exist, guaranteed by
// the permit held by the caller — a brand-new engine.
func (p *Pool) take(n int) *pooledEngine {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := -1
	for i, pe := range p.idle {
		if pe.maxN >= n && (best < 0 || pe.maxN < p.idle[best].maxN) {
			best = i
		}
	}
	if best < 0 {
		for i, pe := range p.idle {
			if best < 0 || pe.maxN > p.idle[best].maxN {
				best = i
			}
		}
	}
	if best < 0 {
		return &pooledEngine{eng: core.NewEngine(p.opts)}
	}
	last := len(p.idle) - 1
	pe := p.idle[best]
	p.idle[best] = p.idle[last]
	p.idle[last] = nil
	p.idle = p.idle[:last]
	return pe
}

// put returns an engine to the idle list. The append never allocates:
// len(idle) is bounded by the engine count, which the permits bound by
// Size, the slice's initial capacity.
func (p *Pool) put(pe *pooledEngine) {
	p.mu.Lock()
	p.idle = append(p.idle, pe)
	p.mu.Unlock()
}

// String describes the pool for logs.
func (p *Pool) String() string {
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	return fmt.Sprintf("grappolo.Pool(size=%d, idle=%d)", p.Size(), idle)
}
