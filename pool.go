package grappolo

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"grappolo/internal/core"
)

// Pool serves concurrent Detect calls from a bounded set of reusable
// engines — the serving shell for long-lived clustering services: one
// engine per in-flight request, engines recycled back to back so warm
// steady-state requests perform zero scratch allocations, and at most Size
// engines (and Size concurrent detections) ever exist. Additional callers
// block until an engine frees up, keeping memory and CPU bounded under
// bursts.
//
// Engines are handed out by size class: a request is served by the idle
// engine with the smallest high-water vertex count that already fits the
// graph, so small requests do not inflate every engine to the largest graph
// the pool has ever seen, and a same-shaped request hits an engine whose
// scratch needs no growth at all. Results are bit-identical to a fresh
// one-shot detection with the same configuration regardless of which engine
// serves the call or in what order requests land.
//
// A Pool is safe for concurrent use by multiple goroutines.
type Pool struct {
	opts core.Options
	sem  chan struct{} // one permit per engine; cap(sem) == Size()

	mu   sync.Mutex
	idle []*pooledEngine
}

// pooledEngine pairs an engine with the largest graph shape it has served,
// the size class used to match idle engines to requests.
type pooledEngine struct {
	eng  *core.Engine
	maxN int
}

// NewPool validates opts (exactly like New) and returns a Pool of at most
// size engines. size <= 0 selects GOMAXPROCS. Engines are created lazily on
// demand, so an oversized pool costs nothing until the concurrency actually
// materializes.
func NewPool(size int, opts ...Option) (*Pool, error) {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return &Pool{
		opts: o,
		sem:  make(chan struct{}, size),
		idle: make([]*pooledEngine, 0, size),
	}, nil
}

// Size returns the maximum number of engines (and concurrent detections).
func (p *Pool) Size() int { return cap(p.sem) }

// Detect acquires an engine (blocking until one is available or ctx is
// done), runs detection on g, and returns a fresh Result independent of the
// pool. See Detector.Detect for the cancellation contract.
func (p *Pool) Detect(ctx context.Context, g *Graph) (*Result, error) {
	return p.DetectInto(ctx, g, nil)
}

// DetectInto is Detect recycling a caller-provided Result (see
// Detector.DetectInto): a serving loop that passes its previous Result back
// in makes warm same-shape requests allocate nothing at all. A nil res
// allocates a fresh Result.
func (p *Pool) DetectInto(ctx context.Context, g *Graph, res *Result) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	pe := p.take(g.N())
	// Deferred release: a panicking run (engine bug surfaced to a server
	// that recovers per request) must not leak the permit and engine, or
	// Size panics would shrink the pool into a permanent deadlock. The
	// maxN update runs before the defer fires, so an engine is never
	// visible in the idle list with a stale size class.
	defer func() {
		p.put(pe)
		<-p.sem
	}()
	res, err := pe.eng.RunIntoCtx(ctx, g, res)
	// Only a completed run has demonstrably grown the engine's scratch to
	// this shape; a canceled run may have bailed before touching it, and
	// counting it would misclassify a cold engine as the warmest fit.
	if n := g.N(); err == nil && n > pe.maxN {
		pe.maxN = n
	}
	return res, err
}

// take pops the best-fitting idle engine for an n-vertex request: the
// smallest engine that already fits (no scratch growth), else the largest
// (least growth), else — while fewer than Size engines exist, guaranteed by
// the permit held by the caller — a brand-new engine.
func (p *Pool) take(n int) *pooledEngine {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := -1
	for i, pe := range p.idle {
		if pe.maxN >= n && (best < 0 || pe.maxN < p.idle[best].maxN) {
			best = i
		}
	}
	if best < 0 {
		for i, pe := range p.idle {
			if best < 0 || pe.maxN > p.idle[best].maxN {
				best = i
			}
		}
	}
	if best < 0 {
		return &pooledEngine{eng: core.NewEngine(p.opts)}
	}
	last := len(p.idle) - 1
	pe := p.idle[best]
	p.idle[best] = p.idle[last]
	p.idle[last] = nil
	p.idle = p.idle[:last]
	return pe
}

// put returns an engine to the idle list. The append never allocates:
// len(idle) is bounded by the engine count, which the permits bound by
// Size, the slice's initial capacity.
func (p *Pool) put(pe *pooledEngine) {
	p.mu.Lock()
	p.idle = append(p.idle, pe)
	p.mu.Unlock()
}

// String describes the pool for logs.
func (p *Pool) String() string {
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	return fmt.Sprintf("grappolo.Pool(size=%d, idle=%d)", p.Size(), idle)
}
