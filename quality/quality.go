// Package quality is the public face of the partition-comparison measures
// the paper's Table 3 reports: pair-counting agreement (Rand, adjusted
// Rand, Jaccard) and normalized mutual information between two community
// assignments, e.g. a detected partition against planted ground truth.
package quality

import iq "grappolo/internal/quality"

// PairCounts holds the contingency pair counts of two partitions; Derive
// turns them into the agreement measures.
type PairCounts = iq.PairCounts

// Measures are the derived agreement measures (Table 3).
type Measures = iq.Measures

// ComparePartitions computes the pair counts between two equal-length dense
// community assignments.
func ComparePartitions(s, p []int32) (PairCounts, error) { return iq.ComparePartitions(s, p) }

// NMI computes the normalized mutual information between two assignments.
func NMI(s, p []int32) (float64, error) { return iq.NMI(s, p) }
