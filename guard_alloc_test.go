package grappolo_test

import (
	"context"
	"testing"
	"time"

	"grappolo"
	"grappolo/internal/generate"
)

// TestGuardWarmZeroAllocs extends the allocation-regression gate to the
// resilience tier: a warm, non-degraded Guard request whose context
// already carries a deadline — admission fast path, pool permit, engine
// checkout, the full pipeline, result write-back — performs ZERO
// allocations, even with every Guard policy armed. The Guard may allocate
// only to shed, to derive a default deadline for a deadline-less context,
// or on the degraded path; none of those fire here. Single worker: the
// goroutine spawns of multi-worker sweeps inherently allocate.
func TestGuardWarmZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := grappolo.NewGuard(pool,
		grappolo.MaxQueueDepth(4),
		grappolo.MaxQueueWait(time.Second),
		grappolo.DetectDeadline(time.Minute),
		grappolo.DegradeAtDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel()
	res, err := gd.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err = gd.DetectInto(ctx, g, res) // second warm pass settles the arenas
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		res, err = gd.DetectInto(ctx, g, res)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("warm non-degraded Guard.DetectInto allocates %v times per request, want 0", allocs)
	}
	if res.Degraded {
		t.Error("unpressured request marked Degraded")
	}
	if res.NumCommunities <= 1 || res.Modularity <= 0 {
		t.Fatalf("degenerate result nc=%d Q=%v", res.NumCommunities, res.Modularity)
	}
}
