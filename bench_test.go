// Benchmarks reproducing every table and figure of the paper's evaluation
// (§6) on the synthetic input suite. Each benchmark prints the same rows or
// series the paper reports; run with
//
//	go test -bench=. -benchmem
//
// or a specific experiment, e.g.
//
//	go test -bench=BenchmarkTable2 -benchtime=1x -v
//
// Benchmarks default to the Medium input scale so a full sweep finishes in
// minutes on a laptop; set -scale via GRAPPOLO_BENCH_SCALE=small|medium|large.
package grappolo_test

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"grappolo/internal/core"
	"grappolo/internal/dynamic"
	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/harness"
)

func benchScale() generate.Scale { return generate.ScaleFromEnv() }

func benchOpts() harness.Options {
	return harness.Options{
		Scale:          benchScale(),
		Workers:        runtime.GOMAXPROCS(0),
		ColoringCutoff: 512,
	}.Defaults()
}

// out returns the report sink: stdout on the first benchmark iteration,
// discard afterwards (so -benchtime=Nx does not duplicate tables).
func out(b *testing.B, i int) io.Writer {
	b.Helper()
	if i == 0 {
		return os.Stdout
	}
	return io.Discard
}

// workerSweep mirrors the paper's 1..32 thread sweep: powers of two up to
// the host's core count, minimum 1..8 so the concurrent paths are exercised
// even on small hosts (curves flatten at the physical core count).
func workerSweep() []int {
	max := runtime.GOMAXPROCS(0)
	if max < 8 {
		max = 8
	}
	var ws []int
	for w := 1; w <= max; w *= 2 {
		ws = append(ws, w)
	}
	if ws[len(ws)-1] != max {
		ws = append(ws, max)
	}
	return ws
}

// BenchmarkTable1_InputStats regenerates Table 1 (input statistics).
func BenchmarkTable1_InputStats(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteTable1(out(b, i), rows)
	}
}

// BenchmarkTable2_SerialVsParallel regenerates Table 2 (final modularity
// and runtime, parallel vs serial, with speedups).
func BenchmarkTable2_SerialVsParallel(b *testing.B) {
	o := benchOpts()
	inputs := generate.Suite()
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table2(o, inputs)
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteTable2(out(b, i), rows, o.Workers)
	}
}

// BenchmarkTable3_Quality regenerates Table 3 (SP/SE/OQ/Rand of parallel
// vs serial composition on CNR and MG1).
func BenchmarkTable3_Quality(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table3(o, []generate.Input{generate.CNR, generate.MG1})
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteTable3(out(b, i), rows)
	}
}

// BenchmarkTable4_MultiPhaseColoring regenerates Table 4 (first-phase vs
// multi-phase coloring; the paper uses 2 threads).
func BenchmarkTable4_MultiPhaseColoring(b *testing.B) {
	o := benchOpts()
	o.Workers = 2
	inputs := []generate.Input{generate.Channel, generate.UK2002, generate.EuropeOSM, generate.MG2}
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table4(o, inputs, 3)
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteTable4(out(b, i), rows)
	}
}

// BenchmarkTable5_Threshold regenerates Table 5 (colored-phase threshold
// 1e-4 vs 1e-2 across nine inputs).
func BenchmarkTable5_Threshold(b *testing.B) {
	o := benchOpts()
	inputs := []generate.Input{
		generate.CNR, generate.CoPapers, generate.Channel, generate.EuropeOSM,
		generate.MG1, generate.RGG, generate.UK2002, generate.NLPKKT, generate.MG2,
	}
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table5(o, inputs, 2)
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteTable5(out(b, i), rows)
	}
}

// BenchmarkFig3to6_Trajectories regenerates the modularity-vs-iteration
// curves (left columns of Figs. 3–6) for all inputs and schemes.
func BenchmarkFig3to6_Trajectories(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		sets, err := harness.Trajectories(o, generate.Suite(), harness.AllSchemes())
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteTrajectories(out(b, i), sets)
	}
}

// BenchmarkFig3to6_Runtime regenerates the runtime-vs-threads curves
// (right columns of Figs. 3–6) with baseline+VF+Color.
func BenchmarkFig3to6_Runtime(b *testing.B) {
	o := benchOpts()
	ws := workerSweep()
	for i := 0; i < b.N; i++ {
		w := out(b, i)
		fmt.Fprintln(w, "Figs 3-6 (right): runtime vs workers")
		for _, in := range generate.Suite() {
			curve, err := harness.Scaling(o, in, harness.BaselineVFColor, ws, false)
			if err != nil {
				b.Fatal(err)
			}
			harness.WriteScaling(w, curve)
		}
	}
}

// BenchmarkFig7_Speedup regenerates the relative and absolute speedup
// curves of Fig. 7 on four representative inputs.
func BenchmarkFig7_Speedup(b *testing.B) {
	o := benchOpts()
	ws := workerSweep()
	inputs := []generate.Input{generate.RGG, generate.MG1, generate.LiveJournal, generate.CNR}
	for i := 0; i < b.N; i++ {
		w := out(b, i)
		fmt.Fprintln(w, "Fig 7: relative and absolute speedups (baseline+vf+color)")
		for _, in := range inputs {
			curve, err := harness.Scaling(o, in, harness.BaselineVFColor, ws, true)
			if err != nil {
				b.Fatal(err)
			}
			harness.WriteScaling(w, curve)
		}
	}
}

// BenchmarkFig8_Breakdown regenerates the runtime-breakdown stacks of
// Fig. 8 (coloring / clustering / rebuild) on the paper's four
// representative inputs.
func BenchmarkFig8_Breakdown(b *testing.B) {
	o := benchOpts()
	ws := workerSweep()
	inputs := []generate.Input{generate.RGG, generate.MG2, generate.EuropeOSM, generate.NLPKKT}
	for i := 0; i < b.N; i++ {
		w := out(b, i)
		for _, in := range inputs {
			pts, err := harness.BreakdownSweep(o, in, ws)
			if err != nil {
				b.Fatal(err)
			}
			harness.WriteBreakdown(w, in, pts)
		}
	}
}

// BenchmarkFig9_RebuildScaling regenerates the graph-rebuild speedup
// curves of Fig. 9.
func BenchmarkFig9_RebuildScaling(b *testing.B) {
	o := benchOpts()
	ws := workerSweep()
	inputs := []generate.Input{generate.RGG, generate.MG2, generate.EuropeOSM, generate.NLPKKT}
	for i := 0; i < b.N; i++ {
		w := out(b, i)
		fmt.Fprintln(w, "Fig 9: rebuild speedup vs workers")
		for _, in := range inputs {
			curve, err := harness.Scaling(o, in, harness.BaselineVFColor, ws, false)
			if err != nil {
				b.Fatal(err)
			}
			sp := curve.RebuildSpeedups()
			fmt.Fprintf(w, "%s:", in)
			for t, p := range curve.Points {
				fmt.Fprintf(w, " %d:%.2fx", p.Workers, sp[t])
			}
			fmt.Fprintln(w)
		}
	}
}

// BenchmarkFig10_Profiles regenerates the performance profiles of Fig. 10
// (modularity and runtime, all schemes, nine inputs).
func BenchmarkFig10_Profiles(b *testing.B) {
	o := benchOpts()
	inputs := []generate.Input{
		generate.CNR, generate.CoPapers, generate.Channel, generate.LiveJournal,
		generate.MG1, generate.RGG, generate.UK2002, generate.NLPKKT, generate.MG2,
	}
	for i := 0; i < b.N; i++ {
		w := out(b, i)
		mod, rt, err := harness.Profiles(o, inputs)
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteProfiles(w, "modularity", mod)
		harness.WriteProfiles(w, "runtime", rt)
	}
}

// BenchmarkSec7_RelatedWorkPLM regenerates the §7 related-work comparison:
// baseline+VF+Color vs the PLM emulation on the paper's three common inputs.
func BenchmarkSec7_RelatedWorkPLM(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := harness.RelatedWork(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteRelatedWork(out(b, i), rows)
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblation_SerialVsParallelRenumber isolates the community
// renumbering step of the rebuild: the paper implements it serially and
// names the prefix-sum parallelization as future work.
func BenchmarkAblation_SerialVsParallelRenumber(b *testing.B) {
	g := generate.MustGenerate(generate.LiveJournal, benchScale(), 0, 0)
	for _, mode := range []string{"parallel", "serial"} {
		b.Run(mode, func(b *testing.B) {
			o := core.BaselineVFColor(runtime.GOMAXPROCS(0))
			o.ColoringVertexCutoff = 512
			o.SerialRenumber = mode == "serial"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := core.Run(g, o)
				if res.NumCommunities == 0 {
					b.Fatal("no communities")
				}
			}
		})
	}
}

// BenchmarkAblation_BalancedColoring measures the balanced-coloring fix the
// paper proposes for skewed color-set sizes (uk-2002 discussion, §6.2).
func BenchmarkAblation_BalancedColoring(b *testing.B) {
	g := generate.MustGenerate(generate.UK2002, benchScale(), 0, 0)
	for _, mode := range []string{"plain", "balanced"} {
		b.Run(mode, func(b *testing.B) {
			o := core.BaselineVFColor(runtime.GOMAXPROCS(0))
			o.ColoringVertexCutoff = 512
			o.BalancedColoring = mode == "balanced"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := core.Run(g, o)
				if res.Modularity <= 0 {
					b.Fatal("bad run")
				}
			}
		})
	}
}

// BenchmarkAblation_VFChainCompression measures the §5.3 chain-compression
// extension against plain VF on the road network where it matters.
func BenchmarkAblation_VFChainCompression(b *testing.B) {
	g := generate.MustGenerate(generate.EuropeOSM, benchScale(), 0, 0)
	for _, mode := range []string{"vf", "vf+chain"} {
		b.Run(mode, func(b *testing.B) {
			o := core.BaselineVF(runtime.GOMAXPROCS(0))
			o.VFChainCompression = mode == "vf+chain"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := core.Run(g, o)
				if res.Modularity <= 0 {
					b.Fatal("bad run")
				}
			}
		})
	}
}

// BenchmarkAblation_MinLabel quantifies the minimum-label heuristic's
// effect (§5.1) on the baseline variant.
func BenchmarkAblation_MinLabel(b *testing.B) {
	g := generate.MustGenerate(generate.CNR, benchScale(), 0, 0)
	for _, mode := range []string{"minlabel", "disabled"} {
		b.Run(mode, func(b *testing.B) {
			o := core.Baseline(runtime.GOMAXPROCS(0))
			o.DisableMinLabel = mode == "disabled"
			b.ResetTimer()
			var lastQ float64
			for i := 0; i < b.N; i++ {
				lastQ = core.Run(g, o).Modularity
			}
			b.ReportMetric(lastQ, "finalQ")
		})
	}
}

// --- Kernel micro-benchmarks ---

// BenchmarkKernel_GraphBuild measures parallel CSR construction.
func BenchmarkKernel_GraphBuild(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, benchScale(), 0, 0)
	var edges []graph.Edge
	for i := 0; i < g.N(); i++ {
		nbr, wts := g.Neighbors(i)
		for t, j := range nbr {
			if int(j) >= i {
				edges = append(edges, graph.Edge{U: int32(i), V: j, W: wts[t]})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gg := graph.FromEdges(g.N(), edges, 0)
		if gg.N() != g.N() {
			b.Fatal("bad build")
		}
	}
}

// BenchmarkStreaming_IncrementalVsScratch measures the dynamic maintainer
// absorbing a batch of new edges versus re-detecting from scratch (the
// future-work item (i) economics).
func BenchmarkStreaming_IncrementalVsScratch(b *testing.B) {
	full := generate.MustGenerate(generate.LiveJournal, benchScale(), 0, 0)
	var initial, stream []graph.Edge
	for u := 0; u < full.N(); u++ {
		nbr, wts := full.Neighbors(u)
		for t, v := range nbr {
			if int32(u) > v {
				continue
			}
			e := graph.Edge{U: int32(u), V: v, W: wts[t]}
			if (u+int(v))%10 < 9 {
				initial = append(initial, e)
			} else {
				stream = append(stream, e)
			}
		}
	}
	fullOpts := core.BaselineVFColor(runtime.GOMAXPROCS(0))
	fullOpts.ColoringVertexCutoff = 512

	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			gb := graph.NewBuilder(full.N())
			gb.AddEdges(initial)
			m := dynamic.New(gb.Build(0), dynamic.Options{
				BatchSize: 4096, RefreshFraction: 0.5, Full: fullOpts,
			})
			b.StartTimer()
			for _, e := range stream {
				if err := m.AddEdge(e.U, e.V, e.W); err != nil {
					b.Fatal(err)
				}
			}
			m.Flush()
		}
	})
	b.Run("scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := core.Run(full, fullOpts)
			if res.Modularity <= 0 {
				b.Fatal("bad run")
			}
		}
	})
}

// BenchmarkKernel_OnePhase measures a single uncolored phase on the
// largest suite input.
func BenchmarkKernel_OnePhase(b *testing.B) {
	g := generate.MustGenerate(generate.Friendster, benchScale(), 0, 0)
	o := core.Baseline(runtime.GOMAXPROCS(0))
	o.MaxPhases = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Run(g, o)
		if res.NumCommunities == 0 {
			b.Fatal("no communities")
		}
	}
}
