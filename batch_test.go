package grappolo_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"grappolo"
	"grappolo/internal/core"
	"grappolo/internal/generate"
)

// waitFor spins until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// mustMatch asserts res is bit-identical to the one-shot reference for its
// graph — the coalescing contract: a batched caller must be unable to tell
// whether its result came from a private run or a shared one.
func mustMatch(t *testing.T, tag string, res, want *grappolo.Result) {
	t.Helper()
	if res == nil {
		t.Fatalf("%s: nil result", tag)
	}
	if res.Modularity != want.Modularity ||
		res.NumCommunities != want.NumCommunities ||
		res.TotalIterations != want.TotalIterations {
		t.Fatalf("%s: Q=%v nc=%d iters=%d, want Q=%v nc=%d iters=%d",
			tag, res.Modularity, res.NumCommunities, res.TotalIterations,
			want.Modularity, want.NumCommunities, want.TotalIterations)
	}
	if len(res.Membership) != len(want.Membership) {
		t.Fatalf("%s: membership length %d, want %d (cross-wired result?)",
			tag, len(res.Membership), len(want.Membership))
	}
	for v := range want.Membership {
		if res.Membership[v] != want.Membership[v] {
			t.Fatalf("%s: membership differs at vertex %d", tag, v)
		}
	}
}

// cliqueRing builds a small distinct-shaped test graph: cliques of the
// given size arranged in a ring. Different (cliques, size) pairs yield
// structurally distinct graphs with distinct detection results.
func cliqueRing(t *testing.T, cliques, size int) *grappolo.Graph {
	t.Helper()
	b := grappolo.NewBuilder(cliques * size)
	for c := 0; c < cliques; c++ {
		base := int32(c * size)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddEdge(base+int32(i), base+int32(j), 1)
			}
		}
		next := int32(((c + 1) % cliques) * size)
		b.AddEdge(base, next, 0.5)
	}
	return b.Build(2)
}

// TestBatcherCoalescesConcurrentDetects is the acceptance pin: 8 concurrent
// Detects of the SAME graph perform exactly ONE engine run, and every
// caller's result is bit-identical to a one-shot core.Run. The pool's only
// permit is held so the batch leader queues while the other seven coalesce
// behind it deterministically.
func TestBatcherCoalescesConcurrentDetects(t *testing.T) {
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 4)
	want := core.Run(g, core.Options{Workers: 4})

	pool, err := grappolo.NewPool(1, grappolo.Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	if err := pool.HoldEnginePermit(context.Background()); err != nil {
		t.Fatal(err)
	}

	const requests = 8
	results := make([]*grappolo.Result, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = b.Detect(context.Background(), g)
		}(i)
	}
	// 1 leader queued for the engine + 7 followers coalesced behind it.
	waitFor(t, "8 requests to attach (1 leader queued, 7 followers)", func() bool {
		return b.JoinedFollowers() == requests-1 && pool.QueuedWaiters() == 1
	})
	pool.ReleaseEnginePermit()
	wg.Wait()

	for i := 0; i < requests; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		mustMatch(t, fmt.Sprintf("request %d", i), results[i], want)
	}
	// Results are independent copies, not views of one shared allocation.
	for i := 1; i < requests; i++ {
		if &results[i].Membership[0] == &results[0].Membership[0] {
			t.Fatal("batched results share membership storage")
		}
	}
	st := b.Stats()
	if st.Led != 1 {
		t.Fatalf("engine runs = %d, want exactly 1 for %d coalesced requests", st.Led, requests)
	}
	if st.Batched != requests-1 {
		t.Fatalf("Batched = %d, want %d", st.Batched, requests-1)
	}
}

// TestBatcherDistinctGraphsDoNotCoalesce pins the complement: concurrent
// requests for structurally different graphs each get their own run and
// their own (never cross-wired) result.
func TestBatcherDistinctGraphsDoNotCoalesce(t *testing.T) {
	a := cliqueRing(t, 4, 5)
	c := cliqueRing(t, 6, 4)
	wantA := core.Run(a, core.Options{Workers: 2})
	wantC := core.Run(c, core.Options{Workers: 2})

	pool, err := grappolo.NewPool(2, grappolo.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	resA, errA := b.Detect(context.Background(), a)
	resC, errC := b.Detect(context.Background(), c)
	if errA != nil || errC != nil {
		t.Fatal(errA, errC)
	}
	mustMatch(t, "graph A", resA, wantA)
	mustMatch(t, "graph C", resC, wantC)
	if st := b.Stats(); st.Led != 2 || st.Batched != 0 {
		t.Fatalf("stats = %+v, want 2 runs and 0 batched", st)
	}
}

// TestBatcherStressNeverCrossWires hammers the batcher from many goroutines
// over several graph shapes (the -race extension of the PR 4 pool stress
// test): every caller's result must be bit-identical to the one-shot
// reference FOR ITS GRAPH, no matter how requests coalesce, and the
// leader/follower accounting must add up to the request count.
func TestBatcherStressNeverCrossWires(t *testing.T) {
	inputs := []generate.Input{generate.CNR, generate.MG1, generate.EuropeOSM}
	graphs := make([]*grappolo.Graph, len(inputs))
	wants := make([]*grappolo.Result, len(inputs))
	for i, in := range inputs {
		graphs[i] = generate.MustGenerate(in, generate.Small, 0, 4)
		wants[i] = core.Run(graphs[i], core.Options{Workers: 2})
	}

	pool, err := grappolo.NewPool(2, grappolo.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	const goroutines = 10
	const perG = 8
	ctx := context.Background()
	var wg sync.WaitGroup
	failed := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var res *grappolo.Result
			var err error
			for r := 0; r < perG; r++ {
				// Consecutive goroutines hit the same graph at the same
				// time (duplicate load), while the mix still rotates
				// through all shapes to chase cross-wiring.
				gi := (w/2 + r) % len(graphs)
				if r%2 == 0 {
					res, err = b.Detect(ctx, graphs[gi])
				} else {
					res, err = b.DetectInto(ctx, graphs[gi], res)
				}
				if err != nil {
					failed <- fmt.Errorf("goroutine %d req %d on %s: %v", w, r, inputs[gi], err)
					return
				}
				want := wants[gi]
				if res.Modularity != want.Modularity ||
					res.NumCommunities != want.NumCommunities ||
					res.TotalIterations != want.TotalIterations ||
					len(res.Membership) != len(want.Membership) {
					failed <- fmt.Errorf("goroutine %d req %d on %s: result does not match its graph's reference (cross-wired?)", w, r, inputs[gi])
					return
				}
				for v := range want.Membership {
					if res.Membership[v] != want.Membership[v] {
						failed <- fmt.Errorf("goroutine %d req %d on %s: membership differs at vertex %d", w, r, inputs[gi], v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(failed)
	for err := range failed {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Led+st.Batched != goroutines*perG {
		t.Fatalf("Led(%d) + Batched(%d) != %d requests", st.Led, st.Batched, goroutines*perG)
	}
	if st.Canceled != 0 {
		t.Fatalf("Canceled = %d with no cancellations issued", st.Canceled)
	}
	if pool.AvailablePermits() != pool.Size() {
		t.Fatalf("leaked permits: %d available, want %d", pool.AvailablePermits(), pool.Size())
	}
}

// TestBatcherAdmissionOrderFairness is the fairness property pin: with the
// pool overloaded (single engine, permit held by the test), requests for
// DISTINCT graphs are admitted one at a time in a known order, a victim is
// canceled while queued, and the cascade is then released one engine grant
// at a time — interleaved test-owned holds pause the pipeline after every
// run, making the completion order observation deterministic. Completion
// order must equal admission order with the victim skipped; the victim must
// return its ctx.Err() promptly; and no permit or goroutine may leak.
func TestBatcherAdmissionOrderFairness(t *testing.T) {
	const requests = 5
	const victim = 2
	startGoroutines := runtime.NumGoroutine()

	graphs := make([]*grappolo.Graph, requests)
	wants := make([]*grappolo.Result, requests)
	for i := range graphs {
		graphs[i] = cliqueRing(t, 3+i, 4)
		wants[i] = core.Run(graphs[i], core.Options{Workers: 1})
	}

	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	if err := pool.HoldEnginePermit(context.Background()); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []int
	results := make([]*grappolo.Result, requests)
	done := make([]chan error, requests)
	holds := make([]chan struct{}, requests)
	ctxs := make([]context.Context, requests)
	cancels := make([]context.CancelFunc, requests)
	// Admission queue being built: [req0, hold0, req1, hold1, ...] — each
	// test-owned hold re-parks the pool right after the request before it
	// finishes, so exactly one request runs per release below.
	for i := 0; i < requests; i++ {
		ctxs[i], cancels[i] = context.WithCancel(context.Background())
		done[i] = make(chan error, 1)
		go func(i int) {
			res, err := b.Detect(ctxs[i], graphs[i])
			if err == nil {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				results[i] = res
			}
			done[i] <- err
		}(i)
		waitFor(t, fmt.Sprintf("request %d to queue", i), func() bool {
			return pool.QueuedWaiters() == 2*i+1
		})
		holds[i] = make(chan struct{})
		go func(i int) {
			if err := pool.HoldEnginePermit(context.Background()); err != nil {
				t.Error(err)
			}
			close(holds[i])
		}(i)
		waitFor(t, fmt.Sprintf("hold %d to queue", i), func() bool {
			return pool.QueuedWaiters() == 2*i+2
		})
	}

	// Cancel the victim while it is queued: it must return its own ctx
	// error promptly (well before any engine frees up) and pass its turn on.
	cancels[victim]()
	select {
	case err := <-done[victim]:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("victim error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter did not return promptly")
	}

	// Release the cascade one grant at a time. hold[i] closing proves the
	// engine went req0→hold0→req1→hold1→... in strict admission order; at
	// each pause exactly the non-victim requests 0..i have completed.
	pool.ReleaseEnginePermit()
	for i := 0; i < requests; i++ {
		<-holds[i]
		if i != victim {
			select {
			case err := <-done[i]:
				if err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
				mustMatch(t, fmt.Sprintf("request %d", i), results[i], wants[i])
			case <-time.After(10 * time.Second):
				t.Fatalf("request %d did not complete at its turn", i)
			}
		}
		pool.ReleaseEnginePermit()
	}

	mu.Lock()
	got := append([]int(nil), order...)
	mu.Unlock()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("completion order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion order %v, want admission order %v (victim %d skipped)", got, want, victim)
		}
	}
	for _, c := range cancels {
		c()
	}

	// No permit leaked: the full capacity is available again...
	waitFor(t, "all permits returned", func() bool {
		return pool.AvailablePermits() == pool.Size() && pool.QueuedWaiters() == 0
	})
	if st := b.Stats(); st.Canceled != 1 {
		t.Fatalf("Canceled = %d, want 1", st.Canceled)
	}
	// ...and no goroutine leaked (workers are per-call, batches fan out and
	// die with their leaders).
	waitFor(t, "goroutines to settle", func() bool {
		return runtime.NumGoroutine() <= startGoroutines+4
	})
}

// TestBatcherFollowerCancelIsPromptAndLeakFree pins the follower side of
// the cancellation contract: a follower abandoning a still-queued batch
// returns its own ctx.Err() immediately (it never held a permit, so none
// can leak) and the remaining members complete untouched.
func TestBatcherFollowerCancelIsPromptAndLeakFree(t *testing.T) {
	g := cliqueRing(t, 4, 5)
	want := core.Run(g, core.Options{Workers: 1})
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	if err := pool.HoldEnginePermit(context.Background()); err != nil {
		t.Fatal(err)
	}

	leaderDone := make(chan error, 1)
	var leaderRes *grappolo.Result
	go func() {
		var err error
		leaderRes, err = b.Detect(context.Background(), g)
		leaderDone <- err
	}()
	waitFor(t, "leader to queue", func() bool { return pool.QueuedWaiters() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, err := b.Detect(ctx, g)
		followerDone <- err
	}()
	waitFor(t, "follower to join", func() bool { return b.JoinedFollowers() == 1 })

	cancel()
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled follower did not return promptly")
	}

	pool.ReleaseEnginePermit()
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	mustMatch(t, "leader", leaderRes, want)
	if st := b.Stats(); st.Led != 1 || st.Canceled != 1 {
		t.Fatalf("stats = %+v, want Led=1 Canceled=1", st)
	}
	if pool.AvailablePermits() != 1 {
		t.Fatal("permit leaked after follower cancellation")
	}
}

// TestBatcherLeaderCancelPromotesFollower pins the leader side: when the
// leader of a batch is canceled (here while queued for an engine), a live
// follower must not inherit the leader's error — it transparently retries,
// becomes the new leader, and completes with a correct result.
func TestBatcherLeaderCancelPromotesFollower(t *testing.T) {
	g := cliqueRing(t, 5, 4)
	want := core.Run(g, core.Options{Workers: 1})
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	if err := pool.HoldEnginePermit(context.Background()); err != nil {
		t.Fatal(err)
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := b.Detect(leaderCtx, g)
		leaderDone <- err
	}()
	waitFor(t, "leader to queue", func() bool { return pool.QueuedWaiters() == 1 })

	followerDone := make(chan error, 1)
	var followerRes *grappolo.Result
	go func() {
		var err error
		followerRes, err = b.Detect(context.Background(), g)
		followerDone <- err
	}()
	waitFor(t, "follower to join", func() bool { return b.JoinedFollowers() == 1 })

	cancelLeader()
	select {
	case err := <-leaderDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("leader error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled leader did not return promptly")
	}
	// The follower retries and re-queues as the new leader of its own batch.
	waitFor(t, "follower to requeue as the new leader", func() bool {
		return pool.QueuedWaiters() == 1
	})
	pool.ReleaseEnginePermit()
	if err := <-followerDone; err != nil {
		t.Fatal(err)
	}
	mustMatch(t, "promoted follower", followerRes, want)
	if pool.AvailablePermits() != 1 {
		t.Fatal("permit leaked after leader cancellation")
	}
	// Accounting: the promoted follower completed by LEADING its own run,
	// so it counts toward Led, not Batched — Batched+Led stays the number
	// of completed requests.
	if st := b.Stats(); st.Batched != 0 || st.Led != 1 {
		t.Fatalf("stats = %+v, want Batched=0 Led=1 after promotion", st)
	}
}
