// Package rescache is the cross-time serving cache behind grappolo.Cache: a
// TTL + LRU store of detection Results keyed by (graph fingerprint, engine
// options), sized and evicted by estimated graph+result bytes, with a delta
// tier that routes near-miss graphs (a small edge-insertion edit of a cached
// graph) onto an incremental dynamic.Maintainer seeded from the cached
// membership instead of a cold engine run.
//
// Correctness before coverage: the sampled graph.Fingerprint is only the
// lookup key's first-pass filter. Every hit is confirmed against the exact
// full-content StrongHash before a result is served, and a live entry is
// never replaced by a colliding graph — a sampled-hash collision therefore
// degrades to "uncached" (counted in Stats.Rejected), never to serving the
// wrong membership.
//
// Concurrency: the store mutex guards the table, the LRU list, byte
// accounting and counters. Cached Results and graphs are immutable after
// insert, so hit-path copy-out happens OUTSIDE the lock; a cached entry's
// maintainer is exclusive — DeltaDetect detaches it under the lock, works
// on it privately, and re-homes it onto the new entry it creates (or
// reattaches it on a failed route).
package rescache

import (
	"context"
	"math"
	"sync"
	"time"

	"grappolo/internal/core"
	"grappolo/internal/dynamic"
	"grappolo/internal/graph"
)

// Key identifies a cached detection: the graph's sampled fingerprint plus
// the exact engine configuration that produced the result. core.Options is
// all scalars, so the composite is comparable and indexes the table
// directly — "options identity" with no serialization step.
type Key struct {
	FP   graph.Fingerprint
	Opts core.Options
}

// Options configure a Store.
type Options struct {
	// TTL bounds entry age; 0 keeps entries until evicted.
	TTL time.Duration
	// MaxBytes bounds the estimated resident bytes (graphs + results +
	// maintainers); 0 is unbounded. An entry larger than the whole budget
	// is not admitted at all.
	MaxBytes int64
	// DeltaEdges is the edge-edit budget for delta routing; 0 disables the
	// delta tier.
	DeltaEdges int
	// Dynamic is the maintenance policy for per-entry maintainers
	// (Workers, RefreshFraction, and the Full options quality re-anchoring
	// runs use).
	Dynamic dynamic.Options
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
}

// Stats are cumulative counters plus a point-in-time size snapshot.
type Stats struct {
	// Hits counts exact serves: sampled key matched AND the strong hash
	// confirmed. Misses counts everything else (including rejections).
	Hits, Misses int64
	// DeltaRouted counts misses served by the delta tier instead of a cold
	// run.
	DeltaRouted int64
	// Evictions counts entries dropped by the byte budget; Expired counts
	// entries dropped past their TTL.
	Evictions, Expired int64
	// Rejected counts strong-hash refusals: a sampled-fingerprint match
	// whose exact content differed — the collision the strong hash exists
	// to catch — at lookup or admission.
	Rejected int64
	// Entries and Bytes snapshot the current residency.
	Entries int
	Bytes   int64
}

// entry is one cached detection. res and g are immutable after insert;
// maint is exclusively owned (see package comment).
type entry struct {
	key     Key
	strong  uint64
	g       *graph.Graph
	res     *core.Result
	maint   *dynamic.Maintainer
	bytes   int64
	expires time.Time // zero: never

	prev, next *entry // LRU list; head is most recent
}

// Store is the cache. Safe for concurrent use.
type Store struct {
	opts Options

	mu      sync.Mutex
	entries map[Key]*entry
	head    *entry
	tail    *entry
	bytes   int64

	hits, misses, delta, evictions, expired, rejected int64
}

// New returns an empty store.
func New(opts Options) *Store {
	return &Store{opts: opts, entries: make(map[Key]*entry)}
}

func (s *Store) now() time.Time {
	if s.opts.Now != nil {
		return s.opts.Now()
	}
	return time.Now()
}

// Get returns the cached Result for key, confirming the exact content hash
// before serving. The returned Result is the entry's own (immutable)
// storage: callers must deep-copy it out and never mutate it. A hit bumps
// the entry to the front of the LRU order. Zero allocations on the hit
// path.
func (s *Store) Get(key Key, strong uint64) (*core.Result, bool) {
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	if !e.expires.IsZero() && s.now().After(e.expires) {
		s.remove(e)
		s.expired++
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	if e.strong != strong {
		// Sampled-fingerprint collision: same key, different graph. The
		// incumbent stays; this request is served uncached.
		s.rejected++
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.unlink(e)
	s.pushFront(e)
	s.hits++
	res := e.res
	s.mu.Unlock()
	return res, true
}

// Put admits a detection under key. The store takes ownership of res (it
// must be a private deep copy, immutable hereafter) and retains g — the
// graph anchors delta diffs and the byte estimate — plus an optional
// maintainer already representing g. Returns false when the entry was not
// admitted: it alone exceeds the byte budget, or a LIVE entry with
// different exact content already owns the key (sampled collision; the
// incumbent wins and the newcomer stays uncached, counted as Rejected).
func (s *Store) Put(key Key, strong uint64, g *graph.Graph, res *core.Result, maint *dynamic.Maintainer) bool {
	bytes := EstimateBytes(g, res, maint != nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepExpired()
	if old := s.entries[key]; old != nil {
		if old.strong != strong {
			s.rejected++
			return false
		}
		s.remove(old) // same content re-admitted: refresh TTL/result/maintainer
	}
	if s.opts.MaxBytes > 0 && bytes > s.opts.MaxBytes {
		return false
	}
	e := &entry{key: key, strong: strong, g: g, res: res, maint: maint, bytes: bytes}
	if s.opts.TTL > 0 {
		e.expires = s.now().Add(s.opts.TTL)
	}
	s.entries[key] = e
	s.pushFront(e)
	s.bytes += bytes
	for s.opts.MaxBytes > 0 && s.bytes > s.opts.MaxBytes && s.tail != e {
		s.evictions++
		s.remove(s.tail)
	}
	return true
}

// DeltaDetect attempts to serve a cache MISS from the delta tier: if some
// unexpired entry with the same options is a ≤DeltaEdges edge-insertion
// edit away from g (per the cheap CSR merge-diff), the delta is fed to that
// entry's maintainer — seeded from the cached membership if the entry has
// none — and the incremental result is admitted as a new entry for g
// (carrying the maintainer forward, so a chain of small edits keeps
// streaming onto one maintainer).
//
// Returns handled=false when no candidate routes (caller falls through to
// a cold run). When handled, err is nil or ctx's error from a canceled
// incremental flush. The returned Result is entry-owned: deep-copy it out.
func (s *Store) DeltaDetect(ctx context.Context, key Key, g *graph.Graph, strong uint64) (*core.Result, bool, error) {
	if s.opts.DeltaEdges <= 0 {
		return nil, false, nil
	}
	fp := key.FP
	w := math.Float64frombits(fp.WBits)
	s.mu.Lock()
	var cand *entry
	candGap := int64(1) << 62
	for _, e := range s.entries {
		ef := e.key.FP
		if e.key.Opts != key.Opts || ef == fp {
			continue
		}
		if !e.expires.IsZero() && s.now().After(e.expires) {
			continue
		}
		// Insert-only compatibility gates, all O(1): the request must be a
		// superset shape — at least as many vertices and arcs (each edge
		// edit adds at most 2 arcs) and no net weight loss.
		gap := fp.Arcs - ef.Arcs
		if fp.N < ef.N || gap < 0 || gap > 2*int64(s.opts.DeltaEdges) {
			continue
		}
		if w < math.Float64frombits(ef.WBits) {
			continue
		}
		if cand == nil || gap < candGap {
			cand, candGap = e, gap
		}
	}
	if cand == nil {
		s.mu.Unlock()
		return nil, false, nil
	}
	base, baseRes, maint, baseKey := cand.g, cand.res, cand.maint, cand.key
	cand.maint = nil // detach: the maintainer is ours exclusively now
	s.mu.Unlock()

	edges, ok := DiffEdges(base, g, s.opts.DeltaEdges, make([]graph.Edge, 0, s.opts.DeltaEdges))
	if !ok {
		s.reattach(baseKey, maint)
		return nil, false, nil
	}
	if maint == nil {
		var err error
		maint, err = dynamic.NewSeeded(base, baseRes.Membership, s.opts.Dynamic)
		if err != nil {
			return nil, false, nil
		}
	}
	maint.Grow(g.N()) // cover trailing isolated vertices no delta edge names
	for _, e := range edges {
		if err := maint.AddEdgeCtx(ctx, e.U, e.V, e.W); err != nil {
			return nil, true, err
		}
	}
	if err := maint.FlushCtx(ctx); err != nil {
		// The maintainer now holds a half-refreshed state for g, not for
		// base: discard it rather than reattach. The base entry stays
		// servable (its graph and result are untouched) and re-seeds a
		// fresh maintainer on the next delta.
		return nil, true, err
	}
	res := ResultFrom(maint)
	s.mu.Lock()
	s.delta++
	s.mu.Unlock()
	s.Put(key, strong, g, res, maint)
	return res, true, nil
}

// reattach returns a detached maintainer to its entry if the entry is still
// resident and has not grown a new one.
func (s *Store) reattach(key Key, maint *dynamic.Maintainer) {
	if maint == nil {
		return
	}
	s.mu.Lock()
	if e := s.entries[key]; e != nil && e.maint == nil {
		e.maint = maint
	}
	s.mu.Unlock()
}

// Remove drops the entry for key, if resident. Invalidation entry point.
func (s *Store) Remove(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return false
	}
	s.remove(e)
	return true
}

// Clear drops every entry and returns how many were resident.
func (s *Store) Clear() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.entries)
	for s.tail != nil {
		s.remove(s.tail)
	}
	return n
}

// Len returns the resident entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, DeltaRouted: s.delta,
		Evictions: s.evictions, Expired: s.expired, Rejected: s.rejected,
		Entries: len(s.entries), Bytes: s.bytes,
	}
}

// sweepExpired drops every entry past its TTL. Caller holds s.mu.
func (s *Store) sweepExpired() {
	if s.opts.TTL <= 0 {
		return
	}
	now := s.now()
	for e := s.tail; e != nil; {
		prev := e.prev
		if now.After(e.expires) {
			s.expired++
			s.remove(e)
		}
		e = prev
	}
}

// remove unlinks and deletes e. Caller holds s.mu.
func (s *Store) remove(e *entry) {
	s.unlink(e)
	delete(s.entries, e.key)
	s.bytes -= e.bytes
}

func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) pushFront(e *entry) {
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// lruKeys returns the resident keys in most-recent-first order (tests).
func (s *Store) lruKeys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []Key
	for e := s.head; e != nil; e = e.next {
		keys = append(keys, e.key)
	}
	return keys
}

// DiffEdges computes the undirected edge-insertion delta turning base into
// next, appending into buf (reused across calls): one entry per new edge
// {u, v}, u <= v, and one per weight INCREASE on an existing edge (carrying
// the increment — the maintainer's AddEdge accumulates). Returns ok=false
// when next is not reachable from base by at most budget edge insertions:
// an arc of base is missing from next or lost weight (deletions are not
// maintainable incrementally), or the edit count exceeds budget.
//
// Both graphs are canonical CSR (rows sorted, duplicates merged), so each
// row pair merges with one linear two-pointer walk: O(arcs) worst case,
// with early exit the moment the budget is crossed.
func DiffEdges(base, next *graph.Graph, budget int, buf []graph.Edge) ([]graph.Edge, bool) {
	nb, nn := base.N(), next.N()
	if nn < nb {
		return buf, false
	}
	out := buf[:0]
	for i := 0; i < nn; i++ {
		var bAdj []int32
		var bW []float64
		if i < nb {
			bAdj, bW = base.Neighbors(i)
		}
		nAdj, nW := next.Neighbors(i)
		bi := 0
		for ti, j := range nAdj {
			if bi < len(bAdj) && bAdj[bi] < j {
				return buf, false // base arc absent from next: a deletion
			}
			w := nW[ti]
			if bi < len(bAdj) && bAdj[bi] == j {
				bw := bW[bi]
				bi++
				if w == bw {
					continue
				}
				if w < bw {
					return buf, false // weight decrease: not an insertion
				}
				w -= bw // increment on an existing edge
			}
			if int32(i) <= j { // count each undirected edit once
				out = append(out, graph.Edge{U: int32(i), V: j, W: w})
				if len(out) > budget {
					return buf, false
				}
			}
		}
		if bi < len(bAdj) {
			return buf, false // trailing base arcs absent from next
		}
	}
	return out, true
}

// ResultFrom materializes a maintainer's live assignment as a fresh
// core.Result with dense community ids (first-occurrence order, the same
// convention as the engine's renumbering), the overlay modularity, and the
// Incremental flag set. Phases/Timing stay empty: no engine ran.
func ResultFrom(m *dynamic.Maintainer) *core.Result {
	mem := m.Membership()
	res := &core.Result{Membership: make([]int32, len(mem))}
	remap := make([]int32, len(mem))
	for i := range remap {
		remap[i] = -1
	}
	var next int32
	for i, c := range mem {
		if remap[c] < 0 {
			remap[c] = next
			next++
		}
		res.Membership[i] = remap[c]
	}
	res.NumCommunities = int(next)
	res.Modularity = m.Modularity()
	res.Incremental = true
	return res
}

// EstimateBytes estimates the resident footprint of one cache entry: the
// retained CSR graph, the deep-copied result, and (when present) the
// incremental maintainer's adjacency-map overlay, whose per-arc map-entry
// overhead dominates its slices. Estimates steer the eviction budget; they
// are not an allocator audit.
func EstimateBytes(g *graph.Graph, res *core.Result, hasMaint bool) int64 {
	n, arcs := int64(g.N()), g.ArcCount()
	b := (n+1)*8 + arcs*(4+8) + n*8 // offsets + adj/weights + degrees
	if g.Layout() == graph.LayoutInterleaved {
		b += arcs * 16
	}
	b += int64(len(res.Membership)) * 4
	for _, l := range res.Levels {
		b += int64(len(l)) * 4
	}
	b += int64(len(res.Phases)) * 96
	if hasMaint {
		b += arcs*48 + n*64
	}
	return b
}
