package rescache

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"grappolo/internal/core"
	"grappolo/internal/dynamic"
	"grappolo/internal/graph"
	"grappolo/internal/seq"
)

func testGraph(t *testing.T, n int, edges [][3]float64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(int32(e[0]), int32(e[1]), e[2])
	}
	return b.Build(1)
}

func keyOf(g *graph.Graph) Key { return Key{FP: g.Fingerprint(), Opts: core.Options{Workers: 1}} }

func resOf(g *graph.Graph) *core.Result {
	res := &core.Result{Membership: make([]int32, g.N()), NumCommunities: 1}
	return res
}

// fakeClock is a settable time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func ringGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n), 1)
	}
	return b.Build(1)
}

func TestGetMissThenHit(t *testing.T) {
	s := New(Options{})
	g := ringGraph(t, 10)
	k := keyOf(g)
	if _, ok := s.Get(k, g.StrongHash()); ok {
		t.Fatal("hit on empty store")
	}
	if !s.Put(k, g.StrongHash(), g, resOf(g), nil) {
		t.Fatal("Put refused")
	}
	res, ok := s.Get(k, g.StrongHash())
	if !ok || res == nil {
		t.Fatal("miss after Put")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s := New(Options{TTL: time.Minute, Now: clk.now})
	g := ringGraph(t, 10)
	k := keyOf(g)
	s.Put(k, g.StrongHash(), g, resOf(g), nil)

	clk.advance(59 * time.Second)
	if _, ok := s.Get(k, g.StrongHash()); !ok {
		t.Fatal("entry expired before its TTL")
	}
	clk.advance(2 * time.Second)
	if _, ok := s.Get(k, g.StrongHash()); ok {
		t.Fatal("entry served past its TTL")
	}
	st := s.Stats()
	if st.Expired != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Re-admission restarts the TTL.
	s.Put(k, g.StrongHash(), g, resOf(g), nil)
	if _, ok := s.Get(k, g.StrongHash()); !ok {
		t.Fatal("re-admitted entry not served")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	ga := ringGraph(t, 10)
	gb := ringGraph(t, 12)
	gc := ringGraph(t, 14)
	per := EstimateBytes(gc, resOf(gc), false)
	s := New(Options{MaxBytes: 2 * per})

	ka, kb, kc := keyOf(ga), keyOf(gb), keyOf(gc)
	s.Put(ka, ga.StrongHash(), ga, resOf(ga), nil)
	s.Put(kb, gb.StrongHash(), gb, resOf(gb), nil)
	// Touch A: B becomes least-recently-used.
	if _, ok := s.Get(ka, ga.StrongHash()); !ok {
		t.Fatal("A missing")
	}
	s.Put(kc, gc.StrongHash(), gc, resOf(gc), nil)

	if got := s.lruKeys(); len(got) != 2 || got[0] != kc || got[1] != ka {
		t.Fatalf("LRU order after eviction: %d entries (want C, A)", len(got))
	}
	if _, ok := s.Get(kb, gb.StrongHash()); ok {
		t.Fatal("evicted entry B still served")
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOversizedEntryNotAdmitted(t *testing.T) {
	g := ringGraph(t, 100)
	s := New(Options{MaxBytes: 16})
	if s.Put(keyOf(g), g.StrongHash(), g, resOf(g), nil) {
		t.Fatal("entry larger than the whole budget was admitted")
	}
	if s.Len() != 0 {
		t.Fatal("store not empty")
	}
}

// TestCollisionNeverCrossServed pins the strong-hash admission on the
// crafted sampled-fingerprint collision pair: the second graph neither
// evicts the first nor is served the first's result.
func TestCollisionNeverCrossServed(t *testing.T) {
	a, b := graph.CollidingRingPair(100)
	ka, kb := keyOf(a), keyOf(b)
	if ka != kb {
		t.Fatal("construction broken: keys differ")
	}
	s := New(Options{})
	resA := resOf(a)
	resA.Modularity = 0.5
	s.Put(ka, a.StrongHash(), a, resA, nil)

	if _, ok := s.Get(kb, b.StrongHash()); ok {
		t.Fatal("collision cross-served a wrong result")
	}
	if s.Put(kb, b.StrongHash(), b, resOf(b), nil) {
		t.Fatal("collision displaced the incumbent entry")
	}
	// The incumbent is still served exactly.
	got, ok := s.Get(ka, a.StrongHash())
	if !ok || got.Modularity != 0.5 {
		t.Fatalf("incumbent lost: ok=%v", ok)
	}
	if st := s.Stats(); st.Rejected != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiffEdges(t *testing.T) {
	base := testGraph(t, 6, [][3]float64{{0, 1, 1}, {1, 2, 2}, {3, 4, 1}, {2, 2, 3}})
	for _, tc := range []struct {
		name  string
		next  *graph.Graph
		want  int // delta edge count, -1 = not routable
		total float64
	}{
		{"identical", testGraph(t, 6, [][3]float64{{0, 1, 1}, {1, 2, 2}, {3, 4, 1}, {2, 2, 3}}), 0, 0},
		{"one new edge", testGraph(t, 6, [][3]float64{{0, 1, 1}, {1, 2, 2}, {3, 4, 1}, {2, 2, 3}, {4, 5, 7}}), 1, 7},
		{"weight increase", testGraph(t, 6, [][3]float64{{0, 1, 2.5}, {1, 2, 2}, {3, 4, 1}, {2, 2, 3}}), 1, 1.5},
		{"self-loop added", testGraph(t, 6, [][3]float64{{0, 1, 1}, {1, 2, 2}, {3, 4, 1}, {2, 2, 3}, {5, 5, 2}}), 1, 2},
		{"new vertex edge", testGraph(t, 8, [][3]float64{{0, 1, 1}, {1, 2, 2}, {3, 4, 1}, {2, 2, 3}, {6, 7, 1}}), 1, 1},
		{"edge removed", testGraph(t, 6, [][3]float64{{0, 1, 1}, {3, 4, 1}, {2, 2, 3}}), -1, 0},
		{"weight decreased", testGraph(t, 6, [][3]float64{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {2, 2, 3}}), -1, 0},
		{"rewired", testGraph(t, 6, [][3]float64{{0, 2, 1}, {1, 2, 2}, {3, 4, 1}, {2, 2, 3}}), -1, 0},
		{"fewer vertices", testGraph(t, 5, [][3]float64{{0, 1, 1}, {1, 2, 2}, {3, 4, 1}, {2, 2, 3}}), -1, 0},
	} {
		edges, ok := DiffEdges(base, tc.next, 8, nil)
		if tc.want < 0 {
			if ok {
				t.Errorf("%s: routable with %d edges, want not routable", tc.name, len(edges))
			}
			continue
		}
		if !ok || len(edges) != tc.want {
			t.Errorf("%s: ok=%v edges=%d, want %d", tc.name, ok, len(edges), tc.want)
			continue
		}
		var sum float64
		for _, e := range edges {
			sum += e.W
		}
		if sum != tc.total {
			t.Errorf("%s: delta weight %v, want %v", tc.name, sum, tc.total)
		}
	}
}

func TestDiffEdgesBudget(t *testing.T) {
	base := ringGraph(t, 20)
	b := graph.NewBuilder(20)
	for i := 0; i < 20; i++ {
		b.AddEdge(int32(i), int32((i+1)%20), 1)
	}
	for i := 0; i < 4; i++ {
		b.AddEdge(int32(i), int32(i+10), 1)
	}
	next := b.Build(1)
	if _, ok := DiffEdges(base, next, 3, nil); ok {
		t.Fatal("diff of 4 edits routable under budget 3")
	}
	edges, ok := DiffEdges(base, next, 4, nil)
	if !ok || len(edges) != 4 {
		t.Fatalf("ok=%v edges=%d, want 4", ok, len(edges))
	}
}

// TestDeltaDetect routes a one-edge edit onto a seeded maintainer with zero
// engine runs and admits the result for the new graph.
func TestDeltaDetect(t *testing.T) {
	// Two 5-cliques plus a bridge; membership from the reference pipeline.
	b := graph.NewBuilder(10)
	for base := 0; base <= 5; base += 5 {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(int32(base+i), int32(base+j), 1)
			}
		}
	}
	b.AddEdge(0, 5, 1)
	base := b.Build(1)
	mem := make([]int32, 10)
	for i := range mem {
		mem[i] = int32(i / 5)
	}
	res := &core.Result{Membership: mem, NumCommunities: 2, Modularity: seq.Modularity(base, mem, 1)}

	dyn := dynamic.Options{Workers: 1, Full: core.Baseline(1)}
	s := New(Options{DeltaEdges: 4, Dynamic: dyn})
	k := keyOf(base)
	s.Put(k, base.StrongHash(), base, res, nil)

	// Edit: new vertex 10 tied into the first clique.
	b2 := graph.NewBuilder(11)
	for base := 0; base <= 5; base += 5 {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b2.AddEdge(int32(base+i), int32(base+j), 1)
			}
		}
	}
	b2.AddEdge(0, 5, 1)
	b2.AddEdge(10, 0, 1)
	b2.AddEdge(10, 1, 1)
	next := b2.Build(1)
	nk := Key{FP: next.Fingerprint(), Opts: k.Opts}

	out, handled, err := s.DeltaDetect(context.Background(), nk, next, next.StrongHash())
	if err != nil || !handled {
		t.Fatalf("handled=%v err=%v", handled, err)
	}
	if !out.Incremental {
		t.Fatal("delta result not marked Incremental")
	}
	if len(out.Membership) != 11 {
		t.Fatalf("membership length %d", len(out.Membership))
	}
	if out.Membership[10] != out.Membership[0] {
		t.Fatal("new vertex not absorbed into its clique")
	}
	ref := seq.Modularity(next, out.Membership, 1)
	if math.Abs(out.Modularity-ref) > 1e-9 {
		t.Fatalf("reported Q=%v, reference %v", out.Modularity, ref)
	}
	// The new graph is now cached exactly.
	if _, ok := s.Get(nk, next.StrongHash()); !ok {
		t.Fatal("delta result not admitted for the new graph")
	}
	if st := s.Stats(); st.DeltaRouted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDeltaDetectCanceled pins ctx threading through the delta tier.
func TestDeltaDetectCanceled(t *testing.T) {
	base := ringGraph(t, 40)
	mem := make([]int32, 40)
	res := &core.Result{Membership: mem, NumCommunities: 1}
	// RefreshFraction forces the incremental flush into a full engine run,
	// the cancellable path.
	dyn := dynamic.Options{Workers: 1, Full: core.Baseline(1), RefreshFraction: 1e-9}
	s := New(Options{DeltaEdges: 4, Dynamic: dyn})
	k := keyOf(base)
	s.Put(k, base.StrongHash(), base, res, nil)

	b := graph.NewBuilder(40)
	for i := 0; i < 40; i++ {
		b.AddEdge(int32(i), int32((i+1)%40), 1)
	}
	b.AddEdge(0, 20, 1)
	next := b.Build(1)
	nk := Key{FP: next.Fingerprint(), Opts: k.Opts}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, handled, err := s.DeltaDetect(ctx, nk, next, next.StrongHash())
	if !handled || !errors.Is(err, context.Canceled) {
		t.Fatalf("handled=%v err=%v, want canceled", handled, err)
	}
	// The base entry survives a failed route.
	if _, ok := s.Get(k, base.StrongHash()); !ok {
		t.Fatal("base entry lost after canceled delta")
	}
}

// TestDeltaDetectNotRoutable falls through on an incompatible edit.
func TestDeltaDetectNotRoutable(t *testing.T) {
	base := ringGraph(t, 30)
	res := &core.Result{Membership: make([]int32, 30)}
	s := New(Options{DeltaEdges: 4, Dynamic: dynamic.Options{Workers: 1, Full: core.Baseline(1)}})
	s.Put(keyOf(base), base.StrongHash(), base, res, nil)

	// Same arc count and vertex count, heavier total weight, but REWIRED:
	// passes the O(1) gates, fails the CSR diff.
	b := graph.NewBuilder(30)
	for i := 0; i < 30; i++ {
		j := (i + 1) % 30
		if i == 3 {
			j = 7
		}
		b.AddEdge(int32(i), int32(j), 2)
	}
	next := b.Build(1)
	nk := Key{FP: next.Fingerprint(), Opts: keyOf(base).Opts}
	if _, handled, _ := s.DeltaDetect(context.Background(), nk, next, next.StrongHash()); handled {
		t.Fatal("rewired graph routed as an insertion delta")
	}
}
