package graph

import "math"

// Fingerprint is a cheap structural identity for a Graph, used by the
// serving layer to coalesce concurrent detections on the same input: two
// graphs with equal fingerprints are treated as the same graph. It combines
// the exact vertex count, arc count and total-weight bits with a sampled
// content hash over the CSR arrays, so it costs O(fpSamples) regardless of
// graph size and is comparable (usable directly as a map key).
//
// The guarantee is one-sided: graphs that differ in N, Arcs or total weight
// always differ, and graphs below fpSamples vertices/arcs are hashed in
// full, but two LARGE graphs that agree on all of those and differ only in
// arcs the sample stride skips will collide. That is the documented
// trade-off of batching by fingerprint — callers for whom silent coalescing
// of near-identical large graphs is unacceptable should not route them
// through a batcher (see the grappolo package docs).
type Fingerprint struct {
	N     int
	Arcs  int64
	WBits uint64 // math.Float64bits of the total weight 2m
	Hash  uint64 // sampled CSR content hash
}

// fpSamples bounds the number of row offsets and arc entries mixed into
// Fingerprint.Hash. 64 samples keep the fingerprint cheaper than a single
// sweep chunk while covering every vertex and arc of small graphs exactly.
const fpSamples = 64

// Fingerprint computes the structural fingerprint of g. It is deterministic
// for a given graph content (the CSR form is canonical: rows sorted,
// duplicates merged), so equal graphs built independently fingerprint
// equal, whatever worker count built them.
func (g *Graph) Fingerprint() Fingerprint {
	n := g.N()
	arcs := int64(len(g.adj))
	wbits := math.Float64bits(g.totalW)
	h := uint64(0x9e3779b97f4a7c15)
	h = fpMix(h, uint64(n))
	h = fpMix(h, uint64(arcs))
	h = fpMix(h, wbits)
	if n > 0 {
		step := n/fpSamples + 1
		for i := 0; i < n; i += step {
			h = fpMix(h, uint64(g.offsets[i+1]))
		}
	}
	if arcs > 0 {
		step := arcs/fpSamples + 1
		for j := int64(0); j < arcs; j += step {
			h = fpMix(h, uint64(uint32(g.adj[j])))
			h = fpMix(h, math.Float64bits(g.weights[j]))
		}
	}
	return Fingerprint{N: n, Arcs: arcs, WBits: wbits, Hash: h}
}

// fpMix folds x into h with the splitmix64 finalizer — strong enough
// avalanche that sampled single-entry differences flip the hash.
func fpMix(h, x uint64) uint64 {
	h ^= x
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
