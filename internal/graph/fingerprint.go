package graph

import (
	"math"
	"sync/atomic"
)

// Fingerprint is a cheap structural identity for a Graph, used by the
// serving layer to coalesce concurrent detections on the same input: two
// graphs with equal fingerprints are treated as the same graph. It combines
// the exact vertex count, arc count and total-weight bits with a sampled
// content hash over the CSR arrays, so it costs O(fpSamples) regardless of
// graph size and is comparable (usable directly as a map key).
//
// The guarantee is one-sided: graphs that differ in N, Arcs or total weight
// always differ, and graphs below fpSamples vertices/arcs are hashed in
// full, but two LARGE graphs that agree on all of those and differ only in
// arcs the sample stride skips will collide. The sampled hash is therefore
// only a first-pass filter: layers that persist results across time
// (grappolo.Cache) confirm every sampled-fingerprint match against
// StrongHash, the exact full-content hash, before serving a cached result.
type Fingerprint struct {
	N     int
	Arcs  int64
	WBits uint64 // math.Float64bits of the total weight 2m
	Hash  uint64 // sampled CSR content hash
}

// fpSamples bounds the number of row offsets and arc entries mixed into
// Fingerprint.Hash. 64 samples keep the fingerprint cheaper than a single
// sweep chunk while covering every vertex and arc of small graphs exactly.
const fpSamples = 64

// Fingerprint computes the structural fingerprint of g. It is deterministic
// for a given graph content (the CSR form is canonical: rows sorted,
// duplicates merged), so equal graphs built independently fingerprint
// equal, whatever worker count built them.
//
// The sampled hash is memoized on the (immutable) Graph: the first call
// pays the O(fpSamples) scan, every later call is a single atomic load —
// which is what lets serving layers fingerprint per request without a
// per-layer graph-pointer cache. Concurrent first calls race benignly:
// both compute the same value.
func (g *Graph) Fingerprint() Fingerprint {
	n := g.N()
	arcs := int64(len(g.adj))
	wbits := math.Float64bits(g.totalW)
	h := atomic.LoadUint64(&g.fpHash)
	if h == 0 {
		h = g.sampledHash(n, arcs, wbits)
		atomic.StoreUint64(&g.fpHash, h)
	}
	return Fingerprint{N: n, Arcs: arcs, WBits: wbits, Hash: h}
}

// sampledHash computes the sampled CSR content hash. Never returns 0 (the
// memo's "not computed" sentinel).
func (g *Graph) sampledHash(n int, arcs int64, wbits uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	h = fpMix(h, uint64(n))
	h = fpMix(h, uint64(arcs))
	h = fpMix(h, wbits)
	if n > 0 {
		step := n/fpSamples + 1
		for i := 0; i < n; i += step {
			h = fpMix(h, uint64(g.offsets[i+1]))
		}
	}
	if arcs > 0 {
		step := arcs/fpSamples + 1
		for j := int64(0); j < arcs; j += step {
			h = fpMix(h, uint64(uint32(g.adj[j])))
			h = fpMix(h, math.Float64bits(g.weights[j]))
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

// StrongHash returns the exact full-content hash of g: every offset,
// neighbor id and weight bit is mixed in, so two graphs share a StrongHash
// iff their canonical CSR contents are identical (up to a 2^-64 chain
// collision — there is no sampling gap to exploit). It is the admission
// check for layers that persist results across time: a sampled-fingerprint
// match is only trusted once the strong hashes agree.
//
// The first call pays one serial O(n + arcs) scan; the value is memoized on
// the immutable Graph, so steady-state serving reads it with an atomic load
// and zero allocations. Concurrent first calls race benignly.
func (g *Graph) StrongHash() uint64 {
	if h := atomic.LoadUint64(&g.strongHash); h != 0 {
		return h
	}
	h := uint64(0x6a09e667f3bcc909)
	h = fpMix(h, uint64(g.N()))
	h = fpMix(h, uint64(len(g.adj)))
	h = fpMix(h, math.Float64bits(g.totalW))
	for _, o := range g.offsets {
		h = fpMix(h, uint64(o))
	}
	for _, v := range g.adj {
		h = fpMix(h, uint64(uint32(v)))
	}
	for _, w := range g.weights {
		h = fpMix(h, math.Float64bits(w))
	}
	if h == 0 {
		h = 1
	}
	atomic.StoreUint64(&g.strongHash, h)
	return h
}

// fpMix folds x into h with the splitmix64 finalizer — strong enough
// avalanche that sampled single-entry differences flip the hash.
func fpMix(h, x uint64) uint64 {
	h ^= x
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
