package graph

import "sync/atomic"

func atomicInc(cell *int64) { atomic.AddInt64(cell, 1) }

func atomicAdd(cell *int64, d int64) int64 { return atomic.AddInt64(cell, d) }
