package graph

// ConnectedComponents labels each vertex with a component id in [0, count)
// using an iterative BFS. Returns the label slice and the component count.
// Used by generators (to guarantee connectivity where the paper's inputs
// are connected) and by tests.
func ConnectedComponents(g *Graph) ([]int32, int) {
	n := g.N()
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	var queue []int32
	count := 0
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		label[s] = id
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			nbr, _ := g.Neighbors(int(u))
			for _, v := range nbr {
				if label[v] < 0 {
					label[v] = id
					queue = append(queue, v)
				}
			}
		}
	}
	return label, count
}

// LargestComponent returns the induced subgraph of g's largest connected
// component together with the mapping old-id → new-id (-1 for dropped
// vertices). If g is connected it returns g itself and an identity mapping.
func LargestComponent(g *Graph, p int) (*Graph, []int32) {
	label, count := ConnectedComponents(g)
	n := g.N()
	if count <= 1 {
		ident := make([]int32, n)
		for i := range ident {
			ident[i] = int32(i)
		}
		return g, ident
	}
	sizes := make([]int64, count)
	for _, l := range label {
		sizes[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	remap := make([]int32, n)
	next := int32(0)
	for i := 0; i < n; i++ {
		if label[i] == int32(best) {
			remap[i] = next
			next++
		} else {
			remap[i] = -1
		}
	}
	b := NewBuilder(int(next))
	for i := 0; i < n; i++ {
		if remap[i] < 0 {
			continue
		}
		nbr, wt := g.Neighbors(i)
		for t, j := range nbr {
			if int(j) >= i && remap[j] >= 0 {
				b.AddEdge(remap[i], remap[j], wt[t])
			}
		}
	}
	return b.Build(p), remap
}
