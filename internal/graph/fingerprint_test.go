package graph

import "testing"

func fpGraph(t *testing.T, n int, edges [][3]float64) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(int32(e[0]), int32(e[1]), e[2])
	}
	return b.Build(2)
}

// TestFingerprintEqualContent pins that fingerprints identify graphs by
// content, not pointer: the same edge list built twice (different worker
// counts, different insertion order) fingerprints identically.
func TestFingerprintEqualContent(t *testing.T) {
	edges := [][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 0, 1}, {3, 3, 4}, {2, 4, 0.5}}
	a := fpGraph(t, 6, edges)
	reversed := make([][3]float64, len(edges))
	for i, e := range edges {
		reversed[len(edges)-1-i] = [3]float64{e[1], e[0], e[2]}
	}
	b := fpGraph(t, 6, reversed)
	if a == b {
		t.Fatal("test needs two distinct Graph values")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equal-content graphs fingerprint differently:\n%+v\n%+v",
			a.Fingerprint(), b.Fingerprint())
	}
}

// TestFingerprintDistinguishes pins that every cheap component — vertex
// count, arc count, weights, and (for small graphs, which are fully
// sampled) adjacency content — separates graphs.
func TestFingerprintDistinguishes(t *testing.T) {
	base := fpGraph(t, 5, [][3]float64{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}})
	variants := map[string]*Graph{
		"extra vertex":     fpGraph(t, 6, [][3]float64{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}}),
		"extra edge":       fpGraph(t, 5, [][3]float64{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {0, 2, 1}}),
		"heavier edge":     fpGraph(t, 5, [][3]float64{{0, 1, 2}, {1, 2, 1}, {3, 4, 1}}),
		"rewired edge":     fpGraph(t, 5, [][3]float64{{0, 2, 1}, {1, 2, 1}, {3, 4, 1}}),
		"self-loop":        fpGraph(t, 5, [][3]float64{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {2, 2, 1}}),
		"weight shuffled":  fpGraph(t, 5, [][3]float64{{0, 1, 1}, {1, 2, 2}, {3, 4, 0.5}}),
		"isolated differs": fpGraph(t, 7, [][3]float64{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}}),
	}
	fp := base.Fingerprint()
	for name, g := range variants {
		if g.Fingerprint() == fp {
			t.Errorf("%s: fingerprint collides with base", name)
		}
	}
}

// TestFingerprintDeterministicAcrossBuilds pins that fingerprints of a
// larger graph (sampled hashing engaged) are stable across rebuilds with
// different worker counts.
func TestFingerprintDeterministicAcrossBuilds(t *testing.T) {
	const n = 500
	edges := make([]Edge, 0, 3*n)
	for i := 0; i < n; i++ {
		edges = append(edges,
			Edge{U: int32(i), V: int32((i + 1) % n), W: 1 + float64(i%7)},
			Edge{U: int32(i), V: int32((i * 13) % n), W: 0.5},
			Edge{U: int32(i), V: int32(i), W: 2})
	}
	var fps []Fingerprint
	for _, workers := range []int{1, 3, 8} {
		fps = append(fps, FromEdges(n, edges, workers).Fingerprint())
	}
	for _, fp := range fps[1:] {
		if fp != fps[0] {
			t.Fatalf("fingerprint varies with build worker count: %+v vs %+v", fp, fps[0])
		}
	}
}

// TestFingerprintZeroAllocs pins that fingerprinting is allocation-free —
// it sits on the batcher's per-request fast path.
func TestFingerprintZeroAllocs(t *testing.T) {
	g := fpGraph(t, 5, [][3]float64{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}})
	allocs := testing.AllocsPerRun(100, func() { _ = g.Fingerprint() })
	if allocs != 0 {
		t.Errorf("Fingerprint allocates %v times, want 0", allocs)
	}
}

// TestStrongHashEqualContent pins that the exact hash, like the sampled
// fingerprint, identifies graphs by canonical content regardless of build
// order or worker count.
func TestStrongHashEqualContent(t *testing.T) {
	edges := [][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 0, 1}, {3, 3, 4}, {2, 4, 0.5}}
	a := fpGraph(t, 6, edges)
	reversed := make([][3]float64, len(edges))
	for i, e := range edges {
		reversed[len(edges)-1-i] = [3]float64{e[1], e[0], e[2]}
	}
	b := fpGraph(t, 6, reversed)
	if a.StrongHash() != b.StrongHash() {
		t.Fatalf("equal-content graphs strong-hash differently: %x vs %x",
			a.StrongHash(), b.StrongHash())
	}
}

// TestStrongHashSeesUnsampledDifferences builds a graph pair large enough
// for sampled hashing and different only in arcs the sample stride skips:
// the sampled fingerprints collide BY CONSTRUCTION while the strong hashes
// must differ — the exact gap StrongHash exists to close.
func TestStrongHashSeesUnsampledDifferences(t *testing.T) {
	a, b := CollidingRingPair(100)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("construction broken: sampled fingerprints differ\n%+v\n%+v",
			a.Fingerprint(), b.Fingerprint())
	}
	if a.StrongHash() == b.StrongHash() {
		t.Fatal("strong hashes collide on graphs with different content")
	}
}

// TestStrongHashZeroAllocsWarm pins the memoization: after the first call,
// StrongHash is a single atomic load.
func TestStrongHashZeroAllocsWarm(t *testing.T) {
	g := fpGraph(t, 5, [][3]float64{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}})
	g.StrongHash()
	allocs := testing.AllocsPerRun(100, func() { _ = g.StrongHash() })
	if allocs != 0 {
		t.Errorf("warm StrongHash allocates %v times, want 0", allocs)
	}
}

// TestRecycledGraphDropsMemoizedHashes pins the finish() reset: a Graph
// header recycled via FromCSRInto for different content must not serve the
// previous content's memoized identity.
func TestRecycledGraphDropsMemoizedHashes(t *testing.T) {
	g1 := fpGraph(t, 3, [][3]float64{{0, 1, 1}, {1, 2, 1}})
	fp1, sh1 := g1.Fingerprint(), g1.StrongHash()

	// Rebuild a different graph into the same header.
	g2 := fpGraph(t, 3, [][3]float64{{0, 1, 2}, {1, 2, 1}})
	off := append([]int64(nil), g2.ArcOffsets()...)
	adj := make([]int32, 0, g2.ArcCount())
	wts := make([]float64, 0, g2.ArcCount())
	for i := 0; i < g2.N(); i++ {
		nbr, w := g2.Neighbors(i)
		adj = append(adj, nbr...)
		wts = append(wts, w...)
	}
	recycled, err := FromCSRInto(g1, off, adj, wts, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if recycled.Fingerprint() == fp1 {
		t.Error("recycled graph served the previous graph's sampled fingerprint")
	}
	if recycled.StrongHash() == sh1 {
		t.Error("recycled graph served the previous graph's strong hash")
	}
	if recycled.Fingerprint() != g2.Fingerprint() || recycled.StrongHash() != g2.StrongHash() {
		t.Error("recycled graph's identity does not match its content")
	}
}
