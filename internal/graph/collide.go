package graph

// CollidingRingPair builds two n-vertex ring graphs (n >= 10, even) whose
// sampled Fingerprints are identical while their contents differ — the
// adversarial input for the strong-hash admission tests. Both are the cycle
// C_n with unit weights except two marked edges; the pair swaps the marked
// weights. The marked edges are chosen so all four of their arc positions
// fall off the fpSamples stride: in the canonical CSR of a ring, row i
// starts at offset 2i, so edge {a, a+1} with even a occupies positions
// 2a+1 (odd) and 2a+2 ≡ 2 (mod 4) — and for n in [65·2, 128·2) arcs the
// sample stride is exactly 4. Vertex/arc counts, offsets and the (exactly
// representable) total weight are untouched by the swap, so every sampled
// component agrees. TestStrongHashSeesUnsampledDifferences asserts the
// collision rather than assuming it, guarding this stride arithmetic
// against fpSamples changes.
func CollidingRingPair(n int) (*Graph, *Graph) {
	if n < 10 || n%2 != 0 || n <= fpSamples || 2*n >= 4*fpSamples {
		panic("graph: CollidingRingPair needs an even n in (fpSamples, 2*fpSamples)")
	}
	build := func(w23, w67 float64) *Graph {
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			w := 1.0
			switch i {
			case 2:
				w = w23
			case 6:
				w = w67
			}
			b.AddEdge(int32(i), int32((i+1)%n), w)
		}
		return b.Build(1)
	}
	return build(2, 3), build(3, 2)
}
