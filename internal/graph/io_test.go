package graph

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestReadEdgeListCommentsAndWeights(t *testing.T) {
	in := `# comment
% another comment

0 1
1 2 2.5
`
	g, err := ReadEdgeList(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.EdgeCount() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.EdgeCount())
	}
	if w, _ := g.EdgeWeight(1, 2); w != 2.5 {
		t.Fatalf("weight=%v", w)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("default weight=%v", w)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",        // too few fields
		"a b\n",      // bad vertex
		"0 x\n",      // bad vertex
		"0 1 zero\n", // bad weight
		"0 1 -2\n",   // non-positive weight
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 1); err == nil {
			t.Fatalf("input %q: want error", in)
		}
	}
}

func TestReadMETISBasic(t *testing.T) {
	// 3-vertex path 1-2-3 (1-based METIS), unweighted.
	in := `% comment
3 2
2
1 3
2
`
	g, err := ReadMETIS(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.EdgeCount() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.EdgeCount())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatal("wrong structure")
	}
}

func TestReadMETISEdgeWeights(t *testing.T) {
	in := `2 1 1
2 7
1 7
`
	g, err := ReadMETIS(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 7 {
		t.Fatalf("weight=%v want 7", w)
	}
}

func TestReadMETISVertexAndEdgeWeights(t *testing.T) {
	in := `2 1 11
5 2 7
9 1 7
`
	g, err := ReadMETIS(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 7 {
		t.Fatalf("weight=%v want 7 (vertex weights must be skipped)", w)
	}
}

func TestReadMETISErrors(t *testing.T) {
	cases := []string{
		"",            // empty
		"3\n",         // short header
		"1 0\n2\n",    // neighbor out of range
		"1 0\nx\n",    // bad neighbor
		"1 0\n1\n1\n", // more adjacency lines than n
	}
	for _, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in), 1); err == nil {
			t.Fatalf("input %q: want error", in)
		}
	}
}

func TestMETISRoundTrip(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMETIS(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestMETISRoundTripWeighted(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 2.5)
	b.AddEdge(1, 2, 0.125)
	b.AddEdge(2, 3, 7)
	g := b.Build(1)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMETIS(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryRoundTrip(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 24)), 1); err == nil {
		t.Fatal("want error for bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(nil), 1); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestLoadFileDispatch(t *testing.T) {
	dir := t.TempDir()
	g := triangle(t)

	elPath := filepath.Join(dir, "g.txt")
	var el bytes.Buffer
	if err := WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(elPath, el.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "g.bin")
	var bb bytes.Buffer
	if err := WriteBinary(&bb, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	metisPath := filepath.Join(dir, "g.graph")
	if err := os.WriteFile(metisPath, []byte("3 2\n2\n1 3\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{elPath, binPath} {
		got, err := LoadFile(path, 2)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		assertSameGraph(t, g, got)
	}
	gm, err := LoadFile(metisPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gm.N() != 3 || gm.EdgeCount() != 2 {
		t.Fatal("metis load wrong")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.txt"), 1); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	// 5 isolated
	g := b.Build(2)
	label, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count=%d want 3", count)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatal("component 0 mislabeled")
	}
	if label[3] != label[4] || label[3] == label[0] {
		t.Fatal("component 1 mislabeled")
	}
	if label[5] == label[0] || label[5] == label[3] {
		t.Fatal("isolated vertex mislabeled")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(7)
	// component A: 0-1-2-3 (4 vertices), component B: 4-5 , isolated 6.
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(4, 5, 1)
	g := b.Build(2)
	sub, remap := LargestComponent(g, 2)
	if sub.N() != 4 {
		t.Fatalf("largest component n=%d want 4", sub.N())
	}
	if remap[4] != -1 || remap[6] != -1 {
		t.Fatal("dropped vertices must map to -1")
	}
	if w, ok := sub.EdgeWeight(int(remap[0]), int(remap[1])); !ok || w != 2 {
		t.Fatal("edge weight lost in extraction")
	}
	// Connected graph returns the same object.
	b2 := NewBuilder(2)
	b2.AddEdge(0, 1, 1)
	g2 := b2.Build(1)
	same, remap2 := LargestComponent(g2, 1)
	if same != g2 || remap2[1] != 1 {
		t.Fatal("connected graph should be returned unchanged")
	}
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.ArcCount() != b.ArcCount() {
		t.Fatalf("shape differs: n %d/%d arcs %d/%d", a.N(), b.N(), a.ArcCount(), b.ArcCount())
	}
	if math.Abs(a.TotalWeight()-b.TotalWeight()) > 1e-9 {
		t.Fatalf("total weight differs: %v vs %v", a.TotalWeight(), b.TotalWeight())
	}
	for i := 0; i < a.N(); i++ {
		na, wa := a.Neighbors(i)
		nb, wb := b.Neighbors(i)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d row length differs", i)
		}
		for k := range na {
			if na[k] != nb[k] || math.Abs(wa[k]-wb[k]) > 1e-9 {
				t.Fatalf("vertex %d entry %d differs: (%d,%v) vs (%d,%v)", i, k, na[k], wa[k], nb[k], wb[k])
			}
		}
	}
}
