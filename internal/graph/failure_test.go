package graph

import (
	"bytes"
	"testing"
)

// Failure-injection tests: corrupt serialized graphs must fail loudly, not
// produce silently wrong structures.

func TestBinaryTruncatedAtEveryBoundary(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncate at a spread of offsets including each header/array boundary.
	cuts := []int{0, 7, 8, 16, 23, 24, 40, len(full) / 2, len(full) - 1}
	for _, cut := range cuts {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(full[:cut]), 1); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
	// The intact stream still loads.
	if _, err := ReadBinary(bytes.NewReader(full), 1); err != nil {
		t.Fatalf("intact stream rejected: %v", err)
	}
}

func TestBinaryCorruptedCountsRejected(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// Inflate the arc count field (bytes 16..24) so array reads overrun.
	data[16] = 0xff
	if _, err := ReadBinary(bytes.NewReader(data), 1); err == nil {
		t.Fatal("corrupted arc count accepted")
	}
}

func TestBinaryCorruptedAdjacencyCaughtByValidate(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// Flip a byte inside the adjacency region: offsets are
	// 24 (header) + 8*(n+1) = 24+32 = 56; adjacency starts at 56.
	data[56] ^= 0x7f
	if _, err := ReadBinary(bytes.NewReader(data), 1); err == nil {
		t.Fatal("corrupted adjacency accepted (Validate should reject)")
	}
}
