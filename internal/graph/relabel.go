package graph

import (
	"fmt"

	"grappolo/internal/par"
)

// Relabel returns a new graph with vertex i renamed perm[i]. perm must be a
// permutation of [0, n). Edge weights are preserved. Relabeling changes
// nothing for the algorithms' correctness but shifts everything that
// depends on vertex order: serial scan order, minimum-label tie-breaks,
// block partitions (the distributed baseline's weak spot), and coloring
// orders — making it the tool for ordering-sensitivity experiments.
func Relabel(g *Graph, perm []int32) (*Graph, error) {
	n := g.N()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != n %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: not a permutation (value %d)", p)
		}
		seen[p] = true
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		nbr, wts := g.Neighbors(u)
		for t, v := range nbr {
			if int(v) >= u {
				b.AddEdge(perm[u], perm[v], wts[t])
			}
		}
	}
	return b.Build(0), nil
}

// RandomPermutation returns a deterministic pseudo-random permutation of
// [0, n) for the given seed.
func RandomPermutation(n int, seed uint64) []int32 {
	rng := par.NewRNG(seed)
	p := rng.Perm(n)
	out := make([]int32, n)
	for i, v := range p {
		out[i] = int32(v)
	}
	return out
}

// BFSOrder returns a permutation that relabels vertices in breadth-first
// order from vertex 0 (unreached vertices appended in id order) — the
// standard locality-restoring ordering: after Relabel with this
// permutation, neighbors tend to have nearby ids, which benefits block
// partitioning and cache behaviour.
func BFSOrder(g *Graph) []int32 {
	n := g.N()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = -1
	}
	next := int32(0)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if perm[s] >= 0 {
			continue
		}
		perm[s] = next
		next++
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			nbr, _ := g.Neighbors(int(u))
			for _, v := range nbr {
				if perm[v] < 0 {
					perm[v] = next
					next++
					queue = append(queue, v)
				}
			}
		}
	}
	return perm
}
