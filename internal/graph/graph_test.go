package graph

import (
	"math"
	"testing"
	"testing/quick"

	"grappolo/internal/par"
)

// triangle returns the weighted triangle 0-1-2 plus a self-loop at 2.
func triangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(0, 2, 3)
	b.AddEdge(2, 2, 5)
	g := b.Build(2)
	if err := g.Validate(); err != nil {
		t.Fatalf("triangle invalid: %v", err)
	}
	return g
}

func TestBuildTriangleBasics(t *testing.T) {
	g := triangle(t)
	if g.N() != 3 {
		t.Fatalf("N=%d", g.N())
	}
	if g.EdgeCount() != 4 {
		t.Fatalf("EdgeCount=%d, want 4", g.EdgeCount())
	}
	if g.ArcCount() != 7 { // 3 non-loop edges ×2 + 1 loop
		t.Fatalf("ArcCount=%d, want 7", g.ArcCount())
	}
	wantDeg := []float64{4, 3, 10}
	for i, want := range wantDeg {
		if got := g.Degree(i); got != want {
			t.Fatalf("Degree(%d)=%v want %v", i, got, want)
		}
	}
	if got, want := g.TotalWeight(), 17.0; got != want {
		t.Fatalf("TotalWeight=%v want %v", got, want)
	}
	if got, want := g.M(), 8.5; got != want {
		t.Fatalf("M=%v want %v", got, want)
	}
	if g.SelfLoopWeight(2) != 5 || g.SelfLoopWeight(0) != 0 {
		t.Fatal("SelfLoopWeight wrong")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 1) {
		t.Fatal("HasEdge wrong")
	}
	if w, ok := g.EdgeWeight(1, 2); !ok || w != 2 {
		t.Fatalf("EdgeWeight(1,2)=%v,%v", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 0); ok {
		t.Fatal("EdgeWeight(0,0) should not exist")
	}
}

func TestBuilderMergesDuplicatesBothOrientations(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 2.5)
	b.AddEdge(0, 1, 0) // weight <= 0 → 1
	g := b.Build(3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount=%d want 1", g.EdgeCount())
	}
	w, ok := g.EdgeWeight(0, 1)
	if !ok || w != 4.5 {
		t.Fatalf("merged weight=%v want 4.5", w)
	}
}

func TestBuilderImplicitGrow(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9, 1)
	g := b.Build(1)
	if g.N() != 10 {
		t.Fatalf("N=%d want 10", g.N())
	}
	if g.OutDegree(0) != 0 || g.OutDegree(5) != 1 {
		t.Fatal("isolated / connected degrees wrong")
	}
}

func TestBuilderDuplicateSelfLoops(t *testing.T) {
	b := NewBuilder(1)
	b.AddEdge(0, 0, 2)
	b.AddEdge(0, 0, 3)
	g := b.Build(2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.SelfLoopWeight(0) != 5 {
		t.Fatalf("loop weight %v want 5", g.SelfLoopWeight(0))
	}
	if g.Degree(0) != 5 || g.M() != 2.5 {
		t.Fatalf("degree=%v m=%v", g.Degree(0), g.M())
	}
}

func TestNeighborsSortedAfterBuild(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(4, 0, 1)
	b.AddEdge(4, 2, 1)
	b.AddEdge(4, 1, 1)
	b.AddEdge(4, 3, 1)
	g := b.Build(4)
	nbr, _ := g.Neighbors(4)
	for i := 1; i < len(nbr); i++ {
		if nbr[i-1] >= nbr[i] {
			t.Fatalf("row not sorted: %v", nbr)
		}
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	rng := par.NewRNG(11)
	var edges []Edge
	const n = 500
	for i := 0; i < 3000; i++ {
		edges = append(edges, Edge{
			U: int32(rng.Intn(n)), V: int32(rng.Intn(n)),
			W: 1 + rng.Float64(),
		})
	}
	g1 := FromEdges(n, edges, 1)
	g8 := FromEdges(n, edges, 8)
	if err := g8.Validate(); err != nil {
		t.Fatal(err)
	}
	if g1.N() != g8.N() || g1.ArcCount() != g8.ArcCount() {
		t.Fatalf("size mismatch: %d/%d arcs %d/%d", g1.N(), g8.N(), g1.ArcCount(), g8.ArcCount())
	}
	for i := 0; i < n; i++ {
		n1, w1 := g1.Neighbors(i)
		n8, w8 := g8.Neighbors(i)
		if len(n1) != len(n8) {
			t.Fatalf("vertex %d row length differs", i)
		}
		for t2 := range n1 {
			if n1[t2] != n8[t2] || math.Abs(w1[t2]-w8[t2]) > 1e-12 {
				t.Fatalf("vertex %d entry %d differs", i, t2)
			}
		}
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := &Graph{
		offsets: []int64{0, 1, 1},
		adj:     []int32{1},
		weights: []float64{1},
		degree:  []float64{1, 0},
		totalW:  1,
	}
	if err := g.Validate(); err == nil {
		t.Fatal("want error for missing reverse arc")
	}
}

func TestValidateCatchesBadWeight(t *testing.T) {
	g := &Graph{
		offsets: []int64{0, 1, 2},
		adj:     []int32{1, 0},
		weights: []float64{-1, -1},
		degree:  []float64{-1, -1},
		totalW:  -2,
	}
	if err := g.Validate(); err == nil {
		t.Fatal("want error for non-positive weight")
	}
}

func TestFromCSRChecked(t *testing.T) {
	// 0 -- 1 with weight 2, valid CSR.
	g, err := FromCSR([]int64{0, 1, 2}, []int32{1, 0}, []float64{2, 2}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%v", g.M())
	}
	// Broken symmetry must fail when checked.
	if _, err := FromCSR([]int64{0, 1, 1}, []int32{1}, []float64{1}, 2, true); err == nil {
		t.Fatal("want validation error")
	}
}

func TestComputeStatsTriangle(t *testing.T) {
	g := triangle(t)
	st := ComputeStats(g)
	if st.N != 3 || st.M != 4 {
		t.Fatalf("stats %+v", st)
	}
	if st.MaxDeg != 3 {
		t.Fatalf("MaxDeg=%d want 3", st.MaxDeg)
	}
	// degrees: 2, 2, 3 → mean 7/3
	if math.Abs(st.AvgDeg-7.0/3.0) > 1e-12 {
		t.Fatalf("AvgDeg=%v", st.AvgDeg)
	}
	if st.RSD <= 0 {
		t.Fatalf("RSD=%v want > 0", st.RSD)
	}
}

func TestComputeStatsRegularHasZeroRSD(t *testing.T) {
	// 4-cycle: all degrees 2.
	b := NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.AddEdge(int32(i), int32((i+1)%4), 1)
	}
	st := ComputeStats(b.Build(2))
	if st.RSD != 0 {
		t.Fatalf("RSD=%v want 0", st.RSD)
	}
	if st.AvgDeg != 2 {
		t.Fatalf("AvgDeg=%v want 2", st.AvgDeg)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(NewBuilder(0).Build(1))
	if st.N != 0 || st.M != 0 || st.MaxDeg != 0 {
		t.Fatalf("stats of empty graph: %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{N: 1, M: 2, MaxDeg: 3, AvgDeg: 4, RSD: 5}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

// Property: for arbitrary edge lists, the built graph is valid and total
// weight equals the sum of input weights (counting duplicates merged).
func TestBuildPropertyValid(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		rng := par.NewRNG(seed)
		n := int(raw[0]%200) + 1
		var edges []Edge
		var wantTotal float64
		for _, x := range raw {
			u, v := int32(int(x)%n), int32(rng.Intn(n))
			w := 1 + rng.Float64()
			edges = append(edges, Edge{U: u, V: v, W: w})
			if u == v {
				wantTotal += w
			} else {
				wantTotal += 2 * w
			}
		}
		g := FromEdges(n, edges, 4)
		if err := g.Validate(); err != nil {
			t.Logf("invalid: %v", err)
			return false
		}
		return math.Abs(g.TotalWeight()-wantTotal) < 1e-6*(1+wantTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
