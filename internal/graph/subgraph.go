package graph

import (
	"fmt"
	"sort"
)

// InducedSubgraph extracts the subgraph induced by the given vertex set and
// returns it with the old→new id mapping (-1 for excluded vertices).
// Duplicate ids in vertices are rejected. Edge weights, including
// self-loops, carry over. Typical use: pull one detected community out for
// closer inspection or recursive clustering.
func InducedSubgraph(g *Graph, vertices []int32, p int) (*Graph, []int32, error) {
	n := g.N()
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	for t, v := range vertices {
		if v < 0 || int(v) >= n {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range [0,%d)", v, n)
		}
		if remap[v] != -1 {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in selection", v)
		}
		remap[v] = int32(t)
	}
	b := NewBuilder(len(vertices))
	b.SetLayout(g.Layout()) // extracted subgraphs inherit the parent's layout
	for _, v := range vertices {
		nbr, wts := g.Neighbors(int(v))
		for t, j := range nbr {
			if remap[j] >= 0 && (int(j) > int(v) || int(j) == int(v)) {
				b.AddEdge(remap[v], remap[j], wts[t])
			}
		}
	}
	return b.Build(p), remap, nil
}

// CommunitySubgraph extracts the subgraph induced by community c of the
// membership, returning the subgraph and the original ids of its vertices
// in ascending order.
func CommunitySubgraph(g *Graph, membership []int32, c int32, p int) (*Graph, []int32, error) {
	if len(membership) != g.N() {
		return nil, nil, fmt.Errorf("graph: membership length %d != n %d", len(membership), g.N())
	}
	var vertices []int32
	for v, cv := range membership {
		if cv == c {
			vertices = append(vertices, int32(v))
		}
	}
	if len(vertices) == 0 {
		return nil, nil, fmt.Errorf("graph: community %d is empty", c)
	}
	sub, _, err := InducedSubgraph(g, vertices, p)
	return sub, vertices, err
}

// DegreeHistogram returns the unweighted degree distribution as sorted
// (degree, count) pairs — the data behind degree-distribution plots.
type DegreeBucket struct {
	Degree int
	Count  int
}

// DegreeHistogram computes the degree histogram of g.
func DegreeHistogram(g *Graph) []DegreeBucket {
	counts := make(map[int]int)
	for i := 0; i < g.N(); i++ {
		counts[g.OutDegree(i)]++
	}
	out := make([]DegreeBucket, 0, len(counts))
	for d, c := range counts {
		out = append(out, DegreeBucket{Degree: d, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}
