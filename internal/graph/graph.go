// Package graph provides the weighted undirected graph substrate used by the
// community-detection algorithms: a compressed sparse row (CSR)
// representation, a deduplicating builder, file I/O, and the degree
// statistics the paper reports in Table 1.
//
// Conventions (paper §2): the graph G(V, E, ω) is undirected with positive
// edge weights; self-loops (i, i) are allowed, multi-edges are not (the
// builder merges them by summing weights). Each undirected edge {i, j},
// i ≠ j, is stored in both adjacency rows; a self-loop is stored once, in
// its owner's row. The weighted degree k_i sums the row of i (a self-loop
// therefore counts once in k_i, matching the paper's k_i = Σ_{j∈Γ(i)} ω(i,j)),
// and m = ½ Σ_i k_i.
package graph

import (
	"fmt"
	"math"
)

// Graph is an immutable weighted undirected graph in CSR form.
// Vertex ids are dense in [0, N()).
type Graph struct {
	offsets []int64   // len n+1; row i is adj[offsets[i]:offsets[i+1]]
	adj     []int32   // neighbor ids
	weights []float64 // parallel to adj
	arcs    []Arc     // interleaved (id, weight) stream; nil under LayoutSplit
	layout  Layout    // arc storage layout (see SetLayout)
	degree  []float64 // weighted degree k_i (row sums, self-loop once)
	totalW  float64   // 2m' = Σ k_i; m = totalW / 2
	loops   int64     // number of self-loop arcs, cached at build time
	maxOut  int       // max unweighted out-degree, cached at build time

	// Memoized content hashes, accessed atomically (plain words, not
	// atomic.Uint64, so a Graph header stays freely copyable). 0 means "not
	// computed yet" — both hash functions normalize a computed 0 to 1 — and
	// finish() resets both, which is what keeps a FromCSRInto-recycled
	// header from serving the previous graph's identity.
	fpHash     uint64 // sampled Fingerprint.Hash
	strongHash uint64 // full-content hash (StrongHash)
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// ArcCount returns the number of stored directed arcs (each undirected
// non-loop edge contributes two, each self-loop one).
func (g *Graph) ArcCount() int64 { return int64(len(g.adj)) }

// EdgeCount returns the number of undirected edges M (self-loops count as
// one edge each). The self-loop count is cached at build time, so this is
// O(1) rather than a scan over all arcs.
func (g *Graph) EdgeCount() int64 {
	return (int64(len(g.adj))-g.loops)/2 + g.loops
}

// SelfLoopCount returns the number of self-loop arcs, cached at build time.
func (g *Graph) SelfLoopCount() int64 { return g.loops }

// MaxOutDegree returns the maximum unweighted out-degree over all vertices
// (0 for an empty graph), cached at build time. Hot-path callers size their
// per-worker neighbor-community accumulators with it.
func (g *Graph) MaxOutDegree() int { return g.maxOut }

// ArcOffsets returns the CSR offset array (length N()+1): an exclusive
// prefix sum of per-vertex arc counts, directly usable as the weight prefix
// of par.ForChunkPrefix for arc-balanced vertex chunking. Callers must not
// modify it.
func (g *Graph) ArcOffsets() []int64 { return g.offsets }

// TotalWeight returns Σ_i k_i = 2m.
func (g *Graph) TotalWeight() float64 { return g.totalW }

// M returns m, the sum of all edge weights as defined in the paper
// (m = ½ Σ_i k_i).
func (g *Graph) M() float64 { return g.totalW / 2 }

// Degree returns the weighted degree k_i.
func (g *Graph) Degree(i int) float64 { return g.degree[i] }

// Degrees returns the full weighted-degree slice. Callers must not modify it.
func (g *Graph) Degrees() []float64 { return g.degree }

// OutDegree returns the unweighted number of stored neighbors of i
// (self-loop counts once).
func (g *Graph) OutDegree(i int) int { return int(g.offsets[i+1] - g.offsets[i]) }

// Neighbors returns the neighbor ids and weights of vertex i as shared
// sub-slices of the CSR arrays. Callers must not modify them.
func (g *Graph) Neighbors(i int) ([]int32, []float64) {
	lo, hi := g.offsets[i], g.offsets[i+1]
	return g.adj[lo:hi], g.weights[lo:hi]
}

// SelfLoopWeight returns the weight of the self-loop at i, or 0.
func (g *Graph) SelfLoopWeight(i int) float64 {
	nbr, w := g.Neighbors(i)
	for t, j := range nbr {
		if j == int32(i) {
			return w[t]
		}
	}
	return 0
}

// HasEdge reports whether the undirected edge {i, j} exists.
func (g *Graph) HasEdge(i, j int) bool {
	nbr, _ := g.Neighbors(i)
	for _, v := range nbr {
		if v == int32(j) {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of edge {i, j} and whether it exists.
func (g *Graph) EdgeWeight(i, j int) (float64, bool) {
	nbr, w := g.Neighbors(i)
	for t, v := range nbr {
		if v == int32(j) {
			return w[t], true
		}
	}
	return 0, false
}

// Validate checks structural invariants: offsets monotone, neighbor ids in
// range, positive weights, and symmetry (every arc i→j with i≠j has a
// matching j→i arc of equal weight). It is used by tests and after file
// loads; algorithms assume a valid graph.
func (g *Graph) Validate() error {
	n := g.N()
	if len(g.offsets) != n+1 || g.offsets[0] != 0 {
		return fmt.Errorf("graph: bad offsets header")
	}
	for i := 0; i < n; i++ {
		if g.offsets[i] > g.offsets[i+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	if g.offsets[n] != int64(len(g.adj)) || len(g.adj) != len(g.weights) {
		return fmt.Errorf("graph: adjacency length mismatch")
	}
	var sum float64
	for i := 0; i < n; i++ {
		nbr, w := g.Neighbors(i)
		seen := make(map[int32]struct{}, len(nbr))
		for t, j := range nbr {
			if j < 0 || int(j) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", i, j)
			}
			if w[t] <= 0 || math.IsNaN(w[t]) || math.IsInf(w[t], 0) {
				return fmt.Errorf("graph: edge (%d,%d) has non-positive weight %v", i, j, w[t])
			}
			if _, dup := seen[j]; dup {
				return fmt.Errorf("graph: duplicate arc %d->%d", i, j)
			}
			seen[j] = struct{}{}
			if int(j) != i {
				wj, ok := (&reverseProbe{g}).weight(int(j), i)
				if !ok {
					return fmt.Errorf("graph: missing reverse arc %d->%d", j, i)
				}
				if wj != w[t] {
					return fmt.Errorf("graph: asymmetric weight on edge {%d,%d}: %v vs %v", i, j, w[t], wj)
				}
			}
			sum += w[t]
		}
	}
	if math.Abs(sum-g.totalW) > 1e-6*(1+math.Abs(g.totalW)) {
		return fmt.Errorf("graph: cached total weight %v != recomputed %v", g.totalW, sum)
	}
	switch g.layout {
	case LayoutSplit:
		if g.arcs != nil {
			return fmt.Errorf("graph: split layout carries an interleaved arc array")
		}
	case LayoutInterleaved:
		if len(g.arcs) != len(g.adj) {
			return fmt.Errorf("graph: interleaved arc array length %d != adjacency length %d", len(g.arcs), len(g.adj))
		}
		for t := range g.arcs {
			if g.arcs[t].Nbr != g.adj[t] || g.arcs[t].W != g.weights[t] {
				return fmt.Errorf("graph: interleaved arc %d (%d, %v) diverges from split CSR (%d, %v)",
					t, g.arcs[t].Nbr, g.arcs[t].W, g.adj[t], g.weights[t])
			}
		}
	default:
		return fmt.Errorf("graph: unknown layout %d", g.layout)
	}
	return nil
}

type reverseProbe struct{ g *Graph }

func (r *reverseProbe) weight(i, j int) (float64, bool) { return r.g.EdgeWeight(i, j) }

// Stats summarizes the unweighted degree distribution of a graph exactly as
// Table 1 of the paper reports it: vertex count, edge count, and the
// maximum, average, and relative standard deviation (RSD = stddev/mean) of
// vertex degrees.
type Stats struct {
	N      int
	M      int64
	MaxDeg int
	AvgDeg float64
	RSD    float64
}

// ComputeStats computes Table 1-style statistics. Degrees are unweighted
// neighbor counts (self-loop counts once), matching the paper's table.
func ComputeStats(g *Graph) Stats {
	n := g.N()
	st := Stats{N: n, M: g.EdgeCount()}
	if n == 0 {
		return st
	}
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		d := float64(g.OutDegree(i))
		if g.OutDegree(i) > st.MaxDeg {
			st.MaxDeg = g.OutDegree(i)
		}
		sum += d
		sumSq += d * d
	}
	mean := sum / float64(n)
	st.AvgDeg = mean
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	if mean > 0 {
		st.RSD = math.Sqrt(variance) / mean
	}
	return st
}

// String renders the stats as a Table 1 row.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d M=%d max=%d avg=%.3f rsd=%.3f", s.N, s.M, s.MaxDeg, s.AvgDeg, s.RSD)
}
