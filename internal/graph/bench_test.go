package graph

import (
	"testing"

	"grappolo/internal/par"
)

func benchEdges(n, m int, seed uint64) []Edge {
	rng := par.NewRNG(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			U: int32(rng.Intn(n)), V: int32(rng.Intn(n)), W: 1,
		}
	}
	return edges
}

func BenchmarkFromEdgesSerial(b *testing.B) {
	const n, m = 50000, 400000
	edges := benchEdges(n, m, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := FromEdges(n, edges, 1)
		if g.N() != n {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkFromEdgesParallel(b *testing.B) {
	const n, m = 50000, 400000
	edges := benchEdges(n, m, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := FromEdges(n, edges, 0)
		if g.N() != n {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkNeighborScan(b *testing.B) {
	g := FromEdges(20000, benchEdges(20000, 200000, 2), 0)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.N(); v++ {
			_, wts := g.Neighbors(v)
			for _, w := range wts {
				sink += w
			}
		}
	}
	_ = sink
}

func BenchmarkComputeStats(b *testing.B) {
	g := FromEdges(50000, benchEdges(50000, 400000, 3), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeStats(g)
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := FromEdges(50000, benchEdges(50000, 200000, 4), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ConnectedComponents(g)
	}
}
