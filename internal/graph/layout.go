package graph

import "grappolo/internal/par"

// Layout selects how a Graph stores its adjacency arcs.
//
// LayoutSplit is the classic two-array CSR: neighbor ids in one []int32
// stream, weights in a parallel []float64 stream. LayoutInterleaved
// additionally packs every arc into one []Arc stream, so a neighbor visit —
// the unit of work of the decide hot loop — touches ONE sequential cache
// stream instead of two. The split arrays are always present (every
// non-hot-path consumer keeps reading them); the interleaved array is a pure
// rearrangement of the same arcs in the same order, so algorithm results are
// bit-identical under either layout, at the cost of one extra 16-byte-per-arc
// array held by interleaved graphs.
type Layout int

const (
	// LayoutSplit stores adjacency as separate id and weight arrays (the
	// default; lowest memory).
	LayoutSplit Layout = iota
	// LayoutInterleaved additionally materializes the packed []Arc stream
	// consumed by the monomorphic sweep kernels (fastest sweeps; +16 B/arc).
	LayoutInterleaved
)

// String names the layout for flags and study tables.
func (l Layout) String() string {
	switch l {
	case LayoutSplit:
		return "split"
	case LayoutInterleaved:
		return "interleaved"
	default:
		return "unknown"
	}
}

// Arc is one stored directed arc of the interleaved layout: the neighbor id
// and the edge weight packed into a single 16-byte element (4 bytes padding),
// so the sweep kernels stream one array instead of gathering from two.
type Arc struct {
	Nbr int32
	W   float64
}

// Layout returns the graph's arc layout.
func (g *Graph) Layout() Layout { return g.layout }

// Arcs returns the packed interleaved arc array (parallel to the split
// adjacency, row i is Arcs()[offsets[i]:offsets[i+1]]), or nil under
// LayoutSplit. Callers must not modify it.
func (g *Graph) Arcs() []Arc { return g.arcs }

// ArcRow returns vertex i's packed arc row, or nil under LayoutSplit.
// Callers must not modify it.
func (g *Graph) ArcRow(i int) []Arc {
	if g.arcs == nil {
		return nil
	}
	return g.arcs[g.offsets[i]:g.offsets[i+1]]
}

// SetLayout converts g to the given layout in place: LayoutInterleaved
// materializes the packed arc array from the split CSR (recycling any
// previous capacity, so a pooled graph rebuilt at the same shape allocates
// nothing), LayoutSplit drops it. The split arrays are untouched either way —
// the conversion is pure rearrangement and never changes results. SetLayout
// is NOT safe to call concurrently with readers of g; convert at build time
// or between runs.
func (g *Graph) SetLayout(l Layout, p int) {
	if l == g.layout {
		// Every mutation of the split CSR goes through finish, which re-packs
		// an interleaved graph's arc stream; a same-layout conversion is
		// therefore always a no-op, which keeps the engine's
		// "ensure this layout" calls free on warm runs.
		return
	}
	g.layout = l
	if l != LayoutInterleaved {
		g.arcs = nil
		return
	}
	g.buildArcs(p)
}

// buildArcs (re)fills the packed arc array from the split CSR.
func (g *Graph) buildArcs(p int) {
	g.arcs = par.Resize(g.arcs, len(g.adj))
	par.ForChunkCtx(g, len(g.adj), p, 0, func(g *Graph, lo, hi int) {
		for t := lo; t < hi; t++ {
			g.arcs[t] = Arc{Nbr: g.adj[t], W: g.weights[t]}
		}
	})
}
