package graph

import (
	"testing"
)

func TestInducedSubgraphTriangle(t *testing.T) {
	// 4-vertex graph: triangle 0-1-2 plus pendant 3, extract the triangle.
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(0, 2, 3)
	b.AddEdge(2, 3, 4)
	b.AddEdge(1, 1, 5)
	g := b.Build(2)
	sub, remap, err := InducedSubgraph(g, []int32{0, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.EdgeCount() != 4 { // 3 triangle edges + self-loop
		t.Fatalf("n=%d m=%d", sub.N(), sub.EdgeCount())
	}
	if w, ok := sub.EdgeWeight(int(remap[1]), int(remap[2])); !ok || w != 2 {
		t.Fatalf("edge 1-2 weight %v", w)
	}
	if sub.SelfLoopWeight(int(remap[1])) != 5 {
		t.Fatal("self-loop lost")
	}
	if remap[3] != -1 {
		t.Fatal("excluded vertex must map to -1")
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := triangle(t)
	if _, _, err := InducedSubgraph(g, []int32{0, 7}, 1); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, _, err := InducedSubgraph(g, []int32{0, 0}, 1); err == nil {
		t.Fatal("want duplicate error")
	}
	sub, _, err := InducedSubgraph(g, nil, 1)
	if err != nil || sub.N() != 0 {
		t.Fatalf("empty selection: %v", err)
	}
}

func TestCommunitySubgraph(t *testing.T) {
	// Two triangles joined by one edge; membership by triangle.
	b := NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(3, 5, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build(2)
	membership := []int32{0, 0, 0, 1, 1, 1}
	sub, ids, err := CommunitySubgraph(g, membership, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.EdgeCount() != 3 {
		t.Fatalf("n=%d m=%d", sub.N(), sub.EdgeCount())
	}
	want := []int32{3, 4, 5}
	for i, id := range ids {
		if id != want[i] {
			t.Fatalf("ids %v want %v", ids, want)
		}
	}
	if _, _, err := CommunitySubgraph(g, membership, 9, 1); err == nil {
		t.Fatal("want empty-community error")
	}
	if _, _, err := CommunitySubgraph(g, []int32{0}, 0, 1); err == nil {
		t.Fatal("want length error")
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Star with 4 leaves: center degree 4, leaves degree 1.
	b := NewBuilder(5)
	for i := 1; i <= 4; i++ {
		b.AddEdge(0, int32(i), 1)
	}
	g := b.Build(1)
	h := DegreeHistogram(g)
	if len(h) != 2 {
		t.Fatalf("%v", h)
	}
	if h[0].Degree != 1 || h[0].Count != 4 || h[1].Degree != 4 || h[1].Count != 1 {
		t.Fatalf("%v", h)
	}
	if got := DegreeHistogram(NewBuilder(0).Build(1)); len(got) != 0 {
		t.Fatalf("empty graph histogram %v", got)
	}
}
