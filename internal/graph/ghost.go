package graph

import (
	"fmt"
	"sort"
)

// GhostSubgraph extracts the subgraph induced by vertices — which become
// local vertices 0..len(vertices)-1 in the given order — plus one "ghost"
// vertex per distinct external neighbor, appended after the locals in
// ascending original-id order. It is the shard-extraction primitive of the
// sharded engine: unlike InducedSubgraph, cut edges are NOT dropped — each
// local–external edge is kept as a halo edge between the local vertex and
// the external endpoint's ghost, with its original weight, so a shard's
// local moves still feel the pull of cross-shard neighbors.
//
// Ghost–ghost edges are absent (a shard sees only its own halo), so a
// ghost's degree in the subgraph counts only its halo edges. Ghost vertices
// are meant to be FROZEN during clustering — seeded with their owning
// shard's community label and pinned (core.Engine.SweepSeeded pins exactly
// such a vertex suffix); clustering them as free vertices would let a shard
// move vertices it does not own.
//
// Returns the subgraph, the original ids of the ghosts (ascending; ghost t
// is subgraph vertex len(vertices)+t), and the old→new id mapping over all
// of g's vertices (-1 for vertices that are neither local nor ghost).
// Duplicate or out-of-range ids in vertices are rejected.
func GhostSubgraph(g *Graph, vertices []int32, p int) (*Graph, []int32, []int32, error) {
	n := g.N()
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	for t, v := range vertices {
		if v < 0 || int(v) >= n {
			return nil, nil, nil, fmt.Errorf("graph: vertex %d out of range [0,%d)", v, n)
		}
		if remap[v] != -1 {
			return nil, nil, nil, fmt.Errorf("graph: duplicate vertex %d in selection", v)
		}
		remap[v] = int32(t)
	}
	nLocal := len(vertices)

	// Pass 1: discover ghosts (external neighbors) and count halo arcs.
	var ghosts []int32
	for _, v := range vertices {
		nbr, _ := g.Neighbors(int(v))
		for _, j := range nbr {
			if remap[j] == -1 {
				remap[j] = -2 // marked external, index assigned below
				ghosts = append(ghosts, j)
			}
		}
	}
	sort.Slice(ghosts, func(a, b int) bool { return ghosts[a] < ghosts[b] })
	for t, gv := range ghosts {
		remap[gv] = int32(nLocal + t)
	}
	ns := nLocal + len(ghosts)

	// Pass 2: row lengths. A local keeps its full row (every neighbor is
	// local or ghost); a ghost's row holds only its halo arcs back to locals.
	offsets := make([]int64, ns+1)
	for t, v := range vertices {
		offsets[t+1] = int64(g.OutDegree(int(v)))
	}
	for _, v := range vertices {
		nbr, _ := g.Neighbors(int(v))
		for _, j := range nbr {
			if t := remap[j]; int(t) >= nLocal {
				offsets[t+1]++
			}
		}
	}
	for i := 0; i < ns; i++ {
		offsets[i+1] += offsets[i]
	}
	total := offsets[ns]
	adj := make([]int32, total)
	weights := make([]float64, total)

	// Pass 3: scatter. Local rows fill in original neighbor order; ghost
	// rows fill in local scan order (ascending local id — rows need not be
	// sorted, only symmetric and duplicate-free, which this construction
	// guarantees because g's rows are).
	cursor := make([]int64, ns)
	copy(cursor, offsets[:ns])
	for t, v := range vertices {
		nbr, wts := g.Neighbors(int(v))
		base := cursor[t]
		for u, j := range nbr {
			adj[base+int64(u)] = remap[j]
			weights[base+int64(u)] = wts[u]
			if gt := remap[j]; int(gt) >= nLocal {
				pos := cursor[gt]
				adj[pos], weights[pos] = int32(t), wts[u]
				cursor[gt]++
			}
		}
		cursor[t] = base + int64(len(nbr))
	}

	sub, err := FromCSR(offsets, adj, weights, p, false)
	if err != nil {
		return nil, nil, nil, err // unreachable: check=false never errors
	}
	// Shards inherit the parent's arc layout so per-shard sweeps run the same
	// kernels the shared-memory engine would on g.
	sub.SetLayout(g.Layout(), p)
	return sub, ghosts, remap, nil
}
