package graph

import "testing"

// pathCSR builds the CSR arrays of an n-vertex unweighted path.
func pathCSR(n int) (offsets []int64, adj []int32, weights []float64) {
	offsets = make([]int64, n+1)
	for i := 0; i < n; i++ {
		d := int64(2)
		if i == 0 || i == n-1 {
			d = 1
		}
		offsets[i+1] = offsets[i] + d
	}
	adj = make([]int32, offsets[n])
	weights = make([]float64, offsets[n])
	pos := 0
	for i := 0; i < n; i++ {
		if i > 0 {
			adj[pos], weights[pos] = int32(i-1), 1
			pos++
		}
		if i < n-1 {
			adj[pos], weights[pos] = int32(i+1), 1
			pos++
		}
	}
	return
}

func TestFromCSRIntoRecyclesGraph(t *testing.T) {
	off, adj, w := pathCSR(16)
	g, err := FromCSRInto(nil, off, adj, w, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	degPtr := &g.degree[0]
	// Rebuild the same shape in place: header and degree array must be reused.
	off2, adj2, w2 := pathCSR(16)
	g2, err := FromCSRInto(g, off2, adj2, w2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Fatal("FromCSRInto returned a new header for a non-nil dst")
	}
	if &g2.degree[0] != degPtr {
		t.Fatal("FromCSRInto reallocated the degree array at unchanged size")
	}
	// Shrink, then grow past the original capacity.
	off3, adj3, w3 := pathCSR(4)
	if _, err := FromCSRInto(g, off3, adj3, w3, 1, true); err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.MaxOutDegree() != 2 || g.TotalWeight() != 6 {
		t.Fatalf("shrunk graph wrong: n=%d maxout=%d 2m=%v", g.N(), g.MaxOutDegree(), g.TotalWeight())
	}
	off4, adj4, w4 := pathCSR(64)
	if _, err := FromCSRInto(g, off4, adj4, w4, 1, true); err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 || g.EdgeCount() != 63 {
		t.Fatalf("grown graph wrong: n=%d M=%d", g.N(), g.EdgeCount())
	}
}

func TestFromCSRIntoSteadyStateZeroAllocs(t *testing.T) {
	off, adj, w := pathCSR(256)
	g, err := FromCSRInto(nil, off, adj, w, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := FromCSRInto(g, off, adj, w, 1, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm FromCSRInto allocates %v times, want 0", allocs)
	}
}
