package graph

import (
	"math"
	"testing"
)

// path 0-1-2-3 plus a triangle 3-4-5-3 and a self-loop at 1.
func ghostFixture(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 3)
	b.AddEdge(5, 3, 1)
	b.AddEdge(1, 1, 5)
	return b.Build(1)
}

func TestGhostSubgraphKeepsCutEdgesAsHalo(t *testing.T) {
	g := ghostFixture(t)
	sub, ghosts, remap, err := GhostSubgraph(g, []int32{0, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("invalid ghost subgraph: %v", err)
	}
	// Locals 0,1,2 → 0,1,2; the only external neighbor is 3 (via edge 2-3).
	if len(ghosts) != 1 || ghosts[0] != 3 {
		t.Fatalf("ghosts = %v, want [3]", ghosts)
	}
	if sub.N() != 4 {
		t.Fatalf("n = %d, want 4", sub.N())
	}
	for v, want := range map[int32]int32{0: 0, 1: 1, 2: 2, 3: 3, 4: -1, 5: -1} {
		if remap[v] != want {
			t.Fatalf("remap[%d] = %d, want %d", v, remap[v], want)
		}
	}
	// The cut edge {2,3} is kept as a halo edge to the ghost, weight intact.
	if w, ok := sub.EdgeWeight(2, 3); !ok || w != 1 {
		t.Fatalf("halo edge weight = %v (ok=%v), want 1", w, ok)
	}
	// Interior edges and the self-loop carry over.
	if w, _ := sub.EdgeWeight(1, 2); w != 2 {
		t.Fatalf("interior edge weight = %v, want 2", w)
	}
	if sub.SelfLoopWeight(1) != 5 {
		t.Fatalf("self-loop weight = %v, want 5", sub.SelfLoopWeight(1))
	}
	// The ghost's degree counts only its halo edge — not its edges to 4,5.
	if d := sub.Degree(3); d != 1 {
		t.Fatalf("ghost degree = %v, want 1", d)
	}
}

func TestGhostSubgraphGhostOrderAndMultipleHalo(t *testing.T) {
	g := ghostFixture(t)
	// Locals {3}: externals are 2, 4, 5 — ghosts must come back ascending.
	sub, ghosts, _, err := GhostSubgraph(g, []int32{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ghosts) != 3 || ghosts[0] != 2 || ghosts[1] != 4 || ghosts[2] != 5 {
		t.Fatalf("ghosts = %v, want [2 4 5]", ghosts)
	}
	// No ghost–ghost edge: 4 and 5 are adjacent in g, absent in sub.
	if sub.HasEdge(2, 3) {
		t.Fatal("unexpected ghost-ghost edge between ghosts of 4 and 5")
	}
	// All three halo edges present from the single local (sub vertex 0).
	if sub.OutDegree(0) != 3 {
		t.Fatalf("local out-degree = %d, want 3", sub.OutDegree(0))
	}
}

func TestGhostSubgraphWholeGraphHasNoGhosts(t *testing.T) {
	g := ghostFixture(t)
	all := []int32{0, 1, 2, 3, 4, 5}
	sub, ghosts, _, err := GhostSubgraph(g, all, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ghosts) != 0 {
		t.Fatalf("ghosts = %v, want none", ghosts)
	}
	if sub.N() != g.N() || sub.ArcCount() != g.ArcCount() {
		t.Fatalf("whole-graph extraction changed shape: n=%d arcs=%d", sub.N(), sub.ArcCount())
	}
	if math.Abs(sub.TotalWeight()-g.TotalWeight()) > 1e-12 {
		t.Fatalf("total weight %v != %v", sub.TotalWeight(), g.TotalWeight())
	}
}

func TestGhostSubgraphRejectsBadInput(t *testing.T) {
	g := ghostFixture(t)
	if _, _, _, err := GhostSubgraph(g, []int32{0, 0}, 1); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
	if _, _, _, err := GhostSubgraph(g, []int32{-1}, 1); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if _, _, _, err := GhostSubgraph(g, []int32{6}, 1); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestGhostSubgraphEmptySelection(t *testing.T) {
	g := ghostFixture(t)
	sub, ghosts, _, err := GhostSubgraph(g, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 0 || len(ghosts) != 0 {
		t.Fatalf("empty selection: n=%d ghosts=%v", sub.N(), ghosts)
	}
}
