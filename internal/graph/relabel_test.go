package graph

import (
	"math"
	"testing"
)

func TestRelabelPreservesStructure(t *testing.T) {
	g := triangle(t)
	perm := []int32{2, 0, 1}
	rg, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if rg.N() != g.N() || rg.ArcCount() != g.ArcCount() {
		t.Fatal("shape changed")
	}
	if math.Abs(rg.TotalWeight()-g.TotalWeight()) > 1e-12 {
		t.Fatal("weight changed")
	}
	// Edge {0,1} w=1 → {2,0}; self-loop at 2 (w=5) → at 1.
	if w, ok := rg.EdgeWeight(2, 0); !ok || w != 1 {
		t.Fatalf("relabeled edge weight %v", w)
	}
	if rg.SelfLoopWeight(1) != 5 {
		t.Fatalf("self-loop weight %v", rg.SelfLoopWeight(1))
	}
}

func TestRelabelErrors(t *testing.T) {
	g := triangle(t)
	if _, err := Relabel(g, []int32{0, 1}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := Relabel(g, []int32{0, 0, 1}); err == nil {
		t.Fatal("want duplicate error")
	}
	if _, err := Relabel(g, []int32{0, 1, 9}); err == nil {
		t.Fatal("want range error")
	}
}

func TestRandomPermutation(t *testing.T) {
	p := RandomPermutation(100, 1)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || int(v) >= 100 || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
	q := RandomPermutation(100, 1)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestBFSOrderIsPermutationAndLocal(t *testing.T) {
	// Path graph: BFS order from 0 must be the identity.
	b := NewBuilder(6)
	for i := 0; i+1 < 6; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	g := b.Build(1)
	perm := BFSOrder(g)
	for i, p := range perm {
		if p != int32(i) {
			t.Fatalf("path BFS order not identity: %v", perm)
		}
	}
	// Disconnected pieces: all vertices still covered exactly once.
	b2 := NewBuilder(5)
	b2.AddEdge(3, 4, 1)
	g2 := b2.Build(1)
	perm2 := BFSOrder(g2)
	seen := make([]bool, 5)
	for _, p := range perm2 {
		if p < 0 || int(p) >= 5 || seen[p] {
			t.Fatal("not a permutation")
		}
		seen[p] = true
	}
}
