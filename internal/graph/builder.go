package graph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"grappolo/internal/par"
)

// Edge is one undirected input edge. Endpoints may appear in either order;
// W <= 0 is treated as weight 1 (unweighted input, paper §2 footnote 1).
type Edge struct {
	U, V int32
	W    float64
}

// Builder accumulates undirected edges and produces a Graph. Duplicate
// edges (in either orientation) are merged by summing their weights, so the
// result never contains multi-edges. The zero value is ready to use.
type Builder struct {
	n      int
	edges  []Edge
	layout Layout
}

// NewBuilder returns a builder for a graph with n vertices. Additional
// vertices are added implicitly by AddEdge if an endpoint exceeds n-1.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// Grow ensures the vertex set covers ids [0, n).
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// SetLayout selects the arc layout of the graphs this builder produces
// (default LayoutSplit; see Layout for the trade-off).
func (b *Builder) SetLayout(l Layout) { b.layout = l }

// AddEdge records the undirected edge {u, v} with weight w (w <= 0 means 1).
func (b *Builder) AddEdge(u, v int32, w float64) {
	if u < 0 || v < 0 {
		panic("graph: negative vertex id")
	}
	if w <= 0 {
		w = 1
	}
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.edges = append(b.edges, Edge{U: u, V: v, W: w})
}

// AddEdges records a batch of edges.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.W)
	}
}

// EdgeCount returns the number of raw (pre-merge) edges recorded so far.
func (b *Builder) EdgeCount() int { return len(b.edges) }

// Build assembles the CSR graph using p workers. The builder can be reused
// afterwards (its recorded edges are untouched).
func (b *Builder) Build(p int) *Graph {
	return FromEdgesLayout(b.n, b.edges, p, b.layout)
}

// FromEdges builds a split-layout Graph with n vertices from an undirected
// edge list, merging duplicates, using p workers. The input slice is not
// modified.
//
// The construction is the standard two-pass CSR build: count row lengths,
// exclusive prefix sum, scatter, then a per-row sort + in-place merge of
// duplicate neighbors. Counting and scattering use atomics; the per-row
// normalization is embarrassingly parallel.
func FromEdges(n int, edges []Edge, p int) *Graph {
	return FromEdgesLayout(n, edges, p, LayoutSplit)
}

// FromEdgesLayout is FromEdges producing the given arc layout at
// construction time (LayoutInterleaved additionally packs the arcs into the
// interleaved stream the sweep kernels consume).
func FromEdgesLayout(n int, edges []Edge, p int, layout Layout) *Graph {
	counts := make([]int64, n+1)
	par.ForChunk(len(edges), p, 0, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			e := edges[t]
			atomicInc(&counts[e.U])
			if e.U != e.V {
				atomicInc(&counts[e.V])
			}
		}
	})
	total := par.ExclusivePrefixSum(counts[:n+1], p)
	offsets := counts // counts now holds exclusive prefix sums; alias for clarity
	adj := make([]int32, total)
	weights := make([]float64, total)
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	par.ForChunk(len(edges), p, 0, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			e := edges[t]
			w := e.W
			if w <= 0 {
				w = 1
			}
			pos := atomicAdd(&cursor[e.U], 1) - 1
			adj[pos], weights[pos] = e.V, w
			if e.U != e.V {
				pos = atomicAdd(&cursor[e.V], 1) - 1
				adj[pos], weights[pos] = e.U, w
			}
		}
	})
	g := &Graph{offsets: offsets, adj: adj, weights: weights, layout: layout}
	g.normalizeRows(p)
	g.finish(p)
	return g
}

// normalizeRows sorts each adjacency row by neighbor id and merges duplicate
// neighbors by summing weights, compacting rows in place and then squeezing
// the CSR arrays.
func (g *Graph) normalizeRows(p int) {
	n := g.N()
	newLen := make([]int64, n+1)
	par.ForChunk(n, p, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s, e := g.offsets[i], g.offsets[i+1]
			row := rowSorter{adj: g.adj[s:e], w: g.weights[s:e]}
			sort.Sort(row)
			// Merge duplicates in place.
			out := 0
			for t := 0; t < len(row.adj); t++ {
				if out > 0 && row.adj[out-1] == row.adj[t] {
					row.w[out-1] += row.w[t]
				} else {
					row.adj[out], row.w[out] = row.adj[t], row.w[t]
					out++
				}
			}
			newLen[i] = int64(out)
		}
	})
	total := par.ExclusivePrefixSum(newLen[:n+1], p)
	if total == int64(len(g.adj)) { // no duplicates anywhere
		return
	}
	adj := make([]int32, total)
	weights := make([]float64, total)
	par.ForChunk(n, p, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src := g.offsets[i]
			dst := newLen[i]
			cnt := newLen[i+1] - newLen[i]
			copy(adj[dst:dst+cnt], g.adj[src:src+cnt])
			copy(weights[dst:dst+cnt], g.weights[src:src+cnt])
		}
	})
	g.offsets, g.adj, g.weights = newLen, adj, weights
}

// finish computes the cached degrees, total weight, self-loop count, and
// maximum out-degree. It reuses g's degree array when the capacity allows and
// routes every loop through the captureless ...Ctx forms, so rebuilding a
// pooled Graph (FromCSRInto) allocates nothing in steady state.
func (g *Graph) finish(p int) {
	n := g.N()
	// The CSR content just changed (fresh build or a recycled header):
	// drop any memoized identity before it can describe the wrong graph.
	atomic.StoreUint64(&g.fpHash, 0)
	atomic.StoreUint64(&g.strongHash, 0)
	g.degree = par.Resize(g.degree, n)
	g.loops = 0
	par.ForChunkCtx(g, n, p, 0, func(g *Graph, lo, hi int) {
		var chunkLoops int64
		for i := lo; i < hi; i++ {
			nbr, w := g.Neighbors(i)
			s := 0.0
			for t, x := range w {
				s += x
				if nbr[t] == int32(i) {
					chunkLoops++
				}
			}
			g.degree[i] = s
		}
		atomic.AddInt64(&g.loops, chunkLoops)
	})
	// Cheap O(n) reductions over cached per-row data (no arc traffic).
	g.maxOut = int(par.MaxInt64Ctx(g, n, p, func(g *Graph, i int) int64 {
		return g.offsets[i+1] - g.offsets[i]
	}))
	g.totalW = par.SumFloat64Ctx(g, n, p, func(g *Graph, i int) float64 { return g.degree[i] })
	if g.layout == LayoutInterleaved {
		g.buildArcs(p)
	}
}

// FromCSR constructs a Graph directly from CSR arrays that are already
// sorted, deduplicated and symmetric. It takes ownership of the slices.
// Used by the coarsening step, which produces normalized rows by
// construction. Set check to true to validate (tests).
func FromCSR(offsets []int64, adj []int32, weights []float64, p int, check bool) (*Graph, error) {
	return FromCSRInto(nil, offsets, adj, weights, p, check)
}

// FromCSRInto is FromCSR recycling dst: the Graph header and its cached
// degree array are reused (grown only when the vertex count exceeds the
// previous capacity), so a pooled caller — core.Engine's per-level coarse
// graph slots — rebuilds a same-shaped graph without allocating. dst may be
// nil, in which case a fresh Graph is built. dst's arc layout is preserved
// (an interleaved dst re-packs its arc stream in place; a nil dst is split —
// use SetLayout to convert). Any prior contents of dst are invalidated;
// callers must not retain views of the previous graph.
func FromCSRInto(dst *Graph, offsets []int64, adj []int32, weights []float64, p int, check bool) (*Graph, error) {
	if dst == nil {
		dst = &Graph{}
	}
	dst.offsets, dst.adj, dst.weights = offsets, adj, weights
	dst.finish(p)
	if check {
		if err := dst.Validate(); err != nil {
			return nil, fmt.Errorf("graph: invalid CSR input: %w", err)
		}
	}
	return dst, nil
}

type rowSorter struct {
	adj []int32
	w   []float64
}

func (r rowSorter) Len() int { return len(r.adj) }

// Less orders by neighbor id, then weight. The weight tie-break matters:
// duplicate edges land in each endpoint's row in scheduler-dependent order,
// and float addition is not associative, so summing them in scatter order
// could leave the two directions of an edge differing in the last ULP.
// Sorting duplicates by weight makes the merged sum — and therefore the
// whole build — bit-deterministic for any worker count.
func (r rowSorter) Less(i, j int) bool {
	if r.adj[i] != r.adj[j] {
		return r.adj[i] < r.adj[j]
	}
	return r.w[i] < r.w[j]
}
func (r rowSorter) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.w[i], r.w[j] = r.w[j], r.w[i]
}
