package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list: one "u v [w]" per
// line, 0-based vertex ids, '#' or '%' comment lines ignored. Lines with a
// third field use it as the weight; otherwise weight 1 (paper §2).
func ReadEdgeList(r io.Reader, p int) (*Graph, error) {
	b := &Builder{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %w", lineNo, fields[1], err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %w", lineNo, fields[2], err)
			}
			if w <= 0 {
				return nil, fmt.Errorf("graph: line %d: non-positive weight %v", lineNo, w)
			}
		}
		b.AddEdge(int32(u), int32(v), w)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	return b.Build(p), nil
}

// WriteEdgeList writes the graph as "u v w" lines, emitting each undirected
// edge once (u <= v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < g.N(); i++ {
		nbr, wt := g.Neighbors(i)
		for t, j := range nbr {
			if int(j) >= i {
				if _, err := fmt.Fprintf(bw, "%d %d %g\n", i, j, wt[t]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadMETIS parses the METIS/DIMACS10 graph format used by the paper's
// input suite: a header "n m [fmt]" followed by n adjacency lines of
// 1-based neighbor ids, optionally interleaved with weights when fmt
// includes edge weights (fmt "1" or "11"; vertex weights are skipped).
func ReadMETIS(r io.Reader, p int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	var hasEdgeW, hasVertexW bool
	headerRead := false
	b := &Builder{}
	vertex := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if !headerRead {
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: METIS header needs at least n and m")
			}
			nv, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: METIS header n: %w", err)
			}
			n = nv
			if len(fields) >= 3 {
				code := fields[2]
				hasEdgeW = strings.HasSuffix(code, "1")
				hasVertexW = len(code) >= 2 && code[len(code)-2] == '1'
			}
			b.Grow(n)
			headerRead = true
			continue
		}
		if vertex >= n {
			return nil, fmt.Errorf("graph: METIS file has more than %d adjacency lines", n)
		}
		idx := 0
		if hasVertexW {
			idx = 1 // skip vertex weight
		}
		step := 1
		if hasEdgeW {
			step = 2
		}
		for ; idx < len(fields); idx += step {
			j, err := strconv.Atoi(fields[idx])
			if err != nil {
				return nil, fmt.Errorf("graph: METIS vertex %d: bad neighbor %q: %w", vertex+1, fields[idx], err)
			}
			if j < 1 || j > n {
				return nil, fmt.Errorf("graph: METIS vertex %d: neighbor %d out of range", vertex+1, j)
			}
			w := 1.0
			if hasEdgeW {
				if idx+1 >= len(fields) {
					return nil, fmt.Errorf("graph: METIS vertex %d: missing weight", vertex+1)
				}
				w, err = strconv.ParseFloat(fields[idx+1], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: METIS vertex %d: bad weight: %w", vertex+1, err)
				}
			}
			// Each undirected edge appears in both adjacency lines; keep the
			// orientation u <= v once to avoid doubling weights on merge.
			if u := vertex; u <= j-1 {
				b.AddEdge(int32(u), int32(j-1), w)
			}
		}
		vertex++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning METIS: %w", err)
	}
	if !headerRead {
		return nil, fmt.Errorf("graph: empty METIS input")
	}
	return b.Build(p), nil
}

// WriteMETIS writes the graph in METIS/DIMACS10 format with edge weights
// (header fmt code "1"): n m 1, followed by one adjacency line per vertex
// with 1-based "neighbor weight" pairs. Self-loops are emitted on their
// owner's line once, which METIS tools tolerate and ReadMETIS round-trips.
// Non-integer weights are written with full precision.
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d 1\n", g.N(), g.EdgeCount()); err != nil {
		return err
	}
	for i := 0; i < g.N(); i++ {
		nbr, wts := g.Neighbors(i)
		for t, j := range nbr {
			if t > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d %g", j+1, wts[t]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

const binMagic = uint64(0x47524150504f4c4f) // "GRAPPOLO"

// WriteBinary serializes the graph in a compact little-endian binary format
// (magic, n, arc count, offsets, adj, weights).
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binMagic, uint64(g.N()), uint64(len(g.adj))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.weights); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader, p int) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, n, arcs uint64
	for _, dst := range []*uint64{&magic, &n, &arcs} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	offsets := make([]int64, n+1)
	adj := make([]int32, arcs)
	weights := make([]float64, arcs)
	if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
		return nil, fmt.Errorf("graph: binary offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, adj); err != nil {
		return nil, fmt.Errorf("graph: binary adjacency: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, weights); err != nil {
		return nil, fmt.Errorf("graph: binary weights: %w", err)
	}
	return FromCSR(offsets, adj, weights, p, true)
}

// LoadFile reads a graph from path, dispatching on extension: ".graph" or
// ".metis" → METIS, ".bin" → binary, anything else → edge list.
func LoadFile(path string, p int) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".graph") || strings.HasSuffix(path, ".metis"):
		return ReadMETIS(f, p)
	case strings.HasSuffix(path, ".bin"):
		return ReadBinary(f, p)
	default:
		return ReadEdgeList(f, p)
	}
}
