//go:build !faultinject

package faults

import "testing"

// TestProbesAreInertWithoutTag pins the default-build contract: every
// probe is a no-op — no panic, no cancellation, no observable state — so
// the serving stack can call them unconditionally from hot paths.
func TestProbesAreInertWithoutTag(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the faultinject build tag")
	}
	for p := Point(0); p < NumPoints; p++ {
		Maybe(p) // must not panic or sleep
		if ShouldCancel(p) {
			t.Fatalf("ShouldCancel(%s) fired in a no-op build", p)
		}
		if Hits(p) != 0 {
			t.Fatalf("Hits(%s) nonzero in a no-op build", p)
		}
	}
}

// TestPointNames keeps the diagnostic names attached to their sites.
func TestPointNames(t *testing.T) {
	for p, want := range map[Point]string{
		EngineRun:     "EngineRun",
		EngineBarrier: "EngineBarrier",
		PoolServe:     "PoolServe",
		BatchLead:     "BatchLead",
	} {
		if got := p.String(); got != want {
			t.Errorf("Point(%d).String() = %q, want %q", p, got, want)
		}
	}
}
