//go:build faultinject

package faults

import (
	"sync/atomic"
	"time"
)

// Enabled reports whether this build carries live fault probes.
const Enabled = true

// armed is one armed plan plus its per-site hit counters. Swapped
// atomically as a unit so Arm never tears a plan mid-flight.
type armed struct {
	plan   Plan
	counts [NumPoints]atomic.Uint64
}

var current atomic.Pointer[armed]

// Arm installs plan as the active fault plan (replacing any previous one,
// with fresh hit counters); Arm(nil) disarms all probes. Safe to call
// concurrently with probes firing.
func Arm(plan *Plan) {
	if plan == nil {
		current.Store(nil)
		return
	}
	a := &armed{plan: *plan}
	if a.plan.SlowNanos <= 0 {
		a.plan.SlowNanos = int64(time.Millisecond)
	}
	current.Store(a)
}

// Maybe is the panic/slow probe: under an armed plan it counts the hit and
// may sleep and/or panic with an Injected value per the plan's selectors.
func Maybe(p Point) {
	a := current.Load()
	if a == nil {
		return
	}
	n := a.counts[p].Add(1)
	if strike(a.plan.Seed, saltSlow, p, n, a.plan.SlowEvery[p]) {
		time.Sleep(time.Duration(a.plan.SlowNanos))
	}
	if strike(a.plan.Seed, saltPanic, p, n, a.plan.PanicEvery[p]) {
		panic(Injected{Point: p, Hit: n})
	}
}

// ShouldCancel is the forced-cancellation probe: a strike tells the caller
// to behave exactly as if its context had just been canceled.
func ShouldCancel(p Point) bool {
	a := current.Load()
	if a == nil {
		return false
	}
	if a.plan.CancelEvery[p] <= 0 {
		return false
	}
	n := a.counts[p].Add(1)
	return strike(a.plan.Seed, saltCancel, p, n, a.plan.CancelEvery[p])
}

// Hits returns how many times point p has fired under the current plan
// (0 when disarmed) — test observability for "the probe was actually
// reached" assertions.
func Hits(p Point) uint64 {
	a := current.Load()
	if a == nil {
		return 0
	}
	return a.counts[p].Load()
}

// Per-fault-kind salts keep the panic/slow/cancel strike streams of one
// seed independent.
const (
	saltPanic  = 0x70616e6963 // "panic"
	saltSlow   = 0x736c6f77   // "slow"
	saltCancel = 0x636e636c   // "cncl"
)
