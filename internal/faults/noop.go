//go:build !faultinject

package faults

// Enabled reports whether this build carries live fault probes.
const Enabled = false

// Maybe is a no-op without the faultinject build tag; the empty body is
// inlined away, so carrying probes in hot serving paths costs nothing.
func Maybe(Point) {}

// ShouldCancel never fires without the faultinject build tag.
func ShouldCancel(Point) bool { return false }

// Hits always reports zero without the faultinject build tag.
func Hits(Point) uint64 { return 0 }
