// Package faults provides seeded, deterministic fault injection for the
// serving stack's chaos tests: compiled-in probes at a fixed set of sites
// (engine run start, engine cancellation barriers, pool request serving,
// batch leading) that can panic, sleep, or force a cooperative
// cancellation according to an armed Plan.
//
// The probes are REAL code only under the `faultinject` build tag; the
// default build compiles them to empty inlinable functions, so production
// binaries and the allocation-regression gates pay literally nothing for
// carrying the injection sites. Chaos and soak tests build with
//
//	go test -tags faultinject -race ...
//
// and arm a Plan; everything the plan decides is a pure function of the
// seed and the per-site hit ordinal, so a given plan produces the same SET
// of faults on every run (which goroutine absorbs which fault still
// depends on scheduling — that interleaving is exactly what the chaos
// tests exist to explore).
package faults

import "fmt"

// Point identifies one injection site threaded into the serving stack.
type Point uint8

const (
	// EngineRun fires at the start of every core.Engine pipeline run —
	// the panic-in-run and slow-run site.
	EngineRun Point = iota
	// EngineBarrier fires at every cooperative-cancellation barrier check
	// inside a run (level loop, iteration and color-set boundaries) — the
	// cancel-at-chunk-N site: a strike latches the engine's par.Cancel
	// flag exactly as a caller-side context cancellation would.
	EngineBarrier
	// PoolServe fires inside Pool.DetectInto after an engine has been
	// checked out, before the run — a panic here exercises the pool's
	// quarantine and permit-release paths without involving the engine.
	PoolServe
	// BatchLead fires inside a Batcher leader before it drives the pool —
	// a panic here exercises the batch seal-on-panic fan-out.
	BatchLead

	// NumPoints bounds the Point space for plan arrays.
	NumPoints
)

// String names the point for panic messages and test logs.
func (p Point) String() string {
	switch p {
	case EngineRun:
		return "EngineRun"
	case EngineBarrier:
		return "EngineBarrier"
	case PoolServe:
		return "PoolServe"
	case BatchLead:
		return "BatchLead"
	default:
		return fmt.Sprintf("Point(%d)", uint8(p))
	}
}

// Injected is the value an injected panic carries (and the error-shaped
// record of any strike): tests distinguish injected faults from genuine
// bugs by asserting the recovered value is an Injected.
type Injected struct {
	Point Point
	// Hit is the 1-based ordinal of the strike at its site.
	Hit uint64
}

// Error makes an Injected usable directly as (and recognizable inside)
// an error chain.
func (i Injected) Error() string {
	return fmt.Sprintf("faults: injected fault at %s (hit %d)", i.Point, i.Hit)
}

// mix is SplitMix64: the seeded decision hash behind every strike. Cheap,
// stateless, and well distributed, so Every-N plans strike a fixed
// pseudo-random 1/N of hits rather than a lockstep pattern that could
// resonate with the request loop.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Plan configures the armed faults. All fields are Every-N selectors: a
// zero disables that fault at that site; k > 0 strikes a seeded
// pseudo-random 1/k of the site's hits (k == 1 strikes every hit —
// the deterministic single-fault setting unit tests pin behavior with).
type Plan struct {
	// Seed drives every strike decision; the same seed and plan yield the
	// same strike set.
	Seed uint64
	// PanicEvery[p] injects panic(Injected{...}) at point p.
	PanicEvery [NumPoints]int
	// SlowEvery[p] injects a SlowFor sleep at point p (Maybe sites only).
	SlowEvery [NumPoints]int
	// SlowNanos is the injected sleep duration in nanoseconds (default
	// 1ms when a SlowEvery is set and this is zero).
	SlowNanos int64
	// CancelEvery[p] makes ShouldCancel report true at point p.
	CancelEvery [NumPoints]int
}

// strike decides deterministically whether hit n at point p fires a fault
// configured as every-k, under the given seed and a per-fault-kind salt.
func strike(seed, salt uint64, p Point, n uint64, k int) bool {
	if k <= 0 {
		return false
	}
	if k == 1 {
		return true
	}
	return mix(seed^salt^uint64(p)<<32^n)%uint64(k) == 0
}
