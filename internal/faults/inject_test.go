//go:build faultinject

package faults

import (
	"testing"
	"time"
)

// record runs n hits of Maybe at p and returns which ordinals panicked.
func record(p Point, n int) []uint64 {
	var hits []uint64
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if v := recover(); v != nil {
					inj, ok := v.(Injected)
					if !ok {
						panic(v)
					}
					hits = append(hits, inj.Hit)
				}
			}()
			Maybe(p)
		}()
	}
	return hits
}

// TestStrikesAreSeededDeterministic pins the reproducibility contract:
// re-arming the same plan yields the same strike ordinals, a different
// seed yields a different set.
func TestStrikesAreSeededDeterministic(t *testing.T) {
	defer Arm(nil)
	plan := Plan{Seed: 42}
	plan.PanicEvery[EngineRun] = 3

	Arm(&plan)
	first := record(EngineRun, 200)
	Arm(&plan)
	second := record(EngineRun, 200)
	if len(first) == 0 {
		t.Fatal("an every-3 plan never struck in 200 hits")
	}
	if len(first) != len(second) {
		t.Fatalf("replay produced %d strikes, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("strike %d at hit %d on replay, hit %d first — not deterministic", i, second[i], first[i])
		}
	}

	other := plan
	other.Seed = 43
	Arm(&other)
	third := record(EngineRun, 200)
	same := len(third) == len(first)
	if same {
		for i := range first {
			if first[i] != third[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical strike sets")
	}
}

// TestEveryOneStrikesEveryHit pins the k == 1 single-fault setting the
// deterministic unit tests rely on, and that sites are independent.
func TestEveryOneStrikesEveryHit(t *testing.T) {
	defer Arm(nil)
	plan := Plan{Seed: 7}
	plan.PanicEvery[PoolServe] = 1
	Arm(&plan)
	if got := record(PoolServe, 10); len(got) != 10 {
		t.Fatalf("every-1 plan struck %d/10 hits", len(got))
	}
	// An unconfigured site never fires, even under the same armed plan.
	if got := record(EngineRun, 10); len(got) != 0 {
		t.Fatalf("unconfigured site struck %d times", len(got))
	}
	if Hits(PoolServe) != 10 || Hits(EngineRun) != 10 {
		t.Fatalf("hit counters = %d/%d, want 10/10", Hits(PoolServe), Hits(EngineRun))
	}
}

// TestCancelAndDisarm pins ShouldCancel and that Arm(nil) silences
// everything immediately.
func TestCancelAndDisarm(t *testing.T) {
	defer Arm(nil)
	plan := Plan{Seed: 1}
	plan.CancelEvery[EngineBarrier] = 1
	Arm(&plan)
	if !ShouldCancel(EngineBarrier) {
		t.Fatal("every-1 cancel plan did not fire")
	}
	Arm(nil)
	if ShouldCancel(EngineBarrier) {
		t.Fatal("disarmed probe fired")
	}
	Maybe(EngineRun) // must be inert when disarmed
}

// TestSlowInjectsLatency pins the slow-run fault: an every-1 slow plan
// must delay the probe by at least the configured duration.
func TestSlowInjectsLatency(t *testing.T) {
	defer Arm(nil)
	plan := Plan{Seed: 9, SlowNanos: int64(20 * time.Millisecond)}
	plan.SlowEvery[EngineRun] = 1
	Arm(&plan)
	start := time.Now()
	Maybe(EngineRun)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slow probe returned after %v, want >= 20ms", d)
	}
}
