// Package coloring implements the parallel graph-coloring preprocessing the
// paper uses to serialize conflicting community updates (§5.2): vertices of
// one color form an independent set, so processing one color set at a time
// (parallel within the set) guarantees no two adjacent vertices decide
// concurrently.
//
// The parallel algorithm is the speculate-and-resolve greedy of Catalyürek
// et al. (the paper's reference [12]): all uncolored vertices pick the
// smallest color not used by their neighbors concurrently (tentatively),
// then conflicts (adjacent equal colors) are detected and the loser is
// uncolored for the next round. The package also provides the balanced
// variant the paper proposes as future work for skewed color-set sizes
// (§6.2, uk-2002 discussion) and a distance-2 option (§5.2 mentions
// distance-k coloring).
package coloring

import (
	"fmt"
	"math"
	"sync/atomic"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// Coloring is the result of a coloring run: a color per vertex in
// [0, NumColors) and the vertex sets grouped by color.
type Coloring struct {
	Colors    []int32   // color of each vertex
	NumColors int       // number of distinct colors
	Sets      [][]int32 // Sets[c] lists the vertices of color c, ascending
	Rounds    int       // speculative rounds used (1 for serial greedy)
}

// Stats summarizes a coloring's color-set size distribution. The paper uses
// the count and relative standard deviation of set sizes to explain the
// poor speedup on uk-2002 (943 colors, RSD 18.876). The arc fields describe
// the per-set total ARC counts — the metric the colored sweep's work is
// actually proportional to; they are populated only by ComputeStatsOn,
// which has the graph to count arcs from.
type Stats struct {
	NumColors int
	MaxSet    int
	MinSet    int
	AvgSet    float64
	RSD       float64 // stddev(set size) / mean(set size)
	MaxArcs   int64
	MinArcs   int64
	AvgArcs   float64
	ArcRSD    float64 // stddev(set arc count) / mean(set arc count)
}

// ComputeStats derives the vertex-count distribution statistics of c. The
// arc fields stay zero; use ComputeStatsOn for them.
func (c *Coloring) ComputeStats() Stats {
	st := Stats{NumColors: c.NumColors, MinSet: math.MaxInt}
	if c.NumColors == 0 {
		st.MinSet = 0
		return st
	}
	var sum, sumSq float64
	for _, set := range c.Sets {
		s := len(set)
		if s > st.MaxSet {
			st.MaxSet = s
		}
		if s < st.MinSet {
			st.MinSet = s
		}
		sum += float64(s)
		sumSq += float64(s) * float64(s)
	}
	mean := sum / float64(c.NumColors)
	st.AvgSet = mean
	variance := sumSq/float64(c.NumColors) - mean*mean
	if variance < 0 {
		variance = 0
	}
	if mean > 0 {
		st.RSD = math.Sqrt(variance) / mean
	}
	return st
}

// ComputeStatsOn derives the full distribution statistics of c on g,
// including the per-set total arc counts (§6.2's skew metric weighted the
// way the colored sweep actually pays for it).
func (c *Coloring) ComputeStatsOn(g *graph.Graph) Stats {
	st := c.ComputeStats()
	if c.NumColors == 0 {
		return st
	}
	st.MinArcs = math.MaxInt64
	var sum, sumSq float64
	for _, set := range c.Sets {
		var arcs int64
		for _, v := range set {
			arcs += int64(g.OutDegree(int(v)))
		}
		if arcs > st.MaxArcs {
			st.MaxArcs = arcs
		}
		if arcs < st.MinArcs {
			st.MinArcs = arcs
		}
		sum += float64(arcs)
		sumSq += float64(arcs) * float64(arcs)
	}
	mean := sum / float64(c.NumColors)
	st.AvgArcs = mean
	variance := sumSq/float64(c.NumColors) - mean*mean
	if variance < 0 {
		variance = 0
	}
	if mean > 0 {
		st.ArcRSD = math.Sqrt(variance) / mean
	}
	return st
}

// String renders the stats compactly. Arc fields appear only when populated
// (ComputeStatsOn).
func (s Stats) String() string {
	out := fmt.Sprintf("colors=%d sizes[min=%d avg=%.1f max=%d] rsd=%.3f",
		s.NumColors, s.MinSet, s.AvgSet, s.MaxSet, s.RSD)
	if s.MaxArcs > 0 {
		out += fmt.Sprintf(" arcs[min=%d avg=%.1f max=%d] arcrsd=%.3f",
			s.MinArcs, s.AvgArcs, s.MaxArcs, s.ArcRSD)
	}
	return out
}

// load/store wrap atomic access to the shared tentative-color array; the
// speculative phase reads neighbors' colors while other workers assign
// theirs, exactly like the OpenMP original, and the atomics make that
// well-defined under the Go memory model.
func load(colors []int32, i int32) int32 { return atomic.LoadInt32(&colors[i]) }
func store(colors []int32, i, c int32)   { atomic.StoreInt32(&colors[i], c) }

// Greedy computes a serial first-fit distance-1 coloring in vertex order.
// It is the reference implementation used by tests and small graphs.
func Greedy(g *graph.Graph) *Coloring {
	n := g.N()
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	var mark []bool
	numColors := 0
	for i := 0; i < n; i++ {
		nbr, _ := g.Neighbors(i)
		if len(mark) < numColors+1 {
			mark = make([]bool, numColors+1)
		}
		use := mark[:numColors+1]
		for t := range use {
			use[t] = false
		}
		for _, j := range nbr {
			if int(j) != i && colors[j] >= 0 {
				use[colors[j]] = true
			}
		}
		c := int32(0)
		for int(c) < len(use) && use[c] {
			c++
		}
		colors[i] = c
		if int(c) == numColors {
			numColors++
		}
	}
	return assemble(colors, numColors, 1)
}

// Parallel computes a distance-1 coloring with p workers using speculative
// rounds. The result is a valid coloring for any schedule; the exact colors
// may vary with p (as the paper notes for its coloring-dependent outputs).
func Parallel(g *graph.Graph, p int) *Coloring {
	return ParallelWith(g, p, nil)
}

// ParallelWith is Parallel drawing every working buffer — including the
// returned Coloring's storage — from s (see Scratch for ownership rules).
// A nil s allocates a private scratch, making it equivalent to Parallel.
func ParallelWith(g *graph.Graph, p int, s *Scratch) *Coloring {
	if s == nil {
		s = NewScratch()
	}
	n := g.N()
	colors := par.Resize(s.colors, n)
	s.colors = colors
	for i := range colors {
		colors[i] = -1
	}
	worklist := par.Resize(s.worklist, n)
	s.worklist = worklist
	for i := range worklist {
		worklist[i] = int32(i)
	}
	conflictFlags := par.Resize(s.conflicts, n)
	s.conflicts = conflictFlags
	markers := s.growMarkers(par.Workers(p, n), 0)
	rounds := 0
	for len(worklist) > 0 {
		rounds++
		ctx := &s.spc
		*ctx = specCtx{g: g, colors: colors, worklist: worklist,
			markers: markers, flags: conflictFlags[:len(worklist)]}
		// Phase 1: speculative tentative coloring of every worklist vertex.
		// Neighbor colors move under our feet (by design); each worker marks
		// whatever colors it observes in its flat generation-stamped marker
		// and takes the smallest unmarked one.
		par.ForChunkWorkerCtx(ctx, len(worklist), p, 0, speculatePhase)
		// Phase 2: conflict detection. Colors are stable during this phase;
		// of two adjacent same-colored vertices the higher id loses and is
		// recolored next round.
		par.ForChunkCtx(ctx, len(worklist), p, 0, conflictPhase)
		next := worklist[:0]
		for t, f := range ctx.flags {
			if f {
				next = append(next, worklist[t])
			}
		}
		for _, i := range next {
			colors[i] = -1
		}
		worklist = next
	}
	s.spc = specCtx{} // drop graph/slice references until the next kernel call
	numColors := 0
	for _, c := range colors {
		if int(c)+1 > numColors {
			numColors = int(c) + 1
		}
	}
	return assembleInto(s, colors, numColors, rounds)
}

// specCtx carries one speculative round's state into the captureless loop
// bodies, passed by pointer (see par.ForChunkWorkerCtx and the Scratch field
// comment: capturing closures — or by-value contexts over 128 bytes — would
// heap-allocate at every round even on a single worker).
type specCtx struct {
	g        *graph.Graph
	colors   []int32
	worklist []int32
	markers  []*par.Marker
	flags    []bool
}

func speculatePhase(c *specCtx, w, lo, hi int) {
	used := c.markers[w]
	for t := lo; t < hi; t++ {
		i := c.worklist[t]
		used.Reset()
		nbr, _ := c.g.Neighbors(int(i))
		for _, j := range nbr {
			if j != i {
				if cc := load(c.colors, j); cc >= 0 {
					if int(cc) >= used.Universe() {
						used.Grow(int(cc) + 2) // Grow preserves this epoch's marks
					}
					used.Set(cc)
				}
			}
		}
		cc := int32(0)
		for int(cc) < used.Universe() && used.Has(cc) {
			cc++
		}
		store(c.colors, i, cc)
	}
}

func conflictPhase(c *specCtx, lo, hi int) {
	for t := lo; t < hi; t++ {
		i := c.worklist[t]
		conflict := false
		nbr, _ := c.g.Neighbors(int(i))
		for _, j := range nbr {
			if j != i && c.colors[j] == c.colors[i] && i > j {
				conflict = true
				break
			}
		}
		c.flags[t] = conflict
	}
}

// ParallelDistance2 computes a distance-2 coloring (no vertex shares a color
// with any vertex at distance <= 2) with the same speculative scheme. The
// paper (§5.2) discusses distance-k coloring as a stricter variant; it is
// exposed for ablation studies.
func ParallelDistance2(g *graph.Graph, p int) *Coloring {
	return ParallelDistance2With(g, p, nil)
}

// ParallelDistance2With is ParallelDistance2 drawing every working buffer
// from s (see Scratch for ownership rules); nil s allocates a private one.
func ParallelDistance2With(g *graph.Graph, p int, s *Scratch) *Coloring {
	if s == nil {
		s = NewScratch()
	}
	n := g.N()
	colors := par.Resize(s.colors, n)
	s.colors = colors
	for i := range colors {
		colors[i] = -1
	}
	worklist := par.Resize(s.worklist, n)
	s.worklist = worklist
	for i := range worklist {
		worklist[i] = int32(i)
	}
	conflicts := par.Resize(s.conflicts, n)
	s.conflicts = conflicts
	// Per-worker flat color marks, reused (and kept grown) across chunks,
	// rounds and — via the scratch — whole colorings. Later rounds shrink the
	// worklist, so this count always covers the loop's effective worker
	// indices.
	markers := s.growMarkers(par.Workers(p, n), 0)
	rounds := 0
	for len(worklist) > 0 {
		rounds++
		ctx := &s.spc
		*ctx = specCtx{g: g, colors: colors, worklist: worklist,
			markers: markers, flags: conflicts[:len(worklist)]}
		par.ForChunkWorkerCtx(ctx, len(worklist), p, 0, speculatePhase2)
		par.ForChunkCtx(ctx, len(worklist), p, 0, conflictPhase2)
		next := worklist[:0]
		for t, f := range ctx.flags {
			if f {
				next = append(next, worklist[t])
			}
		}
		for _, i := range next {
			colors[i] = -1
		}
		worklist = next
	}
	s.spc = specCtx{} // drop graph/slice references until the next kernel call
	numColors := 0
	for _, c := range colors {
		if int(c)+1 > numColors {
			numColors = int(c) + 1
		}
	}
	return assembleInto(s, colors, numColors, rounds)
}

// speculatePhase2 and conflictPhase2 are the distance-2 analogs of
// speculatePhase/conflictPhase: they extend marking and conflict checks to
// the two-hop neighborhood.
func speculatePhase2(c *specCtx, w, lo, hi int) {
	used := c.markers[w]
	for t := lo; t < hi; t++ {
		i := c.worklist[t]
		used.Reset()
		mark := func(cc int32) {
			if int(cc) >= used.Universe() {
				used.Grow(int(cc) + 2) // Grow preserves this epoch's marks
			}
			used.Set(cc)
		}
		nbr, _ := c.g.Neighbors(int(i))
		for _, j := range nbr {
			if j != i {
				if cc := load(c.colors, j); cc >= 0 {
					mark(cc)
				}
			}
			nbr2, _ := c.g.Neighbors(int(j))
			for _, k := range nbr2 {
				if k != i {
					if cc := load(c.colors, k); cc >= 0 {
						mark(cc)
					}
				}
			}
		}
		cc := int32(0)
		for int(cc) < used.Universe() && used.Has(cc) {
			cc++
		}
		store(c.colors, i, cc)
	}
}

func conflictPhase2(c *specCtx, lo, hi int) {
	for t := lo; t < hi; t++ {
		i := c.worklist[t]
		conflict := false
		check := func(k int32) {
			if k != i && c.colors[k] == c.colors[i] && i > k {
				conflict = true
			}
		}
		nbr, _ := c.g.Neighbors(int(i))
		for _, j := range nbr {
			if conflict {
				break
			}
			check(j)
			nbr2, _ := c.g.Neighbors(int(j))
			for _, k := range nbr2 {
				check(k)
			}
		}
		c.flags[t] = conflict
	}
}

// Verify checks that colors form a valid distance-1 coloring of g.
func Verify(g *graph.Graph, colors []int32) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: length %d != n %d", len(colors), g.N())
	}
	for i := 0; i < g.N(); i++ {
		if colors[i] < 0 {
			return fmt.Errorf("coloring: vertex %d uncolored", i)
		}
		nbr, _ := g.Neighbors(i)
		for _, j := range nbr {
			if int(j) != i && colors[j] == colors[i] {
				return fmt.Errorf("coloring: conflict on edge {%d,%d} color %d", i, j, colors[i])
			}
		}
	}
	return nil
}

// VerifyDistance2 checks that no two distinct vertices at distance <= 2
// share a color.
func VerifyDistance2(g *graph.Graph, colors []int32) error {
	if err := Verify(g, colors); err != nil {
		return err
	}
	for i := 0; i < g.N(); i++ {
		nbr, _ := g.Neighbors(i)
		for _, j := range nbr {
			nbr2, _ := g.Neighbors(int(j))
			for _, k := range nbr2 {
				if int(k) != i && colors[k] == colors[i] {
					return fmt.Errorf("coloring: distance-2 conflict %d..%d via %d", i, k, j)
				}
			}
		}
	}
	return nil
}
