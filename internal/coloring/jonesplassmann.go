package coloring

import (
	"sync/atomic"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

func atomicAddJP(cell *int64, d int64) { atomic.AddInt64(cell, d) }

// JonesPlassmann computes a distance-1 coloring with the Jones–Plassmann
// algorithm: every vertex draws a random priority; in each round, vertices
// that are local maxima among their UNCOLORED neighbors pick the smallest
// color unused in their neighborhood. Unlike the speculate-and-resolve
// greedy (Parallel), no conflicts are ever produced, at the cost of more
// rounds on high-degree graphs. It is the other classic parallel coloring
// in the literature the paper's reference [12] benchmarks against, provided
// here for ablation studies of the coloring preprocessing step.
//
// The result is deterministic for a fixed seed regardless of worker count.
func JonesPlassmann(g *graph.Graph, p int, seed uint64) *Coloring {
	n := g.N()
	colors := make([]int32, n)
	prio := make([]uint64, n)
	rng := par.NewRNG(seed)
	for i := range colors {
		colors[i] = -1
		// Tie-break by id (priorities are distinct with probability ~1, but
		// equal draws must not deadlock): fold the id into the low bits.
		prio[i] = (rng.Uint64() &^ 0xffffff) | uint64(i)
	}
	remaining := int64(n)
	rounds := 0
	active := make([]bool, n) // vertices selected this round
	for remaining > 0 {
		rounds++
		// Select local maxima among uncolored vertices.
		par.ForChunk(n, p, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				active[i] = false
				if colors[i] >= 0 {
					continue
				}
				nbr, _ := g.Neighbors(i)
				isMax := true
				for _, j := range nbr {
					if int(j) != i && colors[j] < 0 && prio[j] > prio[i] {
						isMax = false
						break
					}
				}
				active[i] = isMax
			}
		})
		// Color the selected independent set (no two selected vertices are
		// adjacent: both being local maxima over each other is impossible
		// with distinct priorities).
		var colored int64
		par.ForChunk(n, p, 0, func(lo, hi int) {
			var local int64
			var mark []bool
			for i := lo; i < hi; i++ {
				if !active[i] {
					continue
				}
				nbr, _ := g.Neighbors(i)
				need := 0
				for _, j := range nbr {
					if c := int(colors[j]); c > need {
						need = c
					}
				}
				if len(mark) < need+2 {
					mark = make([]bool, need+2)
				}
				use := mark[:need+2]
				for t := range use {
					use[t] = false
				}
				for _, j := range nbr {
					if int(j) != i {
						if c := colors[j]; c >= 0 {
							use[c] = true
						}
					}
				}
				c := int32(0)
				for int(c) < len(use) && use[c] {
					c++
				}
				colors[i] = c
				local++
			}
			atomicAddJP(&colored, local)
		})
		remaining -= colored
	}
	numColors := 0
	for _, c := range colors {
		if int(c)+1 > numColors {
			numColors = int(c) + 1
		}
	}
	return assemble(colors, numColors, rounds)
}
