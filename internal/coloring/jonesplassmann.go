package coloring

import (
	"sync/atomic"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

func atomicAddJP(cell *int64, d int64) { atomic.AddInt64(cell, d) }

// JonesPlassmann computes a distance-1 coloring with the Jones–Plassmann
// algorithm: every vertex draws a random priority; in each round, vertices
// that are local maxima among their UNCOLORED neighbors pick the smallest
// color unused in their neighborhood. Unlike the speculate-and-resolve
// greedy (Parallel), no conflicts are ever produced, at the cost of more
// rounds on high-degree graphs. It is the other classic parallel coloring
// in the literature the paper's reference [12] benchmarks against, provided
// here for ablation studies of the coloring preprocessing step.
//
// The result is deterministic for a fixed seed regardless of worker count.
func JonesPlassmann(g *graph.Graph, p int, seed uint64) *Coloring {
	return JonesPlassmannWith(g, p, seed, nil)
}

// JonesPlassmannWith is JonesPlassmann drawing every working buffer from s
// (see Scratch for ownership rules); nil s allocates a private one.
func JonesPlassmannWith(g *graph.Graph, p int, seed uint64, s *Scratch) *Coloring {
	if s == nil {
		s = NewScratch()
	}
	n := g.N()
	colors := par.Resize(s.colors, n)
	s.colors = colors
	prio := par.Resize(s.prio, n)
	s.prio = prio
	var rng par.RNG
	rng.Seed(seed)
	for i := range colors {
		colors[i] = -1
		// Tie-break by id (priorities are distinct with probability ~1, but
		// equal draws must not deadlock): fold the id into the low bits.
		prio[i] = (rng.Uint64() &^ 0xffffff) | uint64(i)
	}
	markers := s.growMarkers(par.Workers(p, n), 0)
	remaining := int64(n)
	rounds := 0
	active := par.Resize(s.active, n) // vertices selected this round
	s.active = active
	ctx := &s.jpc
	*ctx = jpCtx{g: g, colors: colors, prio: prio, active: active,
		markers: markers, colored: &s.coloredCount}
	for remaining > 0 {
		rounds++
		// Select local maxima among uncolored vertices.
		par.ForChunkCtx(ctx, n, p, 0, jpSelectPhase)
		// Color the selected independent set (no two selected vertices are
		// adjacent: both being local maxima over each other is impossible
		// with distinct priorities).
		s.coloredCount = 0
		par.ForChunkWorkerCtx(ctx, n, p, 0, jpColorPhase)
		remaining -= s.coloredCount
	}
	s.jpc = jpCtx{} // drop graph/slice references until the next kernel call
	numColors := 0
	for _, c := range colors {
		if int(c)+1 > numColors {
			numColors = int(c) + 1
		}
	}
	return assembleInto(s, colors, numColors, rounds)
}

// jpCtx carries one Jones–Plassmann round's state into the captureless loop
// bodies, passed by pointer (see par.ForChunkWorkerCtx and Scratch).
type jpCtx struct {
	g       *graph.Graph
	colors  []int32
	prio    []uint64
	active  []bool
	markers []*par.Marker
	colored *int64
}

func jpSelectPhase(c *jpCtx, lo, hi int) {
	for i := lo; i < hi; i++ {
		c.active[i] = false
		if c.colors[i] >= 0 {
			continue
		}
		nbr, _ := c.g.Neighbors(i)
		isMax := true
		for _, j := range nbr {
			if int(j) != i && c.colors[j] < 0 && c.prio[j] > c.prio[i] {
				isMax = false
				break
			}
		}
		c.active[i] = isMax
	}
}

func jpColorPhase(c *jpCtx, w, lo, hi int) {
	var local int64
	used := c.markers[w]
	for i := lo; i < hi; i++ {
		if !c.active[i] {
			continue
		}
		used.Reset()
		nbr, _ := c.g.Neighbors(i)
		for _, j := range nbr {
			if int(j) != i {
				if cc := c.colors[j]; cc >= 0 {
					if int(cc) >= used.Universe() {
						used.Grow(int(cc) + 2)
					}
					used.Set(cc)
				}
			}
		}
		cc := int32(0)
		for int(cc) < used.Universe() && used.Has(cc) {
			cc++
		}
		c.colors[i] = cc
		local++
	}
	atomicAddJP(c.colored, local)
}
