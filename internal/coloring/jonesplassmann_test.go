package coloring

import (
	"testing"

	"grappolo/internal/generate"
)

func TestJonesPlassmannValidOnSuite(t *testing.T) {
	for _, in := range []generate.Input{generate.CNR, generate.RGG, generate.Channel} {
		g := generate.MustGenerate(in, generate.Small, 0, 4)
		c := JonesPlassmann(g, 4, 1)
		if err := Verify(g, c.Colors); err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if c.Rounds < 1 {
			t.Fatalf("%s: rounds=%d", in, c.Rounds)
		}
	}
}

func TestJonesPlassmannDeterministicAcrossWorkers(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	a := JonesPlassmann(g, 1, 7)
	b := JonesPlassmann(g, 8, 7)
	for i := range a.Colors {
		if a.Colors[i] != b.Colors[i] {
			t.Fatalf("colors differ at %d for different worker counts", i)
		}
	}
	c := JonesPlassmann(g, 4, 8) // different seed → (almost surely) different coloring
	same := true
	for i := range a.Colors {
		if a.Colors[i] != c.Colors[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("different seeds produced identical colorings (possible, unlikely)")
	}
}

func TestJonesPlassmannPathAndClique(t *testing.T) {
	p := path(30)
	c := JonesPlassmann(p, 4, 3)
	if err := Verify(p, c.Colors); err != nil {
		t.Fatal(err)
	}
	k := clique(6)
	ck := JonesPlassmann(k, 4, 3)
	if err := Verify(k, ck.Colors); err != nil {
		t.Fatal(err)
	}
	if ck.NumColors != 6 {
		t.Fatalf("K6 colored with %d colors", ck.NumColors)
	}
}

func TestJonesPlassmannEmpty(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 1)
	_ = g
	c := JonesPlassmann(path(0), 2, 1)
	if c.NumColors != 0 {
		t.Fatalf("empty: %+v", c)
	}
}

func TestJonesPlassmannVsSpeculativeColorCount(t *testing.T) {
	// Both must be valid; color counts are typically within a small factor.
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 4)
	jp := JonesPlassmann(g, 4, 1)
	sp := Parallel(g, 4)
	if err := Verify(g, jp.Colors); err != nil {
		t.Fatal(err)
	}
	if jp.NumColors > 3*sp.NumColors+4 {
		t.Fatalf("JP used %d colors vs speculative %d", jp.NumColors, sp.NumColors)
	}
	t.Logf("colors: jones-plassmann=%d (rounds=%d) speculative=%d (rounds=%d)",
		jp.NumColors, jp.Rounds, sp.NumColors, sp.Rounds)
}
