package coloring

import (
	"fmt"
	"testing"

	"grappolo/internal/generate"
)

func BenchmarkParallelColoringRGG(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Parallel(g, 0)
		if c.NumColors < 2 {
			b.Fatal("bad coloring")
		}
	}
}

func BenchmarkParallelColoringSkewedWeb(b *testing.B) {
	g := generate.MustGenerate(generate.UK2002, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Parallel(g, 0)
		if c.NumColors < 2 {
			b.Fatal("bad coloring")
		}
	}
}

func BenchmarkGreedySerialRGG(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Greedy(g)
		if c.NumColors < 2 {
			b.Fatal("bad coloring")
		}
	}
}

func BenchmarkBalancedRebalance(b *testing.B) {
	g := generate.MustGenerate(generate.UK2002, generate.Medium, 0, 0)
	base := Parallel(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Balanced(g, base, 0)
	}
}

// BenchmarkBalanced sweeps the rebalancer over both balance modes and worker
// counts on a high-color skewed hub graph — the workload the old serial
// O(n·k²) repair loop degenerated on. The worker sub-benchmarks document the
// speculative rounds' parallel scaling.
func BenchmarkBalanced(b *testing.B) {
	cfg := generate.HubCommunitiesConfig{
		Sizes:       generate.PowerLawCommunitySizes(400, 15, 1500, 1.8, 7),
		IntraDegree: 7,
		CrossFrac:   0.25,
		HubFanout:   32,
	}
	g, _ := generate.HubCommunities(cfg, 42, 0)
	base := Parallel(g, 0)
	for _, mode := range []struct {
		name string
		by   BalanceBy
	}{{"vertex", BalanceByVertices}, {"arc", BalanceByArcs}} {
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/p=%d", mode.name, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c := Rebalance(g, base, RebalanceOptions{Workers: p, By: mode.by})
					if c.NumColors > base.NumColors {
						b.Fatal("colors increased")
					}
				}
			})
		}
	}
}
