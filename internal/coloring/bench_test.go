package coloring

import (
	"testing"

	"grappolo/internal/generate"
)

func BenchmarkParallelColoringRGG(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Parallel(g, 0)
		if c.NumColors < 2 {
			b.Fatal("bad coloring")
		}
	}
}

func BenchmarkParallelColoringSkewedWeb(b *testing.B) {
	g := generate.MustGenerate(generate.UK2002, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Parallel(g, 0)
		if c.NumColors < 2 {
			b.Fatal("bad coloring")
		}
	}
}

func BenchmarkGreedySerialRGG(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Greedy(g)
		if c.NumColors < 2 {
			b.Fatal("bad coloring")
		}
	}
}

func BenchmarkBalancedRebalance(b *testing.B) {
	g := generate.MustGenerate(generate.UK2002, generate.Medium, 0, 0)
	base := Parallel(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Balanced(g, base, 0)
	}
}
