package coloring

import "grappolo/internal/par"

// Scratch owns the reusable working state of the coloring kernels: the color
// and worklist arrays, the per-worker flat neighbor-color markers, the
// conflict flags, the Jones–Plassmann priority/active arrays, the rebalance
// proposal state, and the backing storage of the assembled Coloring (Colors,
// Sets and the Coloring header itself). Buffers are sized by high-water mark,
// so a Scratch reused across calls of the same shape allocates nothing.
//
// Ownership rules:
//
//   - The *Coloring returned by a ...With kernel aliases the Scratch: it is
//     valid until the NEXT kernel call on the same Scratch. Callers that keep
//     a coloring across calls must copy it (or use the scratch-free entry
//     points, which allocate a private Scratch per call).
//   - One Scratch serves one kernel call at a time. In particular, a base
//     coloring and its Rebalance repair that must both stay alive need two
//     Scratches (core.Engine holds one for the base coloring and one for the
//     rebalancer).
//   - A Scratch is not safe for concurrent use.
type Scratch struct {
	// shared kernel state
	worklist  []int32
	conflicts []bool
	markers   []*par.Marker
	// Jones–Plassmann
	prio         []uint64
	active       []bool
	coloredCount int64 // per-round colored counter (addressable, not a local)
	// rebalance
	rbColors []int32
	proposed []int32
	dropped  []bool
	order    []int32
	loads    []int64
	hist     [][]int64
	arena    par.Arena
	// loop-body contexts, embedded here so the kernels pass an 8-byte
	// pointer: Go captures closure variables larger than 128 bytes by
	// reference, which would heap-move a by-value context at every par.*Ctx
	// call (the goroutine path captures the parameter).
	spc specCtx
	jpc jpCtx
	rbc rebalCtx
	// assembled result (aliased by the returned *Coloring)
	colors    []int32
	setCounts []int64
	setBuf    []int32
	sets      [][]int32
	out       Coloring
}

// NewScratch returns an empty Scratch; every buffer is grown on first use.
func NewScratch() *Scratch { return &Scratch{} }

// growMarkers ensures at least nw markers exist, each covering at least
// universe keys (0 = grown lazily by the kernel).
func (s *Scratch) growMarkers(nw, universe int) []*par.Marker {
	for len(s.markers) < nw {
		s.markers = append(s.markers, par.NewMarker(0))
	}
	if universe > 0 {
		for _, m := range s.markers[:nw] {
			m.Grow(universe)
		}
	}
	return s.markers
}

// assembleInto builds the Coloring result inside s. colors must already live
// in s (or be caller-owned storage that outlives the result); Sets are carved
// from one pooled backing array, members ascending per color exactly like the
// allocating assemble path always produced.
func assembleInto(s *Scratch, colors []int32, numColors, rounds int) *Coloring {
	counts := par.Resize(s.setCounts, numColors)
	s.setCounts = counts
	for i := range counts {
		counts[i] = 0
	}
	for _, c := range colors {
		counts[c]++
	}
	setBuf := par.Resize(s.setBuf, len(colors))
	s.setBuf = setBuf
	sets := par.Resize(s.sets, numColors)
	s.sets = sets
	var off int64
	for c := range sets {
		sets[c] = setBuf[off : off : off+counts[c]]
		off += counts[c]
	}
	for i, c := range colors {
		sets[c] = append(sets[c], int32(i))
	}
	s.out = Coloring{Colors: colors, NumColors: numColors, Sets: sets, Rounds: rounds}
	return &s.out
}

func assemble(colors []int32, numColors, rounds int) *Coloring {
	return assembleInto(NewScratch(), colors, numColors, rounds)
}
