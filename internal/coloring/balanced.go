package coloring

import (
	"cmp"
	"slices"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// BalanceBy selects the load metric the rebalancer evens out across color
// sets.
type BalanceBy int

const (
	// BalanceByVertices balances the number of member vertices per color —
	// the balanced coloring the paper names as the remedy for the uk-2002
	// skew (§6.2, set-size RSD 18.876).
	BalanceByVertices BalanceBy = iota
	// BalanceByArcs balances the total member ARC count per color. The
	// colored sweep's work is proportional to the arcs its vertices touch,
	// not to the vertex count, so a vertex-balanced set can still hide an
	// arc-heavy straggler; arc balancing targets the sweep cost directly.
	BalanceByArcs
)

// RebalanceOptions configure a rebalancing run.
type RebalanceOptions struct {
	// Workers is the parallel worker count (<= 0: all CPUs).
	Workers int
	// By selects the balanced load metric (default BalanceByVertices).
	By BalanceBy
	// Distance2 makes every move respect a distance-2 invariant: a vertex
	// only takes a color absent from its entire distance-<=2 neighborhood.
	// Required when rebalancing a ParallelDistance2 base coloring — checking
	// distance-1 neighbors alone would silently break the invariant.
	Distance2 bool
	// MaxRounds caps the speculative rounds (<= 0: 32). The repair converges
	// when a round commits no move, typically long before the cap.
	MaxRounds int
	// Scratch, when non-nil, supplies every working buffer including the
	// returned Coloring's storage (see Scratch for ownership rules). Use a
	// Scratch distinct from the base coloring's: the result must not clobber
	// the base colors it reads.
	Scratch *Scratch
}

// Balanced rebalances an existing distance-1 coloring so that color-set
// vertex counts are as even as possible while remaining a valid coloring.
// It is shorthand for Rebalance with BalanceByVertices at distance 1.
func Balanced(g *graph.Graph, base *Coloring, p int) *Coloring {
	return Rebalance(g, base, RebalanceOptions{Workers: p})
}

// Rebalance repairs an existing coloring toward even per-color loads without
// ever increasing the color count. It runs the same speculate-and-resolve
// pattern as Parallel, but over load repair moves instead of first-fit
// assignment:
//
//  1. speculate: every vertex of an over-loaded color (load > ceil(total/k))
//     proposes a color absent from its (distance-1 or -2) neighborhood whose
//     load would stay strictly below its own set's. Neighborhood colors are
//     marked in a flat generation-stamped array; the improving colors form a
//     prefix of the ascending-load order, scanned from an id-derived offset
//     so one round's proposals cover every improving color instead of
//     funneling into the single least-loaded one;
//  2. resolve: of two neighboring vertices proposing the same color, the
//     lower id wins and the higher id drops its proposal;
//  3. commit: surviving proposals are applied in vertex order against live
//     loads, skipping any move the earlier commits made non-improving.
//
// Every committed move strictly decreases Σ load² while Σ load is constant,
// so the load RSD is non-increasing round over round and the repair
// terminates. Proposals read only round-start state, the resolve rule is
// symmetric, and the commit order is fixed, so the result is deterministic
// for a given base coloring regardless of Workers.
func Rebalance(g *graph.Graph, base *Coloring, o RebalanceOptions) *Coloring {
	n := g.N()
	if n == 0 || base.NumColors <= 1 {
		return base
	}
	s := o.Scratch
	if s == nil {
		s = NewScratch()
	}
	k := base.NumColors
	maxRounds := o.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 32
	}
	colors := par.Resize(s.rbColors, n)
	s.rbColors = colors
	copy(colors, base.Colors)
	offsets := g.ArcOffsets()

	// Per-worker load histograms merged in worker order: cheap and
	// deterministic. The histograms are arena-carved (their count varies with
	// the worker count, their size with k) and recycled on the next call.
	nw := par.Workers(o.Workers, n)
	s.arena.Reset()
	partial := par.Resize(s.hist, nw)
	s.hist = partial
	for w := range partial {
		partial[w] = s.arena.Int64(k)
	}
	hctx := &s.rbc
	*hctx = rebalCtx{g: g, colors: colors, offsets: offsets, hist: partial,
		byArcs: o.By == BalanceByArcs}
	par.ForStaticCtx(hctx, n, o.Workers, histogramPhase)
	loads := par.Resize(s.loads, k)
	s.loads = loads
	for c := range loads {
		loads[c] = 0
	}
	var total int64
	for _, h := range partial {
		for c, v := range h {
			loads[c] += v
		}
	}
	for _, v := range loads {
		total += v
	}
	target := (total + int64(k) - 1) / int64(k)

	proposed := par.Resize(s.proposed, n)
	s.proposed = proposed
	dropped := par.Resize(s.dropped, n)
	s.dropped = dropped
	order := par.Resize(s.order, k) // colors sorted by ascending load each round
	s.order = order
	markers := s.growMarkers(nw, k)

	ctx := &s.rbc
	*ctx = rebalCtx{g: g, colors: colors, proposed: proposed, dropped: dropped,
		order: order, loads: loads, offsets: offsets, markers: markers,
		target: target, k: k, byArcs: o.By == BalanceByArcs,
		distance2: o.Distance2}
	for round := 0; round < maxRounds; round++ {
		for c := range order {
			order[c] = int32(c)
		}
		sortByLoad(order, loads)

		// Phase 1: speculative proposals. Reads only round-start colors and
		// loads, so the outcome is schedule-independent. Chunks are balanced
		// by arc count: the neighborhood scans dominate and hub vertices
		// must not serialize the sweep.
		par.ForChunkPrefixCtx(ctx, offsets, o.Workers, proposePhase)

		// Phase 2: conflict resolution. Two conflicting vertices (adjacent,
		// or within distance 2 in Distance2 mode) proposing the same color
		// would break validity if both committed; the lower id wins.
		par.ForChunkPrefixCtx(ctx, offsets, o.Workers, resolvePhase)

		// Phase 3: serial commit in vertex order against live loads. Cheap
		// (no arc traffic) and deterministic; the re-check keeps every
		// applied move strictly balance-improving even after earlier commits
		// in the same round shifted the loads.
		moved := 0
		for v := 0; v < n; v++ {
			cc := proposed[v]
			if cc < 0 || dropped[v] {
				continue
			}
			c := colors[v]
			wv := ctx.weight(v)
			if loads[cc]+wv < loads[c] {
				loads[c] -= wv
				loads[cc] += wv
				colors[v] = cc
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	s.rbc = rebalCtx{} // drop graph/slice references until the next kernel call
	return assembleInto(s, colors, k, base.Rounds)
}

// rebalCtx carries one rebalance round's state into the captureless loop
// bodies, passed by pointer (see par.ForChunkWorkerCtx and Scratch for why
// capturing closures and large by-value contexts are avoided on the
// pooled-engine path).
type rebalCtx struct {
	g         *graph.Graph
	colors    []int32
	proposed  []int32
	dropped   []bool
	order     []int32
	loads     []int64
	offsets   []int64
	markers   []*par.Marker
	hist      [][]int64
	target    int64
	k         int
	byArcs    bool
	distance2 bool
}

func (c *rebalCtx) weight(v int) int64 {
	if c.byArcs {
		return c.offsets[v+1] - c.offsets[v]
	}
	return 1
}

func histogramPhase(c *rebalCtx, w, lo, hi int) {
	h := c.hist[w]
	for v := lo; v < hi; v++ {
		h[c.colors[v]] += c.weight(v)
	}
}

func proposePhase(c *rebalCtx, w, lo, hi int) {
	mk := c.markers[w]
	for v := lo; v < hi; v++ {
		c.proposed[v] = -1
		cv := c.colors[v]
		wv := c.weight(v)
		if wv == 0 || c.loads[cv] <= c.target {
			continue
		}
		mk.Reset()
		nbr, _ := c.g.Neighbors(v)
		for _, j := range nbr {
			if int(j) == v {
				continue
			}
			mk.Set(c.colors[j])
			if c.distance2 {
				nbr2, _ := c.g.Neighbors(int(j))
				for _, u := range nbr2 {
					if int(u) != v {
						mk.Set(c.colors[u])
					}
				}
			}
		}
		// Improving targets form a prefix of the ascending-load order: every
		// cc with loads[cc]+wv < loads[cv] (cv itself can never qualify).
		// Scanning that prefix from an id-derived offset instead of always
		// from the front spreads one round's proposals across ALL improving
		// colors — starting everyone at the least-loaded color would funnel
		// the round into one or two targets and both slow convergence and
		// maximize same-color conflicts between neighbors.
		lim := c.loads[cv] - wv
		lo2, hi2 := 0, c.k
		for lo2 < hi2 {
			mid := int(uint(lo2+hi2) >> 1)
			if c.loads[c.order[mid]] < lim {
				lo2 = mid + 1
			} else {
				hi2 = mid
			}
		}
		if lo2 == 0 {
			continue
		}
		start := v % lo2
		for t := 0; t < lo2; t++ {
			cc := c.order[(start+t)%lo2]
			if !mk.Has(cc) {
				c.proposed[v] = cc
				break
			}
		}
	}
}

func resolvePhase(c *rebalCtx, _, lo, hi int) {
	for v := lo; v < hi; v++ {
		pv := c.proposed[v]
		if pv < 0 {
			continue
		}
		conflict := false
		nbr, _ := c.g.Neighbors(v)
	scan:
		for _, j := range nbr {
			if int(j) != v && c.proposed[j] == pv && int(j) < v {
				conflict = true
				break
			}
			if c.distance2 {
				nbr2, _ := c.g.Neighbors(int(j))
				for _, u := range nbr2 {
					if int(u) != v && c.proposed[u] == pv && int(u) < v {
						conflict = true
						break scan
					}
				}
			}
		}
		c.dropped[v] = conflict
	}
}

// sortByLoad sorts color ids by ascending load, breaking ties by id so the
// per-round candidate order (and with it the whole repair) is deterministic.
func sortByLoad(order []int32, loads []int64) {
	slices.SortFunc(order, func(a, b int32) int {
		if loads[a] != loads[b] {
			return cmp.Compare(loads[a], loads[b])
		}
		return cmp.Compare(a, b)
	})
}
