package coloring

import (
	"cmp"
	"slices"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// BalanceBy selects the load metric the rebalancer evens out across color
// sets.
type BalanceBy int

const (
	// BalanceByVertices balances the number of member vertices per color —
	// the balanced coloring the paper names as the remedy for the uk-2002
	// skew (§6.2, set-size RSD 18.876).
	BalanceByVertices BalanceBy = iota
	// BalanceByArcs balances the total member ARC count per color. The
	// colored sweep's work is proportional to the arcs its vertices touch,
	// not to the vertex count, so a vertex-balanced set can still hide an
	// arc-heavy straggler; arc balancing targets the sweep cost directly.
	BalanceByArcs
)

// RebalanceOptions configure a rebalancing run.
type RebalanceOptions struct {
	// Workers is the parallel worker count (<= 0: all CPUs).
	Workers int
	// By selects the balanced load metric (default BalanceByVertices).
	By BalanceBy
	// Distance2 makes every move respect a distance-2 invariant: a vertex
	// only takes a color absent from its entire distance-<=2 neighborhood.
	// Required when rebalancing a ParallelDistance2 base coloring — checking
	// distance-1 neighbors alone would silently break the invariant.
	Distance2 bool
	// MaxRounds caps the speculative rounds (<= 0: 32). The repair converges
	// when a round commits no move, typically long before the cap.
	MaxRounds int
}

// Balanced rebalances an existing distance-1 coloring so that color-set
// vertex counts are as even as possible while remaining a valid coloring.
// It is shorthand for Rebalance with BalanceByVertices at distance 1.
func Balanced(g *graph.Graph, base *Coloring, p int) *Coloring {
	return Rebalance(g, base, RebalanceOptions{Workers: p})
}

// Rebalance repairs an existing coloring toward even per-color loads without
// ever increasing the color count. It runs the same speculate-and-resolve
// pattern as Parallel, but over load repair moves instead of first-fit
// assignment:
//
//  1. speculate: every vertex of an over-loaded color (load > ceil(total/k))
//     proposes a color absent from its (distance-1 or -2) neighborhood whose
//     load would stay strictly below its own set's. Neighborhood colors are
//     marked in a flat generation-stamped array; the improving colors form a
//     prefix of the ascending-load order, scanned from an id-derived offset
//     so one round's proposals cover every improving color instead of
//     funneling into the single least-loaded one;
//  2. resolve: of two neighboring vertices proposing the same color, the
//     lower id wins and the higher id drops its proposal;
//  3. commit: surviving proposals are applied in vertex order against live
//     loads, skipping any move the earlier commits made non-improving.
//
// Every committed move strictly decreases Σ load² while Σ load is constant,
// so the load RSD is non-increasing round over round and the repair
// terminates. Proposals read only round-start state, the resolve rule is
// symmetric, and the commit order is fixed, so the result is deterministic
// for a given base coloring regardless of Workers.
func Rebalance(g *graph.Graph, base *Coloring, o RebalanceOptions) *Coloring {
	n := g.N()
	if n == 0 || base.NumColors <= 1 {
		return base
	}
	k := base.NumColors
	maxRounds := o.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 32
	}
	colors := make([]int32, n)
	copy(colors, base.Colors)
	offsets := g.ArcOffsets()
	weight := func(v int) int64 {
		if o.By == BalanceByArcs {
			return offsets[v+1] - offsets[v]
		}
		return 1
	}

	// Per-worker load histograms merged in worker order: cheap and
	// deterministic.
	nw := par.Workers(o.Workers, n)
	partial := make([][]int64, nw)
	par.ForStatic(n, o.Workers, func(w, lo, hi int) {
		h := make([]int64, k)
		for v := lo; v < hi; v++ {
			h[colors[v]] += weight(v)
		}
		partial[w] = h
	})
	loads := make([]int64, k)
	var total int64
	for _, h := range partial {
		for c, v := range h {
			loads[c] += v
		}
	}
	for _, v := range loads {
		total += v
	}
	target := (total + int64(k) - 1) / int64(k)

	proposed := make([]int32, n)
	dropped := make([]bool, n)
	order := make([]int32, k) // colors sorted by ascending load each round
	markers := make([]*par.Marker, nw)
	for w := range markers {
		markers[w] = par.NewMarker(k)
	}

	for round := 0; round < maxRounds; round++ {
		for c := range order {
			order[c] = int32(c)
		}
		sortByLoad(order, loads)

		// Phase 1: speculative proposals. Reads only round-start colors and
		// loads, so the outcome is schedule-independent. Chunks are balanced
		// by arc count: the neighborhood scans dominate and hub vertices
		// must not serialize the sweep.
		par.ForChunkPrefix(offsets, o.Workers, func(w, lo, hi int) {
			mk := markers[w]
			for v := lo; v < hi; v++ {
				proposed[v] = -1
				c := colors[v]
				wv := weight(v)
				if wv == 0 || loads[c] <= target {
					continue
				}
				mk.Reset()
				nbr, _ := g.Neighbors(v)
				for _, j := range nbr {
					if int(j) == v {
						continue
					}
					mk.Set(colors[j])
					if o.Distance2 {
						nbr2, _ := g.Neighbors(int(j))
						for _, u := range nbr2 {
							if int(u) != v {
								mk.Set(colors[u])
							}
						}
					}
				}
				// Improving targets form a prefix of the ascending-load
				// order: every cc with loads[cc]+wv < loads[c] (c itself can
				// never qualify). Scanning that prefix from an id-derived
				// offset instead of always from the front spreads one round's
				// proposals across ALL improving colors — starting everyone
				// at the least-loaded color would funnel the round into one
				// or two targets and both slow convergence and maximize
				// same-color conflicts between neighbors.
				lim := loads[c] - wv
				lo, hi := 0, k
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if loads[order[mid]] < lim {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				if lo == 0 {
					continue
				}
				start := v % lo
				for t := 0; t < lo; t++ {
					cc := order[(start+t)%lo]
					if !mk.Has(cc) {
						proposed[v] = cc
						break
					}
				}
			}
		})

		// Phase 2: conflict resolution. Two conflicting vertices (adjacent,
		// or within distance 2 in Distance2 mode) proposing the same color
		// would break validity if both committed; the lower id wins.
		par.ForChunkPrefix(offsets, o.Workers, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				pv := proposed[v]
				if pv < 0 {
					continue
				}
				conflict := false
				nbr, _ := g.Neighbors(v)
			scan:
				for _, j := range nbr {
					if int(j) != v && proposed[j] == pv && int(j) < v {
						conflict = true
						break
					}
					if o.Distance2 {
						nbr2, _ := g.Neighbors(int(j))
						for _, u := range nbr2 {
							if int(u) != v && proposed[u] == pv && int(u) < v {
								conflict = true
								break scan
							}
						}
					}
				}
				dropped[v] = conflict
			}
		})

		// Phase 3: serial commit in vertex order against live loads. Cheap
		// (no arc traffic) and deterministic; the re-check keeps every
		// applied move strictly balance-improving even after earlier commits
		// in the same round shifted the loads.
		moved := 0
		for v := 0; v < n; v++ {
			cc := proposed[v]
			if cc < 0 || dropped[v] {
				continue
			}
			c := colors[v]
			wv := weight(v)
			if loads[cc]+wv < loads[c] {
				loads[c] -= wv
				loads[cc] += wv
				colors[v] = cc
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return assemble(colors, k, base.Rounds)
}

// sortByLoad sorts color ids by ascending load, breaking ties by id so the
// per-round candidate order (and with it the whole repair) is deterministic.
func sortByLoad(order []int32, loads []int64) {
	slices.SortFunc(order, func(a, b int32) int {
		if loads[a] != loads[b] {
			return cmp.Compare(loads[a], loads[b])
		}
		return cmp.Compare(a, b)
	})
}
