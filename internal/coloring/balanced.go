package coloring

import (
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// Balanced rebalances an existing distance-1 coloring so that color-set
// sizes are as even as possible while remaining a valid coloring. The paper
// identifies skewed color-set sizes as the cause of uk-2002's poor speedup
// (943 colors, set-size RSD 18.876) and names balanced coloring as the
// remedy under exploration (§6.2); this implements the standard
// first-fit-to-least-loaded repair pass.
//
// Strategy: compute the target size ceil(n / numColors); process vertices of
// over-full colors in parallel rounds, moving each to the least-loaded color
// not used by any neighbor when that strictly improves balance. Rounds
// repeat until no vertex moves. The color count never increases.
func Balanced(g *graph.Graph, base *Coloring, p int) *Coloring {
	n := g.N()
	if n == 0 || base.NumColors <= 1 {
		return base
	}
	colors := make([]int32, n)
	copy(colors, base.Colors)
	k := base.NumColors
	// Per-worker size histograms merged serially: cheap and deterministic.
	nw := par.DefaultWorkers()
	if p > 0 {
		nw = p
	}
	partial := make([][]int64, nw)
	par.ForStatic(n, nw, func(w, lo, hi int) {
		h := make([]int64, k)
		for i := lo; i < hi; i++ {
			h[colors[i]]++
		}
		partial[w] = h
	})
	sizes := make([]int64, k)
	for _, h := range partial {
		for c, v := range h {
			sizes[c] += v
		}
	}
	target := int64((n + k - 1) / k)

	for round := 0; round < 2*k+16; round++ {
		moved := int64(0)
		// Sequential over vertices of over-full colors, parallel-friendly
		// in spirit but executed per color set to keep validity trivially
		// maintained (moves within a round never conflict because each move
		// re-checks neighbors against the live array).
		for i := 0; i < n; i++ {
			c := colors[i]
			if sizes[c] <= target {
				continue
			}
			nbr, _ := g.Neighbors(i)
			used := make(map[int32]bool, len(nbr))
			for _, j := range nbr {
				if int(j) != i {
					used[colors[j]] = true
				}
			}
			best := int32(-1)
			var bestSize int64
			for cc := int32(0); int(cc) < k; cc++ {
				if cc == c || used[cc] {
					continue
				}
				if sizes[cc] < sizes[c]-1 && (best < 0 || sizes[cc] < bestSize) {
					best, bestSize = cc, sizes[cc]
				}
			}
			if best >= 0 {
				sizes[c]--
				sizes[best]++
				colors[i] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return assemble(colors, k, base.Rounds)
}
