package coloring

import (
	"testing"

	"grappolo/internal/generate"
	"grappolo/internal/graph"
)

// skewedHub generates a hub-community graph with the uk-2002-style pathology
// the rebalancer targets: heavy hubs concentrate both colors and arcs.
func skewedHub(seed uint64) *graph.Graph {
	cfg := generate.HubCommunitiesConfig{
		Sizes:       generate.PowerLawCommunitySizes(120, 10, 600, 1.9, seed+1),
		IntraDegree: 6,
		CrossFrac:   0.15,
		HubFanout:   24,
	}
	g, _ := generate.HubCommunities(cfg, seed, 4)
	return g
}

func TestRebalanceArcModeBeatsVertexModeOnArcRSD(t *testing.T) {
	// The §6.2 acceptance bar: on a skewed hub graph, arc-balanced mode
	// must cut the per-color-set arc-count RSD by at least 2x versus
	// vertex-balanced mode, without increasing the color count.
	g := skewedHub(42)
	base := Parallel(g, 4)
	vert := Rebalance(g, base, RebalanceOptions{Workers: 4, By: BalanceByVertices})
	arc := Rebalance(g, base, RebalanceOptions{Workers: 4, By: BalanceByArcs})
	for name, c := range map[string]*Coloring{"vertex": vert, "arc": arc} {
		if err := Verify(g, c.Colors); err != nil {
			t.Fatalf("%s mode: %v", name, err)
		}
		if c.NumColors > base.NumColors {
			t.Fatalf("%s mode increased colors %d -> %d", name, base.NumColors, c.NumColors)
		}
	}
	sv, sa := vert.ComputeStatsOn(g), arc.ComputeStatsOn(g)
	if sa.ArcRSD*2 > sv.ArcRSD {
		t.Fatalf("arc mode ArcRSD %.4f not 2x below vertex mode %.4f", sa.ArcRSD, sv.ArcRSD)
	}
	t.Logf("base %s", base.ComputeStatsOn(g))
	t.Logf("vertex %s", sv)
	t.Logf("arc %s", sa)
}

func TestRebalanceDistance2PreservesInvariant(t *testing.T) {
	// Regression for the run.go Distance2Coloring + BalancedColoring combo:
	// the rebalancer must check distance-2 neighborhoods when the base
	// coloring is distance-2, or moves silently break the invariant.
	for _, seed := range []uint64{1, 7} {
		g := skewedHub(seed)
		base := ParallelDistance2(g, 4)
		for _, by := range []BalanceBy{BalanceByVertices, BalanceByArcs} {
			bal := Rebalance(g, base, RebalanceOptions{Workers: 4, By: by, Distance2: true})
			if err := VerifyDistance2(g, bal.Colors); err != nil {
				t.Fatalf("seed %d by %d: rebalance broke distance-2: %v", seed, by, err)
			}
			if bal.NumColors > base.NumColors {
				t.Fatalf("seed %d by %d: colors %d -> %d", seed, by, base.NumColors, bal.NumColors)
			}
		}
	}
}

func TestRebalanceDeterministicAcrossWorkers(t *testing.T) {
	// Proposals read only round-start state, resolution is a fixed rule, and
	// commits are serial in vertex order, so the repaired coloring is a pure
	// function of the base coloring — identical for every worker count.
	g := skewedHub(3)
	base := Parallel(g, 4)
	ref := Rebalance(g, base, RebalanceOptions{Workers: 1, By: BalanceByArcs})
	for _, p := range []int{2, 4, 8} {
		got := Rebalance(g, base, RebalanceOptions{Workers: p, By: BalanceByArcs})
		for i := range ref.Colors {
			if got.Colors[i] != ref.Colors[i] {
				t.Fatalf("p=%d differs from p=1 at vertex %d", p, i)
			}
		}
	}
}

// TestRebalanceProperty drives the rebalancer across seeds, modes and
// distances on skewed hub graphs and asserts the three contract properties:
// the coloring stays valid (at its distance), the color count never
// increases, and the balanced load's RSD is non-increasing round over round
// (checked via MaxRounds prefixes: the repair is deterministic, so a run
// capped at r rounds equals the first r rounds of a longer run).
func TestRebalanceProperty(t *testing.T) {
	for _, seed := range []uint64{2, 11, 23} {
		g := skewedHub(seed)
		for _, d2 := range []bool{false, true} {
			var base *Coloring
			if d2 {
				base = ParallelDistance2(g, 4)
			} else {
				base = Parallel(g, 4)
			}
			for _, by := range []BalanceBy{BalanceByVertices, BalanceByArcs} {
				rsdOf := func(c *Coloring) float64 {
					st := c.ComputeStatsOn(g)
					if by == BalanceByArcs {
						return st.ArcRSD
					}
					return st.RSD
				}
				prev := rsdOf(base)
				for rounds := 1; rounds <= 6; rounds++ {
					bal := Rebalance(g, base, RebalanceOptions{
						Workers: 4, By: by, Distance2: d2, MaxRounds: rounds,
					})
					if d2 {
						if err := VerifyDistance2(g, bal.Colors); err != nil {
							t.Fatalf("seed %d by %d rounds %d: %v", seed, by, rounds, err)
						}
					} else if err := Verify(g, bal.Colors); err != nil {
						t.Fatalf("seed %d by %d rounds %d: %v", seed, by, rounds, err)
					}
					if bal.NumColors > base.NumColors {
						t.Fatalf("seed %d by %d rounds %d: colors %d -> %d",
							seed, by, rounds, base.NumColors, bal.NumColors)
					}
					rsd := rsdOf(bal)
					if rsd > prev+1e-9 {
						t.Fatalf("seed %d by %d: RSD rose %.6f -> %.6f at round %d",
							seed, by, prev, rsd, rounds)
					}
					prev = rsd
				}
			}
		}
	}
}

func TestRebalanceSkipsIsolatedVerticesInArcMode(t *testing.T) {
	// Arc-weight-0 vertices cannot change any load; proposing them anyway
	// would commit no-op moves every round and spin until MaxRounds.
	b := graph.NewBuilder(40)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			b.AddEdge(int32(i), int32(j), 1) // K8 forces 8 colors
		}
	}
	g := b.Build(2) // vertices 8..39 isolated
	base := Greedy(g)
	bal := Rebalance(g, base, RebalanceOptions{Workers: 2, By: BalanceByArcs})
	if err := Verify(g, bal.Colors); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 40; i++ {
		if bal.Colors[i] != base.Colors[i] {
			t.Fatalf("isolated vertex %d moved %d -> %d", i, base.Colors[i], bal.Colors[i])
		}
	}
}

func TestComputeStatsOnArcFields(t *testing.T) {
	// path(4): 2-coloring {0,2} / {1,3}; arc counts 1+2=3 per set.
	g := path(4)
	st := Greedy(g).ComputeStatsOn(g)
	if st.NumColors != 2 || st.MinArcs != 3 || st.MaxArcs != 3 || st.ArcRSD != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.AvgArcs != 3 {
		t.Fatalf("AvgArcs = %v, want 3", st.AvgArcs)
	}
	if s := st.String(); s == "" {
		t.Fatal("empty string")
	}
	empty := Greedy(graph.NewBuilder(0).Build(1))
	if est := empty.ComputeStatsOn(graph.NewBuilder(0).Build(1)); est.MaxArcs != 0 {
		t.Fatalf("empty stats: %+v", est)
	}
}
