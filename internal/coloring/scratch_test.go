package coloring

import (
	"slices"
	"testing"

	"grappolo/internal/generate"
	"grappolo/internal/graph"
)

// TestScratchKernelsMatchFresh pins that the scratch-threaded kernels produce
// the same coloring as their allocating entry points, including when one
// Scratch is dragged across a sequence of differently-shaped graphs — the
// Engine's reuse pattern. Single worker keeps the speculative kernels
// deterministic so the comparison can be exact.
func TestScratchKernelsMatchFresh(t *testing.T) {
	graphs := []*graph.Graph{
		generate.MustGenerate(generate.CNR, generate.Small, 0, 4),
		clique(12),
		generate.MustGenerate(generate.UK2002, generate.Small, 0, 4),
		path(40),
	}
	kernels := []struct {
		name  string
		fresh func(g *graph.Graph) *Coloring
		with  func(g *graph.Graph, s *Scratch) *Coloring
	}{
		{"parallel",
			func(g *graph.Graph) *Coloring { return Parallel(g, 1) },
			func(g *graph.Graph, s *Scratch) *Coloring { return ParallelWith(g, 1, s) }},
		{"jonesplassmann",
			func(g *graph.Graph) *Coloring { return JonesPlassmann(g, 3, 7) },
			func(g *graph.Graph, s *Scratch) *Coloring { return JonesPlassmannWith(g, 3, 7, s) }},
		{"distance2",
			func(g *graph.Graph) *Coloring { return ParallelDistance2(g, 1) },
			func(g *graph.Graph, s *Scratch) *Coloring { return ParallelDistance2With(g, 1, s) }},
		{"rebalance-arc",
			func(g *graph.Graph) *Coloring {
				base := Parallel(g, 1)
				return Rebalance(g, base, RebalanceOptions{Workers: 1, By: BalanceByArcs})
			},
			func(g *graph.Graph, s *Scratch) *Coloring {
				base := Parallel(g, 1)
				return Rebalance(g, base, RebalanceOptions{Workers: 1, By: BalanceByArcs, Scratch: s})
			}},
	}
	for _, k := range kernels {
		s := NewScratch()
		for gi, g := range graphs {
			want := k.fresh(g)
			got := k.with(g, s)
			if !slices.Equal(got.Colors, want.Colors) || got.NumColors != want.NumColors {
				t.Fatalf("%s graph %d: scratch colors differ from fresh", k.name, gi)
			}
			if len(got.Sets) != len(want.Sets) {
				t.Fatalf("%s graph %d: %d sets, want %d", k.name, gi, len(got.Sets), len(want.Sets))
			}
			for c := range want.Sets {
				if !slices.Equal(got.Sets[c], want.Sets[c]) {
					t.Fatalf("%s graph %d: set %d differs", k.name, gi, c)
				}
			}
		}
	}
}

// TestScratchSteadyStateZeroAllocs pins the Engine-facing invariant: a warmed
// Scratch colors (and rebalances) a same-shaped graph without allocating.
func TestScratchSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	base, rebal := NewScratch(), NewScratch()
	work := func() {
		cs := ParallelWith(g, 1, base)
		Rebalance(g, cs, RebalanceOptions{Workers: 1, By: BalanceByArcs, Scratch: rebal})
	}
	work() // warm (arena pre-grow needs one full cycle)
	work()
	if allocs := testing.AllocsPerRun(10, work); allocs != 0 {
		t.Fatalf("warmed coloring scratch allocates %v times per cycle, want 0", allocs)
	}
}

// TestScratchResultAliasing documents the ownership rule: the next kernel
// call on a Scratch invalidates the previous result, and copying is the
// supported way to retain one.
func TestScratchResultAliasing(t *testing.T) {
	g := clique(8)
	s := NewScratch()
	first := ParallelWith(g, 1, s)
	kept := slices.Clone(first.Colors)
	_ = ParallelWith(path(8), 1, s)
	if !slices.Equal(kept, slices.Clone(kept)) {
		t.Fatal("unreachable")
	}
	// first.Colors aliases the scratch and has been rewritten for the path
	// graph; the retained copy is the stable view.
	if err := Verify(g, kept); err != nil {
		t.Fatalf("copied coloring invalidated: %v", err)
	}
}
