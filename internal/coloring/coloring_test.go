package coloring

import (
	"testing"
	"testing/quick"

	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1), 1)
	}
	return b.Build(2)
}

func clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j), 1)
		}
	}
	return b.Build(2)
}

func TestGreedyPathUsesTwoColors(t *testing.T) {
	c := Greedy(path(10))
	if err := Verify(path(10), c.Colors); err != nil {
		t.Fatal(err)
	}
	if c.NumColors != 2 {
		t.Fatalf("path colored with %d colors, want 2", c.NumColors)
	}
}

func TestGreedyCliqueNeedsNColors(t *testing.T) {
	g := clique(7)
	c := Greedy(g)
	if err := Verify(g, c.Colors); err != nil {
		t.Fatal(err)
	}
	if c.NumColors != 7 {
		t.Fatalf("K7 colored with %d colors, want 7", c.NumColors)
	}
}

func TestGreedyHandlesSelfLoops(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 0, 1)
	b.AddEdge(0, 1, 1)
	g := b.Build(1)
	c := Greedy(g)
	if err := Verify(g, c.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyEmptyGraph(t *testing.T) {
	c := Greedy(graph.NewBuilder(0).Build(1))
	if c.NumColors != 0 || len(c.Sets) != 0 {
		t.Fatalf("empty graph coloring: %+v", c)
	}
	st := c.ComputeStats()
	if st.NumColors != 0 || st.MinSet != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestParallelValidOnSuite(t *testing.T) {
	for _, in := range generate.Suite() {
		g := generate.MustGenerate(in, generate.Small, 0, 4)
		for _, p := range []int{1, 4, 8} {
			c := Parallel(g, p)
			if err := Verify(g, c.Colors); err != nil {
				t.Fatalf("%s p=%d: %v", in, p, err)
			}
			if c.NumColors < 1 {
				t.Fatalf("%s p=%d: no colors", in, p)
			}
			// Sanity: color count should not explode beyond maxdeg+1 by much;
			// speculative greedy guarantees <= maxdeg+1 after resolution.
			st := graph.ComputeStats(g)
			if c.NumColors > st.MaxDeg+1 {
				t.Fatalf("%s p=%d: %d colors > maxdeg+1 = %d", in, p, c.NumColors, st.MaxDeg+1)
			}
		}
	}
}

func TestParallelMatchesGreedyOnSingleWorker(t *testing.T) {
	// With one worker and no conflicts possible inside a round... speculative
	// coloring still differs from Greedy only via round structure; both must
	// be valid and use the same number of colors on a bipartite graph.
	g := path(50)
	cp := Parallel(g, 1)
	if err := Verify(g, cp.Colors); err != nil {
		t.Fatal(err)
	}
	if cp.NumColors != 2 {
		t.Fatalf("parallel path coloring used %d colors", cp.NumColors)
	}
}

func TestParallelSetsPartitionVertices(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	c := Parallel(g, 4)
	seen := make([]bool, g.N())
	total := 0
	for cc, set := range c.Sets {
		for _, v := range set {
			if seen[v] {
				t.Fatalf("vertex %d in two sets", v)
			}
			if c.Colors[v] != int32(cc) {
				t.Fatalf("vertex %d in set %d but colored %d", v, cc, c.Colors[v])
			}
			seen[v] = true
			total++
		}
	}
	if total != g.N() {
		t.Fatalf("sets cover %d of %d vertices", total, g.N())
	}
}

func TestVerifyCatchesConflicts(t *testing.T) {
	g := path(3)
	if err := Verify(g, []int32{0, 0, 1}); err == nil {
		t.Fatal("want conflict error")
	}
	if err := Verify(g, []int32{0, -1, 0}); err == nil {
		t.Fatal("want uncolored error")
	}
	if err := Verify(g, []int32{0}); err == nil {
		t.Fatal("want length error")
	}
	if err := Verify(g, []int32{0, 1, 0}); err != nil {
		t.Fatalf("valid coloring rejected: %v", err)
	}
}

func TestDistance2Coloring(t *testing.T) {
	g := path(20)
	c := ParallelDistance2(g, 4)
	if err := VerifyDistance2(g, c.Colors); err != nil {
		t.Fatal(err)
	}
	// A path's square needs 3 colors.
	if c.NumColors < 3 {
		t.Fatalf("distance-2 path coloring used %d colors, want >= 3", c.NumColors)
	}
	// Distance-1 verify alone must also pass, and a plain distance-1
	// coloring of a path must fail the distance-2 check.
	d1 := Greedy(g)
	if err := VerifyDistance2(g, d1.Colors); err == nil {
		t.Fatal("distance-1 coloring of a path should violate distance-2")
	}
}

func TestDistance2OnSkewedGraph(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 1, 4)
	c := ParallelDistance2(g, 4)
	if err := VerifyDistance2(g, c.Colors); err != nil {
		t.Fatal(err)
	}
	d1 := Parallel(g, 4)
	if c.NumColors < d1.NumColors {
		t.Fatalf("distance-2 used fewer colors (%d) than distance-1 (%d)", c.NumColors, d1.NumColors)
	}
}

func TestBalancedPreservesValidityAndImprovesRSD(t *testing.T) {
	// A star graph yields maximal imbalance: center one color, leaves the
	// other. Balancing cannot fix a star (leaves are mutually non-adjacent
	// but only 2 colors exist with all leaves movable to color 0? no — the
	// center blocks nothing between leaves), so use a skewed web graph where
	// rebalancing has room to work.
	g := generate.MustGenerate(generate.UK2002, generate.Small, 0, 4)
	base := Parallel(g, 4)
	bal := Balanced(g, base, 4)
	if err := Verify(g, bal.Colors); err != nil {
		t.Fatalf("balanced coloring invalid: %v", err)
	}
	if bal.NumColors > base.NumColors {
		t.Fatalf("balancing increased colors: %d > %d", bal.NumColors, base.NumColors)
	}
	sb, sa := base.ComputeStats(), bal.ComputeStats()
	if sa.RSD > sb.RSD+1e-9 {
		t.Fatalf("balancing worsened RSD: %.3f -> %.3f", sb.RSD, sa.RSD)
	}
	t.Logf("base %s -> balanced %s", sb, sa)
}

func TestBalancedNoopOnTrivial(t *testing.T) {
	g := path(2)
	base := Greedy(g)
	bal := Balanced(g, base, 2)
	if err := Verify(g, bal.Colors); err != nil {
		t.Fatal(err)
	}
	empty := Greedy(graph.NewBuilder(0).Build(1))
	if got := Balanced(graph.NewBuilder(0).Build(1), empty, 2); got != empty {
		t.Fatal("empty graph should return base coloring unchanged")
	}
}

func TestStatsString(t *testing.T) {
	g := path(9)
	st := Greedy(g).ComputeStats()
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
	if st.MaxSet != 5 || st.MinSet != 4 {
		t.Fatalf("path(9) 2-coloring sets: %+v", st)
	}
}

// Property: parallel coloring is valid on random graphs for arbitrary seeds
// and worker counts.
func TestParallelColoringProperty(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		rng := par.NewRNG(seed)
		n := 50 + rng.Intn(200)
		b := graph.NewBuilder(n)
		for e := 0; e < n*3; e++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
		}
		g := b.Build(4)
		c := Parallel(g, p)
		return Verify(g, c.Colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
