package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"grappolo/internal/coloring"
	"grappolo/internal/core"
	"grappolo/internal/generate"
)

// ColorSkewRow records the §6.2 color-set skew metrics for one input: the
// distribution of the base parallel coloring, then of the vertex-balanced
// and arc-balanced repairs. RSD is over per-set vertex counts, ArcRSD over
// per-set total arc counts — the metric the colored sweep's work actually
// follows (the paper blames uk-2002's poor speedup on exactly this skew:
// 943 colors, set-size RSD 18.876).
type ColorSkewRow struct {
	Input  generate.Input
	Colors int
	// Layout echoes the arc layout the study ran under (Options.Layout), so
	// layout-split CSV outputs stay self-describing when compared.
	Layout string
	// Base is the unbalanced speculative coloring; Vertex and Arc are the
	// same coloring after the respective rebalancing mode.
	Base, Vertex, Arc coloring.Stats
	// AutoPicked reports what core.BalanceAuto would do on this input at the
	// default ArcRSD threshold: "arc" when the base skew warrants the
	// repair, "off" when the coloring is already balanced enough.
	AutoPicked string
}

// ColorSkew colors each input with the speculative parallel coloring and
// reports the set-load skew before and after vertex- and arc-balanced
// rebalancing. Rebalancing never increases the color count, so Colors
// applies to all three distributions.
func ColorSkew(o Options, inputs []generate.Input) ([]ColorSkewRow, error) {
	o = o.Defaults()
	var rows []ColorSkewRow
	for _, in := range inputs {
		g, err := o.Input(in)
		if err != nil {
			return nil, err
		}
		base := coloring.Parallel(g, o.Workers)
		vert := coloring.Rebalance(g, base, coloring.RebalanceOptions{
			Workers: o.Workers, By: coloring.BalanceByVertices,
		})
		arc := coloring.Rebalance(g, base, coloring.RebalanceOptions{
			Workers: o.Workers, By: coloring.BalanceByArcs,
		})
		row := ColorSkewRow{
			Input:  in,
			Colors: base.NumColors,
			Layout: o.Layout.String(),
			Base:   base.ComputeStatsOn(g),
			Vertex: vert.ComputeStatsOn(g),
			Arc:    arc.ComputeStatsOn(g),
		}
		// Mirror core.BalanceAuto's decision at the default threshold.
		row.AutoPicked = "off"
		if row.Base.ArcRSD > (core.Options{}).Defaults().AutoBalanceArcRSD {
			row.AutoPicked = "arc"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteColorSkew renders the color-skew study as text.
func WriteColorSkew(w io.Writer, rows []ColorSkewRow) {
	fmt.Fprintf(w, "Color-set skew (§6.2): base vs vertex-balanced vs arc-balanced\n")
	fmt.Fprintf(w, "%-12s %7s %-11s | %8s %8s | %8s %8s | %8s %8s | %4s\n",
		"input", "colors", "layout", "rsd", "arcrsd", "rsd", "arcrsd", "rsd", "arcrsd", "auto")
	fmt.Fprintf(w, "%-12s %7s %-11s | %17s | %17s | %17s |\n",
		"", "", "", "base", "vertex-balanced", "arc-balanced")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %7d %-11s | %8.3f %8.3f | %8.3f %8.3f | %8.3f %8.3f | %4s\n",
			r.Input, r.Colors, r.Layout,
			r.Base.RSD, r.Base.ArcRSD,
			r.Vertex.RSD, r.Vertex.ArcRSD,
			r.Arc.RSD, r.Arc.ArcRSD, r.AutoPicked)
	}
}

// WriteColorSkewCSV emits the color-skew study as CSV.
func WriteColorSkewCSV(w io.Writer, rows []ColorSkewRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"input", "colors", "layout",
		"base_rsd", "base_arc_rsd",
		"vertex_rsd", "vertex_arc_rsd",
		"arc_rsd", "arc_arc_rsd",
		"auto_picked",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			string(r.Input), strconv.Itoa(r.Colors), r.Layout,
			fmtF(r.Base.RSD), fmtF(r.Base.ArcRSD),
			fmtF(r.Vertex.RSD), fmtF(r.Vertex.ArcRSD),
			fmtF(r.Arc.RSD), fmtF(r.Arc.ArcRSD),
			r.AutoPicked,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
