package harness

import (
	"bytes"
	"strings"
	"testing"

	"grappolo/internal/generate"
)

func testOpts() Options {
	return Options{Scale: generate.Small, Workers: 4, ColoringCutoff: 32}.Defaults()
}

func TestRunSchemeAllSchemes(t *testing.T) {
	o := testOpts()
	g, err := o.Input(generate.CNR)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range AllSchemes() {
		rs := RunScheme(g, s, o)
		if rs.Scheme != s {
			t.Fatalf("scheme mislabeled: %v", rs.Scheme)
		}
		if rs.Modularity <= 0 {
			t.Fatalf("%s: Q=%v", s, rs.Modularity)
		}
		if rs.Runtime <= 0 || rs.Iterations == 0 || rs.Phases == 0 {
			t.Fatalf("%s: missing stats %+v", s, rs)
		}
		if len(rs.Membership) != g.N() {
			t.Fatalf("%s: membership length", s)
		}
		if len(rs.Trajectory) == 0 {
			t.Fatalf("%s: no trajectory", s)
		}
	}
}

func TestRunSchemePanicsOnBadScheme(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	o := testOpts()
	o.coreOptions(Serial)
}

func TestTable1AllInputs(t *testing.T) {
	rows, err := Table1(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("%d rows, want 11", len(rows))
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows)
	out := buf.String()
	for _, in := range generate.Suite() {
		if !strings.Contains(out, string(in)) {
			t.Fatalf("Table 1 output missing %s", in)
		}
	}
}

func TestTable2SerialVsParallel(t *testing.T) {
	rows, err := Table2(testOpts(), []generate.Input{generate.CNR, generate.MG1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ParallelQ <= 0 || r.SerialQ <= 0 {
			t.Fatalf("%s: bad modularities %+v", r.Input, r)
		}
		if r.Speedup <= 0 {
			t.Fatalf("%s: speedup not computed", r.Input)
		}
		// Headline claim: quality within a narrow band of serial.
		if r.ParallelQ < r.SerialQ-0.05 {
			t.Fatalf("%s: parallel Q %.4f far below serial %.4f", r.Input, r.ParallelQ, r.SerialQ)
		}
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows, 4)
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("Table 2 header missing")
	}
}

func TestTable3QualityMeasures(t *testing.T) {
	rows, err := Table3(testOpts(), []generate.Input{generate.MG1})
	if err != nil {
		t.Fatal(err)
	}
	m := rows[0].Measures
	// MG-style planted inputs: serial and parallel agree strongly (paper
	// reports ~99.6-100% on MG1).
	if m.RandIndex < 0.9 {
		t.Fatalf("MG1 Rand index %.3f < 0.9", m.RandIndex)
	}
	var buf bytes.Buffer
	WriteTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Rand") {
		t.Fatal("Table 3 header missing")
	}
}

func TestTable4MultiPhaseColoring(t *testing.T) {
	rows, err := Table4(testOpts(), []generate.Input{generate.Channel}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.FirstQMin > r.FirstQMax || r.MultiQMin > r.MultiQMax {
		t.Fatalf("min > max: %+v", r)
	}
	if r.FirstIters == 0 || r.MultiIters == 0 {
		t.Fatalf("iterations missing: %+v", r)
	}
	var buf bytes.Buffer
	WriteTable4(&buf, rows)
	if !strings.Contains(buf.String(), "multi-phase") {
		t.Fatal("Table 4 header missing")
	}
}

func TestTable5Thresholds(t *testing.T) {
	rows, err := Table5(testOpts(), []generate.Input{generate.Channel}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Coarse threshold must not take more iterations than fine.
	if r.CoarseIters > r.FineIters {
		t.Fatalf("coarse threshold used more iterations: %+v", r)
	}
	var buf bytes.Buffer
	WriteTable5(&buf, rows)
	if !strings.Contains(buf.String(), "1e-2") {
		t.Fatal("Table 5 header missing")
	}
}

func TestTrajectoriesAndWriter(t *testing.T) {
	sets, err := Trajectories(testOpts(), []generate.Input{generate.RGG}, AllSchemes())
	if err != nil {
		t.Fatal(err)
	}
	ts := sets[0]
	for _, s := range AllSchemes() {
		curve := ts.Curves[s]
		if len(curve) == 0 {
			t.Fatalf("%s: empty curve", s)
		}
		// Final value must be the best seen (within fp noise): trajectories
		// climb toward convergence.
		last := curve[len(curve)-1]
		for _, q := range curve {
			if q > last+0.05 {
				t.Fatalf("%s: trajectory regressed: %v then ended at %v", s, q, last)
			}
		}
	}
	var buf bytes.Buffer
	WriteTrajectories(&buf, sets)
	if !strings.Contains(buf.String(), "rgg/serial:") {
		t.Fatal("trajectory output missing serial curve")
	}
}

func TestScalingAndSpeedups(t *testing.T) {
	curve, err := Scaling(testOpts(), generate.RGG, BaselineVFColor, []int{1, 2, 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 3 {
		t.Fatalf("%d points", len(curve.Points))
	}
	rel := curve.RelativeSpeedups()
	if rel[0] != 1 {
		t.Fatalf("first relative speedup %v, want 1", rel[0])
	}
	abs := curve.AbsoluteSpeedups()
	if abs == nil {
		t.Fatal("absolute speedups missing despite serial run")
	}
	for _, v := range abs {
		if v <= 0 {
			t.Fatalf("non-positive absolute speedup %v", v)
		}
	}
	var buf bytes.Buffer
	WriteScaling(&buf, curve)
	if !strings.Contains(buf.String(), "workers=1") {
		t.Fatal("scaling output malformed")
	}
	// Without serial: abs speedups nil.
	c2, err := Scaling(testOpts(), generate.RGG, Baseline, []int{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if c2.AbsoluteSpeedups() != nil {
		t.Fatal("absolute speedups should be nil without serial reference")
	}
}

func TestBreakdownSweep(t *testing.T) {
	pts, err := BreakdownSweep(testOpts(), generate.RGG, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Breakdown.Clustering <= 0 {
			t.Fatalf("workers=%d: no clustering time", p.Workers)
		}
	}
	var buf bytes.Buffer
	WriteBreakdown(&buf, generate.RGG, pts)
	if !strings.Contains(buf.String(), "rebuild") {
		t.Fatal("breakdown header missing")
	}
}

func TestProfiles(t *testing.T) {
	mod, rt, err := Profiles(testOpts(), []generate.Input{generate.CNR, generate.RGG})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range AllSchemes() {
		if len(mod[string(s)]) != 2 || len(rt[string(s)]) != 2 {
			t.Fatalf("%s: wrong profile lengths", s)
		}
		for _, r := range mod[string(s)] {
			if r < 1 {
				t.Fatalf("%s: profile ratio %v < 1", s, r)
			}
		}
	}
	var buf bytes.Buffer
	WriteProfiles(&buf, "modularity", mod)
	WriteProfiles(&buf, "runtime", rt)
	if !strings.Contains(buf.String(), "baseline+vf+color") {
		t.Fatal("profile output missing scheme")
	}
}

func TestOptionsInputUnknown(t *testing.T) {
	o := testOpts()
	if _, err := o.Input(generate.Input("bogus")); err == nil {
		t.Fatal("want error")
	}
}

func TestErrorPropagationFromUnknownInput(t *testing.T) {
	o := testOpts()
	bogus := []generate.Input{generate.Input("bogus")}
	if _, err := Table1(Options{Scale: 99}.Defaults()); err != nil {
		t.Log("scale beyond range falls back to large; no error expected:", err)
	}
	if _, err := Table2(o, bogus); err == nil {
		t.Fatal("Table2 should propagate input errors")
	}
	if _, err := Table3(o, bogus); err == nil {
		t.Fatal("Table3 should propagate input errors")
	}
	if _, err := Table4(o, bogus, 1); err == nil {
		t.Fatal("Table4 should propagate input errors")
	}
	if _, err := Table5(o, bogus, 1); err == nil {
		t.Fatal("Table5 should propagate input errors")
	}
	if _, err := Trajectories(o, bogus, AllSchemes()); err == nil {
		t.Fatal("Trajectories should propagate input errors")
	}
	if _, err := Scaling(o, bogus[0], Baseline, []int{1}, false); err == nil {
		t.Fatal("Scaling should propagate input errors")
	}
	if _, err := BreakdownSweep(o, bogus[0], []int{1}); err == nil {
		t.Fatal("BreakdownSweep should propagate input errors")
	}
	if _, _, err := Profiles(o, bogus); err == nil {
		t.Fatal("Profiles should propagate input errors")
	}
	if _, err := RelatedWork(o, bogus); err == nil {
		t.Fatal("RelatedWork should propagate input errors")
	}
}

func TestRunSchemePLM(t *testing.T) {
	o := testOpts()
	g, err := o.Input(generate.CoPapers)
	if err != nil {
		t.Fatal(err)
	}
	rs := RunScheme(g, PLMScheme, o)
	if rs.Modularity <= 0 || rs.Iterations == 0 {
		t.Fatalf("PLM run: %+v", rs)
	}
}

func TestRelatedWorkComparison(t *testing.T) {
	rows, err := RelatedWork(testOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 (paper's common inputs)", len(rows))
	}
	for _, r := range rows {
		if r.GrappoloQ <= 0 || r.PLMQ <= 0 {
			t.Fatalf("%s: bad modularities %+v", r.Input, r)
		}
		// §7 claim, with a small-scale noise band.
		if r.GrappoloQ < r.PLMQ-0.02 {
			t.Fatalf("%s: grappolo %.4f well below PLM %.4f", r.Input, r.GrappoloQ, r.PLMQ)
		}
	}
	var buf bytes.Buffer
	WriteRelatedWork(&buf, rows)
	if !strings.Contains(buf.String(), "plm Q") {
		t.Fatal("related-work header missing")
	}
}
