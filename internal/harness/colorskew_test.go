package harness

import (
	"bytes"
	"strings"
	"testing"

	"grappolo/internal/generate"
)

func TestColorSkewStudy(t *testing.T) {
	rows, err := ColorSkew(testOpts(), []generate.Input{generate.UK2002, generate.CNR})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Colors < 2 {
			t.Fatalf("%s: %d colors", r.Input, r.Colors)
		}
		if r.Vertex.RSD > r.Base.RSD+1e-9 {
			t.Fatalf("%s: vertex balancing raised vertex RSD %.4f -> %.4f",
				r.Input, r.Base.RSD, r.Vertex.RSD)
		}
		if r.Arc.ArcRSD > r.Base.ArcRSD+1e-9 {
			t.Fatalf("%s: arc balancing raised arc RSD %.4f -> %.4f",
				r.Input, r.Base.ArcRSD, r.Arc.ArcRSD)
		}
		// Each mode should win (or tie) on its own metric.
		if r.Arc.ArcRSD > r.Vertex.ArcRSD+1e-9 {
			t.Fatalf("%s: arc mode ArcRSD %.4f above vertex mode %.4f",
				r.Input, r.Arc.ArcRSD, r.Vertex.ArcRSD)
		}
	}
	var buf bytes.Buffer
	WriteColorSkew(&buf, rows)
	if !strings.Contains(buf.String(), "arc-balanced") {
		t.Fatal("text writer missing header")
	}
	buf.Reset()
	if err := WriteColorSkewCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "input,colors,layout,base_rsd") {
		t.Fatalf("csv output: %q", buf.String())
	}
}
