package harness

import (
	"fmt"
	"io"
	"time"

	"grappolo/internal/core"
	"grappolo/internal/generate"
	"grappolo/internal/quality"
)

// TrajectorySet holds the modularity-vs-iteration curves of one input for
// every scheme (the left columns of Figs. 3–6).
type TrajectorySet struct {
	Input  generate.Input
	Curves map[Scheme][]float64
}

// Trajectories computes convergence curves for the given inputs and schemes.
func Trajectories(o Options, inputs []generate.Input, schemes []Scheme) ([]TrajectorySet, error) {
	o = o.Defaults()
	var out []TrajectorySet
	for _, in := range inputs {
		g, err := o.Input(in)
		if err != nil {
			return nil, err
		}
		ts := TrajectorySet{Input: in, Curves: map[Scheme][]float64{}}
		for _, s := range schemes {
			ts.Curves[s] = RunScheme(g, s, o).Trajectory
		}
		out = append(out, ts)
	}
	return out, nil
}

// WriteTrajectories renders the curves as "iteration modularity" series.
func WriteTrajectories(w io.Writer, sets []TrajectorySet) {
	fmt.Fprintf(w, "Figs 3-6 (left): modularity vs iteration\n")
	for _, ts := range sets {
		for _, s := range AllSchemes() {
			curve, ok := ts.Curves[s]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%s/%s:", ts.Input, s)
			for _, q := range curve {
				fmt.Fprintf(w, " %.4f", q)
			}
			fmt.Fprintln(w)
		}
	}
}

// ScalingPoint is one (threads, runtime) sample.
type ScalingPoint struct {
	Workers int
	Runtime time.Duration
	// RebuildTime isolates the graph-rebuild step (Fig. 9).
	RebuildTime time.Duration
	Modularity  float64
}

// ScalingCurve holds a thread sweep for one input and scheme.
type ScalingCurve struct {
	Input  generate.Input
	Scheme Scheme
	Points []ScalingPoint
	// SerialTime is the serial reference runtime for absolute speedups.
	SerialTime time.Duration
}

// Scaling measures runtime versus worker count (right columns of Figs. 3–6
// and the speedup inputs of Figs. 7 and 9).
func Scaling(o Options, in generate.Input, s Scheme, workerCounts []int, withSerial bool) (ScalingCurve, error) {
	o = o.Defaults()
	g, err := o.Input(in)
	if err != nil {
		return ScalingCurve{}, err
	}
	curve := ScalingCurve{Input: in, Scheme: s}
	for _, wk := range workerCounts {
		ow := o
		ow.Workers = wk
		rs := RunScheme(g, s, ow)
		curve.Points = append(curve.Points, ScalingPoint{
			Workers:     wk,
			Runtime:     rs.Runtime,
			RebuildTime: rs.Breakdown.Rebuild,
			Modularity:  rs.Modularity,
		})
	}
	if withSerial {
		curve.SerialTime = RunScheme(g, Serial, o).Runtime
	}
	return curve, nil
}

// RelativeSpeedups computes speedup relative to the first point of the
// curve (the paper uses the 2-thread run as the reference in Fig. 7 left).
func (c ScalingCurve) RelativeSpeedups() []float64 {
	if len(c.Points) == 0 {
		return nil
	}
	ref := float64(c.Points[0].Runtime)
	out := make([]float64, len(c.Points))
	for i, p := range c.Points {
		if p.Runtime > 0 {
			out[i] = ref / float64(p.Runtime)
		}
	}
	return out
}

// AbsoluteSpeedups computes speedup over the serial reference (Fig. 7
// right). Returns nil if the serial time was not measured.
func (c ScalingCurve) AbsoluteSpeedups() []float64 {
	if c.SerialTime == 0 || len(c.Points) == 0 {
		return nil
	}
	out := make([]float64, len(c.Points))
	for i, p := range c.Points {
		if p.Runtime > 0 {
			out[i] = float64(c.SerialTime) / float64(p.Runtime)
		}
	}
	return out
}

// RebuildSpeedups computes the rebuild-step speedup relative to the first
// point (Fig. 9).
func (c ScalingCurve) RebuildSpeedups() []float64 {
	if len(c.Points) == 0 {
		return nil
	}
	ref := float64(c.Points[0].RebuildTime)
	out := make([]float64, len(c.Points))
	for i, p := range c.Points {
		if p.RebuildTime > 0 && ref > 0 {
			out[i] = ref / float64(p.RebuildTime)
		}
	}
	return out
}

// WriteScaling renders a scaling curve with relative/absolute speedups.
func WriteScaling(w io.Writer, c ScalingCurve) {
	fmt.Fprintf(w, "%s/%s scaling:\n", c.Input, c.Scheme)
	rel := c.RelativeSpeedups()
	abs := c.AbsoluteSpeedups()
	for i, p := range c.Points {
		fmt.Fprintf(w, "  workers=%-3d time=%-12s rel=%.2fx", p.Workers, p.Runtime.Round(time.Microsecond), rel[i])
		if abs != nil {
			fmt.Fprintf(w, " abs=%.2fx", abs[i])
		}
		fmt.Fprintf(w, " Q=%.4f\n", p.Modularity)
	}
	if c.SerialTime > 0 {
		fmt.Fprintf(w, "  serial time=%s\n", c.SerialTime.Round(time.Microsecond))
	}
}

// BreakdownPoint is a per-worker-count step breakdown (Fig. 8).
type BreakdownPoint struct {
	Workers   int
	Breakdown core.Breakdown
}

// BreakdownSweep measures the coloring/clustering/rebuild breakdown across
// worker counts for one input under baseline+VF+Color.
func BreakdownSweep(o Options, in generate.Input, workerCounts []int) ([]BreakdownPoint, error) {
	o = o.Defaults()
	g, err := o.Input(in)
	if err != nil {
		return nil, err
	}
	var out []BreakdownPoint
	for _, wk := range workerCounts {
		ow := o
		ow.Workers = wk
		rs := RunScheme(g, BaselineVFColor, ow)
		out = append(out, BreakdownPoint{Workers: wk, Breakdown: rs.Breakdown})
	}
	return out, nil
}

// WriteBreakdown renders Fig. 8-style rows.
func WriteBreakdown(w io.Writer, in generate.Input, pts []BreakdownPoint) {
	fmt.Fprintf(w, "Fig 8: runtime breakdown for %s\n", in)
	fmt.Fprintf(w, "%8s %14s %14s %14s %14s\n", "workers", "vf", "coloring", "clustering", "rebuild")
	for _, p := range pts {
		b := p.Breakdown
		fmt.Fprintf(w, "%8d %14s %14s %14s %14s\n", p.Workers,
			b.VF.Round(time.Microsecond), b.Coloring.Round(time.Microsecond),
			b.Clustering.Round(time.Microsecond), b.Rebuild.Round(time.Microsecond))
	}
}

// Profiles computes the Fig. 10 performance profiles over the given inputs:
// final modularity (higher better) and runtime (lower better) for the three
// parallel schemes plus serial.
func Profiles(o Options, inputs []generate.Input) (modularity, runtime map[string][]float64, err error) {
	o = o.Defaults()
	mods := map[string][]float64{}
	times := map[string][]float64{}
	for _, in := range inputs {
		g, gerr := o.Input(in)
		if gerr != nil {
			return nil, nil, gerr
		}
		for _, s := range AllSchemes() {
			rs := RunScheme(g, s, o)
			mods[string(s)] = append(mods[string(s)], rs.Modularity)
			times[string(s)] = append(times[string(s)], float64(rs.Runtime))
		}
	}
	modProf, err := quality.Profile(mods, false)
	if err != nil {
		return nil, nil, err
	}
	timeProf, err := quality.Profile(times, true)
	if err != nil {
		return nil, nil, err
	}
	return modProf, timeProf, nil
}

// WriteProfiles renders Fig. 10-style curves: for each scheme the sorted
// ratios-to-best plus the fraction of problems within factors 1, 1.5, 2, 3.
func WriteProfiles(w io.Writer, title string, prof map[string][]float64) {
	fmt.Fprintf(w, "Fig 10 (%s): performance profiles\n", title)
	taus := []float64{1.0, 1.5, 2.0, 3.0, 5.0}
	fmt.Fprintf(w, "%-20s", "scheme")
	for _, tau := range taus {
		fmt.Fprintf(w, " <=%.1fx", tau)
	}
	fmt.Fprintln(w)
	for _, s := range AllSchemes() {
		curve, ok := prof[string(s)]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-20s", s)
		for _, tau := range taus {
			fmt.Fprintf(w, " %5.0f%%", 100*quality.FractionWithin(curve, tau))
		}
		fmt.Fprintln(w)
	}
}
