package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers for the experiment tables, for plotting pipelines and
// regression tracking. Each writer emits a header row followed by one
// record per input, mirroring the text writers.

// WriteTable2CSV emits Table 2 as CSV.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"input", "parallel_q", "serial_q", "parallel_ns", "serial_ns", "speedup", "parallel_iterations"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			string(r.Input),
			fmtF(r.ParallelQ), fmtF(r.SerialQ),
			strconv.FormatInt(r.ParallelTime.Nanoseconds(), 10),
			strconv.FormatInt(r.SerialTime.Nanoseconds(), 10),
			fmtF(r.Speedup),
			strconv.Itoa(r.ParallelIterates),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV emits Table 3 as CSV.
func WriteTable3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"input", "specificity", "sensitivity", "overlap_quality", "rand_index"}); err != nil {
		return err
	}
	for _, r := range rows {
		m := r.Measures
		if err := cw.Write([]string{
			string(r.Input), fmtF(m.Specificity), fmtF(m.Sensitivity), fmtF(m.OverlapQ), fmtF(m.RandIndex),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTrajectoriesCSV emits the Figs. 3–6 convergence curves as long-form
// CSV: input, scheme, iteration, modularity.
func WriteTrajectoriesCSV(w io.Writer, sets []TrajectorySet) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"input", "scheme", "iteration", "modularity"}); err != nil {
		return err
	}
	for _, ts := range sets {
		for scheme, curve := range ts.Curves {
			for it, q := range curve {
				if err := cw.Write([]string{
					string(ts.Input), string(scheme), strconv.Itoa(it + 1), fmtF(q),
				}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalingCSV emits a scaling curve as CSV: input, scheme, workers,
// runtime_ns, rebuild_ns, modularity.
func WriteScalingCSV(w io.Writer, curves []ScalingCurve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"input", "scheme", "workers", "runtime_ns", "rebuild_ns", "modularity"}); err != nil {
		return err
	}
	for _, c := range curves {
		for _, p := range c.Points {
			if err := cw.Write([]string{
				string(c.Input), string(c.Scheme), strconv.Itoa(p.Workers),
				strconv.FormatInt(p.Runtime.Nanoseconds(), 10),
				strconv.FormatInt(p.RebuildTime.Nanoseconds(), 10),
				fmtF(p.Modularity),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return fmt.Sprintf("%.6f", v) }
