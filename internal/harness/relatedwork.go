package harness

import (
	"fmt"
	"io"
	"time"

	"grappolo/internal/generate"
)

// RelatedWorkRow compares the headline configuration against the PLM
// emulation — the §7 related-work claim: "our parallel implementation
// baseline + VF + Color delivers higher modularity than PLM for the inputs
// both tested — viz. coPapersDBLP, uk-2002, and Soc-LiveJournal".
type RelatedWorkRow struct {
	Input       generate.Input
	GrappoloQ   float64
	PLMQ        float64
	GrappoloT   time.Duration
	PLMT        time.Duration
	GrappoloIts int
	PLMIts      int
}

// RelatedWork runs the §7 comparison on the paper's three common inputs
// (or a caller-supplied subset).
func RelatedWork(o Options, inputs []generate.Input) ([]RelatedWorkRow, error) {
	o = o.Defaults()
	if inputs == nil {
		inputs = []generate.Input{generate.CoPapers, generate.UK2002, generate.LiveJournal}
	}
	var rows []RelatedWorkRow
	for _, in := range inputs {
		g, err := o.Input(in)
		if err != nil {
			return nil, err
		}
		gr := RunScheme(g, BaselineVFColor, o)
		plm := RunScheme(g, PLMScheme, o)
		rows = append(rows, RelatedWorkRow{
			Input:       in,
			GrappoloQ:   gr.Modularity,
			PLMQ:        plm.Modularity,
			GrappoloT:   gr.Runtime,
			PLMT:        plm.Runtime,
			GrappoloIts: gr.Iterations,
			PLMIts:      plm.Iterations,
		})
	}
	return rows, nil
}

// WriteRelatedWork renders the §7 comparison.
func WriteRelatedWork(w io.Writer, rows []RelatedWorkRow) {
	fmt.Fprintf(w, "Sec 7: baseline+VF+Color vs PLM emulation\n")
	fmt.Fprintf(w, "%-12s %12s %12s %6s %6s %12s %12s\n",
		"input", "grappolo Q", "plm Q", "g#it", "p#it", "grappolo t", "plm t")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12.6f %12.6f %6d %6d %12s %12s\n",
			r.Input, r.GrappoloQ, r.PLMQ, r.GrappoloIts, r.PLMIts,
			r.GrappoloT.Round(time.Microsecond), r.PLMT.Round(time.Microsecond))
	}
}
