package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"grappolo/internal/generate"
)

func TestTable2CSVRoundTrip(t *testing.T) {
	rows, err := Table2(testOpts(), []generate.Input{generate.MG1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "input" || recs[1][0] != "mg1" {
		t.Fatalf("records %v", recs)
	}
	if len(recs[1]) != 7 {
		t.Fatalf("row width %d", len(recs[1]))
	}
}

func TestTable3CSV(t *testing.T) {
	rows, err := Table3(testOpts(), []generate.Input{generate.MG1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable3CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rand_index") {
		t.Fatal("header missing")
	}
}

func TestTrajectoriesCSV(t *testing.T) {
	sets, err := Trajectories(testOpts(), []generate.Input{generate.MG1}, []Scheme{Serial, Baseline})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrajectoriesCSV(&buf, sets); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("only %d records", len(recs))
	}
	// Iterations must be 1-based increasing per (input, scheme).
	if recs[1][2] != "1" {
		t.Fatalf("first iteration %q", recs[1][2])
	}
}

func TestScalingCSV(t *testing.T) {
	curve, err := Scaling(testOpts(), generate.MG1, Baseline, []int{1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteScalingCSV(&buf, []ScalingCurve{curve}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[1][2] != "1" || recs[2][2] != "2" {
		t.Fatalf("worker columns %v", recs)
	}
}
