// Package harness runs the paper's experiments end to end: it generates the
// input suite, executes the serial reference and the three parallel variants
// (baseline, baseline+VF, baseline+VF+Color), collects convergence
// trajectories, runtimes, timing breakdowns and quality metrics, and formats
// them as the tables and figures of the evaluation section (§6).
//
// Every table and figure of the paper maps to one function here; see
// DESIGN.md §6 for the index. cmd/benchtables and the root benchmark file
// are thin wrappers over this package.
package harness

import (
	"fmt"
	"io"
	"time"

	"grappolo/internal/core"
	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/quality"
	"grappolo/internal/seq"
)

// Scheme names a configuration compared in the paper.
type Scheme string

const (
	// Serial is the serial Louvain reference [10].
	Serial Scheme = "serial"
	// Baseline is the parallel implementation with only the minimum-label
	// heuristic.
	Baseline Scheme = "baseline"
	// BaselineVF adds vertex-following preprocessing.
	BaselineVF Scheme = "baseline+vf"
	// BaselineVFColor adds coloring — the headline configuration.
	BaselineVFColor Scheme = "baseline+vf+color"
	// PLMScheme emulates the label-propagation parallel Louvain of Staudt &
	// Meyerhenke (paper ref. [26]) for the §7 related-work comparison:
	// asynchronous live-state moves, no coloring, no minimum-label rule.
	PLMScheme Scheme = "plm"
)

// ParallelSchemes lists the three parallel variants in paper order.
func ParallelSchemes() []Scheme { return []Scheme{Baseline, BaselineVF, BaselineVFColor} }

// AllSchemes lists serial plus the parallel variants.
func AllSchemes() []Scheme {
	return []Scheme{Serial, Baseline, BaselineVF, BaselineVFColor}
}

// RunStats is the scheme-independent summary of one run.
type RunStats struct {
	Scheme     Scheme
	Modularity float64
	Runtime    time.Duration
	Iterations int
	Phases     int
	Membership []int32
	// Trajectory is the concatenated per-iteration modularity across phases
	// (the X axis of the Figs. 3–6 convergence plots).
	Trajectory []float64
	// Breakdown is populated for parallel schemes (Fig. 8).
	Breakdown core.Breakdown
}

// Options configure harness runs.
type Options struct {
	Scale   generate.Scale
	Workers int
	Seed    uint64
	// ColoringCutoff overrides the coloring vertex cutoff; needed because
	// the paper's 100 K default would disable coloring entirely on the
	// laptop-scale suite. <= 0 keeps the core default.
	ColoringCutoff int
	// ColoredThreshold overrides the colored-phase threshold (Table 5).
	ColoredThreshold float64
	// MaxPhases/MaxIterations bound runaway experiments (0 = unlimited).
	MaxPhases     int
	MaxIterations int
	// Layout selects the arc layout the studies run under: the generated
	// input is converted to it and the engines build their coarse graphs in
	// it. Results are bit-identical across layouts (it is a pure memory
	// rearrangement), so layout-split study outputs differ only in runtime.
	Layout core.ArcLayout
}

// coreOptions translates harness options into core options for a scheme.
func (o Options) coreOptions(s Scheme) core.Options {
	var c core.Options
	switch s {
	case Baseline:
		c = core.Baseline(o.Workers)
	case BaselineVF:
		c = core.BaselineVF(o.Workers)
	case BaselineVFColor:
		c = core.BaselineVFColor(o.Workers)
	case PLMScheme:
		c = core.PLM(o.Workers)
	default:
		panic(fmt.Sprintf("harness: %q is not a parallel scheme", s))
	}
	if o.ColoringCutoff > 0 {
		c.ColoringVertexCutoff = o.ColoringCutoff
	}
	if o.ColoredThreshold > 0 {
		c.ColoredThreshold = o.ColoredThreshold
	}
	c.MaxPhases = o.MaxPhases
	c.MaxIterations = o.MaxIterations
	c.ArcLayout = o.Layout
	return c
}

// Defaults fills in the harness defaults: Small scale, 4 workers, coloring
// cutoff scaled for synthetic inputs.
func (o Options) Defaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.ColoringCutoff <= 0 {
		o.ColoringCutoff = 64 // color any phase with >= 64 vertices
	}
	return o
}

// Input generates (and caches per call) the named input at the configured
// scale, converted to the configured arc layout.
func (o Options) Input(in generate.Input) (*graph.Graph, error) {
	g, err := generate.Generate(in, o.Scale, o.Seed, o.Workers)
	if err != nil {
		return nil, err
	}
	if o.Layout == core.ArcLayoutInterleaved {
		g.SetLayout(graph.LayoutInterleaved, o.Workers)
	}
	return g, nil
}

// RunScheme executes one scheme on g and returns its stats.
func RunScheme(g *graph.Graph, s Scheme, o Options) RunStats {
	o = o.Defaults()
	start := time.Now()
	switch s {
	case Serial:
		res := seq.Run(g, seq.Options{
			MaxIterations: o.MaxIterations,
			MaxPhases:     o.MaxPhases,
		})
		rs := RunStats{
			Scheme:     s,
			Modularity: res.Modularity,
			Runtime:    time.Since(start),
			Iterations: res.TotalIterations,
			Phases:     len(res.Phases),
			Membership: res.Membership,
		}
		for _, ph := range res.Phases {
			rs.Trajectory = append(rs.Trajectory, ph.Modularity...)
		}
		return rs
	default:
		res := core.Run(g, o.coreOptions(s))
		rs := RunStats{
			Scheme:     s,
			Modularity: res.Modularity,
			Runtime:    time.Since(start),
			Iterations: res.TotalIterations,
			Phases:     len(res.Phases),
			Membership: res.Membership,
			Breakdown:  res.Timing,
		}
		for _, ph := range res.Phases {
			rs.Trajectory = append(rs.Trajectory, ph.Modularity...)
		}
		return rs
	}
}

// Table1Row is one row of the input-statistics table.
type Table1Row struct {
	Input generate.Input
	Stats graph.Stats
}

// Table1 computes the suite's input statistics (paper Table 1).
func Table1(o Options) ([]Table1Row, error) {
	o = o.Defaults()
	rows := make([]Table1Row, 0, len(generate.Suite()))
	for _, in := range generate.Suite() {
		g, err := o.Input(in)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{Input: in, Stats: graph.ComputeStats(g)})
	}
	return rows, nil
}

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: input statistics (synthetic analogs)\n")
	fmt.Fprintf(w, "%-12s %12s %14s %8s %8s %8s\n", "input", "n", "M", "maxdeg", "avgdeg", "rsd")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12d %14d %8d %8.3f %8.3f\n",
			r.Input, r.Stats.N, r.Stats.M, r.Stats.MaxDeg, r.Stats.AvgDeg, r.Stats.RSD)
	}
}

// Table2Row compares parallel (8 threads in the paper) against serial.
type Table2Row struct {
	Input            generate.Input
	ParallelQ        float64
	SerialQ          float64
	ParallelTime     time.Duration
	SerialTime       time.Duration
	Speedup          float64
	ParallelIterates int
}

// Table2 reproduces the serial-vs-parallel comparison (paper Table 2) for
// the given inputs using the baseline+VF+Color scheme.
func Table2(o Options, inputs []generate.Input) ([]Table2Row, error) {
	o = o.Defaults()
	var rows []Table2Row
	for _, in := range inputs {
		g, err := o.Input(in)
		if err != nil {
			return nil, err
		}
		par := RunScheme(g, BaselineVFColor, o)
		ser := RunScheme(g, Serial, o)
		row := Table2Row{
			Input:            in,
			ParallelQ:        par.Modularity,
			SerialQ:          ser.Modularity,
			ParallelTime:     par.Runtime,
			SerialTime:       ser.Runtime,
			ParallelIterates: par.Iterations,
		}
		if par.Runtime > 0 {
			row.Speedup = float64(ser.Runtime) / float64(par.Runtime)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteTable2 renders Table 2.
func WriteTable2(w io.Writer, rows []Table2Row, workers int) {
	fmt.Fprintf(w, "Table 2: parallel (baseline+VF+Color, %d workers) vs serial Louvain\n", workers)
	fmt.Fprintf(w, "%-12s %12s %12s %14s %14s %9s\n",
		"input", "parallel Q", "serial Q", "parallel t", "serial t", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12.6f %12.6f %14s %14s %8.2fx\n",
			r.Input, r.ParallelQ, r.SerialQ, r.ParallelTime.Round(time.Microsecond),
			r.SerialTime.Round(time.Microsecond), r.Speedup)
	}
}

// Table3Row holds the qualitative comparison of §6.2.3.
type Table3Row struct {
	Input    generate.Input
	Measures quality.Measures
}

// Table3 compares the parallel output's composition against the serial
// output (paper Table 3; the paper evaluates CNR and MG1).
func Table3(o Options, inputs []generate.Input) ([]Table3Row, error) {
	o = o.Defaults()
	var rows []Table3Row
	for _, in := range inputs {
		g, err := o.Input(in)
		if err != nil {
			return nil, err
		}
		ser := RunScheme(g, Serial, o)
		par := RunScheme(g, BaselineVFColor, o)
		pc, err := quality.ComparePartitions(ser.Membership, par.Membership)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Input: in, Measures: pc.Derive()})
	}
	return rows, nil
}

// WriteTable3 renders Table 3.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3: parallel vs serial community composition\n")
	fmt.Fprintf(w, "%-12s %8s %8s %8s %10s\n", "input", "SP%", "SE%", "OQ%", "Rand%")
	for _, r := range rows {
		m := r.Measures
		fmt.Fprintf(w, "%-12s %8.2f %8.2f %8.2f %10.2f\n",
			r.Input, 100*m.Specificity, 100*m.Sensitivity, 100*m.OverlapQ, 100*m.RandIndex)
	}
}

// Table4Row compares first-phase-only against multi-phase coloring.
type Table4Row struct {
	Input      generate.Input
	FirstQMin  float64
	FirstQMax  float64
	FirstTime  time.Duration
	FirstIters int
	MultiQMin  float64
	MultiQMax  float64
	MultiTime  time.Duration
	MultiIters int
}

// Table4 reproduces the multi-phase-coloring study (paper Table 4, 2
// threads, repeated runs reported as [min, max] modularity).
func Table4(o Options, inputs []generate.Input, repeats int) ([]Table4Row, error) {
	o = o.Defaults()
	if repeats < 1 {
		repeats = 1
	}
	var rows []Table4Row
	for _, in := range inputs {
		g, err := o.Input(in)
		if err != nil {
			return nil, err
		}
		row := Table4Row{Input: in}
		first := o.coreOptions(BaselineVFColor)
		first.Coloring = core.ColorFirstPhase
		multi := o.coreOptions(BaselineVFColor)
		row.FirstQMin, row.FirstQMax, row.FirstTime, row.FirstIters = repeatRuns(g, first, repeats)
		row.MultiQMin, row.MultiQMax, row.MultiTime, row.MultiIters = repeatRuns(g, multi, repeats)
		rows = append(rows, row)
	}
	return rows, nil
}

func repeatRuns(g *graph.Graph, opts core.Options, repeats int) (qmin, qmax float64, total time.Duration, iters int) {
	qmin, qmax = 2, -2
	// One pooled engine across the repeats: exactly the repeated-run
	// workload Engine exists for, and the recycled result keeps the
	// [min, max] sweeps allocation-free after the first run.
	eng := core.NewEngine(opts)
	var res *core.Result
	for r := 0; r < repeats; r++ {
		start := time.Now()
		res = eng.RunInto(g, res)
		total += time.Since(start)
		if res.Modularity < qmin {
			qmin = res.Modularity
		}
		if res.Modularity > qmax {
			qmax = res.Modularity
		}
		iters = res.TotalIterations
	}
	total /= time.Duration(repeats)
	return qmin, qmax, total, iters
}

// WriteTable4 renders Table 4.
func WriteTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4: first-phase vs multi-phase coloring\n")
	fmt.Fprintf(w, "%-12s | %-28s | %-28s\n", "input", "first-phase coloring", "multi-phase coloring")
	fmt.Fprintf(w, "%-12s | %18s %9s %4s | %18s %9s %4s\n",
		"", "[minQ,maxQ]", "time", "#it", "[minQ,maxQ]", "time", "#it")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s | [%.4f, %.4f] %9s %4d | [%.4f, %.4f] %9s %4d\n",
			r.Input,
			r.FirstQMin, r.FirstQMax, r.FirstTime.Round(time.Microsecond), r.FirstIters,
			r.MultiQMin, r.MultiQMax, r.MultiTime.Round(time.Microsecond), r.MultiIters)
	}
}

// Table5Row compares colored-phase thresholds.
type Table5Row struct {
	Input       generate.Input
	FineQMin    float64
	FineQMax    float64
	FineTime    time.Duration
	FineIters   int
	CoarseQMin  float64
	CoarseQMax  float64
	CoarseTime  time.Duration
	CoarseIters int
}

// Table5 reproduces the threshold study (paper Table 5): colored-phase
// modularity-gain threshold 1e-4 ("fine") vs 1e-2 ("coarse").
func Table5(o Options, inputs []generate.Input, repeats int) ([]Table5Row, error) {
	o = o.Defaults()
	if repeats < 1 {
		repeats = 1
	}
	var rows []Table5Row
	for _, in := range inputs {
		g, err := o.Input(in)
		if err != nil {
			return nil, err
		}
		fine := o.coreOptions(BaselineVFColor)
		fine.ColoredThreshold = 1e-4
		coarse := o.coreOptions(BaselineVFColor)
		coarse.ColoredThreshold = 1e-2
		row := Table5Row{Input: in}
		row.FineQMin, row.FineQMax, row.FineTime, row.FineIters = repeatRuns(g, fine, repeats)
		row.CoarseQMin, row.CoarseQMax, row.CoarseTime, row.CoarseIters = repeatRuns(g, coarse, repeats)
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteTable5 renders Table 5.
func WriteTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintf(w, "Table 5: colored-phase modularity-gain threshold 1e-4 vs 1e-2\n")
	fmt.Fprintf(w, "%-12s | %-28s | %-28s\n", "input", "threshold 1e-4", "threshold 1e-2")
	fmt.Fprintf(w, "%-12s | %18s %9s %4s | %18s %9s %4s\n",
		"", "[minQ,maxQ]", "time", "#it", "[minQ,maxQ]", "time", "#it")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s | [%.4f, %.4f] %9s %4d | [%.4f, %.4f] %9s %4d\n",
			r.Input,
			r.FineQMin, r.FineQMax, r.FineTime.Round(time.Microsecond), r.FineIters,
			r.CoarseQMin, r.CoarseQMax, r.CoarseTime.Round(time.Microsecond), r.CoarseIters)
	}
}
