// Package cnm implements the Clauset–Newman–Moore greedy agglomerative
// community-detection algorithm (Phys. Rev. E 70, 066111 (2004)) — the
// classical modularity-maximization baseline the paper's related-work
// section (§7) positions the Louvain method against: where Louvain lets
// individual vertices migrate (and revisit decisions), CNM greedily merges
// whole communities by the best immediate modularity gain and never undoes
// a merge.
//
// The implementation is the standard one: a max-heap of candidate merges
// with lazy invalidation, symmetric per-community maps of inter-community
// edge weight, and merge-smaller-into-larger to bound total update work.
// Results use the same Eq. (3) modularity convention as the seq and core
// packages, so scores are directly comparable.
package cnm

import (
	"container/heap"
	"fmt"

	"grappolo/internal/graph"
)

// Options control a CNM run.
type Options struct {
	// MaxMerges caps the number of merges (0 = unlimited: run until no
	// positive-gain merge remains).
	MaxMerges int
}

// Result is the output of a CNM run.
type Result struct {
	// Membership assigns every vertex a dense community id.
	Membership []int32
	// NumCommunities is the number of communities in Membership.
	NumCommunities int
	// Modularity of the final partitioning (maintained incrementally;
	// tests cross-check it against the direct Eq. (3) computation).
	Modularity float64
	// Merges is the number of merges performed.
	Merges int
}

// candidate is one potential merge. Entries go stale when either community
// is absorbed or its cached gain is outdated; pops compare against the live
// gain and re-push corrected entries.
type candidate struct {
	gain float64
	a, b int32
}

type candHeap []candidate

func (h candHeap) Len() int           { return len(h) }
func (h candHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h candHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)        { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes CNM on g.
func Run(g *graph.Graph, opts Options) *Result {
	n := g.N()
	res := &Result{Membership: make([]int32, n)}
	if n == 0 {
		return res
	}
	m2 := g.TotalWeight()
	if m2 == 0 {
		for i := range res.Membership {
			res.Membership[i] = int32(i)
		}
		res.NumCommunities = n
		return res
	}

	// Live community state. eW[a][b] holds the TOTAL edge weight between
	// live communities a and b, mirrored in both maps so merges can rewrite
	// every reference; degW[a] is a's community degree (a_C); parent is a
	// union-find for final membership resolution.
	parent := make([]int32, n)
	eW := make([]map[int32]float64, n)
	degW := make([]float64, n)
	var q float64
	for i := 0; i < n; i++ {
		parent[i] = int32(i)
		eW[i] = make(map[int32]float64, g.OutDegree(i))
		degW[i] = g.Degree(i)
	}
	for i := 0; i < n; i++ {
		nbr, wts := g.Neighbors(i)
		for t, j := range nbr {
			if int(j) == i {
				q += wts[t] / m2 // singleton self-loop contributes to Q's trace
				continue
			}
			eW[i][j] += wts[t] // each arc direction seeds its own row → symmetric
		}
	}
	for i := 0; i < n; i++ {
		f := degW[i] / m2
		q -= f * f
	}

	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	gainOf := func(a, b int32) float64 {
		// Merging a and b adds both directions of their inter-weight to the
		// within term and cross null-model products:
		// ΔQ = 2·w_ab/2m − 2·(a_a/2m)(a_b/2m).
		return 2*eW[a][b]/m2 - 2*(degW[a]/m2)*(degW[b]/m2)
	}

	h := &candHeap{}
	for i := 0; i < n; i++ {
		for j := range eW[i] {
			if int32(i) < j {
				heap.Push(h, candidate{gain: gainOf(int32(i), j), a: int32(i), b: j})
			}
		}
	}

	for h.Len() > 0 {
		if opts.MaxMerges > 0 && res.Merges >= opts.MaxMerges {
			break
		}
		top := heap.Pop(h).(candidate)
		if top.gain <= 0 {
			break // heap max non-positive → no improving merge remains
		}
		a, b := find(top.a), find(top.b)
		if a == b {
			continue
		}
		live := gainOf(a, b)
		if live != top.gain {
			if live > 0 {
				heap.Push(h, candidate{gain: live, a: a, b: b})
			}
			continue
		}
		// Commit: merge the smaller map into the larger.
		if len(eW[a]) < len(eW[b]) {
			a, b = b, a
		}
		q += live
		res.Merges++
		parent[b] = a
		delete(eW[a], b)
		delete(eW[b], a)
		for c, w := range eW[b] {
			// c is live (maps are rewritten on every merge).
			eW[a][c] += w
			delete(eW[c], b)
			eW[c][a] += w
		}
		degW[a] += degW[b]
		degW[b] = 0
		eW[b] = nil
		for c := range eW[a] {
			if gn := gainOf(a, c); gn > 0 {
				heap.Push(h, candidate{gain: gn, a: a, b: c})
			}
		}
	}

	remap := make(map[int32]int32)
	for i := 0; i < n; i++ {
		root := find(int32(i))
		d, ok := remap[root]
		if !ok {
			d = int32(len(remap))
			remap[root] = d
		}
		res.Membership[i] = d
	}
	res.NumCommunities = len(remap)
	res.Modularity = q
	return res
}

// Validate cross-checks a result's incremental modularity against an
// externally recomputed value (tests use seq.Modularity).
func Validate(res *Result, recomputed float64) error {
	if diff := res.Modularity - recomputed; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("cnm: incremental Q %v != recomputed %v", res.Modularity, recomputed)
	}
	return nil
}
