package cnm

import (
	"math"
	"testing"
	"testing/quick"

	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/par"
	"grappolo/internal/seq"
)

func twoCliques() *graph.Graph {
	b := graph.NewBuilder(10)
	for base := 0; base <= 5; base += 5 {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(int32(base+i), int32(base+j), 1)
			}
		}
	}
	b.AddEdge(0, 5, 1)
	return b.Build(2)
}

func TestCNMTwoCliques(t *testing.T) {
	g := twoCliques()
	res := Run(g, Options{})
	if res.NumCommunities != 2 {
		t.Fatalf("found %d communities, want 2 (%v)", res.NumCommunities, res.Membership)
	}
	want := 40.0/42.0 - 0.5
	if math.Abs(res.Modularity-want) > 1e-9 {
		t.Fatalf("Q=%v want %v", res.Modularity, want)
	}
	if err := Validate(res, seq.Modularity(g, res.Membership, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestCNMIncrementalQMatchesDirect(t *testing.T) {
	for _, in := range []generate.Input{generate.CNR, generate.MG1, generate.EuropeOSM} {
		g := generate.MustGenerate(in, generate.Small, 0, 2)
		res := Run(g, Options{})
		direct := seq.Modularity(g, res.Membership, 1)
		if err := Validate(res, direct); err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if res.Modularity <= 0 {
			t.Fatalf("%s: Q=%v", in, res.Modularity)
		}
	}
}

func TestCNMNeverDecreasesFromSingletons(t *testing.T) {
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 2)
	res := Run(g, Options{})
	singletons := make([]int32, g.N())
	for i := range singletons {
		singletons[i] = int32(i)
	}
	q0 := seq.Modularity(g, singletons, 1)
	if res.Modularity < q0 {
		t.Fatalf("CNM ended below the singleton modularity: %v < %v", res.Modularity, q0)
	}
}

func TestCNMMaxMerges(t *testing.T) {
	g := twoCliques()
	res := Run(g, Options{MaxMerges: 3})
	if res.Merges != 3 {
		t.Fatalf("merges=%d want 3", res.Merges)
	}
	if res.NumCommunities != 7 {
		t.Fatalf("communities=%d want 7", res.NumCommunities)
	}
}

func TestCNMEdgeCases(t *testing.T) {
	empty := Run(graph.NewBuilder(0).Build(1), Options{})
	if empty.NumCommunities != 0 {
		t.Fatalf("empty: %+v", empty)
	}
	edgeless := Run(graph.NewBuilder(4).Build(1), Options{})
	if edgeless.NumCommunities != 4 || edgeless.Merges != 0 {
		t.Fatalf("edgeless: %+v", edgeless)
	}
	// Self-loop-only graph: no merges possible, Q consistent.
	b := graph.NewBuilder(2)
	b.AddEdge(0, 0, 2)
	b.AddEdge(1, 1, 3)
	g := b.Build(1)
	res := Run(g, Options{})
	if res.NumCommunities != 2 {
		t.Fatalf("self-loops merged: %+v", res)
	}
	if err := Validate(res, seq.Modularity(g, res.Membership, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestCNMSingleEdge(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 1)
	res := Run(b.Build(1), Options{})
	if res.NumCommunities != 1 {
		t.Fatalf("single edge: %d communities", res.NumCommunities)
	}
	// Q of one community covering everything = 0.
	if math.Abs(res.Modularity) > 1e-12 {
		t.Fatalf("Q=%v want 0", res.Modularity)
	}
}

func TestCNMPropertyValidAndConsistent(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		rng := par.NewRNG(seed)
		n := int(nRaw%80) + 2
		b := graph.NewBuilder(n)
		for e := 0; e < int(mRaw%500); e++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), 0.5+rng.Float64())
		}
		g := b.Build(2)
		res := Run(g, Options{})
		if len(res.Membership) != n {
			return false
		}
		direct := seq.Modularity(g, res.Membership, 1)
		return math.Abs(direct-res.Modularity) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLouvainBeatsOrMatchesCNM(t *testing.T) {
	// The paper (§7): "the Louvain approach is able to produce communities
	// with better modularity scores than the other agglomerative
	// strategies". Allow equality within noise.
	wins := 0
	for _, in := range []generate.Input{generate.CNR, generate.CoPapers, generate.MG1} {
		g := generate.MustGenerate(in, generate.Small, 0, 2)
		louvain := seq.Run(g, seq.Options{})
		agglom := Run(g, Options{})
		if louvain.Modularity < agglom.Modularity-0.03 {
			t.Fatalf("%s: Louvain %.4f well below CNM %.4f", in, louvain.Modularity, agglom.Modularity)
		}
		if louvain.Modularity > agglom.Modularity+1e-9 {
			wins++
		}
		t.Logf("%-10s louvain=%.4f cnm=%.4f", in, louvain.Modularity, agglom.Modularity)
	}
	if wins == 0 {
		t.Log("note: CNM matched Louvain on all three small inputs (paper's claim is input-dependent)")
	}
}
