package par

import "slices"

// SparseAccum is a reusable, allocation-free sparse accumulator over int32
// keys drawn from a bounded universe [0, universe): a flat []float64 value
// array indexed directly by key, a dense []int32 list of the keys touched
// since the last Reset (in first-touch order), and a []int32 generation
// stamp per slot marking which "epoch" last wrote it.
//
// It replaces the per-vertex neighbor-community hash map the paper
// identifies as the dominant cost of the local-move phase (§5.5): Add is a
// single array index plus a stamp compare instead of a hash probe, Reset is
// O(1) amortized (bump the generation, truncate the key list — stale values
// are never cleared, merely outdated), and no allocation ever happens after
// construction as long as the touched-key count stays within the declared
// maxKeys. This is the standard flat-accumulator trick of later parallel
// Louvain codes (Vite, NetworKit's PLM).
//
// A SparseAccum is not safe for concurrent use; give each worker its own
// (see ForChunkWorker's worker index).
type SparseAccum struct {
	vals []float64 // vals[k] is meaningful iff mark[k] == gen
	mark []int32   // generation stamp per key slot
	keys []int32   // keys touched since Reset, first-touch order
	gen  int32     // current epoch; starts at 1 so zeroed marks are stale
}

// NewSparseAccum returns an accumulator for keys in [0, universe) able to
// hold maxKeys distinct touched keys between Resets without reallocating.
// maxKeys <= 0 or > universe defaults to universe.
func NewSparseAccum(universe, maxKeys int) *SparseAccum {
	if universe < 0 {
		universe = 0
	}
	if maxKeys <= 0 || maxKeys > universe {
		maxKeys = universe
	}
	return &SparseAccum{
		vals: make([]float64, universe),
		mark: make([]int32, universe),
		keys: make([]int32, 0, maxKeys),
		gen:  1,
	}
}

// Universe returns the current key-space size.
func (a *SparseAccum) Universe() int { return len(a.vals) }

// Grow extends the key space to at least universe keys in place. Keys touched
// in the current epoch keep their values; new slots start stale (their zero
// stamp never matches a live generation). It lets a pooled accumulator follow
// a growing universe — e.g. an Engine reused on a larger graph — without
// discarding the amortized key-list capacity already built up.
func (a *SparseAccum) Grow(universe int) {
	if universe <= len(a.vals) {
		return
	}
	vals := make([]float64, universe)
	copy(vals, a.vals)
	mark := make([]int32, universe)
	copy(mark, a.mark)
	a.vals, a.mark = vals, mark
}

// Reset forgets all touched keys in O(1): it bumps the generation so every
// slot's stamp becomes stale and truncates the key list. Values are left in
// place — they are unreadable until their slot is re-stamped by Add/Ensure.
func (a *SparseAccum) Reset() {
	a.keys = a.keys[:0]
	if a.gen == 1<<31-1 { // int32 exhaustion after ~2^31 Resets: re-zero stamps
		for i := range a.mark {
			a.mark[i] = 0
		}
		a.gen = 0
	}
	a.gen++
}

// Ensure registers key k with value 0 if it has not been touched this epoch.
// Used to pin a vertex's own community at keys[0] even when no neighbor
// shares it (e_{i→C(i)\{i}} may legitimately be 0).
func (a *SparseAccum) Ensure(k int32) {
	if a.mark[k] != a.gen {
		a.mark[k] = a.gen
		a.vals[k] = 0
		a.keys = append(a.keys, k)
	}
}

// Add accumulates w onto key k, registering k on first touch.
func (a *SparseAccum) Add(k int32, w float64) {
	if a.mark[k] == a.gen {
		a.vals[k] += w
		return
	}
	a.mark[k] = a.gen
	a.vals[k] = w
	a.keys = append(a.keys, k)
}

// Get returns the accumulated value for k, or 0 if k is untouched.
func (a *SparseAccum) Get(k int32) float64 {
	if a.mark[k] != a.gen {
		return 0
	}
	return a.vals[k]
}

// Len returns the number of distinct keys touched since Reset.
func (a *SparseAccum) Len() int { return len(a.keys) }

// Keys returns the touched keys in first-touch order. The slice aliases
// internal storage: it is valid until the next Reset, and callers may
// reorder it in place (e.g. sort it) — values stay addressable via Get.
func (a *SparseAccum) Keys() []int32 { return a.keys }

// SortInt32 sorts a small int32 slice ascending: insertion sort for the
// typically tiny coarsened/accumulator rows, stdlib pdqsort for the
// occasional hub row. No closure-based sort.Slice on hot paths.
func SortInt32(v []int32) {
	if len(v) <= 24 {
		for i := 1; i < len(v); i++ {
			x := v[i]
			j := i - 1
			for j >= 0 && v[j] > x {
				v[j+1] = v[j]
				j--
			}
			v[j+1] = x
		}
		return
	}
	slices.Sort(v)
}
