package par

import "slices"

// SparseAccum is a reusable, allocation-free sparse accumulator over int32
// keys drawn from a bounded universe [0, universe): a flat slot array
// indexed directly by key, each slot packing the accumulated value together
// with a generation stamp marking which "epoch" last wrote it, plus a dense
// []int32 list of the keys touched since the last Reset (in first-touch
// order).
//
// It replaces the per-vertex neighbor-community hash map the paper
// identifies as the dominant cost of the local-move phase (§5.5): Add is a
// single array index plus a stamp compare instead of a hash probe, Reset is
// O(1) amortized (bump the generation, truncate the key list — stale values
// are never cleared, merely outdated), and no allocation ever happens after
// construction as long as the touched-key count stays within the declared
// maxKeys. This is the standard flat-accumulator trick of later parallel
// Louvain codes (Vite, NetworKit's PLM).
//
// The stamp and value are deliberately INTERLEAVED in one 16-byte slot
// rather than held in parallel arrays: every Add reads the stamp and then
// touches the value, and with split arrays that is two scattered cache
// lines per arc of the sweep hot loop. One packed slot makes it one line
// (and one bounds check), which measurably speeds up the decide kernels —
// the same locality argument as the graph's interleaved arc layout.
//
// A SparseAccum is not safe for concurrent use; give each worker its own
// (see ForChunkWorker's worker index).
type SparseAccum struct {
	slots []accumSlot // slots[k].val is meaningful iff slots[k].mark == gen
	keys  []int32     // keys touched since Reset, first-touch order
	gen   int32       // current epoch; starts at 1 so zeroed stamps are stale
}

// accumSlot packs one key's accumulated value with its generation stamp so
// the stamp check and the value update share a cache line. 16 bytes after
// alignment padding.
type accumSlot struct {
	mark int32
	val  float64
}

// NewSparseAccum returns an accumulator for keys in [0, universe) able to
// hold maxKeys distinct touched keys between Resets without reallocating.
// maxKeys <= 0 or > universe defaults to universe.
func NewSparseAccum(universe, maxKeys int) *SparseAccum {
	if universe < 0 {
		universe = 0
	}
	if maxKeys <= 0 || maxKeys > universe {
		maxKeys = universe
	}
	return &SparseAccum{
		slots: make([]accumSlot, universe),
		keys:  make([]int32, 0, maxKeys),
		gen:   1,
	}
}

// Universe returns the current key-space size.
func (a *SparseAccum) Universe() int { return len(a.slots) }

// Grow extends the key space to at least universe keys in place. Keys touched
// in the current epoch keep their values; new slots start stale (their zero
// stamp never matches a live generation). It lets a pooled accumulator follow
// a growing universe — e.g. an Engine reused on a larger graph — without
// discarding the amortized key-list capacity already built up.
func (a *SparseAccum) Grow(universe int) {
	if universe <= len(a.slots) {
		return
	}
	slots := make([]accumSlot, universe)
	copy(slots, a.slots)
	a.slots = slots
}

// Reset forgets all touched keys in O(1): it bumps the generation so every
// slot's stamp becomes stale and truncates the key list. Values are left in
// place — they are unreadable until their slot is re-stamped by Add/Ensure.
//
//grappolo:hotpath
func (a *SparseAccum) Reset() {
	a.keys = a.keys[:0]
	if a.gen == 1<<31-1 { // int32 exhaustion after ~2^31 Resets: re-zero stamps
		for i := range a.slots {
			a.slots[i].mark = 0
		}
		a.gen = 0
	}
	a.gen++
}

// Ensure registers key k with value 0 if it has not been touched this epoch.
// Used to pin a vertex's own community at keys[0] even when no neighbor
// shares it (e_{i→C(i)\{i}} may legitimately be 0).
//
//grappolo:hotpath
func (a *SparseAccum) Ensure(k int32) {
	s := &a.slots[k]
	if s.mark != a.gen {
		s.mark = a.gen
		s.val = 0
		a.keys = append(a.keys, k)
	}
}

// Add accumulates w onto key k, registering k on first touch.
//
//grappolo:hotpath
func (a *SparseAccum) Add(k int32, w float64) {
	s := &a.slots[k]
	if s.mark == a.gen {
		s.val += w
		return
	}
	s.mark = a.gen
	s.val = w
	a.keys = append(a.keys, k)
}

// Val returns the accumulated value for a key KNOWN to be touched this
// epoch — one returned by Keys(), or one passed to Ensure/Add since the
// last Reset. It skips the staleness check Get pays, which matters in the
// decide selection loop where every candidate community is by construction
// a touched key. Reading an untouched key returns garbage from an earlier
// epoch; use Get when in doubt.
//
//grappolo:hotpath
func (a *SparseAccum) Val(k int32) float64 { return a.slots[k].val }

// Get returns the accumulated value for k, or 0 if k is untouched.
//
//grappolo:hotpath
func (a *SparseAccum) Get(k int32) float64 {
	s := &a.slots[k]
	if s.mark != a.gen {
		return 0
	}
	return s.val
}

// Len returns the number of distinct keys touched since Reset.
//
//grappolo:hotpath
func (a *SparseAccum) Len() int { return len(a.keys) }

// Keys returns the touched keys in first-touch order. The slice aliases
// internal storage: it is valid until the next Reset, and callers may
// reorder it in place (e.g. sort it) — values stay addressable via Get.
//
//grappolo:hotpath
func (a *SparseAccum) Keys() []int32 { return a.keys }

// SortInt32 sorts a small int32 slice ascending: insertion sort for the
// typically tiny coarsened/accumulator rows, stdlib pdqsort for the
// occasional hub row. No closure-based sort.Slice on hot paths.
func SortInt32(v []int32) {
	if len(v) <= 24 {
		for i := 1; i < len(v); i++ {
			x := v[i]
			j := i - 1
			for j >= 0 && v[j] > x {
				v[j+1] = v[j]
				j--
			}
			v[j+1] = x
		}
		return
	}
	slices.Sort(v)
}
