package par

import (
	"sync/atomic"
	"testing"
)

type stagesTestCtx struct {
	counts []int
	// visits[s][i] counts how often stage s's item i was handed to a body.
	visits [][]atomic.Int32
	// done[s] counts items of stage s completed; bodies of stage s+1 assert
	// it reached counts[s] before they run (the inter-stage barrier).
	done     []atomic.Int64
	failures atomic.Int64
	maxW     atomic.Int32
}

func stagesTestCount(c *stagesTestCtx, s int) int { return c.counts[s] }

func stagesTestBody(c *stagesTestCtx, s, w, lo, hi int) {
	if s > 0 && c.done[s-1].Load() != int64(c.counts[s-1]) {
		c.failures.Add(1) // previous stage not fully complete: barrier broken
	}
	if int32(w) > c.maxW.Load() {
		c.maxW.Store(int32(w))
	}
	for i := lo; i < hi; i++ {
		c.visits[s][i].Add(1)
	}
	c.done[s].Add(int64(hi - lo))
}

func TestForStagesCtxCoverageAndBarrier(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		counts := []int{977, 3, 0, 1, 4096, 17, 0, 2048}
		c := &stagesTestCtx{counts: counts}
		c.visits = make([][]atomic.Int32, len(counts))
		for s, n := range counts {
			c.visits[s] = make([]atomic.Int32, n)
		}
		c.done = make([]atomic.Int64, len(counts))

		ForStagesCtx(c, len(counts), stagesTestCount, workers, stagesTestBody)

		if f := c.failures.Load(); f != 0 {
			t.Fatalf("workers=%d: %d bodies ran before their previous stage completed", workers, f)
		}
		for s, n := range counts {
			for i := 0; i < n; i++ {
				if got := c.visits[s][i].Load(); got != 1 {
					t.Fatalf("workers=%d: stage %d item %d visited %d times, want 1", workers, s, i, got)
				}
			}
		}
		if w := int(c.maxW.Load()); w >= Workers(workers, 4096) {
			t.Fatalf("workers=%d: saw worker index %d, want < %d", workers, w, Workers(workers, 4096))
		}
	}
}

func TestForStagesCtxNoStages(t *testing.T) {
	// Must be a no-op, not a hang.
	ForStagesCtx(&stagesTestCtx{}, 0, stagesTestCount, 4, stagesTestBody)
}

// TestForStagesCtxSingleWorkerZeroAlloc pins the captureless-body contract
// shared by every ...Ctx form: one effective worker runs the stages inline
// without allocating, which is what keeps merged small color sets inside
// the engine's warm-run zero-alloc envelope.
func TestForStagesCtxSingleWorkerZeroAlloc(t *testing.T) {
	counts := []int{64, 3, 9}
	c := &stagesTestCtx{counts: counts}
	c.visits = make([][]atomic.Int32, len(counts))
	for s, n := range counts {
		c.visits[s] = make([]atomic.Int32, n)
	}
	c.done = make([]atomic.Int64, len(counts))
	allocs := testing.AllocsPerRun(20, func() {
		ForStagesCtx(c, len(c.counts), stagesTestCount, 1, stagesTestBody)
	})
	if allocs != 0 {
		t.Fatalf("single-worker ForStagesCtx allocates %v per call, want 0", allocs)
	}
}
