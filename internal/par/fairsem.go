package par

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned by AcquireLimited when the semaphore's wait
// queue already holds the caller's limit of live waiters. It is the
// primitive behind fast load shedding: the caller learns immediately —
// without enqueuing, without a timer — that admission would exceed the
// queue depth it is prepared to tolerate.
var ErrQueueFull = errors.New("par: fair semaphore queue is full")

// FairSem is a FIFO counting semaphore: permits are granted to waiters in
// strict arrival order, so a burst of acquirers drains in the order it
// arrived no matter how the scheduler interleaves them. It is the admission
// primitive behind the serving layer's fairness guarantee — a plain
// channel-based semaphore leaves the grant order to the runtime, which is
// FIFO today but undocumented, and offers no way to observe queue state.
//
// Cancellation never loses a permit: a waiter whose context fires before it
// is granted removes itself from the queue (its turn passes to the next
// waiter in line), and a waiter whose grant races with its cancellation
// hands the permit straight on to the next waiter before returning the
// context's error.
//
// Waiter records are free-listed and their signal channels reused, so a
// steady acquire/release cycle allocates nothing once warm.
type FairSem struct {
	mu     sync.Mutex
	cap    int
	avail  int
	head   *semWaiter // FIFO queue of blocked acquirers
	tail   *semWaiter
	free   *semWaiter // recycled waiter records
	queued int        // live (non-canceled) waiters currently in the queue
	waited int64      // total acquires that had to queue (monotonic)
}

// semWaiter is one queued acquirer. The ready channel has capacity 1 and is
// sent to exactly once per grant, always under the semaphore mutex, so a
// canceling waiter that observes granted can drain it without blocking.
type semWaiter struct {
	ready    chan struct{}
	next     *semWaiter
	granted  bool
	canceled bool
}

// NewFairSem returns a semaphore with n permits. n must be positive.
func NewFairSem(n int) *FairSem {
	if n < 1 {
		panic("par: FairSem needs at least one permit")
	}
	return &FairSem{cap: n, avail: n}
}

// Cap returns the total number of permits.
func (s *FairSem) Cap() int { return s.cap }

// Available returns the number of free permits (0 whenever waiters are
// queued: a release with a non-empty queue hands the permit over directly).
func (s *FairSem) Available() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.avail
}

// QueueLen returns the number of currently queued acquirers (canceled
// entries awaiting collection excluded).
func (s *FairSem) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Waited returns the total number of Acquire calls that found no free
// permit and had to queue — the admission-pressure counter surfaced as
// PoolStats.Waited.
func (s *FairSem) Waited() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waited
}

// TryAcquire takes a permit without blocking and reports whether it got
// one. It never barges: with waiters queued it fails even if a permit is
// momentarily free.
func (s *FairSem) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.head == nil && s.avail > 0 {
		s.avail--
		return true
	}
	return false
}

// Acquire takes a permit, blocking in FIFO order behind earlier acquirers,
// until granted or ctx is done. A nil ctx never cancels. On cancellation it
// returns ctx.Err() and the caller holds nothing; a permit granted
// concurrently with the cancellation is passed on to the next waiter.
func (s *FairSem) Acquire(ctx context.Context) error {
	return s.AcquireLimited(ctx, -1)
}

// AcquireLimited is Acquire refusing to queue behind more than maxQueued
// live waiters: when no permit is free and the queue already holds
// maxQueued entries it returns ErrQueueFull immediately, having touched
// nothing — the caller never occupies a queue slot it would only abandon.
// The depth check and the enqueue are one atomic step under the semaphore
// mutex, so the bound is exact under any interleaving. maxQueued < 0 means
// unlimited (plain Acquire); maxQueued == 0 admits only requests that can
// take a free permit without queueing at all.
func (s *FairSem) AcquireLimited(ctx context.Context, maxQueued int) error {
	s.mu.Lock()
	if s.head == nil && s.avail > 0 {
		s.avail--
		s.mu.Unlock()
		return nil
	}
	if maxQueued >= 0 && s.queued >= maxQueued {
		s.mu.Unlock()
		return ErrQueueFull
	}
	w := s.enqueue()
	s.waited++
	s.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ready:
		s.mu.Lock()
		s.recycle(w)
		s.mu.Unlock()
		return nil
	case <-done:
		s.mu.Lock()
		if w.granted {
			// The grant raced with the cancellation: the permit is ours, so
			// drain the signal (buffered, sent under mu — never blocks) and
			// hand the permit straight to the next waiter in line.
			<-w.ready
			s.releaseLocked()
			s.recycle(w)
		} else {
			// Lazy removal: the entry stays queued, marked, and is skipped
			// and collected by the release that reaches it — its turn passes
			// to its successor rather than being lost.
			w.canceled = true
			s.queued--
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a permit, granting it to the longest-waiting live
// acquirer if any, else back to the free pool.
func (s *FairSem) Release() {
	s.mu.Lock()
	s.releaseLocked()
	s.mu.Unlock()
}

func (s *FairSem) releaseLocked() {
	for {
		w := s.pop()
		if w == nil {
			if s.avail == s.cap {
				panic("par: FairSem Release without a matching Acquire")
			}
			s.avail++
			return
		}
		if w.canceled {
			s.recycle(w)
			continue
		}
		w.granted = true
		s.queued--
		w.ready <- struct{}{}
		return
	}
}

// enqueue appends a waiter record (recycled when possible) to the queue.
// Caller holds s.mu.
func (s *FairSem) enqueue() *semWaiter {
	w := s.free
	if w == nil {
		w = &semWaiter{ready: make(chan struct{}, 1)}
	} else {
		s.free = w.next
		w.next = nil
	}
	if s.tail == nil {
		s.head = w
	} else {
		s.tail.next = w
	}
	s.tail = w
	s.queued++
	return w
}

// pop removes and returns the queue head, or nil. Caller holds s.mu.
func (s *FairSem) pop() *semWaiter {
	w := s.head
	if w == nil {
		return nil
	}
	s.head = w.next
	if s.head == nil {
		s.tail = nil
	}
	w.next = nil
	return w
}

// recycle resets a dequeued waiter record onto the free list. Its channel is
// empty by construction: a granted signal is always drained by the acquirer
// (normal receive or cancel-race drain) before recycling, and canceled
// entries are never signaled. Caller holds s.mu.
func (s *FairSem) recycle(w *semWaiter) {
	w.granted = false
	w.canceled = false
	w.next = s.free
	s.free = w
}
