package par

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**). It exists so that graph generation and
// randomized tests are reproducible across runs and platforms without
// depending on math/rand's global state, and so that parallel generators can
// hand each worker an independent stream via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed (re)initializes r in place from seed — identical to NewRNG(seed) but
// without the allocation, for value-embedded or pooled generators.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Split returns a new independent generator derived from r's stream. It is
// the mechanism for giving each parallel worker its own deterministic
// sequence: worker w of a generator seeded s uses NewRNG(s).SplitN(w).
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// SplitN returns the i-th of a family of independent generators derived
// from r without consuming r's stream state observed by other indices.
func (r *RNG) SplitN(i int) *RNG {
	return NewRNG(r.s[0] ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("par: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
