package par

// Resize returns s with length exactly n, reusing its backing array when the
// capacity allows and allocating a fresh one otherwise. Contents are
// unspecified — callers that need zeroed or initialized storage must fill it.
// It is the growth primitive behind every pooled scratch buffer: after the
// first use at a given size, later uses of the same (or any smaller) size
// never allocate.
func Resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Arena is a tiny bump allocator for short-lived scratch slices whose count
// or sizes vary call to call (per-worker histograms, per-color prefix rows,
// …) and therefore do not fit a single named pooled buffer. Allocations are
// carved off one backing array per element type; Reset recycles everything at
// once in O(1). The arena remembers the total demand of the previous cycle
// and pre-grows on Reset, so a warmed arena serves a same-shaped cycle with
// zero allocations.
//
// An Arena is not safe for concurrent use: take slices serially (before
// fanning work out to workers), then hand them to the workers.
type Arena struct {
	i64 arenaPool[int64]
	i32 arenaPool[int32]
	f64 arenaPool[float64]
}

// Reset recycles all outstanding slices. Slices taken before the Reset must
// no longer be used: they alias storage that later takes will hand out again.
func (a *Arena) Reset() {
	a.i64.reset()
	a.i32.reset()
	a.f64.reset()
}

// Int64 returns a zeroed []int64 of length n carved from the arena.
func (a *Arena) Int64(n int) []int64 { return a.i64.take(n) }

// Int32 returns a zeroed []int32 of length n carved from the arena.
func (a *Arena) Int32(n int) []int32 { return a.i32.take(n) }

// Float64 returns a zeroed []float64 of length n carved from the arena.
func (a *Arena) Float64(n int) []float64 { return a.f64.take(n) }

type arenaPool[T any] struct {
	buf    []T
	off    int
	demand int // total items taken since the last reset
}

func (p *arenaPool[T]) reset() {
	// Pre-grow to the previous cycle's high-water demand so one warm cycle
	// suffices to make identical later cycles allocation-free even when the
	// first cycle spilled across multiple backing arrays.
	if p.demand > len(p.buf) {
		p.buf = make([]T, p.demand)
	}
	p.off = 0
	p.demand = 0
}

func (p *arenaPool[T]) take(n int) []T {
	p.demand += n
	if p.off+n > len(p.buf) {
		size := 2 * len(p.buf)
		if size < n {
			size = n
		}
		// Slices taken earlier in this cycle keep referencing the old backing
		// array; only future takes come from the new one.
		p.buf = make([]T, size)
		p.off = 0
	}
	s := p.buf[p.off : p.off+n : p.off+n]
	p.off += n
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}
