package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForStagesCtx runs a SEQUENCE of dynamically-chunked parallel loops — one
// per stage, stage s covering [0, count(ctx, s)) — on a single worker team
// with a barrier between consecutive stages. It exists for runs of small
// color sets in the colored sweep: each set must fully complete before the
// next starts (its moves must be visible), but paying a full fork/join —
// goroutine spawns, closure setup, WaitGroup — per tiny set costs more than
// the set's own work. One team amortizes that setup across the whole run of
// stages; only the barrier (an atomic arrival count plus a release epoch)
// separates them.
//
// The barrier is sense-reversing in epoch form: workers finishing stage s
// publish their arrival; the LAST arriver resets the shared chunk cursor
// for the next stage and then advances the release epoch, which the others
// spin-wait on (yielding to the scheduler between polls, so oversubscribed
// hosts make progress). The cursor reset is ordered before the release, so
// no worker can claim stage s+1 work against a stale cursor.
//
// Like every ...Ctx form, ctx and the two function values must be
// CAPTURELESS for the single-worker path to stay allocation-free; with one
// effective worker the stages simply run serially in order, which is also
// the bitwise-reference behavior the colored sweep's determinism tests pin.
// Effective workers are normalized against the LARGEST stage; the worker
// index passed to body is stable across all stages of one call, so
// per-worker scratch (sized by Workers) is reusable throughout.
func ForStagesCtx[C any](ctx C, stages int, count func(ctx C, stage int) int, p int, body func(ctx C, stage, worker, lo, hi int)) {
	if stages <= 0 {
		return
	}
	maxN := 0
	for s := 0; s < stages; s++ {
		if n := count(ctx, s); n > maxN {
			maxN = n
		}
	}
	nw := normWorkers(p, maxN)
	if nw == 1 {
		for s := 0; s < stages; s++ {
			if n := count(ctx, s); n > 0 {
				body(ctx, s, 0, 0, n)
			}
		}
		return
	}
	var cursor atomic.Int64
	var arrived atomic.Int32
	var release atomic.Int32 // index of the highest stage open for claiming
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func(w int) {
			defer wg.Done()
			for s := 0; s < stages; s++ {
				for release.Load() < int32(s) {
					runtime.Gosched()
				}
				n := count(ctx, s)
				grain := n / (nw * 8)
				if grain < 1 {
					grain = 1
				}
				for {
					lo := int(cursor.Add(int64(grain))) - grain
					if lo >= n {
						break
					}
					hi := lo + grain
					if hi > n {
						hi = n
					}
					body(ctx, s, w, lo, hi)
				}
				if int(arrived.Add(1)) == nw {
					// Last arriver: rearm the cursor, then open the next
					// stage. Store order matters — release is the
					// synchronization edge the spinners read.
					arrived.Store(0)
					cursor.Store(0)
					release.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
}
