package par

import (
	"sync"
	"testing"
)

func TestCancelNilSafe(t *testing.T) {
	var c *Cancel
	if c.Canceled() {
		t.Fatal("nil Cancel reports canceled")
	}
}

func TestCancelSetResetAndConcurrentReaders(t *testing.T) {
	var c Cancel
	if c.Canceled() {
		t.Fatal("zero Cancel reports canceled")
	}
	c.Set()
	if !c.Canceled() {
		t.Fatal("Set not observed")
	}
	c.Reset()
	if c.Canceled() {
		t.Fatal("Reset not observed")
	}

	// A set flag must become visible to workers polling it from a chunked
	// loop body (the intended use: one check per chunk).
	var wg sync.WaitGroup
	var seen sync.WaitGroup
	seen.Add(4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !c.Canceled() {
			}
			seen.Done()
		}()
	}
	c.Set()
	seen.Wait()
	wg.Wait()
}
