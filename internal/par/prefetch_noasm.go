//go:build noasm || !(amd64 || arm64)

package par

// Prefetch32 is the portable fallback: a no-op the compiler inlines away.
// See prefetch_asm.go for the real hint.
func Prefetch32(p *int32) {}

// PrefetchComm8 is the portable fallback: a no-op the compiler inlines away.
func PrefetchComm8(comm *int32, ids *int32) {}

// PrefetchComm8S16 is the portable fallback: a no-op the compiler inlines
// away.
func PrefetchComm8S16(comm *int32, ids *int32) {}
