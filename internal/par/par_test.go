package par

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 7, 1000} {
			hits := make([]int32, n)
			For(n, p, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d n=%d: index %d hit %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestForChunkDisjointCover(t *testing.T) {
	n := 12345
	hits := make([]int32, n)
	ForChunk(n, 4, 7, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForStaticSlabsArePartition(t *testing.T) {
	n := 100
	seen := make([]int32, n)
	workers := make([]int32, 7) // one slot per worker id; no shared writes
	ForStatic(n, 7, func(w, lo, hi int) {
		atomic.AddInt32(&workers[w], 1)
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, h := range seen {
		if h != 1 {
			t.Fatalf("index %d covered %d times", i, h)
		}
	}
	for w, c := range workers {
		if c != 1 {
			t.Fatalf("worker %d ran %d slabs", w, c)
		}
	}
}

func TestSumFloat64MatchesSerial(t *testing.T) {
	n := 10000
	want := 0.0
	f := func(i int) float64 { return float64(i%97) * 0.5 }
	for i := 0; i < n; i++ {
		want += f(i)
	}
	for _, p := range []int{1, 2, 4, 16} {
		got := SumFloat64(n, p, f)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("p=%d: got %v want %v", p, got, want)
		}
	}
}

func TestSumInt64AndMaxInt64(t *testing.T) {
	n := 5000
	f := func(i int) int64 { return int64((i * 7) % 101) }
	var want int64
	var wantMax int64
	for i := 0; i < n; i++ {
		want += f(i)
		if f(i) > wantMax {
			wantMax = f(i)
		}
	}
	if got := SumInt64(n, 4, f); got != want {
		t.Fatalf("sum: got %d want %d", got, want)
	}
	if got := MaxInt64(n, 4, f); got != wantMax {
		t.Fatalf("max: got %d want %d", got, wantMax)
	}
	if got := MaxInt64(0, 4, f); got != 0 {
		t.Fatalf("max of empty: got %d want 0", got)
	}
}

func TestExclusivePrefixSumSmallAndLarge(t *testing.T) {
	for _, n := range []int{0, 1, 5, 4096, 100000} {
		v := make([]int64, n)
		for i := range v {
			v[i] = int64(i%13 + 1)
		}
		want := make([]int64, n)
		var run int64
		for i := 0; i < n; i++ {
			want[i] = run
			run += v[i]
		}
		got := make([]int64, n)
		copy(got, v)
		total := ExclusivePrefixSum(got, 4)
		if total != run {
			t.Fatalf("n=%d: total %d want %d", n, total, run)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: at %d got %d want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestExclusivePrefixSumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		v := make([]int64, len(raw))
		for i, x := range raw {
			v[i] = int64(x)
		}
		ref := make([]int64, len(v))
		copy(ref, v)
		var run int64
		for i := range ref {
			ref[i], run = run, run+ref[i]
		}
		total := ExclusivePrefixSum(v, 8)
		if total != run {
			return false
		}
		for i := range v {
			if v[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicFloat64Concurrent(t *testing.T) {
	var a Float64
	const workers, adds = 8, 10000
	For(workers*adds, workers, func(i int) { a.Add(0.5) })
	want := float64(workers*adds) * 0.5
	if got := a.Load(); got != want {
		t.Fatalf("got %v want %v", got, want)
	}
	a.Store(-3)
	if got := a.Load(); got != -3 {
		t.Fatalf("store/load: got %v", got)
	}
}

func TestAddFloat64DenseArrayConcurrent(t *testing.T) {
	cells := make([]float64, 16)
	const total = 64000
	For(total, 8, func(i int) { AddFloat64(&cells[i%16], 1) })
	for i, c := range cells {
		if c != total/16 {
			t.Fatalf("cell %d = %v, want %d", i, c, total/16)
		}
	}
}

func TestRNGDeterminismAndSplit(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should give same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a2 := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
	// SplitN(i) must be stable and independent of call order.
	r := NewRNG(7)
	x := r.SplitN(3).Uint64()
	r2 := NewRNG(7)
	_ = r2.SplitN(1).Uint64()
	if y := r2.SplitN(3).Uint64(); x != y {
		t.Fatal("SplitN not stable across call order")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for v, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Fatalf("value %d drawn %d times (expected ~%d)", v, c, draws/n)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(257)
	seen := make([]bool, 257)
	for _, v := range p {
		if v < 0 || v >= 257 || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestNormWorkersBounds(t *testing.T) {
	if got := normWorkers(0, 10); got != DefaultWorkers() && got != 10 {
		// p=0 → default, clamped to n=10.
		t.Fatalf("unexpected normWorkers(0,10)=%d", got)
	}
	if got := normWorkers(99, 3); got != 3 {
		t.Fatalf("normWorkers(99,3)=%d, want 3", got)
	}
	if got := normWorkers(4, 0); got != 1 {
		t.Fatalf("normWorkers(4,0)=%d, want 1", got)
	}
}
