//go:build (amd64 || arm64) && !noasm

package par

// Prefetch32 hints the CPU to pull the cache line holding *p into L1
// (PREFETCHT0 on amd64, PRFM PLDL1KEEP on arm64). It is advisory: no fault
// is taken and no ordering is implied, so the pointer only needs to be a
// valid address. Build with the noasm tag (or on other architectures) to
// get a portable no-op instead.
//
//go:noescape
func Prefetch32(p *int32)

// PrefetchComm8 issues prefetch hints for comm[ids[0]] … comm[ids[7]]: the
// eight scattered membership reads an upcoming CSR row segment will perform.
// Assembly cannot be inlined, so the sweep kernels batch eight hints per
// call to keep the call overhead off the per-arc hot path; ids must point at
// (at least) eight contiguous int32 indices, each a valid index into comm.
//
//go:noescape
func PrefetchComm8(comm *int32, ids *int32)

// PrefetchComm8S16 is PrefetchComm8 for indices laid out at a 16-byte
// stride: ids points at the Nbr field of the first of eight consecutive
// interleaved arcs (16 bytes each), as produced by the interleaved CSR
// layout.
//
//go:noescape
func PrefetchComm8S16(comm *int32, ids *int32)
