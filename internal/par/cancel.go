package par

import "sync/atomic"

// Cancel is the cooperative cancellation flag shared between a loop driver
// and the chunked worker-pool loops. The pools themselves never poll it —
// their per-item hot loops stay branch-free — instead the convention is:
//
//   - the driver polls its cancellation source (typically a context) at the
//     BARRIERS between chunked passes (every ForChunk*/ForStatic call is a
//     barrier: it returns only after all chunks finish) and calls Set once
//     cancellation is requested;
//   - loop BODIES that want sub-pass promptness check Canceled once per
//     chunk on entry — one atomic load per chunk, amortized over the whole
//     chunk's items — and return early, draining the remaining chunks in
//     O(chunks) flag loads.
//
// Abandoned passes may leave their outputs partially written; callers
// discard all results of a canceled computation, so the only requirement is
// that the scratch stays structurally reusable (which resizing-on-reset
// buffers guarantee).
//
// The zero value is ready to use and not canceled. A nil *Cancel is a valid
// never-canceled flag, so cancellation-free paths pay a single nil check.
type Cancel struct{ flag atomic.Bool }

// Set requests cancellation. Safe for concurrent use with Canceled.
func (c *Cancel) Set() { c.flag.Store(true) }

// Reset re-arms the flag for a new computation.
func (c *Cancel) Reset() { c.flag.Store(false) }

// Canceled reports whether Set has been called. It is nil-safe: a nil
// receiver reports false, so optional cancellation costs one comparison.
func (c *Cancel) Canceled() bool { return c != nil && c.flag.Load() }
