package par

import (
	"context"
	"sync"
	"testing"
	"time"
)

// waitQueueLen spins until the semaphore has n live queued waiters.
func waitQueueLen(t *testing.T, s *FairSem, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueLen() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue length never reached %d (at %d)", n, s.QueueLen())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFairSemFIFOOrder pins the fairness guarantee: waiters enqueued one at
// a time are granted in exactly that order.
func TestFairSemFIFOOrder(t *testing.T) {
	s := NewFairSem(1)
	if err := s.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Release()
		}(i)
		// Serialize admission so arrival order is deterministic.
		waitQueueLen(t, s, i+1)
	}
	s.Release()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want strictly FIFO", order)
		}
	}
	if s.Available() != 1 {
		t.Fatalf("leaked permits: available=%d, want 1", s.Available())
	}
	if s.Waited() != waiters {
		t.Fatalf("Waited=%d, want %d", s.Waited(), waiters)
	}
}

// TestFairSemCancelPassesTurn cancels a waiter in the middle of the queue:
// the others complete in order and the canceled waiter's turn passes on
// without losing a permit.
func TestFairSemCancelPassesTurn(t *testing.T) {
	s := NewFairSem(1)
	if err := s.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	const waiters = 5
	const victim = 2
	ctxs := make([]context.Context, waiters)
	cancels := make([]context.CancelFunc, waiters)
	errs := make([]error, waiters)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		ctxs[i], cancels[i] = context.WithCancel(context.Background())
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Acquire(ctxs[i]); err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Release()
		}(i)
		waitQueueLen(t, s, i+1)
	}
	cancels[victim]()
	waitQueueLen(t, s, waiters-1)
	s.Release()
	wg.Wait()
	for _, c := range cancels {
		c()
	}
	if errs[victim] != context.Canceled {
		t.Fatalf("victim error = %v, want context.Canceled", errs[victim])
	}
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
	if s.Available() != 1 {
		t.Fatalf("leaked permits: available=%d, want 1", s.Available())
	}
}

// TestFairSemGrantCancelRace hammers the race between Release granting a
// permit and the waiter canceling: the permit must never be lost.
func TestFairSemGrantCancelRace(t *testing.T) {
	s := NewFairSem(1)
	for round := 0; round < 300; round++ {
		if err := s.Acquire(nil); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			err := s.Acquire(ctx)
			if err == nil {
				s.Release()
			}
			done <- err
		}()
		waitQueueLen(t, s, 1)
		go cancel()
		s.Release()
		<-done
		cancel()
		// Whatever the race outcome, exactly one permit must remain.
		if err := s.Acquire(nil); err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	if s.Available() != 1 {
		t.Fatalf("leaked permits after races: available=%d, want 1", s.Available())
	}
}

// TestFairSemTryAcquireNoBarging pins that TryAcquire cannot jump a queue.
func TestFairSemTryAcquireNoBarging(t *testing.T) {
	s := NewFairSem(2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("TryAcquire failed with free permits")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded with no permits")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := s.Acquire(context.Background()); err != nil {
			t.Error(err)
		}
	}()
	waitQueueLen(t, s, 1)
	s.Release() // goes to the queued waiter...
	<-done
	if !s.TryAcquire() {
		// ...and the second release frees a permit for TryAcquire again.
		s.Release()
		if !s.TryAcquire() {
			t.Fatal("TryAcquire failed after queue drained")
		}
	}
}

// TestFairSemWarmCycleZeroAllocs pins that a steady acquire/release cycle —
// including queued acquisitions, whose waiter records are free-listed —
// allocates nothing once warm.
func TestFairSemWarmCycleZeroAllocs(t *testing.T) {
	s := NewFairSem(1)
	// Warm the free list with one queued cycle.
	if err := s.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	go func() {
		waitQueueLen(t, s, 1)
		s.Release()
		close(released)
	}()
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-released
	s.Release()
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.Acquire(nil); err != nil {
			t.Fatal(err)
		}
		s.Release()
	})
	if allocs != 0 {
		t.Errorf("uncontended warm Acquire/Release allocates %v times, want 0", allocs)
	}
}

// TestFairSemAcquireLimitedDepthBound pins the bounded-queue contract:
// with the queue at the limit AcquireLimited returns ErrQueueFull
// immediately without occupying a slot, a below-limit acquire queues
// normally, and limit 0 refuses any queueing at all.
func TestFairSemAcquireLimitedDepthBound(t *testing.T) {
	s := NewFairSem(1)
	if err := s.AcquireLimited(nil, 0); err != nil {
		t.Fatalf("free-permit AcquireLimited(0) = %v, want success (no queueing needed)", err)
	}
	// Queue is empty, permit is held: limit 0 must refuse immediately.
	start := time.Now()
	if err := s.AcquireLimited(context.Background(), 0); err != ErrQueueFull {
		t.Fatalf("AcquireLimited(0) with held permit = %v, want ErrQueueFull", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("queue-full refusal was not fast")
	}

	// One waiter fits under limit 1; the second is refused at the bound.
	done := make(chan error, 1)
	go func() { done <- s.AcquireLimited(context.Background(), 1) }()
	waitQueueLen(t, s, 1)
	if err := s.AcquireLimited(context.Background(), 1); err != ErrQueueFull {
		t.Fatalf("over-limit AcquireLimited = %v, want ErrQueueFull", err)
	}
	if s.QueueLen() != 1 {
		t.Fatalf("refused acquire disturbed the queue: len %d, want 1", s.QueueLen())
	}
	s.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	s.Release()
	if s.Available() != 1 {
		t.Fatalf("available = %d, want 1", s.Available())
	}
}

// TestFairSemQueueLenTracksCancellation pins the O(1) queued counter the
// depth bound reads: canceled waiters leave the count immediately (lazy
// removal of the record notwithstanding), grants decrement it, and a
// post-cancel release still hands the permit past the canceled entry.
func TestFairSemQueueLenTracksCancellation(t *testing.T) {
	s := NewFairSem(1)
	if err := s.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() { errA <- s.Acquire(ctxA) }()
	waitQueueLen(t, s, 1)
	errB := make(chan error, 1)
	go func() { errB <- s.Acquire(context.Background()) }()
	waitQueueLen(t, s, 2)

	cancelA()
	if err := <-errA; err != context.Canceled {
		t.Fatalf("canceled waiter = %v, want context.Canceled", err)
	}
	waitQueueLen(t, s, 1) // the counter dropped before the record is collected

	// With one live waiter and limit 1, the bound is already met.
	if err := s.AcquireLimited(context.Background(), 1); err != ErrQueueFull {
		t.Fatalf("AcquireLimited at bound = %v, want ErrQueueFull", err)
	}
	s.Release() // skips the canceled record, grants B
	if err := <-errB; err != nil {
		t.Fatalf("waiter B: %v", err)
	}
	waitQueueLen(t, s, 0)
	s.Release()
}
