package par

import (
	"sync/atomic"
	"testing"
)

func BenchmarkForChunkOverhead(b *testing.B) {
	const n = 1 << 16
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForChunk(n, 0, 0, func(lo, hi int) {
			var s int64
			for t := lo; t < hi; t++ {
				s += int64(t)
			}
			sink.Add(s)
		})
	}
}

func BenchmarkForStaticOverhead(b *testing.B) {
	const n = 1 << 16
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForStatic(n, 0, func(w, lo, hi int) {
			var s int64
			for t := lo; t < hi; t++ {
				s += int64(t)
			}
			sink.Add(s)
		})
	}
}

func BenchmarkSumFloat64(b *testing.B) {
	const n = 1 << 18
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i % 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SumFloat64(n, 0, func(i int) float64 { return v[i] })
	}
}

func BenchmarkExclusivePrefixSum(b *testing.B) {
	const n = 1 << 20
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(i % 7)
	}
	buf := make([]int64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		ExclusivePrefixSum(buf, 0)
	}
}

func BenchmarkAtomicFloat64Add(b *testing.B) {
	var a Float64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			a.Add(1)
		}
	})
}

func BenchmarkAddFloat64Striped(b *testing.B) {
	cells := make([]float64, 64)
	var idx atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		me := int(idx.Add(1)) % len(cells)
		for pb.Next() {
			AddFloat64(&cells[me], 1)
		}
	})
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
