package par

import (
	"math"
	"unsafe"
)

func toBits(v float64) uint64   { return math.Float64bits(v) }
func fromBits(b uint64) float64 { return math.Float64frombits(b) }

// ptr reinterprets a *float64 as an unsafe.Pointer for atomic access.
// float64 slice elements and struct fields are 8-byte aligned on all
// platforms Go supports, which is the only precondition for the atomic ops.
func ptr(f *float64) unsafe.Pointer { return unsafe.Pointer(f) }
