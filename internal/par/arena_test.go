package par

import "testing"

func TestResize(t *testing.T) {
	s := Resize[int32](nil, 8)
	if len(s) != 8 {
		t.Fatalf("len %d, want 8", len(s))
	}
	for i := range s {
		s[i] = int32(i)
	}
	shrunk := Resize(s, 3)
	if len(shrunk) != 3 || &shrunk[0] != &s[0] {
		t.Fatal("shrink must reuse the backing array")
	}
	same := Resize(shrunk, 8)
	if &same[0] != &s[0] {
		t.Fatal("regrow within capacity must reuse the backing array")
	}
	grown := Resize(s, 9)
	if len(grown) != 9 {
		t.Fatalf("len %d, want 9", len(grown))
	}
}

func TestArenaZeroesAndRecycles(t *testing.T) {
	var a Arena
	x := a.Int64(4)
	for i := range x {
		if x[i] != 0 {
			t.Fatal("arena slice not zeroed")
		}
		x[i] = int64(i) + 1
	}
	y := a.Int64(4)
	for i := range y {
		if y[i] != 0 {
			t.Fatal("second take not zeroed")
		}
	}
	if &x[0] == &y[0] {
		t.Fatal("outstanding takes must not alias")
	}
	a.Reset()
	z := a.Int64(4)
	for i := range z {
		if z[i] != 0 {
			t.Fatal("recycled slice not zeroed")
		}
	}
}

func TestArenaOutstandingSlicesSurviveGrowth(t *testing.T) {
	var a Arena
	x := a.Int32(2)
	x[0], x[1] = 7, 8
	// Force a mid-cycle regrow; x keeps referencing the old backing array.
	_ = a.Int32(1 << 12)
	if x[0] != 7 || x[1] != 8 {
		t.Fatal("outstanding slice corrupted by arena growth")
	}
}

func TestArenaWarmCycleZeroAllocs(t *testing.T) {
	var a Arena
	cycle := func() {
		a.Reset()
		for i := 0; i < 4; i++ {
			_ = a.Int64(100)
			_ = a.Int32(50)
			_ = a.Float64(25)
		}
	}
	cycle() // cold: spills across growing backing arrays
	cycle() // warm-up after the Reset pre-grow
	if allocs := testing.AllocsPerRun(10, cycle); allocs != 0 {
		t.Fatalf("warm arena cycle allocates %v times, want 0", allocs)
	}
}

func TestSparseAccumGrowPreservesEpoch(t *testing.T) {
	a := NewSparseAccum(4, 0)
	a.Add(1, 2.5)
	a.Add(3, 1.5)
	a.Grow(16)
	if a.Universe() != 16 {
		t.Fatalf("universe %d, want 16", a.Universe())
	}
	if a.Get(1) != 2.5 || a.Get(3) != 1.5 || a.Len() != 2 {
		t.Fatal("Grow dropped current-epoch contents")
	}
	a.Add(10, 4)
	if a.Get(10) != 4 || a.Len() != 3 {
		t.Fatal("grown slots unusable")
	}
	a.Reset()
	if a.Get(10) != 0 || a.Len() != 0 {
		t.Fatal("Reset after Grow leaks state")
	}
}

func TestReductionsSingleWorkerFastPath(t *testing.T) {
	n := 1000
	f := func(i int) float64 { return float64(i) }
	want := SumFloat64(n, 4, f)
	if got := SumFloat64(n, 1, f); got != want {
		t.Fatalf("SumFloat64 p=1 %v != p=4 %v", got, want)
	}
	if got := SumInt64(n, 1, func(i int) int64 { return int64(i) }); got != int64(n*(n-1)/2) {
		t.Fatalf("SumInt64 p=1 = %d", got)
	}
	if got := MaxInt64(n, 1, func(i int) int64 { return int64(i % 37) }); got != 36 {
		t.Fatalf("MaxInt64 p=1 = %d, want 36", got)
	}
	allocs := testing.AllocsPerRun(10, func() {
		_ = SumFloat64(n, 1, f)
		_ = SumInt64(n, 1, func(i int) int64 { return int64(i) })
		_ = MaxInt64(n, 1, func(i int) int64 { return int64(i) })
	})
	if allocs != 0 {
		t.Fatalf("single-worker reductions allocate %v times, want 0", allocs)
	}
}
