package par

import (
	"sort"
	"sync"
	"testing"
)

func TestSparseAccumBasics(t *testing.T) {
	a := NewSparseAccum(10, 4)
	if a.Universe() != 10 {
		t.Fatalf("universe = %d", a.Universe())
	}
	a.Ensure(3)
	a.Add(7, 1.5)
	a.Add(3, 2.0)
	a.Add(7, 0.5)
	if got := a.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	keys := a.Keys()
	if keys[0] != 3 || keys[1] != 7 {
		t.Fatalf("keys = %v, want first-touch order [3 7]", keys)
	}
	if a.Get(3) != 2.0 || a.Get(7) != 2.0 || a.Get(5) != 0 {
		t.Fatalf("values: %v %v %v", a.Get(3), a.Get(7), a.Get(5))
	}
}

func TestSparseAccumResetIsolatesEpochs(t *testing.T) {
	a := NewSparseAccum(4, 0)
	a.Add(2, 5)
	a.Reset()
	if a.Len() != 0 || a.Get(2) != 0 {
		t.Fatalf("stale value visible after Reset: len=%d get=%v", a.Len(), a.Get(2))
	}
	a.Add(2, 1)
	if a.Get(2) != 1 {
		t.Fatalf("value after re-add = %v, want 1 (no leak from prior epoch)", a.Get(2))
	}
}

func TestSparseAccumGenerationWraparound(t *testing.T) {
	a := NewSparseAccum(3, 0)
	a.Add(1, 4)
	a.gen = 1<<31 - 1 // force the wraparound path on the next Reset
	a.slots[1].mark = a.gen
	a.Reset()
	if a.gen != 1 {
		t.Fatalf("gen after wraparound = %d, want 1", a.gen)
	}
	if a.Get(1) != 0 || a.Len() != 0 {
		t.Fatal("stale slot visible after wraparound Reset")
	}
	a.Add(1, 2)
	if a.Get(1) != 2 {
		t.Fatalf("Get after wraparound = %v, want 2", a.Get(1))
	}
}

func TestSparseAccumKeysSortableInPlace(t *testing.T) {
	a := NewSparseAccum(100, 0)
	for _, k := range []int32{42, 7, 99, 7, 13} {
		a.Add(k, float64(k))
	}
	keys := a.Keys()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	want := []int32{7, 13, 42, 99}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("sorted keys = %v, want %v", keys, want)
		}
		if i > 0 && a.Get(k) != float64(k) {
			t.Fatalf("Get(%d) = %v after in-place sort", k, a.Get(k))
		}
	}
	if a.Get(7) != 14 { // 7 added twice
		t.Fatalf("Get(7) = %v, want 14", a.Get(7))
	}
}

func TestForChunkWorkerCoversRangeWithValidWorkerIDs(t *testing.T) {
	const n, p = 1000, 4
	nw := Workers(p, n)
	seen := make([]int32, n)
	var mu sync.Mutex
	workersUsed := map[int]bool{}
	ForChunkWorker(n, p, 17, func(w, lo, hi int) {
		if w < 0 || w >= nw {
			t.Errorf("worker id %d out of [0,%d)", w, nw)
		}
		mu.Lock()
		workersUsed[w] = true
		mu.Unlock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
	if len(workersUsed) == 0 {
		t.Fatal("no workers ran")
	}
}

func TestForChunkPrefixCoversRange(t *testing.T) {
	// Highly skewed weights, including zero-weight prefix/suffix runs.
	weights := make([]int64, 500)
	for i := range weights {
		switch {
		case i < 10 || i >= 490:
			weights[i] = 0
		case i == 250:
			weights[i] = 100000
		default:
			weights[i] = int64(i % 7)
		}
	}
	prefix := make([]int64, len(weights)+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	for _, p := range []int{1, 3, 8} {
		seen := make([]int32, len(weights))
		ForChunkPrefix(prefix, p, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("p=%d: index %d visited %d times", p, i, c)
			}
		}
	}
}

func TestForChunkPrefixAllZeroWeights(t *testing.T) {
	prefix := make([]int64, 101) // 100 items, all weight 0
	count := 0
	ForChunkPrefix(prefix, 4, func(w, lo, hi int) { count += hi - lo })
	if count != 100 {
		t.Fatalf("covered %d of 100 zero-weight items", count)
	}
}

func BenchmarkSparseAccumAddReset(b *testing.B) {
	a := NewSparseAccum(1<<16, 64)
	keys := make([]int32, 64)
	for i := range keys {
		keys[i] = int32((i * 1021) % (1 << 16))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		for _, k := range keys {
			a.Add(k, 1.0)
		}
	}
}
