package par

// Marker is a reusable, allocation-free flat set over int32 keys drawn from
// a bounded universe — par.SparseAccum without the values: a generation
// stamp per key slot, where Reset is O(1) (bump the generation; every stamp
// goes stale) and membership is a single array compare. It backs the
// neighbor-color marking of the coloring rebalancer and the distance-2
// speculative coloring, replacing their per-vertex map[int32]bool.
//
// A Marker is not safe for concurrent use; give each worker its own.
type Marker struct {
	mark []int32 // slot k is set iff mark[k] == gen
	gen  int32   // current epoch; starts at 1 so zeroed stamps are stale
}

// NewMarker returns a marker for keys in [0, universe).
func NewMarker(universe int) *Marker {
	if universe < 0 {
		universe = 0
	}
	return &Marker{mark: make([]int32, universe), gen: 1}
}

// Universe returns the current key-space size.
func (m *Marker) Universe() int { return len(m.mark) }

// Reset unsets every key in O(1) by bumping the generation.
func (m *Marker) Reset() {
	if m.gen == 1<<31-1 { // int32 exhaustion after ~2^31 Resets: re-zero stamps
		for i := range m.mark {
			m.mark[i] = 0
		}
		m.gen = 0
	}
	m.gen++
}

// Grow extends the key space to at least universe keys. Existing keys keep
// their state; new slots start unset (their zero stamp is always stale).
func (m *Marker) Grow(universe int) {
	if universe <= len(m.mark) {
		return
	}
	grown := make([]int32, universe)
	copy(grown, m.mark)
	m.mark = grown
}

// Set marks key k.
func (m *Marker) Set(k int32) { m.mark[k] = m.gen }

// Has reports whether k is marked in the current epoch.
func (m *Marker) Has(k int32) bool { return m.mark[k] == m.gen }
