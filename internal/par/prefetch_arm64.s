//go:build !noasm

#include "textflag.h"

// func Prefetch32(p *int32)
TEXT ·Prefetch32(SB), NOSPLIT, $0-8
	MOVD p+0(FP), R0
	PRFM (R0), PLDL1KEEP
	RET

// func PrefetchComm8(comm *int32, ids *int32)
// Eight gather-style prefetches: comm[ids[k]] for k in 0..7, ids contiguous.
TEXT ·PrefetchComm8(SB), NOSPLIT, $0-16
	MOVD comm+0(FP), R0
	MOVD ids+8(FP), R1
	MOVW 0(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 4(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 8(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 12(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 16(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 20(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 24(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 28(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	RET

// func PrefetchComm8S16(comm *int32, ids *int32)
// As PrefetchComm8 but ids live at a 16-byte stride (the Nbr field of
// consecutive interleaved arcs).
TEXT ·PrefetchComm8S16(SB), NOSPLIT, $0-16
	MOVD comm+0(FP), R0
	MOVD ids+8(FP), R1
	MOVW 0(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 16(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 32(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 48(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 64(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 80(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 96(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	MOVW 112(R1), R2
	ADD  R2<<2, R0, R3
	PRFM (R3), PLDL1KEEP
	RET
