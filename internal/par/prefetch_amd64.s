//go:build !noasm

#include "textflag.h"

// func Prefetch32(p *int32)
TEXT ·Prefetch32(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET

// func PrefetchComm8(comm *int32, ids *int32)
// Eight gather-style prefetches: comm[ids[k]] for k in 0..7, ids contiguous.
TEXT ·PrefetchComm8(SB), NOSPLIT, $0-16
	MOVQ comm+0(FP), AX
	MOVQ ids+8(FP), BX
	MOVLQSX 0(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 4(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 8(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 12(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 16(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 20(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 24(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 28(BX), CX
	PREFETCHT0 (AX)(CX*4)
	RET

// func PrefetchComm8S16(comm *int32, ids *int32)
// As PrefetchComm8 but ids live at a 16-byte stride (the Nbr field of
// consecutive interleaved arcs).
TEXT ·PrefetchComm8S16(SB), NOSPLIT, $0-16
	MOVQ comm+0(FP), AX
	MOVQ ids+8(FP), BX
	MOVLQSX 0(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 16(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 32(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 48(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 64(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 80(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 96(BX), CX
	PREFETCHT0 (AX)(CX*4)
	MOVLQSX 112(BX), CX
	PREFETCHT0 (AX)(CX*4)
	RET
