// Package par provides the parallel-execution substrate used throughout the
// repository: bounded worker pools over index ranges (the Go analog of
// "#pragma omp parallel for"), parallel reductions, parallel prefix sums,
// and lock-free atomic accumulators.
//
// All functions take an explicit worker count so that callers (and the
// benchmark harness reproducing the paper's thread sweeps) control the
// degree of parallelism precisely rather than relying on GOMAXPROCS.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes a
// non-positive value: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// normWorkers clamps p to [1, n] with the default substituted for p <= 0.
// n is the amount of work available; there is no point spawning more
// goroutines than work items.
func normWorkers(p, n int) int {
	if p <= 0 {
		p = DefaultWorkers()
	}
	if n < 1 {
		return 1
	}
	if p > n {
		p = n
	}
	return p
}

// For runs body(i) for every i in [0, n) using p workers. Iterations are
// distributed in contiguous blocks computed from a shared atomic cursor with
// a grain size that amortizes the cursor contention; this mirrors OpenMP's
// "schedule(dynamic, grain)" which the paper's irregular sweeps need (vertex
// costs are proportional to degree and highly skewed on several inputs).
func For(n, p int, body func(i int)) {
	ForChunk(n, p, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunk runs body(lo, hi) over disjoint chunks covering [0, n) using p
// workers. grain is the chunk size; grain <= 0 selects a size that yields
// roughly 8 chunks per worker, a reasonable balance between scheduling
// overhead and load balance for skewed work.
func ForChunk(n, p, grain int, body func(lo, hi int)) {
	ForChunkWorker(n, p, grain, func(_, lo, hi int) { body(lo, hi) })
}

// Workers returns the effective worker count a loop over n items will use
// for a requested parallelism p: p clamped to [1, n] with the default
// substituted for p <= 0. Callers sizing per-worker state (scratch pools
// indexed by the worker argument of ForChunkWorker / ForChunkPrefix /
// ForStatic) should allocate exactly this many slots.
func Workers(p, n int) int { return normWorkers(p, n) }

// ForChunkWorker is ForChunk with the claiming worker's index (in
// [0, Workers(p, n))) passed to the body, so callers can reuse per-worker
// scratch state (e.g. a SparseAccum per worker) across chunks instead of
// allocating per chunk. Chunks are still dynamically scheduled; the worker
// index only identifies the goroutine, not a static range.
func ForChunkWorker(n, p, grain int, body func(worker, lo, hi int)) {
	ForChunkWorkerCtx(body, n, p, grain, func(b func(worker, lo, hi int), w, lo, hi int) {
		b(w, lo, hi)
	})
}

// ForChunkWorkerCtx is ForChunkWorker with an explicit context value threaded
// into the body instead of captured by it. A CAPTURELESS body literal is a
// static function value, so — unlike the closure-based variants, whose body
// parameter escapes into the worker goroutines and therefore heap-allocates
// the capturing closure at every call site — a single-worker call allocates
// nothing. The pooled-engine hot loops use these ...Ctx forms so a warmed
// Engine.Run is allocation-free end to end.
func ForChunkWorkerCtx[C any](ctx C, n, p, grain int, body func(ctx C, worker, lo, hi int)) {
	p = normWorkers(p, n)
	if n == 0 {
		return
	}
	if p == 1 {
		body(ctx, 0, 0, n)
		return
	}
	if grain <= 0 {
		grain = n / (p * 8)
		if grain < 1 {
			grain = 1
		}
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		// grain is passed as an argument, not captured: a reassigned variable
		// is captured by reference, and a by-reference capture in the
		// goroutine closure would heap-box it in the prologue even when the
		// single-worker path returns early.
		go func(w, grain int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(ctx, w, lo, hi)
			}
		}(w, grain)
	}
	wg.Wait()
}

// ForChunkCtx is ForChunk with an explicit context value (see
// ForChunkWorkerCtx for why: captureless bodies make single-worker calls
// allocation-free). It duplicates the loop rather than adapting through
// ForChunkWorkerCtx: a generic adapter closure needs the instantiation
// dictionary and would itself allocate per call.
func ForChunkCtx[C any](ctx C, n, p, grain int, body func(ctx C, lo, hi int)) {
	p = normWorkers(p, n)
	if n == 0 {
		return
	}
	if p == 1 {
		body(ctx, 0, n)
		return
	}
	if grain <= 0 {
		grain = n / (p * 8)
		if grain < 1 {
			grain = 1
		}
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(grain int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(ctx, lo, hi)
			}
		}(grain)
	}
	wg.Wait()
}

// ForChunkPrefix runs body(worker, lo, hi) over disjoint chunks covering
// [0, n) whose boundaries are balanced by cumulative item WEIGHT rather than
// item count. prefix must be an exclusive prefix sum of length n+1
// (prefix[i] = total weight of items [0, i); a graph's CSR offset array is
// exactly this for per-vertex arc counts). Roughly 8 weight-balanced chunks
// per worker are dynamically scheduled, so a handful of heavy items (hub
// vertices on skewed inputs) cannot serialize a sweep the way count-based
// chunking lets them.
func ForChunkPrefix(prefix []int64, p int, body func(worker, lo, hi int)) {
	ForChunkPrefixCtx(body, prefix, p, func(b func(worker, lo, hi int), w, lo, hi int) {
		b(w, lo, hi)
	})
}

// ForChunkPrefixCtx is ForChunkPrefix with an explicit context value (see
// ForChunkWorkerCtx for why: captureless bodies make single-worker calls
// allocation-free).
func ForChunkPrefixCtx[C any](ctx C, prefix []int64, p int, body func(ctx C, worker, lo, hi int)) {
	n := len(prefix) - 1
	if n <= 0 {
		return
	}
	p = normWorkers(p, n)
	total := prefix[n] - prefix[0]
	if p == 1 || total <= 0 {
		body(ctx, 0, 0, n)
		return
	}
	chunks := p * 8
	if chunks > n {
		chunks = n
	}
	bound := func(c int) int {
		if c <= 0 {
			return 0
		}
		if c >= chunks {
			return n
		}
		// Smallest i with prefix[i]-prefix[0] >= c·total/chunks: zero-weight
		// runs collapse into one boundary, possibly leaving empty chunks.
		target := prefix[0] + int64(c)*total/int64(chunks)
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if prefix[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo, hi := bound(c), bound(c+1)
				if lo < hi {
					body(ctx, w, lo, hi)
				}
			}
		}(w)
	}
	wg.Wait()
}

// ForStatic runs body(worker, lo, hi) over p contiguous slabs of [0, n),
// one slab per worker (OpenMP "schedule(static)"). Use when per-item cost is
// uniform or when per-worker state (e.g. thread-local accumulators indexed
// by worker id) is needed.
func ForStatic(n, p int, body func(worker, lo, hi int)) {
	ForStaticCtx(body, n, p, func(b func(worker, lo, hi int), w, lo, hi int) {
		b(w, lo, hi)
	})
}

// ForStaticCtx is ForStatic with an explicit context value (see
// ForChunkWorkerCtx for why: captureless bodies make single-worker calls
// allocation-free).
func ForStaticCtx[C any](ctx C, n, p int, body func(ctx C, worker, lo, hi int)) {
	p = normWorkers(p, n)
	if n == 0 {
		return
	}
	if p == 1 {
		body(ctx, 0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		lo := w * n / p
		hi := (w + 1) * n / p
		go func(w, lo, hi int) {
			defer wg.Done()
			if lo < hi {
				body(ctx, w, lo, hi)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// SumFloat64 computes the sum of f(i) over [0, n) in parallel with a
// deterministic reduction order (per-worker partials combined in worker
// order), so results are reproducible for a fixed p.
func SumFloat64(n, p int, f func(i int) float64) float64 {
	return SumFloat64Ctx(f, n, p, func(f func(i int) float64, i int) float64 { return f(i) })
}

// SumFloat64Ctx is SumFloat64 with an explicit context value (see
// ForChunkWorkerCtx for why: captureless bodies make single-worker calls
// allocation-free).
func SumFloat64Ctx[C any](ctx C, n, p int, f func(ctx C, i int) float64) float64 {
	p = normWorkers(p, n)
	if p == 1 {
		s := 0.0
		for i := 0; i < n; i++ {
			s += f(ctx, i)
		}
		return s
	}
	// The closure-based ForStatic is deliberate here: the parallel path
	// allocates for its goroutines anyway, and the ...Ctx contract
	// (capturebody-enforced) reserves the Ctx helpers for captureless
	// bodies. The allocation-free case is the p == 1 early return above.
	partials := make([]float64, p)
	ForStatic(n, p, func(w, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += f(ctx, i)
		}
		partials[w] = s
	})
	total := 0.0
	for _, s := range partials {
		total += s
	}
	return total
}

// SumInt64 is the integer analog of SumFloat64.
func SumInt64(n, p int, f func(i int) int64) int64 {
	p = normWorkers(p, n)
	if p == 1 {
		var s int64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	partials := make([]int64, p)
	ForStatic(n, p, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partials[w] = s
	})
	var total int64
	for _, s := range partials {
		total += s
	}
	return total
}

// MaxInt64 computes the maximum of f(i) over [0, n) in parallel. It returns
// 0 for n == 0.
func MaxInt64(n, p int, f func(i int) int64) int64 {
	return MaxInt64Ctx(f, n, p, func(f func(i int) int64, i int) int64 { return f(i) })
}

// MaxInt64Ctx is MaxInt64 with an explicit context value (see
// ForChunkWorkerCtx for why: captureless bodies make single-worker calls
// allocation-free).
func MaxInt64Ctx[C any](ctx C, n, p int, f func(ctx C, i int) int64) int64 {
	if n == 0 {
		return 0
	}
	p = normWorkers(p, n)
	if p == 1 {
		m := f(ctx, 0)
		for i := 1; i < n; i++ {
			if v := f(ctx, i); v > m {
				m = v
			}
		}
		return m
	}
	partials := make([]int64, p)
	ForStatic(n, p, func(w, lo, hi int) {
		m := f(ctx, lo)
		for i := lo + 1; i < hi; i++ {
			if v := f(ctx, i); v > m {
				m = v
			}
		}
		partials[w] = m
	})
	m := partials[0]
	for _, v := range partials[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ExclusivePrefixSum replaces v with its exclusive prefix sum and returns
// the total. With p > 1 it uses the classic two-pass blocked scan (per-block
// sums, scan of block sums, block-local scan); the paper lists exactly this
// parallelization as the fix for its serial community-renumbering step.
func ExclusivePrefixSum(v []int64, p int) int64 {
	n := len(v)
	if n == 0 {
		return 0
	}
	p = normWorkers(p, n)
	if p == 1 || n < 4096 {
		var run int64
		for i := range v {
			v[i], run = run, run+v[i]
		}
		return run
	}
	blockSums := make([]int64, p)
	ForStatic(n, p, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += v[i]
		}
		blockSums[w] = s
	})
	var run int64
	for w := range blockSums {
		blockSums[w], run = run, run+blockSums[w]
	}
	ForStatic(n, p, func(w, lo, hi int) {
		acc := blockSums[w]
		for i := lo; i < hi; i++ {
			v[i], acc = acc, acc+v[i]
		}
	})
	return run
}

// Float64 is a float64 cell supporting lock-free atomic addition, the Go
// analog of the paper's __sync_fetch_and_add on doubles. The zero value is
// ready to use and holds 0.
type Float64 struct {
	bits atomic.Uint64
}

// Load returns the current value.
func (a *Float64) Load() float64 { return fromBits(a.bits.Load()) }

// Store sets the value.
func (a *Float64) Store(v float64) { a.bits.Store(toBits(v)) }

// Add atomically adds delta and returns the new value.
func (a *Float64) Add(delta float64) float64 {
	for {
		old := a.bits.Load()
		next := fromBits(old) + delta
		if a.bits.CompareAndSwap(old, toBits(next)) {
			return next
		}
	}
}

// AddFloat64 atomically adds delta to the float64 at *cell, which must be
// aligned (Go guarantees 8-byte alignment for float64 slice elements). It is
// used for dense arrays of accumulators where a []Float64 would waste cache
// on padding-free but pointer-heavy layouts.
func AddFloat64(cell *float64, delta float64) {
	addr := (*atomic.Uint64)(ptr(cell))
	for {
		old := addr.Load()
		next := fromBits(old) + delta
		if addr.CompareAndSwap(old, toBits(next)) {
			return
		}
	}
}

// LoadFloat64 atomically reads the float64 at *cell. Pair with AddFloat64
// when readers run concurrently with writers (the paper's colored sweeps
// read community degrees while other vertices update them).
func LoadFloat64(cell *float64) float64 {
	return fromBits((*atomic.Uint64)(ptr(cell)).Load())
}
