package par

import "testing"

func TestMarkerSetResetGrow(t *testing.T) {
	m := NewMarker(4)
	if m.Universe() != 4 {
		t.Fatalf("universe %d", m.Universe())
	}
	m.Set(1)
	m.Set(3)
	if !m.Has(1) || !m.Has(3) || m.Has(0) || m.Has(2) {
		t.Fatal("membership wrong after Set")
	}
	m.Reset()
	for k := int32(0); k < 4; k++ {
		if m.Has(k) {
			t.Fatalf("key %d survived Reset", k)
		}
	}
	m.Set(2)
	m.Grow(8)
	if m.Universe() != 8 {
		t.Fatalf("universe %d after Grow", m.Universe())
	}
	if !m.Has(2) {
		t.Fatal("Grow dropped an existing mark")
	}
	for k := int32(4); k < 8; k++ {
		if m.Has(k) {
			t.Fatalf("new slot %d born marked", k)
		}
	}
	m.Grow(2) // shrink request is a no-op
	if m.Universe() != 8 {
		t.Fatalf("universe %d after no-op Grow", m.Universe())
	}
	if NewMarker(-1).Universe() != 0 {
		t.Fatal("negative universe not clamped")
	}
}

func TestMarkerGenerationWrap(t *testing.T) {
	m := NewMarker(2)
	m.Set(0)
	m.gen = 1<<31 - 1 // force the exhaustion path on the next Reset
	m.Reset()
	if m.Has(0) || m.Has(1) {
		t.Fatal("marks survived generation wrap")
	}
	m.Set(1)
	if !m.Has(1) || m.Has(0) {
		t.Fatal("marker broken after wrap")
	}
}
