package generate

import (
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// HubCommunitiesConfig parameterizes the hub-structured community generator
// used for the web and social input analogs (CNR, uk-2002, Soc-LiveJournal,
// friendster). Real web crawls combine two properties that neither pure
// preferential attachment nor pure R-MAT reproduces together: extreme degree
// skew (hub pages) AND strong community structure (sites/domains). This
// generator plants power-law-sized communities, wires each one as a hub
// star plus random intra edges, and adds cross edges preferentially
// attached to foreign hubs.
type HubCommunitiesConfig struct {
	// Sizes lists the planted community sizes (use PowerLawCommunitySizes
	// for a realistic tail).
	Sizes []int
	// IntraDegree is the target average intra-community degree (>= 2; the
	// hub star contributes ~2).
	IntraDegree float64
	// CrossFrac is the expected number of cross-community edges per vertex.
	// Low values (0.01-0.1) give web-like modularity ~0.9+; higher values
	// (0.3-0.6) give social-network modularity ~0.6-0.8.
	CrossFrac float64
	// HubFanout adds this many extra hub-to-hub long-range edges per
	// community, concentrating cross degree on hubs (drives up degree RSD
	// and skews color-set sizes like uk-2002).
	HubFanout int
}

// HubCommunities generates the graph and returns it with the planted
// ground-truth assignment.
func HubCommunities(cfg HubCommunitiesConfig, seed uint64, workers int) (*graph.Graph, []int32) {
	if len(cfg.Sizes) == 0 {
		panic("generate: HubCommunities needs at least one community")
	}
	n := 0
	for _, s := range cfg.Sizes {
		if s <= 0 {
			panic("generate: HubCommunities sizes must be positive")
		}
		n += s
	}
	truth := make([]int32, n)
	starts := make([]int, len(cfg.Sizes)+1)
	for c, s := range cfg.Sizes {
		starts[c+1] = starts[c] + s
		for i := starts[c]; i < starts[c+1]; i++ {
			truth[i] = int32(c)
		}
	}
	rng := par.NewRNG(seed)
	var edges []graph.Edge
	// Intra-community wiring: hub star + random extra edges.
	for c, s := range cfg.Sizes {
		base := starts[c]
		hub := int32(base) // first vertex of each community is its hub
		for i := 1; i < s; i++ {
			edges = append(edges, graph.Edge{U: hub, V: int32(base + i), W: 1})
		}
		extra := int(float64(s) * (cfg.IntraDegree - 2) / 2)
		for e := 0; e < extra; e++ {
			u := base + rng.Intn(s)
			v := base + rng.Intn(s)
			if u != v {
				edges = append(edges, graph.Edge{U: int32(u), V: int32(v), W: 1})
			}
		}
	}
	// Cross edges: random vertex to a random FOREIGN hub (preferential to
	// hubs, reproducing the fat tail of web link targets).
	k := len(cfg.Sizes)
	cross := int(float64(n) * cfg.CrossFrac / 2)
	for e := 0; e < cross; e++ {
		u := rng.Intn(n)
		c := rng.Intn(k)
		hub := int32(starts[c])
		if truth[u] != int32(c) {
			edges = append(edges, graph.Edge{U: int32(u), V: hub, W: 1})
		}
	}
	// Hub-to-hub fanout.
	if k > 1 {
		for c := 0; c < k; c++ {
			for f := 0; f < cfg.HubFanout; f++ {
				d := rng.Intn(k)
				if d != c {
					edges = append(edges, graph.Edge{U: int32(starts[c]), V: int32(starts[d]), W: 1})
				}
			}
		}
	}
	return graph.FromEdges(n, edges, workers), truth
}
