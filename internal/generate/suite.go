package generate

import (
	"fmt"
	"math"
	"os"
	"sort"

	"grappolo/internal/graph"
)

// Scale selects how large the synthetic input suite is. The paper's graphs
// span 325 K – 52 M vertices; the suite reproduces their shapes at sizes
// suitable for unit tests (Small), example programs (Medium), and the
// benchmark harness (Large).
type Scale int

const (
	// Small keeps every input under ~3k vertices (test suites).
	Small Scale = iota
	// Medium targets ~10k-60k vertices (examples, quick experiments).
	Medium
	// Large targets ~40k-260k vertices (benchmark harness).
	Large
)

// ScaleFromEnv returns the Scale selected by the GRAPPOLO_BENCH_SCALE
// environment variable (small | medium | large), defaulting to Medium.
// Benchmark files across the repository share this single mapping.
func ScaleFromEnv() Scale {
	switch os.Getenv("GRAPPOLO_BENCH_SCALE") {
	case "small":
		return Small
	case "large":
		return Large
	default:
		return Medium
	}
}

// Input identifies one of the 11 synthetic analogs of the paper's Table 1.
type Input string

// The 11 inputs of the paper's evaluation (Table 1), in table order.
const (
	CNR         Input = "cnr"         // web crawl, extreme degree skew
	CoPapers    Input = "copapers"    // co-authorship, clique-heavy
	Channel     Input = "channel"     // uniform mesh, weak communities
	EuropeOSM   Input = "europe"      // road network, avg degree ~2
	LiveJournal Input = "livejournal" // social, R-MAT
	MG1         Input = "mg1"         // metagenomics, strong communities
	RGG         Input = "rgg"         // random geometric
	UK2002      Input = "uk"          // web, skewed (coloring stress)
	NLPKKT      Input = "nlpkkt"      // optimization mesh, poor structure
	MG2         Input = "mg2"         // metagenomics, larger
	Friendster  Input = "friendster"  // largest social
)

// Suite returns the 11 inputs in the paper's Table 1 order.
func Suite() []Input {
	return []Input{CNR, CoPapers, Channel, EuropeOSM, LiveJournal, MG1, RGG, UK2002, NLPKKT, MG2, Friendster}
}

// Generate builds the named input analog at the given scale. The seed
// perturbs the deterministic default stream; use 0 for the canonical
// instance referenced by EXPERIMENTS.md.
func Generate(in Input, sc Scale, seed uint64, workers int) (*graph.Graph, error) {
	s := seed + 0x5eed
	switch in {
	case CNR:
		// Web crawl: extreme hub skew + strong site communities (paper
		// Q ≈ 0.91, degree RSD 13).
		sizes := PowerLawCommunitySizes(pick(sc, 25, 250, 700), 8, pick(sc, 400, 2500, 6000), 1.9, s)
		g, _ := HubCommunities(HubCommunitiesConfig{
			Sizes: sizes, IntraDegree: 10, CrossFrac: 0.08, HubFanout: 3,
		}, s, workers)
		return g, nil
	case CoPapers:
		count := pick(sc, 40, 400, 1200)
		return CliqueChain(count, 24, 4, s), nil
	case Channel:
		d := pick(sc, 10, 24, 40)
		return Torus3D(d, d, d, s), nil
	case EuropeOSM:
		side := pick(sc, 28, 90, 220)
		return RoadNetwork(side, 0.12, 0.5, 4, s), nil
	case LiveJournal:
		// Social network: hub skew with moderate community structure
		// (paper Q ≈ 0.75).
		sizes := PowerLawCommunitySizes(pick(sc, 30, 300, 800), 6, pick(sc, 250, 1200, 3000), 2.1, s)
		g, _ := HubCommunities(HubCommunitiesConfig{
			Sizes: sizes, IntraDegree: 12, CrossFrac: 0.9, HubFanout: 4,
		}, s, workers)
		return g, nil
	case MG1:
		sizes := PowerLawCommunitySizes(pick(sc, 20, 120, 300), 20, pick(sc, 120, 400, 800), 2.2, s)
		g, _ := SBM(SBMConfig{Communities: sizes, IntraDegree: 24, CrossFrac: 0.04}, s, workers)
		return g, nil
	case RGG:
		n := pick(sc, 2000, 30000, 120000)
		return RandomGeometric(n, radiusForAvgDeg(n, 15.8), s, workers), nil
	case UK2002:
		// Web crawl, larger and more skewed than CNR (paper Q ≈ 0.99,
		// degree RSD 5.1, and the skew that makes coloring sets uneven).
		sizes := PowerLawCommunitySizes(pick(sc, 30, 300, 900), 10, pick(sc, 500, 4000, 10000), 1.7, s)
		g, _ := HubCommunities(HubCommunitiesConfig{
			Sizes: sizes, IntraDegree: 12, CrossFrac: 0.02, HubFanout: 6,
		}, s, workers)
		return g, nil
	case NLPKKT:
		d := pick(sc, 11, 26, 44)
		return Torus3D(d, d, d, s), nil
	case MG2:
		sizes := PowerLawCommunitySizes(pick(sc, 30, 200, 500), 30, pick(sc, 150, 500, 1000), 2.0, s)
		g, _ := SBM(SBMConfig{Communities: sizes, IntraDegree: 30, CrossFrac: 0.01}, s, workers)
		return g, nil
	case Friendster:
		// Largest social input: weaker communities (paper Q ≈ 0.63) and the
		// heaviest degree tail (RSD 17).
		sizes := PowerLawCommunitySizes(pick(sc, 45, 450, 1200), 6, pick(sc, 700, 5000, 15000), 1.8, s+1)
		g, _ := HubCommunities(HubCommunitiesConfig{
			Sizes: sizes, IntraDegree: 10, CrossFrac: 2.0, HubFanout: 8,
		}, s+1, workers)
		return g, nil
	default:
		return nil, fmt.Errorf("generate: unknown input %q (known: %v)", in, Suite())
	}
}

// MustGenerate is Generate for known-good inputs; it panics on error.
// Intended for tests and benchmarks where the input set is fixed.
func MustGenerate(in Input, sc Scale, seed uint64, workers int) *graph.Graph {
	g, err := Generate(in, sc, seed, workers)
	if err != nil {
		panic(err)
	}
	return g
}

// GroundTruth reports whether the input has a planted ground-truth
// partition (the SBM-based metagenomics analogs) and returns it.
func GroundTruth(in Input, sc Scale, seed uint64, workers int) ([]int32, bool) {
	s := seed + 0x5eed
	switch in {
	case MG1:
		sizes := PowerLawCommunitySizes(pick(sc, 20, 120, 300), 20, pick(sc, 120, 400, 800), 2.2, s)
		_, truth := SBM(SBMConfig{Communities: sizes, IntraDegree: 24, CrossFrac: 0.04}, s, workers)
		return truth, true
	case MG2:
		sizes := PowerLawCommunitySizes(pick(sc, 30, 200, 500), 30, pick(sc, 150, 500, 1000), 2.0, s)
		_, truth := SBM(SBMConfig{Communities: sizes, IntraDegree: 30, CrossFrac: 0.01}, s, workers)
		return truth, true
	default:
		return nil, false
	}
}

func pick(sc Scale, small, medium, large int) int {
	switch sc {
	case Small:
		return small
	case Medium:
		return medium
	default:
		return large
	}
}

// radiusForAvgDeg returns the RGG radius that yields the requested expected
// average degree for n uniform points in the unit square:
// E[deg] = n·π·r² (ignoring boundary effects).
func radiusForAvgDeg(n int, avgDeg float64) float64 {
	r := math.Sqrt(avgDeg / (math.Pi * float64(n)))
	if r >= 1 {
		r = 0.5
	}
	return r
}

// SortedCopy returns a descending copy of sizes; exported for harness code
// that reports community-size distributions.
func SortedCopy(sizes []int) []int {
	out := append([]int(nil), sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
