// Package generate produces deterministic synthetic graphs whose shapes
// reproduce the paper's 11-input evaluation suite (Table 1) at laptop scale.
//
// The paper's experiments run on real graphs (DIMACS10, UFL sparse matrix
// collection, ocean metagenomics) up to 1.8 billion edges. Those inputs are
// not redistributable here, and the qualitative behaviour the paper
// analyzes — VF's win on hub-and-spoke graphs and loss on road networks,
// coloring's win except under skewed color-set sizes, rebuild dominating on
// low-modularity inputs — is a function of degree distribution and community
// strength. Each generator below reproduces those controlling properties for
// one paper input; see DESIGN.md §5 for the mapping.
//
// All generators are deterministic for a fixed seed and parallel-safe (each
// worker derives its own RNG stream).
package generate

import (
	"fmt"
	"math"
	"sort"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// BarabasiAlbert generates a preferential-attachment graph: n vertices,
// each new vertex attaching k edges to existing vertices with probability
// proportional to degree. This yields the heavy-tailed degree distribution
// (high RSD) of the paper's web/citation inputs (CNR, uk-2002).
func BarabasiAlbert(n, k int, seed uint64) *graph.Graph {
	if n < 2 || k < 1 {
		panic("generate: BarabasiAlbert needs n >= 2, k >= 1")
	}
	rng := par.NewRNG(seed)
	// Repeated-endpoint list: element per half-edge; sampling uniformly from
	// it implements degree-proportional attachment.
	endpoints := make([]int32, 0, 2*n*k)
	b := graph.NewBuilder(n)
	b.AddEdge(0, 1, 1)
	endpoints = append(endpoints, 0, 1)
	for v := 2; v < n; v++ {
		attach := k
		if v < k {
			attach = v
		}
		chosen := make(map[int32]struct{}, attach)
		for len(chosen) < attach {
			u := endpoints[rng.Intn(len(endpoints))]
			chosen[u] = struct{}{}
		}
		for u := range chosen {
			b.AddEdge(int32(v), u, 1)
			endpoints = append(endpoints, int32(v), u)
		}
	}
	return b.Build(0)
}

// CliqueChain generates overlapping cliques: count cliques of the given
// size, consecutive cliques sharing `overlap` vertices. This reproduces the
// co-authorship structure of coPapersDBLP: high average degree, low degree
// RSD, very strong community structure.
func CliqueChain(count, size, overlap int, seed uint64) *graph.Graph {
	if size < 2 || overlap < 0 || overlap >= size || count < 1 {
		panic("generate: CliqueChain needs size >= 2, 0 <= overlap < size")
	}
	stride := size - overlap
	n := size + (count-1)*stride
	b := graph.NewBuilder(n)
	for c := 0; c < count; c++ {
		base := c * stride
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddEdge(int32(base+i), int32(base+j), 1)
			}
		}
	}
	_ = seed // structure is deterministic; parameter kept for interface symmetry
	return b.Build(0)
}

// Torus3D generates a 3-dimensional torus of shape dx×dy×dz where each
// vertex connects to its full 26-cell Moore neighborhood. Every degree is
// exactly 26 (RSD = 0) and community structure is weak — the shape of the
// paper's Channel and NLPKKT240 inputs (uniform degrees, low modularity,
// slow first-phase convergence).
func Torus3D(dx, dy, dz int, seed uint64) *graph.Graph {
	if dx < 3 || dy < 3 || dz < 3 {
		panic("generate: Torus3D needs each dimension >= 3 (Moore neighborhood wraps)")
	}
	n := dx * dy * dz
	id := func(x, y, z int) int32 {
		return int32(((x+dx)%dx)*dy*dz + ((y+dy)%dy)*dz + (z+dz)%dz)
	}
	var edges []graph.Edge
	for x := 0; x < dx; x++ {
		for y := 0; y < dy; y++ {
			for z := 0; z < dz; z++ {
				u := id(x, y, z)
				for ddx := -1; ddx <= 1; ddx++ {
					for ddy := -1; ddy <= 1; ddy++ {
						for ddz := -1; ddz <= 1; ddz++ {
							if ddx == 0 && ddy == 0 && ddz == 0 {
								continue
							}
							v := id(x+ddx, y+ddy, z+ddz)
							if u < v { // add each undirected edge once
								edges = append(edges, graph.Edge{U: u, V: v, W: 1})
							}
						}
					}
				}
			}
		}
	}
	_ = seed
	return graph.FromEdges(n, edges, 0)
}

// RoadNetwork generates a planar-style road mesh: a jittered 2-D grid
// backbone where each grid edge survives with probability keep, plus
// degree-1 spoke chains hanging off backbone vertices. The result matches
// Europe-osm's shape: average degree ≈ 2, long chains, a large fraction of
// single-degree vertices (the VF heuristic's stress case, §6.2).
func RoadNetwork(side int, keep float64, spokeFrac float64, chainLen int, seed uint64) *graph.Graph {
	if side < 2 {
		panic("generate: RoadNetwork needs side >= 2")
	}
	rng := par.NewRNG(seed)
	nGrid := side * side
	id := func(x, y int) int32 { return int32(x*side + y) }
	b := graph.NewBuilder(nGrid)
	// Guaranteed-connected backbone: each row is a path and consecutive rows
	// are joined at column 0; the optional cross links below add loops.
	for x := 0; x < side; x++ {
		for y := 0; y+1 < side; y++ {
			b.AddEdge(id(x, y), id(x, y+1), 1)
		}
		if x+1 < side {
			b.AddEdge(id(x, 0), id(x+1, 0), 1)
		}
	}
	for x := 0; x+1 < side; x++ {
		for y := 1; y < side; y++ {
			if rng.Float64() < keep {
				b.AddEdge(id(x, y), id(x+1, y), 1)
			}
		}
	}
	// Spoke chains: single-neighbor paths hanging off random grid vertices.
	next := int32(nGrid)
	spokes := int(float64(nGrid) * spokeFrac)
	for s := 0; s < spokes; s++ {
		anchor := int32(rng.Intn(nGrid))
		prev := anchor
		l := 1 + rng.Intn(chainLen)
		for t := 0; t < l; t++ {
			b.AddEdge(prev, next, 1)
			prev = next
			next++
		}
	}
	return b.Build(0)
}

// RMATConfig holds the recursive-matrix quadrant probabilities. They must
// be positive and sum to 1.
type RMATConfig struct {
	A, B, C, D float64
}

// Social is the R-MAT parameterization used for social-network analogs
// (Soc-LiveJournal1, friendster).
var Social = RMATConfig{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// Web is a more skewed parameterization for web-crawl analogs (uk-2002),
// producing the highly imbalanced structure that skews color-set sizes.
var Web = RMATConfig{A: 0.63, B: 0.17, C: 0.17, D: 0.03}

// RMAT generates a recursive-matrix graph with 2^scale vertices and
// approximately edgeFactor × 2^scale undirected edges (duplicates merge, so
// the final count is slightly lower). Self-loops are dropped. Edge
// generation is parallel with deterministic per-worker streams.
func RMAT(scale, edgeFactor int, cfg RMATConfig, seed uint64, workers int) *graph.Graph {
	if scale < 1 || scale > 30 {
		panic("generate: RMAT scale out of range [1,30]")
	}
	if s := cfg.A + cfg.B + cfg.C + cfg.D; math.Abs(s-1) > 1e-9 || cfg.A <= 0 || cfg.B <= 0 || cfg.C <= 0 || cfg.D <= 0 {
		panic(fmt.Sprintf("generate: RMAT probabilities must be positive and sum to 1, got %v", cfg))
	}
	n := 1 << scale
	total := n * edgeFactor
	edges := make([]graph.Edge, total)
	root := par.NewRNG(seed)
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	par.ForStatic(total, workers, func(w, lo, hi int) {
		rng := root.SplitN(w)
		for t := lo; t < hi; t++ {
			u, v := 0, 0
			for bit := 0; bit < scale; bit++ {
				r := rng.Float64()
				switch {
				case r < cfg.A:
					// stay in quadrant (0,0)
				case r < cfg.A+cfg.B:
					v |= 1 << bit
				case r < cfg.A+cfg.B+cfg.C:
					u |= 1 << bit
				default:
					u |= 1 << bit
					v |= 1 << bit
				}
			}
			if u == v {
				v = (v + 1) % n // avoid self-loops; keeps edge count exact
			}
			edges[t] = graph.Edge{U: int32(u), V: int32(v), W: 1}
		}
	})
	return graph.FromEdges(n, edges, workers)
}

// RandomGeometric generates a random geometric graph: n points uniform in
// the unit square, vertices within distance radius connected. Matches
// Rgg_n_2_24_s0's shape: near-uniform degrees (low RSD) with strong
// geometric community structure (high modularity).
func RandomGeometric(n int, radius float64, seed uint64, workers int) *graph.Graph {
	if n < 1 || radius <= 0 || radius >= 1 {
		panic("generate: RandomGeometric needs n >= 1, 0 < radius < 1")
	}
	rng := par.NewRNG(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	// Uniform grid of cell size radius: each vertex only compares against
	// points in its own and neighboring cells.
	cells := int(1/radius) + 1
	cellOf := func(i int) (int, int) {
		cx, cy := int(xs[i]/radius), int(ys[i]/radius)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	bucket := make(map[[2]int][]int32)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		bucket[[2]int{cx, cy}] = append(bucket[[2]int{cx, cy}], int32(i))
	}
	r2 := radius * radius
	type shard struct{ edges []graph.Edge }
	shards := make([]shard, workers2(workers))
	par.ForStatic(n, len(shards), func(w, lo, hi int) {
		local := &shards[w]
		for i := lo; i < hi; i++ {
			cx, cy := cellOf(i)
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					for _, j := range bucket[[2]int{cx + dx, cy + dy}] {
						if int32(i) >= j {
							continue
						}
						ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
						if ddx*ddx+ddy*ddy <= r2 {
							local.edges = append(local.edges, graph.Edge{U: int32(i), V: j, W: 1})
						}
					}
				}
			}
		}
	})
	var edges []graph.Edge
	for _, s := range shards {
		edges = append(edges, s.edges...)
	}
	return graph.FromEdges(n, edges, workers)
}

func workers2(w int) int {
	if w <= 0 {
		return par.DefaultWorkers()
	}
	return w
}

// SBMConfig parameterizes the planted-partition / stochastic-block-model
// generator used for the metagenomics analogs (MG1, MG2): Communities
// community sizes, average intra-community degree per vertex, and the
// fraction of a vertex's edges that cross communities.
type SBMConfig struct {
	Communities  []int   // size of each planted community (all > 0)
	IntraDegree  float64 // expected intra-community degree per vertex
	CrossFrac    float64 // fraction of additional cross-community edges per vertex (0..1)
	WeightedEdge bool    // if true, intra edges get weight 2, cross weight 1
}

// SBM generates a planted-partition graph and returns it together with the
// ground-truth community assignment. High IntraDegree with low CrossFrac
// yields the modularity ≈ 0.97+ regime of the paper's MG inputs.
func SBM(cfg SBMConfig, seed uint64, workers int) (*graph.Graph, []int32) {
	if len(cfg.Communities) == 0 {
		panic("generate: SBM needs at least one community")
	}
	n := 0
	for _, s := range cfg.Communities {
		if s <= 0 {
			panic("generate: SBM community sizes must be positive")
		}
		n += s
	}
	truth := make([]int32, n)
	starts := make([]int, len(cfg.Communities)+1)
	for c, s := range cfg.Communities {
		starts[c+1] = starts[c] + s
		for i := starts[c]; i < starts[c+1]; i++ {
			truth[i] = int32(c)
		}
	}
	rng := par.NewRNG(seed)
	var edges []graph.Edge
	intraW, crossW := 1.0, 1.0
	if cfg.WeightedEdge {
		intraW = 2.0
	}
	for c, s := range cfg.Communities {
		base := starts[c]
		// Ring to keep each community connected, then random intra edges to
		// reach the target expected degree.
		for i := 0; i < s; i++ {
			j := (i + 1) % s
			if s > 1 && i < j {
				edges = append(edges, graph.Edge{U: int32(base + i), V: int32(base + j), W: intraW})
			}
		}
		extra := int(float64(s) * (cfg.IntraDegree - 2) / 2)
		for e := 0; e < extra; e++ {
			u := base + rng.Intn(s)
			v := base + rng.Intn(s)
			if u != v {
				edges = append(edges, graph.Edge{U: int32(u), V: int32(v), W: intraW})
			}
		}
	}
	cross := int(float64(n) * cfg.CrossFrac / 2)
	for e := 0; e < cross; e++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if truth[u] != truth[v] {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v), W: crossW})
		}
	}
	return graph.FromEdges(n, edges, workers), truth
}

// PowerLawCommunitySizes returns count community sizes following a truncated
// power law between min and max with the given exponent, deterministic for a
// fixed seed, sorted descending. Used to shape MG-like inputs.
func PowerLawCommunitySizes(count, min, max int, exponent float64, seed uint64) []int {
	if count < 1 || min < 1 || max < min {
		panic("generate: bad PowerLawCommunitySizes parameters")
	}
	rng := par.NewRNG(seed)
	sizes := make([]int, count)
	// Inverse-CDF sampling of p(s) ∝ s^(-exponent) on [min, max].
	a := 1 - exponent
	if math.Abs(a) < 1e-9 {
		a = -1e-9 // exponent 1: avoid the degenerate log case with a nudge
	}
	lo, hi := math.Pow(float64(min), a), math.Pow(float64(max), a)
	for i := range sizes {
		u := rng.Float64()
		s := math.Pow(lo+u*(hi-lo), 1/a)
		sizes[i] = int(s)
		if sizes[i] < min {
			sizes[i] = min
		}
		if sizes[i] > max {
			sizes[i] = max
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
