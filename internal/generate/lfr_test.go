package generate

import (
	"testing"

	"grappolo/internal/graph"
)

func lfrDefaults() LFRConfig {
	return LFRConfig{
		N:         2000,
		AvgDegree: 15,
		MaxDegree: 100,
		DegreeExp: 2.5,
		CommExp:   1.5,
		MinComm:   20,
		MaxComm:   200,
		Mu:        0.2,
	}
}

func TestLFRBasicShape(t *testing.T) {
	g, truth := LFR(lfrDefaults(), 1, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 || len(truth) != 2000 {
		t.Fatalf("n=%d", g.N())
	}
	st := graph.ComputeStats(g)
	if st.AvgDeg < 8 || st.AvgDeg > 22 {
		t.Fatalf("avg degree %v outside [8,22] (target 15)", st.AvgDeg)
	}
	// Power-law degrees: RSD well above a uniform graph's.
	if st.RSD < 0.3 {
		t.Fatalf("RSD %v too uniform for LFR", st.RSD)
	}
}

func TestLFRMixingParameterControlsStructure(t *testing.T) {
	measureMix := func(mu float64) float64 {
		cfg := lfrDefaults()
		cfg.Mu = mu
		g, truth := LFR(cfg, 2, 4)
		intra, inter := 0.0, 0.0
		for i := 0; i < g.N(); i++ {
			nbr, _ := g.Neighbors(i)
			for _, j := range nbr {
				if truth[i] == truth[j] {
					intra++
				} else {
					inter++
				}
			}
		}
		return inter / (inter + intra)
	}
	low := measureMix(0.1)
	high := measureMix(0.5)
	if low >= high {
		t.Fatalf("mixing did not increase with Mu: %.3f vs %.3f", low, high)
	}
	if low > 0.25 {
		t.Fatalf("Mu=0.1 realized mixing %.3f too high", low)
	}
	if high < 0.3 {
		t.Fatalf("Mu=0.5 realized mixing %.3f too low", high)
	}
}

func TestLFRCommunitySizesWithinBounds(t *testing.T) {
	g, truth := LFR(lfrDefaults(), 3, 2)
	_ = g
	counts := map[int32]int{}
	for _, c := range truth {
		counts[c]++
	}
	if len(counts) < 5 {
		t.Fatalf("only %d communities", len(counts))
	}
	for c, s := range counts {
		// MaxComm can be exceeded slightly by the remainder fold.
		if s < 2 || s > 2*200 {
			t.Fatalf("community %d has size %d", c, s)
		}
	}
}

func TestLFRTruthContiguous(t *testing.T) {
	_, truth := LFR(lfrDefaults(), 4, 2)
	for i := 1; i < len(truth); i++ {
		if truth[i] < truth[i-1] {
			t.Fatal("truth labels must be non-decreasing (contiguous blocks)")
		}
	}
}

func TestLFRDeterministic(t *testing.T) {
	a, _ := LFR(lfrDefaults(), 9, 4)
	b, _ := LFR(lfrDefaults(), 9, 4)
	if a.ArcCount() != b.ArcCount() || a.TotalWeight() != b.TotalWeight() {
		t.Fatal("LFR must be deterministic for fixed seed")
	}
}

func TestLFRBadParamsPanic(t *testing.T) {
	bad := []LFRConfig{
		{},
		{N: 100, AvgDegree: 10, MaxDegree: 50, MinComm: 10, MaxComm: 5, Mu: 0.2},
		{N: 100, AvgDegree: 10, MaxDegree: 50, MinComm: 10, MaxComm: 50, Mu: 1.0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			LFR(cfg, 0, 1)
		}()
	}
}
