package generate

import (
	"math"
	"testing"
	"testing/quick"

	"grappolo/internal/graph"
)

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(2000, 5, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("n=%d", g.N())
	}
	st := graph.ComputeStats(g)
	if st.AvgDeg < 6 || st.AvgDeg > 12 {
		t.Fatalf("avg degree %v outside BA expectation", st.AvgDeg)
	}
	// Preferential attachment must produce heavy tails: RSD well above a
	// uniform graph's and a max degree far above the mean.
	if st.RSD < 0.5 {
		t.Fatalf("RSD %v too small for a BA graph", st.RSD)
	}
	if float64(st.MaxDeg) < 5*st.AvgDeg {
		t.Fatalf("max degree %d not hub-like (avg %v)", st.MaxDeg, st.AvgDeg)
	}
	if _, count := graph.ConnectedComponents(g); count != 1 {
		t.Fatalf("BA graph must be connected, got %d components", count)
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(300, 3, 7)
	b := BarabasiAlbert(300, 3, 7)
	if a.ArcCount() != b.ArcCount() || a.TotalWeight() != b.TotalWeight() {
		t.Fatal("same seed must give identical graphs")
	}
}

func TestCliqueChainStructure(t *testing.T) {
	g := CliqueChain(10, 6, 2, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantN := 6 + 9*4
	if g.N() != wantN {
		t.Fatalf("n=%d want %d", g.N(), wantN)
	}
	// First clique is complete.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if !g.HasEdge(i, j) {
				t.Fatalf("missing clique edge {%d,%d}", i, j)
			}
		}
	}
	if _, count := graph.ConnectedComponents(g); count != 1 {
		t.Fatal("overlapping cliques must be connected")
	}
}

func TestTorus3DRegular(t *testing.T) {
	g := Torus3D(4, 4, 4, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 {
		t.Fatalf("n=%d", g.N())
	}
	st := graph.ComputeStats(g)
	if st.RSD != 0 {
		t.Fatalf("torus RSD=%v want 0", st.RSD)
	}
	if st.MaxDeg != 26 {
		t.Fatalf("torus degree=%d want 26", st.MaxDeg)
	}
}

func TestTorus3DSmallestAllowed(t *testing.T) {
	g := Torus3D(3, 3, 3, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(g)
	// In a 3-torus the 26 Moore offsets collapse onto fewer distinct
	// vertices; degree must still be uniform.
	if st.RSD != 0 {
		t.Fatalf("RSD=%v want 0", st.RSD)
	}
}

func TestRoadNetworkShape(t *testing.T) {
	g := RoadNetwork(30, 0.12, 0.5, 4, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(g)
	if st.AvgDeg < 1.5 || st.AvgDeg > 3.0 {
		t.Fatalf("road avg degree %v outside [1.5, 3.0]", st.AvgDeg)
	}
	// Road analogs need a healthy single-degree population for the VF
	// heuristic experiments.
	single := 0
	for i := 0; i < g.N(); i++ {
		if g.OutDegree(i) == 1 {
			single++
		}
	}
	if single < g.N()/20 {
		t.Fatalf("only %d/%d single-degree vertices", single, g.N())
	}
	if _, count := graph.ConnectedComponents(g); count != 1 {
		t.Fatalf("road network must be connected, got %d components", count)
	}
}

func TestRMATShapeAndDeterminism(t *testing.T) {
	g := RMAT(10, 8, Social, 1, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 1024 {
		t.Fatalf("n=%d", g.N())
	}
	st := graph.ComputeStats(g)
	if st.RSD < 0.8 {
		t.Fatalf("RMAT RSD=%v, want skewed (> 0.8)", st.RSD)
	}
	for i := 0; i < g.N(); i++ {
		if g.SelfLoopWeight(i) != 0 {
			t.Fatalf("RMAT emitted a self-loop at %d", i)
		}
	}
	g2 := RMAT(10, 8, Social, 1, 4)
	if g.ArcCount() != g2.ArcCount() || g.TotalWeight() != g2.TotalWeight() {
		t.Fatal("RMAT must be deterministic for fixed seed and workers")
	}
}

func TestRMATWorkerCountInvariance(t *testing.T) {
	// Worker streams are split by static slab index; equal worker counts
	// must give identical graphs, and the graph must be valid for any count.
	a := RMAT(9, 6, Web, 5, 2)
	b := RMAT(9, 6, Web, 5, 2)
	if a.ArcCount() != b.ArcCount() {
		t.Fatal("same worker count should reproduce")
	}
	c := RMAT(9, 6, Web, 5, 8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGeometricShape(t *testing.T) {
	g := RandomGeometric(3000, radiusForAvgDeg(3000, 12), 2, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(g)
	if st.AvgDeg < 8 || st.AvgDeg > 16 {
		t.Fatalf("rgg avg degree %v outside [8,16] (target 12)", st.AvgDeg)
	}
	if st.RSD > 0.6 {
		t.Fatalf("rgg RSD %v too skewed", st.RSD)
	}
}

func TestSBMGroundTruthDominatesStructure(t *testing.T) {
	sizes := []int{100, 80, 60, 40}
	g, truth := SBM(SBMConfig{Communities: sizes, IntraDegree: 16, CrossFrac: 0.05}, 1, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 280 || len(truth) != 280 {
		t.Fatalf("n=%d", g.N())
	}
	intra, inter := 0, 0
	for i := 0; i < g.N(); i++ {
		nbr, _ := g.Neighbors(i)
		for _, j := range nbr {
			if truth[i] == truth[j] {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra < 10*inter {
		t.Fatalf("intra=%d inter=%d: planted structure too weak", intra, inter)
	}
	// Truth must label contiguous blocks of the declared sizes.
	idx := 0
	for c, s := range sizes {
		for k := 0; k < s; k++ {
			if truth[idx] != int32(c) {
				t.Fatalf("truth[%d]=%d want %d", idx, truth[idx], c)
			}
			idx++
		}
	}
}

func TestSBMWeightedEdges(t *testing.T) {
	g, truth := SBM(SBMConfig{Communities: []int{30, 30}, IntraDegree: 8, CrossFrac: 0.4, WeightedEdge: true}, 3, 2)
	foundCross := false
	for i := 0; i < g.N() && !foundCross; i++ {
		nbr, w := g.Neighbors(i)
		for k, j := range nbr {
			if truth[i] != truth[j] {
				foundCross = true
				if w[k] != 1 {
					t.Fatalf("cross edge weight %v want 1", w[k])
				}
				break
			}
		}
	}
	if !foundCross {
		t.Fatal("no cross edges generated with CrossFrac=0.4")
	}
}

func TestPowerLawCommunitySizes(t *testing.T) {
	sizes := PowerLawCommunitySizes(200, 10, 500, 2.2, 4)
	if len(sizes) != 200 {
		t.Fatalf("len=%d", len(sizes))
	}
	for i, s := range sizes {
		if s < 10 || s > 500 {
			t.Fatalf("size[%d]=%d out of [10,500]", i, s)
		}
		if i > 0 && sizes[i-1] < s {
			t.Fatal("sizes not sorted descending")
		}
	}
	// Heavy tail: small communities should dominate the count.
	small := 0
	for _, s := range sizes {
		if s < 50 {
			small++
		}
	}
	if small < 100 {
		t.Fatalf("only %d/200 small communities; distribution not heavy-tailed", small)
	}
	// Exponent exactly 1 must not panic (degenerate inverse CDF case).
	_ = PowerLawCommunitySizes(10, 5, 50, 1.0, 1)
}

func TestSuiteGeneratesAllInputsSmall(t *testing.T) {
	for _, in := range Suite() {
		g, err := Generate(in, Small, 0, 4)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", in, err)
		}
		if g.N() < 100 {
			t.Fatalf("%s: suspiciously small n=%d", in, g.N())
		}
		st := graph.ComputeStats(g)
		t.Logf("%-12s %s", in, st)
	}
}

func TestSuiteShapesMatchPaperTable1(t *testing.T) {
	// The suite's purpose is reproducing Table 1's qualitative shapes.
	type bound struct {
		in     Input
		minRSD float64
		maxRSD float64
		minAvg float64
		maxAvg float64
	}
	bounds := []bound{
		{CNR, 0.8, 99, 4, 40},         // paper RSD 13.0: extreme skew
		{CoPapers, 0, 0.9, 15, 60},    // paper RSD 1.17, avg 56
		{Channel, 0, 0.01, 15, 30},    // paper RSD 0.061, avg 17.8
		{EuropeOSM, 0, 1.2, 1.4, 3.2}, // paper RSD 0.225, avg 2.12
		{LiveJournal, 0.6, 99, 8, 64}, // paper RSD 2.55, avg 28
		{MG1, 0, 3, 8, 64},            // paper RSD 2.3, avg 160
		{RGG, 0, 0.6, 8, 24},          // paper RSD 0.251, avg 15.8
		{UK2002, 0.9, 99, 6, 48},      // paper RSD 5.1, avg 28
		{NLPKKT, 0, 0.01, 15, 30},     // paper RSD 0.083, avg 26.7
		{MG2, 0, 3, 8, 80},            // paper RSD 2.37, avg 122
		{Friendster, 0.9, 99, 8, 80},  // paper RSD 17.4, avg 69
	}
	for _, b := range bounds {
		g := MustGenerate(b.in, Small, 0, 4)
		st := graph.ComputeStats(g)
		if st.RSD < b.minRSD || st.RSD > b.maxRSD {
			t.Errorf("%s: RSD %.3f outside [%.2f, %.2f]", b.in, st.RSD, b.minRSD, b.maxRSD)
		}
		if st.AvgDeg < b.minAvg || st.AvgDeg > b.maxAvg {
			t.Errorf("%s: avg degree %.2f outside [%.1f, %.1f]", b.in, st.AvgDeg, b.minAvg, b.maxAvg)
		}
	}
}

func TestGenerateUnknownInput(t *testing.T) {
	if _, err := Generate(Input("nope"), Small, 0, 1); err == nil {
		t.Fatal("want error for unknown input")
	}
}

func TestGroundTruthOnlyForSBMInputs(t *testing.T) {
	if _, ok := GroundTruth(CNR, Small, 0, 2); ok {
		t.Fatal("CNR has no ground truth")
	}
	truth, ok := GroundTruth(MG1, Small, 0, 2)
	if !ok || len(truth) == 0 {
		t.Fatal("MG1 must provide ground truth")
	}
	g := MustGenerate(MG1, Small, 0, 2)
	if len(truth) != g.N() {
		t.Fatalf("truth length %d != n %d", len(truth), g.N())
	}
}

func TestGeneratorsDeterministicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a := MustGenerate(EuropeOSM, Small, seed, 2)
		b := MustGenerate(EuropeOSM, Small, seed, 2)
		return a.ArcCount() == b.ArcCount() &&
			math.Abs(a.TotalWeight()-b.TotalWeight()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedCopy(t *testing.T) {
	in := []int{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 3 || out[1] != 2 || out[2] != 1 {
		t.Fatalf("got %v", out)
	}
	if in[0] != 3 || in[1] != 1 {
		t.Fatal("input mutated")
	}
}

func TestPanicsOnBadParameters(t *testing.T) {
	assertPanics(t, func() { BarabasiAlbert(1, 1, 0) })
	assertPanics(t, func() { CliqueChain(1, 1, 0, 0) })
	assertPanics(t, func() { CliqueChain(1, 4, 4, 0) })
	assertPanics(t, func() { Torus3D(2, 3, 3, 0) })
	assertPanics(t, func() { RoadNetwork(1, 0.5, 0.5, 3, 0) })
	assertPanics(t, func() { RMAT(0, 8, Social, 0, 1) })
	assertPanics(t, func() { RMAT(5, 8, RMATConfig{0.5, 0.5, 0.5, 0.5}, 0, 1) })
	assertPanics(t, func() { RandomGeometric(0, 0.1, 0, 1) })
	assertPanics(t, func() { RandomGeometric(10, 1.5, 0, 1) })
	assertPanics(t, func() { SBM(SBMConfig{}, 0, 1) })
	assertPanics(t, func() { SBM(SBMConfig{Communities: []int{0}}, 0, 1) })
	assertPanics(t, func() { PowerLawCommunitySizes(0, 1, 2, 2, 0) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
