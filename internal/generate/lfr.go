package generate

import (
	"math"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// LFRConfig parameterizes the LFR-style benchmark generator (Lancichinetti,
// Fortunato, Radicchi 2008), the standard synthetic benchmark in the
// community-detection literature the paper builds on (its ref. [1]
// surveys it). Unlike the SBM, LFR draws BOTH the degree sequence and the
// community sizes from power laws and controls community strength with a
// single mixing parameter Mu: each vertex spends ≈(1−Mu) of its degree
// inside its community and ≈Mu outside.
//
// This implementation is a configuration-model approximation: exact degree
// realization is relaxed (duplicate stubs merge), which preserves the
// benchmark's controlling properties — heavy-tailed degrees, heavy-tailed
// community sizes, tunable mixing — without the full LFR rewiring machinery.
type LFRConfig struct {
	N         int     // number of vertices
	AvgDegree float64 // target average degree
	MaxDegree int     // degree cap
	DegreeExp float64 // degree power-law exponent (typically 2-3)
	CommExp   float64 // community-size exponent (typically 1-2)
	MinComm   int     // smallest community size
	MaxComm   int     // largest community size
	Mu        float64 // mixing parameter in [0, 1): fraction of inter-community stubs
}

// LFR generates the benchmark graph and its planted community assignment.
func LFR(cfg LFRConfig, seed uint64, workers int) (*graph.Graph, []int32) {
	if cfg.N < 4 || cfg.AvgDegree < 1 || cfg.MaxDegree < 2 ||
		cfg.MinComm < 2 || cfg.MaxComm < cfg.MinComm || cfg.Mu < 0 || cfg.Mu >= 1 {
		panic("generate: bad LFR parameters")
	}
	rng := par.NewRNG(seed)

	// 1. Degree sequence from a truncated power law, scaled to AvgDegree.
	deg := make([]int, cfg.N)
	minDeg := 2.0
	a := 1 - cfg.DegreeExp
	lo, hi := math.Pow(minDeg, a), math.Pow(float64(cfg.MaxDegree), a)
	sum := 0.0
	for i := range deg {
		u := rng.Float64()
		d := math.Pow(lo+u*(hi-lo), 1/a)
		deg[i] = int(d)
		sum += d
	}
	scale := cfg.AvgDegree * float64(cfg.N) / sum
	for i := range deg {
		deg[i] = int(float64(deg[i]) * scale)
		if deg[i] < 2 {
			deg[i] = 2
		}
		if deg[i] > cfg.MaxDegree {
			deg[i] = cfg.MaxDegree
		}
	}

	// 2. Community sizes from a power law until they cover N.
	var sizes []int
	covered := 0
	for covered < cfg.N {
		u := rng.Float64()
		ca := 1 - cfg.CommExp
		if math.Abs(ca) < 1e-9 {
			ca = -1e-9
		}
		cl, ch := math.Pow(float64(cfg.MinComm), ca), math.Pow(float64(cfg.MaxComm), ca)
		sz := int(math.Pow(cl+u*(ch-cl), 1/ca))
		if sz < cfg.MinComm {
			sz = cfg.MinComm
		}
		if sz > cfg.MaxComm {
			sz = cfg.MaxComm
		}
		if covered+sz > cfg.N {
			sz = cfg.N - covered
			if sz < cfg.MinComm && len(sizes) > 0 {
				// Fold the remainder into the last community.
				sizes[len(sizes)-1] += sz
				covered = cfg.N
				break
			}
		}
		sizes = append(sizes, sz)
		covered += sz
	}

	// 3. Assign vertices to communities contiguously (heavy-degree vertices
	// are spread by the random degree draw, so contiguity is harmless) and
	// wire stubs: (1-Mu)·deg intra via a per-community configuration model,
	// Mu·deg inter via a global stub pool.
	truth := make([]int32, cfg.N)
	starts := make([]int, len(sizes)+1)
	for c, s := range sizes {
		starts[c+1] = starts[c] + s
		for i := starts[c]; i < starts[c+1]; i++ {
			truth[i] = int32(c)
		}
	}
	var edges []graph.Edge
	var interStubs []int32
	for c, s := range sizes {
		base := starts[c]
		// Ring for connectivity.
		for i := 0; i < s; i++ {
			j := (i + 1) % s
			if s > 1 && i < j {
				edges = append(edges, graph.Edge{U: int32(base + i), V: int32(base + j), W: 1})
			}
		}
		var intraStubs []int32
		for i := base; i < base+s; i++ {
			intra := int(float64(deg[i])*(1-cfg.Mu)) - 2 // ring already used 2
			for t := 0; t < intra; t++ {
				intraStubs = append(intraStubs, int32(i))
			}
			inter := int(float64(deg[i]) * cfg.Mu)
			for t := 0; t < inter; t++ {
				interStubs = append(interStubs, int32(i))
			}
		}
		// Pair intra stubs randomly within the community.
		shuffle32(intraStubs, rng)
		for t := 0; t+1 < len(intraStubs); t += 2 {
			u, v := intraStubs[t], intraStubs[t+1]
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v, W: 1})
			}
		}
	}
	// Pair inter stubs globally, discarding same-community pairs.
	shuffle32(interStubs, rng)
	for t := 0; t+1 < len(interStubs); t += 2 {
		u, v := interStubs[t], interStubs[t+1]
		if u != v && truth[u] != truth[v] {
			edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		}
	}
	return graph.FromEdges(cfg.N, edges, workers), truth
}

func shuffle32(v []int32, rng *par.RNG) {
	for i := len(v) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		v[i], v[j] = v[j], v[i]
	}
}
