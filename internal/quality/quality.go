// Package quality implements the partition-comparison measures of the
// paper's qualitative evaluation (§6.2.3, Table 3) — specificity,
// sensitivity, overlap quality and Rand index over vertex pairs — and the
// performance-profile curves of Fig. 10.
//
// The paper computes the pair-counting measures by brute force over all
// n-choose-2 pairs (Θ(n²), which is why it evaluates only two inputs). This
// implementation uses the standard contingency-table identity instead
// (TP = Σ_ij C(n_ij, 2) etc.), which is linear in n plus the number of
// non-empty community intersections, so every input can be scored.
package quality

import (
	"fmt"
	"sort"
)

// PairCounts holds the four pair-classification counts of §6.2.3 with the
// serial partition S as the benchmark and P as the candidate:
// TP = same community in both, FP = same only in P, FN = same only in S,
// TN = different in both.
type PairCounts struct {
	TP, FP, FN, TN float64
}

// Measures are the derived scores of Table 3 (fractions in [0,1]).
type Measures struct {
	Specificity float64 // TP / (TP + FP)
	Sensitivity float64 // TP / (TP + FN)
	OverlapQ    float64 // TP / (TP + FP + FN)
	RandIndex   float64 // (TP + TN) / all pairs
}

// ComparePartitions classifies all vertex pairs of two equal-length
// partitions via the contingency table and returns the counts.
func ComparePartitions(s, p []int32) (PairCounts, error) {
	if len(s) != len(p) {
		return PairCounts{}, fmt.Errorf("quality: partition lengths differ: %d vs %d", len(s), len(p))
	}
	n := float64(len(s))
	// Contingency counts n_ij = |{v : s(v)=i, p(v)=j}|, and marginals.
	cont := make(map[[2]int32]float64)
	sizeS := make(map[int32]float64)
	sizeP := make(map[int32]float64)
	for v := range s {
		cont[[2]int32{s[v], p[v]}]++
		sizeS[s[v]]++
		sizeP[p[v]]++
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	var tp float64
	for _, c := range cont {
		tp += choose2(c)
	}
	var sameS, sameP float64
	for _, c := range sizeS {
		sameS += choose2(c)
	}
	for _, c := range sizeP {
		sameP += choose2(c)
	}
	all := choose2(n)
	pc := PairCounts{
		TP: tp,
		FP: sameP - tp,
		FN: sameS - tp,
	}
	pc.TN = all - pc.TP - pc.FP - pc.FN
	return pc, nil
}

// Derive computes the Table 3 measures from pair counts. Degenerate
// denominators yield 1 (perfect score on an empty class), matching the
// intuition that two identical partitions score 100% everywhere.
func (pc PairCounts) Derive() Measures {
	div := func(num, den float64) float64 {
		if den == 0 {
			return 1
		}
		return num / den
	}
	return Measures{
		Specificity: div(pc.TP, pc.TP+pc.FP),
		Sensitivity: div(pc.TP, pc.TP+pc.FN),
		OverlapQ:    div(pc.TP, pc.TP+pc.FP+pc.FN),
		RandIndex:   div(pc.TP+pc.TN, pc.TP+pc.FP+pc.FN+pc.TN),
	}
}

// String renders measures as a Table 3 row (percentages).
func (m Measures) String() string {
	return fmt.Sprintf("SP=%.2f%% SE=%.2f%% OQ=%.2f%% Rand=%.2f%%",
		100*m.Specificity, 100*m.Sensitivity, 100*m.OverlapQ, 100*m.RandIndex)
}

// Profile computes performance-profile curves (Fig. 10). values[scheme][k]
// is the metric of scheme on problem k. better decides the direction:
// for runtimes lower is better; for modularity higher is better.
// The returned curve for each scheme is the sorted list of ratios of that
// scheme's value to the best scheme's value on each problem (ratios >= 1);
// plotting fraction-of-problems against ratio reproduces the figure.
func Profile(values map[string][]float64, lowerIsBetter bool) (map[string][]float64, error) {
	var nProblems int
	for s, v := range values {
		if nProblems == 0 {
			nProblems = len(v)
		} else if len(v) != nProblems {
			return nil, fmt.Errorf("quality: scheme %q has %d values, want %d", s, len(v), nProblems)
		}
	}
	if nProblems == 0 {
		return map[string][]float64{}, nil
	}
	ratios := make(map[string][]float64, len(values))
	for k := 0; k < nProblems; k++ {
		best := 0.0
		first := true
		for _, v := range values {
			x := v[k]
			if first || (lowerIsBetter && x < best) || (!lowerIsBetter && x > best) {
				best = x
				first = false
			}
		}
		for s, v := range values {
			var r float64
			switch {
			case lowerIsBetter && best > 0:
				r = v[k] / best
			case !lowerIsBetter && v[k] > 0:
				r = best / v[k]
			default:
				r = 1
			}
			ratios[s] = append(ratios[s], r)
		}
	}
	for s := range ratios {
		sort.Float64s(ratios[s])
	}
	return ratios, nil
}

// FractionWithin returns the fraction of problems for which the scheme's
// profile ratio is <= tau — the Y value of the Fig. 10 curve at X = tau.
func FractionWithin(profile []float64, tau float64) float64 {
	if len(profile) == 0 {
		return 0
	}
	cnt := 0
	for _, r := range profile {
		if r <= tau {
			cnt++
		}
	}
	return float64(cnt) / float64(len(profile))
}
