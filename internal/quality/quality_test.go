package quality

import (
	"math"
	"testing"
	"testing/quick"

	"grappolo/internal/par"
)

// bruteForce classifies all pairs naively — the paper's Θ(n²) method — as
// the oracle for the contingency-table implementation.
func bruteForce(s, p []int32) PairCounts {
	var pc PairCounts
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			sameS := s[i] == s[j]
			sameP := p[i] == p[j]
			switch {
			case sameS && sameP:
				pc.TP++
			case !sameS && sameP:
				pc.FP++
			case sameS && !sameP:
				pc.FN++
			default:
				pc.TN++
			}
		}
	}
	return pc
}

func TestIdenticalPartitionsScorePerfect(t *testing.T) {
	s := []int32{0, 0, 1, 1, 2}
	pc, err := ComparePartitions(s, s)
	if err != nil {
		t.Fatal(err)
	}
	m := pc.Derive()
	if m.Specificity != 1 || m.Sensitivity != 1 || m.OverlapQ != 1 || m.RandIndex != 1 {
		t.Fatalf("identical partitions: %+v", m)
	}
}

func TestDisjointLabelsStillPerfect(t *testing.T) {
	// Same grouping under different label names must score 100%.
	s := []int32{0, 0, 1, 1}
	p := []int32{9, 9, 4, 4}
	pc, _ := ComparePartitions(s, p)
	if m := pc.Derive(); m.RandIndex != 1 || m.OverlapQ != 1 {
		t.Fatalf("relabeled partition: %+v", m)
	}
}

func TestKnownSmallExample(t *testing.T) {
	// S: {0,1},{2,3}  P: {0,1,2},{3}
	s := []int32{0, 0, 1, 1}
	p := []int32{0, 0, 0, 1}
	pc, _ := ComparePartitions(s, p)
	// Pairs: (0,1): TP. (0,2),(1,2): FP. (2,3): FN. (0,3),(1,3): TN.
	want := PairCounts{TP: 1, FP: 2, FN: 1, TN: 2}
	if pc != want {
		t.Fatalf("got %+v want %+v", pc, want)
	}
	m := pc.Derive()
	if math.Abs(m.Specificity-1.0/3.0) > 1e-12 ||
		math.Abs(m.Sensitivity-0.5) > 1e-12 ||
		math.Abs(m.OverlapQ-0.25) > 1e-12 ||
		math.Abs(m.RandIndex-0.5) > 1e-12 {
		t.Fatalf("measures: %+v", m)
	}
}

func TestLengthMismatchError(t *testing.T) {
	if _, err := ComparePartitions([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("want error")
	}
}

func TestEmptyAndSingletonPartitions(t *testing.T) {
	pc, err := ComparePartitions(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := pc.Derive()
	if m.RandIndex != 1 { // zero pairs → perfect by convention
		t.Fatalf("empty: %+v", m)
	}
	pc, _ = ComparePartitions([]int32{5}, []int32{3})
	if m := pc.Derive(); m.RandIndex != 1 {
		t.Fatalf("singleton: %+v", m)
	}
}

func TestContingencyMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		rng := par.NewRNG(seed)
		s := make([]int32, n)
		p := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(5))
			p[i] = int32(rng.Intn(4))
		}
		got, err := ComparePartitions(s, p)
		if err != nil {
			return false
		}
		want := bruteForce(s, p)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPairCountsSumInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := par.NewRNG(seed)
		n := 10 + rng.Intn(100)
		s := make([]int32, n)
		p := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(7))
			p[i] = int32(rng.Intn(7))
		}
		pc, _ := ComparePartitions(s, p)
		all := float64(n) * float64(n-1) / 2
		return pc.TP+pc.FP+pc.FN+pc.TN == all &&
			pc.TP >= 0 && pc.FP >= 0 && pc.FN >= 0 && pc.TN >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasuresString(t *testing.T) {
	pc, _ := ComparePartitions([]int32{0, 0}, []int32{0, 0})
	if pc.Derive().String() == "" {
		t.Fatal("empty string")
	}
}

func TestProfileRuntime(t *testing.T) {
	// Runtimes (lower better): scheme A best on both, B 2x worse then equal.
	values := map[string][]float64{
		"A": {1, 4},
		"B": {2, 4},
	}
	prof, err := Profile(values, true)
	if err != nil {
		t.Fatal(err)
	}
	if prof["A"][0] != 1 || prof["A"][1] != 1 {
		t.Fatalf("A profile %v", prof["A"])
	}
	if prof["B"][0] != 1 || prof["B"][1] != 2 {
		t.Fatalf("B profile %v", prof["B"])
	}
	if f := FractionWithin(prof["B"], 1.0); f != 0.5 {
		t.Fatalf("B within 1.0: %v", f)
	}
	if f := FractionWithin(prof["B"], 2.0); f != 1.0 {
		t.Fatalf("B within 2.0: %v", f)
	}
}

func TestProfileModularity(t *testing.T) {
	// Modularity (higher better).
	values := map[string][]float64{
		"serial":   {0.8, 0.5},
		"parallel": {0.9, 0.5},
	}
	prof, err := Profile(values, false)
	if err != nil {
		t.Fatal(err)
	}
	if prof["parallel"][0] != 1 || prof["parallel"][1] != 1 {
		t.Fatalf("parallel profile %v", prof["parallel"])
	}
	if math.Abs(prof["serial"][1]-0.9/0.8) > 1e-12 {
		t.Fatalf("serial profile %v", prof["serial"])
	}
}

func TestProfileErrorsAndEdgeCases(t *testing.T) {
	if _, err := Profile(map[string][]float64{"a": {1}, "b": {1, 2}}, true); err == nil {
		t.Fatal("want length mismatch error")
	}
	prof, err := Profile(map[string][]float64{}, true)
	if err != nil || len(prof) != 0 {
		t.Fatalf("empty profile: %v %v", prof, err)
	}
	if FractionWithin(nil, 2) != 0 {
		t.Fatal("empty FractionWithin")
	}
}

func TestProfileZeroValuesSafe(t *testing.T) {
	prof, err := Profile(map[string][]float64{"a": {0}, "b": {0}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if prof["a"][0] != 1 || prof["b"][0] != 1 {
		t.Fatalf("zero-value ratios: %v", prof)
	}
}
