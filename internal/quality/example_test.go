package quality_test

import (
	"fmt"

	"grappolo/internal/quality"
)

// ExampleComparePartitions scores a candidate clustering against a
// reference, as the paper's Table 3 does with the serial output as the
// benchmark.
func ExampleComparePartitions() {
	serial := []int32{0, 0, 1, 1}   // reference
	parallel := []int32{0, 0, 0, 1} // candidate merged one vertex too many
	pc, _ := quality.ComparePartitions(serial, parallel)
	m := pc.Derive()
	fmt.Printf("TP=%.0f FP=%.0f FN=%.0f TN=%.0f\n", pc.TP, pc.FP, pc.FN, pc.TN)
	fmt.Println(m)
	// Output:
	// TP=1 FP=2 FN=1 TN=2
	// SP=33.33% SE=50.00% OQ=25.00% Rand=50.00%
}

// ExampleNMI compares two partitions with normalized mutual information.
func ExampleNMI() {
	a := []int32{0, 0, 1, 1}
	b := []int32{5, 5, 9, 9} // same grouping, different labels
	v, _ := quality.NMI(a, b)
	fmt.Printf("%.2f\n", v)
	// Output:
	// 1.00
}
