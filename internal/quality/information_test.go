package quality

import (
	"math"
	"testing"
	"testing/quick"

	"grappolo/internal/par"
)

func TestNMIIdenticalAndRelabelled(t *testing.T) {
	s := []int32{0, 0, 1, 1, 2, 2}
	if v, _ := NMI(s, s); v != 1 {
		t.Fatalf("NMI(s,s)=%v", v)
	}
	p := []int32{7, 7, 3, 3, 9, 9}
	if v, _ := NMI(s, p); math.Abs(v-1) > 1e-12 {
		t.Fatalf("NMI relabeled = %v", v)
	}
}

func TestNMIIndependentPartitions(t *testing.T) {
	// s splits by half, p alternates: I(S;P) = 0.
	s := []int32{0, 0, 1, 1}
	p := []int32{0, 1, 0, 1}
	v, err := NMI(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v) > 1e-12 {
		t.Fatalf("NMI independent = %v, want 0", v)
	}
}

func TestNMIEdgeCases(t *testing.T) {
	if v, _ := NMI(nil, nil); v != 1 {
		t.Fatalf("empty NMI %v", v)
	}
	one := []int32{0, 0, 0}
	if v, _ := NMI(one, one); v != 1 {
		t.Fatalf("single-cluster NMI %v", v)
	}
	if _, err := NMI([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("want length error")
	}
}

func TestNMIRange(t *testing.T) {
	f := func(seed uint64) bool {
		rng := par.NewRNG(seed)
		n := 5 + rng.Intn(100)
		s := make([]int32, n)
		p := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(6))
			p[i] = int32(rng.Intn(4))
		}
		v, err := NMI(s, p)
		return err == nil && v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjustedRandKnownValues(t *testing.T) {
	s := []int32{0, 0, 1, 1}
	if v, _ := AdjustedRand(s, s); v != 1 {
		t.Fatalf("ARI(s,s)=%v", v)
	}
	// Perfectly independent alternation: ARI should be <= 0 (here -0.5).
	p := []int32{0, 1, 0, 1}
	v, err := AdjustedRand(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0 {
		t.Fatalf("ARI independent = %v, want <= 0", v)
	}
}

func TestAdjustedRandDegenerate(t *testing.T) {
	// All singletons in both: maxIdx == expected → 1 by convention.
	s := []int32{0, 1, 2}
	if v, _ := AdjustedRand(s, s); v != 1 {
		t.Fatalf("ARI singletons %v", v)
	}
	if v, _ := AdjustedRand([]int32{0}, []int32{0}); v != 1 {
		t.Fatal("ARI single vertex")
	}
	if _, err := AdjustedRand([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("want length error")
	}
}

func TestAdjustedRandVsRandIndex(t *testing.T) {
	// ARI must not exceed 1 and must penalize chance agreement harder than
	// the raw Rand index.
	f := func(seed uint64) bool {
		rng := par.NewRNG(seed)
		n := 10 + rng.Intn(80)
		s := make([]int32, n)
		p := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(4))
			p[i] = int32(rng.Intn(4))
		}
		ari, err := AdjustedRand(s, p)
		if err != nil || ari > 1+1e-12 {
			return false
		}
		pc, _ := ComparePartitions(s, p)
		return ari <= pc.Derive().RandIndex+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseF1(t *testing.T) {
	s := []int32{0, 0, 1, 1}
	if v, _ := PairwiseF1(s, s); v != 1 {
		t.Fatalf("F1(s,s)=%v", v)
	}
	// S: {0,1},{2,3}  P: {0,1,2},{3}: precision 1/3, recall 1/2 → F1 = 0.4.
	p := []int32{0, 0, 0, 1}
	v, err := PairwiseF1(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.4) > 1e-12 {
		t.Fatalf("F1 = %v want 0.4", v)
	}
	// All singletons both sides: degenerate → 1.
	if v, _ := PairwiseF1([]int32{0, 1}, []int32{1, 0}); v != 1 {
		t.Fatalf("degenerate F1 %v", v)
	}
	if _, err := PairwiseF1([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("want length error")
	}
}
