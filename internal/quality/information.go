package quality

import (
	"fmt"
	"math"
)

// Information-theoretic and chance-corrected partition-similarity measures.
// The paper's Table 3 uses pair-counting measures (specificity, sensitivity,
// overlap quality, Rand index); the paper's future work item (ii) calls for
// "a more thorough comparison of communities produced by the serial and
// different parallel implementations", which these standard measures from
// the community-detection literature (Fortunato, the paper's ref. [1])
// support: normalized mutual information, adjusted Rand index, and pairwise
// F1.

// NMI computes the normalized mutual information between two partitions,
// using the arithmetic-mean normalization NMI = 2·I(S;P) / (H(S) + H(P)).
// Returns 1 for identical partitions (up to relabeling), 0 for independent
// ones. Both partitions of a single cluster each yield NMI 1 by the
// convention H=0 → identical ⇒ 1, disjoint-entropy cases ⇒ 0.
func NMI(s, p []int32) (float64, error) {
	if len(s) != len(p) {
		return 0, lengthErr(len(s), len(p))
	}
	n := float64(len(s))
	if n == 0 {
		return 1, nil
	}
	cont := make(map[[2]int32]float64)
	sizeS := make(map[int32]float64)
	sizeP := make(map[int32]float64)
	for v := range s {
		cont[[2]int32{s[v], p[v]}]++
		sizeS[s[v]]++
		sizeP[p[v]]++
	}
	var hS, hP float64
	for _, c := range sizeS {
		q := c / n
		hS -= q * math.Log(q)
	}
	for _, c := range sizeP {
		q := c / n
		hP -= q * math.Log(q)
	}
	var mi float64
	for key, c := range cont {
		pxy := c / n
		px := sizeS[key[0]] / n
		py := sizeP[key[1]] / n
		mi += pxy * math.Log(pxy/(px*py))
	}
	if hS+hP == 0 {
		// Both partitions are single clusters: identical by definition.
		return 1, nil
	}
	v := 2 * mi / (hS + hP)
	// Clamp fp noise.
	if v > 1 {
		v = 1
	}
	if v < 0 {
		v = 0
	}
	return v, nil
}

// AdjustedRand computes the Hubert–Arabie adjusted Rand index: the Rand
// index corrected for chance, 1 for identical partitions, ≈0 for random
// agreement (can be negative for adversarial disagreement).
func AdjustedRand(s, p []int32) (float64, error) {
	if len(s) != len(p) {
		return 0, lengthErr(len(s), len(p))
	}
	n := float64(len(s))
	if n < 2 {
		return 1, nil
	}
	cont := make(map[[2]int32]float64)
	sizeS := make(map[int32]float64)
	sizeP := make(map[int32]float64)
	for v := range s {
		cont[[2]int32{s[v], p[v]}]++
		sizeS[s[v]]++
		sizeP[p[v]]++
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	var sumIJ, sumA, sumB float64
	for _, c := range cont {
		sumIJ += choose2(c)
	}
	for _, c := range sizeS {
		sumA += choose2(c)
	}
	for _, c := range sizeP {
		sumB += choose2(c)
	}
	total := choose2(n)
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1, nil // both partitions all-singletons or single-cluster
	}
	return (sumIJ - expected) / (maxIdx - expected), nil
}

// PairwiseF1 computes the F1 score over vertex pairs, treating s as truth:
// precision = TP/(TP+FP), recall = TP/(TP+FN), F1 their harmonic mean.
// Degenerate cases (no positive pairs anywhere) score 1.
func PairwiseF1(s, p []int32) (float64, error) {
	pc, err := ComparePartitions(s, p)
	if err != nil {
		return 0, err
	}
	if pc.TP+pc.FP == 0 && pc.TP+pc.FN == 0 {
		return 1, nil
	}
	m := pc.Derive()
	prec, rec := m.Specificity, m.Sensitivity
	if prec+rec == 0 {
		return 0, nil
	}
	return 2 * prec * rec / (prec + rec), nil
}

func lengthErr(a, b int) error {
	return fmt.Errorf("quality: partition lengths differ: %d vs %d", a, b)
}
