// Package distributed emulates the distributed-memory parallel Louvain of
// Wickramaarachchi et al. (HPEC 2014), the paper's reference [25] and the
// other contemporaneous parallelization it discusses in §7: partition the
// input graph across p "processors", run the SEQUENTIAL Louvain on each
// partition independently — ignoring cross-partition edges — then merge the
// partial results at a master by coarsening and re-clustering.
//
// The emulation runs partitions as goroutines instead of MPI ranks; the
// algorithmic structure (and its quality loss from ignored cut edges, which
// the paper contrasts with its own shared-memory approach) is preserved.
package distributed

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"grappolo/internal/graph"
	"grappolo/internal/par"
	"grappolo/internal/seq"
)

// Options configure the emulated distributed run.
type Options struct {
	// Parts is the number of partitions ("processors"). <= 0 defaults to 4.
	Parts int
	// Louvain options applied within each partition and at the master.
	Local seq.Options
}

// Result is the output of a distributed run.
type Result struct {
	Membership     []int32
	NumCommunities int
	Modularity     float64
	// CutEdges is the number of cross-partition edges ignored during the
	// local phase — the source of the approach's quality loss.
	CutEdges int64
	// LocalTime is the wall time of the slowest partition (the makespan of
	// the parallel local phase); MergeTime is the master aggregation.
	LocalTime time.Duration
	MergeTime time.Duration
}

// Run executes the partition → local Louvain → master merge pipeline.
func Run(g *graph.Graph, opts Options) (*Result, error) {
	n := g.N()
	parts := opts.Parts
	if parts <= 0 {
		parts = 4
	}
	if parts > n && n > 0 {
		parts = n
	}
	res := &Result{Membership: make([]int32, n)}
	if n == 0 {
		return res, nil
	}

	// 1. Block partition: contiguous vertex ranges, the simplest static
	// partitioning (ref. [25] uses an external partitioner; for synthetic
	// suite inputs with contiguous planted communities a block partition is
	// the favourable case, for scrambled ids the adversarial one).
	bounds := make([]int, parts+1)
	for p := 0; p <= parts; p++ {
		bounds[p] = p * n / parts
	}

	// 2. Local phase: sequential Louvain per partition on the induced
	// subgraph (cross-partition edges dropped), in parallel.
	type localOut struct {
		membership []int32 // local community per local vertex
		numComm    int
		elapsed    time.Duration
	}
	locals := make([]localOut, parts)
	errs := make([]error, parts)
	var wg sync.WaitGroup
	wg.Add(parts)
	for p := 0; p < parts; p++ {
		go func(p int) {
			defer wg.Done()
			start := time.Now()
			lo, hi := bounds[p], bounds[p+1]
			vertices := make([]int32, hi-lo)
			for i := range vertices {
				vertices[i] = int32(lo + i)
			}
			sub, _, err := graph.InducedSubgraph(g, vertices, 1)
			if err != nil {
				errs[p] = fmt.Errorf("distributed: induced subgraph of partition %d: %w", p, err)
				return
			}
			lres := seq.Run(sub, opts.Local)
			locals[p] = localOut{
				membership: lres.Membership,
				numComm:    lres.NumCommunities,
				elapsed:    time.Since(start),
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// 3. Count ignored cut edges (arc-balanced parallel chunks over the CSR
	// prefix; each edge counted at its lower endpoint) and assign global
	// community ids.
	var cut atomic.Int64
	par.ForChunkPrefix(g.ArcOffsets(), 0, func(_, lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			nbr, _ := g.Neighbors(i)
			pi := partOf(i, n, parts)
			for _, j := range nbr {
				if int(j) > i && partOf(int(j), n, parts) != pi {
					local++
				}
			}
		}
		cut.Add(local)
	})
	res.CutEdges = cut.Load()
	offsets := make([]int32, parts+1)
	for p := 0; p < parts; p++ {
		offsets[p+1] = offsets[p] + int32(locals[p].numComm)
		if locals[p].elapsed > res.LocalTime {
			res.LocalTime = locals[p].elapsed
		}
	}
	global := make([]int32, n)
	for p := 0; p < parts; p++ {
		lo := bounds[p]
		for li, c := range locals[p].membership {
			global[lo+li] = offsets[p] + c
		}
	}

	// 4. Master merge: coarsen by the global assignment (cross edges now
	// included) and re-cluster the coarse graph sequentially.
	start := time.Now()
	numGlobal := int(offsets[parts])
	coarse := seq.Coarsen(g, global, numGlobal)
	mres := seq.Run(coarse, opts.Local)
	res.MergeTime = time.Since(start)
	for i := 0; i < n; i++ {
		res.Membership[i] = mres.Membership[global[i]]
	}
	res.NumCommunities = mres.NumCommunities
	res.Modularity = seq.Modularity(g, res.Membership, opts.Local.Resolution)
	return res, nil
}

// partOf computes the owning partition of v in O(1): range p is
// [⌊p·n/parts⌋, ⌊(p+1)·n/parts⌋), so p = ⌊((v+1)·parts − 1) / n⌋ — no
// binary search over bounds needed in the hot cut-edge scan.
func partOf(v, n, parts int) int {
	return ((v+1)*parts - 1) / n
}
