package distributed

import (
	"math"
	"testing"

	"grappolo/internal/core"
	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/seq"
)

func TestDistributedTwoCliquesAcrossPartitionBoundary(t *testing.T) {
	// Two K5s joined by a bridge, split so the boundary cuts the bridge:
	// the local phase sees two clean cliques and the merge keeps them.
	b := graph.NewBuilder(10)
	for base := 0; base <= 5; base += 5 {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(int32(base+i), int32(base+j), 1)
			}
		}
	}
	b.AddEdge(0, 5, 1)
	g := b.Build(2)
	res, err := Run(g, Options{Parts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities != 2 {
		t.Fatalf("%d communities, want 2", res.NumCommunities)
	}
	if res.CutEdges != 1 {
		t.Fatalf("cut edges %d, want 1 (the bridge)", res.CutEdges)
	}
	want := 40.0/42.0 - 0.5
	if math.Abs(res.Modularity-want) > 1e-9 {
		t.Fatalf("Q=%v want %v", res.Modularity, want)
	}
}

func TestDistributedValidOnSuite(t *testing.T) {
	for _, in := range []generate.Input{generate.CNR, generate.MG1, generate.RGG} {
		g := generate.MustGenerate(in, generate.Small, 0, 2)
		for _, parts := range []int{1, 3, 8} {
			res, err := Run(g, Options{Parts: parts})
			if err != nil {
				t.Fatalf("%s parts=%d: %v", in, parts, err)
			}
			if len(res.Membership) != g.N() {
				t.Fatalf("%s: membership length", in)
			}
			q := seq.Modularity(g, res.Membership, 1)
			if math.Abs(q-res.Modularity) > 1e-9 {
				t.Fatalf("%s: Q mismatch %v vs %v", in, res.Modularity, q)
			}
			if res.Modularity <= 0 {
				t.Fatalf("%s parts=%d: Q=%v", in, parts, res.Modularity)
			}
		}
	}
}

func TestDistributedOnePartEqualsSerial(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 2)
	dist, err := Run(g, Options{Parts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dist.CutEdges != 0 {
		t.Fatalf("one partition has %d cut edges", dist.CutEdges)
	}
	// With a single partition the local phase IS serial Louvain; the merge
	// re-clusters its coarsening, which can only maintain or improve Q.
	serial := seq.Run(g, seq.Options{})
	if dist.Modularity < serial.Modularity-1e-9 {
		t.Fatalf("1-part distributed Q=%v below serial %v", dist.Modularity, serial.Modularity)
	}
}

func TestDistributedQualityVsGrappolo(t *testing.T) {
	// §7's qualitative point: partition-and-merge ignores cut edges during
	// the local phase, so with many partitions its quality should not beat
	// the shared-memory heuristics by any margin, and typically trails.
	g := generate.MustGenerate(generate.LiveJournal, generate.Small, 0, 4)
	o := core.BaselineVFColor(4)
	o.ColoringVertexCutoff = 32
	grappolo := core.Run(g, o)
	dist, err := Run(g, Options{Parts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dist.Modularity > grappolo.Modularity+0.02 {
		t.Fatalf("distributed %.4f unexpectedly above grappolo %.4f", dist.Modularity, grappolo.Modularity)
	}
	if dist.CutEdges == 0 {
		t.Fatal("expected cut edges with 8 partitions")
	}
	t.Logf("grappolo=%.4f distributed=%.4f cut=%d", grappolo.Modularity, dist.Modularity, dist.CutEdges)
}

func TestDistributedOrderingSensitivity(t *testing.T) {
	// The block partition is the distributed baseline's weak spot: with
	// community-contiguous ids (the SBM default) partitions respect
	// communities; after a random relabeling the same graph partitions
	// adversarially and quality drops (more cut edges ignored locally) or
	// at best stays equal. BFS reordering then restores locality.
	g, _ := generate.SBM(generate.SBMConfig{
		Communities: []int{80, 80, 80, 80}, IntraDegree: 12, CrossFrac: 0.05,
	}, 3, 2)
	contiguous, err := Run(g, Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	perm := graph.RandomPermutation(g.N(), 9)
	scrambled, err := graph.Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := Run(scrambled, Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if shuffled.CutEdges <= contiguous.CutEdges {
		t.Fatalf("scrambling should increase cut edges: %d vs %d",
			shuffled.CutEdges, contiguous.CutEdges)
	}
	// BFS reordering restores most locality.
	restored, err := graph.Relabel(scrambled, graph.BFSOrder(scrambled))
	if err != nil {
		t.Fatal(err)
	}
	rerun, err := Run(restored, Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rerun.CutEdges >= shuffled.CutEdges {
		t.Fatalf("BFS reordering did not reduce cut edges: %d vs %d",
			rerun.CutEdges, shuffled.CutEdges)
	}
	t.Logf("cut edges: contiguous=%d scrambled=%d bfs=%d; Q: %.4f / %.4f / %.4f",
		contiguous.CutEdges, shuffled.CutEdges, rerun.CutEdges,
		contiguous.Modularity, shuffled.Modularity, rerun.Modularity)
}

func TestDistributedEmptyAndTiny(t *testing.T) {
	empty, err := Run(graph.NewBuilder(0).Build(1), Options{})
	if err != nil || empty.NumCommunities != 0 {
		t.Fatalf("empty: %+v %v", empty, err)
	}
	single := graph.NewBuilder(1).Build(1)
	res, err := Run(single, Options{Parts: 16}) // parts clamped to n
	if err != nil || res.NumCommunities != 1 {
		t.Fatalf("single: %+v %v", res, err)
	}
}

func TestPartOf(t *testing.T) {
	// The O(1) arithmetic must match the bounds definition
	// bounds[p] = ⌊p·n/parts⌋ for every (n, parts, v).
	for _, parts := range []int{1, 2, 3, 4, 7, 10} {
		for _, n := range []int{1, 3, 10, 17, 100} {
			if parts > n {
				continue
			}
			bounds := make([]int, parts+1)
			for p := 0; p <= parts; p++ {
				bounds[p] = p * n / parts
			}
			for v := 0; v < n; v++ {
				want := 0
				for want+1 < parts && v >= bounds[want+1] {
					want++
				}
				if got := partOf(v, n, parts); got != want {
					t.Fatalf("partOf(%d, n=%d, parts=%d)=%d want %d", v, n, parts, got, want)
				}
			}
		}
	}
}
