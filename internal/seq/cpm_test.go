package seq

import (
	"math"
	"testing"

	"grappolo/internal/graph"
)

// ringOfCliques builds k cliques of size s connected in a ring by single
// edges — the canonical resolution-limit example: standard modularity
// merges adjacent cliques once k exceeds ~√(2m), while CPM with a suitable
// γ keeps every clique separate regardless of k.
func ringOfCliques(k, s int) *graph.Graph {
	b := graph.NewBuilder(k * s)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				b.AddEdge(int32(base+i), int32(base+j), 1)
			}
		}
		next := ((c + 1) % k) * s
		b.AddEdge(int32(base), int32(next), 1)
	}
	return b.Build(2)
}

func TestCPMRecoverRingCliques(t *testing.T) {
	const k, s = 30, 5
	g := ringOfCliques(k, s)
	res := RunCPM(g, CPMOptions{Gamma: 0.5})
	if res.NumCommunities != k {
		t.Fatalf("CPM found %d communities, want %d cliques", res.NumCommunities, k)
	}
	// Every clique must be exactly one community.
	for c := 0; c < k; c++ {
		base := c * s
		for i := 1; i < s; i++ {
			if res.Membership[base+i] != res.Membership[base] {
				t.Fatalf("clique %d split", c)
			}
		}
	}
}

func TestCPMAvoidsResolutionLimit(t *testing.T) {
	// With 30 cliques of K5 (m = 330, √(2m) ≈ 25.7 < 30), standard
	// modularity's resolution limit makes merging adjacent cliques
	// profitable, so Louvain-with-modularity finds FEWER than 30
	// communities; CPM at γ=0.5 finds exactly 30. This is the paper's
	// future-work item (iv) demonstrated.
	const k, s = 30, 5
	g := ringOfCliques(k, s)
	mod := Run(g, Options{})
	cpm := RunCPM(g, CPMOptions{Gamma: 0.5})
	if mod.NumCommunities >= k {
		t.Fatalf("modularity found %d >= %d communities; resolution limit should merge cliques",
			mod.NumCommunities, k)
	}
	if cpm.NumCommunities != k {
		t.Fatalf("CPM found %d communities, want %d", cpm.NumCommunities, k)
	}
	t.Logf("modularity: %d communities; CPM(0.5): %d communities", mod.NumCommunities, cpm.NumCommunities)
}

func TestCPMGammaControlsGranularity(t *testing.T) {
	g := ringOfCliques(12, 6)
	coarse := RunCPM(g, CPMOptions{Gamma: 0.01}) // tiny penalty → huge communities
	fine := RunCPM(g, CPMOptions{Gamma: 0.99})   // strict penalty → clique-level or finer
	if coarse.NumCommunities > fine.NumCommunities {
		t.Fatalf("γ=0.01 gave %d communities > γ=0.99's %d",
			coarse.NumCommunities, fine.NumCommunities)
	}
}

func TestCPMScoreConsistency(t *testing.T) {
	g := ringOfCliques(8, 4)
	res := RunCPM(g, CPMOptions{Gamma: 0.5})
	direct := CPMScore(g, res.Membership, 0.5)
	if math.Abs(direct-res.Score) > 1e-9 {
		t.Fatalf("reported %v, recomputed %v", res.Score, direct)
	}
}

func TestCPMScoreKnownValue(t *testing.T) {
	// Single K4, one community: w_in = 6, penalty = γ·6, m = 6.
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(int32(i), int32(j), 1)
		}
	}
	g := b.Build(1)
	score := CPMScore(g, []int32{0, 0, 0, 0}, 0.5)
	want := (6.0 - 0.5*6.0) / 6.0
	if math.Abs(score-want) > 1e-12 {
		t.Fatalf("score %v want %v", score, want)
	}
	// Singletons: w_in = 0, penalty 0 → score 0.
	if s := CPMScore(g, []int32{0, 1, 2, 3}, 0.5); s != 0 {
		t.Fatalf("singleton score %v", s)
	}
}

func TestCPMEdgeCasesAndPanics(t *testing.T) {
	empty := graph.NewBuilder(0).Build(1)
	if res := RunCPM(empty, CPMOptions{Gamma: 1}); res.NumCommunities != 0 {
		t.Fatalf("empty: %+v", res)
	}
	edgeless := graph.NewBuilder(3).Build(1)
	res := RunCPM(edgeless, CPMOptions{Gamma: 1})
	if res.NumCommunities != 3 {
		t.Fatalf("edgeless: %+v", res)
	}
	assertPanic(t, func() { RunCPM(edgeless, CPMOptions{}) })
	assertPanic(t, func() { CPMScoreSized(edgeless, []int32{0}, []int64{1}, 1) })
}

func assertPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestCPMMaxLimits(t *testing.T) {
	g := ringOfCliques(6, 4)
	res := RunCPM(g, CPMOptions{Gamma: 0.5, MaxIterations: 1, MaxPhases: 1})
	if res.Phases != 1 || res.TotalIterations > 1 {
		t.Fatalf("limits ignored: %+v", res)
	}
}
