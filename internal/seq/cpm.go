package seq

import (
	"fmt"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// The paper's future-work item (iv) proposes extending the algorithms "to
// account for alternative modularity definitions (e.g., [6]) in order to
// overcome the known resolution-limit issues" — reference [6] being Traag,
// Van Dooren & Nesterov's constant Potts model (CPM). This file implements
// Louvain local moves under the CPM objective:
//
//	H = Σ_C [ w_in(C) − γ·n_C·(n_C−1)/2 ]
//
// where w_in(C) is the internal edge weight of community C (each edge
// counted once, self-loops once) and n_C the number of ORIGINAL vertices in
// C. Unlike modularity's degree-based null model, the size-based penalty is
// resolution-limit-free: the optimal scale is set directly by γ.
//
// Scores are reported normalized by m (the total edge weight) so magnitudes
// are comparable with modularity across inputs.

// CPMOptions configure a CPM-Louvain run.
type CPMOptions struct {
	// Gamma is the CPM resolution: communities denser than γ (internal
	// edge weight per vertex pair) hold together. Must be > 0.
	Gamma float64
	// Threshold is the minimum normalized gain to continue (default 1e-6).
	Threshold float64
	// MaxIterations / MaxPhases as in Options (0 = unlimited).
	MaxIterations int
	MaxPhases     int
}

// CPMResult is the output of RunCPM.
type CPMResult struct {
	Membership     []int32
	NumCommunities int
	// Score is H/m for the final partitioning on the original graph.
	Score float64
	// Phases and TotalIterations trace convergence.
	Phases          int
	TotalIterations int
}

// RunCPM executes multi-phase Louvain local moves under the CPM objective.
func RunCPM(g *graph.Graph, opts CPMOptions) *CPMResult {
	if opts.Gamma <= 0 {
		panic("seq: CPM needs Gamma > 0")
	}
	if opts.Threshold <= 0 {
		opts.Threshold = 1e-6
	}
	n := g.N()
	res := &CPMResult{Membership: make([]int32, n)}
	for i := range res.Membership {
		res.Membership[i] = int32(i)
	}
	work := g
	// nodeSize[v] = number of original vertices the (possibly meta-) vertex
	// represents; needed because the CPM penalty counts original vertices.
	nodeSize := make([]int64, n)
	for i := range nodeSize {
		nodeSize[i] = 1
	}
	prev := -1e18
	for phase := 0; opts.MaxPhases == 0 || phase < opts.MaxPhases; phase++ {
		membership, iters, score := cpmPhase(work, nodeSize, opts)
		res.Phases++
		res.TotalIterations += iters
		for v := range res.Membership {
			res.Membership[v] = membership[res.Membership[v]]
		}
		res.Score = score
		if score-prev < opts.Threshold {
			break
		}
		prev = score
		nc := int(maxOf(membership)) + 1
		if nc == work.N() {
			break
		}
		newSizes := make([]int64, nc)
		for v, c := range membership {
			newSizes[c] += nodeSize[v]
		}
		work = Coarsen(work, membership, nc)
		nodeSize = newSizes
	}
	res.NumCommunities = int(maxOf(res.Membership)) + 1
	return res
}

// cpmPhase runs CPM local-move iterations on one graph level.
func cpmPhase(g *graph.Graph, nodeSize []int64, opts CPMOptions) ([]int32, int, float64) {
	n := g.N()
	m := g.M()
	if m == 0 {
		ident := make([]int32, n)
		for i := range ident {
			ident[i] = int32(i)
		}
		return ident, 0, 0
	}
	comm := make([]int32, n)
	commSize := make([]int64, n) // original-vertex count per community
	for i := 0; i < n; i++ {
		comm[i] = int32(i)
		commSize[i] = nodeSize[i]
	}
	// Flat neighbor-community accumulator (community id → e_{i→C}); same
	// first-touch ordering as the hash map it replaced, so moves are
	// bit-identical.
	acc := par.NewSparseAccum(n, g.MaxOutDegree()+1)
	prev := CPMScoreSized(g, comm, nodeSize, opts.Gamma)
	iters := 0
	for opts.MaxIterations == 0 || iters < opts.MaxIterations {
		for i := 0; i < n; i++ {
			ci := comm[i]
			si := nodeSize[i]
			nbr, wts := g.Neighbors(i)
			acc.Reset()
			acc.Ensure(ci)
			for t, j := range nbr {
				if int(j) == i {
					continue
				}
				acc.Add(comm[j], wts[t])
			}
			eOwn := acc.Get(ci)
			sOwnLess := commSize[ci] - si
			best := ci
			bestGain := 0.0
			for _, c := range acc.Keys()[1:] {
				// ΔH = (e_{i→Ct} − e_{i→Ci\{i}}) − γ·s_i·(s_Ct − s_Ci+s_i);
				// normalized by m to match the reported score.
				gain := (acc.Get(c) - eOwn - opts.Gamma*float64(si)*float64(commSize[c]-sOwnLess)) / m
				if gain > bestGain || (gain == bestGain && gain > 0 && c < best) {
					bestGain, best = gain, c
				}
			}
			if best != ci && bestGain > 0 {
				commSize[ci] -= si
				commSize[best] += si
				comm[i] = best
			}
		}
		iters++
		score := CPMScoreSized(g, comm, nodeSize, opts.Gamma)
		if score-prev < opts.Threshold {
			prev = score
			break
		}
		prev = score
	}
	return Renumber(comm), iters, prev
}

// CPMScore computes H/m for a membership on g, counting every vertex as one
// original vertex (use on the input graph).
func CPMScore(g *graph.Graph, membership []int32, gamma float64) float64 {
	sizes := make([]int64, g.N())
	for i := range sizes {
		sizes[i] = 1
	}
	return CPMScoreSized(g, membership, sizes, gamma)
}

// CPMScoreSized computes H/m where nodeSize gives the original-vertex count
// of each (meta-)vertex. Panics on length mismatch.
func CPMScoreSized(g *graph.Graph, membership []int32, nodeSize []int64, gamma float64) float64 {
	n := g.N()
	if len(membership) != n || len(nodeSize) != n {
		panic(fmt.Sprintf("seq: CPM score arrays mismatch: n=%d membership=%d sizes=%d",
			n, len(membership), len(nodeSize)))
	}
	m := g.M()
	if n == 0 || m == 0 {
		return 0
	}
	// within2 counts internal arcs with the repository-wide convention:
	// non-loop intra edges twice (both directions), self-loops once. This
	// quantity is invariant under Coarsen (a meta self-loop carries exactly
	// 2×intra-non-loop + 1×member-loops), so scores agree across phases;
	// w_in := within2/2, meaning an input self-loop counts half an edge.
	within2 := 0.0
	// Flat community-size table sized to the largest label, so arbitrary
	// (non-dense) partitions still score correctly without hashing.
	maxID := int32(0)
	for _, c := range membership {
		if c > maxID {
			maxID = c
		}
	}
	size := make([]int64, maxID+1)
	for i := 0; i < n; i++ {
		size[membership[i]] += nodeSize[i]
		nbr, wts := g.Neighbors(i)
		for t, j := range nbr {
			if int(j) == i || membership[j] == membership[i] {
				within2 += wts[t]
			}
		}
	}
	wIn := within2 / 2
	var penalty float64
	for _, s := range size {
		penalty += float64(s) * float64(s-1) / 2
	}
	return (wIn - gamma*penalty) / m
}
