package seq

import (
	"testing"

	"grappolo/internal/generate"
)

func BenchmarkSerialLouvainRGG(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(g, Options{})
		if res.Modularity <= 0 {
			b.Fatal("bad run")
		}
	}
}

func BenchmarkSerialLouvainSocial(b *testing.B) {
	g := generate.MustGenerate(generate.LiveJournal, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(g, Options{})
		if res.Modularity <= 0 {
			b.Fatal("bad run")
		}
	}
}

func BenchmarkModularityKernel(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	res := Run(g, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Modularity(g, res.Membership, 1)
	}
}

func BenchmarkCoarsen(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	res := Run(g, Options{MaxPhases: 1})
	membership := Renumber(res.Membership)
	nc := int(maxOf(membership)) + 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Coarsen(g, membership, nc)
	}
}

func BenchmarkCPMSerial(b *testing.B) {
	g := generate.MustGenerate(generate.CoPapers, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := RunCPM(g, CPMOptions{Gamma: 0.3})
		if res.NumCommunities == 0 {
			b.Fatal("bad run")
		}
	}
}
