package seq

import (
	"testing"

	"grappolo/internal/generate"
	"grappolo/internal/par"
)

func TestCustomScanOrderValidResults(t *testing.T) {
	g := generate.MustGenerate(generate.Channel, generate.Small, 0, 2)
	n := g.N()
	rng := par.NewRNG(11)
	perm := rng.Perm(n)
	order := make([]int32, n)
	for i, v := range perm {
		order[i] = int32(v)
	}
	natural := Run(g, Options{})
	shuffled := Run(g, Options{Order: order})
	// Both must be structurally valid with positive modularity; the paper's
	// §6.2.2 point is that ordering moves convergence around on
	// uniform-degree inputs, not that it breaks anything.
	if natural.Modularity <= 0 || shuffled.Modularity <= 0 {
		t.Fatalf("Q natural=%v shuffled=%v", natural.Modularity, shuffled.Modularity)
	}
	if q := Modularity(g, shuffled.Membership, 1); q != shuffled.Modularity {
		t.Fatalf("reported %v recomputed %v", shuffled.Modularity, q)
	}
	t.Logf("natural: Q=%.4f iters=%d; shuffled: Q=%.4f iters=%d",
		natural.Modularity, natural.TotalIterations,
		shuffled.Modularity, shuffled.TotalIterations)
}

func TestCustomOrderDeterministic(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 2)
	order := make([]int32, g.N())
	for i := range order {
		order[i] = int32(g.N() - 1 - i) // reverse order
	}
	a := Run(g, Options{Order: order})
	b := Run(g, Options{Order: order})
	if a.Modularity != b.Modularity {
		t.Fatal("same order must reproduce")
	}
}

func TestBadOrderPanics(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong-length order")
		}
	}()
	Run(g, Options{Order: []int32{0, 1}})
}
