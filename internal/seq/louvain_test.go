package seq

import (
	"math"
	"testing"
	"testing/quick"

	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// twoCliques builds two K5s joined by a single bridge edge — the canonical
// two-community graph.
func twoCliques() *graph.Graph {
	b := graph.NewBuilder(10)
	for base := 0; base <= 5; base += 5 {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(int32(base+i), int32(base+j), 1)
			}
		}
	}
	b.AddEdge(0, 5, 1)
	return b.Build(2)
}

func TestModularityAllSingletons(t *testing.T) {
	g := twoCliques()
	comm := make([]int32, g.N())
	for i := range comm {
		comm[i] = int32(i)
	}
	q := Modularity(g, comm, 1)
	// All singletons: within = 0 (no self loops), so Q = -Σ(k_i/2m)² < 0.
	if q >= 0 {
		t.Fatalf("singleton modularity %v, want negative", q)
	}
}

func TestModularityPerfectSplit(t *testing.T) {
	g := twoCliques()
	comm := make([]int32, 10)
	for i := 5; i < 10; i++ {
		comm[i] = 1
	}
	q := Modularity(g, comm, 1)
	// 21 edges, 20 intra + 1 bridge. within = 40, 2m = 42.
	// a_0 = a_1 = 21. Q = 40/42 - 2*(21/42)² = 0.95238 - 0.5 = 0.45238...
	want := 40.0/42.0 - 2*0.25
	if math.Abs(q-want) > 1e-12 {
		t.Fatalf("Q=%v want %v", q, want)
	}
}

func TestModularityOneCommunityIsZero(t *testing.T) {
	g := twoCliques()
	comm := make([]int32, 10) // all zero
	q := Modularity(g, comm, 1)
	// Everything intra: within = 2m, single a_C = 2m → Q = 1 - 1 = 0.
	if math.Abs(q) > 1e-12 {
		t.Fatalf("Q=%v want 0", q)
	}
}

func TestModularitySelfLoopConvention(t *testing.T) {
	// Single vertex with one self-loop of weight 3: within = 3, 2m = 3,
	// a = 3 → Q = 1 - 1 = 0.
	b := graph.NewBuilder(1)
	b.AddEdge(0, 0, 3)
	g := b.Build(1)
	if q := Modularity(g, []int32{0}, 1); math.Abs(q) > 1e-12 {
		t.Fatalf("Q=%v want 0", q)
	}
}

func TestModularityEmptyAndZeroWeight(t *testing.T) {
	if q := Modularity(graph.NewBuilder(0).Build(1), nil, 1); q != 0 {
		t.Fatalf("empty graph Q=%v", q)
	}
	g := graph.NewBuilder(3).Build(1) // vertices, no edges
	if q := Modularity(g, []int32{0, 1, 2}, 1); q != 0 {
		t.Fatalf("edgeless graph Q=%v", q)
	}
}

func TestRunRecoversTwoCliques(t *testing.T) {
	g := twoCliques()
	res := Run(g, Options{})
	if res.NumCommunities != 2 {
		t.Fatalf("found %d communities, want 2", res.NumCommunities)
	}
	for i := 1; i < 5; i++ {
		if res.Membership[i] != res.Membership[0] {
			t.Fatalf("clique 1 split: %v", res.Membership)
		}
	}
	for i := 6; i < 10; i++ {
		if res.Membership[i] != res.Membership[5] {
			t.Fatalf("clique 2 split: %v", res.Membership)
		}
	}
	if res.Membership[0] == res.Membership[5] {
		t.Fatal("cliques merged")
	}
	want := 40.0/42.0 - 0.5
	if math.Abs(res.Modularity-want) > 1e-9 {
		t.Fatalf("Q=%v want %v", res.Modularity, want)
	}
}

func TestRunModularityMonotoneWithinPhase(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 2)
	res := Run(g, Options{})
	for pi, ph := range res.Phases {
		for k := 1; k < len(ph.Modularity); k++ {
			if ph.Modularity[k] < ph.Modularity[k-1]-1e-12 {
				t.Fatalf("phase %d: modularity decreased at iteration %d: %v -> %v",
					pi, k, ph.Modularity[k-1], ph.Modularity[k])
			}
		}
	}
}

func TestRunFinalModularityMatchesMembership(t *testing.T) {
	// The reported modularity must equal the recomputed modularity of the
	// final membership on the ORIGINAL graph (phase invariance).
	for _, in := range []generate.Input{generate.CNR, generate.MG1, generate.RGG} {
		g := generate.MustGenerate(in, generate.Small, 0, 2)
		res := Run(g, Options{})
		q := Modularity(g, res.Membership, 1)
		if math.Abs(q-res.Modularity) > 1e-9 {
			t.Fatalf("%s: reported Q=%v but membership scores %v", in, res.Modularity, q)
		}
	}
}

func TestRunRespectsMaxLimits(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 2)
	res := Run(g, Options{MaxIterations: 1, MaxPhases: 1})
	if len(res.Phases) != 1 || res.Phases[0].Iterations > 1 {
		t.Fatalf("limits ignored: %d phases, %d iters", len(res.Phases), res.Phases[0].Iterations)
	}
}

func TestRunSBMRecoversPlantedCommunities(t *testing.T) {
	sizes := []int{60, 60, 60, 60}
	g, truth := generate.SBM(generate.SBMConfig{Communities: sizes, IntraDegree: 14, CrossFrac: 0.05}, 1, 2)
	res := Run(g, Options{})
	// Strong planted structure: Louvain should land close to the truth.
	agree := 0
	total := 0
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			sameT := truth[i] == truth[j]
			sameL := res.Membership[i] == res.Membership[j]
			if sameT == sameL {
				agree++
			}
			total++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Fatalf("only %.2f pair agreement with planted truth", frac)
	}
	if res.Modularity < 0.5 {
		t.Fatalf("Q=%v too low for a strong SBM", res.Modularity)
	}
}

func TestHigherThresholdFewerIterations(t *testing.T) {
	g := generate.MustGenerate(generate.Channel, generate.Small, 0, 2)
	fine := Run(g, Options{Threshold: 1e-6})
	coarse := Run(g, Options{Threshold: 1e-2})
	if coarse.TotalIterations > fine.TotalIterations {
		t.Fatalf("coarse threshold took more iterations (%d) than fine (%d)",
			coarse.TotalIterations, fine.TotalIterations)
	}
}

func TestResolutionParameterShiftsGranularity(t *testing.T) {
	g := generate.MustGenerate(generate.CoPapers, generate.Small, 0, 2)
	lowRes := Run(g, Options{Resolution: 0.25})
	highRes := Run(g, Options{Resolution: 4})
	// Higher γ penalizes large communities → at least as many communities.
	if highRes.NumCommunities < lowRes.NumCommunities {
		t.Fatalf("γ=4 gave %d communities < γ=0.25's %d",
			highRes.NumCommunities, lowRes.NumCommunities)
	}
}

func TestCoarsenPreservesTotalWeightAndModularity(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 2)
	res := Run(g, Options{MaxPhases: 1})
	membership := Renumber(res.Membership)
	nc := int(maxOf(membership)) + 1
	cg := Coarsen(g, membership, nc)
	if err := cg.Validate(); err != nil {
		t.Fatalf("coarsened graph invalid: %v", err)
	}
	if math.Abs(cg.TotalWeight()-g.TotalWeight()) > 1e-6 {
		t.Fatalf("total weight changed: %v -> %v", g.TotalWeight(), cg.TotalWeight())
	}
	// Identity partition on cg must score the same modularity as membership
	// on g (the meta-vertex self-loop convention guarantees this).
	ident := make([]int32, cg.N())
	for i := range ident {
		ident[i] = int32(i)
	}
	q1 := Modularity(g, membership, 1)
	q2 := Modularity(cg, ident, 1)
	if math.Abs(q1-q2) > 1e-9 {
		t.Fatalf("coarsening broke modularity invariance: %v vs %v", q1, q2)
	}
}

func TestCoarsenTwoCliquesShape(t *testing.T) {
	g := twoCliques()
	membership := make([]int32, 10)
	for i := 5; i < 10; i++ {
		membership[i] = 1
	}
	cg := Coarsen(g, membership, 2)
	if cg.N() != 2 {
		t.Fatalf("n=%d", cg.N())
	}
	// Each K5 has 10 intra edges → self-loop weight 20 (2w convention).
	if w := cg.SelfLoopWeight(0); w != 20 {
		t.Fatalf("self-loop 0 = %v want 20", w)
	}
	if w, ok := cg.EdgeWeight(0, 1); !ok || w != 1 {
		t.Fatalf("bridge weight %v want 1", w)
	}
}

func TestCoarsenPanicsOnBadMembership(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Coarsen(twoCliques(), []int32{0}, 1)
}

func TestRenumber(t *testing.T) {
	in := []int32{7, 7, 3, 7, 9, 3}
	out := Renumber(in)
	want := []int32{0, 0, 1, 0, 2, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v want %v", out, want)
		}
	}
	if in[0] != 7 {
		t.Fatal("input mutated")
	}
}

func TestRunDeterministic(t *testing.T) {
	g := generate.MustGenerate(generate.LiveJournal, generate.Small, 0, 2)
	a := Run(g, Options{})
	b := Run(g, Options{})
	if a.Modularity != b.Modularity || a.NumCommunities != b.NumCommunities {
		t.Fatal("serial Louvain must be deterministic")
	}
	for i := range a.Membership {
		if a.Membership[i] != b.Membership[i] {
			t.Fatalf("membership differs at %d", i)
		}
	}
}

func TestSortInt32(t *testing.T) {
	f := func(raw []int32) bool {
		v := append([]int32(nil), raw...)
		par.SortInt32(v)
		for i := 1; i < len(v); i++ {
			if v[i-1] > v[i] {
				return false
			}
		}
		return len(v) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Exercise the quicksort path explicitly.
	rng := par.NewRNG(3)
	big := make([]int32, 500)
	for i := range big {
		big[i] = int32(rng.Intn(100))
	}
	par.SortInt32(big)
	for i := 1; i < len(big); i++ {
		if big[i-1] > big[i] {
			t.Fatal("quicksort path failed")
		}
	}
}

func TestVertexFollowingLemma3Property(t *testing.T) {
	// Lemma 3: a single-degree vertex always ends in its neighbor's
	// community. Verify on road networks, the input class with many
	// single-degree vertices.
	g := generate.MustGenerate(generate.EuropeOSM, generate.Small, 0, 2)
	res := Run(g, Options{})
	violations := 0
	for i := 0; i < g.N(); i++ {
		nbr, _ := g.Neighbors(i)
		if len(nbr) == 1 && int(nbr[0]) != i {
			if res.Membership[i] != res.Membership[nbr[0]] {
				violations++
			}
		}
	}
	if violations > 0 {
		t.Fatalf("%d single-degree vertices ended apart from their neighbor", violations)
	}
}
