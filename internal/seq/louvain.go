// Package seq implements the serial Louvain method (Blondel et al. 2008)
// exactly as the paper describes it in §3: a multi-phase, iterative greedy
// heuristic where each iteration linearly scans vertices in a fixed order,
// moves each vertex to the neighboring community of maximum modularity gain
// (Eq. 4/5), and each phase ends by coarsening communities into
// meta-vertices. It is the reference implementation the paper's Table 2 and
// Figs. 3–7 compare against ("serial Louvain [10]").
package seq

import (
	"fmt"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// Options control the serial Louvain run.
type Options struct {
	// Threshold is the minimum net modularity gain required to start another
	// iteration within a phase (and another phase overall). The paper's
	// default for uncolored processing is 1e-6 (§6.1).
	Threshold float64
	// MaxIterations caps iterations per phase (0 = unlimited).
	MaxIterations int
	// MaxPhases caps the number of phases (0 = unlimited).
	MaxPhases int
	// Resolution is the γ multiplier on the null-model term (1 = standard
	// modularity as used throughout the paper; exposed for the resolution-
	// limit extension the paper lists as future work (iv)).
	Resolution float64
	// Order optionally overrides the vertex scan order of the first
	// phase's iterations (nil = natural order 0..n-1). The paper notes
	// (§3, §6.2.2) that the serial heuristic scans vertices in "an
	// arbitrary but predefined order" and that ordering visibly affects
	// convergence on uniform-degree inputs like Channel; this knob lets
	// experiments quantify that. Must be a permutation of [0, n).
	Order []int32
}

// Defaults fills unset fields with the paper's defaults.
func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 1e-6
	}
	if o.Resolution <= 0 {
		o.Resolution = 1
	}
	return o
}

// PhaseTrace records one phase's outcome for the convergence plots
// (modularity-vs-iteration curves of Figs. 3–6).
type PhaseTrace struct {
	Iterations  int
	Modularity  []float64 // modularity after each iteration of this phase
	VertexCount int       // size of the phase's input graph
}

// Result is the output of a Louvain run.
type Result struct {
	// Membership assigns every original vertex a dense community id.
	Membership []int32
	// NumCommunities is the number of distinct ids in Membership.
	NumCommunities int
	// Modularity of the final partitioning on the original graph.
	Modularity float64
	// Phases traces per-phase convergence.
	Phases []PhaseTrace
	// TotalIterations across all phases (the paper reports these in
	// Tables 4–5).
	TotalIterations int
}

// Run executes the serial Louvain method on g.
func Run(g *graph.Graph, opts Options) *Result {
	opts = opts.withDefaults()
	res := &Result{Membership: make([]int32, g.N())}
	for i := range res.Membership {
		res.Membership[i] = int32(i)
	}
	work := g
	prevQ := -1.0
	for phase := 0; opts.MaxPhases == 0 || phase < opts.MaxPhases; phase++ {
		phaseOpts := opts
		if phase > 0 {
			phaseOpts.Order = nil // custom order applies to the input graph only
		}
		membership, trace, q := louvainPhase(work, phaseOpts)
		res.Phases = append(res.Phases, trace)
		res.TotalIterations += trace.Iterations
		// Fold this phase's assignment into the original-vertex membership.
		for v := range res.Membership {
			res.Membership[v] = membership[res.Membership[v]]
		}
		res.Modularity = q
		if q-prevQ < opts.Threshold {
			break
		}
		prevQ = q
		nc := maxOf(membership) + 1
		if nc == int32(work.N()) {
			break // no merges happened; coarsening would loop forever
		}
		work = Coarsen(work, membership, int(nc))
	}
	res.NumCommunities = int(maxOf(res.Membership)) + 1
	return res
}

func maxOf(v []int32) int32 {
	m := int32(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// louvainPhase runs local-move iterations on g until the per-iteration gain
// drops below the threshold. It returns the dense community assignment, the
// phase trace, and the final modularity of g under that assignment.
func louvainPhase(g *graph.Graph, opts Options) ([]int32, PhaseTrace, float64) {
	n := g.N()
	m := g.M()
	comm := make([]int32, n)
	a := make([]float64, n) // community degrees a_C
	for i := 0; i < n; i++ {
		comm[i] = int32(i)
		a[i] = g.Degree(i)
	}
	trace := PhaseTrace{VertexCount: n}
	prevQ := Modularity(g, comm, opts.Resolution)
	// Neighbor-community scratch: the flat generation-stamped accumulator
	// (community id → aggregated edge weight e_{i→C}) that replaced the
	// per-vertex hash map, keeping the serial baseline honest for
	// speedup-vs-serial comparisons. First-touch key order matches the old
	// map-insertion order, so decisions are bit-identical.
	acc := par.NewSparseAccum(n, g.MaxOutDegree()+1)

	order := opts.Order
	if order != nil && len(order) != n {
		panic(fmt.Sprintf("seq: order length %d != n %d", len(order), n))
	}
	for iter := 0; opts.MaxIterations == 0 || iter < opts.MaxIterations; iter++ {
		for scan := 0; scan < n; scan++ {
			i := scan
			if order != nil {
				i = int(order[scan])
			}
			ci := comm[i]
			ki := g.Degree(i)
			nbr, wts := g.Neighbors(i)
			acc.Reset()
			// Ensure the current community is present even if i has no
			// neighbor inside it (e_{i→C(i)\{i}} may be 0).
			acc.Ensure(ci)
			for t, j := range nbr {
				if int(j) == i {
					continue // self-loop stays with i regardless of move
				}
				acc.Add(comm[j], wts[t])
			}
			eOwn := acc.Get(ci) // e_{i→C(i)\{i}}
			aOwn := a[ci] - ki
			best := ci
			bestGain := 0.0
			for _, c := range acc.Keys()[1:] {
				// Eq. (4): ΔQ_{i→C(t)} = (e_{i→Ct} − e_{i→Ci\{i}})/m
				//   + γ·(2·k_i·a_{Ci\{i}} − 2·k_i·a_{Ct}) / (2m)²
				gain := (acc.Get(c)-eOwn)/m +
					opts.Resolution*(2*ki*aOwn-2*ki*a[c])/(4*m*m)
				if gain > bestGain {
					bestGain = gain
					best = c
				}
			}
			if best != ci && bestGain > 0 {
				a[ci] -= ki
				a[best] += ki
				comm[i] = best
			}
		}
		q := Modularity(g, comm, opts.Resolution)
		trace.Iterations++
		trace.Modularity = append(trace.Modularity, q)
		if q-prevQ < opts.Threshold {
			prevQ = q
			break
		}
		prevQ = q
	}
	dense := Renumber(comm)
	return dense, trace, prevQ
}

// Renumber maps arbitrary non-negative community ids to dense ids [0, k)
// preserving first-appearance order, in place over a copy. The remap table
// is a flat array sized to the maximum id (ids are vertex-derived, so this
// is O(n) space) — no hashing.
func Renumber(comm []int32) []int32 {
	dense := make([]int32, len(comm))
	maxID := int32(-1)
	for _, c := range comm {
		if c > maxID {
			maxID = c
		}
	}
	remap := make([]int32, maxID+1)
	for i := range remap {
		remap[i] = -1
	}
	next := int32(0)
	for i, c := range comm {
		if remap[c] < 0 {
			remap[c] = next
			next++
		}
		dense[i] = remap[c]
	}
	return dense
}

// Modularity computes Eq. (3) for the given community assignment:
// Q = (1/2m)·Σ_i e_{i→C(i)} − γ·Σ_C (a_C/2m)².
// Self-loops contribute once, matching the graph package's degree
// convention, so Q is phase-invariant under Coarsen.
func Modularity(g *graph.Graph, comm []int32, gamma float64) float64 {
	if gamma <= 0 {
		gamma = 1
	}
	n := g.N()
	if n == 0 {
		return 0
	}
	m2 := g.TotalWeight() // 2m
	if m2 == 0 {
		return 0
	}
	var within float64
	a := make([]float64, n)
	for i := 0; i < n; i++ {
		nbr, wts := g.Neighbors(i)
		ci := comm[i]
		a[ci] += g.Degree(i)
		for t, j := range nbr {
			if comm[j] == ci {
				within += wts[t]
			}
		}
	}
	var null float64
	for _, ac := range a {
		frac := ac / m2
		null += frac * frac
	}
	return within/m2 - gamma*null
}

// Coarsen builds the next phase's graph: one meta-vertex per community,
// a self-loop aggregating intra-community weight (counted with the paper's
// convention: 2×w per internal non-loop edge plus member self-loops), and
// inter-community edges aggregating cross weights. membership must be dense
// in [0, numComm).
//
// Vertices are grouped by community with a serial counting sort, each
// community's row aggregates in a single reused flat accumulator, and rows
// are written straight into the CSR arrays over a prefix sum of row lengths
// — the serial twin of core's parallel rebuild, with no per-community maps.
// The stable ascending scatter keeps per-key addition order identical to
// the old vertex-order map accumulation, so weights are bit-identical.
func Coarsen(g *graph.Graph, membership []int32, numComm int) *graph.Graph {
	n := g.N()
	if len(membership) != n {
		panic(fmt.Sprintf("seq: membership length %d != n %d", len(membership), n))
	}
	// Counting sort: members of community c at members[starts[c]:starts[c+1]],
	// in ascending vertex order.
	starts := make([]int64, numComm+1)
	for _, c := range membership {
		starts[c+1]++
	}
	for c := 0; c < numComm; c++ {
		starts[c+1] += starts[c]
	}
	members := make([]int32, n)
	cursor := make([]int64, numComm)
	copy(cursor, starts[:numComm])
	for u := 0; u < n; u++ {
		c := membership[u]
		members[cursor[c]] = int32(u)
		cursor[c]++
	}

	// Aggregate rows in community order, appending straight into the final
	// CSR arrays: serial processing emits rows already in CSR order, so a
	// single traversal of the arcs suffices (capacity ArcCount is an upper
	// bound — aggregation only ever merges arcs).
	acc := par.NewSparseAccum(numComm, 0)
	offsets := make([]int64, numComm+1)
	adj := make([]int32, 0, g.ArcCount())
	weights := make([]float64, 0, g.ArcCount())
	for c := 0; c < numComm; c++ {
		acc.Reset()
		for _, u := range members[starts[c]:starts[c+1]] {
			nbr, wts := g.Neighbors(int(u))
			for t, v := range nbr {
				acc.Add(membership[v], wts[t])
				// Internal non-loop edges are visited from both endpoints →
				// 2w at key c; self-loops once → w. Inter edges appear once
				// from each side → symmetric w. Exactly the convention.
			}
		}
		keys := acc.Keys()
		par.SortInt32(keys) // deterministic row order: ascending neighbor id
		for _, k := range keys {
			adj = append(adj, k)
			weights = append(weights, acc.Get(k))
		}
		offsets[c+1] = int64(len(adj))
	}
	cg, err := graph.FromCSR(offsets, adj, weights, 1, false)
	if err != nil {
		panic(err) // unreachable: check=false never errors
	}
	return cg
}
