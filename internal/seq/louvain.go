// Package seq implements the serial Louvain method (Blondel et al. 2008)
// exactly as the paper describes it in §3: a multi-phase, iterative greedy
// heuristic where each iteration linearly scans vertices in a fixed order,
// moves each vertex to the neighboring community of maximum modularity gain
// (Eq. 4/5), and each phase ends by coarsening communities into
// meta-vertices. It is the reference implementation the paper's Table 2 and
// Figs. 3–7 compare against ("serial Louvain [10]").
package seq

import (
	"fmt"
	"sort"

	"grappolo/internal/graph"
)

// Options control the serial Louvain run.
type Options struct {
	// Threshold is the minimum net modularity gain required to start another
	// iteration within a phase (and another phase overall). The paper's
	// default for uncolored processing is 1e-6 (§6.1).
	Threshold float64
	// MaxIterations caps iterations per phase (0 = unlimited).
	MaxIterations int
	// MaxPhases caps the number of phases (0 = unlimited).
	MaxPhases int
	// Resolution is the γ multiplier on the null-model term (1 = standard
	// modularity as used throughout the paper; exposed for the resolution-
	// limit extension the paper lists as future work (iv)).
	Resolution float64
	// Order optionally overrides the vertex scan order of the first
	// phase's iterations (nil = natural order 0..n-1). The paper notes
	// (§3, §6.2.2) that the serial heuristic scans vertices in "an
	// arbitrary but predefined order" and that ordering visibly affects
	// convergence on uniform-degree inputs like Channel; this knob lets
	// experiments quantify that. Must be a permutation of [0, n).
	Order []int32
}

// Defaults fills unset fields with the paper's defaults.
func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 1e-6
	}
	if o.Resolution <= 0 {
		o.Resolution = 1
	}
	return o
}

// PhaseTrace records one phase's outcome for the convergence plots
// (modularity-vs-iteration curves of Figs. 3–6).
type PhaseTrace struct {
	Iterations  int
	Modularity  []float64 // modularity after each iteration of this phase
	VertexCount int       // size of the phase's input graph
}

// Result is the output of a Louvain run.
type Result struct {
	// Membership assigns every original vertex a dense community id.
	Membership []int32
	// NumCommunities is the number of distinct ids in Membership.
	NumCommunities int
	// Modularity of the final partitioning on the original graph.
	Modularity float64
	// Phases traces per-phase convergence.
	Phases []PhaseTrace
	// TotalIterations across all phases (the paper reports these in
	// Tables 4–5).
	TotalIterations int
}

// Run executes the serial Louvain method on g.
func Run(g *graph.Graph, opts Options) *Result {
	opts = opts.withDefaults()
	res := &Result{Membership: make([]int32, g.N())}
	for i := range res.Membership {
		res.Membership[i] = int32(i)
	}
	work := g
	prevQ := -1.0
	for phase := 0; opts.MaxPhases == 0 || phase < opts.MaxPhases; phase++ {
		phaseOpts := opts
		if phase > 0 {
			phaseOpts.Order = nil // custom order applies to the input graph only
		}
		membership, trace, q := louvainPhase(work, phaseOpts)
		res.Phases = append(res.Phases, trace)
		res.TotalIterations += trace.Iterations
		// Fold this phase's assignment into the original-vertex membership.
		for v := range res.Membership {
			res.Membership[v] = membership[res.Membership[v]]
		}
		res.Modularity = q
		if q-prevQ < opts.Threshold {
			break
		}
		prevQ = q
		nc := maxOf(membership) + 1
		if nc == int32(work.N()) {
			break // no merges happened; coarsening would loop forever
		}
		work = Coarsen(work, membership, int(nc))
	}
	res.NumCommunities = int(maxOf(res.Membership)) + 1
	return res
}

func maxOf(v []int32) int32 {
	m := int32(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// louvainPhase runs local-move iterations on g until the per-iteration gain
// drops below the threshold. It returns the dense community assignment, the
// phase trace, and the final modularity of g under that assignment.
func louvainPhase(g *graph.Graph, opts Options) ([]int32, PhaseTrace, float64) {
	n := g.N()
	m := g.M()
	comm := make([]int32, n)
	a := make([]float64, n) // community degrees a_C
	for i := 0; i < n; i++ {
		comm[i] = int32(i)
		a[i] = g.Degree(i)
	}
	trace := PhaseTrace{VertexCount: n}
	prevQ := Modularity(g, comm, opts.Resolution)
	// neighComm scratch: community id -> aggregated edge weight e_{i→C}.
	type cw struct {
		c int32
		w float64
	}
	var ncs []cw
	idx := make(map[int32]int, 64)

	order := opts.Order
	if order != nil && len(order) != n {
		panic(fmt.Sprintf("seq: order length %d != n %d", len(order), n))
	}
	for iter := 0; opts.MaxIterations == 0 || iter < opts.MaxIterations; iter++ {
		for scan := 0; scan < n; scan++ {
			i := scan
			if order != nil {
				i = int(order[scan])
			}
			ci := comm[i]
			ki := g.Degree(i)
			nbr, wts := g.Neighbors(i)
			ncs = ncs[:0]
			clear(idx)
			// Ensure the current community is present even if i has no
			// neighbor inside it (e_{i→C(i)\{i}} may be 0).
			idx[ci] = 0
			ncs = append(ncs, cw{c: ci})
			for t, j := range nbr {
				if int(j) == i {
					continue // self-loop stays with i regardless of move
				}
				cj := comm[j]
				if k, ok := idx[cj]; ok {
					ncs[k].w += wts[t]
				} else {
					idx[cj] = len(ncs)
					ncs = append(ncs, cw{c: cj, w: wts[t]})
				}
			}
			eOwn := ncs[0].w // e_{i→C(i)\{i}}
			aOwn := a[ci] - ki
			best := ci
			bestGain := 0.0
			for _, t := range ncs[1:] {
				// Eq. (4): ΔQ_{i→C(t)} = (e_{i→Ct} − e_{i→Ci\{i}})/m
				//   + γ·(2·k_i·a_{Ci\{i}} − 2·k_i·a_{Ct}) / (2m)²
				gain := (t.w-eOwn)/m +
					opts.Resolution*(2*ki*aOwn-2*ki*a[t.c])/(4*m*m)
				if gain > bestGain {
					bestGain = gain
					best = t.c
				}
			}
			if best != ci && bestGain > 0 {
				a[ci] -= ki
				a[best] += ki
				comm[i] = best
			}
		}
		q := Modularity(g, comm, opts.Resolution)
		trace.Iterations++
		trace.Modularity = append(trace.Modularity, q)
		if q-prevQ < opts.Threshold {
			prevQ = q
			break
		}
		prevQ = q
	}
	dense := Renumber(comm)
	return dense, trace, prevQ
}

// Renumber maps arbitrary community ids to dense ids [0, k) preserving
// first-appearance order, in place over a copy.
func Renumber(comm []int32) []int32 {
	dense := make([]int32, len(comm))
	next := int32(0)
	remap := make(map[int32]int32, 256)
	for i, c := range comm {
		d, ok := remap[c]
		if !ok {
			d = next
			remap[c] = d
			next++
		}
		dense[i] = d
	}
	return dense
}

// Modularity computes Eq. (3) for the given community assignment:
// Q = (1/2m)·Σ_i e_{i→C(i)} − γ·Σ_C (a_C/2m)².
// Self-loops contribute once, matching the graph package's degree
// convention, so Q is phase-invariant under Coarsen.
func Modularity(g *graph.Graph, comm []int32, gamma float64) float64 {
	if gamma <= 0 {
		gamma = 1
	}
	n := g.N()
	if n == 0 {
		return 0
	}
	m2 := g.TotalWeight() // 2m
	if m2 == 0 {
		return 0
	}
	var within float64
	a := make([]float64, n)
	for i := 0; i < n; i++ {
		nbr, wts := g.Neighbors(i)
		ci := comm[i]
		a[ci] += g.Degree(i)
		for t, j := range nbr {
			if comm[j] == ci {
				within += wts[t]
			}
		}
	}
	var null float64
	for _, ac := range a {
		frac := ac / m2
		null += frac * frac
	}
	return within/m2 - gamma*null
}

// Coarsen builds the next phase's graph: one meta-vertex per community,
// a self-loop aggregating intra-community weight (counted with the paper's
// convention: 2×w per internal non-loop edge plus member self-loops), and
// inter-community edges aggregating cross weights. membership must be dense
// in [0, numComm).
func Coarsen(g *graph.Graph, membership []int32, numComm int) *graph.Graph {
	n := g.N()
	if len(membership) != n {
		panic(fmt.Sprintf("seq: membership length %d != n %d", len(membership), n))
	}
	rows := make([]map[int32]float64, numComm)
	for c := range rows {
		rows[c] = make(map[int32]float64, 4)
	}
	for u := 0; u < n; u++ {
		cu := membership[u]
		nbr, wts := g.Neighbors(u)
		for t, v := range nbr {
			cv := membership[v]
			rows[cu][cv] += wts[t]
			// Internal non-loop edges appear in both rows → 2w total at
			// rows[cu][cu]; self-loops appear once → w. Inter edges appear
			// once from each side → symmetric w. Exactly the convention.
		}
	}
	var offsets []int64
	var adj []int32
	var weights []float64
	offsets = make([]int64, numComm+1)
	for c := 0; c < numComm; c++ {
		offsets[c+1] = offsets[c] + int64(len(rows[c]))
	}
	adj = make([]int32, offsets[numComm])
	weights = make([]float64, offsets[numComm])
	for c := 0; c < numComm; c++ {
		pos := offsets[c]
		// Deterministic row order: ascending neighbor id.
		keys := make([]int32, 0, len(rows[c]))
		for k := range rows[c] {
			keys = append(keys, k)
		}
		sortInt32(keys)
		for _, k := range keys {
			adj[pos] = k
			weights[pos] = rows[c][k]
			pos++
		}
	}
	cg, err := graph.FromCSR(offsets, adj, weights, 1, false)
	if err != nil {
		panic(err) // unreachable: check=false never errors
	}
	return cg
}

func sortInt32(v []int32) {
	// Insertion sort for the typically tiny coarsened rows; stdlib sort for
	// the occasional large hub row.
	if len(v) <= 24 {
		for i := 1; i < len(v); i++ {
			x := v[i]
			j := i - 1
			for j >= 0 && v[j] > x {
				v[j+1] = v[j]
				j--
			}
			v[j+1] = x
		}
		return
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}
