package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc mechanizes the steady-state zero-allocation contract on the
// sweep hot path. Functions carrying the //grappolo:hotpath directive (the
// decide kernels, the sweep bodies, the accumulator methods) execute per
// vertex or per arc, millions of times per phase; a single construct that
// allocates or forces dynamic dispatch there undoes the flat-accumulator
// and captureless-body work and shows up only as a throughput regression.
// The allocation gates (TestDecideSteadyStateZeroAllocs and friends) catch
// the end-to-end symptom on covered configurations; this analyzer names the
// offending line on every configuration, at compile time.
//
// Inside a hotpath function the following are flagged:
//   - map composite literals and map index assignments (hashing + growth)
//   - calls into package fmt (interface boxing, reflection)
//   - append to slices not rooted in a parameter or receiver (growth of
//     function-local backing arrays escapes the pooled-scratch discipline)
//   - conversions of concrete values to interface types, explicit or via
//     argument passing (boxing allocates)
//   - func literals (closure creation; even captureless literals become
//     allocation hazards the moment someone adds a captured variable)
//
// The directive is a contract, not a hint: annotate a function only when it
// must stay clean, and keep it clean rather than removing the annotation.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions marked //grappolo:hotpath must avoid allocating or boxing constructs\n\n" +
		"Flags map literals/inserts, fmt calls, append to non-parameter slices,\n" +
		"concrete-to-interface conversions, and closure creation inside functions\n" +
		"annotated with the //grappolo:hotpath directive.",
	Run: runHotAlloc,
}

// hotpathDirective is the annotation comment, written on its own line in
// the doc comment of the function it constrains.
const hotpathDirective = "//grappolo:hotpath"

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// isHotpath reports whether the declaration carries the directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// checkHotFunc walks one hotpath function body.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	params := paramVars(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "%s is //grappolo:hotpath but creates a func literal; hoist it to a package-level function", name)
			return false // the literal runs elsewhere; don't double-report its body
		case *ast.CompositeLit:
			if t := pass.TypesInfo.Types[x].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(), "%s is //grappolo:hotpath but builds a map literal; use pooled flat scratch (par.SparseAccum / par.Marker)", name)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if t := pass.TypesInfo.Types[ix.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(lhs.Pos(), "%s is //grappolo:hotpath but inserts into a map; use pooled flat scratch (par.SparseAccum / par.Marker)", name)
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, name, params, x)
		}
		return true
	})
}

// paramVars collects the parameter and receiver objects of fd; appends
// rooted in these are amortized into caller-owned storage and allowed.
func paramVars(pass *Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	vars := map[*types.Var]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
					vars[v] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return vars
}

// checkHotCall flags fmt calls, non-parameter appends, and boxing argument
// conversions.
func checkHotCall(pass *Pass, name string, params map[*types.Var]bool, call *ast.CallExpr) {
	// Explicit conversion T(x) with interface T and concrete x.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			at := pass.TypesInfo.Types[call.Args[0]].Type
			if at != nil && !types.IsInterface(at) && at != types.Typ[types.UntypedNil] {
				pass.Reportf(call.Pos(), "%s is //grappolo:hotpath but converts %s to interface %s (boxing allocates)", name, at, tv.Type)
			}
			return
		}
	}

	if fn := calleeFunc(pass, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "%s is //grappolo:hotpath but calls fmt.%s (boxing + reflection); format off the hot path", name, fn.Name())
			return
		}
		// Concrete argument passed to an interface parameter boxes too. The
		// INSTANTIATED signature is read off the call's Fun expression so
		// generic type parameters (which never box) are not mistaken for
		// interfaces.
		if sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature); ok {
			checkBoxingArgs(pass, name, call, sig)
		}
	}

	// append to a slice whose root is not a parameter/receiver.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			if root := rootVar(pass, call.Args[0]); root == nil || !params[root] {
				pass.Reportf(call.Pos(), "%s is //grappolo:hotpath but appends to a slice not rooted in a parameter or receiver; growth allocates outside the pooled-scratch discipline", name)
			}
		}
	}
}

// checkBoxingArgs flags concrete arguments passed to interface-typed
// parameters.
func checkBoxingArgs(pass *Pass, name string, call *ast.CallExpr, sig *types.Signature) {
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case !sig.Variadic() && i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		case sig.Variadic() && i < sig.Params().Len()-1:
			pt = sig.Params().At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue // f(xs...) passes the slice through; no per-element boxing
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue // generic type parameters never box
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.Types[arg].Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "%s is //grappolo:hotpath but passes concrete %s to interface parameter of %s (boxing allocates)", name, at, exprString(call.Fun))
	}
}

// rootVar unwraps selector/index/star/paren chains to the base identifier's
// object: the variable whose storage an append ultimately grows.
func rootVar(pass *Pass, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}
