package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Config describes one load of the tree under analysis: where the module
// lives, what its import path is, and which build-tag set selects files.
// Running the suite under several tag sets (default, faultinject, noasm —
// what CI does) is several loads with different Tags.
type Config struct {
	// Root is the directory holding the code to load. For the real
	// repository this is the module root; for anatest fixtures it is the
	// testdata/src directory.
	Root string
	// Module is the module's import path ("grappolo"); import paths under
	// it resolve to directories under Root. When empty, every non-stdlib
	// import path resolves GOPATH-style to Root/<path> — the layout anatest
	// fixtures use.
	Module string
	// Tags are the active build tags (as in -tags). GOOS/GOARCH default to
	// the runtime's values when empty.
	Tags         []string
	GOOS, GOARCH string
}

// A Package is one loaded, type-checked package plus the syntax of its
// tag-excluded sibling files.
type Package struct {
	Path    string
	Dir     string
	Files   []*ast.File
	Ignored []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// A Loader parses and type-checks module packages from source. One Loader
// caches every package (module-local and standard library) it has resolved,
// so loading ./... type-checks each dependency once.
type Loader struct {
	cfg  Config
	Fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package       // fully loaded module-local packages
	deps map[string]*types.Package // import cache incl. stdlib
	path []string                  // import stack, for cycle reporting
}

// NewLoader returns a Loader for cfg. Zero-value GOOS/GOARCH/Tags are
// defaulted here so callers can pass a minimal Config.
func NewLoader(cfg Config) *Loader {
	if cfg.GOOS == "" {
		cfg.GOOS = runtime.GOOS
	}
	if cfg.GOARCH == "" {
		cfg.GOARCH = runtime.GOARCH
	}
	fset := token.NewFileSet()
	return &Loader{
		cfg:  cfg,
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*Package),
		deps: make(map[string]*types.Package),
	}
}

// dirFor maps an import path to a directory under Root, or "" when the path
// is not local to this load (i.e. standard library).
func (l *Loader) dirFor(path string) string {
	rel := ""
	switch {
	case l.cfg.Module == "":
		rel = path
	case path == l.cfg.Module:
		rel = "."
	case strings.HasPrefix(path, l.cfg.Module+"/"):
		rel = strings.TrimPrefix(path, l.cfg.Module+"/")
	default:
		return ""
	}
	dir := filepath.Join(l.cfg.Root, filepath.FromSlash(rel))
	if l.cfg.Module == "" {
		// GOPATH-style fixture layout: only claim the path if the directory
		// actually exists, otherwise fall through to the standard library.
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return ""
		}
	}
	return dir
}

// Import implements types.Importer over the loader's two sources: local
// directories under Root, and the standard library (compiled from GOROOT
// source and cached).
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	if dir := l.dirFor(path); dir != "" {
		for _, on := range l.path {
			if on == path {
				return nil, fmt.Errorf("import cycle: %s", strings.Join(append(l.path, path), " -> "))
			}
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.deps[path] = p
	return p, nil
}

// Load parses and type-checks the package with the given import path,
// returning the cached result on a second call.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("%s: not a package under %s", path, l.cfg.Root)
	}
	files, ignored, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var terrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	l.path = append(l.path, path)
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	l.path = l.path[:len(l.path)-1]
	if len(terrs) > 0 {
		return nil, fmt.Errorf("%s: type errors: %w", path, terrs[0])
	}
	p := &Package{Path: path, Dir: dir, Files: files, Ignored: ignored, Types: tpkg, Info: info}
	l.pkgs[path] = p
	l.deps[path] = tpkg
	return p, nil
}

// parseDir parses every non-test .go file in dir, splitting the result into
// build-selected files and tag-excluded (syntax-only) files.
func (l *Loader) parseDir(dir string) (files, ignored []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, perr
		}
		if l.fileSelected(name, f) {
			files = append(files, f)
		} else {
			ignored = append(ignored, f)
		}
	}
	return files, ignored, nil
}

// fileSelected reports whether the current GOOS/GOARCH/tag set builds the
// file, honoring both filename-implied constraints (_linux, _amd64) and the
// //go:build line.
func (l *Loader) fileSelected(name string, f *ast.File) bool {
	if !l.filenameSelected(name) {
		return false
	}
	expr := FileConstraint(f)
	if expr == nil {
		return true
	}
	return expr.Eval(l.tagTruth)
}

// FileConstraint returns the file's //go:build (or legacy // +build)
// expression, or nil when the file is unconstrained.
func FileConstraint(f *ast.File) constraint.Expr {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) || constraint.IsPlusBuild(c.Text) {
				if expr, err := constraint.Parse(c.Text); err == nil {
					return expr
				}
			}
		}
	}
	return nil
}

// knownOS / knownArch mirror go/build's lists closely enough for this
// module: they only have to recognize filename suffixes and arch tags that
// could plausibly appear here.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true, "linux": true,
	"netbsd": true, "openbsd": true, "plan9": true, "solaris": true,
	"wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true, "loong64": true,
	"mips": true, "mipsle": true, "mips64": true, "mips64le": true,
	"ppc64": true, "ppc64le": true, "riscv64": true, "s390x": true,
	"wasm": true,
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// filenameSelected applies the name_GOOS_GOARCH.go convention.
func (l *Loader) filenameSelected(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	prev := ""
	if len(parts) >= 3 {
		prev = parts[len(parts)-2]
	}
	if knownArch[last] {
		if last != l.cfg.GOARCH {
			return false
		}
		return prev == "" || !knownOS[prev] || prev == l.cfg.GOOS
	}
	if knownOS[last] {
		return last == l.cfg.GOOS
	}
	return true
}

// tagTruth evaluates one build tag under the loader's configuration.
func (l *Loader) tagTruth(tag string) bool {
	switch tag {
	case l.cfg.GOOS, l.cfg.GOARCH, "gc":
		return true
	case "unix":
		return unixOS[l.cfg.GOOS]
	case "cgo":
		return false
	}
	if v, ok := strings.CutPrefix(tag, "go1."); ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n <= 24 // the toolchain the module targets (go.mod)
		}
	}
	for _, t := range l.cfg.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// ListPackages walks Root and returns the import paths of every buildable
// package, in sorted order. Directories named testdata or vendor, and
// hidden/underscore directories, are skipped — the same pruning the go tool
// applies to ./... patterns.
func (l *Loader) ListPackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.cfg.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.cfg.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo := false
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.cfg.Root, p)
		if err != nil {
			return err
		}
		ip := l.cfg.Module
		if rel != "." {
			ip = l.cfg.Module + "/" + filepath.ToSlash(rel)
			if l.cfg.Module == "" {
				ip = filepath.ToSlash(rel)
			}
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Run loads every package matched by patterns and applies each analyzer,
// returning the combined, sorted findings. Patterns follow the go tool's
// shape: "./..." for the whole tree, "./dir/..." for a subtree, "./dir" for
// one package; an empty pattern list means "./...".
func Run(cfg Config, analyzers []*Analyzer, patterns []string) ([]Finding, error) {
	l := NewLoader(cfg)
	all, err := l.ListPackages()
	if err != nil {
		return nil, err
	}
	selected, err := matchPatterns(cfg, all, patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, path := range selected {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		fs, err := RunPackage(l.Fset, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	SortFindings(findings)
	return findings, nil
}

// RunPackage applies each analyzer to one loaded package.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:     a,
			Fset:         fset,
			Files:        pkg.Files,
			IgnoredFiles: pkg.Ignored,
			Pkg:          pkg.Types,
			TypesInfo:    pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{
				Position: fset.Position(d.Pos),
				Analyzer: pass.Analyzer.Name,
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	return findings, nil
}

// matchPatterns expands go-tool-style package patterns against the full
// package list.
func matchPatterns(cfg Config, all, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	keep := make(map[string]bool)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		rec := false
		if pat == "..." {
			pat, rec = "", true
		} else if s, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, rec = s, true
		}
		pat = strings.TrimSuffix(pat, "/")
		// Convert the root-relative directory pattern to an import path.
		ip := cfg.Module
		if pat != "" {
			if cfg.Module != "" {
				ip = cfg.Module + "/" + pat
			} else {
				ip = pat
			}
		}
		matched := false
		for _, p := range all {
			if p == ip || (rec && (ip == "" || strings.HasPrefix(p, ip+"/"))) {
				keep[p] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	var out []string
	for _, p := range all {
		if keep[p] {
			out = append(out, p)
		}
	}
	return out, nil
}
