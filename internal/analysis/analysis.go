// Package analysis is the repository's static-analysis tier: a small,
// dependency-free framework in the shape of golang.org/x/tools/go/analysis
// plus the five grappolo-specific analyzers that mechanize invariants the
// codebase otherwise enforces by convention (see doc.go's "Static analysis"
// section at the repo root):
//
//   - capturebody:    bodies passed to par.ForChunkCtx-family helpers must
//     not be capturing closures (the PR 3 zero-alloc contract)
//   - internalimport: examples/ and cmd/grappolo must not import
//     grappolo/internal/...
//   - asmpair:        assembly-declared funcs must keep a signature-identical
//     fallback under the complementary build tag
//   - typederr:       the package's sentinel errors are compared with
//     errors.Is, never ==/!=; fmt.Errorf wrapping uses %w
//   - hotalloc:       functions annotated //grappolo:hotpath stay free of
//     the allocation/dispatch constructs the hot path bans
//
// The framework is intentionally a structural subset of go/analysis —
// Analyzer, Pass, Diagnostic, and an analysistest-style fixture runner
// (package anatest) — implemented on the standard library's go/ast,
// go/types and go/build/constraint only, because the build environment
// vendors no third-party modules. Porting an analyzer to the real
// golang.org/x/tools/go/analysis API is a mechanical rename.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one analysis: a name, prose documentation, and the
// Run function applied to every loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the grappolovet
	// command line. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is a summary.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	// A non-nil error means the analyzer itself failed (not a finding).
	Run func(pass *Pass) error
}

// A Pass hands one analyzer one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's build-selected, type-checked syntax trees
	// (test files are never loaded).
	Files []*ast.File
	// IgnoredFiles holds syntax-only trees for same-directory .go files that
	// the current build-tag set EXCLUDES (e.g. the noasm fallbacks in a
	// default build). They are parsed but not type-checked; asmpair uses
	// them to verify cross-tag pairing without a second load.
	IgnoredFiles []*ast.File
	Pkg          *types.Package
	TypesInfo    *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved Diagnostic: the position is absolute and the
// reporting analyzer is recorded, so it can be printed and sorted without
// the FileSet at hand.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String formats the finding the way go vet does: path:line:col: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// SortFindings orders findings by file, line, column, analyzer — the stable
// order grappolovet prints and tests compare against.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Suite returns the full analyzer suite in the order grappolovet runs it.
func Suite() []*Analyzer {
	return []*Analyzer{
		CaptureBody,
		InternalImport,
		AsmPair,
		TypedErr,
		HotAlloc,
	}
}
