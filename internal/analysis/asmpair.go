package analysis

import (
	"bytes"
	"go/ast"
	"go/build/constraint"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// AsmPair mechanizes the portability contract behind the PR 8 prefetch
// helpers: an assembly-implemented function is declared as a body-less Go
// func in a build-tagged file (e.g. (amd64 || arm64) && !noasm), and a pure
// Go fallback with the SAME signature must exist under the complementary
// constraint, or some build configuration either fails to link or — worse —
// compiles against a silently different signature. Because the fallback file
// is by construction EXCLUDED from whatever build is being analyzed, this
// analyzer reads the package's tag-excluded sibling files (Pass.IgnoredFiles)
// and checks, for every assignment of the involved tags, that exactly one
// declaration of each assembly-declared function is selected.
var AsmPair = &Analyzer{
	Name: "asmpair",
	Doc: "assembly-declared funcs must keep signature-identical fallbacks under complementary build tags\n\n" +
		"For every body-less (assembly-backed) func declaration, some sibling file that the\n" +
		"complementary tag set selects must declare the same name with an identical\n" +
		"signature, and no tag assignment may select zero or two declarations.",
	Run: runAsmPair,
}

// asmDecl is one package-level func declaration plus the constraint of the
// file it lives in.
type asmDecl struct {
	decl    *ast.FuncDecl
	expr    constraint.Expr // nil = unconstrained file
	hasBody bool
}

func runAsmPair(pass *Pass) error {
	// Collect every package-level func decl across selected AND excluded
	// files, grouped by name. Methods are out of scope: assembly bodies in
	// this module (and almost everywhere) back package-level funcs.
	byName := map[string][]asmDecl{}
	collect := func(f *ast.File) {
		expr := FileConstraint(f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			byName[fd.Name.Name] = append(byName[fd.Name.Name], asmDecl{
				decl: fd, expr: expr, hasBody: fd.Body != nil,
			})
		}
	}
	for _, f := range pass.Files {
		collect(f)
	}
	for _, f := range pass.IgnoredFiles {
		collect(f)
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		decls := byName[name]
		asm := false
		for _, d := range decls {
			if !d.hasBody {
				asm = true
			}
		}
		if !asm {
			continue
		}
		checkAsmGroup(pass, name, decls)
	}
	return nil
}

// checkAsmGroup validates one assembly-declared function name.
func checkAsmGroup(pass *Pass, name string, decls []asmDecl) {
	stub := decls[0]
	for _, d := range decls {
		if !d.hasBody {
			stub = d
			break
		}
	}

	// 1. Signatures must be textually identical (modulo parameter names) —
	// a drifted fallback compiles fine in its own build and explodes later.
	want := signatureString(stub.decl)
	for _, d := range decls {
		if got := signatureString(d.decl); got != want {
			pass.Reportf(d.decl.Pos(),
				"signature of %s%s diverges from its assembly declaration %s (%s); tag-paired declarations must stay identical",
				name, got, want, describeConstraint(stub.expr))
		}
	}

	// 2. An assembly decl in an unconstrained file can have no complement.
	if stub.expr == nil {
		if len(decls) == 1 {
			pass.Reportf(stub.decl.Pos(),
				"assembly-declared func %s has no build constraint and no fallback declaration; builds without the assembly cannot link",
				name)
		}
		return
	}

	// 3. Coverage: over every assignment of the tags any declaration
	// mentions, exactly one declaration must be selected. Gaps are
	// aggregated per failure mode (zero selected / several selected) with
	// one example assignment each, so a missing fallback is one diagnostic,
	// not one per uncovered tag combination.
	tags := collectTags(decls)
	var zero, multi []coverageGap
	for _, b := range evalCoverage(decls, tags) {
		if b.count == 0 {
			zero = append(zero, b)
		} else {
			multi = append(multi, b)
		}
	}
	if len(zero) > 0 {
		pass.Reportf(stub.decl.Pos(),
			"%s has no declaration selected under %d tag combination(s) (e.g. %s); the assembly declaration needs a signature-identical fallback under the complementary build constraint",
			name, len(zero), zero[0].assignment)
	}
	if len(multi) > 0 {
		pass.Reportf(stub.decl.Pos(),
			"%s has %d declarations selected under %d tag combination(s) (e.g. %s); tag-paired declarations must be mutually exclusive",
			name, multi[0].count, len(multi), multi[0].assignment)
	}
}

// coverageGap describes one tag assignment with != 1 selected declaration.
type coverageGap struct {
	assignment string
	count      int
}

// collectTags gathers the tag names mentioned by any declaration's
// constraint, sorted.
func collectTags(decls []asmDecl) []string {
	seen := map[string]bool{}
	var walk func(e constraint.Expr)
	walk = func(e constraint.Expr) {
		switch x := e.(type) {
		case *constraint.TagExpr:
			seen[x.Tag] = true
		case *constraint.NotExpr:
			walk(x.X)
		case *constraint.AndExpr:
			walk(x.X)
			walk(x.Y)
		case *constraint.OrExpr:
			walk(x.X)
			walk(x.Y)
		}
	}
	for _, d := range decls {
		if d.expr != nil {
			walk(d.expr)
		}
	}
	tags := make([]string, 0, len(seen))
	for t := range seen {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// evalCoverage enumerates every assignment of the given tags (skipping
// impossible ones where two architecture tags are simultaneously true) and
// counts how many declarations each assignment selects. An unconstrained
// declaration is selected by every assignment.
func evalCoverage(decls []asmDecl, tags []string) []coverageGap {
	var gaps []coverageGap
	if len(tags) > 16 { // 2^16 assignments is already absurd; bail safely
		return nil
	}
	for mask := 0; mask < 1<<len(tags); mask++ {
		truth := map[string]bool{}
		arches := 0
		for i, t := range tags {
			v := mask&(1<<i) != 0
			truth[t] = v
			if v && knownArch[t] {
				arches++
			}
		}
		if arches > 1 {
			continue // one GOARCH at a time
		}
		count := 0
		for _, d := range decls {
			if d.expr == nil || d.expr.Eval(func(tag string) bool { return truth[tag] }) {
				count++
			}
		}
		if count != 1 {
			var parts []string
			for _, t := range tags {
				if truth[t] {
					parts = append(parts, t)
				} else {
					parts = append(parts, "!"+t)
				}
			}
			gaps = append(gaps, coverageGap{assignment: strings.Join(parts, " "), count: count})
		}
	}
	return gaps
}

// signatureString renders a func declaration's type with parameter names
// stripped, so declarations differing only in naming compare equal.
func signatureString(fd *ast.FuncDecl) string {
	var b strings.Builder
	b.WriteString("(")
	writeFieldTypes(&b, fd.Type.Params)
	b.WriteString(")")
	if fd.Type.Results != nil && len(fd.Type.Results.List) > 0 {
		b.WriteString(" (")
		writeFieldTypes(&b, fd.Type.Results)
		b.WriteString(")")
	}
	return b.String()
}

func writeFieldTypes(b *strings.Builder, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	first := true
	for _, f := range fl.List {
		// A field like "a, b int" declares the type once for n names.
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(exprString(f.Type))
		}
	}
}

// describeConstraint renders a build-constraint expression for diagnostics.
func describeConstraint(e constraint.Expr) string {
	if e == nil {
		return "unconstrained"
	}
	return e.String()
}

// exprString renders an expression using go/printer; shared by several
// analyzers' diagnostics.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
