// Package hotalloc exercises the //grappolo:hotpath directive checks.
package hotalloc

import "fmt"

type state struct {
	keys []int32
	vals []float64
}

// cold uses every banned construct but carries no directive: nothing is
// flagged, the directive is opt-in.
func cold(n int) map[int]int {
	m := map[int]int{}
	for i := 0; i < n; i++ {
		m[i] = i
	}
	fmt.Println(n)
	return m
}

// hotClean appends only to receiver-rooted and parameter slices — the
// pooled-scratch discipline the kernels follow — so it is clean.
//
//grappolo:hotpath
func (st *state) hotClean(buf []float64, k int32, w float64) []float64 {
	st.keys = append(st.keys, k)
	st.vals = append(st.vals, w)
	buf = append(buf, w)
	return buf
}

//grappolo:hotpath
func hotMapLit() map[int]int {
	return map[int]int{1: 1} // want `map literal`
}

//grappolo:hotpath
func hotMapInsert(m map[int]int, k int) {
	m[k] = k // want `inserts into a map`
}

//grappolo:hotpath
func hotFmt(n int) {
	fmt.Println(n) // want `calls fmt\.Println`
}

//grappolo:hotpath
func hotAppendLocal(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `appends to a slice not rooted in a parameter`
	}
	return out
}

//grappolo:hotpath
func hotClosure(n int) int {
	f := func() int { return n } // want `creates a func literal`
	return f()
}

func sink(v any) {}

//grappolo:hotpath
func hotBoxArg(x int) {
	sink(x) // want `boxing`
}

//grappolo:hotpath
func hotBoxConvert(x int) any {
	return any(x) // want `boxing`
}

// hotCallsOk: calls with concrete arguments, interface-typed values passed
// through, and conversions between concrete types are all fine.
//
//grappolo:hotpath
func hotCallsOk(st *state, v any, x int) any {
	st.hotClean(nil, int32(x), float64(x))
	sink(v) // already an interface: no boxing here
	return v
}
