//go:build dualasm && !noasm

package asmpair

// Overlap is declared twice under constraints that are NOT complementary:
// under dualasm && !noasm both files are selected (duplicate symbol), and
// under !dualasm && !noasm neither is (missing symbol). Both failure modes
// are reported, aggregated with an example tag assignment each.
func Overlap(p *int32) // want `no declaration selected` `declarations selected under`
