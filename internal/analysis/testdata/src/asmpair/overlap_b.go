//go:build dualasm || noasm

package asmpair

func Overlap(p *int32) {}
