//go:build (amd64 || arm64) && !noasm

// Package asmpair exercises the asm/fallback pairing analyzer. This file
// plays the role of prefetch_asm.go: body-less declarations backed by
// assembly, selected on asm-capable builds.
package asmpair

// Prefetch is correctly paired: good_noasm.go declares it with an identical
// signature (parameter names may differ) under the complementary
// constraint. Nothing is flagged.
func Prefetch(p *int32)
