//go:build noasm || !(amd64 || arm64)

package asmpair

// Prefetch is the portable no-op fallback; the differing parameter name is
// deliberate (signature identity ignores names).
func Prefetch(q *int32) {}
