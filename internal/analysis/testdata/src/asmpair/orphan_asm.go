//go:build orphanasm && !noasm

package asmpair

// Orphan has no fallback declaration at all: builds outside its constraint
// cannot link.
func Orphan(p *int32) // want `no declaration selected`
