//go:build noasm || !(amd64 || arm64)

package asmpair

func Drifted(p *int64, n int) {} // want `signature of Drifted\(\*int64, int\) diverges`
