package asmpair

// Bare is an assembly declaration in an UNCONSTRAINED file with no other
// declaration: there is no build configuration that gets a fallback.
func Bare(p *int32) // want `no build constraint and no fallback`

// Plain is an ordinary Go function; having a body, it is no asm group and
// nothing here applies.
func Plain(p *int32) {}
