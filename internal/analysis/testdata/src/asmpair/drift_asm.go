//go:build (amd64 || arm64) && !noasm

package asmpair

// Drifted has a fallback under the right constraint whose signature has
// drifted; the diagnostic lands on the drifted declaration.
func Drifted(p *int32, n int)
