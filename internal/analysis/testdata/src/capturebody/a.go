// Package capturebody exercises the capturebody analyzer: bodies handed to
// the par ...Ctx helpers must be captureless.
package capturebody

import "grappolo/internal/par"

type state struct {
	curr []int32
	prev []int32
}

func (st *state) decide(i int) int32 { return st.prev[i] }

// sweepBody is the contract-conforming form: package-level, captureless,
// all state threaded through the ctx parameter.
func sweepBody(st *state, w, lo, hi int) {
	for i := lo; i < hi; i++ {
		st.curr[i] = st.decide(i)
	}
}

func stageBody(st *state, s, w, lo, hi int) {}

func stageLen(st *state, s int) int { return s }

// good shows the allowed forms: package-level functions and captureless
// literals.
func good(st *state, prefix []int64, n, p int) {
	par.ForChunkPrefixCtx(st, prefix, p, sweepBody)
	par.ForChunkWorkerCtx(st, n, p, 0, sweepBody)
	par.ForStagesCtx(st, 3, stageLen, p, stageBody)
	par.ForChunkCtx(st, n, p, 0, func(st *state, lo, hi int) {
		for i := lo; i < hi; i++ {
			st.curr[i] = 0
		}
	})
	_ = par.SumFloat64Ctx(st, n, p, func(st *state, i int) float64 { return float64(st.prev[i]) })
}

// goodClosureVariant: the closure-based (non-Ctx) helpers accept capturing
// closures by design; nothing is flagged.
func goodClosureVariant(st *state, n, p int) {
	par.ForChunk(n, p, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.curr[i] = 1
		}
	})
}

// sweepUncoloredLeaky reproduces the exact PR 3 pathology the Engine
// refactor removed from core's sweepUncolored: the loop body CAPTURES the
// phase state instead of receiving it through the ctx parameter. The body
// escapes into the worker goroutines, so the capturing closure is
// heap-allocated on every sweep call — this was the dominant share of the
// ~170 allocs/run a warmed engine paid before the captureless rewrite.
func sweepUncoloredLeaky(st *state, prefix []int64, workers int) {
	copy(st.prev, st.curr)
	par.ForChunkPrefixCtx(0, prefix, workers, func(_ int, w, lo, hi int) { // want `captures st`
		for i := lo; i < hi; i++ {
			st.curr[i] = st.decide(i)
		}
	})
}

// badMulti captures two variables; both are named in the diagnostic.
func badMulti(st *state, n, p, bias int) {
	par.ForChunkCtx(0, n, p, 0, func(_ int, lo, hi int) { // want `captures bias, st`
		for i := lo; i < hi; i++ {
			st.curr[i] = int32(bias)
		}
	})
}

// badCount: EVERY func-typed argument of a ...Ctx helper is checked, not
// just the final loop body.
func badCount(st *state, p int, sizes []int) {
	par.ForStagesCtx(st, len(sizes), func(st *state, s int) int { return sizes[s] }, p, stageBody) // want `captures sizes`
}

// badReduction: the reduction helpers are covered too.
func badReduction(st *state, n, p int, scale float64) float64 {
	return par.SumFloat64Ctx(st, n, p, func(st *state, i int) float64 { // want `captures scale`
		return scale * float64(st.prev[i])
	})
}

// badMethodValue: a bound method value allocates per evaluation exactly
// like a capturing closure.
func badMethodValue(st *state, n, p int) {
	par.ForChunkWorkerCtx(st, n, p, 0, st.boundBody) // want `method value`
}

func (st *state) boundBody(_ *state, w, lo, hi int) {}
