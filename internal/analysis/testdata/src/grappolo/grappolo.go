// Package grappolo is a fixture stub of the public API root package.
package grappolo

func Version() string { return "fixture" }
