// Command demo is a fixture example that illegally reaches into the
// internal tree.
package main

import (
	"grappolo"
	"grappolo/internal/par" // want `imports internal package grappolo/internal/par`
)

func main() {
	_ = grappolo.Version()
	par.ForChunk(1, 1, 0, noop)
}

func noop(lo, hi int) {}
