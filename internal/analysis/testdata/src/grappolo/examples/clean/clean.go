// Command clean is a fixture example that sticks to the public API;
// nothing is flagged.
package main

import "grappolo"

func main() {
	_ = grappolo.Version()
}
