// Command grappolo is a fixture of the public CLI, which is held to the
// same public-API-only rule as the examples.
package main

import (
	"grappolo"
	"grappolo/internal/par" // want `imports internal package grappolo/internal/par`
)

func main() {
	_ = grappolo.Version()
	par.ForChunk(1, 1, 0, noop)
}

func noop(lo, hi int) {}
