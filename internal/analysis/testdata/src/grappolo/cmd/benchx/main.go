// Command benchx is a fixture of an internal tool (harness, bench
// tooling): such commands MAY import the internal tree, so nothing is
// flagged here.
package main

import "grappolo/internal/par"

func main() {
	par.ForChunk(1, 1, 0, noop)
}

func noop(lo, hi int) {}
