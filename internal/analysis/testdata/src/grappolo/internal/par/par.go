// Package par is a fixture stub of grappolo/internal/par: the ...Ctx
// helper signatures match the real package (that is all the capturebody
// and internalimport analyzers look at), the bodies are trivial
// single-shot loops.
package par

func ForChunk(n, p, grain int, body func(lo, hi int)) { body(0, n) }

func ForChunkCtx[C any](ctx C, n, p, grain int, body func(ctx C, lo, hi int)) {
	body(ctx, 0, n)
}

func ForChunkWorkerCtx[C any](ctx C, n, p, grain int, body func(ctx C, worker, lo, hi int)) {
	body(ctx, 0, 0, n)
}

func ForChunkPrefixCtx[C any](ctx C, prefix []int64, p int, body func(ctx C, worker, lo, hi int)) {
	body(ctx, 0, 0, len(prefix)-1)
}

func ForStaticCtx[C any](ctx C, n, p int, body func(ctx C, worker, lo, hi int)) {
	body(ctx, 0, 0, n)
}

func ForStagesCtx[C any](ctx C, stages int, count func(ctx C, stage int) int, p int, body func(ctx C, stage, worker, lo, hi int)) {
	for s := 0; s < stages; s++ {
		body(ctx, s, 0, 0, count(ctx, s))
	}
}

func SumFloat64Ctx[C any](ctx C, n, p int, f func(ctx C, i int) float64) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += f(ctx, i)
	}
	return s
}

func MaxInt64Ctx[C any](ctx C, n, p int, f func(ctx C, i int) int64) int64 {
	var m int64
	for i := 0; i < n; i++ {
		if v := f(ctx, i); v > m {
			m = v
		}
	}
	return m
}
