// Package typederr exercises the typed-error analyzer: sentinel errors are
// matched with errors.Is, never compared by identity, and wraps keep the
// chain with %w.
package typederr

import (
	"errors"
	"fmt"
)

// ErrOverloaded is this fixture's exported sentinel.
var ErrOverloaded = errors.New("typederr: overloaded")

// errInternal is unexported: identity comparison against package-private
// errors that are never wrapped is conventional and out of scope.
var errInternal = errors.New("typederr: internal")

type faultError struct{ msg string }

func (e *faultError) Error() string { return e.msg }

// Is implements the errors.Is hook; identity comparison HERE is the
// intended implementation technique and is exempt.
func (e *faultError) Is(target error) bool { return target == ErrOverloaded }

func badEqual(err error) bool {
	if err == ErrOverloaded { // want `errors\.Is\(err, ErrOverloaded\)`
		return true
	}
	return err != ErrOverloaded // want `errors\.Is\(err, ErrOverloaded\)`
}

func badSwitch(err error) int {
	switch err {
	case ErrOverloaded: // want `switch case compares against sentinel ErrOverloaded`
		return 1
	case nil:
		return 0
	}
	return 2
}

func badWrap(err error) error {
	return fmt.Errorf("serving failed: %v", err) // want `without %w`
}

func badWrapConcrete(e *faultError) error {
	return fmt.Errorf("engine: %s", e) // want `without %w`
}

func okWrap(err error) error {
	return fmt.Errorf("serving failed: %w", err)
}

func okNonError(n int) error {
	return fmt.Errorf("bad request count %d", n)
}

func ok(err error) bool {
	if errors.Is(err, ErrOverloaded) {
		return true
	}
	return err == errInternal || err == nil
}
