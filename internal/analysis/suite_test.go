package analysis_test

import (
	"path/filepath"
	"testing"

	"grappolo/internal/analysis"
	"grappolo/internal/analysis/anatest"
)

func TestCaptureBody(t *testing.T) {
	anatest.Run(t, "testdata", analysis.CaptureBody, "capturebody")
}

func TestInternalImport(t *testing.T) {
	anatest.Run(t, "testdata", analysis.InternalImport,
		"grappolo/examples/demo",
		"grappolo/examples/clean",
		"grappolo/cmd/grappolo",
		"grappolo/cmd/benchx",
	)
}

func TestAsmPair(t *testing.T) {
	anatest.Run(t, "testdata", analysis.AsmPair, "asmpair")
}

func TestTypedErr(t *testing.T) {
	anatest.Run(t, "testdata", analysis.TypedErr, "typederr")
}

func TestHotAlloc(t *testing.T) {
	anatest.Run(t, "testdata", analysis.HotAlloc, "hotalloc")
}

// TestRepoSuiteClean is the in-tree mirror of the blocking grappolovet CI
// step: the full suite over the whole module must report nothing, under the
// default tag set and under the two tag sets CI builds (faultinject arms
// the fault-injection probes, noasm swaps in the portable prefetch
// fallbacks). A finding here is a real invariant violation in the tree —
// fix the code, don't touch the analyzer.
func TestRepoSuiteClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, tags := range [][]string{nil, {"faultinject"}, {"noasm"}} {
		cfg := analysis.Config{Root: root, Module: "grappolo", Tags: tags}
		findings, err := analysis.Run(cfg, analysis.Suite(), nil)
		if err != nil {
			t.Fatalf("tags %v: %v", tags, err)
		}
		for _, f := range findings {
			t.Errorf("tags %v: %s", tags, f)
		}
	}
}

// TestSuiteNames pins the analyzer lineup: CI and docs reference these
// names, so renames must be deliberate.
func TestSuiteNames(t *testing.T) {
	want := []string{"capturebody", "internalimport", "asmpair", "typederr", "hotalloc"}
	suite := analysis.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("%s: missing Doc or Run", a.Name)
		}
	}
}
