package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// TypedErr mechanizes the PR 6 typed-error contract: ErrOverloaded,
// ErrEngineFault and ErrNilGraph are SENTINELS matched through errors.Is —
// the concrete values callers see are wrapper types (overloadError,
// EngineFaultError) whose Is methods claim the sentinel. Comparing with ==
// or != therefore works today for some paths and silently never matches on
// others; and fmt.Errorf wrapping without %w strips the sentinel so even
// errors.Is stops matching downstream. Both defects type-check and pass
// happy-path tests, which is exactly why they get an analyzer.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc: "sentinel errors must be matched with errors.Is and wrapped with %w\n\n" +
		"Flags ==/!= comparisons (and switch cases) against exported package sentinel\n" +
		"errors (package-level vars named Err*), and fmt.Errorf calls that are handed an\n" +
		"error but whose format verbs never wrap it with %w.",
	Run: runTypedErr,
}

func runTypedErr(pass *Pass) error {
	errorType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if inIsMethod(pass, stack) {
					return true // the canonical errors.Is hook compares by identity
				}
				for _, side := range []ast.Expr{x.X, x.Y} {
					if v := sentinelVar(pass, side, errorType); v != nil {
						pass.Reportf(x.Pos(),
							"comparing against sentinel %s with %s; use errors.Is(err, %s) — concrete wrapper errors match only through Is",
							v.Name(), x.Op, v.Name())
						break
					}
				}
			case *ast.SwitchStmt:
				// switch err { case ErrX: } compares with == too.
				if x.Tag == nil || inIsMethod(pass, stack) {
					return true
				}
				tagT := pass.TypesInfo.Types[x.Tag].Type
				if tagT == nil || !types.Identical(tagT, errorType) {
					return true
				}
				for _, stmt := range x.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if v := sentinelVar(pass, e, errorType); v != nil {
							pass.Reportf(e.Pos(),
								"switch case compares against sentinel %s with ==; use errors.Is(err, %s)",
								v.Name(), v.Name())
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, x, errorType)
			}
			return true
		})
	}
	return nil
}

// sentinelVar reports whether e denotes a package-level exported error
// variable named Err* declared in a grappolo package (or the package under
// analysis), returning it if so.
func sentinelVar(pass *Pass, e ast.Expr, errorType types.Type) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") || len(v.Name()) <= 3 {
		return nil
	}
	if !types.Identical(v.Type(), errorType) {
		return nil
	}
	// Only this module's sentinels are in scope: stdlib identities like
	// io.EOF are conventionally ==-comparable.
	path := v.Pkg().Path()
	return ifSentinelPkg(pass, path, v)
}

func ifSentinelPkg(pass *Pass, path string, v *types.Var) *types.Var {
	if path == pass.Pkg.Path() || path == "grappolo" || strings.HasPrefix(path, "grappolo/") ||
		strings.Contains(path, "/grappolo/") {
		return v
	}
	return nil
}

// inIsMethod reports whether the innermost enclosing function declaration is
// an `Is(error) bool` method — the one place identity comparison against a
// sentinel is the intended implementation technique.
func inIsMethod(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Recv == nil || fd.Name.Name != "Is" {
			return false
		}
		sig, ok := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
		if !ok {
			return false
		}
		errorType := types.Universe.Lookup("error").Type()
		return sig.Params().Len() == 1 &&
			types.Identical(sig.Params().At(0).Type(), errorType) &&
			sig.Results().Len() == 1 &&
			types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
	}
	return false
}

// checkErrorfWrap flags fmt.Errorf calls that receive an error argument but
// whose constant format string contains no %w verb: the wrap drops the
// chain, so errors.Is/As stop seeing the sentinel.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr, errorType types.Type) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.Types[arg].Type
		if t == nil {
			continue
		}
		if types.Identical(t, errorType) || (!types.IsInterface(t) && types.Implements(t, errorType.Underlying().(*types.Interface))) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats an error argument without %%w; the sentinel chain is lost to errors.Is — wrap with %%w (or use a non-error value deliberately)")
			return
		}
	}
}
