// Package anatest runs an analyzer over fixture packages and checks its
// diagnostics against // want comments, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest on the repository's own
// framework. A fixture tree lives under testdata/src using GOPATH-style
// layout: the package with import path "p/q" is the directory
// testdata/src/p/q, and fixture imports resolve within testdata/src first
// (so a fixture can import a stub copy of grappolo/internal/par), then the
// standard library.
//
// Expectations are written on the line the diagnostic must land on:
//
//	x := par.ForChunkCtx(...) // want `captures`
//
// Each quoted string (Go string or backquote literal) is a regular
// expression; one diagnostic must match each expectation on that line, and
// every diagnostic must be expected. Analyzer neutering therefore fails the
// test in both directions: missing findings leave unmatched wants, stray
// findings have no want to match.
package anatest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"grappolo/internal/analysis"
)

// want is one expectation: a position (file base name + line) and a regexp.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads each fixture package below dir/src, applies the analyzer, and
// reports mismatches between diagnostics and // want comments through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	cfg := analysis.Config{Root: filepath.Join(dir, "src")}
	loader := analysis.NewLoader(cfg)
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		findings, err := analysis.RunPackage(loader.Fset, pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		wants, err := collectWants(loader, pkg)
		if err != nil {
			t.Fatalf("parsing want comments in %s: %v", path, err)
		}
		match(t, path, findings, wants)
	}
}

// collectWants scans every fixture file (selected and tag-excluded alike)
// for // want comments.
func collectWants(l *analysis.Loader, pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		ws, err := wantsInFile(l.Fset, f.Pos())
		if err != nil {
			return nil, err
		}
		wants = append(wants, ws...)
	}
	for _, f := range pkg.Ignored {
		ws, err := wantsInFile(l.Fset, f.Pos())
		if err != nil {
			return nil, err
		}
		wants = append(wants, ws...)
	}
	return wants, nil
}

// wantRe matches the expectation tail of a comment: one or more quoted
// regexps after the word "want".
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wantsInFile re-scans one file's source for // want comments. Scanning the
// raw text (rather than the AST's comment lists) keeps expectations usable
// on lines inside general declarations where comment attachment is fiddly.
func wantsInFile(fset *token.FileSet, pos token.Pos) ([]*want, error) {
	tf := fset.File(pos)
	if tf == nil {
		return nil, fmt.Errorf("no token.File for pos %v", pos)
	}
	src, err := os.ReadFile(tf.Name())
	if err != nil {
		return nil, err
	}
	var wants []*want
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			lit, remain, err := cutStringLit(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want expectation: %w", tf.Name(), i+1, err)
			}
			re, err := regexp.Compile(lit)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", tf.Name(), i+1, lit, err)
			}
			wants = append(wants, &want{file: filepath.Base(tf.Name()), line: i + 1, re: re, raw: lit})
			rest = strings.TrimSpace(remain)
		}
	}
	return wants, nil
}

// cutStringLit splits one leading Go string literal (quoted or backquoted)
// off s, returning its value and the remainder.
func cutStringLit(s string) (string, string, error) {
	var sc scanner.Scanner
	fset := token.NewFileSet()
	f := fset.AddFile("want", -1, len(s))
	sc.Init(f, []byte(s), nil, 0)
	_, tok, lit := sc.Scan()
	if tok != token.STRING {
		return "", "", fmt.Errorf("expected string literal, found %q", s)
	}
	val, err := strconv.Unquote(lit)
	if err != nil {
		return "", "", err
	}
	return val, s[len(lit):], nil
}

// match reconciles diagnostics against expectations.
func match(t *testing.T, pkgPath string, findings []analysis.Finding, wants []*want) {
	t.Helper()
	for _, f := range findings {
		base := filepath.Base(f.Position.Filename)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != base || w.line != f.Position.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", pkgPath, base, f.Position.Line, f.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", pkgPath, w.file, w.line, w.raw)
		}
	}
}
