package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CaptureBody mechanizes the PR 3 zero-alloc contract on the par package's
// explicit-context loop helpers: the whole point of the ...Ctx forms is that
// the loop body is a CAPTURELESS function with state threaded through the
// ctx parameter. A capturing closure (or a bound method value) passed as the
// body defeats that — the body parameter escapes into the worker goroutines,
// so the closure is heap-allocated at every call, silently reintroducing the
// per-call allocations the Engine refactor removed. The allocation gates
// only catch this after the fact, on the specific code paths they cover;
// this analyzer catches it at the call site, on every path.
var CaptureBody = &Analyzer{
	Name: "capturebody",
	Doc: "flag capturing closures passed as bodies of par.ForChunkCtx-family helpers\n\n" +
		"Function-typed arguments of ForChunkCtx, ForChunkWorkerCtx, ForChunkPrefixCtx,\n" +
		"ForStaticCtx, ForStagesCtx, SumFloat64Ctx and MaxInt64Ctx must be package-level\n" +
		"functions or captureless literals; anything that captures variables or binds a\n" +
		"receiver heap-allocates on every call (the body escapes into worker goroutines),\n" +
		"violating the zero-alloc warm-run contract.",
	Run: runCaptureBody,
}

// ctxHelpers are the par functions whose func-typed arguments must be
// captureless. The map value is unused; membership is the contract.
var ctxHelpers = map[string]bool{
	"ForChunkCtx":       true,
	"ForChunkWorkerCtx": true,
	"ForChunkPrefixCtx": true,
	"ForStaticCtx":      true,
	"ForStagesCtx":      true,
	"SumFloat64Ctx":     true,
	"MaxInt64Ctx":       true,
}

// parPackage reports whether path is the repository's par package (the real
// module path, or the fixture copy anatest loads).
func parPackage(path string) bool {
	return path == "internal/par" || strings.HasSuffix(path, "/internal/par")
}

func runCaptureBody(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil || callee.Pkg() == nil ||
				!parPackage(callee.Pkg().Path()) || !ctxHelpers[callee.Name()] {
				return true
			}
			for _, arg := range call.Args {
				t := pass.TypesInfo.Types[arg].Type
				if t == nil {
					continue
				}
				if _, isFunc := t.Underlying().(*types.Signature); !isFunc {
					continue
				}
				checkBodyArg(pass, callee.Name(), arg)
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves a call's static callee, seeing through selectors
// (par.ForChunkCtx) and generic instantiation.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	if idx, ok := fun.(*ast.IndexExpr); ok { // explicit instantiation f[T](...)
		fun = idx.X
	}
	var id *ast.Ident
	switch e := fun.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkBodyArg validates one func-typed argument of a ...Ctx helper.
func checkBodyArg(pass *Pass, helper string, arg ast.Expr) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		if caps := capturedVars(pass, e); len(caps) > 0 {
			pass.Reportf(arg.Pos(),
				"func literal passed to par.%s captures %s; the body must be a captureless package-level function (state goes through the ctx parameter), or the closure heap-allocates on every call",
				helper, strings.Join(caps, ", "))
		}
	case *ast.SelectorExpr:
		// A method VALUE (st.decide) binds its receiver: an allocation per
		// evaluation, same pathology as a capturing closure. A package
		// selector (pkg.Fn) is fine.
		if sel := pass.TypesInfo.Selections[e]; sel != nil && sel.Kind() == types.MethodVal {
			pass.Reportf(arg.Pos(),
				"method value %s passed to par.%s binds its receiver (allocates per call); pass a package-level function taking the receiver through the ctx parameter",
				exprString(e), helper)
		}
	}
}

// capturedVars returns the names of variables a func literal captures from
// an enclosing function scope, sorted and deduplicated. References to
// package-level objects and to the literal's own parameters/locals are not
// captures.
func capturedVars(pass *Pass, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		scope := v.Parent()
		if scope == nil || scope == types.Universe || scope == pass.Pkg.Scope() {
			return true
		}
		// Declared inside the literal (params or locals) => not a capture.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}
