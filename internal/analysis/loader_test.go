package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func TestFileSelected(t *testing.T) {
	cases := []struct {
		name string
		src  string
		cfg  Config
		want bool
	}{
		{"unconstrained", "package p\n", Config{GOOS: "linux", GOARCH: "amd64"}, true},
		{"tag off", "//go:build faultinject\n\npackage p\n", Config{GOOS: "linux", GOARCH: "amd64"}, false},
		{"tag on", "//go:build faultinject\n\npackage p\n", Config{GOOS: "linux", GOARCH: "amd64", Tags: []string{"faultinject"}}, true},
		{"negated tag", "//go:build !noasm\n\npackage p\n", Config{GOOS: "linux", GOARCH: "amd64", Tags: []string{"noasm"}}, false},
		{"arch expr", "//go:build (amd64 || arm64) && !noasm\n\npackage p\n", Config{GOOS: "linux", GOARCH: "amd64"}, true},
		{"arch expr other arch", "//go:build (amd64 || arm64) && !noasm\n\npackage p\n", Config{GOOS: "linux", GOARCH: "riscv64"}, false},
		{"fallback expr under noasm", "//go:build noasm || !(amd64 || arm64)\n\npackage p\n", Config{GOOS: "linux", GOARCH: "amd64", Tags: []string{"noasm"}}, true},
		{"os tag", "//go:build linux\n\npackage p\n", Config{GOOS: "linux", GOARCH: "amd64"}, true},
		{"unix alias", "//go:build unix\n\npackage p\n", Config{GOOS: "linux", GOARCH: "amd64"}, true},
		{"go version", "//go:build go1.21\n\npackage p\n", Config{GOOS: "linux", GOARCH: "amd64"}, true},
		{"future go version", "//go:build go1.99\n\npackage p\n", Config{GOOS: "linux", GOARCH: "amd64"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLoader(tc.cfg)
			f, err := parser.ParseFile(token.NewFileSet(), "x.go", tc.src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatal(err)
			}
			if got := l.fileSelected("x.go", f); got != tc.want {
				t.Errorf("fileSelected = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestFilenameSelected(t *testing.T) {
	l := NewLoader(Config{GOOS: "linux", GOARCH: "amd64"})
	cases := map[string]bool{
		"par.go":             true,
		"prefetch_amd64.go":  true,
		"prefetch_arm64.go":  false,
		"x_linux.go":         true,
		"x_windows.go":       false,
		"x_linux_amd64.go":   true,
		"x_windows_amd64.go": false,
		"x_linux_arm64.go":   false,
		"not_an_arch.go":     true,
		"snake_case_name.go": true,
	}
	for name, want := range cases {
		if got := l.filenameSelected(name); got != want {
			t.Errorf("filenameSelected(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestMatchPatterns(t *testing.T) {
	cfg := Config{Module: "grappolo"}
	all := []string{
		"grappolo",
		"grappolo/cmd/grappolovet",
		"grappolo/internal/core",
		"grappolo/internal/par",
	}
	cases := []struct {
		patterns []string
		want     int
	}{
		{nil, 4},
		{[]string{"./..."}, 4},
		{[]string{"./internal/..."}, 2},
		{[]string{"./internal/par"}, 1},
		{[]string{"./internal/par", "./cmd/grappolovet"}, 2},
	}
	for _, tc := range cases {
		got, err := matchPatterns(cfg, all, tc.patterns)
		if err != nil {
			t.Fatalf("%v: %v", tc.patterns, err)
		}
		if len(got) != tc.want {
			t.Errorf("matchPatterns(%v) = %v, want %d packages", tc.patterns, got, tc.want)
		}
	}
	if _, err := matchPatterns(cfg, all, []string{"./nonexistent/..."}); err == nil {
		t.Error("matchPatterns on a miss: want error, got nil")
	}
}
