package analysis

import (
	"strconv"
	"strings"
)

// InternalImport mechanizes the public-API migration guard from PR 4:
// examples/ exists to demonstrate the public grappolo surface and
// cmd/grappolo is the public CLI, so neither may reach into
// grappolo/internal/... — an internal import in either would silently turn
// documentation into a dependency on unstable internals. This replaces the
// CI grep (which only covered examples/ and only saw literal strings) with
// a syntax-level check over the same packages plus cmd/grappolo.
var InternalImport = &Analyzer{
	Name: "internalimport",
	Doc: "forbid grappolo/internal imports from examples/ and cmd/grappolo\n\n" +
		"Packages under examples/ and the public CLI must compile against the public\n" +
		"API only; an internal import there is a doc-rot and stability hazard.",
	Run: runInternalImport,
}

// guardedPackage reports whether the package at import path pkg is one the
// public-API guard covers: anything under an examples/ directory, and the
// public CLI cmd/grappolo (including any subpackages it grows). Matching on
// path SEGMENTS keeps cmd/grappolovet and friends out of scope.
func guardedPackage(pkg string) bool {
	segs := strings.Split(pkg, "/")
	for i, s := range segs {
		if s == "examples" && i+1 < len(segs) {
			return true
		}
		if s == "cmd" && i+1 < len(segs) && segs[i+1] == "grappolo" {
			return true
		}
	}
	return false
}

// internalImportPath reports whether path crosses into grappolo's internal
// tree.
func internalImportPath(path string) bool {
	if path == "grappolo/internal" || strings.HasPrefix(path, "grappolo/internal/") {
		return true
	}
	// Fixture layouts may use a different module name; any .../internal/...
	// under a grappolo module root counts.
	return strings.Contains(path, "grappolo/internal/")
}

func runInternalImport(pass *Pass) error {
	if !guardedPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if internalImportPath(path) {
				pass.Reportf(imp.Pos(),
					"%s imports internal package %s; examples and cmd/grappolo must use the public grappolo API",
					pass.Pkg.Path(), path)
			}
		}
	}
	// The guard extends to tag-excluded files: a noasm- or faultinject-only
	// file in an example must not smuggle an internal import either.
	for _, f := range pass.IgnoredFiles {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if internalImportPath(path) {
				pass.Reportf(imp.Pos(),
					"%s imports internal package %s (in a build-tag-excluded file); examples and cmd/grappolo must use the public grappolo API",
					pass.Pkg.Path(), path)
			}
		}
	}
	return nil
}
