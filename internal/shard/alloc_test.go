package shard

import (
	"context"
	"sync"
	"testing"

	"grappolo/internal/core"
	"grappolo/internal/generate"
)

// cachedEngines recycles engines across Acquire calls, the warm-source
// shape the public pool-backed tier provides: after the first run every
// engine's scratch is grown, so later runs exercise the steady state.
type cachedEngines struct {
	opts core.Options
	mu   sync.Mutex
	free []*core.Engine
}

func (c *cachedEngines) Acquire(ctx context.Context, n int) (*core.Engine, func(ok bool), error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	var e *core.Engine
	if k := len(c.free); k > 0 {
		e = c.free[k-1]
		c.free = c.free[:k-1]
	} else {
		e = core.NewEngine(c.opts)
	}
	c.mu.Unlock()
	return e, func(ok bool) {
		if ok {
			c.mu.Lock()
			c.free = append(c.free, e)
			c.mu.Unlock()
		}
	}, nil
}

func TestShardedRunAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	// A sharded run allocates per call by design (subgraphs, label buffers,
	// the coarse graph), but with warm recycled engines the ALLOCATION COUNT
	// must stay a function of shards × rounds only, never of graph size —
	// the regression this pins is an accidental per-vertex or per-edge
	// allocation sneaking into the round loop.
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	src := &cachedEngines{opts: core.Options{Workers: 1}}
	opts := Options{Shards: 4, Rounds: 2, Workers: 1}
	ctx := context.Background()
	if _, err := Run(ctx, g, opts, src); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Run(ctx, g, opts, src); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: a fixed overhead per shard per round (seed compression,
	// engine handoff, goroutine) plus the per-run fixed set (partition,
	// subgraphs, label arrays, coarsen, merge). 60×(shards×(rounds+1))+200
	// is ~4× the measured count — slack for runtime noise, failing loudly
	// on any O(n) regression (the Small RGG has >10k vertices).
	limit := float64(60*opts.Shards*(opts.Rounds+1) + 200)
	if allocs > limit {
		t.Errorf("warm sharded run allocates %v times, want <= %v", allocs, limit)
	}
}
