package shard

import (
	"context"
	"math"
	"sort"
	"testing"

	"grappolo/internal/core"
	"grappolo/internal/distributed"
	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/seq"
)

func testSrc(workers int) Fresh {
	return Fresh{Opts: core.Options{Workers: workers}}
}

// checkPartition asserts the structural invariants every mode must satisfy.
func checkPartition(t *testing.T, g *graph.Graph, shards int, mode PartitionMode) {
	t.Helper()
	part, verts, err := partition(g, shards, mode)
	if err != nil {
		t.Fatalf("%v: %v", mode, err)
	}
	if len(part) != g.N() {
		t.Fatalf("%v: part length %d != n %d", mode, len(part), g.N())
	}
	seen := 0
	for s, vs := range verts {
		for i, v := range vs {
			if part[v] != int32(s) {
				t.Fatalf("%v: vertex %d listed under shard %d but part says %d", mode, v, s, part[v])
			}
			if i > 0 && vs[i-1] >= v {
				t.Fatalf("%v: shard %d vertex list not ascending at %d", mode, s, i)
			}
		}
		seen += len(vs)
	}
	if seen != g.N() {
		t.Fatalf("%v: shard lists cover %d of %d vertices", mode, seen, g.N())
	}
}

func TestPartitionModes(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 2)
	for _, mode := range []PartitionMode{ModeBlock, ModeArcs, ModeComponents} {
		for _, shards := range []int{1, 2, 5, 16} {
			checkPartition(t, g, shards, mode)
		}
	}
	if _, _, err := partition(g, 2, PartitionMode(99)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestBlockOfMatchesRanges(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7} {
		for _, n := range []int{7, 10, 64, 101} {
			if shards > n {
				continue
			}
			for v := 0; v < n; v++ {
				p := blockOf(v, n, shards)
				if lo, hi := p*n/shards, (p+1)*n/shards; v < lo || v >= hi {
					t.Fatalf("blockOf(%d, n=%d, shards=%d)=%d but range is [%d,%d)", v, n, shards, p, lo, hi)
				}
			}
		}
	}
}

func TestArcBoundsBalanced(t *testing.T) {
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 2)
	shards := 6
	bounds := arcBounds(g, shards)
	if bounds[0] != 0 || bounds[shards] != int64(g.N()) {
		t.Fatalf("bounds do not span the vertex range: %v", bounds)
	}
	prefix := g.ArcOffsets()
	total := prefix[g.N()]
	ideal := float64(total) / float64(shards)
	for s := 0; s < shards; s++ {
		if bounds[s+1] < bounds[s] {
			t.Fatalf("bounds not monotone: %v", bounds)
		}
		load := prefix[bounds[s+1]] - prefix[bounds[s]]
		// Arc-balanced ranges on a bounded-degree graph must stay near ideal.
		if f := float64(load); f > 1.5*ideal {
			t.Fatalf("shard %d load %d vs ideal %.0f", s, load, ideal)
		}
	}
}

func TestShardedSingleShardMatchesEngine(t *testing.T) {
	g := generate.MustGenerate(generate.MG1, generate.Small, 0, 2)
	o := core.Options{Workers: 2}
	want := core.Run(g, o)
	res, err := Run(context.Background(), g, Options{Shards: 1}, Fresh{Opts: o})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity != want.Modularity || res.NumCommunities != want.NumCommunities {
		t.Fatalf("single-shard run diverged: Q=%v/%v nc=%d/%d",
			res.Modularity, want.Modularity, res.NumCommunities, want.NumCommunities)
	}
	if res.CutEdges != 0 || res.Shards != 1 {
		t.Fatalf("single shard: cut=%d shards=%d", res.CutEdges, res.Shards)
	}
}

func TestShardedRecoversQualityOnScrambledIDs(t *testing.T) {
	// The promotion's reason to exist: on a graph whose vertex ids are
	// scrambled (so block ranges cut communities adversarially), halo edges
	// plus ghost-label exchange must close most of the gap to the
	// shared-memory engine — and beat the drop-cut-edges emulation.
	g, _ := generate.SBM(generate.SBMConfig{
		Communities: []int{90, 90, 90, 90, 90, 90}, IntraDegree: 14, CrossFrac: 0.06,
	}, 7, 2)
	scrambled, err := graph.Relabel(g, graph.RandomPermutation(g.N(), 11))
	if err != nil {
		t.Fatal(err)
	}
	o := core.Options{Workers: 2}
	shared := core.Run(scrambled, o)
	res, err := Run(context.Background(), scrambled, Options{Shards: 4, Rounds: 2}, Fresh{Opts: o})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutEdges == 0 {
		t.Fatal("scrambled block partition should produce cut edges")
	}
	if q := seq.Modularity(scrambled, res.Membership, 1); math.Abs(q-res.Modularity) > 1e-9 {
		t.Fatalf("reported Q=%v but membership scores %v", res.Modularity, q)
	}
	if res.Modularity < shared.Modularity*0.98 {
		t.Fatalf("sharded Q=%.4f below 98%% of shared-memory Q=%.4f", res.Modularity, shared.Modularity)
	}
	emu, err := distributed.Run(scrambled, distributed.Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity <= emu.Modularity {
		t.Fatalf("sharded Q=%.4f does not beat drop-cut-edges emulation Q=%.4f", res.Modularity, emu.Modularity)
	}
	t.Logf("shared=%.4f sharded=%.4f emulation=%.4f cut=%d localIters=%d",
		shared.Modularity, res.Modularity, emu.Modularity, res.CutEdges, res.LocalIterations)
}

func TestShardedDeterministic(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 3, 2)
	opts := Options{Shards: 5, Rounds: 2, Mode: ModeArcs}
	var ref *Result
	for trial := 0; trial < 3; trial++ {
		res, err := Run(context.Background(), g, opts, testSrc(3))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Modularity != ref.Modularity || res.NumCommunities != ref.NumCommunities {
			t.Fatalf("trial %d diverged: Q=%v/%v", trial, res.Modularity, ref.Modularity)
		}
		for v := range res.Membership {
			if res.Membership[v] != ref.Membership[v] {
				t.Fatalf("trial %d: membership diverges at vertex %d", trial, v)
			}
		}
	}
}

func TestShardedComponentsModeZeroCut(t *testing.T) {
	// Disjoint cliques: ModeComponents must never split a component, so the
	// partition has zero cut edges and local phases see whole communities.
	b := graph.NewBuilder(20)
	for base := int32(0); base < 20; base += 5 {
		for i := int32(0); i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(base+i, base+j, 1)
			}
		}
	}
	g := b.Build(1)
	res, err := Run(context.Background(), g, Options{Shards: 3, Mode: ModeComponents}, testSrc(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CutEdges != 0 {
		t.Fatalf("components mode cut %d edges", res.CutEdges)
	}
	if res.NumCommunities != 4 {
		t.Fatalf("%d communities, want 4 cliques", res.NumCommunities)
	}
}

func TestShardedEmptyAndTiny(t *testing.T) {
	empty, err := Run(context.Background(), graph.NewBuilder(0).Build(1), Options{}, testSrc(1))
	if err != nil || empty.NumCommunities != 0 || len(empty.Membership) != 0 {
		t.Fatalf("empty: %+v %v", empty, err)
	}
	single := graph.NewBuilder(1).Build(1)
	res, err := Run(context.Background(), single, Options{Shards: 16}, testSrc(1))
	if err != nil || res.NumCommunities != 1 {
		t.Fatalf("single: %+v %v", res, err)
	}
	if res.Shards != 1 {
		t.Fatalf("shards not clamped: %d", res.Shards)
	}
}

func TestShardedValidation(t *testing.T) {
	g := graph.NewBuilder(2).Build(1)
	if _, err := Run(context.Background(), g, Options{}, nil); err == nil {
		t.Fatal("nil Engines source accepted")
	}
	if _, err := Run(context.Background(), g, Options{Rounds: -1}, testSrc(1)); err == nil {
		t.Fatal("negative Rounds accepted")
	}
}

func TestShardedHonorsCancellation(t *testing.T) {
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, g, Options{Shards: 4}, testSrc(1)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestShardedExchangeHelpsOrHolds(t *testing.T) {
	// More exchange rounds must not hurt: each round re-seeds from a
	// configuration whose modularity the sweep can only maintain or improve,
	// and the merge runs on a finer-or-equal coarsening.
	g, _ := generate.SBM(generate.SBMConfig{
		Communities: []int{60, 60, 60, 60}, IntraDegree: 10, CrossFrac: 0.08,
	}, 5, 2)
	scrambled, err := graph.Relabel(g, graph.RandomPermutation(g.N(), 2))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, rounds := range []int{0, 2, 4} {
		res, err := Run(context.Background(), scrambled, Options{Shards: 6, Rounds: rounds}, testSrc(2))
		if err != nil {
			t.Fatal(err)
		}
		if res.Modularity < prev-0.01 {
			t.Fatalf("rounds=%d regressed: Q=%.4f after %.4f", rounds, res.Modularity, prev)
		}
		prev = res.Modularity
	}
}

func TestRenumberDense(t *testing.T) {
	dense, num := renumber([]int32{5, 5, 2, 4, 2, 0})
	want := []int32{0, 0, 1, 2, 1, 3}
	if num != 4 {
		t.Fatalf("num=%d want 4", num)
	}
	for i := range want {
		if dense[i] != want[i] {
			t.Fatalf("dense=%v want %v", dense, want)
		}
	}
}

func TestSortSearchHelpers(t *testing.T) {
	v := []int32{4, 1, 4, 9, 1, 0}
	sortInt32(v)
	if !sort.SliceIsSorted(v, func(a, b int) bool { return v[a] < v[b] }) {
		t.Fatalf("not sorted: %v", v)
	}
	u := uniqueInt32(v)
	want := []int32{0, 1, 4, 9}
	if len(u) != len(want) {
		t.Fatalf("unique=%v want %v", u, want)
	}
	for i, x := range want {
		if u[i] != x {
			t.Fatalf("unique=%v want %v", u, want)
		}
		if got := searchInt32(u, x); got != i {
			t.Fatalf("searchInt32(%d)=%d want %d", x, got, i)
		}
	}
}

func TestShardedLayoutEquivalence(t *testing.T) {
	// The arc layout is a pure rearrangement, so the whole sharded pipeline —
	// ghost extraction, seeded sweeps, exchange rounds, master merge — must
	// produce bit-identical output whether the input and the engines' coarse
	// graphs are split or interleaved.
	opts := Options{Shards: 4, Rounds: 2, Mode: ModeArcs}
	run := func(l core.ArcLayout) *Result {
		g := generate.MustGenerate(generate.CNR, generate.Small, 3, 2)
		if l == core.ArcLayoutInterleaved {
			g.SetLayout(graph.LayoutInterleaved, 2)
		}
		res, err := Run(context.Background(), g, opts, Fresh{Opts: core.Options{Workers: 2, ArcLayout: l}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(core.ArcLayoutSplit), run(core.ArcLayoutInterleaved)
	if a.Modularity != b.Modularity || a.NumCommunities != b.NumCommunities {
		t.Fatalf("layouts diverge: split nc=%d Q=%v vs interleaved nc=%d Q=%v",
			a.NumCommunities, a.Modularity, b.NumCommunities, b.Modularity)
	}
	for v := range a.Membership {
		if a.Membership[v] != b.Membership[v] {
			t.Fatalf("membership diverges at vertex %d", v)
		}
	}
}
