//go:build race

package shard

// raceEnabled gates allocation-regression tests: the race detector's
// instrumentation allocates, so allocation-bound assertions only hold
// without it.
const raceEnabled = true
