package shard

import (
	"fmt"
	"sort"

	"grappolo/internal/graph"
)

// PartitionMode selects how vertices are assigned to shards.
type PartitionMode int

const (
	// ModeBlock splits vertex ids into contiguous ranges of even VERTEX
	// count — the simplest static partition (and the one the distributed
	// emulation uses). Range p is [p·n/shards, (p+1)·n/shards).
	ModeBlock PartitionMode = iota
	// ModeArcs splits vertex ids into contiguous ranges of even ARC count
	// (boundaries found on the CSR offset prefix), so a few hub-heavy id
	// ranges cannot overload one shard the way even vertex counts let them.
	ModeArcs
	// ModeComponents groups whole connected components
	// (graph.ConnectedComponents) and packs them onto shards
	// largest-arc-count-first onto the lightest shard, so no community is
	// ever split across shards when the graph is disconnected. A component
	// larger than the ideal shard load still lands on one shard whole —
	// this mode trades balance for zero cut edges between components.
	ModeComponents
)

// String names the mode for logs and errors.
func (m PartitionMode) String() string {
	switch m {
	case ModeBlock:
		return "block"
	case ModeArcs:
		return "arcs"
	case ModeComponents:
		return "components"
	}
	return fmt.Sprintf("PartitionMode(%d)", int(m))
}

// partition assigns every vertex of g to one of shards shards per mode,
// returning the per-vertex shard ids and the per-shard vertex lists
// (ascending within each shard). shards must already be clamped to [1, n].
func partition(g *graph.Graph, shards int, mode PartitionMode) ([]int32, [][]int32, error) {
	n := g.N()
	part := make([]int32, n)
	switch mode {
	case ModeBlock:
		for v := 0; v < n; v++ {
			part[v] = int32(blockOf(v, n, shards))
		}
	case ModeArcs:
		bounds := arcBounds(g, shards)
		s := 0
		for v := 0; v < n; v++ {
			for int64(v) >= bounds[s+1] {
				s++
			}
			part[v] = int32(s)
		}
	case ModeComponents:
		label, count := graph.ConnectedComponents(g)
		// Arc weight per component, then LPT: heaviest component first onto
		// the currently lightest shard (ties to the lower shard id, so the
		// packing is deterministic).
		arcs := make([]int64, count)
		for v := 0; v < n; v++ {
			arcs[label[v]] += int64(g.OutDegree(v)) + 1 // +1 counts isolated vertices as load
		}
		order := make([]int, count)
		for c := range order {
			order[c] = c
		}
		sort.Slice(order, func(a, b int) bool {
			ca, cb := order[a], order[b]
			if arcs[ca] != arcs[cb] {
				return arcs[ca] > arcs[cb]
			}
			return ca < cb
		})
		load := make([]int64, shards)
		compShard := make([]int32, count)
		for _, c := range order {
			best := 0
			for s := 1; s < shards; s++ {
				if load[s] < load[best] {
					best = s
				}
			}
			compShard[c] = int32(best)
			load[best] += arcs[c]
		}
		for v := 0; v < n; v++ {
			part[v] = compShard[label[v]]
		}
	default:
		return nil, nil, fmt.Errorf("shard: unknown partition mode %d", int(mode))
	}

	sizes := make([]int, shards)
	for _, s := range part {
		sizes[s]++
	}
	verts := make([][]int32, shards)
	for s := range verts {
		verts[s] = make([]int32, 0, sizes[s])
	}
	for v := 0; v < n; v++ {
		s := part[v]
		verts[s] = append(verts[s], int32(v))
	}
	return part, verts, nil
}

// blockOf computes the owning block-partition range of v in O(1): range p is
// [⌊p·n/shards⌋, ⌊(p+1)·n/shards⌋), so p = ⌊((v+1)·shards − 1) / n⌋.
func blockOf(v, n, shards int) int {
	return ((v+1)*shards - 1) / n
}

// arcBounds computes contiguous range boundaries balanced by cumulative arc
// count: bounds[s] is the first vertex of shard s (bounds has shards+1
// entries). Zero-degree runs collapse onto one boundary, so trailing shards
// may be empty on pathological inputs.
func arcBounds(g *graph.Graph, shards int) []int64 {
	n := g.N()
	prefix := g.ArcOffsets()
	total := prefix[n]
	bounds := make([]int64, shards+1)
	bounds[shards] = int64(n)
	for s := 1; s < shards; s++ {
		target := int64(s) * total / int64(shards)
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if prefix[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bounds[s] = int64(lo)
	}
	// Boundaries must be monotone even when many targets collapse onto the
	// same vertex (heavy hubs): enforce non-decreasing order.
	for s := 1; s <= shards; s++ {
		if bounds[s] < bounds[s-1] {
			bounds[s] = bounds[s-1]
		}
	}
	return bounds
}
