// Package shard implements a sharded parallel Louvain with ghost-label
// exchange — the scale-out promotion of the drop-cut-edges emulation in
// internal/distributed (the paper's §7 contrast point, its ref. [25]).
//
// The pipeline:
//
//  1. Partition the vertex set into shards (block ranges, arc-balanced
//     ranges, or whole connected components — see PartitionMode).
//  2. Extract one subgraph per shard with graph.GhostSubgraph: the shard's
//     own vertices plus one frozen GHOST per external neighbor, every cut
//     edge kept as a local–ghost halo edge instead of dropped.
//  3. Run synchronized rounds of local moves: each shard sweeps its own
//     vertices with core.Engine.SweepSeeded — membership seeded from the
//     current global labels, ghosts pinned to their owners' labels — then
//     all shards exchange boundary labels at a barrier and re-seed. A
//     local vertex may adopt a ghost's label, forming cross-shard
//     communities the emulation structurally cannot find.
//  4. Merge at the master: coarsen the full graph by the exchanged labels
//     (cut edges now fully counted) and re-cluster the coarse graph with a
//     complete engine run.
//
// Each shard's sweep is deterministic for any worker count, shards write
// disjoint label ranges between barriers, and the merge run is a normal
// deterministic engine run, so the whole pipeline is deterministic for a
// fixed input and configuration (engines configured Async excepted).
package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"grappolo/internal/core"
	"grappolo/internal/graph"
	"grappolo/internal/par"
	"grappolo/internal/seq"
)

// Options configure a sharded run. The per-shard sweep and master merge
// engines come from the Engines source and carry their own core.Options
// (workers, thresholds, resolution, coloring for the merge run).
type Options struct {
	// Shards is the number of partitions. It is clamped to [1, n]; 1 runs a
	// single full engine (no sharding). <= 0 defaults to 4.
	Shards int
	// Rounds is the number of ghost-label EXCHANGE rounds run after the
	// first local round: every shard always sweeps once, then Rounds more
	// times with ghost labels refreshed from the other shards at a barrier.
	// 0 means no exchange (halo edges still pull, but boundary labels stay
	// singletons). Negative is an error.
	Rounds int
	// Mode selects the partitioning strategy.
	Mode PartitionMode
	// Workers bounds the cross-shard helper parallelism (partitioning, cut
	// counting, label folding). <= 0 selects all CPUs. Engine-internal
	// parallelism is the engines' own Workers setting.
	Workers int
}

// Engines hands out clustering engines — the seam through which the public
// layer serves shard sweeps and the master merge from a grappolo.Pool. n is
// the vertex count of the graph the engine is about to see (the pool's size
// class). The release function must be called exactly once; ok=false marks
// the engine as possibly corrupted (its run panicked) so the source can
// quarantine it instead of recycling it.
type Engines interface {
	Acquire(ctx context.Context, n int) (eng *core.Engine, release func(ok bool), err error)
}

// Fresh is the trivial Engines source: a new engine per Acquire, dropped on
// release. It is the standalone/test source; serving paths use a pool.
type Fresh struct{ Opts core.Options }

// Acquire builds a fresh engine.
func (f Fresh) Acquire(ctx context.Context, n int) (*core.Engine, func(ok bool), error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return core.NewEngine(f.Opts), func(bool) {}, nil
}

// Result is the output of a sharded run.
type Result struct {
	// Membership assigns every original vertex a dense community id.
	Membership []int32
	// NumCommunities is the number of distinct ids in Membership.
	NumCommunities int
	// Modularity of the final partitioning on the input graph.
	Modularity float64
	// Shards and Rounds echo the effective (clamped) configuration.
	Shards int
	Rounds int
	// CutEdges is the number of cross-shard edges. Unlike the distributed
	// emulation these are KEPT as halo edges during the local rounds — the
	// count measures partition quality, not discarded information.
	CutEdges int64
	// LocalIterations sums the sweep iterations of every shard across every
	// round; MergeIterations counts the master run's iterations.
	LocalIterations int
	MergeIterations int
	// Timings of the pipeline stages. LocalTime is the wall time of the
	// slowest shard summed across rounds (the makespan of each round).
	PartitionTime time.Duration
	LocalTime     time.Duration
	MergeTime     time.Duration
}

// shardState is one shard's working set, reused across exchange rounds.
type shardState struct {
	verts  []int32      // owned original vertex ids, ascending
	sub    *graph.Graph // ghost subgraph: locals [0,len(verts)), ghosts after
	ghosts []int32      // original ids of the ghost suffix
	seed   []int32      // per-round local seed labels (dense in back)
	out    []int32      // per-round sweep output
	glob   []int32      // per-round global label of every sub vertex
	back   []int32      // sorted unique global labels; local label t ↔ back[t]
	iters  int          // sweep iterations accumulated across rounds
}

// Run executes the sharded pipeline on g. Engines for the per-shard sweeps
// and the master merge are checked out of src per use, so a bounded pool
// source serializes shards once they exceed its capacity instead of
// over-subscribing memory.
func Run(ctx context.Context, g *graph.Graph, opts Options, src Engines) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("shard: nil Engines source")
	}
	if opts.Rounds < 0 {
		return nil, fmt.Errorf("shard: negative Rounds %d", opts.Rounds)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.N()
	shards := opts.Shards
	if shards <= 0 {
		shards = 4
	}
	if shards > n {
		shards = n
	}
	res := &Result{Membership: make([]int32, n), Shards: shards, Rounds: opts.Rounds}
	if n == 0 {
		return res, nil
	}
	if shards <= 1 {
		res.Shards = 1
		return runSingle(ctx, g, res, src)
	}

	// 1. Partition + ghost-subgraph extraction (one goroutine per shard —
	// extraction is embarrassingly parallel across shards).
	start := time.Now()
	part, verts, err := partition(g, shards, opts.Mode)
	if err != nil {
		return nil, err
	}
	states := make([]*shardState, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		st := &shardState{verts: verts[s]}
		states[s] = st
		if len(st.verts) == 0 {
			continue
		}
		wg.Add(1)
		go func(st *shardState) {
			defer wg.Done()
			sub, ghosts, _, err := graph.GhostSubgraph(g, st.verts, 1)
			if err != nil {
				errs[indexOf(states, st)] = err
				return
			}
			ns := sub.N()
			st.sub, st.ghosts = sub, ghosts
			st.seed = make([]int32, ns)
			st.out = make([]int32, ns)
			st.glob = make([]int32, ns)
			st.back = make([]int32, 0, ns)
		}(st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: subgraph extraction: %w", err)
		}
	}
	res.CutEdges = countCutEdges(g, part, opts.Workers)
	res.PartitionTime = time.Since(start)

	// 2. Synchronized local rounds with ghost-label exchange. labels holds
	// the global community label of every vertex (initially singleton ids);
	// shards read it to seed a round and write their OWNED vertices into
	// next, so the exchange is race-free by construction and the swap at the
	// barrier publishes every shard's labels to every other shard's ghosts.
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	next := make([]int32, n)
	rounds := 1 + opts.Rounds
	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		roundStart := time.Now()
		var changed atomic.Int64
		var panicked atomic.Value
		for s := 0; s < shards; s++ {
			st := states[s]
			if len(st.verts) == 0 {
				continue
			}
			wg.Add(1)
			go func(s int, st *shardState) {
				defer wg.Done()
				defer func() {
					if v := recover(); v != nil {
						panicked.CompareAndSwap(nil, v)
					}
				}()
				errs[s] = st.sweep(ctx, g, labels, next, src, &changed)
			}(s, st)
		}
		wg.Wait()
		if v := panicked.Load(); v != nil {
			// A panicking sweep already quarantined its engine via
			// release(ok=false); re-panic on the caller's goroutine so the
			// serving layers' quarantine semantics (Guard recovery) apply.
			panic(v)
		}
		res.LocalTime += time.Since(roundStart)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		labels, next = next, labels
		if changed.Load() == 0 {
			// Label fixpoint: further exchanges cannot move anything.
			break
		}
	}
	for _, st := range states {
		res.LocalIterations += st.iters
	}

	// 3. Master merge: coarsen the FULL graph by the exchanged labels (cut
	// edges now aggregated into real meta-edges) and re-cluster the coarse
	// graph with a complete engine run — the step that recovers the quality
	// a partitioned local phase leaves on the table.
	start = time.Now()
	dense, numGlobal := renumber(labels)
	coarse := seq.Coarsen(g, dense, numGlobal)
	eng, release, err := src.Acquire(ctx, coarse.N())
	if err != nil {
		return nil, err
	}
	ok := false
	var mres *core.Result
	func() {
		defer func() { release(ok) }()
		mres, err = eng.RunIntoCtx(ctx, coarse, nil)
		ok = true
	}()
	if err != nil {
		return nil, err
	}
	fold := foldCtx{out: res.Membership, dense: dense, master: mres.Membership}
	par.ForChunkCtx(&fold, n, opts.Workers, 0, func(c *foldCtx, lo, hi int) {
		for v := lo; v < hi; v++ {
			c.out[v] = c.master[c.dense[v]]
		}
	})
	res.MergeTime = time.Since(start)
	res.MergeIterations = mres.TotalIterations
	res.NumCommunities = mres.NumCommunities
	// Modularity is invariant under the coarsening convention, so the master
	// run's score IS the score of the folded membership on g.
	res.Modularity = mres.Modularity
	return res, nil
}

type foldCtx struct {
	out, dense, master []int32
}

// sweep runs one shard's round: seed from the global labels, sweep with
// ghosts pinned, publish owned labels into next.
func (st *shardState) sweep(ctx context.Context, g *graph.Graph, labels, next []int32, src Engines, changed *atomic.Int64) error {
	nLocal := len(st.verts)
	ns := st.sub.N()
	// Global label of every subgraph vertex: locals then ghosts.
	for t, v := range st.verts {
		st.glob[t] = labels[v]
	}
	for t, gv := range st.ghosts {
		st.glob[nLocal+t] = labels[gv]
	}
	// Compress to the dense local label space the engine needs: back holds
	// the sorted unique global labels, so local label t ↔ back[t] and the
	// ascending order preserves min-label tie-break semantics globally.
	st.back = append(st.back[:0], st.glob...)
	sortInt32(st.back)
	st.back = uniqueInt32(st.back)
	for i, gl := range st.glob {
		st.seed[i] = int32(searchInt32(st.back, gl))
	}

	eng, release, err := src.Acquire(ctx, ns)
	if err != nil {
		return err
	}
	ok := false
	defer func() { release(ok) }()
	iters, _, err := eng.SweepSeeded(ctx, st.sub, st.seed, nLocal, st.out)
	ok = true // a non-panicking sweep leaves the engine consistent, even canceled
	if err != nil {
		return err
	}
	st.iters += iters
	delta := int64(0)
	for t, v := range st.verts {
		nl := st.back[st.out[t]]
		next[v] = nl
		if nl != labels[v] {
			delta++
		}
	}
	changed.Add(delta)
	return nil
}

// runSingle is the shards<=1 degenerate path: one full engine run.
func runSingle(ctx context.Context, g *graph.Graph, res *Result, src Engines) (*Result, error) {
	eng, release, err := src.Acquire(ctx, g.N())
	if err != nil {
		return nil, err
	}
	ok := false
	var r *core.Result
	func() {
		defer func() { release(ok) }()
		r, err = eng.RunIntoCtx(ctx, g, nil)
		ok = true
	}()
	if err != nil {
		return nil, err
	}
	copy(res.Membership, r.Membership)
	res.NumCommunities = r.NumCommunities
	res.Modularity = r.Modularity
	res.MergeIterations = r.TotalIterations
	return res, nil
}

// countCutEdges counts undirected cross-shard edges with arc-balanced
// parallel chunks over the CSR prefix (each edge counted at its lower
// endpoint, so hubs cannot serialize the scan).
func countCutEdges(g *graph.Graph, part []int32, workers int) int64 {
	var cut atomic.Int64
	ctx := cutCtx{g: g, part: part, cut: &cut}
	par.ForChunkPrefixCtx(&ctx, g.ArcOffsets(), workers, func(c *cutCtx, w, lo, hi int) {
		var local int64
		for v := lo; v < hi; v++ {
			nbr, _ := c.g.Neighbors(v)
			pv := c.part[v]
			for _, j := range nbr {
				if int(j) > v && c.part[j] != pv {
					local++
				}
			}
		}
		c.cut.Add(local)
	})
	return cut.Load()
}

type cutCtx struct {
	g    *graph.Graph
	part []int32
	cut  *atomic.Int64
}

// renumber maps arbitrary int32 labels to dense ids in first-occurrence
// order, returning the dense slice and the id count.
func renumber(labels []int32) ([]int32, int) {
	dense := make([]int32, len(labels))
	remap := make([]int32, len(labels))
	for i := range remap {
		remap[i] = -1
	}
	nextID := int32(0)
	for v, l := range labels {
		if remap[l] < 0 {
			remap[l] = nextID
			nextID++
		}
		dense[v] = remap[l]
	}
	return dense, int(nextID)
}

func indexOf(states []*shardState, st *shardState) int {
	for i, s := range states {
		if s == st {
			return i
		}
	}
	return -1
}

func sortInt32(v []int32) {
	sort.Slice(v, func(a, b int) bool { return v[a] < v[b] })
}

// uniqueInt32 compacts a sorted slice in place.
func uniqueInt32(v []int32) []int32 {
	out := 0
	for i := range v {
		if out == 0 || v[out-1] != v[i] {
			v[out] = v[i]
			out++
		}
	}
	return v[:out]
}

// searchInt32 returns the index of x in the sorted slice v (x must be
// present — seeds are drawn from the same labels back was built from).
func searchInt32(v []int32, x int32) int {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
