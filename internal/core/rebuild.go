package core

import (
	"sync/atomic"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

func atomicAdd64(cell *int64, d int64) int64 { return atomic.AddInt64(cell, d) }

func atomicLoad64(cell *int64) int64 { return atomic.LoadInt64(cell) }

func atomicLoad32(cell *int32) int32     { return atomic.LoadInt32(cell) }
func atomicStore32(cell *int32, v int32) { atomic.StoreInt32(cell, v) }

// renumberParallel maps arbitrary community ids in [0, len(comm)) to dense
// ids [0, k), preserving ascending id order, using a parallel occupancy
// scan + prefix sum. This is the parallelization of the rebuild step the
// paper performs serially (§5.5: "this step is currently implemented in
// serial, although our future plan is to explore a parallelization using
// prefix computation").
func renumberParallel(comm []int32, workers int) []int32 {
	n := len(comm)
	occupied := make([]int64, n+1)
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Plain stores race benignly only in C; use atomic store of the
			// same value to stay well-defined (any winner writes 1).
			atomic.StoreInt64(&occupied[comm[i]], 1)
		}
	})
	par.ExclusivePrefixSum(occupied[:n+1], workers)
	// occupied[c] now holds the dense id of community c (valid where the
	// original flag was 1, i.e. occupied[c+1] == occupied[c]+1).
	out := make([]int32, n)
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = int32(occupied[comm[i]])
		}
	})
	return out
}

// renumberSerial is the paper's original serial renumbering, kept as an
// ablation mode (Options.SerialRenumber) so the Fig. 8/9 rebuild
// bottleneck can be reproduced.
func renumberSerial(comm []int32) []int32 {
	n := len(comm)
	dense := make([]int32, n+1)
	for i := range dense {
		dense[i] = -1
	}
	next := int32(0)
	out := make([]int32, n)
	// Ascending-id order to match the parallel version bit for bit.
	for i := 0; i < n; i++ {
		if dense[comm[i]] < 0 {
			dense[comm[i]] = 0 // mark
		}
	}
	for c := 0; c <= n; c++ {
		if c < len(dense) && dense[c] == 0 {
			dense[c] = next
			next++
		}
	}
	for i := 0; i < n; i++ {
		out[i] = dense[comm[i]]
	}
	return out
}

// rowArena is one worker's append-only staging area for aggregated
// community rows: rows land here in whatever order the worker claims
// communities, then a prefix sum over row lengths stitches them into the
// final CSR. Growth is amortized across all rows a worker produces, so the
// per-community map + slice allocations of the original implementation
// (the §5.5 rebuild bottleneck) are gone.
type rowArena struct {
	adj []int32
	w   []float64
}

// rebuild constructs the next phase's coarsened graph from a dense
// membership (§5.4 step 4, §5.5): one meta-vertex per community, self-loop
// weight = 2×(intra non-loop weight) + member self-loops, inter-community
// edges aggregated symmetrically. All steps are parallel: vertices are
// grouped by community with a counting sort, then each community's row is
// aggregated independently into a per-worker flat accumulator (key order
// sorted ascending for deterministic rows), staged in a per-worker arena,
// and stitched into the final CSR with a prefix sum over row lengths —
// lock-free, allocation-amortized, no hashing anywhere.
func rebuild(g *graph.Graph, membership []int32, numComm, workers int) *graph.Graph {
	n := g.N()
	// Group vertices by community: counting sort with atomic counters.
	counts := make([]int64, numComm+1)
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomicAdd64(&counts[membership[i]], 1)
		}
	})
	par.ExclusivePrefixSum(counts[:numComm+1], workers)
	starts := counts // exclusive prefix sums
	cursor := make([]int64, numComm)
	copy(cursor, starts[:numComm])
	members := make([]int32, n)
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := atomicAdd64(&cursor[membership[i]], 1) - 1
			members[pos] = int32(i)
		}
	})

	// Aggregate each community's row into its worker's accumulator, keyed by
	// neighbor community. Adding ALL arcs (intra ones included) reproduces
	// the self-loop convention for free: key c accumulates 2×(intra non-loop
	// weight) + member self-loops, because internal non-loop arcs are visited
	// twice (u→v and v→u) and self-loops once.
	nw := par.Workers(workers, numComm)
	accs := make([]*par.SparseAccum, nw)
	arenas := make([]rowArena, nw)
	rowLen := make([]int64, numComm+1) // row length, then CSR offsets in place
	rowWk := make([]int32, numComm)    // which worker's arena holds row c
	rowOff := make([]int64, numComm)   // at which offset in that arena
	// starts doubles as a member-count prefix sum over communities, so the
	// aggregation chunks balance by community size rather than community
	// count (one giant community can no longer serialize the rebuild).
	par.ForChunkPrefix(starts, workers, func(w, lo, hi int) {
		acc := accs[w]
		if acc == nil {
			acc = par.NewSparseAccum(numComm, 0)
			accs[w] = acc
		}
		ar := &arenas[w]
		for c := lo; c < hi; c++ {
			acc.Reset()
			for _, u := range members[starts[c]:starts[c+1]] {
				nbr, wts := g.Neighbors(int(u))
				for t, v := range nbr {
					acc.Add(membership[v], wts[t])
				}
			}
			keys := acc.Keys()
			par.SortInt32(keys) // deterministic ascending row order
			rowLen[c] = int64(len(keys))
			rowWk[c] = int32(w)
			rowOff[c] = int64(len(ar.adj))
			for _, k := range keys {
				ar.adj = append(ar.adj, k)
				ar.w = append(ar.w, acc.Get(k))
			}
		}
	})

	totalArcs := par.ExclusivePrefixSum(rowLen, workers)
	offsets := rowLen // rowLen now holds the exclusive prefix sums
	adj := make([]int32, totalArcs)
	weights := make([]float64, totalArcs)
	par.ForChunk(numComm, workers, 0, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			cnt := offsets[c+1] - offsets[c]
			ar := &arenas[rowWk[c]]
			copy(adj[offsets[c]:offsets[c+1]], ar.adj[rowOff[c]:rowOff[c]+cnt])
			copy(weights[offsets[c]:offsets[c+1]], ar.w[rowOff[c]:rowOff[c]+cnt])
		}
	})
	cg, err := graph.FromCSR(offsets, adj, weights, workers, false)
	if err != nil {
		panic(err) // unreachable with check=false
	}
	return cg
}
