package core

import (
	"sort"
	"sync/atomic"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

func atomicAdd64(cell *int64, d int64) int64 { return atomic.AddInt64(cell, d) }

func atomicLoad64(cell *int64) int64 { return atomic.LoadInt64(cell) }

func atomicLoad32(cell *int32) int32     { return atomic.LoadInt32(cell) }
func atomicStore32(cell *int32, v int32) { atomic.StoreInt32(cell, v) }

// renumberParallel maps arbitrary community ids in [0, len(comm)) to dense
// ids [0, k), preserving ascending id order, using a parallel occupancy
// scan + prefix sum. This is the parallelization of the rebuild step the
// paper performs serially (§5.5: "this step is currently implemented in
// serial, although our future plan is to explore a parallelization using
// prefix computation").
func renumberParallel(comm []int32, workers int) []int32 {
	n := len(comm)
	occupied := make([]int64, n+1)
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Plain stores race benignly only in C; use atomic store of the
			// same value to stay well-defined (any winner writes 1).
			atomic.StoreInt64(&occupied[comm[i]], 1)
		}
	})
	par.ExclusivePrefixSum(occupied[:n+1], workers)
	// occupied[c] now holds the dense id of community c (valid where the
	// original flag was 1, i.e. occupied[c+1] == occupied[c]+1).
	out := make([]int32, n)
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = int32(occupied[comm[i]])
		}
	})
	return out
}

// renumberSerial is the paper's original serial renumbering, kept as an
// ablation mode (Options.SerialRenumber) so the Fig. 8/9 rebuild
// bottleneck can be reproduced.
func renumberSerial(comm []int32) []int32 {
	n := len(comm)
	dense := make([]int32, n+1)
	for i := range dense {
		dense[i] = -1
	}
	next := int32(0)
	out := make([]int32, n)
	// Ascending-id order to match the parallel version bit for bit.
	for i := 0; i < n; i++ {
		if dense[comm[i]] < 0 {
			dense[comm[i]] = 0 // mark
		}
	}
	for c := 0; c <= n; c++ {
		if c < len(dense) && dense[c] == 0 {
			dense[c] = next
			next++
		}
	}
	for i := 0; i < n; i++ {
		out[i] = dense[comm[i]]
	}
	return out
}

// rebuild constructs the next phase's coarsened graph from a dense
// membership (§5.4 step 4, §5.5): one meta-vertex per community, self-loop
// weight = 2×(intra non-loop weight) + member self-loops, inter-community
// edges aggregated symmetrically. All steps are parallel: vertices are
// grouped by community with a counting sort, then each community's row is
// aggregated independently (lock-free, one goroutine chunk per community
// range — the Go substitute for the paper's two-lock edge traversal).
func rebuild(g *graph.Graph, membership []int32, numComm, workers int) *graph.Graph {
	n := g.N()
	// Group vertices by community: counting sort with atomic counters.
	counts := make([]int64, numComm+1)
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomicAdd64(&counts[membership[i]], 1)
		}
	})
	par.ExclusivePrefixSum(counts[:numComm+1], workers)
	starts := counts // exclusive prefix sums
	cursor := make([]int64, numComm)
	copy(cursor, starts[:numComm])
	members := make([]int32, n)
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := atomicAdd64(&cursor[membership[i]], 1) - 1
			members[pos] = int32(i)
		}
	})

	// Aggregate each community's row. rowAdj/rowW are per-community slices
	// built independently, then stitched into CSR.
	rowAdj := make([][]int32, numComm)
	rowW := make([][]float64, numComm)
	par.ForChunk(numComm, workers, 1, func(lo, hi int) {
		agg := make(map[int32]float64, 16)
		for c := lo; c < hi; c++ {
			clear(agg)
			selfW := 0.0
			for _, u := range members[starts[c]:starts[c+1]] {
				nbr, wts := g.Neighbors(int(u))
				for t, v := range nbr {
					cv := membership[v]
					if int(cv) == c {
						// Internal non-loop arcs are visited twice (u→v and
						// v→u) accumulating 2w; self-loops once, w — the
						// degree-preserving convention.
						selfW += wts[t]
					} else {
						agg[cv] += wts[t]
					}
				}
			}
			keys := make([]int32, 0, len(agg)+1)
			if selfW > 0 {
				keys = append(keys, int32(c))
			}
			for k := range agg {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			ws := make([]float64, len(keys))
			for t, k := range keys {
				if int(k) == c {
					ws[t] = selfW
				} else {
					ws[t] = agg[k]
				}
			}
			rowAdj[c], rowW[c] = keys, ws
		}
	})

	offsets := make([]int64, numComm+1)
	par.ForChunk(numComm, workers, 0, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			offsets[c] = int64(len(rowAdj[c]))
		}
	})
	totalArcs := par.ExclusivePrefixSum(offsets, workers)
	adj := make([]int32, totalArcs)
	weights := make([]float64, totalArcs)
	par.ForChunk(numComm, workers, 0, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			copy(adj[offsets[c]:], rowAdj[c])
			copy(weights[offsets[c]:], rowW[c])
		}
	})
	cg, err := graph.FromCSR(offsets, adj, weights, workers, false)
	if err != nil {
		panic(err) // unreachable with check=false
	}
	return cg
}
