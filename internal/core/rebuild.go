package core

import (
	"sync/atomic"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

func atomicAdd64(cell *int64, d int64) int64 { return atomic.AddInt64(cell, d) }

func atomicLoad64(cell *int64) int64 { return atomic.LoadInt64(cell) }

func atomicLoad32(cell *int32) int32     { return atomic.LoadInt32(cell) }
func atomicStore32(cell *int32, v int32) { atomic.StoreInt32(cell, v) }

// renumberCtx carries the renumbering arrays into the captureless loop bodies
// (see par.ForChunkWorkerCtx for why closures are avoided on pooled paths).
type renumberCtx struct {
	comm     []int32
	occupied []int64
	out      []int32
}

// renumberParallelInto maps arbitrary community ids in [0, len(comm)) to
// dense ids [0, k) in out, preserving ascending id order, using a parallel
// occupancy scan + prefix sum. This is the parallelization of the rebuild
// step the paper performs serially (§5.5: "this step is currently implemented
// in serial, although our future plan is to explore a parallelization using
// prefix computation"). out must have length len(comm) and occupied length
// len(comm)+1; both are caller-pooled (the Engine reuses them across phases
// and runs).
func renumberParallelInto(out []int32, occupied []int64, comm []int32, workers int) {
	n := len(comm)
	ctx := renumberCtx{comm: comm, occupied: occupied, out: out}
	par.ForChunkCtx(ctx, n+1, workers, 0, func(c renumberCtx, lo, hi int) {
		for i := lo; i < hi; i++ {
			c.occupied[i] = 0
		}
	})
	par.ForChunkCtx(ctx, n, workers, 0, func(c renumberCtx, lo, hi int) {
		for i := lo; i < hi; i++ {
			// Plain stores race benignly only in C; use atomic store of the
			// same value to stay well-defined (any winner writes 1).
			atomic.StoreInt64(&c.occupied[c.comm[i]], 1)
		}
	})
	par.ExclusivePrefixSum(occupied[:n+1], workers)
	// occupied[c] now holds the dense id of community c (valid where the
	// original flag was 1, i.e. occupied[c+1] == occupied[c]+1).
	par.ForChunkCtx(ctx, n, workers, 0, func(c renumberCtx, lo, hi int) {
		for i := lo; i < hi; i++ {
			c.out[i] = int32(c.occupied[c.comm[i]])
		}
	})
}

// renumberParallel is the allocating convenience form of
// renumberParallelInto, used by tests and one-shot callers.
func renumberParallel(comm []int32, workers int) []int32 {
	out := make([]int32, len(comm))
	renumberParallelInto(out, make([]int64, len(comm)+1), comm, workers)
	return out
}

// renumberSerial is the paper's original serial renumbering, kept as an
// ablation mode (Options.SerialRenumber) so the Fig. 8/9 rebuild
// bottleneck can be reproduced.
func renumberSerial(comm []int32) []int32 {
	n := len(comm)
	dense := make([]int32, n+1)
	for i := range dense {
		dense[i] = -1
	}
	next := int32(0)
	out := make([]int32, n)
	// Ascending-id order to match the parallel version bit for bit.
	for i := 0; i < n; i++ {
		if dense[comm[i]] < 0 {
			dense[comm[i]] = 0 // mark
		}
	}
	for c := 0; c <= n; c++ {
		if c < len(dense) && dense[c] == 0 {
			dense[c] = next
			next++
		}
	}
	for i := 0; i < n; i++ {
		out[i] = dense[comm[i]]
	}
	return out
}

// rowArena is one worker's append-only staging area for aggregated
// community rows: rows land here in whatever order the worker claims
// communities, then a prefix sum over row lengths stitches them into the
// final CSR. Growth is amortized across all rows a worker produces — and,
// under the Engine, across every rebuild of every run — so the per-community
// map + slice allocations of the original implementation (the §5.5 rebuild
// bottleneck) are gone.
type rowArena struct {
	adj []int32
	w   []float64
}

// rebuildScratch owns every transient buffer of the coarsening step except
// the output CSR arrays (those live in the destination graphSlot, because
// the produced graph must survive until the NEXT rebuild). One instance is
// pooled per Engine; the free rebuild function uses a throwaway one.
type rebuildScratch struct {
	counts  []int64 // community member counts, then exclusive prefix sums
	cursor  []int64
	members []int32
	rowWk   []int32
	rowOff  []int64
	accs    []*par.SparseAccum
	arenas  []rowArena
	ctx     rebuildCtx // loop-body context (pointer-passed, see below)
}

// rebuildCtx carries one rebuild's state into the captureless loop bodies.
// It is embedded in rebuildScratch and passed by pointer: by-value contexts
// over 128 bytes are captured by reference and would heap-move per call.
type rebuildCtx struct {
	g          *graph.Graph
	membership []int32
	starts     []int64
	cursor     []int64
	members    []int32
	rowLen     []int64
	rowWk      []int32
	rowOff     []int64
	accs       []*par.SparseAccum
	arenas     []rowArena
	offsets    []int64
	adj        []int32
	weights    []float64
}

// rebuildInto constructs the next phase's coarsened graph from a dense
// membership (§5.4 step 4, §5.5): one meta-vertex per community, self-loop
// weight = 2×(intra non-loop weight) + member self-loops, inter-community
// edges aggregated symmetrically. All steps are parallel: vertices are
// grouped by community with a counting sort, then each community's row is
// aggregated independently into a per-worker flat accumulator (key order
// sorted ascending for deterministic rows), staged in a per-worker arena,
// and stitched into the final CSR with a prefix sum over row lengths —
// lock-free, allocation-amortized, no hashing anywhere. The output CSR and
// Graph header are recycled from slot, every working buffer from rb.
func rebuildInto(rb *rebuildScratch, slot *graphSlot, g *graph.Graph, membership []int32, numComm, workers int) *graph.Graph {
	n := g.N()
	ctx := &rb.ctx
	*ctx = rebuildCtx{g: g, membership: membership}

	// Group vertices by community: counting sort with atomic counters.
	counts := par.Resize(rb.counts, numComm+1)
	rb.counts = counts
	ctx.starts = counts
	par.ForChunkCtx(ctx, numComm+1, workers, 0, func(c *rebuildCtx, lo, hi int) {
		for i := lo; i < hi; i++ {
			c.starts[i] = 0
		}
	})
	par.ForChunkCtx(ctx, n, workers, 0, func(c *rebuildCtx, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomicAdd64(&c.starts[c.membership[i]], 1)
		}
	})
	par.ExclusivePrefixSum(counts[:numComm+1], workers)
	starts := counts // counts now holds exclusive prefix sums; alias for clarity
	cursor := par.Resize(rb.cursor, numComm)
	rb.cursor = cursor
	copy(cursor, starts[:numComm])
	members := par.Resize(rb.members, n)
	rb.members = members
	ctx.cursor, ctx.members = cursor, members
	par.ForChunkCtx(ctx, n, workers, 0, func(c *rebuildCtx, lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := atomicAdd64(&c.cursor[c.membership[i]], 1) - 1
			c.members[pos] = int32(i)
		}
	})

	// Aggregate each community's row into its worker's accumulator, keyed by
	// neighbor community. Adding ALL arcs (intra ones included) reproduces
	// the self-loop convention for free: key c accumulates 2×(intra non-loop
	// weight) + member self-loops, because internal non-loop arcs are visited
	// twice (u→v and v→u) and self-loops once.
	nw := par.Workers(workers, numComm)
	for len(rb.accs) < nw {
		rb.accs = append(rb.accs, nil)
	}
	for len(rb.arenas) < nw {
		rb.arenas = append(rb.arenas, rowArena{})
	}
	for w := 0; w < nw; w++ {
		rb.arenas[w].adj = rb.arenas[w].adj[:0]
		rb.arenas[w].w = rb.arenas[w].w[:0]
	}
	rowLen := par.Resize(slot.offsets, numComm+1) // row lengths, then CSR offsets in place
	rowWk := par.Resize(rb.rowWk, numComm)        // which worker's arena holds row c
	rb.rowWk = rowWk
	rowOff := par.Resize(rb.rowOff, numComm) // at which offset in that arena
	rb.rowOff = rowOff
	rowLen[numComm] = 0
	ctx.rowLen, ctx.rowWk, ctx.rowOff = rowLen, rowWk, rowOff
	ctx.accs, ctx.arenas = rb.accs, rb.arenas
	// starts doubles as a member-count prefix sum over communities, so the
	// aggregation chunks balance by community size rather than community
	// count (one giant community can no longer serialize the rebuild).
	par.ForChunkPrefixCtx(ctx, starts, workers, func(ct *rebuildCtx, w, lo, hi int) {
		acc := ct.accs[w]
		if acc == nil {
			acc = par.NewSparseAccum(len(ct.rowLen)-1, 0)
			ct.accs[w] = acc
		} else {
			acc.Grow(len(ct.rowLen) - 1)
		}
		ar := &ct.arenas[w]
		for c := lo; c < hi; c++ {
			acc.Reset()
			for _, u := range ct.members[ct.starts[c]:ct.starts[c+1]] {
				nbr, wts := ct.g.Neighbors(int(u))
				for t, v := range nbr {
					acc.Add(ct.membership[v], wts[t])
				}
			}
			keys := acc.Keys()
			par.SortInt32(keys) // deterministic ascending row order
			ct.rowLen[c] = int64(len(keys))
			ct.rowWk[c] = int32(w)
			ct.rowOff[c] = int64(len(ar.adj))
			for _, k := range keys {
				ar.adj = append(ar.adj, k)
				ar.w = append(ar.w, acc.Get(k))
			}
		}
	})

	totalArcs := par.ExclusivePrefixSum(rowLen, workers)
	offsets := rowLen // rowLen now holds the exclusive prefix sums
	adj := par.Resize(slot.adj, int(totalArcs))
	weights := par.Resize(slot.weights, int(totalArcs))
	ctx.offsets, ctx.adj, ctx.weights = offsets, adj, weights
	par.ForChunkCtx(ctx, numComm, workers, 0, func(ct *rebuildCtx, lo, hi int) {
		for c := lo; c < hi; c++ {
			cnt := ct.offsets[c+1] - ct.offsets[c]
			ar := &ct.arenas[ct.rowWk[c]]
			copy(ct.adj[ct.offsets[c]:ct.offsets[c+1]], ar.adj[ct.rowOff[c]:ct.rowOff[c]+cnt])
			copy(ct.weights[ct.offsets[c]:ct.offsets[c+1]], ar.w[ct.rowOff[c]:ct.rowOff[c]+cnt])
		}
	})
	slot.offsets, slot.adj, slot.weights = offsets, adj, weights
	cg, err := graph.FromCSRInto(slot.g, offsets, adj, weights, workers, false)
	if err != nil {
		panic(err) // unreachable with check=false
	}
	slot.g = cg
	*ctx = rebuildCtx{} // drop graph/membership references until the next rebuild
	return cg
}

// rebuild is the one-shot form of rebuildInto with throwaway scratch, used by
// tests, benchmarks, and callers outside an Engine.
func rebuild(g *graph.Graph, membership []int32, numComm, workers int) *graph.Graph {
	return rebuildInto(&rebuildScratch{}, &graphSlot{}, g, membership, numComm, workers)
}
