package core

import (
	"fmt"
	"sort"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// CommunityStats summarizes one detected community on the original graph:
// the quantities users inspect after detection and the ingredients of the
// per-community modularity terms in Eq. (3).
type CommunityStats struct {
	ID   int32
	Size int
	// IntraWeight is the total weight of internal edges (each undirected
	// edge counted once; self-loops once).
	IntraWeight float64
	// CutWeight is the total weight of edges leaving the community.
	CutWeight float64
	// Degree is a_C, the sum of member weighted degrees.
	Degree float64
	// Conductance = cut / min(vol, 2m - vol), the standard cut-quality
	// score (0 = perfectly isolated community). Degenerate cases score 0.
	Conductance float64
	// LocalQ is this community's additive contribution to modularity:
	// in/m - (a_C/2m)² with the convention in = intra counted once.
	LocalQ float64
}

// AnalyzeCommunities computes per-community statistics for a membership on
// g, sorted by descending size. Runs in parallel over vertices.
func AnalyzeCommunities(g *graph.Graph, membership []int32, workers int) ([]CommunityStats, error) {
	n := g.N()
	if len(membership) != n {
		return nil, fmt.Errorf("core: membership length %d != n %d", len(membership), n)
	}
	if n == 0 {
		return nil, nil
	}
	numComm := int(maxInt32(membership)) + 1
	size := make([]int64, numComm)
	deg := make([]float64, numComm)
	intra2 := make([]float64, numComm) // internal arcs: 2×(non-loop edges) + loops
	loops := make([]float64, numComm)  // self-loop weight, for exact edge sums
	cut := make([]float64, numComm)
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := membership[i]
			if ci < 0 || int(ci) >= numComm {
				continue // caught below via the validity scan
			}
			atomicAdd64(&size[ci], 1)
			par.AddFloat64(&deg[ci], g.Degree(i))
			nbr, wts := g.Neighbors(i)
			for t, j := range nbr {
				switch {
				case int(j) == i:
					par.AddFloat64(&intra2[ci], wts[t])
					par.AddFloat64(&loops[ci], wts[t])
				case membership[j] == ci:
					par.AddFloat64(&intra2[ci], wts[t])
				default:
					par.AddFloat64(&cut[ci], wts[t])
				}
			}
		}
	})
	for v, c := range membership {
		if c < 0 || int(c) >= numComm {
			return nil, fmt.Errorf("core: vertex %d has invalid community %d", v, c)
		}
	}
	m2 := g.TotalWeight()
	out := make([]CommunityStats, 0, numComm)
	for c := 0; c < numComm; c++ {
		if size[c] == 0 {
			continue
		}
		cs := CommunityStats{
			ID:          int32(c),
			Size:        int(size[c]),
			IntraWeight: (intra2[c] + loops[c]) / 2,
			CutWeight:   cut[c],
			Degree:      deg[c],
		}
		vol := deg[c]
		other := m2 - vol
		denom := vol
		if other < denom {
			denom = other
		}
		if denom > 0 {
			cs.Conductance = cut[c] / denom
		}
		if m2 > 0 {
			frac := deg[c] / m2
			cs.LocalQ = intra2[c]/m2 - frac*frac
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// CommunitySizes returns the size of each community as a dense slice
// indexed by community id (length max id + 1; ids absent from the
// membership count 0). Community ids must be non-negative, as Run and
// AnalyzeCommunities already guarantee. Returns nil for an empty membership.
func CommunitySizes(membership []int32) []int {
	if len(membership) == 0 {
		return nil
	}
	out := make([]int, int(maxInt32(membership))+1)
	for _, c := range membership {
		out[c]++
	}
	return out
}
