package core

import (
	"context"
	"time"

	"grappolo/internal/coloring"
	"grappolo/internal/faults"
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// Engine is a reusable parallel Louvain pipeline: it owns every piece of
// mutable scratch the one-shot Run would otherwise allocate per call — the
// phase working set (phaseState arrays and per-worker decide accumulators),
// the rebuild scratch (counting-sort buffers, per-worker row accumulators and
// staging arenas), the renumbering buffers, the coloring scratch (worklists,
// flat markers, set storage), the per-level coarse-graph slots, and the CPM
// node-size buffers. Everything is sized by high-water mark and recycled
// across phases AND across Run calls, so the second Run on a same-shaped
// graph performs zero scratch allocations (only the Result is allocated; see
// RunInto to recycle that too).
//
// Use one Engine per sequence of runs that share a configuration: dynamic
// overlays re-detecting on every flush, harness sweeps repeating a
// configuration, servers answering clustering requests back to back. An
// Engine is NOT safe for concurrent use — concurrent runs need one Engine
// each (the memory cost is bounded by the largest graph each engine has
// seen). Results returned by Run are independent of the engine and stay
// valid; coloring and phase internals are never exposed.
type Engine struct {
	opts Options

	st      phaseState
	rb      rebuildScratch
	slots   []*graphSlot
	slot    int
	colorSc *coloring.Scratch // base colorings
	rebalSc *coloring.Scratch // rebalanced colorings (both alive at once)

	// renumbering scratch: occupied flags/prefix and the dense output that
	// serves as the phase membership until it is folded and consumed.
	occupied []int64
	denseOut []int32

	// CPM node sizes, ping-ponged between phases; nsHist holds the pooled
	// per-worker partial histograms of the parallel re-aggregation.
	nodeSize []int64
	nsAlt    []int64
	nsHist   [][]int64
	arena    par.Arena
	nsc      nsCtx // re-aggregation loop context (pointer-passed)

	// vertex-following scratch.
	vfParent []int32
	vfMerged int64
	vfc      vfCtx // VF loop context (pointer-passed)

	fold foldCtx // membership-fold loop context (pointer-passed)

	// runCtx and cancel carry cooperative cancellation for the duration of
	// one RunCtx/RunIntoCtx call: the context is polled at the barriers
	// between chunked passes (phase, iteration and color-set boundaries) and
	// latched into the par.Cancel flag that sweep bodies observe per chunk,
	// so hot loops stay branch-light while cancellation still lands within
	// one chunk of work. Both are cleared when the run returns; plain
	// Run/RunInto leave runCtx nil and pay only nil checks.
	runCtx context.Context
	cancel par.Cancel
}

// graphSlot owns one coarse graph produced by a rebuild: the CSR arrays and
// the Graph header, recycled the next time the same rebuild depth is reached.
type graphSlot struct {
	g       *graph.Graph
	offsets []int64
	adj     []int32
	weights []float64
}

// NewEngine validates opts (panicking on any Options.Validate error — the
// public grappolo package validates first and surfaces the same conditions
// as errors) and returns an empty engine; all scratch is grown on first use.
func NewEngine(opts Options) *Engine {
	if err := opts.Validate(); err != nil {
		panic(err.Error())
	}
	opts = opts.Defaults()
	return &Engine{
		opts:    opts,
		colorSc: coloring.NewScratch(),
		rebalSc: coloring.NewScratch(),
	}
}

// Options returns the engine's (defaulted) configuration.
func (e *Engine) Options() Options { return e.opts }

// Run executes the full pipeline on g (see Run's package-level documentation)
// into a freshly allocated Result.
func (e *Engine) Run(g *graph.Graph) *Result {
	res, _ := e.runInto(nil, g, nil)
	return res
}

// RunCtx is Run honoring ctx: cancellation is polled cooperatively at the
// phase, iteration and color-set barriers of the pipeline and observed per
// chunk inside the sweeps via the latched par.Cancel flag, so even a single
// long sweep aborts within one chunk of work. The non-sweep steps (VF,
// coloring, rebuild) carry no checks and run to completion, bounding the
// worst-case cancellation latency by one such step. On cancellation it returns
// (nil, ctx.Err()); the engine's scratch stays consistent and the next run
// reuses it as usual. A nil or never-canceled context adds only nil checks
// at the barriers — the per-item hot loops are untouched.
func (e *Engine) RunCtx(ctx context.Context, g *graph.Graph) (*Result, error) {
	return e.runInto(ctx, g, nil)
}

// RunIntoCtx is RunInto honoring ctx (see RunCtx). On cancellation it
// returns (nil, ctx.Err()) and the contents of res are undefined; res's
// storage is not retained by the engine and may be passed to a later call.
func (e *Engine) RunIntoCtx(ctx context.Context, g *graph.Graph, res *Result) (*Result, error) {
	return e.runInto(ctx, g, res)
}

// CopyResultInto deep-copies src into dst, reusing dst's membership, phase,
// trace and hierarchy storage (grown only when the shapes differ), and
// returns dst; a nil dst allocates a fresh Result. It is the shared-result
// fan-out entry for the serving layer: one engine run writes a single
// Result, and CopyResultInto hands every coalesced waiter an independent
// copy with exactly the ownership semantics of a private run. A warm
// same-shape copy performs zero allocations. dst == src is a no-op.
func CopyResultInto(dst, src *Result) *Result {
	if dst == nil {
		dst = &Result{}
	}
	if dst == src {
		return dst
	}
	dst.Membership = par.Resize(dst.Membership, len(src.Membership))
	copy(dst.Membership, src.Membership)
	dst.NumCommunities = src.NumCommunities
	dst.Modularity = src.Modularity
	dst.TotalIterations = src.TotalIterations
	dst.Timing = src.Timing
	dst.Degraded = src.Degraded
	dst.Incremental = src.Incremental
	// Per-phase traces recycle the previous copy's backing by index — the
	// same convention runInto uses for RunInto results.
	oldPhases := dst.Phases
	dst.Phases = par.Resize(dst.Phases, len(src.Phases))
	for i, ph := range src.Phases {
		var trace []float64
		if i < len(oldPhases) {
			trace = oldPhases[i].Modularity[:0]
		}
		ph.Modularity = append(trace, ph.Modularity...)
		dst.Phases[i] = ph
	}
	oldLevels := dst.Levels
	dst.Levels = par.Resize(dst.Levels, len(src.Levels))
	for i, level := range src.Levels {
		var dl []int32
		if i < len(oldLevels) {
			dl = oldLevels[i]
		}
		dl = par.Resize(dl, len(level))
		copy(dl, level)
		dst.Levels[i] = dl
	}
	return dst
}

// stopRequested polls the run's cancellation source: once the context is
// done the flag latches, so every later check — including the per-chunk
// checks inside sweep bodies reading the same flag — is a single atomic
// load. Fault-injection builds may force a strike here (the
// cancel-at-chunk-N fault): it latches the same flag a real cancellation
// would, so the injected abort exercises exactly the production path.
func stopRequested(ctx context.Context, c *par.Cancel) bool {
	if faults.ShouldCancel(faults.EngineBarrier) {
		c.Set()
	}
	if c.Canceled() {
		return true
	}
	if ctx != nil && ctx.Err() != nil {
		c.Set()
		return true
	}
	return false
}

// cancelErr returns the error a canceled run reports. The nil-ctx case is
// reachable only under fault injection (a forced barrier strike during a
// context-free Run); it reports plain context.Canceled.
func cancelErr(ctx context.Context) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return context.Canceled
}

// nextSlot returns the coarse-graph slot for the current rebuild depth,
// growing the slot list on first descent past the previous maximum.
func (e *Engine) nextSlot() *graphSlot {
	if e.slot == len(e.slots) {
		e.slots = append(e.slots, &graphSlot{})
	}
	s := e.slots[e.slot]
	e.slot++
	return s
}

// rebuild coarsens g by membership into the next pooled graph slot.
func (e *Engine) rebuild(g *graph.Graph, membership []int32, numComm, workers int) *graph.Graph {
	return rebuildInto(&e.rb, e.nextSlot(), g, membership, numComm, workers)
}

// resolveArcLayout maps the run options plus the input graph to the concrete
// layout the engine's own graphs (VF-compressed, coarse) are built with:
// ArcLayoutAuto inherits the input's layout, the explicit settings force one.
func resolveArcLayout(opts Options, g *graph.Graph) graph.Layout {
	switch opts.ArcLayout {
	case ArcLayoutSplit:
		return graph.LayoutSplit
	case ArcLayoutInterleaved:
		return graph.LayoutInterleaved
	default:
		return g.Layout()
	}
}

// foldCtx carries the membership-fold inputs into the captureless loop body.
type foldCtx struct {
	total []int32 // original-vertex membership, updated in place
	phase []int32 // phase membership over the current coarse graph
}

func foldMembership(c *foldCtx, lo, hi int) {
	for i := lo; i < hi; i++ {
		c.total[i] = c.phase[c.total[i]]
	}
}

// nsCtx carries the CPM node-size re-aggregation state into the captureless
// loop bodies.
type nsCtx struct {
	membership []int32
	nodeSize   []int64
	hist       [][]int64
	next       []int64
}

// reaggregateNodeSizes computes the next phase's per-community node sizes in
// parallel (per-worker partial histograms merged in worker order — integer
// sums, so the result is bit-identical to the former serial loop for any
// worker count), replacing the last serial step of the inter-phase rebuild.
func (e *Engine) reaggregateNodeSizes(membership []int32, nodeSize []int64, nc, workers int) []int64 {
	next := par.Resize(e.nsAlt, nc)
	nv := len(membership)
	nw := par.Workers(workers, nv)
	e.arena.Reset()
	hist := par.Resize(e.nsHist, nw)
	e.nsHist = hist
	for w := range hist {
		hist[w] = e.arena.Int64(nc)
	}
	ctx := &e.nsc
	*ctx = nsCtx{membership: membership, nodeSize: nodeSize, hist: hist, next: next}
	par.ForStaticCtx(ctx, nv, workers, func(c *nsCtx, w, lo, hi int) {
		h := c.hist[w]
		for v := lo; v < hi; v++ {
			h[c.membership[v]] += c.nodeSize[v]
		}
	})
	par.ForChunkCtx(ctx, nc, workers, 0, func(c *nsCtx, lo, hi int) {
		for t := lo; t < hi; t++ {
			var s int64
			for w := range c.hist {
				s += c.hist[w][t]
			}
			c.next[t] = s
		}
	})
	*ctx = nsCtx{}
	// Ping-pong: the previous sizes become the next round's spare buffer.
	e.nsAlt = nodeSize
	e.nodeSize = next
	return next
}

// runPhase executes the iterations of one phase per Algorithm 1 and returns
// the dense membership (aliasing the engine's pooled buffer — consumed by the
// fold and rebuild before the next phase), the trace, and the final score.
// colorSets is nil for uncolored phases; arcEven marks arc-rebalanced sets
// (see phaseState.arcEvenSets); modBuf, when non-nil, is recycled backing for
// the per-iteration score trace.
func (e *Engine) runPhase(g *graph.Graph, threshold float64, colorSets *coloring.Coloring, arcEven bool, nodeSize []int64, modBuf []float64) ([]int32, PhaseStats, float64, bool) {
	opts := e.opts
	workers := opts.Workers
	st := &e.st
	st.reset(g, opts, nodeSize, workers)
	st.arcEvenSets = arcEven
	st.ctx, st.cancel = e.runCtx, &e.cancel
	stats := PhaseStats{VertexCount: g.N(), Modularity: modBuf[:0]}
	prevQ := st.score(workers)
	for iter := 0; opts.MaxIterations == 0 || iter < opts.MaxIterations; iter++ {
		if st.stop() {
			st.ctx = nil
			return nil, stats, prevQ, true
		}
		switch {
		case colorSets != nil:
			st.sweepColored(colorSets.Sets, workers)
		case opts.Async:
			st.sweepAsync(workers)
		default:
			st.sweepUncolored(workers)
		}
		q := st.score(workers)
		stats.Iterations++
		stats.Modularity = append(stats.Modularity, q)
		if q-prevQ < threshold {
			prevQ = q
			break
		}
		prevQ = q
	}
	if st.stop() {
		st.ctx = nil
		return nil, stats, prevQ, true
	}
	st.ctx = nil
	var dense []int32
	if opts.SerialRenumber {
		dense = renumberSerial(st.curr)
	} else {
		out := par.Resize(e.denseOut, g.N())
		e.denseOut = out
		occ := par.Resize(e.occupied, g.N()+1)
		e.occupied = occ
		renumberParallelInto(out, occ, st.curr, workers)
		dense = out
	}
	return dense, stats, prevQ, false
}

// RunInto is Run recycling a previous Result: res's membership, phase, trace
// and hierarchy storage is reused (and the returned pointer is res itself),
// so a warmed engine re-running a same-shaped graph allocates nothing at
// all. The previous contents of res are invalidated. A nil res allocates a
// fresh Result, which is what Run passes.
func (e *Engine) RunInto(g *graph.Graph, res *Result) *Result {
	res, _ = e.runInto(nil, g, res)
	return res
}

// runInto is the shared pipeline behind Run/RunInto/RunCtx/RunIntoCtx. A nil
// ctx disables cancellation entirely; with a context, cancellation is polled
// at the level-loop and phase-sweep barriers and the error is ctx.Err().
func (e *Engine) runInto(ctx context.Context, g *graph.Graph, res *Result) (*Result, error) {
	opts := e.opts
	workers := opts.Workers
	n := g.N()
	e.slot = 0
	e.runCtx = ctx
	e.cancel.Reset()
	defer func() { e.runCtx = nil }()
	faults.Maybe(faults.EngineRun)

	if res == nil {
		res = &Result{}
	}
	oldPhases := res.Phases
	oldLevels := res.Levels
	res.Phases = res.Phases[:0]
	res.Levels = res.Levels[:0]
	res.Membership = par.Resize(res.Membership, n)
	res.NumCommunities = 0
	res.Modularity = 0
	res.TotalIterations = 0
	res.Timing = Breakdown{}
	res.Degraded = false
	res.Incremental = false
	par.ForChunkCtx(res.Membership, n, workers, 0, func(mem []int32, lo, hi int) {
		for i := lo; i < hi; i++ {
			mem[i] = int32(i)
		}
	})

	cur := g
	// Every graph the ENGINE builds — the VF-compressed graph and each
	// inter-phase coarse graph — is converted to this layout; the caller's
	// input graph itself is never converted in place (it may be shared).
	coarseLayout := resolveArcLayout(opts, g)

	if stopRequested(ctx, &e.cancel) {
		return nil, cancelErr(ctx)
	}

	// Step 1: VF preprocessing (§5.3).
	if opts.VertexFollowing && n > 0 {
		t0 := time.Now()
		maxRounds := 1
		if opts.VFChainCompression {
			maxRounds = 64
		}
		// The composed VF mapping folds directly into res.Membership (already
		// the identity), avoiding a per-run mapping allocation.
		compressed, rounds := e.vertexFollowChain(cur, workers, maxRounds, res.Membership)
		if rounds > 0 {
			cur = compressed
			cur.SetLayout(coarseLayout, workers)
		}
		res.Timing.VF = time.Since(t0)
	}

	// Under CPM, nodeSize tracks how many original vertices each
	// (meta-)vertex represents; nil under modularity.
	var nodeSize []int64
	if opts.Objective == ObjCPM {
		// The ping-pong of reaggregateNodeSizes can leave the largest buffer
		// in the spare slot at the end of a run; start from whichever of the
		// pair has the bigger capacity so warm runs never re-allocate.
		if cap(e.nsAlt) > cap(e.nodeSize) {
			e.nodeSize, e.nsAlt = e.nsAlt, e.nodeSize
		}
		nodeSize = par.Resize(e.nodeSize, cur.N())
		e.nodeSize = nodeSize
		for i := range nodeSize {
			nodeSize[i] = 1
		}
	}

	prevQ := -1e18
	colorEnabled := opts.Coloring != ColorOff
	for phase := 0; opts.MaxPhases == 0 || phase < opts.MaxPhases; phase++ {
		if cur.N() == 0 {
			break
		}
		if stopRequested(ctx, &e.cancel) {
			return nil, cancelErr(ctx)
		}
		// Step 2: coloring decision for this phase (§6.1 policy).
		colored := colorEnabled
		if opts.Coloring == ColorFirstPhase && phase > 0 {
			colored = false
		}
		if cur.N() < opts.ColoringVertexCutoff {
			colored = false
		}
		var cs *coloring.Coloring
		var colorTime time.Duration
		var colorRSD, colorArcRSD float64
		arcEven := false
		if colored {
			t0 := time.Now()
			switch {
			case opts.Distance2Coloring:
				cs = coloring.ParallelDistance2With(cur, workers, e.colorSc)
			case opts.JonesPlassmann:
				cs = coloring.JonesPlassmannWith(cur, workers, uint64(phase)+1, e.colorSc)
			default:
				cs = coloring.ParallelWith(cur, workers, e.colorSc)
			}
			balance := opts.ColorBalance
			var cst coloring.Stats
			statsReady := false
			if balance == BalanceAuto {
				// Adaptive mode (§6.2 follow-on): rebalance by arcs exactly
				// when the base coloring's arc-load skew is bad enough to
				// cost more than the repair, measured by ArcRSD — the metric
				// the colored sweep's straggler time actually follows.
				cst = cs.ComputeStatsOn(cur)
				statsReady = true
				if cst.ArcRSD > opts.AutoBalanceArcRSD {
					balance = BalanceArcs
				} else {
					balance = BalanceOff
				}
			}
			if balance != BalanceOff {
				by := coloring.BalanceByVertices
				if balance == BalanceArcs {
					by = coloring.BalanceByArcs
					arcEven = true
				}
				// The rebalancer must honor the base coloring's distance:
				// moving a vertex of a distance-2 coloring while checking
				// only distance-1 neighbors silently breaks the invariant.
				cs = coloring.Rebalance(cur, cs, coloring.RebalanceOptions{
					Workers:   workers,
					By:        by,
					Distance2: opts.Distance2Coloring,
					Scratch:   e.rebalSc,
				})
				statsReady = false
			}
			colorTime = time.Since(t0)
			if !statsReady {
				cst = cs.ComputeStatsOn(cur)
			}
			colorRSD, colorArcRSD = cst.RSD, cst.ArcRSD
		}
		threshold := opts.FinalThreshold
		if colored {
			threshold = opts.ColoredThreshold
		}

		// Step 3: iterations. The per-iteration score trace recycles the
		// backing of the previous run's same-index phase when RunInto was
		// given one (read before this phase's stats are appended over it).
		var modBuf []float64
		if phase < len(oldPhases) {
			modBuf = oldPhases[phase].Modularity
		}
		t0 := time.Now()
		membership, stats, q, aborted := e.runPhase(cur, threshold, cs, arcEven, nodeSize, modBuf)
		if aborted {
			return nil, cancelErr(ctx)
		}
		stats.ClusterTime = time.Since(t0)
		stats.Colored = colored
		if cs != nil {
			stats.NumColors = cs.NumColors
			stats.ColorSetRSD = colorRSD
			stats.ColorArcRSD = colorArcRSD
		}
		stats.ColoringTime = colorTime

		res.TotalIterations += stats.Iterations
		res.Timing.Coloring += colorTime
		res.Timing.Clustering += stats.ClusterTime

		// Fold the phase assignment into original-vertex membership.
		fold := &e.fold
		*fold = foldCtx{total: res.Membership, phase: membership}
		par.ForChunkCtx(fold, n, workers, 0, foldMembership)
		*fold = foldCtx{}
		if opts.KeepHierarchy {
			var level []int32
			if phase < len(oldLevels) {
				level = par.Resize(oldLevels[phase], n)
			} else {
				level = make([]int32, n)
			}
			copy(level, res.Membership)
			res.Levels = append(res.Levels, level)
		}
		res.Modularity = q
		gain := q - prevQ
		prevQ = q

		nc := int(maxInt32(membership)) + 1
		noMerge := nc == cur.N()

		// Termination / coloring-policy transitions (§6.1): colored phases
		// continue while they deliver at least ColoredThreshold gain; once
		// they do not, coloring is dropped and the remaining phases run to
		// the fine FinalThreshold.
		if colored {
			if gain < opts.ColoredThreshold {
				colorEnabled = false
			}
		} else if gain < opts.FinalThreshold && phase > 0 {
			res.Phases = append(res.Phases, stats)
			break
		}
		if noMerge && !colored {
			res.Phases = append(res.Phases, stats)
			break
		}

		// Step 4: rebuild for the next phase (§5.5).
		t0 = time.Now()
		if !noMerge {
			if nodeSize != nil {
				nodeSize = e.reaggregateNodeSizes(membership, nodeSize, nc, workers)
			}
			cur = e.rebuild(cur, membership, nc, workers)
			cur.SetLayout(coarseLayout, workers)
		}
		stats.RebuildTime = time.Since(t0)
		res.Timing.Rebuild += stats.RebuildTime
		res.Phases = append(res.Phases, stats)
	}

	res.NumCommunities = int(maxInt32(res.Membership)) + 1
	if n == 0 {
		res.NumCommunities = 0
	}
	return res, nil
}
