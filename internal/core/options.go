// Package core implements Grappolo, the paper's parallel Louvain community
// detection (§5): lock-free parallel vertex sweeps driven by the previous
// iteration's community state (Algorithm 1), the singlet and generalized
// minimum-label heuristics (§5.1), distance-1 coloring with the multi-phase
// coloring policy (§5.2, §6.3), vertex-following preprocessing (§5.3), and
// a parallel graph rebuild between phases (§5.5).
package core

import (
	"fmt"
	"math"
	"time"
)

// ColoringMode selects how coloring preprocessing is applied across phases.
type ColoringMode int

const (
	// ColorOff disables coloring (the paper's "baseline" and
	// "baseline + VF" variants).
	ColorOff ColoringMode = iota
	// ColorFirstPhase colors only the first phase's input (the Table 4
	// "first phase coloring" comparison scheme).
	ColorFirstPhase
	// ColorMultiPhase applies coloring to every phase until the vertex
	// count drops below ColoringVertexCutoff or the inter-phase modularity
	// gain drops below ColoredThreshold (§6.1, the paper's default
	// "baseline + VF + Color" policy).
	ColorMultiPhase
)

// ColorBalance selects whether (and by which load metric) color sets are
// rebalanced after coloring — the paper's proposed fix for the uk-2002
// color-set skew (§6.2).
type ColorBalance int

const (
	// BalanceOff applies no rebalancing after coloring.
	BalanceOff ColorBalance = iota
	// BalanceVertices evens the per-color vertex counts (the balanced
	// coloring as the paper frames it).
	BalanceVertices
	// BalanceArcs evens the per-color total ARC counts. The colored sweep's
	// work is proportional to member arcs, not vertices, so this targets
	// the actual straggler cost on hub-skewed inputs.
	BalanceArcs
	// BalanceAuto measures the base coloring's arc-load skew each phase and
	// applies arc rebalancing only when its ArcRSD exceeds
	// Options.AutoBalanceArcRSD — paying the repair exactly on the inputs
	// (like uk-2002) whose skew would otherwise serialize the colored
	// sweeps, and skipping it on already-balanced colorings.
	BalanceAuto
)

// ArcLayout selects the CSR arc storage layout the sweep kernels consume
// on the COARSENED graphs the pipeline builds between phases. The input
// graph is caller-owned and is never converted in place — choose its layout
// at construction (graph.Builder.SetLayout / graph.FromEdgesLayout) or with
// graph.Graph.SetLayout before handing it over.
type ArcLayout int

const (
	// ArcLayoutAuto inherits the input graph's layout: a split input yields
	// split coarse graphs, an interleaved input yields interleaved ones.
	ArcLayoutAuto ArcLayout = iota
	// ArcLayoutSplit forces the classic two-stream CSR (neighbor ids and
	// weights in separate arrays) on coarse graphs.
	ArcLayoutSplit
	// ArcLayoutInterleaved forces the packed one-stream CSR (16-byte
	// (id, weight) arcs) on coarse graphs; the sweep kernels then read one
	// sequential stream per row instead of gathering from two.
	ArcLayoutInterleaved
)

// String names the layout policy for flags and study tables.
func (l ArcLayout) String() string {
	switch l {
	case ArcLayoutAuto:
		return "auto"
	case ArcLayoutSplit:
		return "split"
	case ArcLayoutInterleaved:
		return "interleaved"
	default:
		return "unknown"
	}
}

// Objective selects the quality function being optimized.
type Objective int

const (
	// ObjModularity is Eq. (3) standard modularity — the paper's objective.
	ObjModularity Objective = iota
	// ObjCPM is the constant Potts model of Traag et al. (the paper's
	// ref. [6]), listed in future work (iv) as the resolution-limit-free
	// alternative. The penalty is γ·n_C(n_C−1)/2 over ORIGINAL vertex
	// counts; scores are normalized by m. Not compatible with
	// VertexFollowing (Lemma 3 is a modularity result).
	ObjCPM
)

// Options configure a parallel Louvain run. The zero value, passed through
// Defaults, reproduces the paper's baseline configuration.
type Options struct {
	// Workers is the number of parallel workers (threads in the paper's
	// terminology). <= 0 selects GOMAXPROCS.
	Workers int

	// VertexFollowing enables the VF preprocessing step (§5.3): all
	// single-degree vertices are merged into their neighbor before phase 1.
	VertexFollowing bool

	// VFChainCompression additionally repeats VF passes until no
	// single-degree vertex remains, compressing hanging chains (the
	// extension discussed at the end of §5.3).
	VFChainCompression bool

	// Coloring selects the coloring policy.
	Coloring ColoringMode

	// ColorBalance rebalances color-set loads after coloring (the paper's
	// proposed fix for the uk-2002 skew, §6.2): off, per-set vertex counts,
	// or per-set total arc counts. The rebalancer respects the coloring
	// distance, so it composes with Distance2Coloring.
	ColorBalance ColorBalance

	// BalancedColoring is the legacy switch for vertex-count rebalancing.
	//
	// Deprecated: set ColorBalance to BalanceVertices instead. When set and
	// ColorBalance is BalanceOff, Defaults maps it to BalanceVertices.
	BalancedColoring bool

	// AutoBalanceArcRSD is the per-phase ArcRSD threshold above which
	// BalanceAuto applies arc rebalancing (<= 0: 0.5). An evenly loaded
	// coloring sits well below 0.5; the skewed colorings the paper blames
	// for uk-2002's poor speedup (§6.2) sit far above it.
	AutoBalanceArcRSD float64

	// Distance2Coloring uses distance-2 instead of distance-1 coloring
	// (§5.2 discusses distance-k variants). Implies more colors and less
	// parallelism per set.
	Distance2Coloring bool

	// JonesPlassmann selects the Jones–Plassmann coloring instead of the
	// default speculate-and-resolve greedy — the other classic parallel
	// coloring benchmarked by the paper's reference [12]; exposed for
	// ablation of the preprocessing choice. Ignored with Distance2Coloring.
	JonesPlassmann bool

	// ColoredThreshold is the net modularity gain threshold used while
	// phases are colored. Paper default 1e-2 (§6.1; varied in Table 5).
	ColoredThreshold float64

	// FinalThreshold is the termination threshold for uncolored phases.
	// Paper default 1e-6.
	FinalThreshold float64

	// ColoringVertexCutoff stops coloring once a phase's input has fewer
	// vertices. Paper default 100000; tests use smaller graphs and set
	// this explicitly.
	ColoringVertexCutoff int

	// MaxIterations caps iterations per phase; 0 = unlimited.
	MaxIterations int
	// MaxPhases caps phases; 0 = unlimited.
	MaxPhases int

	// Resolution is the γ multiplier on the null-model term (1 = the
	// paper's standard modularity).
	Resolution float64

	// Objective selects the quality function (default ObjModularity).
	Objective Objective
	// CPMGamma is the CPM resolution parameter (required > 0 when
	// Objective is ObjCPM; ignored otherwise).
	CPMGamma float64

	// SerialRenumber forces the community-renumbering step of the rebuild
	// to run serially, reproducing the paper's implementation (§5.5 notes
	// the renumbering "is currently implemented in serial"); the default
	// uses the parallel prefix-sum version the paper lists as future work.
	SerialRenumber bool

	// KeepHierarchy records the community assignment of the ORIGINAL
	// vertices at the end of every phase in Result.Levels — the hierarchy
	// of communities the Louvain method produces (§3): each phase is a
	// coarser level of the dendrogram.
	KeepHierarchy bool

	// DisableMinLabel turns off the generalized minimum-label tie-break
	// (ablation only; the paper's baseline always applies it).
	DisableMinLabel bool

	// ArcLayout selects the arc storage layout of the coarsened graphs the
	// pipeline rebuilds between phases (default ArcLayoutAuto: inherit the
	// input graph's layout). Purely a memory-layout switch — results are
	// bit-identical across layouts.
	ArcLayout ArcLayout

	// Async switches iterations to asynchronous parallel local moves over
	// the LIVE community state (no snapshot, no coloring): each vertex
	// reads whatever its neighbors' assignments are at that instant and
	// moves immediately. This emulates the PLM approach of Staudt &
	// Meyerhenke that the paper compares against in §7. Output varies with
	// scheduling; combine with DisableMinLabel for the faithful PLM
	// emulation.
	Async bool
}

// Defaults returns o with unset fields replaced by the paper's defaults.
func (o Options) Defaults() Options {
	if o.ColoredThreshold <= 0 {
		o.ColoredThreshold = 1e-2
	}
	if o.FinalThreshold <= 0 {
		o.FinalThreshold = 1e-6
	}
	if o.ColoringVertexCutoff <= 0 {
		o.ColoringVertexCutoff = 100000
	}
	if o.Resolution <= 0 {
		o.Resolution = 1
	}
	if o.BalancedColoring && o.ColorBalance == BalanceOff {
		// Canonicalize the deprecated switch: map it and clear it, so a
		// Defaults output always passes Validate (callers commonly pass
		// pre-defaulted options back into Run/NewEngine).
		o.ColorBalance = BalanceVertices
		o.BalancedColoring = false
	}
	if o.AutoBalanceArcRSD <= 0 {
		o.AutoBalanceArcRSD = 0.5
	}
	return o
}

// Validate reports the configuration errors that Defaults would otherwise
// silently clamp or coerce. The zero value and every preset are valid; an
// error means the caller asked for a combination the pipeline either cannot
// honor (CPM without a gamma, VF under CPM) or would quietly reinterpret
// (negative counts clamped to defaults, a field that only acts when a
// sibling field is also set, both the deprecated and the current rebalancing
// switch at once). NewEngine panics on these; the public grappolo package
// surfaces them as errors from grappolo.New.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("core: negative Workers %d (0 selects all CPUs)", o.Workers)
	}
	// NaN slips through every sign test below (NaN < 0 is false), and a NaN
	// threshold would make the iteration loop's gain test never fire — an
	// unbounded run. Reject non-finite values outright.
	for _, f := range [...]struct {
		name string
		v    float64
	}{
		{"ColoredThreshold", o.ColoredThreshold},
		{"FinalThreshold", o.FinalThreshold},
		{"Resolution", o.Resolution},
		{"AutoBalanceArcRSD", o.AutoBalanceArcRSD},
		{"CPMGamma", o.CPMGamma},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("core: %s must be finite, got %v", f.name, f.v)
		}
	}
	if o.ColoredThreshold < 0 {
		return fmt.Errorf("core: negative ColoredThreshold %v", o.ColoredThreshold)
	}
	if o.FinalThreshold < 0 {
		return fmt.Errorf("core: negative FinalThreshold %v", o.FinalThreshold)
	}
	if o.ColoringVertexCutoff < 0 {
		return fmt.Errorf("core: negative ColoringVertexCutoff %d", o.ColoringVertexCutoff)
	}
	if o.MaxIterations < 0 {
		return fmt.Errorf("core: negative MaxIterations %d (0 means unlimited)", o.MaxIterations)
	}
	if o.MaxPhases < 0 {
		return fmt.Errorf("core: negative MaxPhases %d (0 means unlimited)", o.MaxPhases)
	}
	if o.Resolution < 0 {
		return fmt.Errorf("core: negative Resolution %v", o.Resolution)
	}
	if o.AutoBalanceArcRSD < 0 {
		return fmt.Errorf("core: negative AutoBalanceArcRSD %v", o.AutoBalanceArcRSD)
	}
	if o.Coloring < ColorOff || o.Coloring > ColorMultiPhase {
		return fmt.Errorf("core: unknown ColoringMode %d", o.Coloring)
	}
	if o.ColorBalance < BalanceOff || o.ColorBalance > BalanceAuto {
		return fmt.Errorf("core: unknown ColorBalance %d", o.ColorBalance)
	}
	if o.ArcLayout < ArcLayoutAuto || o.ArcLayout > ArcLayoutInterleaved {
		return fmt.Errorf("core: unknown ArcLayout %d", o.ArcLayout)
	}
	switch o.Objective {
	case ObjModularity:
	case ObjCPM:
		if o.CPMGamma <= 0 {
			return fmt.Errorf("core: ObjCPM requires CPMGamma > 0 (got %v)", o.CPMGamma)
		}
		if o.VertexFollowing || o.VFChainCompression {
			return fmt.Errorf("core: VertexFollowing requires the modularity objective (Lemma 3 does not hold under CPM)")
		}
	default:
		return fmt.Errorf("core: unknown Objective %d", o.Objective)
	}
	if o.VFChainCompression && !o.VertexFollowing {
		return fmt.Errorf("core: VFChainCompression requires VertexFollowing")
	}
	if o.BalancedColoring && o.ColorBalance != BalanceOff {
		return fmt.Errorf("core: deprecated BalancedColoring combined with ColorBalance; set ColorBalance alone (BalancedColoring alone still maps to BalanceVertices)")
	}
	if o.Async && o.Coloring != ColorOff {
		return fmt.Errorf("core: Async (live-state PLM emulation) is incompatible with coloring")
	}
	return nil
}

// Baseline returns the paper's "baseline" variant (minimum-label only).
func Baseline(workers int) Options {
	return Options{Workers: workers}.Defaults()
}

// BaselineVF returns the "baseline + VF" variant.
func BaselineVF(workers int) Options {
	return Options{Workers: workers, VertexFollowing: true}.Defaults()
}

// BaselineVFColor returns the "baseline + VF + Color" variant, the paper's
// headline configuration.
func BaselineVFColor(workers int) Options {
	return Options{
		Workers:         workers,
		VertexFollowing: true,
		Coloring:        ColorMultiPhase,
	}.Defaults()
}

// PLM returns options emulating the label-propagation-style parallel
// Louvain (PLM) of Staudt & Meyerhenke (the paper's ref. [26]), used for
// the §7 related-work comparison: asynchronous live-state local moves
// without coloring or minimum-label heuristics.
func PLM(workers int) Options {
	return Options{
		Workers:         workers,
		Async:           true,
		DisableMinLabel: true,
	}.Defaults()
}

// Breakdown aggregates wall-clock time per algorithm step, the quantities
// plotted in Fig. 8 (coloring / clustering / rebuild) plus VF preprocessing.
type Breakdown struct {
	VF         time.Duration
	Coloring   time.Duration
	Clustering time.Duration
	Rebuild    time.Duration
}

// Total returns the sum of all components.
func (b Breakdown) Total() time.Duration {
	return b.VF + b.Coloring + b.Clustering + b.Rebuild
}

// PhaseStats traces one phase of the run: convergence trajectory for
// Figs. 3–6, per-step timings for Figs. 8–9, and coloring statistics for
// the §6.2 color-skew analysis.
type PhaseStats struct {
	VertexCount int
	Iterations  int
	// Modularity after each iteration of this phase.
	Modularity []float64
	Colored    bool
	NumColors  int
	// ColorSetRSD is the relative standard deviation of color-set vertex
	// counts (meaningful only when Colored).
	ColorSetRSD float64
	// ColorArcRSD is the relative standard deviation of color-set total
	// arc counts — the §6.2 skew metric weighted by actual sweep work
	// (meaningful only when Colored).
	ColorArcRSD  float64
	ColoringTime time.Duration
	ClusterTime  time.Duration
	RebuildTime  time.Duration
}

// Result is the output of a parallel Louvain run.
type Result struct {
	// Membership maps every vertex of the input graph to a dense community
	// id in [0, NumCommunities).
	Membership     []int32
	NumCommunities int
	// Modularity of Membership on the input graph.
	Modularity float64
	// Phases in execution order.
	Phases []PhaseStats
	// TotalIterations across phases (Tables 4 and 5 report these).
	TotalIterations int
	// Timing is the aggregate step breakdown.
	Timing Breakdown
	// Levels, when Options.KeepHierarchy is set, holds the original-vertex
	// community assignment after each phase: Levels[0] is the finest
	// clustering, Levels[len-1] equals Membership.
	Levels [][]int32
	// Degraded is set by the serving layer (grappolo.Guard) when this
	// result was produced under an overload fast profile rather than the
	// configured options: the membership is a valid clustering, but its
	// quality is approximate — fewer phases/iterations or coarser
	// termination thresholds. The engine itself always clears it.
	Degraded bool
	// Incremental is set by the serving layer (grappolo.Cache) when this
	// result was produced by routing an edge delta onto an incremental
	// maintainer seeded from a previously cached membership rather than by
	// a full engine run: the membership is a valid clustering of the
	// request's graph, but its quality tracks the incremental-Louvain
	// update (re-anchored by periodic full runs) instead of being
	// bit-identical to a cold detection. Incremental results carry no
	// Phases/Timing breakdown. The engine itself always clears it.
	Incremental bool
}
