package core

import (
	"math"
	"testing"

	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/seq"
)

func TestAnalyzeCommunitiesTwoCliques(t *testing.T) {
	g := twoCliques()
	membership := make([]int32, 10)
	for i := 5; i < 10; i++ {
		membership[i] = 1
	}
	stats, err := AnalyzeCommunities(g, membership, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("%d communities", len(stats))
	}
	for _, cs := range stats {
		if cs.Size != 5 {
			t.Fatalf("size %d want 5", cs.Size)
		}
		if cs.IntraWeight != 10 { // K5 has 10 edges
			t.Fatalf("intra %v want 10", cs.IntraWeight)
		}
		if cs.CutWeight != 1 { // one bridge
			t.Fatalf("cut %v want 1", cs.CutWeight)
		}
		if cs.Degree != 21 {
			t.Fatalf("a_C %v want 21", cs.Degree)
		}
		// conductance = 1 / min(21, 42-21) = 1/21
		if math.Abs(cs.Conductance-1.0/21.0) > 1e-12 {
			t.Fatalf("conductance %v", cs.Conductance)
		}
	}
	// LocalQ terms must sum to the partition modularity.
	sum := 0.0
	for _, cs := range stats {
		sum += cs.LocalQ
	}
	q := seq.Modularity(g, membership, 1)
	if math.Abs(sum-q) > 1e-12 {
		t.Fatalf("ΣLocalQ=%v but Q=%v", sum, q)
	}
}

func TestAnalyzeCommunitiesSelfLoops(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 0, 4)
	b.AddEdge(0, 1, 1)
	g := b.Build(1)
	stats, err := AnalyzeCommunities(g, []int32{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("%d communities", len(stats))
	}
	cs := stats[0]
	if cs.IntraWeight != 5 { // loop 4 + edge 1
		t.Fatalf("intra %v want 5", cs.IntraWeight)
	}
	if cs.CutWeight != 0 || cs.Conductance != 0 {
		t.Fatalf("cut %v cond %v", cs.CutWeight, cs.Conductance)
	}
	// Single community covering everything: LocalQ = 1 - 1 = 0.
	if math.Abs(cs.LocalQ) > 1e-12 {
		t.Fatalf("LocalQ %v want 0", cs.LocalQ)
	}
}

func TestAnalyzeCommunitiesSortedBySize(t *testing.T) {
	g := generate.MustGenerate(generate.MG1, generate.Small, 0, 4)
	res := Run(g, smallOpts(4))
	stats, err := AnalyzeCommunities(g, res.Membership, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != res.NumCommunities {
		t.Fatalf("%d stats for %d communities", len(stats), res.NumCommunities)
	}
	totalSize := 0
	sumQ := 0.0
	for i, cs := range stats {
		if i > 0 && cs.Size > stats[i-1].Size {
			t.Fatal("not sorted by descending size")
		}
		totalSize += cs.Size
		sumQ += cs.LocalQ
	}
	if totalSize != g.N() {
		t.Fatalf("sizes sum to %d != n %d", totalSize, g.N())
	}
	if math.Abs(sumQ-res.Modularity) > 1e-9 {
		t.Fatalf("ΣLocalQ=%v != Q=%v", sumQ, res.Modularity)
	}
}

func TestAnalyzeCommunitiesErrors(t *testing.T) {
	g := twoCliques()
	if _, err := AnalyzeCommunities(g, []int32{0}, 2); err == nil {
		t.Fatal("want length error")
	}
	bad := make([]int32, 10)
	bad[3] = -1
	if _, err := AnalyzeCommunities(g, bad, 2); err == nil {
		t.Fatal("want invalid-community error")
	}
	empty := graph.NewBuilder(0).Build(1)
	stats, err := AnalyzeCommunities(empty, nil, 2)
	if err != nil || stats != nil {
		t.Fatalf("empty graph: %v %v", stats, err)
	}
}

func TestCommunitySizes(t *testing.T) {
	sizes := CommunitySizes([]int32{0, 1, 1, 2, 2, 2})
	if len(sizes) != 3 || sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 3 {
		t.Fatalf("%v", sizes)
	}
	// Gaps in the id space count 0; empty membership yields nil.
	sizes = CommunitySizes([]int32{3, 3, 0})
	if len(sizes) != 4 || sizes[0] != 1 || sizes[1] != 0 || sizes[2] != 0 || sizes[3] != 2 {
		t.Fatalf("%v", sizes)
	}
	if CommunitySizes(nil) != nil {
		t.Fatal("empty membership should return nil")
	}
}
