package core

import (
	"testing"

	"grappolo/internal/coloring"
	"grappolo/internal/generate"
)

// BenchmarkDecideSweep measures the flat-accumulator decide hot loop in
// isolation: one full uncolored sweep per op (every vertex runs decide
// against the previous iteration's snapshot). This is the kernel the paper's
// Fig. 8 attributes most of the clustering time to.
func BenchmarkDecideSweep(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.ScaleFromEnv(), 0, 0)
	st := newPhaseState(g, Options{Resolution: 1}.Defaults(), nil, 0)
	b.ReportMetric(float64(g.N()), "vertices")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.sweepUncolored(0)
	}
}

// BenchmarkRebuild measures the coarsening step (§5.5, Fig. 9) with the
// accumulator + arena + prefix-sum CSR stitching implementation.
func BenchmarkRebuild(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.ScaleFromEnv(), 0, 0)
	res := Run(g, Options{MaxPhases: 1, Workers: 0}.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rebuild(g, res.Membership, res.NumCommunities, 0)
	}
}

// TestDecideSteadyStateZeroAllocs pins the flat-accumulator invariant the
// refactor exists for: once a phase's scratch pool is allocated, running
// decide over every vertex allocates nothing.
func TestDecideSteadyStateZeroAllocs(t *testing.T) {
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	st := newPhaseState(g, Options{Resolution: 1}.Defaults(), nil, 1)
	copy(st.prev, st.curr)
	st.refreshAggregates(st.prev, 1)
	acc := st.scratch[0]
	n := g.N()
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < n; i++ {
			st.curr[i] = st.decide(i, st.prev, acc, false, false)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decide loop allocates: %v allocs per sweep over %d vertices, want 0", allocs, n)
	}
}

func BenchmarkSweepUncolored(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	st := newPhaseState(g, Options{Resolution: 1}.Defaults(), nil, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.sweepUncolored(0)
	}
}

func BenchmarkSweepColored(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	cs := coloring.Parallel(g, 0)
	st := newPhaseState(g, Options{Resolution: 1}.Defaults(), nil, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.sweepColored(cs.Sets, 0)
	}
}

func BenchmarkSweepAsyncPLM(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	st := newPhaseState(g, PLM(0), nil, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.sweepAsync(0)
	}
}

func BenchmarkRebuildParallel(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	res := Run(g, Options{MaxPhases: 1, Workers: 0}.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rebuild(g, res.Membership, res.NumCommunities, 0)
	}
}

func BenchmarkVertexFollow(b *testing.B) {
	g := generate.MustGenerate(generate.EuropeOSM, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = vertexFollow(g, 0, false)
	}
}

func BenchmarkModularityParallelKernel(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	res := Run(g, Options{Workers: 0}.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Modularity(g, res.Membership, 1, 0)
	}
}

func BenchmarkFullRunVFColorMedium(b *testing.B) {
	g := generate.MustGenerate(generate.LiveJournal, generate.Medium, 0, 0)
	o := BaselineVFColor(0)
	o.ColoringVertexCutoff = 512
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(g, o)
		if res.Modularity <= 0 {
			b.Fatal("bad run")
		}
	}
}

func BenchmarkAnalyzeCommunities(b *testing.B) {
	g := generate.MustGenerate(generate.MG2, generate.Medium, 0, 0)
	res := Run(g, Options{Workers: 0}.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeCommunities(g, res.Membership, 0); err != nil {
			b.Fatal(err)
		}
	}
}
