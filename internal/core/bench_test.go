package core

import (
	"testing"

	"grappolo/internal/coloring"
	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// benchLayouts enumerates the arc layouts every sweep benchmark runs under,
// so split-vs-interleaved deltas come from one process run (the CI box is
// too noisy to compare across invocations).
var benchLayouts = []struct {
	name   string
	layout graph.Layout
}{
	{"split", graph.LayoutSplit},
	{"inter", graph.LayoutInterleaved},
}

// BenchmarkDecideSweep measures the flat-accumulator decide hot loop in
// isolation: one full uncolored sweep per op (every vertex runs decide
// against the previous iteration's snapshot). This is the kernel the paper's
// Fig. 8 attributes most of the clustering time to. The legacy sub-benchmark
// runs a frozen copy of the pre-monomorphization closure-based decide over
// the split layout, so the kernel speedup is measured in-process instead of
// across binaries.
func BenchmarkDecideSweep(b *testing.B) {
	run := func(b *testing.B, layout graph.Layout, sweep func(*phaseState)) {
		g := generate.MustGenerate(generate.RGG, generate.ScaleFromEnv(), 0, 0)
		g.SetLayout(layout, 0)
		st := newPhaseState(g, Options{Resolution: 1}.Defaults(), nil, 0)
		b.ReportMetric(float64(g.N()), "vertices")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(st)
		}
	}
	b.Run("legacy", func(b *testing.B) {
		run(b, graph.LayoutSplit, sweepUncoloredLegacy)
	})
	for _, bl := range benchLayouts {
		b.Run(bl.name, func(b *testing.B) {
			run(b, bl.layout, func(st *phaseState) { st.sweepUncolored(0) })
		})
	}
}

// sweepUncoloredLegacy replays the pre-PR-8 uncolored sweep: the same
// chunking, but the closure-based decide with per-arc atomicity dispatch.
// Kept verbatim as the in-process baseline for BenchmarkDecideSweep/legacy.
func sweepUncoloredLegacy(st *phaseState) {
	copy(st.prev, st.curr)
	st.refreshAggregates(st.prev, 0)
	par.ForChunkPrefixCtx(st, st.g.ArcOffsets()[:st.sweepOwn+1], 0, func(st *phaseState, w, lo, hi int) {
		acc := st.scratch[w]
		for i := lo; i < hi; i++ {
			st.curr[i] = decideLegacy(st, i, st.prev, acc, false, false)
		}
	})
}

func decideLegacy(st *phaseState, i int, membership []int32, acc *par.SparseAccum, atomicAgg, atomicComm bool) int32 {
	g := st.g
	readComm := func(v int32) int32 {
		if atomicComm {
			return atomicLoad32(&membership[v])
		}
		return membership[v]
	}
	ci := readComm(int32(i))
	ki := g.Degree(i)
	nbr, wts := g.Neighbors(i)

	acc.Reset()
	acc.Ensure(ci)
	for t, j := range nbr {
		if int(j) == i {
			continue
		}
		acc.Add(readComm(j), wts[t])
	}

	loadDeg := func(c int32) float64 {
		if atomicAgg {
			return par.LoadFloat64(&st.commDeg[c])
		}
		return st.commDeg[c]
	}
	loadNS := func(c int32) int64 {
		if atomicAgg {
			return atomicLoad64(&st.commNS[c])
		}
		return st.commNS[c]
	}
	sizeOf := func(c int32) int64 {
		if atomicAgg {
			return atomicLoad64(&st.size[c])
		}
		return st.size[c]
	}
	comms := acc.Keys()
	eOwn := acc.Get(ci)
	m := st.m
	best := ci
	bestGain := 0.0
	if st.obj == ObjCPM {
		si := st.nodeSize[i]
		nsOwnLess := loadNS(ci) - si
		for _, ct := range comms[1:] {
			gain := (acc.Get(ct) - eOwn - st.cpmGamma*float64(si)*float64(loadNS(ct)-nsOwnLess)) / m
			switch {
			case gain > bestGain:
				bestGain, best = gain, ct
			case st.minLbl && gain == bestGain && gain > 0 && ct < best:
				best = ct
			}
		}
	} else {
		aOwn := loadDeg(ci) - ki
		for _, ct := range comms[1:] {
			gain := (acc.Get(ct)-eOwn)/m + st.gamma*(2*ki*aOwn-2*ki*loadDeg(ct))/(4*m*m)
			switch {
			case gain > bestGain:
				bestGain, best = gain, ct
			case st.minLbl && gain == bestGain && gain > 0 && ct < best:
				best = ct
			}
		}
	}
	if best == ci || bestGain <= 0 {
		return ci
	}
	if st.minLbl && best > ci && sizeOf(ci) == 1 && sizeOf(best) == 1 {
		return ci
	}
	return best
}

// BenchmarkRebuild measures the coarsening step (§5.5, Fig. 9) with the
// accumulator + arena + prefix-sum CSR stitching implementation.
func BenchmarkRebuild(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.ScaleFromEnv(), 0, 0)
	res := Run(g, Options{MaxPhases: 1, Workers: 0}.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rebuild(g, res.Membership, res.NumCommunities, 0)
	}
}

// TestDecideSteadyStateZeroAllocs pins the flat-accumulator invariant the
// refactor exists for: once a phase's scratch pool is allocated, running
// decide over every vertex allocates nothing — under both arc layouts, so
// the monomorphic split and interleaved kernels are gated alike.
func TestDecideSteadyStateZeroAllocs(t *testing.T) {
	for _, bl := range benchLayouts {
		g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
		g.SetLayout(bl.layout, 1)
		st := newPhaseState(g, Options{Resolution: 1}.Defaults(), nil, 1)
		copy(st.prev, st.curr)
		st.refreshAggregates(st.prev, 1)
		acc := st.scratch[0]
		n := g.N()
		allocs := testing.AllocsPerRun(20, func() {
			for i := 0; i < n; i++ {
				st.curr[i] = st.decide(i, st.prev, acc, false, false)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: steady-state decide loop allocates: %v allocs per sweep over %d vertices, want 0", bl.name, allocs, n)
		}
	}
}

func BenchmarkSweepUncolored(b *testing.B) {
	for _, bl := range benchLayouts {
		b.Run(bl.name, func(b *testing.B) {
			g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
			g.SetLayout(bl.layout, 0)
			st := newPhaseState(g, Options{Resolution: 1}.Defaults(), nil, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.sweepUncolored(0)
			}
		})
	}
}

func BenchmarkSweepColored(b *testing.B) {
	for _, bl := range benchLayouts {
		b.Run(bl.name, func(b *testing.B) {
			g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
			g.SetLayout(bl.layout, 0)
			cs := coloring.Parallel(g, 0)
			st := newPhaseState(g, Options{Resolution: 1}.Defaults(), nil, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.sweepColored(cs.Sets, 0)
			}
		})
	}
}

func BenchmarkSweepAsyncPLM(b *testing.B) {
	for _, bl := range benchLayouts {
		b.Run(bl.name, func(b *testing.B) {
			g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
			g.SetLayout(bl.layout, 0)
			st := newPhaseState(g, PLM(0), nil, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.sweepAsync(0)
			}
		})
	}
}

func BenchmarkRebuildParallel(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	res := Run(g, Options{MaxPhases: 1, Workers: 0}.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rebuild(g, res.Membership, res.NumCommunities, 0)
	}
}

func BenchmarkVertexFollow(b *testing.B) {
	g := generate.MustGenerate(generate.EuropeOSM, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = vertexFollow(g, 0, false)
	}
}

func BenchmarkModularityParallelKernel(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	res := Run(g, Options{Workers: 0}.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Modularity(g, res.Membership, 1, 0)
	}
}

func BenchmarkFullRunVFColorMedium(b *testing.B) {
	g := generate.MustGenerate(generate.LiveJournal, generate.Medium, 0, 0)
	o := BaselineVFColor(0)
	o.ColoringVertexCutoff = 512
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(g, o)
		if res.Modularity <= 0 {
			b.Fatal("bad run")
		}
	}
}

func BenchmarkAnalyzeCommunities(b *testing.B) {
	g := generate.MustGenerate(generate.MG2, generate.Medium, 0, 0)
	res := Run(g, Options{Workers: 0}.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeCommunities(g, res.Membership, 0); err != nil {
			b.Fatal(err)
		}
	}
}
