package core

import (
	"testing"

	"grappolo/internal/coloring"
	"grappolo/internal/generate"
)

func BenchmarkSweepUncolored(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	st := newPhaseState(g, Options{Resolution: 1}.Defaults(), nil, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.sweepUncolored(0)
	}
}

func BenchmarkSweepColored(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	cs := coloring.Parallel(g, 0)
	st := newPhaseState(g, Options{Resolution: 1}.Defaults(), nil, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.sweepColored(cs.Sets, 0)
	}
}

func BenchmarkSweepAsyncPLM(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	st := newPhaseState(g, PLM(0), nil, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.sweepAsync(0)
	}
}

func BenchmarkRebuildParallel(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	res := Run(g, Options{MaxPhases: 1, Workers: 0}.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rebuild(g, res.Membership, res.NumCommunities, 0)
	}
}

func BenchmarkVertexFollow(b *testing.B) {
	g := generate.MustGenerate(generate.EuropeOSM, generate.Medium, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = vertexFollow(g, 0, false)
	}
}

func BenchmarkModularityParallelKernel(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.Medium, 0, 0)
	res := Run(g, Options{Workers: 0}.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Modularity(g, res.Membership, 1, 0)
	}
}

func BenchmarkFullRunVFColorMedium(b *testing.B) {
	g := generate.MustGenerate(generate.LiveJournal, generate.Medium, 0, 0)
	o := BaselineVFColor(0)
	o.ColoringVertexCutoff = 512
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(g, o)
		if res.Modularity <= 0 {
			b.Fatal("bad run")
		}
	}
}

func BenchmarkAnalyzeCommunities(b *testing.B) {
	g := generate.MustGenerate(generate.MG2, generate.Medium, 0, 0)
	res := Run(g, Options{Workers: 0}.Defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeCommunities(g, res.Membership, 0); err != nil {
			b.Fatal(err)
		}
	}
}
