package core

import (
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// vertexFollow computes the VF preprocessing assignment of §5.3: every
// single-degree vertex (exactly one incident edge, which is not a
// self-loop) is merged into its sole neighbor. Lemma 3 guarantees the
// final Louvain solution would co-locate them anyway, so merging a priori
// shrinks the first phase without changing reachable quality.
//
// With chainMode set, the single-NEIGHBOR extension discussed at the end of
// §5.3 also applies: a vertex whose only edges are one edge (i, j) and an
// optional self-loop (i, i) — the shape produced by collapsing a chain tip —
// is merged into j when the explicit lower bound of inequality (10) is
// positive, i.e. ω(i,j) > k_i·k_j / (2m). Repeated passes therefore
// compress hanging chains from the tips inward and stop exactly when the
// negative term of the bound starts to dominate.
//
// It returns a dense community assignment over g's vertices and the number
// of communities. If no vertex qualifies, ok is false and the inputs should
// be used unchanged. The scan and parent resolution are parallel.
func vertexFollow(g *graph.Graph, workers int, chainMode bool) (membership []int32, numComm int, ok bool) {
	n := g.N()
	parent := make([]int32, n)
	m2 := g.TotalWeight() // 2m
	var merged int64
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			parent[i] = int32(i)
			nbr, wts := g.Neighbors(i)
			switch {
			case len(nbr) == 1 && int(nbr[0]) != i:
				// Single-degree vertex: Lemma 3, unconditional merge.
				parent[i] = nbr[0]
				local++
			case chainMode && len(nbr) == 2 && m2 > 0:
				// Single-neighbor vertex: one self-loop + one edge (i, j).
				var j int32 = -1
				var wij float64
				for t, v := range nbr {
					if int(v) != i {
						if j >= 0 {
							j = -1 // two distinct neighbors: not single-neighbor
							break
						}
						j, wij = v, wts[t]
					}
				}
				if j >= 0 && wij > g.Degree(i)*g.Degree(int(j))/m2 {
					parent[i] = j
					local++
				}
			}
		}
		atomicAdd64(&merged, local)
	})
	if merged == 0 {
		return nil, 0, false
	}
	// Break pointer cycles: if i and j point at each other (mutual pair),
	// or longer follow-chains arise in chain mode, resolve each vertex to a
	// representative by path-halving with the minimum-label rule (§5.1):
	// the smallest id on the cycle wins.
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := parent[i]
			if p != int32(i) && parent[p] == int32(i) && p > int32(i) {
				parent[i] = int32(i)
			}
		}
	})
	// In chain mode two adjacent chain vertices may both merge inward,
	// producing pointer chains longer than one hop; contract every chain to
	// its root. Concurrent contraction of overlapping chains is safe (all
	// paths end at the same root) but must use atomics to be well-defined.
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := atomicLoad32(&parent[i])
			for {
				gp := atomicLoad32(&parent[p])
				if gp == p {
					break
				}
				p = gp
			}
			atomicStore32(&parent[i], p)
		}
	})
	membership = renumberParallel(parent, workers)
	numComm = int(maxInt32(membership)) + 1
	return membership, numComm, true
}

// vertexFollowChain repeats VF passes on progressively rebuilt graphs until
// no qualifying vertices remain (or maxRounds is hit). A single round with
// chainMode false is the paper's basic VF; multiple rounds with chainMode
// true implement the chain-compression extension of §5.3. It returns the
// compressed graph and the composed membership mapping g's vertices onto
// it; rounds reports how many VF passes were applied.
func vertexFollowChain(g *graph.Graph, workers, maxRounds int) (*graph.Graph, []int32, int) {
	n := g.N()
	total := make([]int32, n)
	for i := range total {
		total[i] = int32(i)
	}
	cur := g
	rounds := 0
	chainMode := maxRounds > 1
	for rounds < maxRounds {
		membership, nc, ok := vertexFollow(cur, workers, chainMode)
		if !ok {
			break
		}
		rounds++
		cur = rebuild(cur, membership, nc, workers)
		par.ForChunk(n, workers, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				total[i] = membership[total[i]]
			}
		})
	}
	return cur, total, rounds
}

func maxInt32(v []int32) int32 {
	m := int32(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
