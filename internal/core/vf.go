package core

import (
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// vfCtx carries the vertex-following state into the captureless loop bodies
// (pointer-passed; see par.ForChunkWorkerCtx).
type vfCtx struct {
	g         *graph.Graph
	parent    []int32
	merged    *int64
	m2        float64
	chainMode bool
}

func vfScan(c *vfCtx, lo, hi int) {
	local := int64(0)
	for i := lo; i < hi; i++ {
		c.parent[i] = int32(i)
		nbr, wts := c.g.Neighbors(i)
		switch {
		case len(nbr) == 1 && int(nbr[0]) != i:
			// Single-degree vertex: Lemma 3, unconditional merge.
			c.parent[i] = nbr[0]
			local++
		case c.chainMode && len(nbr) == 2 && c.m2 > 0:
			// Single-neighbor vertex: one self-loop + one edge (i, j).
			var j int32 = -1
			var wij float64
			for t, v := range nbr {
				if int(v) != i {
					if j >= 0 {
						j = -1 // two distinct neighbors: not single-neighbor
						break
					}
					j, wij = v, wts[t]
				}
			}
			if j >= 0 && wij > c.g.Degree(i)*c.g.Degree(int(j))/c.m2 {
				c.parent[i] = j
				local++
			}
		}
	}
	atomicAdd64(c.merged, local)
}

func vfBreakPairs(c *vfCtx, lo, hi int) {
	for i := lo; i < hi; i++ {
		p := c.parent[i]
		if p != int32(i) && c.parent[p] == int32(i) && p > int32(i) {
			c.parent[i] = int32(i)
		}
	}
}

func vfContract(c *vfCtx, lo, hi int) {
	for i := lo; i < hi; i++ {
		p := atomicLoad32(&c.parent[i])
		for {
			gp := atomicLoad32(&c.parent[p])
			if gp == p {
				break
			}
			p = gp
		}
		atomicStore32(&c.parent[i], p)
	}
}

// vertexFollow computes the VF preprocessing assignment of §5.3: every
// single-degree vertex (exactly one incident edge, which is not a
// self-loop) is merged into its sole neighbor. Lemma 3 guarantees the
// final Louvain solution would co-locate them anyway, so merging a priori
// shrinks the first phase without changing reachable quality.
//
// With chainMode set, the single-NEIGHBOR extension discussed at the end of
// §5.3 also applies: a vertex whose only edges are one edge (i, j) and an
// optional self-loop (i, i) — the shape produced by collapsing a chain tip —
// is merged into j when the explicit lower bound of inequality (10) is
// positive, i.e. ω(i,j) > k_i·k_j / (2m). Repeated passes therefore
// compress hanging chains from the tips inward and stop exactly when the
// negative term of the bound starts to dominate.
//
// It returns a dense community assignment over g's vertices (aliasing the
// engine's pooled renumber buffer, valid until the next renumbering) and the
// number of communities. If no vertex qualifies, ok is false and the inputs
// should be used unchanged. The scan and parent resolution are parallel.
func (e *Engine) vertexFollow(g *graph.Graph, workers int, chainMode bool) (membership []int32, numComm int, ok bool) {
	n := g.N()
	parent := par.Resize(e.vfParent, n)
	e.vfParent = parent
	e.vfMerged = 0
	ctx := &e.vfc
	*ctx = vfCtx{g: g, parent: parent, merged: &e.vfMerged,
		m2: g.TotalWeight(), chainMode: chainMode}
	par.ForChunkCtx(ctx, n, workers, 0, vfScan)
	if e.vfMerged == 0 {
		*ctx = vfCtx{}
		return nil, 0, false
	}
	// Break pointer cycles: if i and j point at each other (mutual pair),
	// or longer follow-chains arise in chain mode, resolve each vertex to a
	// representative by path-halving with the minimum-label rule (§5.1):
	// the smallest id on the cycle wins.
	par.ForChunkCtx(ctx, n, workers, 0, vfBreakPairs)
	// In chain mode two adjacent chain vertices may both merge inward,
	// producing pointer chains longer than one hop; contract every chain to
	// its root. Concurrent contraction of overlapping chains is safe (all
	// paths end at the same root) but must use atomics to be well-defined.
	par.ForChunkCtx(ctx, n, workers, 0, vfContract)
	*ctx = vfCtx{}
	out := par.Resize(e.denseOut, n)
	e.denseOut = out
	occ := par.Resize(e.occupied, n+1)
	e.occupied = occ
	renumberParallelInto(out, occ, parent, workers)
	numComm = int(maxInt32(out)) + 1
	return out, numComm, true
}

// vertexFollowChain repeats VF passes on progressively rebuilt graphs until
// no qualifying vertices remain (or maxRounds is hit), folding the composed
// mapping into total (which must come in as the identity over g's vertices).
// A single round with chainMode false is the paper's basic VF; multiple
// rounds with chainMode true implement the chain-compression extension of
// §5.3. It returns the compressed graph (owned by the engine's graph slots)
// and how many VF passes were applied.
func (e *Engine) vertexFollowChain(g *graph.Graph, workers, maxRounds int, total []int32) (*graph.Graph, int) {
	n := len(total)
	cur := g
	rounds := 0
	chainMode := maxRounds > 1
	for rounds < maxRounds {
		membership, nc, ok := e.vertexFollow(cur, workers, chainMode)
		if !ok {
			break
		}
		rounds++
		cur = e.rebuild(cur, membership, nc, workers)
		fold := &e.fold
		*fold = foldCtx{total: total, phase: membership}
		par.ForChunkCtx(fold, n, workers, 0, foldMembership)
		*fold = foldCtx{}
	}
	return cur, rounds
}

// vertexFollow is the standalone form used by tests and benchmarks; the
// returned membership is freshly allocated.
func vertexFollow(g *graph.Graph, workers int, chainMode bool) ([]int32, int, bool) {
	e := &Engine{}
	membership, nc, ok := e.vertexFollow(g, workers, chainMode)
	if !ok {
		return nil, 0, false
	}
	out := make([]int32, len(membership))
	copy(out, membership)
	return out, nc, true
}

// vertexFollowChain is the standalone form used by tests: it allocates the
// composed mapping.
func vertexFollowChain(g *graph.Graph, workers, maxRounds int) (*graph.Graph, []int32, int) {
	e := &Engine{}
	total := make([]int32, g.N())
	for i := range total {
		total[i] = int32(i)
	}
	cur, rounds := e.vertexFollowChain(g, workers, maxRounds, total)
	return cur, total, rounds
}

func maxInt32(v []int32) int32 {
	m := int32(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
