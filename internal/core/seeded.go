package core

import (
	"context"
	"fmt"

	"grappolo/internal/graph"
)

// SweepSeeded runs the local-move iterations of a single phase on g with the
// initial membership SEEDED from seed instead of singletons, and the vertex
// suffix [own, g.N()) PINNED: pinned vertices contribute their degrees to
// community aggregates and attract movable neighbors, but never change
// community themselves. It is the per-shard kernel of the sharded engine —
// locals occupy [0, own), frozen ghost images of other shards' boundary
// vertices occupy the pinned suffix (exactly the layout
// graph.GhostSubgraph produces), and each synchronized exchange round
// re-seeds from the latest cross-shard labels and sweeps again.
//
// Sweeps are always uncolored snapshot sweeps regardless of the engine's
// coloring configuration, so the outcome is deterministic for any worker
// count; iteration stops when the modularity gain of a sweep falls below
// the engine's FinalThreshold (or MaxIterations is reached). Labels in seed
// must lie in [0, g.N()); the final membership — drawn from seed's label
// set, pinned entries unchanged — is written into out (length g.N()).
// Returns the iteration count and the final modularity of the assignment on
// g. Only the modularity objective is supported.
//
// The sweep shares the engine's pooled phase scratch: a warmed engine
// re-sweeping a same-shaped graph allocates nothing. Like Run, SweepSeeded
// must not be called concurrently with any other run on the same engine.
func (e *Engine) SweepSeeded(ctx context.Context, g *graph.Graph, seed []int32, own int, out []int32) (int, float64, error) {
	n := g.N()
	if e.opts.Objective == ObjCPM {
		return 0, 0, fmt.Errorf("core: SweepSeeded supports the modularity objective only")
	}
	if len(seed) != n {
		return 0, 0, fmt.Errorf("core: seed length %d != n %d", len(seed), n)
	}
	if len(out) != n {
		return 0, 0, fmt.Errorf("core: out length %d != n %d", len(out), n)
	}
	if own < 0 || own > n {
		return 0, 0, fmt.Errorf("core: pinned-suffix start %d out of range [0,%d]", own, n)
	}
	for i, c := range seed {
		if c < 0 || int(c) >= n {
			return 0, 0, fmt.Errorf("core: seed[%d] = %d out of label range [0,%d)", i, c, n)
		}
	}

	workers := e.opts.Workers
	e.runCtx = ctx
	e.cancel.Reset()
	defer func() { e.runCtx = nil }()

	st := &e.st
	st.reset(g, e.opts, nil, workers)
	copy(st.curr, seed)
	st.sweepOwn = own
	st.ctx, st.cancel = e.runCtx, &e.cancel
	defer func() { st.ctx = nil }()

	threshold := e.opts.FinalThreshold
	prevQ := st.score(workers)
	iters := 0
	for iter := 0; e.opts.MaxIterations == 0 || iter < e.opts.MaxIterations; iter++ {
		if st.stop() {
			return iters, prevQ, cancelErr(ctx)
		}
		st.sweepUncolored(workers)
		q := st.score(workers)
		iters++
		if q-prevQ < threshold {
			prevQ = q
			break
		}
		prevQ = q
	}
	if st.stop() {
		return iters, prevQ, cancelErr(ctx)
	}
	copy(out, st.curr)
	return iters, prevQ, nil
}
