package core

import (
	"math"
	"testing"
	"testing/quick"

	"grappolo/internal/coloring"
	"grappolo/internal/graph"
	"grappolo/internal/par"
	"grappolo/internal/seq"
)

// randomGraph builds an arbitrary valid weighted graph (self-loops,
// isolated vertices, duplicate edges all possible) from fuzz inputs.
func randomGraph(seed uint64, nRaw, mRaw uint16) *graph.Graph {
	rng := par.NewRNG(seed)
	n := int(nRaw%300) + 2
	m := int(mRaw % 2000)
	b := graph.NewBuilder(n)
	for e := 0; e < m; e++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		w := 0.25 + rng.Float64()*4
		b.AddEdge(u, v, w)
	}
	return b.Build(4)
}

// TestPipelineFuzz pushes arbitrary graphs through every variant and checks
// the cross-cutting invariants: valid dense membership, reported modularity
// equals recomputed modularity, Q <= 1, and the graph itself survives
// unmodified.
func TestPipelineFuzz(t *testing.T) {
	variants := []func() Options{
		func() Options { return smallOpts(4) },
		func() Options { return withVF(smallOpts(3)) },
		func() Options { return withColor(withVF(smallOpts(4))) },
		func() Options { return withChain(withVF(smallOpts(2))) },
		func() Options { return PLM(4) },
	}
	f := func(seed uint64, nRaw, mRaw uint16, variantRaw uint8) bool {
		g := randomGraph(seed, nRaw, mRaw)
		before := g.TotalWeight()
		opts := variants[int(variantRaw)%len(variants)]()
		res := Run(g, opts)
		if len(res.Membership) != g.N() {
			t.Logf("membership length %d != %d", len(res.Membership), g.N())
			return false
		}
		seen := map[int32]bool{}
		for _, c := range res.Membership {
			if c < 0 || int(c) >= g.N() {
				t.Logf("community %d out of range", c)
				return false
			}
			seen[c] = true
		}
		if len(seen) != res.NumCommunities {
			t.Logf("NumCommunities=%d distinct=%d", res.NumCommunities, len(seen))
			return false
		}
		q := seq.Modularity(g, res.Membership, 1)
		if math.Abs(q-res.Modularity) > 1e-9 {
			t.Logf("Q mismatch: %v vs %v", res.Modularity, q)
			return false
		}
		if q > 1+1e-12 {
			t.Logf("Q=%v > 1", q)
			return false
		}
		if g.TotalWeight() != before {
			t.Log("input graph mutated")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestColoredSweepAggregateConsistency verifies that the atomically
// maintained community degrees and sizes equal a from-scratch recount after
// every colored iteration — the invariant that makes lock-free updates safe.
func TestColoredSweepAggregateConsistency(t *testing.T) {
	g := randomGraph(77, 200, 1500)
	st := newPhaseState(g, Options{Resolution: 1}.Defaults(), nil, 4)
	cs := coloring.Parallel(g, 4)
	if err := coloring.Verify(g, cs.Colors); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 3; iter++ {
		st.sweepColored(cs.Sets, 4)
		// Recount from scratch.
		n := g.N()
		wantDeg := make([]float64, n)
		wantSize := make([]int64, n)
		for i := 0; i < n; i++ {
			wantDeg[st.curr[i]] += g.Degree(i)
			wantSize[st.curr[i]]++
		}
		for c := 0; c < n; c++ {
			if math.Abs(wantDeg[c]-st.commDeg[c]) > 1e-6 {
				t.Fatalf("iter %d: commDeg[%d]=%v want %v", iter, c, st.commDeg[c], wantDeg[c])
			}
			if wantSize[c] != st.size[c] {
				t.Fatalf("iter %d: size[%d]=%d want %d", iter, c, st.size[c], wantSize[c])
			}
		}
	}
}
