package core

import (
	"testing"

	"grappolo/internal/generate"
	"grappolo/internal/quality"
	"grappolo/internal/seq"
)

func TestKeepHierarchyLevels(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	o := smallOpts(4)
	o.KeepHierarchy = true
	res := Run(g, o)
	if len(res.Levels) != len(res.Phases) {
		t.Fatalf("%d levels for %d phases", len(res.Levels), len(res.Phases))
	}
	last := res.Levels[len(res.Levels)-1]
	for i := range last {
		if last[i] != res.Membership[i] {
			t.Fatal("last level must equal final membership")
		}
	}
}

func TestHierarchyIsNested(t *testing.T) {
	// Each coarser level must be a function of the previous level: two
	// vertices together at level k stay together at every level > k
	// (Louvain phases only merge communities, never split them).
	g := generate.MustGenerate(generate.MG1, generate.Small, 0, 4)
	o := smallOpts(4)
	o.KeepHierarchy = true
	res := Run(g, o)
	for l := 1; l < len(res.Levels); l++ {
		prev, next := res.Levels[l-1], res.Levels[l]
		mapping := make(map[int32]int32)
		for v := range prev {
			if to, ok := mapping[prev[v]]; ok {
				if next[v] != to {
					t.Fatalf("level %d splits community %d of level %d", l, prev[v], l-1)
				}
			} else {
				mapping[prev[v]] = next[v]
			}
		}
	}
}

func TestHierarchyModularityNonDecreasingAcrossLevels(t *testing.T) {
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 4)
	o := smallOpts(4)
	o.KeepHierarchy = true
	res := Run(g, o)
	prevQ := -1.0
	for l, level := range res.Levels {
		q := seq.Modularity(g, level, 1)
		if q < prevQ-1e-9 {
			t.Fatalf("level %d modularity %v < previous %v", l, q, prevQ)
		}
		prevQ = q
	}
}

func TestHierarchyOffByDefault(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 2)
	res := Run(g, smallOpts(2))
	if res.Levels != nil {
		t.Fatal("Levels must be nil unless KeepHierarchy is set")
	}
}

func TestLFRRecoveryAcrossMixing(t *testing.T) {
	// Classic LFR benchmark curve: planted-partition recovery (NMI) is
	// near-perfect at low mixing and degrades as Mu grows.
	nmiAt := func(mu float64) float64 {
		cfg := generate.LFRConfig{
			N: 1500, AvgDegree: 14, MaxDegree: 80,
			DegreeExp: 2.5, CommExp: 1.5, MinComm: 20, MaxComm: 150, Mu: mu,
		}
		g, truth := generate.LFR(cfg, 7, 4)
		res := Run(g, withColor(withVF(smallOpts(4))))
		v, err := quality.NMI(truth, res.Membership)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	low := nmiAt(0.1)
	high := nmiAt(0.6)
	if low < 0.85 {
		t.Fatalf("NMI at Mu=0.1 is %.3f, want >= 0.85", low)
	}
	if high >= low {
		t.Fatalf("NMI did not degrade with mixing: %.3f -> %.3f", low, high)
	}
	t.Logf("LFR NMI: mu=0.1 -> %.3f, mu=0.6 -> %.3f", low, high)
}
