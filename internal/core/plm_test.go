package core

import (
	"math"
	"testing"

	"grappolo/internal/generate"
	"grappolo/internal/seq"
)

func TestPLMProducesValidPartitions(t *testing.T) {
	for _, in := range []generate.Input{generate.CoPapers, generate.MG1, generate.RGG} {
		g := generate.MustGenerate(in, generate.Small, 0, 4)
		res := Run(g, PLM(4))
		if len(res.Membership) != g.N() {
			t.Fatalf("%s: membership length", in)
		}
		q := seq.Modularity(g, res.Membership, 1)
		if math.Abs(q-res.Modularity) > 1e-9 {
			t.Fatalf("%s: reported Q=%v recomputed %v", in, res.Modularity, q)
		}
		if res.Modularity <= 0 {
			t.Fatalf("%s: PLM Q=%v", in, res.Modularity)
		}
	}
}

func TestGrappoloBeatsOrMatchesPLM(t *testing.T) {
	// §7: the paper reports baseline+VF+Color achieving higher modularity
	// than PLM on coPapersDBLP, uk-2002 and Soc-LiveJournal. Asynchronous
	// live-state moves can still do well on easy graphs, so require
	// "within noise or better" on each, and strictly-better on at least
	// one of the three.
	strictlyBetter := 0
	for _, in := range []generate.Input{generate.CoPapers, generate.UK2002, generate.LiveJournal} {
		g := generate.MustGenerate(in, generate.Small, 0, 4)
		o := BaselineVFColor(4)
		o.ColoringVertexCutoff = 32
		gr := Run(g, o)
		plm := Run(g, PLM(4))
		if gr.Modularity < plm.Modularity-0.02 {
			t.Fatalf("%s: grappolo Q=%.4f well below plm %.4f", in, gr.Modularity, plm.Modularity)
		}
		if gr.Modularity > plm.Modularity+1e-9 {
			strictlyBetter++
		}
		t.Logf("%-10s grappolo=%.4f plm=%.4f", in, gr.Modularity, plm.Modularity)
	}
	if strictlyBetter == 0 {
		t.Log("note: PLM matched grappolo on all three small inputs (allowed; paper's claim is at full scale)")
	}
}

func TestAsyncModeRaceFree(t *testing.T) {
	// Exercised under -race in CI: adjacent vertices move concurrently, so
	// this catches any non-atomic membership access in the async path.
	g := generate.MustGenerate(generate.Friendster, generate.Small, 0, 8)
	res := Run(g, PLM(8))
	if res.NumCommunities == 0 {
		t.Fatal("no communities")
	}
}
