package core

import (
	"testing"

	"grappolo/internal/generate"
)

// TestCopyResultIntoDeepAndRecycling pins the shared-result fan-out entry:
// the copy equals the source field for field (including hierarchy levels
// and per-phase traces), is fully independent of it (mutating one never
// shows in the other — the batcher recycles the source immediately after
// fan-out), and recycles the destination's storage so a warm same-shape
// copy allocates nothing.
func TestCopyResultIntoDeepAndRecycling(t *testing.T) {
	g := generate.MustGenerate(generate.RGG, generate.Small, 7, 4)
	for name, opts := range engineConfigs() {
		opts.KeepHierarchy = true
		src := Run(g, opts)

		dst := CopyResultInto(nil, src)
		sameResult(t, name+"/fresh", dst, src)
		for i := range src.Phases {
			if len(dst.Phases[i].Modularity) != len(src.Phases[i].Modularity) {
				t.Fatalf("%s: phase %d trace length differs", name, i)
			}
		}

		// Independence: wreck the copy, the source must not notice.
		dst.Membership[0] = -99
		if len(dst.Levels) > 0 {
			dst.Levels[0][0] = -99
		}
		if len(dst.Phases) > 0 && len(dst.Phases[0].Modularity) > 0 {
			dst.Phases[0].Modularity[0] = -99
		}
		if src.Membership[0] == -99 {
			t.Fatalf("%s: copy aliases source membership", name)
		}
		if len(src.Levels) > 0 && src.Levels[0][0] == -99 {
			t.Fatalf("%s: copy aliases source hierarchy", name)
		}
		if len(src.Phases) > 0 && len(src.Phases[0].Modularity) > 0 && src.Phases[0].Modularity[0] == -99 {
			t.Fatalf("%s: copy aliases source phase trace", name)
		}

		// Recycling: copying over a same-shape destination reuses all its
		// storage and repairs the wreckage.
		again := CopyResultInto(dst, src)
		if again != dst {
			t.Fatalf("%s: CopyResultInto did not return its destination", name)
		}
		sameResult(t, name+"/recycled", dst, src)
	}
}

// TestCopyResultIntoWarmZeroAllocs pins the allocation contract the batcher
// leader path relies on.
func TestCopyResultIntoWarmZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g := generate.MustGenerate(generate.RGG, generate.Small, 7, 1)
	src := Run(g, Options{Workers: 1, KeepHierarchy: true})
	dst := CopyResultInto(nil, src)
	allocs := testing.AllocsPerRun(10, func() {
		dst = CopyResultInto(dst, src)
	})
	if allocs != 0 {
		t.Errorf("warm same-shape CopyResultInto allocates %v times, want 0", allocs)
	}
	if CopyResultInto(src, src) != src {
		t.Fatal("self-copy must be the identity")
	}
}
