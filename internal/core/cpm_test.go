package core

import (
	"math"
	"testing"

	"grappolo/internal/graph"
	"grappolo/internal/seq"
)

func ringOfCliques(k, s int) *graph.Graph {
	b := graph.NewBuilder(k * s)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				b.AddEdge(int32(base+i), int32(base+j), 1)
			}
		}
		next := ((c + 1) % k) * s
		b.AddEdge(int32(base), int32(next), 1)
	}
	return b.Build(2)
}

func cpmOpts(workers int, gamma float64) Options {
	o := Baseline(workers)
	o.Objective = ObjCPM
	o.CPMGamma = gamma
	return o
}

func TestParallelCPMRecoversRingCliques(t *testing.T) {
	const k, s = 30, 5
	g := ringOfCliques(k, s)
	res := Run(g, cpmOpts(4, 0.5))
	if res.NumCommunities != k {
		t.Fatalf("parallel CPM found %d communities, want %d", res.NumCommunities, k)
	}
	for c := 0; c < k; c++ {
		base := c * s
		for i := 1; i < s; i++ {
			if res.Membership[base+i] != res.Membership[base] {
				t.Fatalf("clique %d split", c)
			}
		}
	}
}

func TestParallelCPMAvoidsResolutionLimit(t *testing.T) {
	const k, s = 30, 5
	g := ringOfCliques(k, s)
	mod := Run(g, smallOpts(4))
	cpm := Run(g, cpmOpts(4, 0.5))
	if mod.NumCommunities >= k {
		t.Fatalf("modularity found %d >= %d (resolution limit should merge cliques)",
			mod.NumCommunities, k)
	}
	if cpm.NumCommunities != k {
		t.Fatalf("CPM found %d communities, want %d", cpm.NumCommunities, k)
	}
}

func TestParallelCPMMatchesSerialCPM(t *testing.T) {
	g := ringOfCliques(12, 6)
	par := Run(g, cpmOpts(4, 0.5))
	ser := seq.RunCPM(g, seq.CPMOptions{Gamma: 0.5})
	// Both optimizers should land on the clique partition; scores must
	// agree via the shared scorer.
	pScore := seq.CPMScore(g, par.Membership, 0.5)
	if math.Abs(pScore-par.Modularity) > 1e-9 {
		t.Fatalf("core reported %v but CPMScore gives %v", par.Modularity, pScore)
	}
	if math.Abs(pScore-ser.Score) > 0.05 {
		t.Fatalf("parallel CPM score %.4f far from serial %.4f", pScore, ser.Score)
	}
}

func TestParallelCPMColoredVariant(t *testing.T) {
	g := ringOfCliques(20, 5)
	o := cpmOpts(4, 0.5)
	o.Coloring = ColorMultiPhase
	o.ColoringVertexCutoff = 1
	res := Run(g, o)
	if res.NumCommunities != 20 {
		t.Fatalf("colored CPM found %d communities, want 20", res.NumCommunities)
	}
}

func TestParallelCPMDeterministicUncolored(t *testing.T) {
	g := ringOfCliques(15, 4)
	a := Run(g, cpmOpts(1, 0.5))
	b := Run(g, cpmOpts(8, 0.5))
	for i := range a.Membership {
		if a.Membership[i] != b.Membership[i] {
			t.Fatalf("CPM membership differs at %d across worker counts", i)
		}
	}
}

func TestCPMOptionGuards(t *testing.T) {
	g := ringOfCliques(3, 3)
	assertPanics(t, func() {
		o := Baseline(2)
		o.Objective = ObjCPM // no gamma
		Run(g, o)
	})
	assertPanics(t, func() {
		o := cpmOpts(2, 0.5)
		o.VertexFollowing = true
		Run(g, o)
	})
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
