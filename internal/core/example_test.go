package core_test

import (
	"fmt"

	"grappolo/internal/core"
	"grappolo/internal/graph"
)

// ExampleRun demonstrates the basic detection flow: build a graph with two
// obvious communities and run the paper's headline configuration.
func ExampleRun() {
	b := graph.NewBuilder(6)
	// Triangle {0,1,2} and triangle {3,4,5} joined by one edge.
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(3, 5, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build(1)

	res := core.Run(g, core.BaselineVFColor(1))
	fmt.Println("communities:", res.NumCommunities)
	fmt.Println("together:", res.Membership[0] == res.Membership[1],
		res.Membership[3] == res.Membership[5])
	fmt.Println("apart:", res.Membership[0] != res.Membership[4])
	// Output:
	// communities: 2
	// together: true true
	// apart: true
}

// ExampleAnalyzeCommunities shows per-community inspection after a run.
func ExampleAnalyzeCommunities() {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build(1)
	res := core.Run(g, core.Baseline(1))
	stats, _ := core.AnalyzeCommunities(g, res.Membership, 1)
	for _, cs := range stats {
		fmt.Printf("community %d: size=%d intra=%.0f cut=%.0f\n",
			cs.ID, cs.Size, cs.IntraWeight, cs.CutWeight)
	}
	// Output:
	// community 0: size=2 intra=1 cut=0
	// community 1: size=2 intra=1 cut=0
}

// ExampleOptions_cpm runs the constant Potts model objective, which keeps
// small dense modules separate regardless of graph size (no resolution
// limit).
func ExampleOptions_cpm() {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(3, 5, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build(1)

	opts := core.Baseline(1)
	opts.Objective = core.ObjCPM
	opts.CPMGamma = 0.5
	res := core.Run(g, opts)
	fmt.Println("communities:", res.NumCommunities)
	// Output:
	// communities: 2
}
