package core

import (
	"grappolo/internal/graph"
)

// Run executes the full parallel Louvain pipeline of §5.4 on g:
//
//  1. optional VF preprocessing (parallel),
//  2. optional coloring preprocessing per phase,
//  3. phases of parallel lock-free iterations (Algorithm 1),
//  4. parallel graph rebuild between phases,
//
// and returns the flattened community assignment for g's original vertices
// together with full instrumentation.
//
// Run is the one-shot convenience form: it builds a throwaway Engine per
// call, so every invocation starts cold. Callers that cluster repeatedly —
// dynamic overlays, harness sweeps, services answering many requests —
// should hold a single Engine (NewEngine) and call Engine.Run, which
// recycles all scratch across calls; the results are identical.
func Run(g *graph.Graph, opts Options) *Result {
	return NewEngine(opts).Run(g)
}

// Modularity computes Eq. (3) for an arbitrary assignment on g using
// opts.Workers workers — exposed so callers can score external partitions
// (e.g. ground truth) with the same parallel kernel.
func Modularity(g *graph.Graph, membership []int32, gamma float64, workers int) float64 {
	if gamma <= 0 {
		gamma = 1
	}
	st := &phaseState{g: g, m: g.M(), curr: membership, gamma: gamma}
	return st.modularity(workers)
}
