package core

import (
	"time"

	"grappolo/internal/coloring"
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// Run executes the full parallel Louvain pipeline of §5.4 on g:
//
//  1. optional VF preprocessing (parallel),
//  2. optional coloring preprocessing per phase,
//  3. phases of parallel lock-free iterations (Algorithm 1),
//  4. parallel graph rebuild between phases,
//
// and returns the flattened community assignment for g's original vertices
// together with full instrumentation.
func Run(g *graph.Graph, opts Options) *Result {
	opts = opts.Defaults()
	if opts.Objective == ObjCPM {
		if opts.CPMGamma <= 0 {
			panic("core: ObjCPM requires CPMGamma > 0")
		}
		if opts.VertexFollowing {
			panic("core: VertexFollowing requires the modularity objective (Lemma 3 does not hold under CPM)")
		}
	}
	workers := opts.Workers
	n := g.N()

	res := &Result{Membership: make([]int32, n)}
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			res.Membership[i] = int32(i)
		}
	})

	cur := g

	// Step 1: VF preprocessing (§5.3).
	if opts.VertexFollowing && n > 0 {
		t0 := time.Now()
		maxRounds := 1
		if opts.VFChainCompression {
			maxRounds = 64
		}
		compressed, mapping, rounds := vertexFollowChain(cur, workers, maxRounds)
		if rounds > 0 {
			cur = compressed
			res.Membership = mapping
		}
		res.Timing.VF = time.Since(t0)
	}

	// Under CPM, nodeSize tracks how many original vertices each
	// (meta-)vertex represents; nil under modularity.
	var nodeSize []int64
	if opts.Objective == ObjCPM {
		nodeSize = make([]int64, cur.N())
		for i := range nodeSize {
			nodeSize[i] = 1
		}
	}

	prevQ := -1e18
	colorEnabled := opts.Coloring != ColorOff
	for phase := 0; opts.MaxPhases == 0 || phase < opts.MaxPhases; phase++ {
		if cur.N() == 0 {
			break
		}
		// Step 2: coloring decision for this phase (§6.1 policy).
		colored := colorEnabled
		if opts.Coloring == ColorFirstPhase && phase > 0 {
			colored = false
		}
		if cur.N() < opts.ColoringVertexCutoff {
			colored = false
		}
		var cs *coloring.Coloring
		var colorTime time.Duration
		var colorRSD, colorArcRSD float64
		if colored {
			t0 := time.Now()
			switch {
			case opts.Distance2Coloring:
				cs = coloring.ParallelDistance2(cur, workers)
			case opts.JonesPlassmann:
				cs = coloring.JonesPlassmann(cur, workers, uint64(phase)+1)
			default:
				cs = coloring.Parallel(cur, workers)
			}
			if opts.ColorBalance != BalanceOff {
				by := coloring.BalanceByVertices
				if opts.ColorBalance == BalanceArcs {
					by = coloring.BalanceByArcs
				}
				// The rebalancer must honor the base coloring's distance:
				// moving a vertex of a distance-2 coloring while checking
				// only distance-1 neighbors silently breaks the invariant.
				cs = coloring.Rebalance(cur, cs, coloring.RebalanceOptions{
					Workers:   workers,
					By:        by,
					Distance2: opts.Distance2Coloring,
				})
			}
			colorTime = time.Since(t0)
			st := cs.ComputeStatsOn(cur)
			colorRSD, colorArcRSD = st.RSD, st.ArcRSD
		}
		threshold := opts.FinalThreshold
		if colored {
			threshold = opts.ColoredThreshold
		}

		// Step 3: iterations.
		t0 := time.Now()
		membership, stats, q := runPhase(cur, opts, threshold, cs, nodeSize)
		stats.ClusterTime = time.Since(t0)
		stats.Colored = colored
		if cs != nil {
			stats.NumColors = cs.NumColors
			stats.ColorSetRSD = colorRSD
			stats.ColorArcRSD = colorArcRSD
		}
		stats.ColoringTime = colorTime

		res.TotalIterations += stats.Iterations
		res.Timing.Coloring += colorTime
		res.Timing.Clustering += stats.ClusterTime

		// Fold the phase assignment into original-vertex membership.
		par.ForChunk(n, workers, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				res.Membership[i] = membership[res.Membership[i]]
			}
		})
		if opts.KeepHierarchy {
			level := make([]int32, n)
			copy(level, res.Membership)
			res.Levels = append(res.Levels, level)
		}
		res.Modularity = q
		gain := q - prevQ
		prevQ = q

		nc := int(maxInt32(membership)) + 1
		noMerge := nc == cur.N()

		// Termination / coloring-policy transitions (§6.1): colored phases
		// continue while they deliver at least ColoredThreshold gain; once
		// they do not, coloring is dropped and the remaining phases run to
		// the fine FinalThreshold.
		if colored {
			if gain < opts.ColoredThreshold {
				colorEnabled = false
			}
		} else if gain < opts.FinalThreshold && phase > 0 {
			res.Phases = append(res.Phases, stats)
			break
		}
		if noMerge && !colored {
			res.Phases = append(res.Phases, stats)
			break
		}

		// Step 4: rebuild for the next phase (§5.5).
		t0 = time.Now()
		if !noMerge {
			if nodeSize != nil {
				newSizes := make([]int64, nc)
				for v, c := range membership {
					newSizes[c] += nodeSize[v]
				}
				nodeSize = newSizes
			}
			cur = rebuild(cur, membership, nc, workers)
		}
		stats.RebuildTime = time.Since(t0)
		res.Timing.Rebuild += stats.RebuildTime
		res.Phases = append(res.Phases, stats)
	}

	res.NumCommunities = int(maxInt32(res.Membership)) + 1
	if n == 0 {
		res.NumCommunities = 0
	}
	return res
}

// Modularity computes Eq. (3) for an arbitrary assignment on g using
// opts.Workers workers — exposed so callers can score external partitions
// (e.g. ground truth) with the same parallel kernel.
func Modularity(g *graph.Graph, membership []int32, gamma float64, workers int) float64 {
	if gamma <= 0 {
		gamma = 1
	}
	st := &phaseState{g: g, m: g.M(), curr: membership, gamma: gamma}
	return st.modularity(workers)
}
