package core

import (
	"math"
	"testing"

	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/seq"
)

// Weighted end-to-end coverage: the paper's graphs are weighted (§2); these
// tests make sure weights actually steer decisions rather than merely
// surviving the pipeline.

func TestWeightsSteerCommunityAssignment(t *testing.T) {
	// Vertex 2 sits between two triangles; its edge into the left triangle
	// is heavy, into the right light. It must side with the heavy edge.
	b := graph.NewBuilder(7)
	// Left triangle {0,1,2}-ish: 0-1 strong pair plus heavy links to 2.
	b.AddEdge(0, 1, 10)
	b.AddEdge(0, 2, 10)
	b.AddEdge(1, 2, 10)
	// Right triangle {3,4,5} strong internally.
	b.AddEdge(3, 4, 10)
	b.AddEdge(4, 5, 10)
	b.AddEdge(3, 5, 10)
	// 2 weakly tied to the right side; 6 pendant on the right.
	b.AddEdge(2, 3, 1)
	b.AddEdge(5, 6, 10)
	g := b.Build(2)
	res := Run(g, smallOpts(2))
	if res.Membership[2] != res.Membership[0] {
		t.Fatalf("vertex 2 ignored its heavy edges: %v", res.Membership)
	}
	if res.Membership[2] == res.Membership[3] {
		t.Fatalf("vertex 2 crossed the weak bridge: %v", res.Membership)
	}
}

func TestWeightedSBMEndToEnd(t *testing.T) {
	g, truth := generate.SBM(generate.SBMConfig{
		Communities:  []int{50, 50, 50},
		IntraDegree:  10,
		CrossFrac:    0.6,
		WeightedEdge: true, // intra weight 2, cross weight 1
	}, 4, 2)
	res := Run(g, withColor(smallOpts(4)))
	q := seq.Modularity(g, res.Membership, 1)
	if math.Abs(q-res.Modularity) > 1e-9 {
		t.Fatalf("Q mismatch on weighted graph: %v vs %v", res.Modularity, q)
	}
	// With doubled intra weights the planted structure should dominate
	// despite the heavy cross fraction.
	agree := 0
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			if (truth[i] == truth[j]) == (res.Membership[i] == res.Membership[j]) {
				agree++
			}
		}
	}
	total := g.N() * (g.N() - 1) / 2
	if frac := float64(agree) / float64(total); frac < 0.8 {
		t.Fatalf("weighted SBM recovery only %.2f pair agreement", frac)
	}
}

func TestUniformWeightScalingInvariance(t *testing.T) {
	// Multiplying every weight by a constant leaves modularity and the
	// (deterministic, uncolored) assignment unchanged.
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 2)
	b := graph.NewBuilder(g.N())
	for i := 0; i < g.N(); i++ {
		nbr, wts := g.Neighbors(i)
		for t2, j := range nbr {
			if int(j) >= i {
				b.AddEdge(int32(i), j, wts[t2]*7)
			}
		}
	}
	scaled := b.Build(2)
	a := Run(g, smallOpts(2))
	c := Run(scaled, smallOpts(2))
	if math.Abs(a.Modularity-c.Modularity) > 1e-9 {
		t.Fatalf("scaling changed modularity: %v vs %v", a.Modularity, c.Modularity)
	}
	for i := range a.Membership {
		if a.Membership[i] != c.Membership[i] {
			t.Fatalf("scaling changed assignment at %d", i)
		}
	}
}
