package core

import (
	"strings"
	"testing"
)

// TestOptionsValidate pins the bugfix satellite: the settings Defaults used
// to clamp or ignore silently are now reported as errors.
func TestOptionsValidate(t *testing.T) {
	valid := []Options{
		{},
		Baseline(4),
		BaselineVF(0),
		BaselineVFColor(8),
		PLM(2),
		{Objective: ObjCPM, CPMGamma: 0.5},
		{BalancedColoring: true}, // deprecated switch alone: canonical path
		{Coloring: ColorMultiPhase, ColorBalance: BalanceAuto},
	}
	for i, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("valid[%d]: unexpected error %v", i, err)
		}
	}

	invalid := map[string]Options{
		"negative-workers":       {Workers: -1},
		"negative-colored-thr":   {ColoredThreshold: -1e-3},
		"negative-final-thr":     {FinalThreshold: -1e-9},
		"negative-cutoff":        {ColoringVertexCutoff: -5},
		"negative-maxiter":       {MaxIterations: -1},
		"negative-maxphases":     {MaxPhases: -1},
		"negative-resolution":    {Resolution: -1},
		"negative-auto-rsd":      {AutoBalanceArcRSD: -0.5},
		"bad-coloring-mode":      {Coloring: ColoringMode(99)},
		"bad-balance-mode":       {ColorBalance: ColorBalance(99)},
		"bad-objective":          {Objective: Objective(99)},
		"cpm-no-gamma":           {Objective: ObjCPM},
		"cpm-negative-gamma":     {Objective: ObjCPM, CPMGamma: -1},
		"cpm-vf":                 {Objective: ObjCPM, CPMGamma: 0.5, VertexFollowing: true},
		"cpm-vfchain":            {Objective: ObjCPM, CPMGamma: 0.5, VFChainCompression: true},
		"chain-without-vf":       {VFChainCompression: true},
		"deprecated-and-current": {BalancedColoring: true, ColorBalance: BalanceArcs},
		"async-colored":          {Async: true, Coloring: ColorMultiPhase},
	}
	for name, o := range invalid {
		if err := o.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid options", name)
		}
	}
}

// TestDeprecatedBalancedColoringCanonicalPath pins the one remaining legal
// use of the deprecated switch: set alone, Defaults maps it to
// BalanceVertices; combined with ColorBalance it is an error (it used to be
// silently ignored).
func TestDeprecatedBalancedColoringCanonicalPath(t *testing.T) {
	o := Options{BalancedColoring: true}.Defaults()
	if o.ColorBalance != BalanceVertices {
		t.Fatalf("Defaults mapped BalancedColoring to %d, want BalanceVertices", o.ColorBalance)
	}
	if o.BalancedColoring {
		t.Fatal("Defaults left the deprecated flag set after canonicalizing it")
	}
	// A Defaults output must always re-validate: callers pass pre-defaulted
	// options back into Run/NewEngine.
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate(Defaults(deprecated flag)): %v", err)
	}
	err := Options{BalancedColoring: true, ColorBalance: BalanceVertices}.Validate()
	if err == nil || !strings.Contains(err.Error(), "deprecated") {
		t.Fatalf("combined deprecated+current switches: err=%v, want deprecation error", err)
	}
}

// TestNewEnginePanicsOnInvalidOptions pins the internal entry point's
// fail-fast contract (the public grappolo.New returns these as errors).
func TestNewEnginePanicsOnInvalidOptions(t *testing.T) {
	assertPanics(t, func() { NewEngine(Options{Workers: -2}) })
	assertPanics(t, func() { NewEngine(Options{Objective: ObjCPM}) })
}
