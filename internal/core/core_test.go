package core

import (
	"math"
	"testing"

	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/quality"
	"grappolo/internal/seq"
)

func twoCliques() *graph.Graph {
	b := graph.NewBuilder(10)
	for base := 0; base <= 5; base += 5 {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(int32(base+i), int32(base+j), 1)
			}
		}
	}
	b.AddEdge(0, 5, 1)
	return b.Build(2)
}

func smallOpts(workers int) Options {
	o := Baseline(workers)
	o.ColoringVertexCutoff = 1 // tests use tiny graphs; never suppress coloring
	return o
}

func TestRunTwoCliques(t *testing.T) {
	g := twoCliques()
	res := Run(g, smallOpts(4))
	if res.NumCommunities != 2 {
		t.Fatalf("found %d communities, want 2 (membership %v)", res.NumCommunities, res.Membership)
	}
	want := 40.0/42.0 - 0.5
	if math.Abs(res.Modularity-want) > 1e-9 {
		t.Fatalf("Q=%v want %v", res.Modularity, want)
	}
	q := seq.Modularity(g, res.Membership, 1)
	if math.Abs(q-res.Modularity) > 1e-9 {
		t.Fatalf("reported Q=%v but membership scores %v", res.Modularity, q)
	}
}

func TestSingleEdgeSwapPrevented(t *testing.T) {
	// §4.2 case 1: two singlet vertices joined by an edge must merge, not
	// swap. The singlet minimum-label rule forces the higher label to move.
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 1)
	g := b.Build(1)
	res := Run(g, smallOpts(2))
	if res.NumCommunities != 1 {
		t.Fatalf("single edge ended in %d communities, want 1", res.NumCommunities)
	}
}

func TestFourCliqueLocalMaximaEscaped(t *testing.T) {
	// Fig. 2 case 2: a 4-clique starting from singletons. Without the
	// minimum-label heuristic the parallel sweep can settle on two pairs;
	// with it, all vertices converge into one community.
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(int32(i), int32(j), 1)
		}
	}
	g := b.Build(1)
	res := Run(g, smallOpts(4))
	if res.NumCommunities != 1 {
		t.Fatalf("4-clique ended in %d communities, want 1 (membership %v)",
			res.NumCommunities, res.Membership)
	}
}

func TestUncoloredDeterministicAcrossWorkerCounts(t *testing.T) {
	// §5.4: without coloring the algorithm is stable — same output for any
	// worker count, because decisions are a pure function of the snapshot.
	g := generate.MustGenerate(generate.LiveJournal, generate.Small, 0, 2)
	ref := Run(g, smallOpts(1))
	for _, p := range []int{2, 4, 8} {
		got := Run(g, smallOpts(p))
		// Membership must be bit-identical (the paper's stability claim).
		// The reported modularity is a parallel float reduction whose
		// summation order depends on p, so allow ULP-level noise there.
		for i := range ref.Membership {
			if got.Membership[i] != ref.Membership[i] {
				t.Fatalf("p=%d: membership differs at vertex %d", p, i)
			}
		}
		if math.Abs(got.Modularity-ref.Modularity) > 1e-9 {
			t.Fatalf("p=%d: Q=%v != p=1's %v", p, got.Modularity, ref.Modularity)
		}
	}
}

func TestVFDeterministicAcrossWorkerCounts(t *testing.T) {
	g := generate.MustGenerate(generate.EuropeOSM, generate.Small, 0, 2)
	o1 := BaselineVF(1)
	o8 := BaselineVF(8)
	a, b := Run(g, o1), Run(g, o8)
	if a.Modularity != b.Modularity {
		t.Fatalf("VF runs differ: %v vs %v", a.Modularity, b.Modularity)
	}
	for i := range a.Membership {
		if a.Membership[i] != b.Membership[i] {
			t.Fatalf("membership differs at %d", i)
		}
	}
}

func TestAllVariantsProduceValidPartitions(t *testing.T) {
	for _, in := range []generate.Input{generate.CNR, generate.EuropeOSM, generate.MG1, generate.Channel} {
		g := generate.MustGenerate(in, generate.Small, 0, 4)
		variants := map[string]Options{
			"baseline":     smallOpts(4),
			"vf":           withVF(smallOpts(4)),
			"vfcolor":      withColor(withVF(smallOpts(4))),
			"color":        withColor(smallOpts(4)),
			"balanced":     withBalanced(withColor(smallOpts(4))),
			"balanced-arc": withArcBalance(withColor(smallOpts(4))),
			"balanced-d2":  withBalanced(withD2(withColor(smallOpts(4)))),
			"arc-d2":       withArcBalance(withD2(withColor(smallOpts(4)))),
			"distance2":    withD2(withColor(smallOpts(4))),
			"jp":           withJP(withColor(smallOpts(4))),
			"chain":        withChain(withVF(smallOpts(4))),
		}
		for name, o := range variants {
			res := Run(g, o)
			validatePartition(t, g, res, in, name)
		}
	}
}

func withVF(o Options) Options         { o.VertexFollowing = true; return o }
func withChain(o Options) Options      { o.VFChainCompression = true; return o }
func withColor(o Options) Options      { o.Coloring = ColorMultiPhase; return o }
func withBalanced(o Options) Options   { o.BalancedColoring = true; return o }
func withArcBalance(o Options) Options { o.ColorBalance = BalanceArcs; return o }
func withD2(o Options) Options         { o.Distance2Coloring = true; return o }
func withJP(o Options) Options         { o.JonesPlassmann = true; return o }

func validatePartition(t *testing.T, g *graph.Graph, res *Result, in generate.Input, name string) {
	t.Helper()
	if len(res.Membership) != g.N() {
		t.Fatalf("%s/%s: membership length %d != n %d", in, name, len(res.Membership), g.N())
	}
	seen := make(map[int32]bool)
	for v, c := range res.Membership {
		if c < 0 || int(c) >= g.N() {
			t.Fatalf("%s/%s: vertex %d has out-of-range community %d", in, name, v, c)
		}
		seen[c] = true
	}
	if len(seen) != res.NumCommunities {
		t.Fatalf("%s/%s: NumCommunities=%d but %d distinct ids", in, name, res.NumCommunities, len(seen))
	}
	q := seq.Modularity(g, res.Membership, 1)
	if math.Abs(q-res.Modularity) > 1e-9 {
		t.Fatalf("%s/%s: reported Q=%v, recomputed %v", in, name, res.Modularity, q)
	}
	if q < 0 {
		t.Fatalf("%s/%s: negative final modularity %v", in, name, q)
	}
}

func TestParallelQualityComparableToSerial(t *testing.T) {
	// The paper's headline quality claim (Table 2): parallel modularity is
	// higher than or comparable to serial. Allow a small band below.
	for _, in := range []generate.Input{generate.CNR, generate.MG1, generate.RGG, generate.CoPapers} {
		g := generate.MustGenerate(in, generate.Small, 0, 4)
		serial := seq.Run(g, seq.Options{})
		parallel := Run(g, withColor(withVF(smallOpts(4))))
		if parallel.Modularity < serial.Modularity-0.05 {
			t.Fatalf("%s: parallel Q=%.4f far below serial %.4f",
				in, parallel.Modularity, serial.Modularity)
		}
		t.Logf("%-10s serial=%.4f parallel=%.4f", in, serial.Modularity, parallel.Modularity)
	}
}

func TestVFLemma3SingleDegreeMerged(t *testing.T) {
	// After VF preprocessing, every single-degree vertex must share its
	// neighbor's community in the final output (Lemma 3).
	g := generate.MustGenerate(generate.EuropeOSM, generate.Small, 0, 2)
	res := Run(g, BaselineVF(4))
	for i := 0; i < g.N(); i++ {
		nbr, _ := g.Neighbors(i)
		if len(nbr) == 1 && int(nbr[0]) != i {
			if res.Membership[i] != res.Membership[nbr[0]] {
				t.Fatalf("single-degree vertex %d not with neighbor %d", i, nbr[0])
			}
		}
	}
}

func TestVFReducesFirstPhaseVertexCount(t *testing.T) {
	g := generate.MustGenerate(generate.EuropeOSM, generate.Small, 0, 2)
	plain := Run(g, smallOpts(2))
	vf := Run(g, BaselineVF(2))
	if len(plain.Phases) == 0 || len(vf.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
	if vf.Phases[0].VertexCount >= plain.Phases[0].VertexCount {
		t.Fatalf("VF did not shrink phase 1: %d vs %d",
			vf.Phases[0].VertexCount, plain.Phases[0].VertexCount)
	}
}

func TestVFChainCompressionShrinksFurther(t *testing.T) {
	// A long path hanging off a hub: single VF removes only the tip;
	// chain compression removes the whole path.
	b := graph.NewBuilder(0)
	// hub 0 with clique 0-1-2
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	// chain 0-3-4-5-6
	b.AddEdge(0, 3, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(5, 6, 1)
	g := b.Build(1)
	single, _, r1 := vertexFollowChain(g, 2, 1)
	full, _, r2 := vertexFollowChain(g, 2, 64)
	if r1 != 1 {
		t.Fatalf("single VF rounds=%d", r1)
	}
	if r2 <= r1 {
		t.Fatalf("chain compression rounds=%d, want > 1", r2)
	}
	if full.N() >= single.N() {
		t.Fatalf("chain compression left %d vertices vs single VF's %d", full.N(), single.N())
	}
	// The chain 3-4-5-6 collapses from the tip inward into a single pendant
	// meta-vertex. The final merge into hub 0 must NOT happen: there
	// ω(i,j) = 1 < k_i·k_j/2m = 7·3/14, i.e. the negative component of
	// inequality (10) dominates and the recursion stops (§5.3). Remaining:
	// triangle {0,1,2} + collapsed chain = 4 vertices.
	if full.N() != 4 {
		t.Fatalf("chain compressed to %d vertices, want 4", full.N())
	}
}

func TestVFNoSingleDegreeNoop(t *testing.T) {
	// A clique has no single-degree vertices: VF must be a no-op.
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(int32(i), int32(j), 1)
		}
	}
	g := b.Build(1)
	if _, _, ok := vertexFollow(g, 2, false); ok {
		t.Fatal("VF found single-degree vertices in a clique")
	}
	_, _, rounds := vertexFollowChain(g, 2, 8)
	if rounds != 0 {
		t.Fatalf("chain VF ran %d rounds on a clique", rounds)
	}
}

func TestVFIsolatedPairMergesToMinLabel(t *testing.T) {
	// Two isolated degree-1 vertices joined by an edge point at each other;
	// the pair must merge into one community (min id wins).
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 1)
	g := b.Build(1)
	membership, nc, ok := vertexFollow(g, 2, false)
	if !ok || nc != 1 {
		t.Fatalf("pair merge failed: ok=%v nc=%d %v", ok, nc, membership)
	}
	if membership[0] != membership[1] {
		t.Fatalf("pair split: %v", membership)
	}
}

func TestVFSelfLoopVertexNotMerged(t *testing.T) {
	// Vertex 1 has a self-loop plus an edge to 0: it is a single-NEIGHBOR
	// vertex but not single-degree, so basic VF must not touch it...
	// vertex 2 (plain degree-1) must merge.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 1, 2)
	b.AddEdge(0, 2, 1)
	g := b.Build(1)
	membership, nc, ok := vertexFollow(g, 1, false)
	if !ok {
		t.Fatal("VF found nothing")
	}
	if nc != 2 {
		t.Fatalf("nc=%d want 2 (0+2 merged, 1 alone)", nc)
	}
	if membership[0] != membership[2] || membership[0] == membership[1] {
		t.Fatalf("wrong merge: %v", membership)
	}
}

func TestRebuildMatchesSerialCoarsen(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	res := Run(g, Options{MaxPhases: 1, Workers: 4}.Defaults())
	membership := res.Membership
	nc := res.NumCommunities
	pg := rebuild(g, membership, nc, 4)
	sg := seq.Coarsen(g, membership, nc)
	if pg.N() != sg.N() || pg.ArcCount() != sg.ArcCount() {
		t.Fatalf("shape differs: n %d/%d arcs %d/%d", pg.N(), sg.N(), pg.ArcCount(), sg.ArcCount())
	}
	if math.Abs(pg.TotalWeight()-sg.TotalWeight()) > 1e-6 {
		t.Fatalf("weight differs: %v vs %v", pg.TotalWeight(), sg.TotalWeight())
	}
	for i := 0; i < pg.N(); i++ {
		na, wa := pg.Neighbors(i)
		nb, wb := sg.Neighbors(i)
		if len(na) != len(nb) {
			t.Fatalf("row %d length differs", i)
		}
		for k := range na {
			if na[k] != nb[k] || math.Abs(wa[k]-wb[k]) > 1e-9 {
				t.Fatalf("row %d entry %d differs", i, k)
			}
		}
	}
	if err := pg.Validate(); err != nil {
		t.Fatalf("parallel rebuild invalid: %v", err)
	}
}

func TestRenumberParallelMatchesSerial(t *testing.T) {
	// Community ids are always vertex ids of the phase graph, so they are
	// < len(comm) by construction.
	comm := []int32{5, 5, 2, 3, 2, 0}
	a := renumberParallel(comm, 4)
	b := renumberSerial(comm)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, a, b)
		}
	}
	// Ascending-id dense order: community 0→0, 2→1, 3→2, 5→3.
	want := []int32{3, 3, 1, 2, 1, 0}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("got %v want %v", a, want)
		}
	}
}

func TestSerialRenumberOptionSameResult(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	a := Run(g, smallOpts(4))
	o := smallOpts(4)
	o.SerialRenumber = true
	b := Run(g, o)
	if a.Modularity != b.Modularity || a.NumCommunities != b.NumCommunities {
		t.Fatal("serial renumber ablation changed the result")
	}
}

func TestColoredRunValidAndConverges(t *testing.T) {
	for _, in := range []generate.Input{generate.RGG, generate.Channel} {
		g := generate.MustGenerate(in, generate.Small, 0, 4)
		res := Run(g, withColor(smallOpts(4)))
		validatePartition(t, g, res, in, "color")
		coloredPhases := 0
		for _, ph := range res.Phases {
			if ph.Colored {
				coloredPhases++
				if ph.NumColors < 2 {
					t.Fatalf("%s: colored phase with %d colors", in, ph.NumColors)
				}
			}
		}
		if coloredPhases == 0 {
			t.Fatalf("%s: no colored phases despite ColorMultiPhase", in)
		}
	}
}

func TestColoringReducesIterations(t *testing.T) {
	// The design intent of coloring (§6.2): fewer iterations to converge.
	// Verify on the mesh input where the effect is most pronounced.
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 4)
	plain := Run(g, smallOpts(4))
	col := Run(g, withColor(smallOpts(4)))
	if col.TotalIterations > plain.TotalIterations {
		t.Fatalf("coloring increased iterations: %d vs %d",
			col.TotalIterations, plain.TotalIterations)
	}
	t.Logf("iterations: plain=%d colored=%d", plain.TotalIterations, col.TotalIterations)
}

func TestFirstPhaseOnlyColoring(t *testing.T) {
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 4)
	o := smallOpts(4)
	o.Coloring = ColorFirstPhase
	res := Run(g, o)
	for pi, ph := range res.Phases {
		if pi == 0 && !ph.Colored {
			t.Fatal("first phase not colored")
		}
		if pi > 0 && ph.Colored {
			t.Fatalf("phase %d colored under ColorFirstPhase", pi)
		}
	}
}

func TestColoringVertexCutoffRespected(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	o := withColor(smallOpts(4))
	o.ColoringVertexCutoff = g.N() + 1 // cutoff above n → never color
	res := Run(g, o)
	for _, ph := range res.Phases {
		if ph.Colored {
			t.Fatal("phase colored despite cutoff")
		}
	}
}

func TestModularityGainThresholdEffect(t *testing.T) {
	// Table 5: a higher colored-phase threshold must not increase the
	// iteration count.
	g := generate.MustGenerate(generate.Channel, generate.Small, 0, 4)
	coarse := withColor(smallOpts(4))
	coarse.ColoredThreshold = 1e-2
	fine := withColor(smallOpts(4))
	fine.ColoredThreshold = 1e-4
	rc := Run(g, coarse)
	rf := Run(g, fine)
	if rc.TotalIterations > rf.TotalIterations {
		t.Fatalf("threshold 1e-2 took more iterations (%d) than 1e-4 (%d)",
			rc.TotalIterations, rf.TotalIterations)
	}
	if rc.Modularity < rf.Modularity-0.1 {
		t.Fatalf("coarse threshold modularity collapsed: %v vs %v", rc.Modularity, rf.Modularity)
	}
}

func TestModularityMonotoneUncolored(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	res := Run(g, smallOpts(4))
	for pi, ph := range res.Phases {
		for k := 1; k < len(ph.Modularity); k++ {
			// Lemma 1 says monotonicity is NOT guaranteed in parallel, but
			// the heuristics are designed to keep progress positive in
			// practice; a large sustained drop signals a bug.
			if ph.Modularity[k] < ph.Modularity[k-1]-0.05 {
				t.Fatalf("phase %d iter %d: modularity dropped %v -> %v",
					pi, k, ph.Modularity[k-1], ph.Modularity[k])
			}
		}
	}
}

func TestMinLabelAblationShowsHeuristicValue(t *testing.T) {
	// Disabling the minimum-label heuristics leaves the algorithm
	// structurally sound but exposes the §4.2 swap pathology: starting from
	// singletons, symmetric vertices oscillate and phases terminate early
	// with far lower modularity. The ablation quantifies the heuristic's
	// contribution.
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	o := smallOpts(4)
	o.DisableMinLabel = true
	ablated := Run(g, o)
	// Output must still be structurally valid and consistently scored.
	if len(ablated.Membership) != g.N() {
		t.Fatal("membership length wrong")
	}
	if q := seq.Modularity(g, ablated.Membership, 1); math.Abs(q-ablated.Modularity) > 1e-9 {
		t.Fatalf("reported Q=%v, recomputed %v", ablated.Modularity, q)
	}
	full := Run(g, smallOpts(4))
	if full.Modularity <= ablated.Modularity {
		t.Fatalf("min-label heuristic did not help: with=%v without=%v",
			full.Modularity, ablated.Modularity)
	}
	t.Logf("Q with min-label=%.4f, without=%.4f", full.Modularity, ablated.Modularity)
}

func TestGroundTruthRecoveryOnSBM(t *testing.T) {
	g := generate.MustGenerate(generate.MG1, generate.Small, 0, 4)
	truth, _ := generate.GroundTruth(generate.MG1, generate.Small, 0, 4)
	res := Run(g, withColor(withVF(smallOpts(4))))
	pc, err := quality.ComparePartitions(truth, res.Membership)
	if err != nil {
		t.Fatal(err)
	}
	m := pc.Derive()
	if m.RandIndex < 0.9 {
		t.Fatalf("Rand index vs planted truth %.3f < 0.9 (%+v)", m.RandIndex, m)
	}
	t.Logf("MG1 vs truth: %s", m)
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	empty := graph.NewBuilder(0).Build(1)
	res := Run(empty, smallOpts(2))
	if res.NumCommunities != 0 || len(res.Membership) != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
	single := graph.NewBuilder(1).Build(1)
	res = Run(single, smallOpts(2))
	if res.NumCommunities != 1 || res.Membership[0] != 0 {
		t.Fatalf("single vertex: %+v", res)
	}
	// Edgeless graph: all singletons, Q = 0.
	edgeless := graph.NewBuilder(5).Build(1)
	res = Run(edgeless, withVF(smallOpts(2)))
	if res.NumCommunities != 5 {
		t.Fatalf("edgeless: %d communities", res.NumCommunities)
	}
}

func TestSelfLoopOnlyGraph(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 0, 3)
	b.AddEdge(1, 1, 2)
	g := b.Build(1)
	res := Run(g, smallOpts(2))
	if res.NumCommunities != 2 {
		t.Fatalf("self-loop-only graph merged: %v", res.Membership)
	}
}

func TestMaxLimitsRespected(t *testing.T) {
	g := generate.MustGenerate(generate.Channel, generate.Small, 0, 4)
	o := smallOpts(4)
	o.MaxIterations = 2
	o.MaxPhases = 1
	res := Run(g, o)
	if len(res.Phases) > 1 {
		t.Fatalf("%d phases despite MaxPhases=1", len(res.Phases))
	}
	if res.Phases[0].Iterations > 2 {
		t.Fatalf("%d iterations despite MaxIterations=2", res.Phases[0].Iterations)
	}
}

func TestTimingBreakdownPopulated(t *testing.T) {
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 4)
	res := Run(g, withColor(withVF(smallOpts(4))))
	if res.Timing.Clustering <= 0 {
		t.Fatal("clustering time not recorded")
	}
	if res.Timing.Coloring <= 0 {
		t.Fatal("coloring time not recorded")
	}
	if res.Timing.Total() < res.Timing.Clustering {
		t.Fatal("total < clustering")
	}
}

func TestModularityHelperAgreesWithSeq(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	res := Run(g, smallOpts(4))
	a := Modularity(g, res.Membership, 1, 4)
	b := seq.Modularity(g, res.Membership, 1)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("modularity kernels disagree: %v vs %v", a, b)
	}
}

func TestResolutionParameter(t *testing.T) {
	g := generate.MustGenerate(generate.CoPapers, generate.Small, 0, 4)
	lo := smallOpts(4)
	lo.Resolution = 0.25
	hi := smallOpts(4)
	hi.Resolution = 4
	rl := Run(g, lo)
	rh := Run(g, hi)
	if rh.NumCommunities < rl.NumCommunities {
		t.Fatalf("γ=4 gave %d communities < γ=0.25's %d", rh.NumCommunities, rl.NumCommunities)
	}
}
