package core

import (
	"context"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// phaseState carries the per-phase working arrays of Algorithm 1. Under the
// Engine one phaseState instance is recycled across phases and runs: reset
// re-slices every array to the phase's vertex count, growing backing storage
// only past the high-water mark, so a warmed Engine runs phases without
// allocating. Loop bodies receive the state as an explicit pointer context
// (par.ForChunkWorkerCtx et al.) instead of capturing it, which keeps the
// single-worker paths allocation-free.
type phaseState struct {
	g        *graph.Graph
	m        float64   // sum of edge weights (paper's m)
	m2       float64   // total weight 2m, hoisted so reductions skip the per-element g.TotalWeight() load
	curr     []int32   // C_curr: community of each vertex
	prev     []int32   // C_prev: snapshot used for uncolored sweeps
	commDeg  []float64 // a_C, atomically maintained during colored sweeps
	size     []int64   // |C|, for the singlet minimum-label rule
	gamma    float64
	minLbl   bool // generalized minimum-label tie-break enabled
	obj      Objective
	cpmGamma float64
	nodeSize []int64 // original-vertex count per (meta-)vertex (CPM only)
	inter    bool    // g carries an interleaved arc array; sweeps use it
	pref     bool    // graph is big enough for row prefetch hints to pay
	commNS   []int64 // Σ nodeSize per community (CPM only; nil ⇒ modularity)
	nsBuf    []int64 // pooled backing for commNS (which must stay nil-able)
	// scratch holds one neighbor-community accumulator per worker, grown in
	// place and reused across every sweep, iteration, phase and run, so the
	// decide loop is allocation-free in steady state (§5.5: the per-vertex
	// map was the dominant clustering cost).
	scratch []*par.SparseAccum
	// colorPrefix caches, per color set, the arc prefix sum that drives
	// arc-balanced chunking in colored sweeps. Sets and OutDegree are
	// immutable for the whole phase, so it is built once on the first
	// colored sweep and reused by every later iteration. prefixBuf is the
	// pooled backing array for all sets.
	colorPrefix [][]int64
	prefixBuf   []int64
	prefixReady bool
	// arcEvenSets marks that the phase's coloring was arc-rebalanced: the
	// sets are even by total arc count by construction, so the colored sweep
	// skips both the colorPrefix build and per-set arc chunking and uses
	// plain dynamic count chunks (the ROADMAP's "consume rebalanced sets
	// directly" item).
	arcEvenSets bool
	// sweepOwn bounds the vertices uncolored sweeps may MOVE: vertices in
	// [sweepOwn, n) are pinned — they contribute to community aggregates and
	// attract neighbors but never change community. reset sets it to n
	// (everything movable); Engine.SweepSeeded narrows it to freeze a ghost
	// suffix, which is how a shard clusters its own vertices against frozen
	// images of other shards' boundary vertices.
	sweepOwn int
	// aggF/aggI are pooled reduction buffers for the modularity (a_C) and
	// CPM (node-size) scoring kernels, zeroed per use.
	aggF []float64
	aggI []int64
	// transient loop-body inputs (set immediately before the loops that read
	// them; carried here so the captureless bodies reach them via the state
	// pointer).
	refreshFrom []int32   // refreshAggregates input assignment
	curSet      []int32   // sweepColored's current color set
	mergeSets   [][]int32 // sweepColored's current run of merged small sets
	prefixSets  [][]int32 // colorPrefix build input sets
	// ctx/cancel carry the owning run's cooperative cancellation (nil when
	// the run is not cancellable — standalone states and plain Run/RunInto).
	// ctx is polled at the barriers between sweeps and color sets; the
	// latched cancel flag is what sweep bodies observe once per chunk, so
	// the per-vertex hot loops stay branch-free.
	ctx    context.Context
	cancel *par.Cancel
}

// stop polls the owning run's cancellation source (see stopRequested): a
// latched flag first — one atomic load, the form the per-chunk checks
// inside sweep bodies take after the first hit — then the context, which
// latches the flag for everyone else.
func (st *phaseState) stop() bool {
	return stopRequested(st.ctx, st.cancel)
}

// reset prepares st for one phase over g, recycling every buffer.
func (st *phaseState) reset(g *graph.Graph, opts Options, nodeSize []int64, workers int) {
	n := g.N()
	st.g = g
	st.m = g.M()
	st.m2 = g.TotalWeight()
	st.curr = par.Resize(st.curr, n)
	st.prev = par.Resize(st.prev, n)
	st.commDeg = par.Resize(st.commDeg, n)
	st.size = par.Resize(st.size, n)
	st.gamma = opts.Resolution
	st.minLbl = !opts.DisableMinLabel
	st.obj = opts.Objective
	st.cpmGamma = opts.CPMGamma
	st.inter = g.Arcs() != nil
	st.pref = n >= prefetchMinVertices
	st.nodeSize, st.commNS = nil, nil
	if st.obj == ObjCPM {
		st.nodeSize = nodeSize
		st.nsBuf = par.Resize(st.nsBuf, n)
		st.commNS = st.nsBuf
	}
	st.prefixReady = false
	st.arcEvenSets = false
	st.sweepOwn = n
	// One accumulator per effective worker: community ids live in [0, n),
	// and a vertex can touch at most OutDegree+1 distinct communities (the
	// key list grows amortized past that on coarser graphs).
	nw := par.Workers(workers, n)
	for len(st.scratch) < nw {
		st.scratch = append(st.scratch, par.NewSparseAccum(n, g.MaxOutDegree()+1))
	}
	for w := 0; w < nw; w++ {
		st.scratch[w].Grow(n)
	}
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			st.curr[i] = int32(i)
			st.commDeg[i] = st.g.Degree(i)
			st.size[i] = 1
			if st.commNS != nil {
				st.commNS[i] = st.nodeSize[i]
			}
		}
	})
}

// newPhaseState allocates a standalone phase state (tests, benchmarks, and
// the exported Modularity kernel); the Engine recycles one via reset.
func newPhaseState(g *graph.Graph, opts Options, nodeSize []int64, workers int) *phaseState {
	st := &phaseState{}
	st.reset(g, opts, nodeSize, workers)
	return st
}

// refreshAggregates recomputes a_C and |C| (and the CPM node-size sums)
// from the given assignment (prev for uncolored iterations, curr before a
// colored sweep).
func (st *phaseState) refreshAggregates(from []int32, workers int) {
	n := st.g.N()
	if par.Workers(workers, n) == 1 {
		// Single effective worker (small graph or 1-P run): the atomic
		// scatter adds below would execute in exactly ascending-i order
		// anyway, so a plain serial pass computes bit-identical aggregates
		// without paying a CAS per vertex. On a 1-core host this takes a
		// measurable slice off every sweep (aggregates refresh each sweep).
		for i := 0; i < n; i++ {
			st.commDeg[i] = 0
			st.size[i] = 0
			if st.commNS != nil {
				st.commNS[i] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := from[i]
			st.commDeg[c] += st.g.Degree(i)
			st.size[c]++
			if st.commNS != nil {
				st.commNS[c] += st.nodeSize[i]
			}
		}
		return
	}
	st.refreshFrom = from
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			st.commDeg[i] = 0
			st.size[i] = 0
			if st.commNS != nil {
				st.commNS[i] = 0
			}
		}
	})
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			c := st.refreshFrom[i]
			par.AddFloat64(&st.commDeg[c], st.g.Degree(i))
			atomicAdd64(&st.size[c], 1)
			if st.commNS != nil {
				atomicAdd64(&st.commNS[c], st.nodeSize[i])
			}
		}
	})
	st.refreshFrom = nil
}

// decide computes vertex i's new community per Eqs. (4)–(5) with the
// minimum-label heuristics of §5.1. membership is the array decisions read
// (prev for uncolored sweeps, curr for colored/async ones); atomicAgg
// selects whether community aggregates are read with atomic loads (colored
// sweeps mutate them concurrently); atomicComm additionally reads the
// membership itself atomically (async mode, where adjacent vertices move
// concurrently).
//
// It is a thin dispatcher kept for tests and out-of-loop callers: the sweep
// bodies call the MONOMORPHIC per-mode kernels below directly, so the per-arc
// hot loops carry no atomicity branches and no closure dispatch. Every
// kernel is a pure restructuring of the historical single-function decide —
// identical arc visit order, identical float expressions — so decisions stay
// bit-identical across kernels and arc layouts.
//
//grappolo:hotpath
func (st *phaseState) decide(i int, membership []int32, acc *par.SparseAccum, atomicAgg, atomicComm bool) int32 {
	switch {
	case atomicComm:
		return st.decideAsync(i, membership, acc)
	case atomicAgg:
		return st.decideLive(i, membership, acc)
	default:
		return st.decideSnap(i, membership, acc)
	}
}

// decideSnap is decide for uncolored snapshot sweeps: plain membership and
// aggregate reads (no other vertex mutates them during the sweep).
//
//grappolo:hotpath
func (st *phaseState) decideSnap(i int, membership []int32, acc *par.SparseAccum) int32 {
	var ci int32
	if st.inter {
		ci = st.accumSnapInter(i, membership, acc)
	} else {
		ci = st.accumSnapSplit(i, membership, acc)
	}
	if st.obj == ObjCPM {
		return st.bestCPMPlain(i, ci, acc)
	}
	return st.bestModPlain(i, ci, acc)
}

// decideLive is decide for colored sweeps: memberships are stable (no two
// same-set vertices are adjacent) but community aggregates mutate under
// concurrent applyMove, so they are read atomically. Unlike the sequential
// sweeps, colored sweeps visit vertices in color-set order — each row is a
// short RANDOM segment of the arc arrays, so the packed 16-byte stream only
// pulls ~33% more cache lines per row without any sequential-stream payoff
// (measured: interleaved loses ~10% on the medium RGG colored sweep while
// winning the uncolored one). Live decides therefore always read the split
// CSR, which is retained under either layout; results are identical because
// both layouts hold the same arcs in the same order.
//
//grappolo:hotpath
func (st *phaseState) decideLive(i int, membership []int32, acc *par.SparseAccum) int32 {
	ci := st.accumSnapSplit(i, membership, acc)
	if st.obj == ObjCPM {
		return st.bestCPMAtomic(i, ci, acc)
	}
	return st.bestModAtomic(i, ci, acc)
}

// decideAsync is decide for asynchronous live-state sweeps: adjacent
// vertices move concurrently, so memberships AND aggregates are read
// atomically.
//
//grappolo:hotpath
func (st *phaseState) decideAsync(i int, membership []int32, acc *par.SparseAccum) int32 {
	var ci int32
	if st.inter {
		ci = st.accumAsyncInter(i, membership, acc)
	} else {
		ci = st.accumAsyncSplit(i, membership, acc)
	}
	if st.obj == ObjCPM {
		return st.bestCPMAtomic(i, ci, acc)
	}
	return st.bestModAtomic(i, ci, acc)
}

// prefetchMinVertices gates the row prefetch hints: below this many
// vertices the membership array (4 B/vertex ⇒ 1 MiB at the threshold) is
// L2-resident on any modern core, the gathers all hit, and the
// non-inlinable asm call is pure overhead (measured ~12% of a medium-RGG
// sweep on a 1 MiB-L2 Xeon). At and above it the scattered membership
// reads start missing to L3/DRAM, which is the latency the hints exist to
// hide.
const prefetchMinVertices = 1 << 18

// prefetchRow hints the CPU toward the membership slots vertex i's row is
// about to gather — the one scattered read per arc no layout can make
// sequential. The sweep bodies call it one vertex AHEAD of the one being
// decided, so the hints have a full decide's latency to land. Hints are
// issued eight at a time through the batched asm helpers because assembly
// calls cannot be inlined: one call per eight arcs keeps the overhead off
// the per-arc hot path (a per-arc call costs more than the misses it hides
// on cache-resident graphs). Rows shorter than a batch get a single scalar
// hint for their first target; under the noasm build tag every hint
// compiles to an inlined no-op.
//
//grappolo:hotpath
func (st *phaseState) prefetchRow(i int, membership []int32) {
	if st.inter {
		row := st.g.ArcRow(i)
		n := len(row)
		t := 0
		for ; t+8 <= n; t += 8 {
			par.PrefetchComm8S16(&membership[0], &row[t].Nbr)
		}
		if t < n {
			par.Prefetch32(&membership[row[t].Nbr])
		}
		return
	}
	st.prefetchRowSplit(i, membership)
}

// prefetchRowSplit is prefetchRow over the split id stream. The colored
// sweep bodies call it directly regardless of layout, matching decideLive's
// split-only reads.
//
//grappolo:hotpath
func (st *phaseState) prefetchRowSplit(i int, membership []int32) {
	nbr, _ := st.g.Neighbors(i)
	n := len(nbr)
	t := 0
	for ; t+8 <= n; t += 8 {
		par.PrefetchComm8(&membership[0], &nbr[t])
	}
	if t < n {
		par.Prefetch32(&membership[nbr[t]])
	}
}

// accumSnapSplit gathers e_{i→C} for every neighboring community of i from
// the SPLIT CSR (separate id and weight streams) with plain membership
// reads, and returns i's own community. The accumulator's first-touch key
// order equals the arc order, pinning ci at keys[0] (e_{i→C(i)\{i}} may be
// 0), which is what keeps the min-label tie-breaks bit-stable. This flat
// accumulation replaced the paper's per-vertex STL map (§5.5): one array
// write per arc, O(1) reset, zero allocations in steady state.
//
//grappolo:hotpath
func (st *phaseState) accumSnapSplit(i int, membership []int32, acc *par.SparseAccum) int32 {
	ci := membership[i]
	nbr, wts := st.g.Neighbors(i)
	acc.Reset()
	acc.Ensure(ci)
	for t, j := range nbr {
		if int(j) == i {
			continue // self-loop stays with i under any move
		}
		acc.Add(membership[j], wts[t])
	}
	return ci
}

// accumSnapInter is accumSnapSplit over the INTERLEAVED arc stream: each
// neighbor visit reads one packed (id, weight) element from a single
// sequential stream instead of gathering from two.
//
//grappolo:hotpath
func (st *phaseState) accumSnapInter(i int, membership []int32, acc *par.SparseAccum) int32 {
	ci := membership[i]
	row := st.g.ArcRow(i)
	acc.Reset()
	acc.Ensure(ci)
	for _, a := range row {
		if int(a.Nbr) == i {
			continue // self-loop stays with i under any move
		}
		acc.Add(membership[a.Nbr], a.W)
	}
	return ci
}

// accumAsyncSplit is accumSnapSplit with atomic membership loads (async
// sweeps move adjacent vertices concurrently).
//
//grappolo:hotpath
func (st *phaseState) accumAsyncSplit(i int, membership []int32, acc *par.SparseAccum) int32 {
	ci := atomicLoad32(&membership[i])
	nbr, wts := st.g.Neighbors(i)
	acc.Reset()
	acc.Ensure(ci)
	for t, j := range nbr {
		if int(j) == i {
			continue // self-loop stays with i under any move
		}
		acc.Add(atomicLoad32(&membership[j]), wts[t])
	}
	return ci
}

// accumAsyncInter is accumAsyncSplit over the interleaved arc stream.
//
//grappolo:hotpath
func (st *phaseState) accumAsyncInter(i int, membership []int32, acc *par.SparseAccum) int32 {
	ci := atomicLoad32(&membership[i])
	row := st.g.ArcRow(i)
	acc.Reset()
	acc.Ensure(ci)
	for _, a := range row {
		if int(a.Nbr) == i {
			continue // self-loop stays with i under any move
		}
		acc.Add(atomicLoad32(&membership[a.Nbr]), a.W)
	}
	return ci
}

// bestModPlain picks the max-gain move under Eq. (4) with plain aggregate
// reads, applying the generalized and singlet minimum-label heuristics of
// §5.1 (equal gains resolve to the smaller label; a singlet may enter
// another singlet community only downward, preventing the §4.2 swap cycles).
//
//grappolo:hotpath
func (st *phaseState) bestModPlain(i int, ci int32, acc *par.SparseAccum) int32 {
	comms := acc.Keys() // first-touch order, comms[0] == ci
	eOwn := acc.Val(ci) // e_{i→C(i)\{i}}
	m := st.m
	ki := st.g.Degree(i)
	best := ci
	bestGain := 0.0
	aOwn := st.commDeg[ci] - ki
	// Loop invariants of Eq. (4), hoisted without reassociating anything:
	// 2*ki*x parses as (2*ki)*x and st.gamma*y/(4*m*m) as (st.gamma*y)/(4*m*m),
	// so precomputing twoKi, ownTerm and denom4m2 yields bit-identical gains.
	twoKi := 2 * ki
	ownTerm := twoKi * aOwn
	denom4m2 := 4 * m * m
	gamma := st.gamma
	minLbl := st.minLbl
	commDeg := st.commDeg
	for _, ct := range comms[1:] {
		// Eq. (4).
		gain := (acc.Val(ct)-eOwn)/m + gamma*(ownTerm-twoKi*commDeg[ct])/denom4m2
		switch {
		case gain > bestGain:
			bestGain, best = gain, ct
		case minLbl && gain == bestGain && gain > 0 && ct < best:
			best = ct
		}
	}
	if best == ci || bestGain <= 0 {
		return ci
	}
	if st.minLbl && best > ci && st.size[ci] == 1 && st.size[best] == 1 {
		return ci
	}
	return best
}

// bestModAtomic is bestModPlain with atomic aggregate reads (colored and
// async sweeps mutate commDeg/size concurrently).
//
//grappolo:hotpath
func (st *phaseState) bestModAtomic(i int, ci int32, acc *par.SparseAccum) int32 {
	comms := acc.Keys()
	eOwn := acc.Val(ci)
	m := st.m
	ki := st.g.Degree(i)
	best := ci
	bestGain := 0.0
	aOwn := par.LoadFloat64(&st.commDeg[ci]) - ki
	// Same hoists as bestModPlain; see the note there on bit-identity.
	twoKi := 2 * ki
	ownTerm := twoKi * aOwn
	denom4m2 := 4 * m * m
	gamma := st.gamma
	minLbl := st.minLbl
	commDeg := st.commDeg
	for _, ct := range comms[1:] {
		// Eq. (4).
		gain := (acc.Val(ct)-eOwn)/m + gamma*(ownTerm-twoKi*par.LoadFloat64(&commDeg[ct]))/denom4m2
		switch {
		case gain > bestGain:
			bestGain, best = gain, ct
		case minLbl && gain == bestGain && gain > 0 && ct < best:
			best = ct
		}
	}
	if best == ci || bestGain <= 0 {
		return ci
	}
	if st.minLbl && best > ci &&
		atomicLoad64(&st.size[ci]) == 1 && atomicLoad64(&st.size[best]) == 1 {
		return ci
	}
	return best
}

// bestCPMPlain picks the max-gain move under the CPM objective (ΔH/m with
// the size-based penalty, future work iv) with plain aggregate reads.
//
//grappolo:hotpath
func (st *phaseState) bestCPMPlain(i int, ci int32, acc *par.SparseAccum) int32 {
	comms := acc.Keys()
	eOwn := acc.Val(ci)
	m := st.m
	best := ci
	bestGain := 0.0
	si := st.nodeSize[i]
	nsOwnLess := st.commNS[ci] - si
	// st.cpmGamma*float64(si) is loop-invariant and left-associated, so
	// hoisting it keeps the gains bit-identical.
	gSi := st.cpmGamma * float64(si)
	minLbl := st.minLbl
	commNS := st.commNS
	for _, ct := range comms[1:] {
		gain := (acc.Val(ct) - eOwn - gSi*float64(commNS[ct]-nsOwnLess)) / m
		switch {
		case gain > bestGain:
			bestGain, best = gain, ct
		case minLbl && gain == bestGain && gain > 0 && ct < best:
			best = ct
		}
	}
	if best == ci || bestGain <= 0 {
		return ci
	}
	if st.minLbl && best > ci && st.size[ci] == 1 && st.size[best] == 1 {
		return ci
	}
	return best
}

// bestCPMAtomic is bestCPMPlain with atomic aggregate reads.
//
//grappolo:hotpath
func (st *phaseState) bestCPMAtomic(i int, ci int32, acc *par.SparseAccum) int32 {
	comms := acc.Keys()
	eOwn := acc.Val(ci)
	m := st.m
	best := ci
	bestGain := 0.0
	si := st.nodeSize[i]
	nsOwnLess := atomicLoad64(&st.commNS[ci]) - si
	// Same hoist as bestCPMPlain; see the note there on bit-identity.
	gSi := st.cpmGamma * float64(si)
	minLbl := st.minLbl
	commNS := st.commNS
	for _, ct := range comms[1:] {
		gain := (acc.Val(ct) - eOwn - gSi*float64(atomicLoad64(&commNS[ct])-nsOwnLess)) / m
		switch {
		case gain > bestGain:
			bestGain, best = gain, ct
		case minLbl && gain == bestGain && gain > 0 && ct < best:
			best = ct
		}
	}
	if best == ci || bestGain <= 0 {
		return ci
	}
	if st.minLbl && best > ci &&
		atomicLoad64(&st.size[ci]) == 1 && atomicLoad64(&st.size[best]) == 1 {
		return ci
	}
	return best
}

// applyMove atomically migrates vertex i's contributions from community old
// to next (degree, count, and CPM node size when tracked).
//
//grappolo:hotpath
func (st *phaseState) applyMove(i int, old, next int32) {
	ki := st.g.Degree(i)
	par.AddFloat64(&st.commDeg[old], -ki)
	par.AddFloat64(&st.commDeg[next], ki)
	atomicAdd64(&st.size[old], -1)
	atomicAdd64(&st.size[next], 1)
	if st.commNS != nil {
		s := st.nodeSize[i]
		atomicAdd64(&st.commNS[old], -s)
		atomicAdd64(&st.commNS[next], s)
	}
}

// sweepUncolored performs one full parallel iteration without coloring:
// every vertex decides from the previous iteration's snapshot (no locks,
// deterministic for a fixed input regardless of worker count). Chunks are
// arc-balanced over the CSR offsets so a few hub vertices cannot serialize
// the sweep on skewed inputs, and each worker reuses its pooled accumulator.
func (st *phaseState) sweepUncolored(workers int) {
	copy(st.prev, st.curr)
	st.refreshAggregates(st.prev, workers)
	// The arc prefix is truncated to the movable range: a pinned suffix
	// (sweepOwn < n, see Engine.SweepSeeded) is simply never visited, so the
	// hot loop carries no per-vertex pin check at all.
	par.ForChunkPrefixCtx(st, st.g.ArcOffsets()[:st.sweepOwn+1], workers, func(st *phaseState, w, lo, hi int) {
		if st.stop() { // per-chunk cancellation check; results are discarded
			return
		}
		acc := st.scratch[w]
		for i := lo; i < hi; i++ {
			if st.pref && i+1 < hi {
				st.prefetchRow(i+1, st.prev) // hints land while i decides
			}
			st.curr[i] = st.decideSnap(i, st.prev, acc)
		}
	})
}

// sweepColoredSet processes one color set: vertices decide in parallel
// reading the LIVE community state and update the aggregates atomically on
// migration.
//
//grappolo:hotpath
func sweepColoredSet(st *phaseState, w, lo, hi int) {
	if st.stop() { // per-chunk cancellation check; results are discarded
		return
	}
	acc := st.scratch[w]
	set := st.curSet
	for t := lo; t < hi; t++ {
		i := int(set[t])
		if st.pref && t+1 < hi {
			st.prefetchRowSplit(int(set[t+1]), st.curr) // hints land while i decides
		}
		old := st.curr[i]
		next := st.decideLive(i, st.curr, acc)
		if next != old {
			st.applyMove(i, old, next)
			st.curr[i] = next
		}
	}
}

// colorMergeCutoff is the vertex count below which consecutive color sets
// are folded into one staged pass (par.ForStagesCtx) instead of each paying
// a full parallel-for fork/join. Greedy colorings produce a long tail of
// tiny sets — a few hundred vertices each — whose per-set barrier costs
// more than their work; 2048 vertices is comfortably past the point where
// the fork/join amortizes. Sets still execute serially in color order with
// a barrier between them (the moves of set k must be visible to set k+1),
// they merely share one worker team.
const colorMergeCutoff = 2048

// sweepColored performs one full iteration over color sets: sets are
// processed in order; inside a set vertices decide in parallel reading the
// LIVE community state (earlier sets' moves are visible, §5.4 step 3).
// Within a set, chunks are balanced by member arc counts (prefix sum over
// OutDegree into the pooled colorPrefix buffers) — unless the coloring was
// arc-rebalanced (arcEvenSets), in which case the sets are already even by
// construction and plain dynamic count chunks skip both the prefix build
// and the binary-search chunking. Runs of sets smaller than
// colorMergeCutoff share one worker team via par.ForStagesCtx (see the
// constant's comment).
func (st *phaseState) sweepColored(sets [][]int32, workers int) {
	st.refreshAggregates(st.curr, workers)
	if !st.arcEvenSets && !st.prefixReady {
		total := 0
		for _, set := range sets {
			total += len(set) + 1
		}
		buf := par.Resize(st.prefixBuf, total) // one backing array for all sets
		st.prefixBuf = buf
		prefixes := par.Resize(st.colorPrefix, len(sets))
		st.colorPrefix = prefixes
		off := 0
		for si, set := range sets {
			prefixes[si] = buf[off : off+len(set)+1]
			off += len(set) + 1
		}
		// Each set's degree prefix is independent, so the O(n) fill runs
		// one set per chunk item; the slicing above stays serial (it is
		// O(sets) pointer arithmetic).
		st.prefixSets = sets
		par.ForChunkCtx(st, len(sets), workers, 1, func(st *phaseState, lo, hi int) {
			for si := lo; si < hi; si++ {
				set := st.prefixSets[si]
				prefix := st.colorPrefix[si]
				prefix[0] = 0
				for t, v := range set {
					prefix[t+1] = prefix[t] + int64(st.g.OutDegree(int(v)))
				}
			}
		})
		st.prefixSets = nil
		st.prefixReady = true
	}
	for si := 0; si < len(sets); {
		// Color-set boundaries are the natural barriers of a colored sweep;
		// a canceled run abandons the remaining sets here (the owning
		// runPhase observes the same flag and unwinds).
		if st.stop() {
			break
		}
		// Extend a run of consecutive small sets; a run of length ≥ 2 is
		// worth merging into one staged pass.
		sj := si
		for sj < len(sets) && len(sets[sj]) < colorMergeCutoff {
			sj++
		}
		if sj-si >= 2 {
			st.mergeSets = sets[si:sj]
			par.ForStagesCtx(st, sj-si, mergedSetLen, workers, sweepMergedSet)
			st.mergeSets = nil
			si = sj
			continue
		}
		set := sets[si]
		st.curSet = set
		if st.arcEvenSets {
			par.ForChunkWorkerCtx(st, len(set), workers, 0, sweepColoredSet)
		} else {
			par.ForChunkPrefixCtx(st, st.colorPrefix[si], workers, sweepColoredSet)
		}
		si++
	}
	st.curSet = nil
}

// mergedSetLen is the stage-size hook for the merged small-set pass.
func mergedSetLen(st *phaseState, s int) int { return len(st.mergeSets[s]) }

// sweepMergedSet is sweepColoredSet for one stage of a merged run of small
// color sets: identical decide/apply semantics, the set simply comes from
// the staged pass instead of curSet.
//
//grappolo:hotpath
func sweepMergedSet(st *phaseState, s, w, lo, hi int) {
	if st.stop() { // per-chunk cancellation check; results are discarded
		return
	}
	acc := st.scratch[w]
	set := st.mergeSets[s]
	for t := lo; t < hi; t++ {
		i := int(set[t])
		if st.pref && t+1 < hi {
			st.prefetchRowSplit(int(set[t+1]), st.curr) // hints land while i decides
		}
		old := st.curr[i]
		next := st.decideLive(i, st.curr, acc)
		if next != old {
			st.applyMove(i, old, next)
			st.curr[i] = next
		}
	}
}

// sweepAsync performs one full iteration of asynchronous live-state local
// moves (the PLM emulation, §7): every vertex decides from whatever its
// neighbors' CURRENT assignments are, with membership and aggregates both
// accessed atomically because adjacent vertices move concurrently.
func (st *phaseState) sweepAsync(workers int) {
	st.refreshAggregates(st.curr, workers)
	par.ForChunkPrefixCtx(st, st.g.ArcOffsets(), workers, func(st *phaseState, w, lo, hi int) {
		if st.stop() { // per-chunk cancellation check; results are discarded
			return
		}
		acc := st.scratch[w]
		for i := lo; i < hi; i++ {
			if st.pref && i+1 < hi {
				st.prefetchRow(i+1, st.curr) // hints land while i decides
			}
			old := atomicLoad32(&st.curr[i])
			next := st.decideAsync(i, st.curr, acc)
			if next != old {
				st.applyMove(i, old, next)
				atomicStore32(&st.curr[i], next)
			}
		}
	})
}

// score computes the active objective for the current assignment: Eq. (3)
// modularity, or the normalized CPM score H/m under ObjCPM.
func (st *phaseState) score(workers int) float64 {
	if st.obj == ObjCPM {
		return st.cpmScore(workers)
	}
	return st.modularity(workers)
}

// cpmScore computes H/m = (w_in − γ·Σ_C binom(ns_C,2)) / m in parallel,
// with w_in counted by the coarsening-invariant within2/2 convention.
func (st *phaseState) cpmScore(workers int) float64 {
	g := st.g
	n := g.N()
	if n == 0 || st.m == 0 {
		return 0
	}
	within2 := par.SumFloat64Ctx(st, n, workers, func(st *phaseState, i int) float64 {
		ci := st.curr[i]
		nbr, wts := st.g.Neighbors(i)
		s := 0.0
		for t, j := range nbr {
			if int(j) == i || st.curr[j] == ci {
				s += wts[t]
			}
		}
		return s
	})
	ns := par.Resize(st.aggI, n)
	st.aggI = ns
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			st.aggI[i] = 0
		}
	})
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomicAdd64(&st.aggI[st.curr[i]], st.nodeSize[i])
		}
	})
	penalty := par.SumFloat64Ctx(st, n, workers, func(st *phaseState, c int) float64 {
		s := float64(st.aggI[c])
		return s * (s - 1) / 2
	})
	return (within2/2 - st.cpmGamma*penalty) / st.m
}

// modularity computes Eq. (3) for the current assignment in parallel.
func (st *phaseState) modularity(workers int) float64 {
	g := st.g
	n := g.N()
	m2 := g.TotalWeight()
	if n == 0 || m2 == 0 {
		return 0
	}
	within := par.SumFloat64Ctx(st, n, workers, func(st *phaseState, i int) float64 {
		ci := st.curr[i]
		nbr, wts := st.g.Neighbors(i)
		s := 0.0
		for t, j := range nbr {
			if st.curr[j] == ci {
				s += wts[t]
			}
		}
		return s
	})
	// a_C from curr (into the pooled, zeroed buffer), then Σ (a_C / 2m)².
	deg := par.Resize(st.aggF, n)
	st.aggF = deg
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			st.aggF[i] = 0
		}
	})
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			par.AddFloat64(&st.aggF[st.curr[i]], st.g.Degree(i))
		}
	})
	null := par.SumFloat64Ctx(st, n, workers, func(st *phaseState, c int) float64 {
		f := st.aggF[c] / st.m2
		return f * f
	})
	return within/m2 - st.gamma*null
}
