package core

import (
	"context"

	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// phaseState carries the per-phase working arrays of Algorithm 1. Under the
// Engine one phaseState instance is recycled across phases and runs: reset
// re-slices every array to the phase's vertex count, growing backing storage
// only past the high-water mark, so a warmed Engine runs phases without
// allocating. Loop bodies receive the state as an explicit pointer context
// (par.ForChunkWorkerCtx et al.) instead of capturing it, which keeps the
// single-worker paths allocation-free.
type phaseState struct {
	g        *graph.Graph
	m        float64   // sum of edge weights (paper's m)
	curr     []int32   // C_curr: community of each vertex
	prev     []int32   // C_prev: snapshot used for uncolored sweeps
	commDeg  []float64 // a_C, atomically maintained during colored sweeps
	size     []int64   // |C|, for the singlet minimum-label rule
	gamma    float64
	minLbl   bool // generalized minimum-label tie-break enabled
	obj      Objective
	cpmGamma float64
	nodeSize []int64 // original-vertex count per (meta-)vertex (CPM only)
	commNS   []int64 // Σ nodeSize per community (CPM only; nil ⇒ modularity)
	nsBuf    []int64 // pooled backing for commNS (which must stay nil-able)
	// scratch holds one neighbor-community accumulator per worker, grown in
	// place and reused across every sweep, iteration, phase and run, so the
	// decide loop is allocation-free in steady state (§5.5: the per-vertex
	// map was the dominant clustering cost).
	scratch []*par.SparseAccum
	// colorPrefix caches, per color set, the arc prefix sum that drives
	// arc-balanced chunking in colored sweeps. Sets and OutDegree are
	// immutable for the whole phase, so it is built once on the first
	// colored sweep and reused by every later iteration. prefixBuf is the
	// pooled backing array for all sets.
	colorPrefix [][]int64
	prefixBuf   []int64
	prefixReady bool
	// arcEvenSets marks that the phase's coloring was arc-rebalanced: the
	// sets are even by total arc count by construction, so the colored sweep
	// skips both the colorPrefix build and per-set arc chunking and uses
	// plain dynamic count chunks (the ROADMAP's "consume rebalanced sets
	// directly" item).
	arcEvenSets bool
	// sweepOwn bounds the vertices uncolored sweeps may MOVE: vertices in
	// [sweepOwn, n) are pinned — they contribute to community aggregates and
	// attract neighbors but never change community. reset sets it to n
	// (everything movable); Engine.SweepSeeded narrows it to freeze a ghost
	// suffix, which is how a shard clusters its own vertices against frozen
	// images of other shards' boundary vertices.
	sweepOwn int
	// aggF/aggI are pooled reduction buffers for the modularity (a_C) and
	// CPM (node-size) scoring kernels, zeroed per use.
	aggF []float64
	aggI []int64
	// transient loop-body inputs (set immediately before the loops that read
	// them; carried here so the captureless bodies reach them via the state
	// pointer).
	refreshFrom []int32 // refreshAggregates input assignment
	curSet      []int32 // sweepColored's current color set
	// ctx/cancel carry the owning run's cooperative cancellation (nil when
	// the run is not cancellable — standalone states and plain Run/RunInto).
	// ctx is polled at the barriers between sweeps and color sets; the
	// latched cancel flag is what sweep bodies observe once per chunk, so
	// the per-vertex hot loops stay branch-free.
	ctx    context.Context
	cancel *par.Cancel
}

// stop polls the owning run's cancellation source (see stopRequested): a
// latched flag first — one atomic load, the form the per-chunk checks
// inside sweep bodies take after the first hit — then the context, which
// latches the flag for everyone else.
func (st *phaseState) stop() bool {
	return stopRequested(st.ctx, st.cancel)
}

// reset prepares st for one phase over g, recycling every buffer.
func (st *phaseState) reset(g *graph.Graph, opts Options, nodeSize []int64, workers int) {
	n := g.N()
	st.g = g
	st.m = g.M()
	st.curr = par.Resize(st.curr, n)
	st.prev = par.Resize(st.prev, n)
	st.commDeg = par.Resize(st.commDeg, n)
	st.size = par.Resize(st.size, n)
	st.gamma = opts.Resolution
	st.minLbl = !opts.DisableMinLabel
	st.obj = opts.Objective
	st.cpmGamma = opts.CPMGamma
	st.nodeSize, st.commNS = nil, nil
	if st.obj == ObjCPM {
		st.nodeSize = nodeSize
		st.nsBuf = par.Resize(st.nsBuf, n)
		st.commNS = st.nsBuf
	}
	st.prefixReady = false
	st.arcEvenSets = false
	st.sweepOwn = n
	// One accumulator per effective worker: community ids live in [0, n),
	// and a vertex can touch at most OutDegree+1 distinct communities (the
	// key list grows amortized past that on coarser graphs).
	nw := par.Workers(workers, n)
	for len(st.scratch) < nw {
		st.scratch = append(st.scratch, par.NewSparseAccum(n, g.MaxOutDegree()+1))
	}
	for w := 0; w < nw; w++ {
		st.scratch[w].Grow(n)
	}
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			st.curr[i] = int32(i)
			st.commDeg[i] = st.g.Degree(i)
			st.size[i] = 1
			if st.commNS != nil {
				st.commNS[i] = st.nodeSize[i]
			}
		}
	})
}

// newPhaseState allocates a standalone phase state (tests, benchmarks, and
// the exported Modularity kernel); the Engine recycles one via reset.
func newPhaseState(g *graph.Graph, opts Options, nodeSize []int64, workers int) *phaseState {
	st := &phaseState{}
	st.reset(g, opts, nodeSize, workers)
	return st
}

// refreshAggregates recomputes a_C and |C| (and the CPM node-size sums)
// from the given assignment (prev for uncolored iterations, curr before a
// colored sweep).
func (st *phaseState) refreshAggregates(from []int32, workers int) {
	n := st.g.N()
	st.refreshFrom = from
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			st.commDeg[i] = 0
			st.size[i] = 0
			if st.commNS != nil {
				st.commNS[i] = 0
			}
		}
	})
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			c := st.refreshFrom[i]
			par.AddFloat64(&st.commDeg[c], st.g.Degree(i))
			atomicAdd64(&st.size[c], 1)
			if st.commNS != nil {
				atomicAdd64(&st.commNS[c], st.nodeSize[i])
			}
		}
	})
	st.refreshFrom = nil
}

// decide computes vertex i's new community per Eqs. (4)–(5) with the
// minimum-label heuristics of §5.1. membership is the array decisions read
// (prev for uncolored sweeps, curr for colored/async ones); atomicAgg
// selects whether community aggregates are read with atomic loads (colored
// sweeps mutate them concurrently); atomicComm additionally reads the
// membership itself atomically (async mode, where adjacent vertices move
// concurrently).
//
// Neighbor-community weights e_{i→C} aggregate in acc, the flat
// generation-stamped accumulator that replaced the paper's per-vertex STL
// map (§5.5): one array write per arc, O(1) reset, zero allocations in
// steady state. The accumulator's first-touch key order equals the old
// map-insertion order, so decisions — including the first-wins/min-label
// tie-breaks — are bit-identical to the map-based implementation.
func (st *phaseState) decide(i int, membership []int32, acc *par.SparseAccum, atomicAgg, atomicComm bool) int32 {
	g := st.g
	readComm := func(v int32) int32 {
		if atomicComm {
			return atomicLoad32(&membership[v])
		}
		return membership[v]
	}
	ci := readComm(int32(i))
	ki := g.Degree(i)
	nbr, wts := g.Neighbors(i)

	acc.Reset()
	// Pin the own community at keys[0] even when no neighbor shares it
	// (e_{i→C(i)\{i}} may be 0).
	acc.Ensure(ci)
	for t, j := range nbr {
		if int(j) == i {
			continue // self-loop stays with i under any move
		}
		acc.Add(readComm(j), wts[t])
	}

	loadDeg := func(c int32) float64 {
		if atomicAgg {
			return par.LoadFloat64(&st.commDeg[c])
		}
		return st.commDeg[c]
	}
	loadNS := func(c int32) int64 {
		if atomicAgg {
			return atomicLoad64(&st.commNS[c])
		}
		return st.commNS[c]
	}
	comms := acc.Keys() // first-touch order, comms[0] == ci
	eOwn := acc.Get(ci) // e_{i→C(i)\{i}}
	m := st.m
	best := ci
	bestGain := 0.0
	if st.obj == ObjCPM {
		si := st.nodeSize[i]
		nsOwnLess := loadNS(ci) - si
		for _, ct := range comms[1:] {
			// CPM gain: ΔH/m with the size-based penalty (future work iv).
			gain := (acc.Get(ct) - eOwn - st.cpmGamma*float64(si)*float64(loadNS(ct)-nsOwnLess)) / m
			switch {
			case gain > bestGain:
				bestGain, best = gain, ct
			case st.minLbl && gain == bestGain && gain > 0 && ct < best:
				best = ct
			}
		}
	} else {
		aOwn := loadDeg(ci) - ki
		for _, ct := range comms[1:] {
			// Eq. (4).
			gain := (acc.Get(ct)-eOwn)/m + st.gamma*(2*ki*aOwn-2*ki*loadDeg(ct))/(4*m*m)
			switch {
			case gain > bestGain:
				bestGain, best = gain, ct
			case st.minLbl && gain == bestGain && gain > 0 && ct < best:
				// Generalized minimum-label heuristic: equal gains resolve
				// to the smaller community label (§5.1).
				best = ct
			}
		}
	}
	if best == ci || bestGain <= 0 {
		return ci
	}
	// Singlet minimum-label heuristic: a singlet vertex may move into
	// another singlet community only if the target label is smaller,
	// preventing the swap cycles of §4.2 case 1.
	if st.minLbl && best > ci &&
		st.sizeOf(ci, atomicAgg) == 1 && st.sizeOf(best, atomicAgg) == 1 {
		return ci
	}
	return best
}

func (st *phaseState) sizeOf(c int32, atomicAgg bool) int64 {
	if atomicAgg {
		return atomicLoad64(&st.size[c])
	}
	return st.size[c]
}

// applyMove atomically migrates vertex i's contributions from community old
// to next (degree, count, and CPM node size when tracked).
func (st *phaseState) applyMove(i int, old, next int32) {
	ki := st.g.Degree(i)
	par.AddFloat64(&st.commDeg[old], -ki)
	par.AddFloat64(&st.commDeg[next], ki)
	atomicAdd64(&st.size[old], -1)
	atomicAdd64(&st.size[next], 1)
	if st.commNS != nil {
		s := st.nodeSize[i]
		atomicAdd64(&st.commNS[old], -s)
		atomicAdd64(&st.commNS[next], s)
	}
}

// sweepUncolored performs one full parallel iteration without coloring:
// every vertex decides from the previous iteration's snapshot (no locks,
// deterministic for a fixed input regardless of worker count). Chunks are
// arc-balanced over the CSR offsets so a few hub vertices cannot serialize
// the sweep on skewed inputs, and each worker reuses its pooled accumulator.
func (st *phaseState) sweepUncolored(workers int) {
	copy(st.prev, st.curr)
	st.refreshAggregates(st.prev, workers)
	// The arc prefix is truncated to the movable range: a pinned suffix
	// (sweepOwn < n, see Engine.SweepSeeded) is simply never visited, so the
	// hot loop carries no per-vertex pin check at all.
	par.ForChunkPrefixCtx(st, st.g.ArcOffsets()[:st.sweepOwn+1], workers, func(st *phaseState, w, lo, hi int) {
		if st.stop() { // per-chunk cancellation check; results are discarded
			return
		}
		acc := st.scratch[w]
		for i := lo; i < hi; i++ {
			st.curr[i] = st.decide(i, st.prev, acc, false, false)
		}
	})
}

// sweepColoredSet processes one color set: vertices decide in parallel
// reading the LIVE community state and update the aggregates atomically on
// migration.
func sweepColoredSet(st *phaseState, w, lo, hi int) {
	if st.stop() { // per-chunk cancellation check; results are discarded
		return
	}
	acc := st.scratch[w]
	set := st.curSet
	for t := lo; t < hi; t++ {
		i := int(set[t])
		old := st.curr[i]
		next := st.decide(i, st.curr, acc, true, false)
		if next != old {
			st.applyMove(i, old, next)
			st.curr[i] = next
		}
	}
}

// sweepColored performs one full iteration over color sets: sets are
// processed in order; inside a set vertices decide in parallel reading the
// LIVE community state (earlier sets' moves are visible, §5.4 step 3).
// Within a set, chunks are balanced by member arc counts (prefix sum over
// OutDegree into the pooled colorPrefix buffers) — unless the coloring was
// arc-rebalanced (arcEvenSets), in which case the sets are already even by
// construction and plain dynamic count chunks skip both the prefix build
// and the binary-search chunking.
func (st *phaseState) sweepColored(sets [][]int32, workers int) {
	st.refreshAggregates(st.curr, workers)
	if !st.arcEvenSets && !st.prefixReady {
		total := 0
		for _, set := range sets {
			total += len(set) + 1
		}
		buf := par.Resize(st.prefixBuf, total) // one backing array for all sets
		st.prefixBuf = buf
		prefixes := par.Resize(st.colorPrefix, len(sets))
		st.colorPrefix = prefixes
		off := 0
		for si, set := range sets {
			prefix := buf[off : off+len(set)+1]
			off += len(set) + 1
			prefix[0] = 0
			for t, v := range set {
				prefix[t+1] = prefix[t] + int64(st.g.OutDegree(int(v)))
			}
			prefixes[si] = prefix
		}
		st.prefixReady = true
	}
	for si, set := range sets {
		// Color-set boundaries are the natural barriers of a colored sweep;
		// a canceled run abandons the remaining sets here (the owning
		// runPhase observes the same flag and unwinds).
		if st.stop() {
			break
		}
		st.curSet = set
		if st.arcEvenSets {
			par.ForChunkWorkerCtx(st, len(set), workers, 0, sweepColoredSet)
		} else {
			par.ForChunkPrefixCtx(st, st.colorPrefix[si], workers, sweepColoredSet)
		}
	}
	st.curSet = nil
}

// sweepAsync performs one full iteration of asynchronous live-state local
// moves (the PLM emulation, §7): every vertex decides from whatever its
// neighbors' CURRENT assignments are, with membership and aggregates both
// accessed atomically because adjacent vertices move concurrently.
func (st *phaseState) sweepAsync(workers int) {
	st.refreshAggregates(st.curr, workers)
	par.ForChunkPrefixCtx(st, st.g.ArcOffsets(), workers, func(st *phaseState, w, lo, hi int) {
		if st.stop() { // per-chunk cancellation check; results are discarded
			return
		}
		acc := st.scratch[w]
		for i := lo; i < hi; i++ {
			old := atomicLoad32(&st.curr[i])
			next := st.decide(i, st.curr, acc, true, true)
			if next != old {
				st.applyMove(i, old, next)
				atomicStore32(&st.curr[i], next)
			}
		}
	})
}

// score computes the active objective for the current assignment: Eq. (3)
// modularity, or the normalized CPM score H/m under ObjCPM.
func (st *phaseState) score(workers int) float64 {
	if st.obj == ObjCPM {
		return st.cpmScore(workers)
	}
	return st.modularity(workers)
}

// cpmScore computes H/m = (w_in − γ·Σ_C binom(ns_C,2)) / m in parallel,
// with w_in counted by the coarsening-invariant within2/2 convention.
func (st *phaseState) cpmScore(workers int) float64 {
	g := st.g
	n := g.N()
	if n == 0 || st.m == 0 {
		return 0
	}
	within2 := par.SumFloat64Ctx(st, n, workers, func(st *phaseState, i int) float64 {
		ci := st.curr[i]
		nbr, wts := st.g.Neighbors(i)
		s := 0.0
		for t, j := range nbr {
			if int(j) == i || st.curr[j] == ci {
				s += wts[t]
			}
		}
		return s
	})
	ns := par.Resize(st.aggI, n)
	st.aggI = ns
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			st.aggI[i] = 0
		}
	})
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomicAdd64(&st.aggI[st.curr[i]], st.nodeSize[i])
		}
	})
	penalty := par.SumFloat64Ctx(st, n, workers, func(st *phaseState, c int) float64 {
		s := float64(st.aggI[c])
		return s * (s - 1) / 2
	})
	return (within2/2 - st.cpmGamma*penalty) / st.m
}

// modularity computes Eq. (3) for the current assignment in parallel.
func (st *phaseState) modularity(workers int) float64 {
	g := st.g
	n := g.N()
	m2 := g.TotalWeight()
	if n == 0 || m2 == 0 {
		return 0
	}
	within := par.SumFloat64Ctx(st, n, workers, func(st *phaseState, i int) float64 {
		ci := st.curr[i]
		nbr, wts := st.g.Neighbors(i)
		s := 0.0
		for t, j := range nbr {
			if st.curr[j] == ci {
				s += wts[t]
			}
		}
		return s
	})
	// a_C from curr (into the pooled, zeroed buffer), then Σ (a_C / 2m)².
	deg := par.Resize(st.aggF, n)
	st.aggF = deg
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			st.aggF[i] = 0
		}
	})
	par.ForChunkCtx(st, n, workers, 0, func(st *phaseState, lo, hi int) {
		for i := lo; i < hi; i++ {
			par.AddFloat64(&st.aggF[st.curr[i]], st.g.Degree(i))
		}
	})
	null := par.SumFloat64Ctx(st, n, workers, func(st *phaseState, c int) float64 {
		f := st.aggF[c] / st.g.TotalWeight()
		return f * f
	})
	return within/m2 - st.gamma*null
}
