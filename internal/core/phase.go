package core

import (
	"grappolo/internal/coloring"
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

// phaseState carries the per-phase working arrays of Algorithm 1.
type phaseState struct {
	g        *graph.Graph
	m        float64   // sum of edge weights (paper's m)
	curr     []int32   // C_curr: community of each vertex
	prev     []int32   // C_prev: snapshot used for uncolored sweeps
	commDeg  []float64 // a_C, atomically maintained during colored sweeps
	size     []int64   // |C|, for the singlet minimum-label rule
	gamma    float64
	minLbl   bool // generalized minimum-label tie-break enabled
	obj      Objective
	cpmGamma float64
	nodeSize []int64 // original-vertex count per (meta-)vertex (CPM only)
	commNS   []int64 // Σ nodeSize per community (CPM only)
	// scratch holds one neighbor-community accumulator per worker, allocated
	// once per phase and reused across every sweep and iteration so the
	// decide loop is allocation-free in steady state (§5.5: the per-vertex
	// map was the dominant clustering cost).
	scratch []*par.SparseAccum
	// colorPrefix caches, per color set, the arc prefix sum that drives
	// arc-balanced chunking in colored sweeps. Sets and OutDegree are
	// immutable for the whole phase, so it is built once on the first
	// colored sweep and reused by every later iteration.
	colorPrefix [][]int64
}

func newPhaseState(g *graph.Graph, opts Options, nodeSize []int64, workers int) *phaseState {
	n := g.N()
	st := &phaseState{
		g:        g,
		m:        g.M(),
		curr:     make([]int32, n),
		prev:     make([]int32, n),
		commDeg:  make([]float64, n),
		size:     make([]int64, n),
		gamma:    opts.Resolution,
		minLbl:   !opts.DisableMinLabel,
		obj:      opts.Objective,
		cpmGamma: opts.CPMGamma,
	}
	if st.obj == ObjCPM {
		st.nodeSize = nodeSize
		st.commNS = make([]int64, n)
	}
	// One accumulator per effective worker: community ids live in [0, n),
	// and a vertex can touch at most OutDegree+1 distinct communities.
	st.scratch = make([]*par.SparseAccum, par.Workers(workers, n))
	for w := range st.scratch {
		st.scratch[w] = par.NewSparseAccum(n, g.MaxOutDegree()+1)
	}
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.curr[i] = int32(i)
			st.commDeg[i] = g.Degree(i)
			st.size[i] = 1
			if st.commNS != nil {
				st.commNS[i] = nodeSize[i]
			}
		}
	})
	return st
}

// refreshAggregates recomputes a_C and |C| (and the CPM node-size sums)
// from the given assignment (prev for uncolored iterations, curr before a
// colored sweep).
func (st *phaseState) refreshAggregates(from []int32, workers int) {
	n := st.g.N()
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.commDeg[i] = 0
			st.size[i] = 0
			if st.commNS != nil {
				st.commNS[i] = 0
			}
		}
	})
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := from[i]
			par.AddFloat64(&st.commDeg[c], st.g.Degree(i))
			atomicAdd64(&st.size[c], 1)
			if st.commNS != nil {
				atomicAdd64(&st.commNS[c], st.nodeSize[i])
			}
		}
	})
}

// decide computes vertex i's new community per Eqs. (4)–(5) with the
// minimum-label heuristics of §5.1. membership is the array decisions read
// (prev for uncolored sweeps, curr for colored/async ones); atomicAgg
// selects whether community aggregates are read with atomic loads (colored
// sweeps mutate them concurrently); atomicComm additionally reads the
// membership itself atomically (async mode, where adjacent vertices move
// concurrently).
//
// Neighbor-community weights e_{i→C} aggregate in acc, the flat
// generation-stamped accumulator that replaced the paper's per-vertex STL
// map (§5.5): one array write per arc, O(1) reset, zero allocations in
// steady state. The accumulator's first-touch key order equals the old
// map-insertion order, so decisions — including the first-wins/min-label
// tie-breaks — are bit-identical to the map-based implementation.
func (st *phaseState) decide(i int, membership []int32, acc *par.SparseAccum, atomicAgg, atomicComm bool) int32 {
	g := st.g
	readComm := func(v int32) int32 {
		if atomicComm {
			return atomicLoad32(&membership[v])
		}
		return membership[v]
	}
	ci := readComm(int32(i))
	ki := g.Degree(i)
	nbr, wts := g.Neighbors(i)

	acc.Reset()
	// Pin the own community at keys[0] even when no neighbor shares it
	// (e_{i→C(i)\{i}} may be 0).
	acc.Ensure(ci)
	for t, j := range nbr {
		if int(j) == i {
			continue // self-loop stays with i under any move
		}
		acc.Add(readComm(j), wts[t])
	}

	loadDeg := func(c int32) float64 {
		if atomicAgg {
			return par.LoadFloat64(&st.commDeg[c])
		}
		return st.commDeg[c]
	}
	loadNS := func(c int32) int64 {
		if atomicAgg {
			return atomicLoad64(&st.commNS[c])
		}
		return st.commNS[c]
	}
	comms := acc.Keys() // first-touch order, comms[0] == ci
	eOwn := acc.Get(ci) // e_{i→C(i)\{i}}
	m := st.m
	best := ci
	bestGain := 0.0
	if st.obj == ObjCPM {
		si := st.nodeSize[i]
		nsOwnLess := loadNS(ci) - si
		for _, ct := range comms[1:] {
			// CPM gain: ΔH/m with the size-based penalty (future work iv).
			gain := (acc.Get(ct) - eOwn - st.cpmGamma*float64(si)*float64(loadNS(ct)-nsOwnLess)) / m
			switch {
			case gain > bestGain:
				bestGain, best = gain, ct
			case st.minLbl && gain == bestGain && gain > 0 && ct < best:
				best = ct
			}
		}
	} else {
		aOwn := loadDeg(ci) - ki
		for _, ct := range comms[1:] {
			// Eq. (4).
			gain := (acc.Get(ct)-eOwn)/m + st.gamma*(2*ki*aOwn-2*ki*loadDeg(ct))/(4*m*m)
			switch {
			case gain > bestGain:
				bestGain, best = gain, ct
			case st.minLbl && gain == bestGain && gain > 0 && ct < best:
				// Generalized minimum-label heuristic: equal gains resolve
				// to the smaller community label (§5.1).
				best = ct
			}
		}
	}
	if best == ci || bestGain <= 0 {
		return ci
	}
	// Singlet minimum-label heuristic: a singlet vertex may move into
	// another singlet community only if the target label is smaller,
	// preventing the swap cycles of §4.2 case 1.
	if st.minLbl && best > ci &&
		st.sizeOf(ci, atomicAgg) == 1 && st.sizeOf(best, atomicAgg) == 1 {
		return ci
	}
	return best
}

func (st *phaseState) sizeOf(c int32, atomicAgg bool) int64 {
	if atomicAgg {
		return atomicLoad64(&st.size[c])
	}
	return st.size[c]
}

// applyMove atomically migrates vertex i's contributions from community old
// to next (degree, count, and CPM node size when tracked).
func (st *phaseState) applyMove(i int, old, next int32) {
	ki := st.g.Degree(i)
	par.AddFloat64(&st.commDeg[old], -ki)
	par.AddFloat64(&st.commDeg[next], ki)
	atomicAdd64(&st.size[old], -1)
	atomicAdd64(&st.size[next], 1)
	if st.commNS != nil {
		s := st.nodeSize[i]
		atomicAdd64(&st.commNS[old], -s)
		atomicAdd64(&st.commNS[next], s)
	}
}

// sweepUncolored performs one full parallel iteration without coloring:
// every vertex decides from the previous iteration's snapshot (no locks,
// deterministic for a fixed input regardless of worker count). Chunks are
// arc-balanced over the CSR offsets so a few hub vertices cannot serialize
// the sweep on skewed inputs, and each worker reuses its pooled accumulator.
func (st *phaseState) sweepUncolored(workers int) {
	copy(st.prev, st.curr)
	st.refreshAggregates(st.prev, workers)
	par.ForChunkPrefix(st.g.ArcOffsets(), workers, func(w, lo, hi int) {
		acc := st.scratch[w]
		for i := lo; i < hi; i++ {
			st.curr[i] = st.decide(i, st.prev, acc, false, false)
		}
	})
}

// sweepColored performs one full iteration over color sets: sets are
// processed in order; inside a set vertices decide in parallel reading the
// LIVE community state (earlier sets' moves are visible, §5.4 step 3) and
// update the aggregates atomically on migration. Within a set, chunks are
// balanced by member arc counts (prefix sum over OutDegree into the reused
// setPrefix buffer) rather than member counts.
func (st *phaseState) sweepColored(sets [][]int32, workers int) {
	st.refreshAggregates(st.curr, workers)
	if st.colorPrefix == nil {
		total := 0
		for _, set := range sets {
			total += len(set) + 1
		}
		buf := make([]int64, total) // one backing array for all sets
		st.colorPrefix = make([][]int64, len(sets))
		off := 0
		for si, set := range sets {
			prefix := buf[off : off+len(set)+1]
			off += len(set) + 1
			for t, v := range set {
				prefix[t+1] = prefix[t] + int64(st.g.OutDegree(int(v)))
			}
			st.colorPrefix[si] = prefix
		}
	}
	for si, set := range sets {
		par.ForChunkPrefix(st.colorPrefix[si], workers, func(w, lo, hi int) {
			acc := st.scratch[w]
			for t := lo; t < hi; t++ {
				i := int(set[t])
				old := st.curr[i]
				next := st.decide(i, st.curr, acc, true, false)
				if next != old {
					st.applyMove(i, old, next)
					st.curr[i] = next
				}
			}
		})
	}
}

// sweepAsync performs one full iteration of asynchronous live-state local
// moves (the PLM emulation, §7): every vertex decides from whatever its
// neighbors' CURRENT assignments are, with membership and aggregates both
// accessed atomically because adjacent vertices move concurrently.
func (st *phaseState) sweepAsync(workers int) {
	st.refreshAggregates(st.curr, workers)
	par.ForChunkPrefix(st.g.ArcOffsets(), workers, func(w, lo, hi int) {
		acc := st.scratch[w]
		for i := lo; i < hi; i++ {
			old := atomicLoad32(&st.curr[i])
			next := st.decide(i, st.curr, acc, true, true)
			if next != old {
				st.applyMove(i, old, next)
				atomicStore32(&st.curr[i], next)
			}
		}
	})
}

// score computes the active objective for the current assignment: Eq. (3)
// modularity, or the normalized CPM score H/m under ObjCPM.
func (st *phaseState) score(workers int) float64 {
	if st.obj == ObjCPM {
		return st.cpmScore(workers)
	}
	return st.modularity(workers)
}

// cpmScore computes H/m = (w_in − γ·Σ_C binom(ns_C,2)) / m in parallel,
// with w_in counted by the coarsening-invariant within2/2 convention.
func (st *phaseState) cpmScore(workers int) float64 {
	g := st.g
	n := g.N()
	if n == 0 || st.m == 0 {
		return 0
	}
	within2 := par.SumFloat64(n, workers, func(i int) float64 {
		ci := st.curr[i]
		nbr, wts := g.Neighbors(i)
		s := 0.0
		for t, j := range nbr {
			if int(j) == i || st.curr[j] == ci {
				s += wts[t]
			}
		}
		return s
	})
	ns := make([]int64, n)
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomicAdd64(&ns[st.curr[i]], st.nodeSize[i])
		}
	})
	penalty := par.SumFloat64(n, workers, func(c int) float64 {
		s := float64(ns[c])
		return s * (s - 1) / 2
	})
	return (within2/2 - st.cpmGamma*penalty) / st.m
}

// modularity computes Eq. (3) for the current assignment in parallel.
func (st *phaseState) modularity(workers int) float64 {
	g := st.g
	n := g.N()
	m2 := g.TotalWeight()
	if n == 0 || m2 == 0 {
		return 0
	}
	within := par.SumFloat64(n, workers, func(i int) float64 {
		ci := st.curr[i]
		nbr, wts := g.Neighbors(i)
		s := 0.0
		for t, j := range nbr {
			if st.curr[j] == ci {
				s += wts[t]
			}
		}
		return s
	})
	// a_C from curr, then Σ (a_C / 2m)².
	deg := make([]float64, n)
	par.ForChunk(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			par.AddFloat64(&deg[st.curr[i]], g.Degree(i))
		}
	})
	null := par.SumFloat64(n, workers, func(c int) float64 {
		f := deg[c] / m2
		return f * f
	})
	return within/m2 - st.gamma*null
}

// runPhase executes the iterations of one phase per Algorithm 1 and
// returns the dense membership, the trace, and the final modularity.
// colorSets is nil for uncolored phases.
func runPhase(g *graph.Graph, opts Options, threshold float64, colorSets *coloring.Coloring, nodeSize []int64) ([]int32, PhaseStats, float64) {
	workers := opts.Workers
	st := newPhaseState(g, opts, nodeSize, workers)
	stats := PhaseStats{VertexCount: g.N()}
	prevQ := st.score(workers)
	for iter := 0; opts.MaxIterations == 0 || iter < opts.MaxIterations; iter++ {
		switch {
		case colorSets != nil:
			st.sweepColored(colorSets.Sets, workers)
		case opts.Async:
			st.sweepAsync(workers)
		default:
			st.sweepUncolored(workers)
		}
		q := st.score(workers)
		stats.Iterations++
		stats.Modularity = append(stats.Modularity, q)
		if q-prevQ < threshold {
			prevQ = q
			break
		}
		prevQ = q
	}
	var dense []int32
	if opts.SerialRenumber {
		dense = renumberSerial(st.curr)
	} else {
		dense = renumberParallel(st.curr, workers)
	}
	return dense, stats, prevQ
}
