package core

import (
	"fmt"
	"testing"

	"grappolo/internal/generate"
	"grappolo/internal/graph"
)

// Golden regression values for the DETERMINISTIC configurations (uncolored
// variants are bit-stable for any worker count; the graph builder is
// bit-deterministic too). Every case runs under both arc layouts — the
// interleaved layout is a pure rearrangement, so the goldens must hold
// bit-identically under it. If an intentional algorithm change shifts these,
// re-derive them with `go test -run Golden -v` and update — any
// unintentional shift is a regression.
func TestGoldenDeterministicRuns(t *testing.T) {
	type golden struct {
		in      generate.Input
		variant string
		nc      int
		qPrefix string // Q truncated to 6 decimals as a string
	}
	cases := []golden{
		{generate.CNR, "baseline", 19, "0.871702"},
		{generate.CNR, "vf", 19, "0.871702"},
		{generate.EuropeOSM, "baseline", 32, "0.927783"},
		{generate.EuropeOSM, "vf", 34, "0.925659"},
		{generate.MG1, "baseline", 20, "0.936237"},
		{generate.LiveJournal, "baseline", 24, "0.832207"},
	}
	for _, c := range cases {
		for _, l := range []ArcLayout{ArcLayoutSplit, ArcLayoutInterleaved} {
			g := generate.MustGenerate(c.in, generate.Small, 0, 4)
			if l == ArcLayoutInterleaved {
				g.SetLayout(graph.LayoutInterleaved, 4)
			}
			var o Options
			switch c.variant {
			case "baseline":
				o = smallOpts(4)
			case "vf":
				o = withVF(smallOpts(4))
			}
			o.ArcLayout = l
			res := Run(g, o)
			got := fmt.Sprintf("%.6f", res.Modularity)
			if res.NumCommunities != c.nc || got != c.qPrefix {
				t.Errorf("%s/%s/%d: got nc=%d Q=%s, golden nc=%d Q=%s",
					c.in, c.variant, l, res.NumCommunities, got, c.nc, c.qPrefix)
			}
		}
	}
}
