package core

import (
	"context"
	"testing"

	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/seq"
)

// twoTriangles returns two triangles joined by one bridge: 0-1-2 and 3-4-5.
func twoTriangles() *graph.Graph {
	b := graph.NewBuilder(6)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		b.AddEdge(e[0], e[1], 1)
	}
	return b.Build(1)
}

func identitySeed(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

func TestSweepSeededMatchesPhaseOnSingletons(t *testing.T) {
	// With an identity seed and nothing pinned, a seeded sweep is exactly an
	// uncolored first phase: same communities as the engine's own phase 1.
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 2)
	eng := NewEngine(Options{Workers: 2})
	out := make([]int32, g.N())
	iters, q, err := eng.SweepSeeded(context.Background(), g, identitySeed(g.N()), g.N(), out)
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Fatal("no iterations ran")
	}
	if got := seq.Modularity(g, out, 1); got != q {
		// score() computes Eq. (3) over the final assignment; both must agree.
		if diff := got - q; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("returned score %v != recomputed %v", q, got)
		}
	}
	if q <= 0 {
		t.Fatalf("degenerate sweep: Q=%v", q)
	}
}

func TestSweepSeededPinsSuffix(t *testing.T) {
	// Pin the second triangle: its vertices must keep their seeded labels
	// while the movable half still clusters — and may join a pinned label.
	g := twoTriangles()
	eng := NewEngine(Options{Workers: 1})
	seed := identitySeed(6)
	out := make([]int32, 6)
	if _, _, err := eng.SweepSeeded(context.Background(), g, seed, 3, out); err != nil {
		t.Fatal(err)
	}
	for v := 3; v < 6; v++ {
		if out[v] != seed[v] {
			t.Fatalf("pinned vertex %d moved: %d -> %d", v, seed[v], out[v])
		}
	}
	if out[0] != out[1] || out[1] != out[2] {
		t.Fatalf("movable triangle did not merge: %v", out[:3])
	}
}

func TestSweepSeededSeedLabelsRespected(t *testing.T) {
	// Seed the two triangles as two ready-made communities: the sweep has
	// nothing to improve, labels must be preserved verbatim.
	g := twoTriangles()
	eng := NewEngine(Options{Workers: 1})
	seed := []int32{0, 0, 0, 3, 3, 3}
	out := make([]int32, 6)
	_, q, err := eng.SweepSeeded(context.Background(), g, seed, 6, out)
	if err != nil {
		t.Fatal(err)
	}
	for v := range out {
		if out[v] != seed[v] {
			t.Fatalf("vertex %d left its seeded community: %d -> %d", v, seed[v], out[v])
		}
	}
	if want := seq.Modularity(g, seed, 1); q < want-1e-12 || q > want+1e-12 {
		t.Fatalf("score %v != %v", q, want)
	}
}

func TestSweepSeededDeterministicAcrossWorkers(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 1, 2)
	seed := identitySeed(g.N())
	var ref []int32
	for _, w := range []int{1, 2, 7} {
		eng := NewEngine(Options{Workers: w})
		out := make([]int32, g.N())
		if _, _, err := eng.SweepSeeded(context.Background(), g, seed, g.N(), out); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out
			continue
		}
		for v := range out {
			if out[v] != ref[v] {
				t.Fatalf("workers=%d: membership diverges at vertex %d", w, v)
			}
		}
	}
}

func TestSweepSeededValidation(t *testing.T) {
	g := twoTriangles()
	eng := NewEngine(Options{Workers: 1})
	out := make([]int32, 6)
	ctx := context.Background()
	if _, _, err := eng.SweepSeeded(ctx, g, make([]int32, 3), 6, out); err == nil {
		t.Fatal("short seed accepted")
	}
	if _, _, err := eng.SweepSeeded(ctx, g, identitySeed(6), 7, out); err == nil {
		t.Fatal("out-of-range pin boundary accepted")
	}
	if _, _, err := eng.SweepSeeded(ctx, g, []int32{0, 1, 2, 3, 4, 9}, 6, out); err == nil {
		t.Fatal("out-of-range seed label accepted")
	}
	if _, _, err := eng.SweepSeeded(ctx, g, identitySeed(6), 6, make([]int32, 2)); err == nil {
		t.Fatal("short out accepted")
	}
	cpm := NewEngine(Options{Workers: 1, Objective: ObjCPM, CPMGamma: 0.5})
	if _, _, err := cpm.SweepSeeded(ctx, g, identitySeed(6), 6, out); err == nil {
		t.Fatal("CPM engine accepted")
	}
}

func TestSweepSeededHonorsCancellation(t *testing.T) {
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	eng := NewEngine(Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := make([]int32, g.N())
	if _, _, err := eng.SweepSeeded(ctx, g, identitySeed(g.N()), g.N(), out); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSweepSeededSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	for _, l := range []ArcLayout{ArcLayoutSplit, ArcLayoutInterleaved} {
		g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
		if l == ArcLayoutInterleaved {
			g.SetLayout(graph.LayoutInterleaved, 1)
		}
		eng := NewEngine(Options{Workers: 1, ArcLayout: l})
		seed := identitySeed(g.N())
		out := make([]int32, g.N())
		pin := g.N() * 3 / 4
		if _, _, err := eng.SweepSeeded(context.Background(), g, seed, pin, out); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			if _, _, err := eng.SweepSeeded(context.Background(), g, seed, pin, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("layout %d: warmed SweepSeeded allocates %v times per call, want 0", l, allocs)
		}
	}
}

func TestSweepSeededThenRunReusesEngine(t *testing.T) {
	// A pool engine serves seeded shard sweeps and full detections back to
	// back; neither path may poison the other's state.
	g := generate.MustGenerate(generate.MG1, generate.Small, 0, 2)
	o := Options{Workers: 2}
	eng := NewEngine(o)
	want := Run(g, o)
	out := make([]int32, g.N())
	if _, _, err := eng.SweepSeeded(context.Background(), g, identitySeed(g.N()), g.N()/2, out); err != nil {
		t.Fatal(err)
	}
	got := eng.Run(g)
	if got.Modularity != want.Modularity || got.NumCommunities != want.NumCommunities {
		t.Fatalf("run after seeded sweep diverged: Q=%v/%v nc=%d/%d",
			got.Modularity, want.Modularity, got.NumCommunities, want.NumCommunities)
	}
	for v := range got.Membership {
		if got.Membership[v] != want.Membership[v] {
			t.Fatalf("membership diverges at %d", v)
		}
	}
}
