package core

import (
	"context"
	"testing"

	"grappolo/internal/coloring"
	"grappolo/internal/generate"
	"grappolo/internal/graph"
)

// splitAndInter builds the same input twice: once in the default split
// layout, once converted to the interleaved layout. The builder is
// bit-deterministic, so the two graphs hold identical arcs in identical
// order — any result divergence between them is a kernel bug, not noise.
func splitAndInter(t *testing.T, in generate.Input) (*graph.Graph, *graph.Graph) {
	t.Helper()
	gs := generate.MustGenerate(in, generate.Small, 0, 4)
	gi := generate.MustGenerate(in, generate.Small, 0, 4)
	gi.SetLayout(graph.LayoutInterleaved, 4)
	if gi.Layout() != graph.LayoutInterleaved || gi.Arcs() == nil {
		t.Fatal("SetLayout(LayoutInterleaved) did not materialize the arc stream")
	}
	return gs, gi
}

// TestLayoutEquivalenceAcrossConfigs pins the tentpole's core contract: the
// interleaved layout is a pure rearrangement, so every configuration — each
// forced onto its own coarse layout as well — produces bit-identical
// memberships and bit-identical scores under both layouts. Colored and async
// variants run at one worker (their cross-worker schedules are not
// deterministic); uncolored variants run at four to cover the parallel
// monomorphic kernels.
func TestLayoutEquivalenceAcrossConfigs(t *testing.T) {
	withCPM := func(o Options) Options {
		o.Objective = ObjCPM
		o.CPMGamma = 0.5
		return o
	}
	withHier := func(o Options) Options { o.KeepHierarchy = true; return o }
	variants := map[string]Options{
		"baseline":  smallOpts(4),
		"vf":        withVF(smallOpts(4)),
		"chain":     withChain(withVF(smallOpts(4))),
		"hierarchy": withHier(smallOpts(4)),
		"color":     withColor(smallOpts(1)),
		"arc-bal":   withArcBalance(withColor(smallOpts(1))),
		"d2":        withD2(withColor(smallOpts(1))),
		"jp":        withJP(withColor(smallOpts(1))),
		"cpm":       withCPM(smallOpts(4)),
		"cpm-color": withCPM(withColor(smallOpts(1))),
		"async":     PLM(1),
	}
	for _, in := range []generate.Input{generate.CNR, generate.EuropeOSM, generate.MG1} {
		gs, gi := splitAndInter(t, in)
		for name, o := range variants {
			os, oi := o, o
			os.ArcLayout = ArcLayoutSplit
			oi.ArcLayout = ArcLayoutInterleaved
			a, b := Run(gs, os), Run(gi, oi)
			if a.Modularity != b.Modularity || a.NumCommunities != b.NumCommunities {
				t.Errorf("%s/%s: split nc=%d Q=%v vs interleaved nc=%d Q=%v",
					in, name, a.NumCommunities, a.Modularity, b.NumCommunities, b.Modularity)
				continue
			}
			for v := range a.Membership {
				if a.Membership[v] != b.Membership[v] {
					t.Errorf("%s/%s: membership diverges at vertex %d", in, name, v)
					break
				}
			}
			if len(a.Levels) != len(b.Levels) {
				t.Errorf("%s/%s: hierarchy depth %d vs %d", in, name, len(a.Levels), len(b.Levels))
			}
		}
	}
}

// TestLayoutAutoInheritsInput pins the ArcLayoutAuto contract: the coarse
// graphs follow the input's layout, and either way results match the forced
// configurations exactly.
func TestLayoutAutoInheritsInput(t *testing.T) {
	gs, gi := splitAndInter(t, generate.CNR)
	o := smallOpts(4) // ArcLayoutAuto by default
	forced := o
	forced.ArcLayout = ArcLayoutInterleaved
	a, b, c := Run(gs, o), Run(gi, o), Run(gi, forced)
	if a.Modularity != b.Modularity || b.Modularity != c.Modularity {
		t.Fatalf("auto runs diverge: %v / %v / %v", a.Modularity, b.Modularity, c.Modularity)
	}
	for v := range a.Membership {
		if a.Membership[v] != b.Membership[v] || b.Membership[v] != c.Membership[v] {
			t.Fatalf("membership diverges at vertex %d", v)
		}
	}
	if gi.Layout() != graph.LayoutInterleaved {
		t.Fatal("input graph layout was mutated by the engine")
	}
	if gs.Layout() != graph.LayoutSplit || gs.Arcs() != nil {
		t.Fatal("split input grew an arc stream: the engine must never convert the caller's graph")
	}
}

// TestSweepModesLayoutEquivalence compares the three sweep bodies head to
// head across layouts at the phaseState level, so a divergence is pinned to
// one kernel rather than smeared over a whole run. The colored sweep on a
// Small input consists entirely of sets below colorMergeCutoff, so this also
// exercises the merged-set staged path under both layouts.
func TestSweepModesLayoutEquivalence(t *testing.T) {
	sweeps := map[string]func(st *phaseState, sets [][]int32){
		"uncolored": func(st *phaseState, _ [][]int32) { st.sweepUncolored(4) },
		"colored":   func(st *phaseState, sets [][]int32) { st.sweepColored(sets, 1) },
		"async":     func(st *phaseState, _ [][]int32) { st.sweepAsync(1) },
	}
	for _, in := range []generate.Input{generate.CNR, generate.RGG} {
		gs, gi := splitAndInter(t, in)
		cs := coloring.Parallel(gs, 1)
		for name, sweep := range sweeps {
			run := func(g *graph.Graph) []int32 {
				o := Options{Resolution: 1}.Defaults()
				if name == "async" {
					o = PLM(1)
				}
				st := newPhaseState(g, o, nil, 4)
				for it := 0; it < 3; it++ {
					sweep(st, cs.Sets)
				}
				out := make([]int32, len(st.curr))
				copy(out, st.curr)
				return out
			}
			a, b := run(gs), run(gi)
			for v := range a {
				if a[v] != b[v] {
					t.Errorf("%s/%s: membership diverges at vertex %d after 3 sweeps", in, name, v)
					break
				}
			}
		}
	}
}

// TestSweepSeededLayoutEquivalence extends the layout contract to the shard
// tier's entry point: a seeded, partially pinned sweep returns bit-identical
// labels and the bit-identical score under both layouts.
func TestSweepSeededLayoutEquivalence(t *testing.T) {
	gs, gi := splitAndInter(t, generate.RGG)
	seed := identitySeed(gs.N())
	pin := gs.N() * 3 / 4
	run := func(g *graph.Graph, l ArcLayout) ([]int32, float64) {
		eng := NewEngine(Options{Workers: 2, ArcLayout: l})
		out := make([]int32, g.N())
		_, q, err := eng.SweepSeeded(context.Background(), g, seed, pin, out)
		if err != nil {
			t.Fatal(err)
		}
		return out, q
	}
	a, qa := run(gs, ArcLayoutSplit)
	b, qb := run(gi, ArcLayoutInterleaved)
	if qa != qb {
		t.Fatalf("seeded sweep scores diverge: %v vs %v", qa, qb)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("seeded sweep membership diverges at vertex %d", v)
		}
	}
}
