package core

import (
	"slices"
	"testing"

	"grappolo/internal/coloring"
	"grappolo/internal/generate"
	"grappolo/internal/graph"
)

// engineConfigs enumerates deterministic configurations (uncolored modes are
// schedule-independent at any worker count; colored/live-state modes only at
// one worker) used to pin Engine output against the one-shot path.
func engineConfigs() map[string]Options {
	colored := func(o Options) Options {
		o.Coloring = ColorMultiPhase
		o.ColoringVertexCutoff = 1
		return o
	}
	return map[string]Options{
		"baseline-w4":        Baseline(4),
		"vf-chain-w4":        withChain(withVF(Baseline(4))),
		"hierarchy-w4":       {Workers: 4, KeepHierarchy: true},
		"serialrenumber-w2":  {Workers: 2, SerialRenumber: true},
		"cpm-w4":             {Workers: 4, Objective: ObjCPM, CPMGamma: 0.5},
		"color-w1":           colored(Baseline(1)),
		"color-arc-w1":       withArcBalance(colored(Baseline(1))),
		"color-auto-w1":      colored(Options{Workers: 1, ColorBalance: BalanceAuto}),
		"color-vertex-d2-w1": withD2(withBalanced(colored(Baseline(1)))),
		"color-jp-w1":        withJP(colored(Baseline(1))),
	}
}

func sameResult(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if !slices.Equal(got.Membership, want.Membership) {
		t.Fatalf("%s: memberships differ", name)
	}
	if got.NumCommunities != want.NumCommunities || got.Modularity != want.Modularity {
		t.Fatalf("%s: nc=%d Q=%v, want nc=%d Q=%v",
			name, got.NumCommunities, got.Modularity, want.NumCommunities, want.Modularity)
	}
	if got.TotalIterations != want.TotalIterations || len(got.Phases) != len(want.Phases) {
		t.Fatalf("%s: iters=%d phases=%d, want iters=%d phases=%d",
			name, got.TotalIterations, len(got.Phases), want.TotalIterations, len(want.Phases))
	}
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("%s: %d hierarchy levels, want %d", name, len(got.Levels), len(want.Levels))
	}
	for l := range want.Levels {
		if !slices.Equal(got.Levels[l], want.Levels[l]) {
			t.Fatalf("%s: hierarchy level %d differs", name, l)
		}
	}
}

// TestEngineReuseMatchesFreshRun pins the tentpole guarantee: a warmed,
// reused Engine — including RunInto result recycling — is bit-identical to a
// cold core.Run for every deterministic configuration.
func TestEngineReuseMatchesFreshRun(t *testing.T) {
	for _, in := range []generate.Input{generate.CNR, generate.EuropeOSM} {
		g := generate.MustGenerate(in, generate.Small, 0, 4)
		for name, o := range engineConfigs() {
			want := Run(g, o)
			eng := NewEngine(o)
			var res *Result
			for rep := 0; rep < 3; rep++ {
				res = eng.RunInto(g, res)
				sameResult(t, string(in)+"/"+name, res, want)
			}
		}
	}
}

// TestEngineReuseAcrossShapes drags one Engine across differently-shaped
// graphs — growing, shrinking, growing again — and checks each run against a
// fresh one-shot run, pinning the grow-in-place paths of every pooled buffer.
func TestEngineReuseAcrossShapes(t *testing.T) {
	graphs := []*graph.Graph{
		generate.MustGenerate(generate.CNR, generate.Small, 0, 4),
		twoCliques(),
		generate.MustGenerate(generate.MG1, generate.Small, 0, 4),
		generate.MustGenerate(generate.CNR, generate.Small, 1, 4),
	}
	for name, o := range map[string]Options{
		"vf-w4":    withVF(Baseline(4)),
		"color-w1": {Workers: 1, Coloring: ColorMultiPhase, ColoringVertexCutoff: 1, ColorBalance: BalanceArcs},
	} {
		eng := NewEngine(o)
		var res *Result
		for gi, g := range graphs {
			want := Run(g, o)
			res = eng.RunInto(g, res)
			sameResult(t, name+"/graph", res, want)
			validatePartition(t, g, res, generate.Input("shape"), name)
			_ = gi
		}
	}
}

// TestEngineRunSteadyStateZeroAllocs is the full-pipeline extension of
// TestDecideSteadyStateZeroAllocs: once an Engine has seen a graph shape, a
// further RunInto over the same shape — coloring, rebalancing, every sweep,
// scoring, renumbering, node-size re-aggregation, and the coarse-graph
// rebuilds included — performs ZERO allocations. Scratch that survives only
// by being over-counted (a single make per phase, say) fails this exactly,
// which a loose "small constant" bound would miss. Single worker: the
// goroutine spawns of the parallel paths inherently allocate.
func TestEngineRunSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	for name, o := range map[string]Options{
		"baseline":  {Workers: 1},
		"hierarchy": {Workers: 1, KeepHierarchy: true},
		"vfcolor-arc": {Workers: 1, VertexFollowing: true, VFChainCompression: true,
			Coloring: ColorMultiPhase, ColoringVertexCutoff: 1, ColorBalance: BalanceArcs},
		"vfcolor-auto": {Workers: 1, VertexFollowing: true,
			Coloring: ColorMultiPhase, ColoringVertexCutoff: 1, ColorBalance: BalanceAuto},
		"cpm": {Workers: 1, Objective: ObjCPM, CPMGamma: 0.5},
		"interleaved": {Workers: 1, ArcLayout: ArcLayoutInterleaved,
			VertexFollowing: true, Coloring: ColorMultiPhase, ColoringVertexCutoff: 1},
	} {
		eng := NewEngine(o)
		res := eng.Run(g)
		res = eng.RunInto(g, res) // second warm pass settles the arenas
		allocs := testing.AllocsPerRun(3, func() {
			res = eng.RunInto(g, res)
		})
		if allocs != 0 {
			t.Errorf("%s: warmed Engine.RunInto allocates %v times per run, want 0", name, allocs)
		}
		if res.NumCommunities <= 1 || res.Modularity <= 0 {
			t.Fatalf("%s: degenerate result nc=%d Q=%v", name, res.NumCommunities, res.Modularity)
		}
	}
}

// TestEngineRunAllocatesOnlyResult pins the Run (non-Into) contract: the
// warmed engine allocates only the Result and its slices.
func TestEngineRunAllocatesOnlyResult(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	eng := NewEngine(Options{Workers: 1})
	res := eng.Run(g)
	res = eng.RunInto(g, res)
	// Per run: the Result struct, the membership slice, the Phases append
	// growth chain, and one score-trace append chain per phase. Anything
	// beyond that bound would be scratch escaping into the one-shot path.
	budget := float64(2 + len(res.Phases) + 2)
	for _, ph := range res.Phases {
		budget += float64(len(ph.Modularity) + 1)
	}
	allocs := testing.AllocsPerRun(3, func() {
		_ = eng.Run(g)
	})
	if allocs > budget {
		t.Fatalf("warmed Engine.Run allocates %v times per run, want <= %v (result-only)", allocs, budget)
	}
}

// TestBalanceAutoTracksSkew pins the adaptive mode against its explicit
// endpoints: with a threshold the skewed base coloring exceeds, auto equals
// forced arc rebalancing; with an unreachable threshold it equals no
// rebalancing.
func TestBalanceAutoTracksSkew(t *testing.T) {
	// UK2002's synthetic analog is exactly the §6.2 skew case.
	g := generate.MustGenerate(generate.UK2002, generate.Small, 0, 4)
	base := Options{Workers: 1, Coloring: ColorMultiPhase, ColoringVertexCutoff: 1}

	arc := base
	arc.ColorBalance = BalanceArcs
	auto := base
	auto.ColorBalance = BalanceAuto
	auto.AutoBalanceArcRSD = 1e-9 // any measurable skew triggers the repair
	sameResult(t, "auto≡arc", Run(g, auto), Run(g, arc))

	off := base
	never := base
	never.ColorBalance = BalanceAuto
	never.AutoBalanceArcRSD = 1e9
	sameResult(t, "auto≡off", Run(g, never), Run(g, off))
}

// TestArcEvenSetsSkipPrefixMatchesChunked pins satellite scheduling: at one
// worker the arc-even direct-set path and the prefix-chunked path must visit
// vertices in the same order, so forced arc rebalancing (which enables the
// skip) stays bit-identical to a run that chunks the same rebalanced sets by
// prefix. Exercised implicitly by TestEngineReuseMatchesFreshRun; here the
// two sweep schedulers are compared head to head on one phase.
func TestArcEvenSetsSkipPrefixMatchesChunked(t *testing.T) {
	g := generate.MustGenerate(generate.CNR, generate.Small, 0, 4)
	o := Options{Workers: 1}.Defaults()
	cs := coloring.Parallel(g, 1)

	run := func(arcEven bool) []int32 {
		st := newPhaseState(g, o, nil, 1)
		st.arcEvenSets = arcEven
		st.sweepColored(cs.Sets, 1)
		out := make([]int32, len(st.curr))
		copy(out, st.curr)
		return out
	}
	if !slices.Equal(run(true), run(false)) {
		t.Fatal("arc-even direct-set sweep differs from prefix-chunked sweep at one worker")
	}
}

func BenchmarkEngineReuse(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.ScaleFromEnv(), 0, 0)
	o := BaselineVFColor(0)
	o.ColoringVertexCutoff = 512
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := NewEngine(o).Run(g)
			if res.Modularity <= 0 {
				b.Fatal("bad run")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := NewEngine(o)
		var res *Result
		for i := 0; i < b.N; i++ {
			res = eng.RunInto(g, res)
			if res.Modularity <= 0 {
				b.Fatal("bad run")
			}
		}
	})
}
