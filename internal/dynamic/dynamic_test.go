package dynamic

import (
	"context"
	"errors"
	"math"
	"testing"

	"grappolo/internal/core"
	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/par"
)

func smallFull() core.Options {
	o := core.BaselineVFColor(2)
	o.ColoringVertexCutoff = 32
	return o
}

func twoCliques() *graph.Graph {
	b := graph.NewBuilder(10)
	for base := 0; base <= 5; base += 5 {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(int32(base+i), int32(base+j), 1)
			}
		}
	}
	b.AddEdge(0, 5, 1)
	return b.Build(2)
}

func TestMaintainerInitialState(t *testing.T) {
	g := twoCliques()
	m := New(g, Options{Full: smallFull()})
	if m.N() != 10 || m.FullRuns() != 1 {
		t.Fatalf("n=%d fullRuns=%d", m.N(), m.FullRuns())
	}
	if got, want := m.Modularity(), m.Quality(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("overlay modularity %v != snapshot %v", got, want)
	}
	if m.Modularity() < 0.4 {
		t.Fatalf("initial Q=%v", m.Modularity())
	}
}

func TestIncrementalEdgeJoinsNewVertex(t *testing.T) {
	g := twoCliques()
	m := New(g, Options{Full: smallFull(), BatchSize: 1})
	// New vertex 10 attaches firmly to the first clique.
	for _, v := range []int32{0, 1, 2, 3} {
		if err := m.AddEdge(10, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	m.Flush()
	comm := m.Membership()
	if comm[10] != comm[0] {
		t.Fatalf("new vertex not merged into its clique: %v", comm[10])
	}
	if got, want := m.Modularity(), m.Quality(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("overlay %v vs snapshot %v", got, want)
	}
}

func TestBatchingAndFlush(t *testing.T) {
	g := twoCliques()
	m := New(g, Options{Full: smallFull(), BatchSize: 100, RefreshFraction: 10})
	if err := m.AddEdge(10, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Below batch size: not applied yet, membership unchanged in length.
	if m.N() != 10 {
		t.Fatalf("edge applied before flush: n=%d", m.N())
	}
	m.Flush()
	if m.N() != 11 {
		t.Fatalf("flush did not grow: n=%d", m.N())
	}
	if m.BatchApplies() != 1 {
		t.Fatalf("batches=%d", m.BatchApplies())
	}
}

func TestRefreshTriggersFullRun(t *testing.T) {
	g := twoCliques()
	m := New(g, Options{Full: smallFull(), BatchSize: 1, RefreshFraction: 0.01})
	before := m.FullRuns()
	if err := m.AddEdge(0, 7, 1); err != nil { // touches > 1% of 10 vertices
		t.Fatal(err)
	}
	if m.FullRuns() != before+1 {
		t.Fatalf("full run not triggered: %d", m.FullRuns())
	}
}

func TestStreamMaintainsQualityOnGrowingSBM(t *testing.T) {
	// Stream an SBM in two halves: seed with the first half, then feed the
	// rest edge by edge. Incremental quality must track a from-scratch run
	// within a small band.
	full, truth := generate.SBM(generate.SBMConfig{
		Communities: []int{60, 60, 60}, IntraDegree: 12, CrossFrac: 0.05,
	}, 5, 2)
	_ = truth
	// Split edges.
	var initial, stream []graph.Edge
	rng := par.NewRNG(9)
	for u := 0; u < full.N(); u++ {
		nbr, wts := full.Neighbors(u)
		for t, v := range nbr {
			if int32(u) > v {
				continue
			}
			e := graph.Edge{U: int32(u), V: v, W: wts[t]}
			if rng.Float64() < 0.7 {
				initial = append(initial, e)
			} else {
				stream = append(stream, e)
			}
		}
	}
	gb := graph.NewBuilder(full.N())
	gb.AddEdges(initial)
	m := New(gb.Build(2), Options{Full: smallFull(), BatchSize: 64, RefreshFraction: 0.35})
	for _, e := range stream {
		if err := m.AddEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	m.Flush()
	streamQ := m.Quality()
	scratch := core.Run(full, smallFull())
	if streamQ < scratch.Modularity-0.1 {
		t.Fatalf("incremental Q=%.4f trails scratch %.4f by more than 0.1",
			streamQ, scratch.Modularity)
	}
	t.Logf("incremental Q=%.4f scratch Q=%.4f fullRuns=%d batches=%d",
		streamQ, scratch.Modularity, m.FullRuns(), m.BatchApplies())
}

func TestAddEdgeErrors(t *testing.T) {
	m := New(twoCliques(), Options{Full: smallFull()})
	if err := m.AddEdge(-1, 0, 1); err == nil {
		t.Fatal("want error for negative id")
	}
}

func TestSelfLoopInsertion(t *testing.T) {
	m := New(twoCliques(), Options{Full: smallFull(), BatchSize: 1, RefreshFraction: 10})
	if err := m.AddEdge(3, 3, 2); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Modularity(), m.Quality(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("overlay %v vs snapshot %v after self-loop", got, want)
	}
}

// TestSelfLoopStreamMatchesReference audits the overlay's self-loop weight
// convention end to end: a self-loop is stored once, counted once in the
// degree and once in `within`, while non-loop edges are counted twice via
// the two overlay directions — the same convention as graph's CSR and
// seq.Modularity. The stream exercises initial self-loops, self-loops on
// existing and brand-new vertices, and both Flush paths (incremental
// local-move and full re-run), cross-checking the overlay score and its
// degree bookkeeping against a fresh Snapshot after every stage.
func TestSelfLoopStreamMatchesReference(t *testing.T) {
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(int32(i), int32(j), 1)
		}
	}
	b.AddEdge(1, 1, 2.5) // self-loop in the seed graph
	b.AddEdge(4, 5, 1)
	g := b.Build(2)

	check := func(m *Maintainer, stage string) {
		t.Helper()
		got, want := m.Modularity(), m.Quality()
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s: overlay Q=%v != snapshot Q=%v (diff %g)", stage, got, want, got-want)
		}
		snap := m.Snapshot()
		if math.Abs(m.m2-snap.TotalWeight()) > 1e-9 {
			t.Fatalf("%s: overlay 2m=%v != snapshot %v", stage, m.m2, snap.TotalWeight())
		}
		commDeg := make([]float64, m.N())
		for i := 0; i < m.N(); i++ {
			if math.Abs(m.degree[i]-snap.Degree(i)) > 1e-9 {
				t.Fatalf("%s: degree[%d]=%v != snapshot %v", stage, i, m.degree[i], snap.Degree(i))
			}
			commDeg[m.comm[i]] += m.degree[i]
		}
		for c := range commDeg {
			if math.Abs(commDeg[c]-m.commDeg[c]) > 1e-9 {
				t.Fatalf("%s: commDeg[%d]=%v, recomputed %v", stage, c, m.commDeg[c], commDeg[c])
			}
		}
	}

	// RefreshFraction 0.99 keeps Flush on the incremental local-move path.
	m := New(g, Options{Full: smallFull(), BatchSize: 100, RefreshFraction: 0.99})
	check(m, "initial (seed self-loop)")

	m.AddEdge(0, 0, 3) // self-loop on an existing vertex
	m.AddEdge(2, 2, 1.5)
	m.AddEdge(7, 7, 4) // self-loop on a brand-new vertex (grows past id 6)
	m.AddEdge(7, 0, 1)
	m.Flush()
	if m.FullRuns() != 1 {
		t.Fatalf("expected the incremental path, fullRuns=%d", m.FullRuns())
	}
	check(m, "incremental batch with self-loops")

	// A second maintainer with a tiny refresh fraction forces the full
	// re-run path on the same self-loop stream.
	mf := New(g, Options{Full: smallFull(), BatchSize: 100, RefreshFraction: 1e-9})
	mf.AddEdge(0, 0, 3)
	mf.AddEdge(7, 7, 4)
	mf.Flush()
	if mf.FullRuns() != 2 {
		t.Fatalf("expected a full re-run, fullRuns=%d", mf.FullRuns())
	}
	check(mf, "full-rerun batch with self-loops")
}

func TestEmptyStart(t *testing.T) {
	m := New(graph.NewBuilder(0).Build(1), Options{Full: smallFull(), BatchSize: 4, RefreshFraction: 10})
	if m.Modularity() != 0 {
		t.Fatal("empty modularity")
	}
	for i := int32(0); i < 4; i++ {
		if err := m.AddEdge(i, (i+1)%4, 1); err != nil {
			t.Fatal(err)
		}
	}
	m.Flush()
	if m.N() != 4 {
		t.Fatalf("n=%d", m.N())
	}
	if got, want := m.Modularity(), m.Quality(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("overlay %v vs snapshot %v", got, want)
	}
}

// TestAddEdgeRejectsBadWeights pins the weight-validation fix: NaN used to
// slip through the `w <= 0` sign test (NaN compares false) and poison
// m2/degree/commDeg into a permanently-NaN Modularity, and non-positive
// weights were silently coerced to 1. All now fail typed, and the overlay
// is untouched.
func TestAddEdgeRejectsBadWeights(t *testing.T) {
	m := New(twoCliques(), Options{Full: smallFull(), BatchSize: 1})
	qBefore := m.Modularity()
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -3} {
		err := m.AddEdge(0, 7, w)
		if !errors.Is(err, ErrBadWeight) {
			t.Fatalf("AddEdge(w=%v) = %v, want ErrBadWeight", w, err)
		}
	}
	if len(m.pending) != 0 {
		t.Fatalf("rejected edges were buffered: %d pending", len(m.pending))
	}
	if q := m.Modularity(); q != qBefore || math.IsNaN(q) {
		t.Fatalf("rejected edges perturbed the overlay: Q %v -> %v", qBefore, q)
	}
	// A valid edge still lands.
	if err := m.AddEdge(0, 7, 0.5); err != nil {
		t.Fatal(err)
	}
}

// TestFlushCtxCanceled pins the cancellation fix: a refresh-triggered full
// re-detection honors ctx (the engine's chunk-granular contract), the
// overlay stays consistent, and the next uncancelled flush recovers by
// re-running the refresh.
func TestFlushCtxCanceled(t *testing.T) {
	g := twoCliques()
	m := New(g, Options{Full: smallFull(), BatchSize: 100, RefreshFraction: 0.01})
	runs := m.FullRuns()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.AddEdgeCtx(ctx, 0, 7, 1); err != nil {
		t.Fatalf("buffering under a dead ctx must not fail: %v", err)
	}
	err := m.FlushCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FlushCtx under canceled ctx = %v, want context.Canceled", err)
	}
	if m.FullRuns() != runs {
		t.Fatalf("canceled refresh still counted a full run")
	}
	// Overlay applied, drift retained: degree and m2 include the edge.
	if m.degree[7] != g.Degree(7)+1 {
		t.Fatalf("canceled flush lost the applied edge: degree[7]=%v", m.degree[7])
	}
	if len(m.touched) == 0 {
		t.Fatal("canceled refresh dropped the touched set; it can never re-arm")
	}
	// Recovery: a live-context flush retries the refresh.
	if err := m.AddEdge(1, 8, 1); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if m.FullRuns() != runs+1 {
		t.Fatalf("refresh did not re-arm after cancellation: runs=%d", m.FullRuns())
	}
	if got, want := m.Modularity(), m.Quality(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("overlay %v vs snapshot %v after recovery", got, want)
	}
}

// TestNewSeeded pins the seeded constructor: it adopts the given membership
// with zero engine runs, agrees with the reference modularity, and keeps
// maintaining incrementally from that seed.
func TestNewSeeded(t *testing.T) {
	g := twoCliques()
	base := New(g, Options{Full: smallFull()})
	seed := append([]int32(nil), base.Membership()...)

	m, err := NewSeeded(g, seed, Options{Full: smallFull(), BatchSize: 1, RefreshFraction: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.FullRuns() != 0 {
		t.Fatalf("NewSeeded ran the engine: FullRuns=%d", m.FullRuns())
	}
	if got, want := m.Modularity(), base.Modularity(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("seeded overlay Q=%v, seed Q=%v", got, want)
	}
	if got, want := m.Modularity(), m.Quality(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("overlay %v vs snapshot %v", got, want)
	}
	// Incremental maintenance proceeds from the seed.
	for _, v := range []int32{0, 1, 2, 3} {
		if err := m.AddEdge(10, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	if m.Membership()[10] != m.Membership()[0] {
		t.Fatal("seeded maintainer did not absorb the new vertex")
	}
	if m.FullRuns() != 0 {
		t.Fatalf("small delta triggered a full run: %d", m.FullRuns())
	}
}

// TestNewSeededRejectsBadMembership pins seed validation.
func TestNewSeededRejectsBadMembership(t *testing.T) {
	g := twoCliques()
	if _, err := NewSeeded(g, make([]int32, 3), Options{Full: smallFull()}); err == nil {
		t.Fatal("want error for short membership")
	}
	bad := make([]int32, g.N())
	bad[4] = int32(g.N())
	if _, err := NewSeeded(g, bad, Options{Full: smallFull()}); err == nil {
		t.Fatal("want error for out-of-range label")
	}
}

// TestFullRunAllocsBounded pins the scratch-reuse perf fix: a warm refresh
// reuses the staging edge buffer, the engine run target and the
// community-degree array, so repeated refreshes allocate far less than the
// first (which pays for all persistent scratch). The snapshot CSR itself is
// rebuilt per refresh, so the bound is "small", not zero.
func TestFullRunAllocsBounded(t *testing.T) {
	g := twoCliques()
	m := New(g, Options{Full: core.Baseline(1), BatchSize: 1, RefreshFraction: 0})
	// RefreshFraction 0 defaults to 0.25; force refreshes via tiny fraction.
	m.opts.RefreshFraction = 1e-9
	// Warm every code path: a few refresh cycles.
	for i := 0; i < 3; i++ {
		if err := m.AddEdge(0, int32(5+i%5), 0.001); err != nil {
			t.Fatal(err)
		}
		m.Flush()
	}
	warm := testing.AllocsPerRun(10, func() {
		if err := m.AddEdge(1, 6, 0.001); err != nil {
			t.Fatal(err)
		}
		m.Flush()
	})
	// The dominant remaining cost is the per-refresh snapshot CSR build
	// (FromEdges) plus overlay map touches — tens of allocations on this
	// 11-vertex graph. Before the fix every refresh also rebuilt the
	// Builder's edge slab, a fresh commDeg, a fresh touched map and a full
	// engine Result (hundreds of allocations).
	if warm > 120 {
		t.Fatalf("warm refresh allocates %v times, want <= 120", warm)
	}
}
