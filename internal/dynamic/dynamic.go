// Package dynamic maintains communities under a stream of edge insertions —
// the paper's future-work item (i): "extending the experiments to
// larger-scale inputs ... and targeting community detection in real-time".
//
// The maintainer keeps the current graph as an adjacency-map overlay plus
// the last detected partitioning. Edge arrivals are buffered into batches;
// when a batch is applied, only the vertices whose neighborhoods changed
// (and their communities) are re-decided with Louvain local moves, seeded
// from the existing assignment — the standard incremental-Louvain recipe.
// When drift accumulates (tracked by the fraction of vertices touched since
// the last full optimization), the maintainer triggers a full parallel
// re-run to re-anchor quality.
package dynamic

import (
	"context"
	"errors"
	"fmt"
	"math"

	"grappolo/internal/core"
	"grappolo/internal/graph"
	"grappolo/internal/par"
	"grappolo/internal/seq"
)

// ErrBadWeight is returned by AddEdge for a weight that is not a positive
// finite number. NaN, ±Inf, zero and negative weights are all rejected: a
// single NaN admitted into the overlay poisons m2, the degrees and every
// community degree, making Modularity() NaN forever after, and a silent
// ≤0→1 coercion would hide caller bugs the same way the pre-validation
// Options fields used to. Match with errors.Is.
var ErrBadWeight = errors.New("dynamic: edge weight must be a positive finite number")

// Options configure the maintainer.
type Options struct {
	// Workers for full re-runs (<= 0: all CPUs).
	Workers int
	// BatchSize is the number of buffered edges applied at once
	// (default 1024). Apply can also be called manually.
	BatchSize int
	// RefreshFraction triggers a full re-run once the touched-vertex
	// fraction since the last full run exceeds it (default 0.25).
	RefreshFraction float64
	// LocalRounds is the number of local-move rounds per batch over the
	// affected frontier (default 2).
	LocalRounds int
	// Core options used for full re-runs; zero value = BaselineVFColor.
	Full core.Options
}

func (o Options) defaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 1024
	}
	if o.RefreshFraction <= 0 {
		o.RefreshFraction = 0.25
	}
	if o.LocalRounds <= 0 {
		o.LocalRounds = 2
	}
	zero := core.Options{}
	if o.Full == zero {
		o.Full = core.BaselineVFColor(o.Workers)
	}
	return o
}

// Maintainer holds the evolving graph and its community assignment.
type Maintainer struct {
	opts Options
	// engine is the reusable detection pipeline for full re-runs: scratch
	// (phase arrays, rebuild arenas, coloring buffers) is recycled across
	// Flush-triggered re-detections instead of re-allocated, which is
	// exactly the repeated-run workload core.Engine exists for. The
	// maintainer is single-threaded, matching the engine's no-concurrent-Run
	// rule.
	engine *core.Engine
	// adj is the live adjacency overlay: adj[u][v] = weight.
	adj []map[int32]float64
	// comm is the current community of each vertex; degree the weighted
	// degree; commDeg the community degrees (a_C); m2 the total weight.
	comm    []int32
	degree  []float64
	commDeg []float64
	m2      float64
	pending []graph.Edge
	touched map[int32]struct{}
	// fullRun scratch, persistent across refreshes: the snapshot edge
	// staging buffer and the engine's run target.
	edgeBuf []graph.Edge
	fullRes *core.Result
	// onApply, when set, runs after every successfully applied batch.
	onApply func()
	// stats
	fullRuns     int
	batchApplies int
}

// New creates a maintainer seeded with an initial graph and a fresh full
// detection run.
func New(g *graph.Graph, opts Options) *Maintainer {
	m := newOverlay(g, opts)
	// The background context cannot fire; under injected faults a canceled
	// seeding run leaves the identity assignment, which the first Flush's
	// refresh retry re-anchors.
	_ = m.fullRun(context.Background())
	return m
}

// NewSeeded creates a maintainer over g adopting an existing community
// assignment instead of running a cold full detection — the serving-tier
// fast path: a cached membership for g seeds incremental maintenance with
// ZERO engine runs. membership must assign every vertex of g a community id
// in [0, g.N()); ids need not be dense. FullRuns starts at 0.
func NewSeeded(g *graph.Graph, membership []int32, opts Options) (*Maintainer, error) {
	m := newOverlay(g, opts)
	n := g.N()
	if len(membership) != n {
		return nil, fmt.Errorf("dynamic: seed membership has %d entries for a %d-vertex graph", len(membership), n)
	}
	m.comm = par.Resize(m.comm, n)
	m.commDeg = par.Resize(m.commDeg, n)
	for i := range m.commDeg {
		m.commDeg[i] = 0
	}
	for i, c := range membership {
		if c < 0 || int(c) >= n {
			return nil, fmt.Errorf("dynamic: seed membership[%d] = %d out of range [0, %d)", i, c, n)
		}
		m.comm[i] = c
		m.commDeg[c] += m.degree[i]
	}
	return m, nil
}

// newOverlay builds the adjacency-map overlay of g (shared by New and
// NewSeeded) with an identity community assignment.
func newOverlay(g *graph.Graph, opts Options) *Maintainer {
	opts = opts.defaults()
	n := g.N()
	m := &Maintainer{
		opts:    opts,
		engine:  core.NewEngine(opts.Full),
		adj:     make([]map[int32]float64, n),
		comm:    make([]int32, n),
		degree:  make([]float64, n),
		commDeg: make([]float64, n),
		touched: make(map[int32]struct{}),
	}
	for i := 0; i < n; i++ {
		nbr, wts := g.Neighbors(i)
		m.adj[i] = make(map[int32]float64, len(nbr))
		for t, j := range nbr {
			m.adj[i][j] = wts[t]
		}
		m.degree[i] = g.Degree(i)
		m.m2 += g.Degree(i)
		m.comm[i] = int32(i)
		m.commDeg[i] = g.Degree(i)
	}
	return m
}

// N returns the current vertex count.
func (m *Maintainer) N() int { return len(m.adj) }

// Membership returns the current community assignment (live slice; copy if
// retaining).
func (m *Maintainer) Membership() []int32 { return m.comm }

// FullRuns reports how many full re-detections have happened (including the
// initial one for New-constructed maintainers; NewSeeded starts at 0).
func (m *Maintainer) FullRuns() int { return m.fullRuns }

// BatchApplies reports how many incremental batches have been applied.
func (m *Maintainer) BatchApplies() int { return m.batchApplies }

// SetOnApply registers f to run after every successfully applied batch —
// whether it was absorbed by frontier local moves or triggered a full
// re-detection. Serving layers use it as the invalidation hook: a cached
// result derived from this maintainer's graph is stale the moment a batch
// lands. A nil f clears the hook.
func (m *Maintainer) SetOnApply(f func()) { m.onApply = f }

// Modularity recomputes Eq. (3) on the live overlay.
//
// Self-loop convention (audited against seq.Modularity on Snapshot()): a
// self-loop is stored once in its owner's adjacency map, counted once in
// the vertex degree and once in `within`, while a non-loop edge appears in
// both endpoints' maps and is therefore counted twice — exactly the CSR
// convention of package graph (k_i = row sum, 2m = Σ k_i), so the overlay
// score matches the reference implementation bit-for-bit on streams with
// self-loops. TestSelfLoopStreamMatchesReference pins this.
func (m *Maintainer) Modularity() float64 {
	if m.m2 == 0 {
		return 0
	}
	within := 0.0
	a := make([]float64, len(m.adj))
	for u := range m.adj {
		a[m.comm[u]] += m.degree[u]
		for v, w := range m.adj[u] {
			if m.comm[v] == m.comm[int32(u)] {
				within += w
			}
		}
	}
	var null float64
	for _, ac := range a {
		f := ac / m.m2
		null += f * f
	}
	return within/m.m2 - null
}

// AddEdge buffers an undirected edge insertion; endpoints beyond the
// current vertex set grow it (new vertices start as singletons). The edge
// is applied when the buffer reaches BatchSize (or on Flush). A batch
// applied from inside this call runs under the background context; use
// AddEdgeCtx to make it cancellable.
func (m *Maintainer) AddEdge(u, v int32, w float64) error {
	return m.AddEdgeCtx(context.Background(), u, v, w)
}

// AddEdgeCtx is AddEdge threading ctx into any batch application (and full
// re-detection) the insertion triggers. The edge itself is validated and
// buffered unconditionally; only the apply can fail with ctx's error, with
// the same recovery semantics as FlushCtx.
func (m *Maintainer) AddEdgeCtx(ctx context.Context, u, v int32, w float64) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("dynamic: negative vertex id (%d, %d)", u, v)
	}
	// NaN fails every ordered comparison, so w <= 0 alone would admit it —
	// the historical bug this check pins shut. Inf survives the sign test
	// too and overflows m2 just as irreversibly.
	if !(w > 0) || math.IsInf(w, 0) {
		return fmt.Errorf("%w: edge (%d, %d) has weight %v", ErrBadWeight, u, v, w)
	}
	m.pending = append(m.pending, graph.Edge{U: u, V: v, W: w})
	if len(m.pending) >= m.opts.BatchSize {
		return m.FlushCtx(ctx)
	}
	return nil
}

// Flush applies all buffered edges and runs the incremental update under
// the background context (it cannot be canceled; the only error source is
// cancellation, so Flush cannot fail outside injected-fault builds).
func (m *Maintainer) Flush() { _ = m.FlushCtx(context.Background()) }

// FlushCtx applies all buffered edges and runs the incremental update — or
// a full re-detection when drift crossed RefreshFraction — under ctx,
// honoring the chunk-granular cancellation contract of the engine. On
// cancellation the overlay is already consistent (the batch's edges, m2,
// degrees and community degrees are applied) but the community assignment
// is stale: the touched set is retained, so the next FlushCtx (or Flush)
// retries the refresh. The error is ctx's error.
func (m *Maintainer) FlushCtx(ctx context.Context) error {
	if len(m.pending) == 0 {
		// Nothing buffered — but a refresh owed by a previously failed
		// full run (touched still at or past the threshold, which no
		// successful flush leaves behind) must still be retried here, or
		// an idle stream would stay stale until the next edge arrives.
		if !m.refreshDue() {
			return nil
		}
		if err := m.fullRun(ctx); err != nil {
			return err
		}
		if m.onApply != nil {
			m.onApply()
		}
		return nil
	}
	m.batchApplies++
	for _, e := range m.pending {
		m.grow(int(e.U) + 1)
		m.grow(int(e.V) + 1)
		m.adj[e.U][e.V] += e.W
		m.degree[e.U] += e.W
		if e.U != e.V {
			m.adj[e.V][e.U] += e.W
			m.degree[e.V] += e.W
			m.m2 += 2 * e.W
		} else {
			m.m2 += e.W
		}
		m.commDeg[m.comm[e.U]] += e.W
		if e.U != e.V {
			m.commDeg[m.comm[e.V]] += e.W
		}
		m.touched[e.U] = struct{}{}
		m.touched[e.V] = struct{}{}
	}
	m.pending = m.pending[:0]

	if m.refreshDue() {
		if err := m.fullRun(ctx); err != nil {
			return err
		}
	} else {
		m.localOptimize()
	}
	if m.onApply != nil {
		m.onApply()
	}
	return nil
}

// refreshDue reports whether accumulated drift has crossed the
// full-re-detection threshold.
func (m *Maintainer) refreshDue() bool {
	return float64(len(m.touched)) >= m.opts.RefreshFraction*float64(len(m.adj))
}

// Grow extends the vertex set to cover ids [0, n); new vertices join as
// singleton communities with fresh labels. Callers feeding an edge delta
// use it to cover trailing ISOLATED vertices of the target graph, which no
// inserted edge would ever mention.
func (m *Maintainer) Grow(n int) { m.grow(n) }

// grow extends the vertex set to n vertices; new vertices are singleton
// communities with a fresh label.
func (m *Maintainer) grow(n int) {
	for len(m.adj) < n {
		id := int32(len(m.adj))
		m.adj = append(m.adj, make(map[int32]float64, 2))
		m.degree = append(m.degree, 0)
		m.comm = append(m.comm, id)
		m.commDeg = append(m.commDeg, 0)
	}
}

// localOptimize re-decides the touched frontier (touched vertices plus
// their neighbors) with serial Louvain local moves seeded from the current
// assignment, for LocalRounds rounds.
func (m *Maintainer) localOptimize() {
	frontier := make([]int32, 0, len(m.touched)*4)
	inFrontier := make(map[int32]struct{}, len(m.touched)*4)
	add := func(v int32) {
		if _, ok := inFrontier[v]; !ok {
			inFrontier[v] = struct{}{}
			frontier = append(frontier, v)
		}
	}
	for v := range m.touched {
		add(v)
		for u := range m.adj[v] {
			add(u)
		}
	}
	mval := m.m2 / 2
	if mval == 0 {
		return
	}
	for round := 0; round < m.opts.LocalRounds; round++ {
		moved := 0
		for _, i := range frontier {
			ci := m.comm[i]
			ki := m.degree[i]
			// Aggregate neighbor communities.
			weights := make(map[int32]float64, len(m.adj[i]))
			for j, w := range m.adj[i] {
				if j == i {
					continue
				}
				weights[m.comm[j]] += w
			}
			eOwn := weights[ci]
			aOwn := m.commDeg[ci] - ki
			best, bestGain := ci, 0.0
			for ct, e := range weights {
				if ct == ci {
					continue
				}
				gain := (e-eOwn)/mval + (2*ki*aOwn-2*ki*m.commDeg[ct])/(m.m2*m.m2)
				if gain > bestGain || (gain == bestGain && gain > 0 && ct < best) {
					bestGain, best = gain, ct
				}
			}
			if best != ci && bestGain > 0 {
				m.commDeg[ci] -= ki
				m.commDeg[best] += ki
				m.comm[i] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// fullRun rebuilds a CSR snapshot and re-detects with the pooled engine,
// resetting drift tracking. All per-refresh scratch is persistent: the
// edge staging buffer, the engine's run target (RunIntoCtx recycles its
// membership/phase/trace arrays), the community-degree array and the
// touched set are reused across refreshes, so a steady stream of refreshes
// allocates only the snapshot CSR itself. On a ctx error nothing below the
// overlay is modified — comm, commDeg and touched keep their pre-refresh
// values and the refresh re-arms on the next flush.
func (m *Maintainer) fullRun(ctx context.Context) error {
	n := len(m.adj)
	m.edgeBuf = m.edgeBuf[:0]
	for u := range m.adj {
		for v, w := range m.adj[u] {
			if int32(u) <= v {
				m.edgeBuf = append(m.edgeBuf, graph.Edge{U: int32(u), V: v, W: w})
			}
		}
	}
	g := graph.FromEdges(n, m.edgeBuf, m.opts.Workers)
	res, err := m.engine.RunIntoCtx(ctx, g, m.fullRes)
	if err != nil {
		return err
	}
	m.fullRes = res
	// Copy rather than alias: the next refresh reuses res's membership as
	// engine scratch, and m.comm must survive it.
	m.comm = par.Resize(m.comm, n)
	copy(m.comm, res.Membership)
	m.commDeg = par.Resize(m.commDeg, n)
	for i := range m.commDeg {
		m.commDeg[i] = 0
	}
	for i := 0; i < n; i++ {
		m.commDeg[m.comm[i]] += m.degree[i]
	}
	clear(m.touched)
	m.fullRuns++
	return nil
}

// Snapshot materializes the current overlay as an immutable Graph, e.g. for
// offline scoring with the seq/quality packages.
func (m *Maintainer) Snapshot() *graph.Graph {
	n := len(m.adj)
	b := graph.NewBuilder(n)
	for u := range m.adj {
		for v, w := range m.adj[u] {
			if int32(u) <= v {
				b.AddEdge(int32(u), v, w)
			}
		}
	}
	return b.Build(m.opts.Workers)
}

// Quality returns the modularity of the current assignment computed on a
// fresh snapshot via the reference implementation — a cross-check used by
// tests (Modularity() should agree).
func (m *Maintainer) Quality() float64 {
	g := m.Snapshot()
	if g.N() == 0 {
		return 0
	}
	return seq.Modularity(g, m.comm, 1)
}
