// Package grappolo is a Go reproduction of "Parallel heuristics for
// scalable community detection" (Lu, Halappanavar, Kalyanaraman — IPDPSW
// 2014 / Parallel Computing 47, 2015): the Grappolo parallel Louvain
// community-detection system.
//
// The implementation lives under internal/:
//
//   - internal/core      — the parallel Louvain engine (Algorithm 1) with
//     the minimum-label, vertex-following and coloring heuristics
//   - internal/seq       — the serial Louvain reference the paper compares
//     against
//   - internal/graph     — weighted undirected CSR graphs and I/O
//   - internal/coloring  — parallel distance-1/-2 and balanced coloring
//   - internal/generate  — synthetic analogs of the paper's 11 inputs
//   - internal/quality   — partition-comparison measures and performance
//     profiles
//   - internal/harness   — the experiment runner behind every table/figure
//   - internal/par       — goroutine worker pools, prefix sums, atomics,
//     and the flat sparse accumulator backing every hot loop
//
// # Flat-accumulator hot path
//
// The paper identifies the per-vertex neighbor-community map and the graph
// rebuild as the dominant phase costs (§5.5, Figs. 8–9). Everywhere the
// original code (and this reproduction's first port) used a hash map on the
// hot path — decide in internal/core, row aggregation in the rebuild, and
// the serial baselines in internal/seq — the engine now uses
// par.SparseAccum: a flat value array indexed directly by community id, a
// dense list of touched keys in first-touch order, and a generation stamp
// per slot so Reset is O(1) and no clearing ever touches untouched slots.
// Accumulators are pooled per worker (par.ForChunkWorker/ForChunkPrefix
// expose the worker index) and reused across sweeps, making the
// steady-state decide loop allocation-free; sweep chunks are balanced by
// arc count over the CSR offsets rather than vertex count, so hub-heavy
// skewed inputs cannot serialize a sweep. First-touch key order equals the
// old map-insertion order, keeping all deterministic paths bit-identical.
//
// # Arc-balanced coloring
//
// The paper blames uk-2002's poor speedup on skewed color-set sizes (943
// colors, set-size RSD 18.876, §6.2) and proposes balanced coloring as the
// remedy. coloring.Rebalance implements that repair as speculative parallel
// rounds (the same speculate-and-resolve pattern as the coloring itself)
// with flat generation-stamped neighbor-color marking, in two balance modes
// threaded through core.Options.ColorBalance and the -balance CLI flag:
// vertex mode evens per-set vertex counts, arc mode evens per-set total ARC
// counts — the metric the colored sweep's work is actually proportional to,
// so one arc-heavy straggler set cannot serialize a sweep that looks
// balanced by vertex count. The rebalancer honors the base coloring's
// distance (a distance-2 coloring is repaired against distance-2
// neighborhoods), never increases the color count, is deterministic for any
// worker count, and its per-round load RSD is non-increasing.
// coloring.Stats and core.PhaseStats report both the vertex-count and
// arc-count RSDs (harness.ColorSkew / benchtables -colorskew tabulate
// them).
//
// Executables: cmd/grappolo (CLI), cmd/graphgen (input generator),
// cmd/benchtables (regenerates every table and figure of the paper).
// Runnable examples are under examples/. The benchmarks in bench_test.go
// map one-to-one onto the paper's tables and figures; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
package grappolo
