// Package grappolo is a Go reproduction of "Parallel heuristics for
// scalable community detection" (Lu, Halappanavar, Kalyanaraman — IPDPSW
// 2014 / Parallel Computing 47, 2015): the Grappolo parallel Louvain
// community-detection system, packaged as a reusable library.
//
// # Quickstart
//
// Build a graph, create a Detector with functional options, detect:
//
//	b := grappolo.NewBuilder(34)
//	for _, e := range edges {
//		b.AddEdge(e[0], e[1], 1)
//	}
//	g := b.Build(0) // 0 workers = all CPUs
//
//	det, err := grappolo.New(
//		grappolo.Workers(8),
//		grappolo.VertexFollowing(),
//		grappolo.Coloring(grappolo.Distance1),
//		grappolo.Balance(grappolo.BalanceAuto),
//	)
//	if err != nil { ... }
//	res, err := det.Detect(ctx, g)
//	// res.Membership, res.NumCommunities, res.Modularity, res.Phases
//
// New validates the whole configuration up front: invalid values and
// invalid combinations (negative worker counts, CPM without a gamma, CPM
// with vertex following, Async with coloring, the deprecated rebalancing
// switch combined with the current one) are errors, never silent
// corrections. No options at all is the paper's baseline.
//
// # Lifecycle: New → Detect → Pool
//
// A Detector owns one reusable engine: every Detect recycles all pipeline
// scratch, so back-to-back detections on same-shaped graphs allocate
// nothing beyond the Result — and DetectInto recycles that too. A Detector
// serves one call at a time; for concurrent traffic, a Pool manages a
// bounded set of engines and hands each request the idle engine whose
// size class best fits the input graph:
//
//	pool, err := grappolo.NewPool(runtime.GOMAXPROCS(0), grappolo.Workers(1))
//	...
//	res, err := pool.Detect(ctx, g) // safe from any number of goroutines
//
// Detect honors context cancellation cooperatively: the engine polls at
// level-loop and phase-sweep boundaries and sweeps observe a latched flag
// once per chunk, so cancellation lands within one chunk of sweep work —
// or after the currently running preprocessing step (vertex following,
// coloring, rebuild) completes — while the per-vertex hot loops stay
// branch-free.
//
// # Request batching: Pool vs Batcher
//
// A Pool bounds concurrency and reuses engines, but every request runs
// privately: ten dashboards asking about the same graph cost ten engine
// runs. A Batcher in front of the pool coalesces them — concurrent Detect
// calls whose graph is identical share ONE engine run, fanned back out as
// independent Result copies:
//
//	bat := grappolo.NewBatcher(pool)
//	res, err := bat.Detect(ctx, g) // duplicates coalesce; result is private
//
// When coalescing applies: requests are grouped by a structural graph
// fingerprint (exact vertex/arc counts and weight sum plus a sampled CSR
// content hash, memoized on the Graph) while they overlap in flight; a
// request arriving after the shared run sealed starts a new batch. All
// requests through one Batcher share its pool's options, so only graph
// identity varies. The sampled fingerprint is only the O(1) first-pass
// filter: before a request shares a run, its graph's exact full-content
// hash (Graph.StrongHash, computed once per immutable graph and memoized)
// must match the batch leader's. A sampled-hash collision therefore costs
// the batching win — the colliding request runs privately on the pool —
// never correctness: no request is ever served a result computed for a
// different graph.
//
// Fairness and cancellation: pool admission is FIFO (a fair semaphore — no
// barging, so no request starves behind later arrivals), batch leaders
// inherit that order, and followers piggyback without consuming permits. A
// follower canceled while waiting returns its own ctx.Err() immediately; a
// canceled queued request passes its turn on without losing a permit; and
// a canceled batch LEADER never poisons its followers — they transparently
// retry and one becomes the new leader. PoolStats (Pool.Stats /
// Batcher.Stats) counts runs Led, requests Batched, Waited and Canceled;
// under duplicate load Batched/Led is the coalescing win. Warm same-shape
// batched DetectInto stays zero-alloc on the leader path and O(1) per
// follower (pinned by TestBatcherWarmZeroAllocs; BenchmarkBatcherDetect
// measures batched vs unbatched duplicate load).
//
// # Serving robustly: deadlines, shedding, degraded mode
//
// A Pool (or Batcher) bounds concurrency but not queueing: under sustained
// overload its FIFO admission queue grows without limit, every request
// eventually runs at full quality, and an engine-run panic unwinds into
// whichever caller's goroutine drove the engine. Guard is the resilience
// tier that turns the stack into something a production service can sit
// behind:
//
//	gd, err := grappolo.NewGuard(bat,
//		grappolo.MaxQueueDepth(32),               // shed past this backlog
//		grappolo.MaxQueueWait(50*time.Millisecond), // shed slow-queue waiters
//		grappolo.DetectDeadline(2*time.Second),   // default per-request budget
//		grappolo.DegradeAtDepth(8),               // fast profile under pressure
//	)
//	...
//	res, err := gd.Detect(ctx, g)
//	switch {
//	case errors.Is(err, grappolo.ErrOverloaded): // shed: retry later / 503
//	case errors.Is(err, grappolo.ErrEngineFault): // engine panic, recovered
//	case err != nil:                             // ctx error as usual
//	default:
//		_ = res.Degraded // true iff served by the degraded profile
//	}
//
// Bounded admission: a request that would queue deeper than MaxQueueDepth,
// or that has queued longer than MaxQueueWait, fails fast with an error
// matching ErrOverloaded — typed back-pressure the caller can convert to a
// retry-later response. The bound is enforced atomically at the admission
// queue, admitted requests keep their FIFO order, and a caller's own
// context failing while queued is reported as that context's error, never
// disguised as overload. Requests with no deadline of their own receive
// DetectDeadline as a default budget (a caller-supplied deadline is always
// respected as-is), enforced by the engine's chunk-granular cooperative
// cancellation.
//
// Graceful degradation: past DegradeAtDepth queued waiters, requests are
// served by a SECOND size-classed engine set running a cheaper
// pre-validated profile — by default the paper's own quality/speed knobs
// tightened to at most 2 phases, 8 iterations per phase, and coarser gain
// thresholds (5e-2 colored, 1e-3 final); DegradeProfile overrides that.
// Degraded results are real clusterings of the full graph, bit-identical
// to a one-shot detection under the degraded profile, and marked with
// Result.Degraded so callers can label cached entries. When the queue
// drains, full-quality serving resumes by itself. Degradation is decided
// at admission time from queue depth, so a burst degrades only the
// requests that actually queued behind it.
//
// Fault isolation: an engine run that panics is quarantined twice over —
// the Pool discards the panicked engine instead of recycling it
// (PoolStats.Faulted counts these; the freed slot lazily builds a fresh
// engine) and releases its permit, a Batcher seals the batch so followers
// get an error matching ErrEngineFault instead of waiting forever, and the
// Guard converts the propagating panic into an *EngineFaultError carrying
// the panic value. A nil graph is likewise refused up front with
// ErrNilGraph by every serving layer. GuardStats extends PoolStats with
// Shed, Degraded and Recovered counts; a warm, non-degraded Guard request
// whose context already has a deadline allocates nothing (pinned by
// TestGuardWarmZeroAllocs), and the whole stack is soaked under seeded
// fault injection — panics, latency, forced cancellations — by the
// faultinject-tagged chaos tests.
//
// # Scaling out: sharded detection with ghost-label exchange
//
// The serving tiers above scale REQUESTS; Sharded scales the GRAPH. It
// partitions the input into shards (block ranges, arc-balanced ranges, or
// whole connected components), extracts one subgraph per shard in which
// every external neighbor appears as a frozen GHOST vertex — cut edges are
// kept as local–ghost halo edges, not dropped — and runs synchronized
// rounds of local-move sweeps, one engine per shard checked out of the
// wrapped Pool. Between rounds, shards exchange boundary community labels
// at a barrier: each shard re-seeds from the latest global labels with its
// ghosts pinned to their owners' assignments, so a boundary vertex can join
// a community that lives on another shard. A final master merge coarsens
// the FULL graph by the exchanged labels (cut edges now aggregated into
// real meta-edges) and re-clusters the coarse graph with a complete engine
// run:
//
//	sh, err := grappolo.NewSharded(pool,
//		grappolo.WithShards(8),
//		grappolo.WithExchangeRounds(2),
//		grappolo.WithPartition(grappolo.PartitionArcs),
//	)
//	...
//	res, err := sh.Detect(ctx, g) // same Detecter contract as every tier
//
// This is the repair of the distributed-memory contrast the paper draws in
// §7: the partition-and-merge scheme it cites (its ref. [25], emulated in
// internal/distributed) DISCARDS cut edges during the local phase and loses
// quality on partition-adversarial inputs. Halo edges plus label exchange
// recover that quality — the regression tests pin sharded modularity within
// 2% of the shared-memory Detector on suite graphs with scrambled vertex
// ids (and strictly above the drop-cut-edges emulation) — while each shard
// only ever materializes its own subgraph plus a one-vertex-deep halo.
// Sharded implements Detecter, so it wraps in a Guard like any backend;
// engine checkouts queue FIFO-fair through the pool, bounding memory under
// concurrent sharded traffic. Results are deterministic for a fixed graph
// and configuration at any worker count.
//
// # Serving from cache: repeats and near-repeats across time
//
// The Batcher coalesces duplicates that overlap IN FLIGHT; Cache extends
// the same economics across time. It fronts a Pool, Batcher or Sharded
// backend with a TTL + LRU result cache keyed by the graph's exact content
// and the backend's engine options:
//
//	c, err := grappolo.NewCache(bat,
//		grappolo.CacheTTL(time.Minute),     // serve an entry at most this long
//		grappolo.CacheBytes(1<<30),         // estimated-resident-bytes budget
//		grappolo.DeltaEdits(64),            // route small edits incrementally
//	)
//	...
//	res, err := c.Detect(ctx, g) // an exact repeat runs NO engine at all
//
// An exact repeat — a dashboard refresh, a retry, another tenant uploading
// the same public dataset — is served bit-identical to the run that
// populated the entry, deep-copied out so the caller owns it, with zero
// engine runs and (into a recycled Result) zero allocations (pinned by
// TestCacheHitZeroAllocs; BenchmarkCacheDetect measures the cold/hit/delta
// tiers). Lookups use the same sampled fingerprint as the Batcher but every
// hit and every admission is verified against the exact Graph.StrongHash,
// so a sampled collision degrades to an uncached run (CacheStats.Rejected),
// never to serving another graph's membership.
//
// With DeltaEdits(k), a miss within k edge INSERTIONS (including weight
// increases) of a cached graph skips the cold run too: the CSR diff is
// replayed onto an incremental maintainer seeded from the cached
// membership — the streaming tier applied to re-uploads — and the result is
// marked Result.Incremental: a valid clustering of the requested graph
// whose quality tracks incremental Louvain (re-anchored per
// DeltaRefreshFraction) rather than matching a cold run bit-for-bit.
// Deletions and rewires always fall through to the backend. A Cache
// composes under a Guard (NewGuard accepts it as a backend), is safe for
// concurrent use, and exposes Invalidate/InvalidateAll for callers whose
// graphs stop describing reality — see Stream.OnApply below.
//
// Streaming workloads use NewStream, which maintains communities under
// live edge insertions with batched incremental updates and pooled full
// re-detections. AddEdge rejects weights that are not positive finite
// numbers with ErrBadEdgeWeight (a NaN or Inf would corrupt the live
// modularity bookkeeping irreversibly), FlushCtx surfaces cancellation of
// the full re-detections a flush can escalate to (the overlay stays
// consistent and the refresh is retried on the next flush), and OnApply
// registers a post-batch hook — the natural place to call Cache.Invalidate
// for the stream's seed graph. Synthetic inputs reproducing the paper's
// 11-graph suite live in grappolo/generate; partition-agreement measures
// (Table 3) in grappolo/quality.
//
// The algorithms, experiment harness and serial baselines live under
// internal/ (internal/core, internal/graph, internal/coloring,
// internal/par, internal/seq, internal/harness, ...); the root package and
// its public subpackages are the supported API.
//
// # Flat-accumulator hot path
//
// The paper identifies the per-vertex neighbor-community map and the graph
// rebuild as the dominant phase costs (§5.5, Figs. 8–9). Everywhere the
// original code (and this reproduction's first port) used a hash map on the
// hot path — decide in internal/core, row aggregation in the rebuild, and
// the serial baselines in internal/seq — the engine now uses
// par.SparseAccum: a flat value array indexed directly by community id, a
// dense list of touched keys in first-touch order, and a generation stamp
// per slot so Reset is O(1) and no clearing ever touches untouched slots.
// Accumulators are pooled per worker (par.ForChunkWorker/ForChunkPrefix
// expose the worker index) and reused across sweeps, making the
// steady-state decide loop allocation-free; sweep chunks are balanced by
// arc count over the CSR offsets rather than vertex count, so hub-heavy
// skewed inputs cannot serialize a sweep. First-touch key order equals the
// old map-insertion order, keeping all deterministic paths bit-identical.
//
// # Reusable Engine and scratch ownership
//
// core.Run is a thin wrapper over core.Engine, the reusable pipeline: an
// Engine owns every mutable scratch buffer the run needs — the phase working
// set and per-worker decide accumulators, the rebuild counting-sort buffers,
// row accumulators and staging arenas, the renumbering and CPM node-size
// buffers, the coloring scratch (worklists, flat markers, set storage via
// coloring.Scratch), and one pooled coarse-graph slot per rebuild depth
// (graph.FromCSRInto recycles the CSR arrays and Graph header in place).
// Everything is sized by high-water mark and recycled across phases and
// across Run calls, so the second run on a same-shaped graph performs zero
// scratch allocations; Engine.RunInto additionally recycles the Result,
// making warm re-runs allocate nothing at all (pinned by
// TestEngineRunSteadyStateZeroAllocs and BenchmarkEngineReuse).
//
// Ownership rules: hold ONE Engine per sequence of same-configuration runs
// (dynamic overlays re-detecting per flush, harness repeat sweeps, services
// answering clustering requests back to back) and let it grow to the largest
// graph it serves; re-create the engine only to change Options or to release
// the pooled memory. An Engine is not safe for concurrent Run calls — give
// each worker goroutine its own. Results returned by Run are independent of
// the engine; results passed back into RunInto are overwritten.
//
// The zero-alloc guarantee leans on two conventions enforced throughout the
// hot paths: loop bodies are package-level captureless functions receiving
// their state as an explicit context argument (par.ForChunkCtx and friends —
// a capturing closure heap-allocates at every call site because the body
// parameter escapes into the worker goroutines), and contexts larger than
// 128 bytes are passed by pointer to pooled storage (Go captures bigger
// values by reference, which would heap-move them per call).
//
// # Memory layout: split vs interleaved arcs
//
// A graph always stores its CSR as two parallel streams — int32 neighbor
// ids and float64 weights. LayoutInterleaved additionally packs them into
// one 16-byte-stride arc array ({nbr, weight} records), selected per graph
// with FromEdgesLayout or SetGraphLayout and per detection with the
// ArcLayout option (ArcLayout picks the layout of the COARSE graphs the
// engine builds; LayoutAuto, the default, inherits the input's layout).
// The layout is purely a memory choice: both orders enumerate identical
// arcs, so results are bit-identical under every combination — only
// runtimes differ.
//
// When to interleave: sweeps that scan vertices in sequential id order
// (the uncolored and async paths) read each row as one forward stream
// instead of two, cutting the active prefetch streams per worker in half;
// on large graphs that is worth ~15-30% of sweep time. The colored sweep
// visits vertices in scattered color-set order, where the packed 16-byte
// arcs fetch ~33% more cache lines per randomly-gathered row with no
// sequential-stream payoff — so the live (colored) decide kernel always
// reads the split streams, which remain present under every layout, and
// interleaving is simply neutral there. Decide kernels are monomorphic:
// the engine dispatches once per sweep to a specialization per
// (membership-atomicity, layout, objective) instead of branching or
// calling through closures per arc.
//
// On amd64 and arm64 the sweeps also issue software prefetch hints for the
// neighbor-community gather one vertex ahead (batched, 8 hints per call);
// graphs below ~256k vertices skip hinting since their working set is
// cache-resident. Building with -tags noasm swaps the hints for portable
// no-ops — results are identical, and CI runs the kernel packages both
// ways.
//
// # Arc-balanced coloring
//
// The paper blames uk-2002's poor speedup on skewed color-set sizes (943
// colors, set-size RSD 18.876, §6.2) and proposes balanced coloring as the
// remedy. coloring.Rebalance implements that repair as speculative parallel
// rounds (the same speculate-and-resolve pattern as the coloring itself)
// with flat generation-stamped neighbor-color marking, in two balance modes
// threaded through core.Options.ColorBalance and the -balance CLI flag:
// vertex mode evens per-set vertex counts, arc mode evens per-set total ARC
// counts — the metric the colored sweep's work is actually proportional to,
// so one arc-heavy straggler set cannot serialize a sweep that looks
// balanced by vertex count — and auto mode (BalanceAuto, -balance auto)
// measures the base coloring's ArcRSD each phase and applies the arc repair
// only when it exceeds Options.AutoBalanceArcRSD. When a phase's sets were
// arc-rebalanced the colored sweep consumes them directly: the per-set arc
// prefix sums and binary-search chunking are skipped because the sets are
// even by construction. The rebalancer honors the base coloring's distance
// (a distance-2 coloring is repaired against distance-2 neighborhoods),
// never increases the color count, is deterministic for any worker count,
// and its per-round load RSD is non-increasing. coloring.Stats and
// core.PhaseStats report both the vertex-count and arc-count RSDs
// (harness.ColorSkew / benchtables -colorskew tabulate them, along with the
// mode auto would pick).
//
// # Static analysis
//
// The conventions above are contracts, not habits, and the repo mechanizes
// them: internal/analysis is a small go/analysis-shaped suite of five
// repo-specific analyzers, driven by the cmd/grappolovet multichecker and
// run as a blocking CI step under every build-tag set CI compiles
// (default, faultinject, noasm). The analyzers: capturebody rejects
// capturing func literals (and bound method values) passed as bodies to
// the par.*Ctx helpers — the zero-alloc contract says those bodies must be
// package-level captureless functions; internalimport enforces the API
// boundary (examples/ and cmd/grappolo never import grappolo/internal/...);
// asmpair proves every assembly-declared function has a
// signature-identical Go fallback under complementary build constraints,
// so no tag combination yields a missing or duplicate symbol; typederr
// rejects ==/!= comparisons against error sentinels (use errors.Is) and
// fmt.Errorf calls that stringify an error with %v instead of wrapping
// with %w; hotalloc checks functions annotated with a //grappolo:hotpath
// directive for per-call allocation sources — map literals and inserts,
// appends not rooted in a parameter or receiver, fmt calls, interface
// boxing, and closure creation. Annotate a function hot only when a
// steady-state allocation test covers the path; the directive is a
// machine-checked claim, not documentation. Run the suite with
//
//	go run ./cmd/grappolovet ./...
//
// (flags: -tags, -run to select analyzers, -list). Each analyzer carries
// fixture tests under internal/analysis/testdata that fail if its checks
// are weakened.
//
// Executables: cmd/grappolo (CLI), cmd/graphgen (input generator),
// cmd/benchtables (regenerates every table and figure of the paper).
// Runnable examples are under examples/. The benchmarks in bench_test.go
// map one-to-one onto the paper's tables and figures; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
package grappolo
