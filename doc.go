// Package grappolo is a Go reproduction of "Parallel heuristics for
// scalable community detection" (Lu, Halappanavar, Kalyanaraman — IPDPSW
// 2014 / Parallel Computing 47, 2015): the Grappolo parallel Louvain
// community-detection system.
//
// The implementation lives under internal/:
//
//   - internal/core      — the parallel Louvain engine (Algorithm 1) with
//     the minimum-label, vertex-following and coloring heuristics
//   - internal/seq       — the serial Louvain reference the paper compares
//     against
//   - internal/graph     — weighted undirected CSR graphs and I/O
//   - internal/coloring  — parallel distance-1/-2 and balanced coloring
//   - internal/generate  — synthetic analogs of the paper's 11 inputs
//   - internal/quality   — partition-comparison measures and performance
//     profiles
//   - internal/harness   — the experiment runner behind every table/figure
//   - internal/par       — goroutine worker pools, prefix sums, atomics
//
// Executables: cmd/grappolo (CLI), cmd/graphgen (input generator),
// cmd/benchtables (regenerates every table and figure of the paper).
// Runnable examples are under examples/. The benchmarks in bench_test.go
// map one-to-one onto the paper's tables and figures; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
package grappolo
