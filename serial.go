package grappolo

import "grappolo/internal/seq"

// SerialResult is the outcome of DetectSerial: the serial Louvain
// reference's partitioning and its convergence counters (the quantities the
// paper reports for the sequential baseline in Tables 4–5).
type SerialResult struct {
	// Membership assigns every original vertex a dense community id.
	Membership []int32
	// NumCommunities is the number of distinct ids in Membership.
	NumCommunities int
	// Modularity of the final partitioning on the input graph.
	Modularity float64
	// Iterations is the total local-move iteration count across phases.
	Iterations int
	// Phases is the number of coarsening phases the run performed.
	Phases int
}

// DetectSerial runs the SERIAL Louvain reference implementation the paper
// compares its parallel heuristics against — single-threaded, natural scan
// order, standard modularity. It exists for baselining and verification
// (cmd/grappolo's -serial and -compare modes); production callers want a
// Detector, Pool or Guard. threshold is the minimum net modularity gain
// required to continue (<= 0 selects the paper's default 1e-6). A nil graph
// returns ErrNilGraph like every other detection entry point.
func DetectSerial(g *Graph, threshold float64) (*SerialResult, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	res := seq.Run(g, seq.Options{Threshold: threshold})
	return &SerialResult{
		Membership:     res.Membership,
		NumCommunities: res.NumCommunities,
		Modularity:     res.Modularity,
		Iterations:     res.TotalIterations,
		Phases:         len(res.Phases),
	}, nil
}
