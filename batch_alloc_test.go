package grappolo_test

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"grappolo"
	"grappolo/internal/generate"
)

// TestBatcherWarmZeroAllocs extends the serving-path allocation gate to the
// batcher: a warm same-shape leader request — fingerprint cache hit, batch
// record checkout from the free list, pool admission, the full detection
// pipeline into the pooled shared Result, the copy-out into the caller's
// recycled Result, and the batch recycle — performs ZERO allocations.
// Single worker: multi-worker sweeps inherently allocate goroutines.
func TestBatcherWarmZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	ctx := context.Background()
	res, err := b.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err = b.DetectInto(ctx, g, res) // second warm pass settles the arenas
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		res, err = b.DetectInto(ctx, g, res)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("warm same-shape Batcher.DetectInto (leader path) allocates %v times per request, want 0", allocs)
	}
	if res.NumCommunities <= 1 || res.Modularity <= 0 {
		t.Fatalf("degenerate result nc=%d Q=%v", res.NumCommunities, res.Modularity)
	}

	// Alternating between two resident graphs must stay zero-alloc too. The
	// old fingerprint fast path cached only the single most recent *Graph,
	// so a loop ping-ponging between two graphs missed it on EVERY request
	// and allocated a fresh cache record each time — the memoized per-Graph
	// hashes have no such thrash mode. Separate recycled Results per graph
	// keep the copy-out shape stable.
	g2 := generate.MustGenerate(generate.RGG, generate.Small, 1, 1)
	res2, err := b.Detect(ctx, g2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // settle both arenas
		if res, err = b.DetectInto(ctx, g, res); err != nil {
			t.Fatal(err)
		}
		if res2, err = b.DetectInto(ctx, g2, res2); err != nil {
			t.Fatal(err)
		}
	}
	allocs = testing.AllocsPerRun(4, func() {
		res, err = b.DetectInto(ctx, g, res)
		if err != nil {
			return
		}
		res2, err = b.DetectInto(ctx, g2, res2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("warm alternating two-graph Batcher.DetectInto allocates %v times per round, want 0", allocs)
	}
}

// TestBatcherFollowerAllocsBounded pins the follower side: a coalesced
// waiter costs O(1) allocations — its join record and signal channel plus
// the copy-out bookkeeping — independent of graph size and of how many
// rounds run. Measured as a global allocation delta over many choreographed
// batches with recycled per-follower Results, so per-round growth (an O(n)
// slice allocated per follower, say) would blow the bound immediately.
func TestBatcherFollowerAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	ctx := context.Background()

	const followers = 4
	const rounds = 20
	followerRes := make([]*grappolo.Result, followers)
	leaderRes, err := b.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}

	round := func() {
		if err := pool.HoldEnginePermit(ctx); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var err error
			leaderRes, err = b.DetectInto(ctx, g, leaderRes)
			if err != nil {
				t.Error(err)
			}
		}()
		for pool.QueuedWaiters() != 1 {
			runtime.Gosched()
		}
		base := b.JoinedFollowers()
		for i := 0; i < followers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var err error
				followerRes[i], err = b.DetectInto(ctx, g, followerRes[i])
				if err != nil {
					t.Error(err)
				}
			}(i)
		}
		for b.JoinedFollowers() != base+followers {
			runtime.Gosched()
		}
		pool.ReleaseEnginePermit()
		wg.Wait()
	}
	round() // warm every path (shared result, follower Results, free lists)
	round()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for r := 0; r < rounds; r++ {
		round()
	}
	runtime.ReadMemStats(&after)
	perFollower := float64(after.Mallocs-before.Mallocs) / float64(rounds*followers)
	// The real warm cost is ~10 small allocations per follower (goroutine +
	// join record + channel + waitgroup bookkeeping); 64 leaves slack for
	// runtime noise while still catching any O(graph) copy regression
	// (membership alone is >1000 entries here).
	if perFollower > 64 {
		t.Errorf("follower path averages %.1f allocs/request, want O(1) (<= 64)", perFollower)
	}
}

// BenchmarkBatcherDetect drives duplicate same-graph load through the
// serving layer, batched (Batcher in front of the Pool — concurrent
// requesters coalesce onto one engine run) versus unbatched (each request
// runs privately on a pooled engine). The batched/unbatched throughput
// ratio under duplicate load is the coalescing win; allocs/op extends the
// serving-path allocation gate to the batcher.
func BenchmarkBatcherDetect(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.ScaleFromEnv(), 0, 0)
	newPool := func(b *testing.B) *grappolo.Pool {
		pool, err := grappolo.NewPool(runtime.GOMAXPROCS(0), grappolo.Workers(1))
		if err != nil {
			b.Fatal(err)
		}
		// Warm every engine the parallel phase can check out at once.
		ctx := context.Background()
		var wg sync.WaitGroup
		for i := 0; i < pool.Size(); i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := pool.Detect(ctx, g); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
		return pool
	}
	b.Run("unbatched", func(b *testing.B) {
		pool := newPool(b)
		ctx := context.Background()
		b.ReportAllocs()
		b.SetParallelism(8) // 8×GOMAXPROCS requesters: duplicate overload on any core count
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var res *grappolo.Result
			var err error
			for pb.Next() {
				if res, err = pool.DetectInto(ctx, g, res); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("batched", func(b *testing.B) {
		bat := grappolo.NewBatcher(newPool(b))
		ctx := context.Background()
		b.ReportAllocs()
		b.SetParallelism(8) // same fleet; duplicates now coalesce onto shared runs
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var res *grappolo.Result
			var err error
			for pb.Next() {
				if res, err = bat.DetectInto(ctx, g, res); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}
